// Root benchmark harness: one benchmark per paper artifact (Fig. 1, 4, 5,
// 6, 7, 8 and Table 2), each printing the regenerated rows/series once and
// timing the regeneration, plus ablation benchmarks for the design choices
// called out in DESIGN.md (SVR kernel per objective, SVR vs simpler
// regressors, Pareto algorithm, training sampling density).
//
// Run with:
//
//	go test -bench=. -benchmem
//
// The paper-scale training (106 micro-benchmarks × ~40 settings) happens
// once and is shared across benchmarks.
package repro_test

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/freq"
	"repro/internal/gpu"
	"repro/internal/measure"
	"repro/internal/nvml"
	"repro/internal/pareto"
	"repro/internal/regress"
	"repro/internal/svm"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

// paperSuite returns the shared suite with the paper's full training setup.
func paperSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite = experiments.NewSuite()
	})
	return suite
}

// emitOnce prints a rendered report the first time a benchmark runs, so
// `go test -bench=.` output doubles as the reproduction record.
var emitted sync.Map

func emitOnce(key string, render func(w io.Writer)) {
	if _, loaded := emitted.LoadOrStore(key, true); !loaded {
		render(os.Stdout)
	}
}

func BenchmarkFig1(b *testing.B) {
	s := paperSuite(b)
	for i := 0; i < b.N; i++ {
		data, err := s.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		emitOnce("fig1", func(w io.Writer) { experiments.RenderFig1(w, data) })
	}
}

func BenchmarkFig4(b *testing.B) {
	s := paperSuite(b)
	for i := 0; i < b.N; i++ {
		rows := s.Fig4()
		emitOnce("fig4", func(w io.Writer) { experiments.RenderFig4(w, rows) })
	}
}

func BenchmarkFig5(b *testing.B) {
	s := paperSuite(b)
	for i := 0; i < b.N; i++ {
		data, err := s.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		emitOnce("fig5", func(w io.Writer) { experiments.RenderFig5(w, data) })
	}
}

func BenchmarkFig6(b *testing.B) {
	s := paperSuite(b)
	for i := 0; i < b.N; i++ {
		rep, err := s.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.RMSE[freq.MemH], "rmseH%")
		b.ReportMetric(rep.RMSE[freq.Meml], "rmsel%")
		emitOnce("fig6", func(w io.Writer) { experiments.RenderErrorReport(w, "Figure 6", rep) })
	}
}

func BenchmarkFig7(b *testing.B) {
	s := paperSuite(b)
	for i := 0; i < b.N; i++ {
		rep, err := s.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.RMSE[freq.MemH], "rmseH%")
		b.ReportMetric(rep.RMSE[freq.Meml], "rmsel%")
		emitOnce("fig7", func(w io.Writer) { experiments.RenderErrorReport(w, "Figure 7", rep) })
	}
}

func BenchmarkFig8(b *testing.B) {
	s := paperSuite(b)
	for i := 0; i < b.N; i++ {
		data, err := s.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		emitOnce("fig8", func(w io.Writer) { experiments.RenderFig8(w, data) })
	}
}

func BenchmarkTable2(b *testing.B) {
	s := paperSuite(b)
	for i := 0; i < b.N; i++ {
		rep, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, r := range rep.Rows {
			worst = math.Max(worst, r.D)
		}
		b.ReportMetric(worst, "worstD")
		emitOnce("table2", func(w io.Writer) { experiments.RenderTable2(w, rep) })
	}
}

// --- Ablations ---

// testSetAtHighMem builds (vector, speedup, energy) triples for the twelve
// test benchmarks over the sampled settings, for ablation error metrics.
type evalPoint struct {
	vec  []float64
	s, e float64
	mem  freq.MHz
}

var (
	ablOnce    sync.Once
	ablSamples []core.Sample
	ablEval    []evalPoint
	ablErr     error
)

func ablationData(b *testing.B) ([]core.Sample, []evalPoint) {
	b.Helper()
	ablOnce.Do(func() {
		s := paperSuite(b)
		h := s.Harness()
		ablSamples, ablErr = core.BuildTrainingSet(h, experiments.TrainingKernels(), core.Options{})
		if ablErr != nil {
			return
		}
		for _, tb := range bench.All() {
			st := tb.Features()
			var base measure.Measurement
			base, ablErr = h.Baseline(tb.Profile())
			if ablErr != nil {
				return
			}
			for _, cfg := range h.Device().Sim().Ladder.TrainingSample(40) {
				var rel measure.Relative
				rel, ablErr = h.MeasureRelative(tb.Profile(), cfg, base)
				if ablErr != nil {
					return
				}
				var v []float64
				v = append(v, st[:]...)
				cn, mn := cfg.Normalized()
				v = append(v, cn, mn)
				ablEval = append(ablEval, evalPoint{vec: v, s: rel.Speedup, e: rel.NormEnergy, mem: cfg.Mem})
			}
		}
	})
	if ablErr != nil {
		b.Fatal(ablErr)
	}
	return ablSamples, ablEval
}

func rmseAt(eval []evalPoint, mem freq.MHz, predict func([]float64) float64, truth func(evalPoint) float64) float64 {
	sum, n := 0.0, 0
	for _, p := range eval {
		if p.mem != mem {
			continue
		}
		d := predict(p.vec) - truth(p)
		sum += d * d
		n++
	}
	return 100 * math.Sqrt(sum/float64(n))
}

func trainOn(b *testing.B, samples []core.Sample, target func(core.Sample) float64, k svm.Kernel) *svm.Model {
	b.Helper()
	xs := make([][]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = s.Vector.Slice()
		ys[i] = target(s)
	}
	m, err := svm.Train(xs, ys, k, svm.Params{C: 1000, Epsilon: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkAblationSpeedupKernel compares the paper's linear kernel against
// RBF for the speedup objective (paper Section 3.4 picks linear).
func BenchmarkAblationSpeedupKernel(b *testing.B) {
	samples, eval := ablationData(b)
	speedup := func(s core.Sample) float64 { return s.Speedup }
	for _, tc := range []struct {
		name string
		k    svm.Kernel
	}{
		{"linear", svm.Linear{}},
		{"rbf4", svm.RBF{Gamma: 4}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := trainOn(b, samples, speedup, tc.k)
				r := rmseAt(eval, freq.MemH, m.Predict, func(p evalPoint) float64 { return p.s })
				b.ReportMetric(r, "rmseH%")
			}
		})
	}
}

// BenchmarkAblationEnergyGamma sweeps the RBF γ of the energy model,
// including the paper's stated 0.1 and this substrate's calibrated 4.
func BenchmarkAblationEnergyGamma(b *testing.B) {
	samples, eval := ablationData(b)
	energy := func(s core.Sample) float64 { return s.NormEnergy }
	for _, gamma := range []float64{0.1, 1, 4, 8} {
		b.Run(fmt.Sprintf("gamma%g", gamma), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := trainOn(b, samples, energy, svm.RBF{Gamma: gamma})
				r := rmseAt(eval, freq.MemH, m.Predict, func(p evalPoint) float64 { return p.e })
				b.ReportMetric(r, "rmseH%")
			}
		})
	}
}

// BenchmarkAblationRegressor compares SVR against the simpler regressors
// the paper says it evaluated (OLS, LASSO, polynomial) on the speedup
// objective.
func BenchmarkAblationRegressor(b *testing.B) {
	samples, eval := ablationData(b)
	xs := make([][]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = s.Vector.Slice()
		ys[i] = s.Speedup
	}
	run := func(name string, fit func() (func([]float64) float64, error)) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				predict, err := fit()
				if err != nil {
					b.Fatal(err)
				}
				r := rmseAt(eval, freq.MemH, predict, func(p evalPoint) float64 { return p.s })
				b.ReportMetric(r, "rmseH%")
			}
		})
	}
	run("ols", func() (func([]float64) float64, error) {
		m, err := regress.OLS(xs, ys)
		if err != nil {
			return nil, err
		}
		return m.Predict, nil
	})
	run("lasso", func() (func([]float64) float64, error) {
		m, err := regress.Lasso(xs, ys, 0.001, 500)
		if err != nil {
			return nil, err
		}
		return m.Predict, nil
	})
	run("poly2", func() (func([]float64) float64, error) {
		m, err := regress.Polynomial(xs, ys, 2)
		if err != nil {
			return nil, err
		}
		return m.Predict, nil
	})
	run("svr-linear", func() (func([]float64) float64, error) {
		m, err := svm.Train(xs, ys, svm.Linear{}, svm.Params{C: 1000, Epsilon: 0.1})
		if err != nil {
			return nil, err
		}
		return m.Predict, nil
	})
}

// BenchmarkAblationPareto compares the paper's Algorithm 1 (O(n²)) against
// the sort-based O(n log n) front on realistic prediction-sized inputs.
func BenchmarkAblationPareto(b *testing.B) {
	for _, n := range []int{171, 1000, 10000} {
		pts := make([]pareto.Point, n)
		for i := range pts {
			// Deterministic scatter shaped like a speedup/energy cloud.
			x := float64(i%97) / 97
			y := float64((i*31)%89) / 89
			pts[i] = pareto.Point{Speedup: 0.1 + 1.2*x, Energy: 0.7 + 1.1*y, ID: i}
		}
		b.Run(fmt.Sprintf("simple/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pareto.Simple(pts)
			}
		})
		b.Run(fmt.Sprintf("fast/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pareto.Fast(pts)
			}
		})
	}
}

// BenchmarkAblationSamplingDensity retrains the speedup model with fewer or
// more sampled settings per micro-benchmark than the paper's 40.
func BenchmarkAblationSamplingDensity(b *testing.B) {
	s := paperSuite(b)
	_, eval := ablationData(b)
	for _, n := range []int{10, 20, 40} {
		b.Run(fmt.Sprintf("settings=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				samples, err := core.BuildTrainingSet(s.Harness(), experiments.TrainingKernels(),
					core.Options{SettingsPerKernel: n})
				if err != nil {
					b.Fatal(err)
				}
				m := trainOn(b, samples, func(sm core.Sample) float64 { return sm.Speedup }, svm.Linear{})
				r := rmseAt(eval, freq.MemH, m.Predict, func(p evalPoint) float64 { return p.s })
				b.ReportMetric(r, "rmseH%")
			}
		})
	}
}

// BenchmarkPredictionLatency measures the end-to-end prediction cost for a
// new kernel (features + 171 model evaluations + Pareto set) — the quantity
// that replaces the paper's 70-minute exhaustive search.
func BenchmarkPredictionLatency(b *testing.B) {
	s := paperSuite(b)
	pred, err := s.Predictor()
	if err != nil {
		b.Fatal(err)
	}
	knn, err := bench.ByName("k-NN")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := pred.ParetoSet(knn.Features())
		if len(set) == 0 {
			b.Fatal("empty set")
		}
	}
}

// --- Engine ---

// engineBenchOptions is the reduced training setup the engine benchmarks
// share: full 106-kernel suite, 10 sampled settings per kernel.
func engineBenchOptions(workers int) engine.Options {
	return engine.Options{
		Workers: workers,
		Core:    core.Options{SettingsPerKernel: 10},
	}
}

// BenchmarkEngineTrain measures end-to-end training (measurement sweep +
// both SVR fits) through the sequential seed path and through the engine's
// worker pool, so the concurrency speedup is tracked in the perf
// trajectory.
func BenchmarkEngineTrain(b *testing.B) {
	kernels := engine.TrainingKernels()

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h := measure.NewHarness(nvml.NewDevice(gpu.TitanX()))
			opts := core.Options{SettingsPerKernel: 10}
			samples, err := core.BuildTrainingSet(h, kernels, opts)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.Train(samples, opts); err != nil {
				b.Fatal(err)
			}
		}
	})

	workerCounts := []int{2, runtime.GOMAXPROCS(0)}
	if workerCounts[1] == workerCounts[0] {
		workerCounts = workerCounts[:1]
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("engine-%dworkers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := engine.NewDefault(engineBenchOptions(workers))
				if _, err := eng.Train(context.Background(), kernels); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEnginePredictBatch measures batch Pareto prediction over the
// twelve test benchmarks: cold (empty cache each iteration) vs warm (the
// steady state of a serving process, where every vector hits the LRU).
func BenchmarkEnginePredictBatch(b *testing.B) {
	eng := engine.NewDefault(engineBenchOptions(0))
	if _, err := eng.Train(context.Background(), engine.TrainingKernels()); err != nil {
		b.Fatal(err)
	}
	models := eng.Models()
	ladder := eng.Harness().Device().Sim().Ladder
	sts := bench.AllFeatures()

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := engine.NewPredictor(models, ladder, engine.Options{CacheSize: -1})
			sets, err := p.PredictBatch(context.Background(), sts)
			if err != nil {
				b.Fatal(err)
			}
			if len(sets) != len(sts) {
				b.Fatal("short batch")
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		p := engine.NewPredictor(models, ladder, engine.Options{})
		if _, err := p.PredictBatch(context.Background(), sts); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.PredictBatch(context.Background(), sts); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		s := p.Stats()
		b.ReportMetric(float64(s.Hits)/float64(s.Hits+s.Misses), "hit-rate")
	})
}
