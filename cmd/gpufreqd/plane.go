package main

import (
	"net/http"
	"sync/atomic"
)

// Default per-plane concurrency limits. The read plane is sized for the
// serving hot path (cheap, latency-sensitive); the control plane is sized
// down so a burst of management calls cannot starve serving.
const (
	defaultReadConcurrency    = 64
	defaultControlConcurrency = 16
)

// planeLimits configures the per-plane admission control: maximum in-flight
// requests for the read plane (predict/select/policies) and the control
// plane (train/models/observe/adapt). /healthz is outside both, so
// liveness probes survive saturation. 0 selects the defaults; negative
// disables the limit.
type planeLimits struct {
	Read    int
	Control int
}

// planeLimiter is one handler group's admission control: a semaphore sized
// to the concurrency limit. Requests over the limit are shed immediately
// with 503 + Retry-After rather than queued, so an overloaded control
// plane fails fast and an overloaded read plane never builds an unbounded
// goroutine backlog. A nil semaphore means unlimited.
type planeLimiter struct {
	name string
	sem  chan struct{}
	shed atomic.Uint64
}

// newPlaneLimiter builds a limiter. limit 0 selects def; negative
// disables limiting.
func newPlaneLimiter(name string, limit, def int) *planeLimiter {
	if limit == 0 {
		limit = def
	}
	l := &planeLimiter{name: name}
	if limit > 0 {
		l.sem = make(chan struct{}, limit)
	}
	return l
}

// limit returns the configured concurrency bound (0 = unlimited).
func (l *planeLimiter) limit() int { return cap(l.sem) }

// wrap applies the limiter to a handler.
func (l *planeLimiter) wrap(h http.HandlerFunc) http.HandlerFunc {
	if l.sem == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case l.sem <- struct{}{}:
			defer func() { <-l.sem }()
			h(w, r)
		default:
			l.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable,
				"%s plane at its concurrency limit (%d in flight); retry", l.name, cap(l.sem))
		}
	}
}

// planeInfo is one plane's admission-control accounting on /healthz.
type planeInfo struct {
	// Limit is the maximum in-flight requests (0 = unlimited).
	Limit int `json:"limit"`
	// Shed counts requests rejected with 503 since boot.
	Shed uint64 `json:"shed"`
}

// planesInfo reports both planes' admission control on /healthz.
type planesInfo struct {
	Read    planeInfo `json:"read"`
	Control planeInfo `json:"control"`
}

func (l *planeLimiter) info() planeInfo {
	return planeInfo{Limit: l.limit(), Shed: l.shed.Load()}
}
