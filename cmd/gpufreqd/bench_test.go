package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/registry"
)

// paperBench trains (once per bench binary) a paper-scale model set —
// the 106 micro-benchmarks at the default 40 sampled settings — so the
// cold-start benchmarks compare like against like.
var paperBench struct {
	sync.Once
	models *core.Models
	err    error
}

// paperSnapshot publishes the cached paper-scale models as the active
// snapshot of a fresh per-benchmark model directory.
func paperSnapshot(b *testing.B) (string, *core.Models) {
	b.Helper()
	paperBench.Do(func() {
		eng := engine.NewDefault(engine.Options{})
		paperBench.models, paperBench.err = eng.TrainDefault(context.Background())
	})
	if paperBench.err != nil {
		b.Fatal(paperBench.err)
	}
	dir := b.TempDir()
	store, err := registry.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	man, err := store.Save("titanx", "", paperBench.models, registry.Training{})
	if err != nil {
		b.Fatal(err)
	}
	if err := store.Activate("titanx", man.Version); err != nil {
		b.Fatal(err)
	}
	return dir, paperBench.models
}

// BenchmarkColdStartLoadFromDisk measures restart-to-serving with a
// populated model directory: open the registry, load + integrity-check
// the active snapshot, and install the predictor — the whole boot path a
// restarted gpufreqd takes instead of retraining.
func BenchmarkColdStartLoadFromDisk(b *testing.B) {
	dir, _ := paperSnapshot(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store, err := registry.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		eng := engine.NewDefault(engine.Options{})
		models, man, err := store.Load("titanx", "")
		if err != nil {
			b.Fatal(err)
		}
		eng.SetModels(models)
		if _, err := eng.Predictor(); err != nil {
			b.Fatal(err)
		}
		_ = man
	}
}

// BenchmarkColdStartRetrain is the alternative the registry obviates: a
// full paper-scale training run from scratch at boot.
func BenchmarkColdStartRetrain(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := engine.NewDefault(engine.Options{})
		if _, err := eng.TrainDefault(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchKernels generates distinct OpenCL kernels so the predict loop is
// not a single cache entry.
func benchKernels(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf(`__kernel void k%d(__global const float* a, __global float* o, int n) {
			int i = get_global_id(0);
			if (i < n) o[i] = a[i] * %d.0f + %d.0f;
		}`, i, i+1, i)
	}
	return out
}

// probeInterval paces the predict probes: a closed polling loop would
// starve the background retrain of CPU on small machines (CI runs on one
// core), which is neither realistic traffic nor a useful latency sample.
const probeInterval = 5 * time.Millisecond

// predictPercentiles drives paced /predict probes through the mux until
// stop closes (or minCalls is reached with no stop channel), returning
// p50/p99 latencies in milliseconds.
func predictPercentiles(b *testing.B, s *server, kernels []string, stop <-chan struct{}, minCalls int) (p50, p99 float64) {
	b.Helper()
	var lat []time.Duration
	for i := 0; ; i++ {
		if stop != nil {
			select {
			case <-stop:
				if len(lat) >= 32 {
					return percentiles(lat)
				}
				stop = nil // retrain finished very fast; top up to minCalls
			default:
			}
		}
		if stop == nil && len(lat) >= minCalls {
			return percentiles(lat)
		}
		body := `{"source": ` + jsonStr(kernels[i%len(kernels)]) + `}`
		start := time.Now()
		rec := httptest.NewRecorder()
		s.mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(body)))
		if rec.Code != http.StatusOK {
			b.Fatalf("predict status %d: %s", rec.Code, rec.Body)
		}
		lat = append(lat, time.Since(start))
		time.Sleep(probeInterval)
	}
}

func percentiles(lat []time.Duration) (p50, p99 float64) {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	at := func(p float64) float64 {
		idx := int(p * float64(len(lat)-1))
		return float64(lat[idx].Microseconds()) / 1000
	}
	return at(0.50), at(0.99)
}

// newBenchServer builds a server pre-loaded with the paper-scale snapshot.
func newBenchServer(b *testing.B) *server {
	b.Helper()
	dir, _ := paperSnapshot(b)
	store, err := registry.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	s := newServer(engine.NewDefault(engine.Options{}), store, "titanx", adapt.Config{})
	if !s.loadActive() {
		b.Fatal("bench server did not load the snapshot")
	}
	return s
}

// BenchmarkPredictBaseline measures /predict p50/p99 with no concurrent
// retrain — the reference for BenchmarkPredictDuringRetrain.
func BenchmarkPredictBaseline(b *testing.B) {
	s := newBenchServer(b)
	kernels := benchKernels(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p50, p99 := predictPercentiles(b, s, kernels, nil, 512)
		b.ReportMetric(p50, "p50-ms")
		b.ReportMetric(p99, "p99-ms")
	}
}

// BenchmarkPredictDuringRetrain measures /predict p50/p99 while a full
// background retrain runs and hot-swaps — the async-/train acceptance
// number: serving latency must not collapse during training.
func BenchmarkPredictDuringRetrain(b *testing.B) {
	s := newBenchServer(b)
	kernels := benchKernels(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job, err := s.startTraining(0)
		if err != nil {
			b.Fatal(err)
		}
		stop := make(chan struct{})
		go func() {
			s.waitTraining(job)
			close(stop)
		}()
		p50, p99 := predictPercentiles(b, s, kernels, stop, 512)
		if st := job.snapshot(s); st.Status != statusReady {
			b.Fatalf("retrain did not publish: %+v", st)
		}
		b.ReportMetric(p50, "p50-ms")
		b.ReportMetric(p99, "p99-ms")
	}
}
