package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/measure"
	"repro/internal/nvml"
	"repro/internal/policy"
)

const saxpy = `__kernel void saxpy(__global const float* x, __global float* y, float a, int n) {
	int i = get_global_id(0);
	if (i < n) y[i] = a * x[i] + y[i];
}`

func testServer(t *testing.T) *server {
	t.Helper()
	return newServer(engine.NewDefault(engine.Options{
		Workers: 4,
		Core:    core.Options{SettingsPerKernel: 4},
	}))
}

// testServerOn builds a server over a small engine for the named GPU
// profile ("titanx" or "p100").
func testServerOn(t *testing.T, name string) *server {
	t.Helper()
	dev, err := device(name)
	if err != nil {
		t.Fatal(err)
	}
	return newServer(engine.New(measure.NewHarness(nvml.NewDevice(dev)), engine.Options{
		Workers: 4,
		Core:    core.Options{SettingsPerKernel: 4},
	}))
}

func get(t *testing.T, s *server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func post(t *testing.T, s *server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, strings.NewReader(body)))
	return rec
}

func TestHealthzUntrained(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var h healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Trained || h.Cache != nil {
		t.Fatalf("unexpected health: %+v", h)
	}
	if h.Workers != 4 {
		t.Fatalf("workers = %d, want 4", h.Workers)
	}
}

func TestPredictBeforeTraining(t *testing.T) {
	s := testServer(t)
	rec := post(t, s, "/predict", `{"source": "x", "kernel": "k"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
}

func TestTrainPredictHealthzCycle(t *testing.T) {
	s := testServer(t)

	rec := post(t, s, "/train", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("train status %d: %s", rec.Code, rec.Body)
	}
	var tr trainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Kernels != 106 || tr.Samples == 0 || tr.SpeedupSVs == 0 || tr.EnergySVs == 0 {
		t.Fatalf("unexpected train response: %+v", tr)
	}
	// Solver stats must be present and round-trip the installed models'
	// values (whether a model converges is a solver property, not the
	// handler's; the handler only has to report it faithfully).
	if tr.SpeedupModel.SupportVectors != tr.SpeedupSVs ||
		tr.EnergyModel.SupportVectors != tr.EnergySVs {
		t.Fatalf("solver stats disagree with SV counts: %+v", tr)
	}
	if tr.SpeedupModel.Iters == 0 || tr.EnergyModel.Iters == 0 {
		t.Fatalf("missing solver iteration counts: %+v", tr)
	}
	models := s.engine.Models()
	if tr.SpeedupModel.Converged != models.Speedup.Converged ||
		tr.EnergyModel.Converged != models.Energy.Converged ||
		tr.SpeedupModel.Iters != models.Speedup.Iters ||
		tr.EnergyModel.Iters != models.Energy.Iters {
		t.Fatalf("solver stats do not match installed models: %+v", tr)
	}

	// Batch predict: two kernels, one of them twice so the cache hits.
	body := `{"kernels": [
		{"source": ` + jsonStr(saxpy) + `, "kernel": "saxpy"},
		{"source": ` + jsonStr(saxpy) + `, "kernel": "saxpy"},
		{"source": "not opencl", "kernel": "nope"}
	]}`
	rec = post(t, s, "/predict", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict status %d: %s", rec.Code, rec.Body)
	}
	var pr predictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(pr.Results))
	}
	if len(pr.Results[0].Pareto) == 0 || len(pr.Results[1].Pareto) == 0 {
		t.Fatalf("empty Pareto sets: %+v", pr.Results[:2])
	}
	if pr.Results[2].Error == "" || pr.Results[2].Pareto != nil {
		t.Fatalf("bad source did not error: %+v", pr.Results[2])
	}
	if last := pr.Results[0].Pareto[len(pr.Results[0].Pareto)-1]; !last.MemLHeuristic {
		t.Fatalf("last prediction is not the mem-L heuristic: %+v", last)
	}
	if pr.Cache.Hits == 0 {
		t.Fatalf("duplicate kernel produced no cache hits: %+v", pr.Cache)
	}

	// Health now reports the trained model and cache counters.
	var h healthResponse
	if err := json.Unmarshal(get(t, s, "/healthz").Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if !h.Trained || h.Cache == nil || h.Cache.Entries == 0 {
		t.Fatalf("health after training: %+v", h)
	}
}

func TestTrainSettingsOverride(t *testing.T) {
	s := testServer(t)
	rec := post(t, s, "/train", `{"settings": 12}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("train status %d: %s", rec.Code, rec.Body)
	}
	var tr trainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	// The server default (4 settings) clamps to the ladder minimum of 9
	// sampled configs per kernel; an override of 12 must sample more.
	if tr.Samples <= 106*9 {
		t.Fatalf("override ignored: %d samples", tr.Samples)
	}
	if !s.engine.Trained() {
		t.Fatal("models not installed after override run")
	}
}

func TestPoliciesEndpoint(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/policies")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var pr policiesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Policies) != len(policy.Builtins()) {
		t.Fatalf("policies = %d, want %d", len(pr.Policies), len(policy.Builtins()))
	}
	for _, p := range pr.Policies {
		if p.Name == "" || p.Description == "" {
			t.Fatalf("incomplete policy info: %+v", p)
		}
	}
}

// TestSelectEveryPolicyBothProfiles is the acceptance check: POST /select
// returns a policy-consistent configuration for every built-in policy on
// both GPU profiles.
func TestSelectEveryPolicyBothProfiles(t *testing.T) {
	for _, devName := range []string{"titanx", "p100"} {
		s := testServerOn(t, devName)
		if rec := post(t, s, "/train", ""); rec.Code != http.StatusOK {
			t.Fatalf("%s train status %d: %s", devName, rec.Code, rec.Body)
		}
		ladder := s.engine.Harness().Device().Sim().Ladder
		for _, info := range policy.Builtins() {
			body := `{"policy": {"name": "` + info.Name + `"}, "source": ` + jsonStr(saxpy) + `, "kernel": "saxpy"}`
			rec := post(t, s, "/select", body)
			if rec.Code != http.StatusOK {
				t.Fatalf("%s/%s select status %d: %s", devName, info.Name, rec.Code, rec.Body)
			}
			var sr selectResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
				t.Fatal(err)
			}
			if sr.Policy.Name != info.Name || sr.Policy.MaxSlowdown == 0 || sr.Policy.EnergyBudget == 0 {
				t.Fatalf("%s/%s: unresolved policy in response: %+v", devName, info.Name, sr.Policy)
			}
			if len(sr.Results) != 1 || sr.Results[0].Error != "" || sr.Results[0].Decision == nil {
				t.Fatalf("%s/%s: bad results: %+v", devName, info.Name, sr.Results)
			}
			d := sr.Results[0].Decision
			if !ladder.Supported(d.Chosen.Config) {
				t.Errorf("%s/%s chose %v: not a ladder configuration", devName, info.Name, d.Chosen.Config)
			}
			if d.Feasible {
				switch info.Name {
				case policy.MinEnergy:
					if d.Chosen.Speedup < sr.Policy.SpeedupFloor() {
						t.Errorf("%s min-energy speedup %.3f below floor", devName, d.Chosen.Speedup)
					}
				case policy.MaxPerf:
					if d.Chosen.NormEnergy > sr.Policy.EnergyBudget {
						t.Errorf("%s max-perf energy %.3f above budget", devName, d.Chosen.NormEnergy)
					}
				}
			} else if d.Fallback == "" {
				t.Errorf("%s/%s infeasible without fallback note", devName, info.Name)
			}
		}
	}
}

func TestSelectInfeasibleFallback(t *testing.T) {
	s := testServer(t)
	if rec := post(t, s, "/train", ""); rec.Code != http.StatusOK {
		t.Fatalf("train status %d: %s", rec.Code, rec.Body)
	}
	// Demand a predicted speedup ≥ 1.5: no clock delivers that, so the
	// documented fallback (maximum-speedup configuration) must kick in.
	body := `{"policy": {"name": "min-energy", "max_slowdown": -0.5}, "source": ` + jsonStr(saxpy) + `}`
	rec := post(t, s, "/select", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("select status %d: %s", rec.Code, rec.Body)
	}
	var sr selectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	d := sr.Results[0].Decision
	if d == nil || d.Feasible || d.Fallback == "" {
		t.Fatalf("expected documented infeasible fallback, got %+v", sr.Results[0])
	}
}

func TestSelectCachesDecisions(t *testing.T) {
	s := testServer(t)
	if rec := post(t, s, "/train", ""); rec.Code != http.StatusOK {
		t.Fatalf("train status %d: %s", rec.Code, rec.Body)
	}
	body := `{"policy": {"name": "edp"}, "kernels": [
		{"source": ` + jsonStr(saxpy) + `, "kernel": "saxpy"},
		{"source": ` + jsonStr(saxpy) + `, "kernel": "saxpy"}
	]}`
	rec := post(t, s, "/select", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("select status %d: %s", rec.Code, rec.Body)
	}
	var sr selectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Cache.Hits == 0 {
		t.Fatalf("duplicate kernel+policy produced no decision-cache hits: %+v", sr.Cache)
	}
	// Retraining installs a new predictor; the governor (and its cached
	// decisions) must be rebuilt rather than served stale.
	if rec := post(t, s, "/train", ""); rec.Code != http.StatusOK {
		t.Fatalf("retrain status %d: %s", rec.Code, rec.Body)
	}
	rec = post(t, s, "/select", `{"policy": {"name": "edp"}, "source": `+jsonStr(saxpy)+`}`)
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Cache.Hits != 0 || sr.Cache.Misses != 1 {
		t.Fatalf("governor not rebuilt after retraining: %+v", sr.Cache)
	}
}

func TestSelectValidation(t *testing.T) {
	s := testServer(t)
	if rec := post(t, s, "/select", `{"policy": {"name": "edp"}, "source": "x"}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("select before training = %d, want 503", rec.Code)
	}
	// A missing policy name is a 400 even before training: the request is
	// malformed regardless of model state.
	if rec := post(t, s, "/select", `{"source": "x"}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("select without policy = %d, want 400", rec.Code)
	}
	if rec := post(t, s, "/train", ""); rec.Code != http.StatusOK {
		t.Fatalf("train status %d: %s", rec.Code, rec.Body)
	}
	if rec := post(t, s, "/select", `{"policy": {"name": "max-vibes"}, "source": "x"}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown policy = %d, want 400", rec.Code)
	}
	if rec := post(t, s, "/select", `{"policy": {"name": "edp"}}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("no kernels = %d, want 400", rec.Code)
	}
	rec := post(t, s, "/select", `{"policy": {"name": "edp"}, "source": "not opencl"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("bad source select = %d: %s", rec.Code, rec.Body)
	}
	var sr selectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Results[0].Error == "" || sr.Results[0].Decision != nil {
		t.Fatalf("bad source did not error per-kernel: %+v", sr.Results[0])
	}
}

func TestMethodGuards(t *testing.T) {
	s := testServer(t)
	if rec := post(t, s, "/healthz", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz = %d", rec.Code)
	}
	if rec := get(t, s, "/train"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /train = %d", rec.Code)
	}
	if rec := get(t, s, "/predict"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict = %d", rec.Code)
	}
	if rec := post(t, s, "/predict", `{}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty predict = %d", rec.Code)
	}
	if rec := get(t, s, "/select"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /select = %d", rec.Code)
	}
	if rec := post(t, s, "/policies", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /policies = %d", rec.Code)
	}
}

func jsonStr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
