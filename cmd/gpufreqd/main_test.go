package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

const saxpy = `__kernel void saxpy(__global const float* x, __global float* y, float a, int n) {
	int i = get_global_id(0);
	if (i < n) y[i] = a * x[i] + y[i];
}`

func testServer(t *testing.T) *server {
	t.Helper()
	return newServer(engine.NewDefault(engine.Options{
		Workers: 4,
		Core:    core.Options{SettingsPerKernel: 4},
	}))
}

func get(t *testing.T, s *server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func post(t *testing.T, s *server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, strings.NewReader(body)))
	return rec
}

func TestHealthzUntrained(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var h healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Trained || h.Cache != nil {
		t.Fatalf("unexpected health: %+v", h)
	}
	if h.Workers != 4 {
		t.Fatalf("workers = %d, want 4", h.Workers)
	}
}

func TestPredictBeforeTraining(t *testing.T) {
	s := testServer(t)
	rec := post(t, s, "/predict", `{"source": "x", "kernel": "k"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
}

func TestTrainPredictHealthzCycle(t *testing.T) {
	s := testServer(t)

	rec := post(t, s, "/train", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("train status %d: %s", rec.Code, rec.Body)
	}
	var tr trainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Kernels != 106 || tr.Samples == 0 || tr.SpeedupSVs == 0 || tr.EnergySVs == 0 {
		t.Fatalf("unexpected train response: %+v", tr)
	}

	// Batch predict: two kernels, one of them twice so the cache hits.
	body := `{"kernels": [
		{"source": ` + jsonStr(saxpy) + `, "kernel": "saxpy"},
		{"source": ` + jsonStr(saxpy) + `, "kernel": "saxpy"},
		{"source": "not opencl", "kernel": "nope"}
	]}`
	rec = post(t, s, "/predict", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict status %d: %s", rec.Code, rec.Body)
	}
	var pr predictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(pr.Results))
	}
	if len(pr.Results[0].Pareto) == 0 || len(pr.Results[1].Pareto) == 0 {
		t.Fatalf("empty Pareto sets: %+v", pr.Results[:2])
	}
	if pr.Results[2].Error == "" || pr.Results[2].Pareto != nil {
		t.Fatalf("bad source did not error: %+v", pr.Results[2])
	}
	if last := pr.Results[0].Pareto[len(pr.Results[0].Pareto)-1]; !last.MemLHeuristic {
		t.Fatalf("last prediction is not the mem-L heuristic: %+v", last)
	}
	if pr.Cache.Hits == 0 {
		t.Fatalf("duplicate kernel produced no cache hits: %+v", pr.Cache)
	}

	// Health now reports the trained model and cache counters.
	var h healthResponse
	if err := json.Unmarshal(get(t, s, "/healthz").Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if !h.Trained || h.Cache == nil || h.Cache.Entries == 0 {
		t.Fatalf("health after training: %+v", h)
	}
}

func TestTrainSettingsOverride(t *testing.T) {
	s := testServer(t)
	rec := post(t, s, "/train", `{"settings": 12}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("train status %d: %s", rec.Code, rec.Body)
	}
	var tr trainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	// The server default (4 settings) clamps to the ladder minimum of 9
	// sampled configs per kernel; an override of 12 must sample more.
	if tr.Samples <= 106*9 {
		t.Fatalf("override ignored: %d samples", tr.Samples)
	}
	if !s.engine.Trained() {
		t.Fatal("models not installed after override run")
	}
}

func TestMethodGuards(t *testing.T) {
	s := testServer(t)
	if rec := post(t, s, "/healthz", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz = %d", rec.Code)
	}
	if rec := get(t, s, "/train"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /train = %d", rec.Code)
	}
	if rec := get(t, s, "/predict"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict = %d", rec.Code)
	}
	if rec := post(t, s, "/predict", `{}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty predict = %d", rec.Code)
	}
}

func jsonStr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
