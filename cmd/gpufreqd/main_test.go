package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/measure"
	"repro/internal/nvml"
	"repro/internal/policy"
	"repro/internal/registry"
)

const saxpy = `__kernel void saxpy(__global const float* x, __global float* y, float a, int n) {
	int i = get_global_id(0);
	if (i < n) y[i] = a * x[i] + y[i];
}`

func testServer(t *testing.T) *server {
	t.Helper()
	return testServerDir(t, "")
}

// testServerDir builds a Titan X server over a registry rooted at dir
// ("" = in-memory registry).
func testServerDir(t *testing.T, dir string) *server {
	t.Helper()
	store, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return newServer(engine.NewDefault(engine.Options{
		Workers: 4,
		Core:    core.Options{SettingsPerKernel: 4},
	}), store, "titanx", adapt.Config{})
}

// testServerOn builds a server over a small engine for the named GPU
// profile ("titanx" or "p100").
func testServerOn(t *testing.T, name string) *server {
	t.Helper()
	dev, err := device(name)
	if err != nil {
		t.Fatal(err)
	}
	store, err := registry.Open("")
	if err != nil {
		t.Fatal(err)
	}
	return newServer(engine.New(measure.NewHarness(nvml.NewDevice(dev)), engine.Options{
		Workers: 4,
		Core:    core.Options{SettingsPerKernel: 4},
	}), store, name, adapt.Config{})
}

func get(t *testing.T, s *server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func post(t *testing.T, s *server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, strings.NewReader(body)))
	return rec
}

// trainWait starts a training run over HTTP and polls /models/{id} until
// the background job publishes (or fails), returning the final entry.
func trainWait(t *testing.T, s *server, body string) modelEntry {
	t.Helper()
	rec := post(t, s, "/train", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("train status %d, want 202: %s", rec.Code, rec.Body)
	}
	var acc trainAccepted
	if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Version == "" || acc.Status != statusTraining || acc.Poll != "/models/"+acc.Version {
		t.Fatalf("unexpected 202 body: %+v", acc)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		rec := get(t, s, acc.Poll)
		if rec.Code != http.StatusOK {
			t.Fatalf("poll %s status %d: %s", acc.Poll, rec.Code, rec.Body)
		}
		var me modelEntry
		if err := json.Unmarshal(rec.Body.Bytes(), &me); err != nil {
			t.Fatal(err)
		}
		if me.Status != statusTraining {
			return me
		}
		if time.Now().After(deadline) {
			t.Fatalf("training %s did not finish in time", acc.Version)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHealthzUntrained(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var h healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Trained || h.Cache != nil || h.ModelVersion != "" {
		t.Fatalf("unexpected health: %+v", h)
	}
	if h.Workers != 4 {
		t.Fatalf("workers = %d, want 4", h.Workers)
	}
	if h.Registry != "memory" {
		t.Fatalf("registry = %q, want memory", h.Registry)
	}
}

func TestPredictBeforeTraining(t *testing.T) {
	s := testServer(t)
	rec := post(t, s, "/predict", `{"source": "x", "kernel": "k"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
}

func TestTrainPredictHealthzCycle(t *testing.T) {
	s := testServer(t)

	me := trainWait(t, s, "")
	if me.Status != statusReady || me.Manifest == nil {
		t.Fatalf("unexpected train outcome: %+v", me)
	}
	man := me.Manifest
	if man.Training.Kernels != 106 || man.Training.Samples == 0 ||
		man.SpeedupModel.SupportVectors == 0 || man.EnergyModel.SupportVectors == 0 {
		t.Fatalf("unexpected manifest: %+v", man)
	}
	// Solver stats must round-trip the installed models' values (whether a
	// model converges is a solver property, not the handler's; the handler
	// only has to report it faithfully).
	if man.SpeedupModel.Iters == 0 || man.EnergyModel.Iters == 0 {
		t.Fatalf("missing solver iteration counts: %+v", man)
	}
	models := s.engine.Models()
	if man.SpeedupModel.Converged != models.Speedup.Converged ||
		man.EnergyModel.Converged != models.Energy.Converged ||
		man.SpeedupModel.Iters != models.Speedup.Iters ||
		man.EnergyModel.Iters != models.Energy.Iters {
		t.Fatalf("solver stats do not match installed models: %+v", man)
	}

	// Batch predict: two kernels, one of them twice so the cache hits.
	body := `{"kernels": [
		{"source": ` + jsonStr(saxpy) + `, "kernel": "saxpy"},
		{"source": ` + jsonStr(saxpy) + `, "kernel": "saxpy"},
		{"source": "not opencl", "kernel": "nope"}
	]}`
	rec := post(t, s, "/predict", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict status %d: %s", rec.Code, rec.Body)
	}
	var pr predictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.ModelVersion != me.Version {
		t.Fatalf("predict served %q, want %q", pr.ModelVersion, me.Version)
	}
	if len(pr.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(pr.Results))
	}
	if len(pr.Results[0].Pareto) == 0 || len(pr.Results[1].Pareto) == 0 {
		t.Fatalf("empty Pareto sets: %+v", pr.Results[:2])
	}
	if pr.Results[2].Error == "" || pr.Results[2].Pareto != nil {
		t.Fatalf("bad source did not error: %+v", pr.Results[2])
	}
	if last := pr.Results[0].Pareto[len(pr.Results[0].Pareto)-1]; !last.MemLHeuristic {
		t.Fatalf("last prediction is not the mem-L heuristic: %+v", last)
	}
	if pr.Cache.Hits == 0 {
		t.Fatalf("duplicate kernel produced no cache hits: %+v", pr.Cache)
	}

	// Health now reports the trained model, its version, and cache counters.
	var h healthResponse
	if err := json.Unmarshal(get(t, s, "/healthz").Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if !h.Trained || h.ModelVersion != me.Version || h.Cache == nil || h.Cache.Entries == 0 {
		t.Fatalf("health after training: %+v", h)
	}
}

func TestTrainSettingsOverride(t *testing.T) {
	s := testServer(t)
	me := trainWait(t, s, `{"settings": 12}`)
	if me.Status != statusReady {
		t.Fatalf("train failed: %+v", me)
	}
	// The server default (4 settings) clamps to the ladder minimum of 9
	// sampled configs per kernel; an override of 12 must sample more.
	if me.Manifest.Training.Samples <= 106*9 {
		t.Fatalf("override ignored: %d samples", me.Manifest.Training.Samples)
	}
	if me.Manifest.Training.SettingsPerKernel != 12 {
		t.Fatalf("manifest records %d settings, want 12", me.Manifest.Training.SettingsPerKernel)
	}
	if !s.engine.Trained() {
		t.Fatal("models not installed after override run")
	}
}

// TestTrainDoesNotBlockPredict is the async-/train fix: while a training
// run is in flight, /predict keeps serving the previous version, and a
// second /train is rejected with 409.
func TestTrainDoesNotBlockPredict(t *testing.T) {
	s := testServer(t)
	first := trainWait(t, s, "")

	// Kick off a retrain and immediately predict: the request must be
	// answered by the still-active first version, not block.
	rec := post(t, s, "/train", "")
	if rec.Code != http.StatusAccepted {
		t.Fatalf("retrain status %d: %s", rec.Code, rec.Body)
	}
	var acc trainAccepted
	if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
		t.Fatal(err)
	}
	if rec := post(t, s, "/train", ""); rec.Code != http.StatusConflict {
		t.Fatalf("concurrent train status %d, want 409: %s", rec.Code, rec.Body)
	}

	var pr predictResponse
	rec = post(t, s, "/predict", `{"source": `+jsonStr(saxpy)+`, "kernel": "saxpy"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict during retrain: %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.ModelVersion != first.Version {
		// The retrain may legitimately have finished already; it must then
		// be serving the new version, never nothing.
		if pr.ModelVersion != acc.Version {
			t.Fatalf("predict served %q, want %q or %q", pr.ModelVersion, first.Version, acc.Version)
		}
	}

	// Drain the background run so the test leaves nothing in flight.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var me modelEntry
		if err := json.Unmarshal(get(t, s, acc.Poll).Body.Bytes(), &me); err != nil {
			t.Fatal(err)
		}
		if me.Status == statusReady {
			break
		}
		if me.Status == statusFailed || time.Now().After(deadline) {
			t.Fatalf("background retrain did not publish: %+v", me)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestConcurrentPredictDuringRetrainRace hammers /predict from several
// goroutines while a background retrain runs, then drops the load and
// waits for the retrain to publish and hot-swap; run with -race this is
// the crash-safety satellite's concurrency check at the HTTP layer. The
// load window is bounded (rather than lasting the whole retrain) so the
// single-core CI runner cannot starve the trainer into the test deadline.
func TestConcurrentPredictDuringRetrainRace(t *testing.T) {
	s := testServer(t)
	trainWait(t, s, "")

	rec := post(t, s, "/train", "")
	if rec.Code != http.StatusAccepted {
		t.Fatalf("retrain status %d", rec.Code)
	}
	var acc trainAccepted
	if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var calls atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				s.mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/predict",
					strings.NewReader(`{"source": `+jsonStr(saxpy)+`, "kernel": "saxpy"}`)))
				if rec.Code != http.StatusOK {
					t.Errorf("predict during retrain: %d: %s", rec.Code, rec.Body)
					return
				}
				calls.Add(1)
			}
		}()
	}
	// Load for a bounded window (or until the retrain publishes first on a
	// fast machine), then stop and let the run finish.
	loadUntil := time.Now().Add(2 * time.Second)
	for time.Now().Before(loadUntil) {
		var me modelEntry
		if err := json.Unmarshal(get(t, s, acc.Poll).Body.Bytes(), &me); err != nil {
			t.Fatal(err)
		}
		if me.Status != statusTraining {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if calls.Load() == 0 {
		t.Fatal("no predictions served during the retrain window")
	}

	deadline := time.Now().Add(4 * time.Minute)
	for {
		var me modelEntry
		if err := json.Unmarshal(get(t, s, acc.Poll).Body.Bytes(), &me); err != nil {
			t.Fatal(err)
		}
		if me.Status != statusTraining {
			if me.Status != statusReady {
				t.Errorf("retrain outcome: %+v", me)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("retrain did not finish")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestModelLifecycle exercises the versioned registry over HTTP: two
// trained versions, listing, explicit activation, preserved per-version
// stats, and rollback.
func TestModelLifecycle(t *testing.T) {
	s := testServer(t)
	v1 := trainWait(t, s, "")
	// Traffic against v1, so its counters are non-zero before the swap.
	if rec := post(t, s, "/predict", `{"source": `+jsonStr(saxpy)+`}`); rec.Code != http.StatusOK {
		t.Fatalf("predict v1: %d", rec.Code)
	}
	v2 := trainWait(t, s, "")
	if v1.Version == v2.Version {
		t.Fatalf("retrain reused version %s", v1.Version)
	}

	// Listing: both versions, v2 active, v1's stats preserved (frozen).
	rec := get(t, s, "/models")
	if rec.Code != http.StatusOK {
		t.Fatalf("models status %d", rec.Code)
	}
	var mr modelsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Active != v2.Version || mr.Previous != v1.Version || len(mr.Models) != 2 {
		t.Fatalf("unexpected listing: %+v", mr)
	}
	byVersion := map[string]modelEntry{}
	for _, me := range mr.Models {
		byVersion[me.Version] = me
	}
	if !byVersion[v2.Version].Active || byVersion[v1.Version].Active {
		t.Fatalf("active flags wrong: %+v", mr.Models)
	}
	old := byVersion[v1.Version]
	if old.Stats == nil || old.Stats.Live || old.Stats.Predictor.Misses == 0 {
		t.Fatalf("v1 stats dropped on swap: %+v", old.Stats)
	}

	// Explicit activation back to v1.
	rec = post(t, s, "/models/"+v1.Version+"/activate", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("activate status %d: %s", rec.Code, rec.Body)
	}
	var ar activateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Active != v1.Version || ar.Previous != v2.Version || ar.Hash != v1.Manifest.Hash {
		t.Fatalf("unexpected activate response: %+v", ar)
	}
	var pr predictResponse
	if err := json.Unmarshal(post(t, s, "/predict", `{"source": `+jsonStr(saxpy)+`}`).Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.ModelVersion != v1.Version {
		t.Fatalf("serving %q after activate, want %q", pr.ModelVersion, v1.Version)
	}

	// Rollback returns to v2.
	rec = post(t, s, "/models/rollback", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("rollback status %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Active != v2.Version {
		t.Fatalf("rollback activated %q, want %q", ar.Active, v2.Version)
	}

	// Unknown version: 404 on detail and activation.
	if rec := get(t, s, "/models/v9999"); rec.Code != http.StatusNotFound {
		t.Fatalf("GET unknown model = %d", rec.Code)
	}
	if rec := post(t, s, "/models/v9999/activate", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("activate unknown model = %d", rec.Code)
	}
}

func TestRollbackWithoutHistory(t *testing.T) {
	s := testServer(t)
	if rec := post(t, s, "/models/rollback", ""); rec.Code != http.StatusConflict {
		t.Fatalf("rollback with no history = %d, want 409", rec.Code)
	}
}

// TestRestartServesBitIdentical is the acceptance check: a server
// restarted against a populated -model-dir serves /predict and /select
// without retraining, bit-identical to the pre-restart model.
func TestRestartServesBitIdentical(t *testing.T) {
	dir := t.TempDir()
	s1 := testServerDir(t, dir)
	me := trainWait(t, s1, "")

	predictBody := `{"source": ` + jsonStr(saxpy) + `, "kernel": "saxpy"}`
	selectBody := `{"policy": {"name": "min-energy"}, "source": ` + jsonStr(saxpy) + `, "kernel": "saxpy"}`
	pred1 := post(t, s1, "/predict", predictBody)
	sel1 := post(t, s1, "/select", selectBody)
	if pred1.Code != http.StatusOK || sel1.Code != http.StatusOK {
		t.Fatalf("pre-restart: predict %d, select %d", pred1.Code, sel1.Code)
	}

	// "Restart": a fresh server process over the same model directory.
	s2 := testServerDir(t, dir)
	if !s2.loadActive() {
		t.Fatal("restarted server did not load the active snapshot")
	}
	if s2.serving.Version() != me.Version {
		t.Fatalf("restarted server serves %q, want %q", s2.serving.Version(), me.Version)
	}
	pred2 := post(t, s2, "/predict", predictBody)
	sel2 := post(t, s2, "/select", selectBody)
	if pred2.Code != http.StatusOK || sel2.Code != http.StatusOK {
		t.Fatalf("post-restart: predict %d, select %d", pred2.Code, sel2.Code)
	}

	// Bit-identical responses modulo cache counters (which are per-process):
	// compare the results payloads verbatim.
	if a, b := resultsJSON(t, pred1.Body.Bytes()), resultsJSON(t, pred2.Body.Bytes()); a != b {
		t.Fatalf("predict results differ across restart:\npre:  %s\npost: %s", a, b)
	}
	if a, b := resultsJSON(t, sel1.Body.Bytes()), resultsJSON(t, sel2.Body.Bytes()); a != b {
		t.Fatalf("select results differ across restart:\npre:  %s\npost: %s", a, b)
	}
}

// resultsJSON extracts the "results" array of a response as canonical JSON.
func resultsJSON(t *testing.T, body []byte) string {
	t.Helper()
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	return string(doc["results"])
}

// TestBootSkipsCorruptSnapshot: a truncated active snapshot must not be
// served; the server boots untrained instead of crashing or serving junk.
func TestBootSkipsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	s1 := testServerDir(t, dir)
	me := trainWait(t, s1, "")

	path := filepath.Join(dir, "titanx", me.Version+".json")
	doc, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, doc[:len(doc)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := testServerDir(t, dir)
	if s2.loadActive() {
		t.Fatal("corrupt snapshot was loaded")
	}
	if rec := post(t, s2, "/predict", `{"source": "x"}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("predict against corrupt snapshot = %d, want 503", rec.Code)
	}
	// The listing names the damage.
	var mr modelsResponse
	if err := json.Unmarshal(get(t, s2, "/models").Body.Bytes(), &mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Models) != 1 || mr.Models[0].Status != statusFailed || mr.Models[0].Error == "" {
		t.Fatalf("corrupt snapshot not surfaced in listing: %+v", mr.Models)
	}
	// Activating it explicitly is refused.
	if rec := post(t, s2, "/models/"+me.Version+"/activate", ""); rec.Code != http.StatusConflict {
		t.Fatalf("activating corrupt snapshot = %d, want 409", rec.Code)
	}
}

func TestPoliciesEndpoint(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/policies")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var pr policiesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Policies) != len(policy.Builtins()) {
		t.Fatalf("policies = %d, want %d", len(pr.Policies), len(policy.Builtins()))
	}
	for _, p := range pr.Policies {
		if p.Name == "" || p.Description == "" {
			t.Fatalf("incomplete policy info: %+v", p)
		}
	}
}

// TestSelectEveryPolicyBothProfiles is the acceptance check: POST /select
// returns a policy-consistent configuration for every built-in policy on
// both GPU profiles.
func TestSelectEveryPolicyBothProfiles(t *testing.T) {
	for _, devName := range []string{"titanx", "p100"} {
		s := testServerOn(t, devName)
		trainWait(t, s, "")
		ladder := s.engine.Harness().Device().Sim().Ladder
		for _, info := range policy.Builtins() {
			body := `{"policy": {"name": "` + info.Name + `"}, "source": ` + jsonStr(saxpy) + `, "kernel": "saxpy"}`
			rec := post(t, s, "/select", body)
			if rec.Code != http.StatusOK {
				t.Fatalf("%s/%s select status %d: %s", devName, info.Name, rec.Code, rec.Body)
			}
			var sr selectResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
				t.Fatal(err)
			}
			if sr.Policy.Name != info.Name || sr.Policy.MaxSlowdown == 0 || sr.Policy.EnergyBudget == 0 {
				t.Fatalf("%s/%s: unresolved policy in response: %+v", devName, info.Name, sr.Policy)
			}
			if len(sr.Results) != 1 || sr.Results[0].Error != "" || sr.Results[0].Decision == nil {
				t.Fatalf("%s/%s: bad results: %+v", devName, info.Name, sr.Results)
			}
			d := sr.Results[0].Decision
			if !ladder.Supported(d.Chosen.Config) {
				t.Errorf("%s/%s chose %v: not a ladder configuration", devName, info.Name, d.Chosen.Config)
			}
			if d.Feasible {
				switch info.Name {
				case policy.MinEnergy:
					if d.Chosen.Speedup < sr.Policy.SpeedupFloor() {
						t.Errorf("%s min-energy speedup %.3f below floor", devName, d.Chosen.Speedup)
					}
				case policy.MaxPerf:
					if d.Chosen.NormEnergy > sr.Policy.EnergyBudget {
						t.Errorf("%s max-perf energy %.3f above budget", devName, d.Chosen.NormEnergy)
					}
				}
			} else if d.Fallback == "" {
				t.Errorf("%s/%s infeasible without fallback note", devName, info.Name)
			}
		}
	}
}

func TestSelectInfeasibleFallback(t *testing.T) {
	s := testServer(t)
	trainWait(t, s, "")
	// Demand a predicted speedup ≥ 1.5: no clock delivers that, so the
	// documented fallback (maximum-speedup configuration) must kick in.
	body := `{"policy": {"name": "min-energy", "max_slowdown": -0.5}, "source": ` + jsonStr(saxpy) + `}`
	rec := post(t, s, "/select", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("select status %d: %s", rec.Code, rec.Body)
	}
	var sr selectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	d := sr.Results[0].Decision
	if d == nil || d.Feasible || d.Fallback == "" {
		t.Fatalf("expected documented infeasible fallback, got %+v", sr.Results[0])
	}
}

func TestSelectCachesDecisions(t *testing.T) {
	s := testServer(t)
	trainWait(t, s, "")
	body := `{"policy": {"name": "edp"}, "kernels": [
		{"source": ` + jsonStr(saxpy) + `, "kernel": "saxpy"},
		{"source": ` + jsonStr(saxpy) + `, "kernel": "saxpy"}
	]}`
	rec := post(t, s, "/select", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("select status %d: %s", rec.Code, rec.Body)
	}
	var sr selectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Cache.Hits == 0 {
		t.Fatalf("duplicate kernel+policy produced no decision-cache hits: %+v", sr.Cache)
	}
	// Retraining hot-swaps a new version; the governor (and its cached
	// decisions) must be rebuilt rather than served stale.
	trainWait(t, s, "")
	rec = post(t, s, "/select", `{"policy": {"name": "edp"}, "source": `+jsonStr(saxpy)+`}`)
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Cache.Hits != 0 || sr.Cache.Misses != 1 {
		t.Fatalf("governor not rebuilt after retraining: %+v", sr.Cache)
	}
}

func TestSelectValidation(t *testing.T) {
	s := testServer(t)
	if rec := post(t, s, "/select", `{"policy": {"name": "edp"}, "source": "x"}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("select before training = %d, want 503", rec.Code)
	}
	// A missing policy name is a 400 even before training: the request is
	// malformed regardless of model state.
	if rec := post(t, s, "/select", `{"source": "x"}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("select without policy = %d, want 400", rec.Code)
	}
	trainWait(t, s, "")
	if rec := post(t, s, "/select", `{"policy": {"name": "max-vibes"}, "source": "x"}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown policy = %d, want 400", rec.Code)
	}
	if rec := post(t, s, "/select", `{"policy": {"name": "edp"}}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("no kernels = %d, want 400", rec.Code)
	}
	rec := post(t, s, "/select", `{"policy": {"name": "edp"}, "source": "not opencl"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("bad source select = %d: %s", rec.Code, rec.Body)
	}
	var sr selectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Results[0].Error == "" || sr.Results[0].Decision != nil {
		t.Fatalf("bad source did not error per-kernel: %+v", sr.Results[0])
	}
}

func TestMethodGuards(t *testing.T) {
	s := testServer(t)
	if rec := post(t, s, "/healthz", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz = %d", rec.Code)
	}
	if rec := get(t, s, "/train"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /train = %d", rec.Code)
	}
	if rec := get(t, s, "/predict"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict = %d", rec.Code)
	}
	if rec := post(t, s, "/predict", `{}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty predict = %d", rec.Code)
	}
	if rec := get(t, s, "/select"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /select = %d", rec.Code)
	}
	if rec := post(t, s, "/policies", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /policies = %d", rec.Code)
	}
	if rec := post(t, s, "/models", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /models = %d", rec.Code)
	}
	if rec := post(t, s, "/models/v0001", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /models/{id} = %d", rec.Code)
	}
	if rec := get(t, s, "/models/v0001/activate"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /models/{id}/activate = %d", rec.Code)
	}
	if rec := get(t, s, "/models/rollback"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /models/rollback = %d", rec.Code)
	}
}

// TestImportModelsDeduplicates covers the -model import path: importing
// the same flat file twice must reuse the snapshot, not mint a version.
func TestImportModelsDeduplicates(t *testing.T) {
	s := testServerDir(t, t.TempDir())
	me := trainWait(t, s, "")
	models, _, err := s.store.Load("titanx", me.Version)
	if err != nil {
		t.Fatal(err)
	}

	v1, err := s.importModels(models)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != me.Version {
		t.Fatalf("import minted %s for identical models, want %s", v1, me.Version)
	}
	v2, err := s.importModels(models)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v1 {
		t.Fatalf("second import minted %s, want %s", v2, v1)
	}
}

func jsonStr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
