// Command gpufreqd is the long-running service entry point of the
// frequency-scaling prediction framework: an HTTP server that trains the
// speedup/energy models through the concurrent engine and serves
// Pareto-optimal frequency predictions for OpenCL kernels as JSON.
//
// Endpoints (documented in detail in docs/API.md):
//
//	GET  /healthz   liveness, device, model status, cache counters
//	POST /train     (re)train the models; body: {"settings": 40}
//	POST /predict   predict Pareto sets; body: {"kernels": [{"source": "...", "kernel": "..."}]}
//	                or a single {"source": "...", "kernel": "..."}
//	POST /select    resolve a policy to one chosen configuration; body adds
//	                {"policy": {"name": "min-energy", ...}} to a /predict body
//	GET  /policies  list the built-in policies and their parameters
//
// Usage:
//
//	gpufreqd [-addr :8080] [-device titanx|p100] [-workers 0] [-settings 40]
//	         [-model models.json] [-train-on-start]
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests. A training run is cancelled when its client disconnects.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/features"
	"repro/internal/gpu"
	"repro/internal/measure"
	"repro/internal/nvml"
	"repro/internal/policy"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	deviceName := flag.String("device", "titanx", "GPU profile to serve: titanx or p100")
	workers := flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
	settings := flag.Int("settings", 40, "sampled frequency settings per training kernel")
	modelPath := flag.String("model", "", "load pre-trained models from this file instead of training")
	trainOnStart := flag.Bool("train-on-start", false, "train the models before accepting traffic")
	flag.Parse()

	dev, err := device(*deviceName)
	if err != nil {
		log.Fatalf("gpufreqd: %v", err)
	}
	srv := newServer(engine.New(measure.NewHarness(nvml.NewDevice(dev)), engine.Options{
		Workers: *workers,
		Core:    core.Options{SettingsPerKernel: *settings},
	}))

	if *modelPath != "" {
		models, err := core.LoadFile(*modelPath)
		if err != nil {
			log.Fatalf("gpufreqd: loading %s: %v", *modelPath, err)
		}
		srv.engine.SetModels(models)
		log.Printf("loaded models from %s (speedup: %d SVs, energy: %d SVs)",
			*modelPath, models.Speedup.NumSV(), models.Energy.NumSV())
	} else if *trainOnStart {
		log.Printf("training on the full synthetic suite (%d workers)...", srv.engine.Options().Workers)
		start := time.Now()
		models, err := srv.engine.TrainDefault(context.Background())
		if err != nil {
			log.Fatalf("gpufreqd: training: %v", err)
		}
		log.Printf("trained in %v (speedup: %d SVs, energy: %d SVs)",
			time.Since(start).Round(time.Millisecond), models.Speedup.NumSV(), models.Energy.NumSV())
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("gpufreqd listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("gpufreqd: %v", err)
	case <-ctx.Done():
		log.Print("shutdown signal received, draining connections...")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Fatalf("gpufreqd: shutdown: %v", err)
		}
		log.Print("bye")
	}
}

// device resolves a GPU profile name.
func device(name string) (*gpu.Device, error) { return gpu.ByName(name) }

// server holds the HTTP layer's state: the engine and request bookkeeping.
type server struct {
	engine *engine.Engine
	mux    *http.ServeMux
	routes []string // registered patterns, for introspection and docs checks
	start  time.Time

	trainMu sync.Mutex // serializes training runs

	govMu sync.Mutex
	gov   *policy.Governor // bound to the predictor it was built over
}

func newServer(e *engine.Engine) *server {
	s := &server{engine: e, mux: http.NewServeMux(), start: time.Now()}
	s.handle("/healthz", s.handleHealthz)
	s.handle("/train", s.handleTrain)
	s.handle("/predict", s.handlePredict)
	s.handle("/select", s.handleSelect)
	s.handle("/policies", s.handlePolicies)
	return s
}

// handle registers a route, recording its pattern so tests can verify the
// documented API surface matches the served one.
func (s *server) handle(pattern string, h http.HandlerFunc) {
	s.routes = append(s.routes, pattern)
	s.mux.HandleFunc(pattern, h)
}

// governor returns a policy governor over the engine's current predictor,
// rebuilding it (and thus dropping cached decisions) whenever retraining
// has installed a new predictor.
func (s *server) governor() (*policy.Governor, error) {
	p, err := s.engine.Predictor()
	if err != nil {
		return nil, err
	}
	s.govMu.Lock()
	defer s.govMu.Unlock()
	if s.gov == nil || s.gov.Predictor() != p {
		s.gov = policy.NewGovernor(p, 0)
	}
	return s.gov, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

type healthResponse struct {
	Status        string             `json:"status"`
	Device        string             `json:"device"`
	Trained       bool               `json:"trained"`
	UptimeSeconds float64            `json:"uptime_seconds"`
	Workers       int                `json:"workers"`
	Cache         *engine.CacheStats `json:"cache,omitempty"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	resp := healthResponse{
		Status:        "ok",
		Device:        s.engine.Harness().Device().Sim().Name,
		Trained:       s.engine.Trained(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.engine.Options().Workers,
	}
	if p, err := s.engine.Predictor(); err == nil {
		st := p.Stats()
		resp.Cache = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

type trainRequest struct {
	// Settings overrides the per-kernel sampled settings for this run only
	// (0 = the server's configured default).
	Settings int `json:"settings"`
}

// modelStats reports one model's solver statistics from a training run.
type modelStats struct {
	SupportVectors int  `json:"support_vectors"`
	Iters          int  `json:"iters"`
	Converged      bool `json:"converged"`
}

type trainResponse struct {
	Samples    int     `json:"samples"`
	Kernels    int     `json:"kernels"`
	DurationMS float64 `json:"duration_ms"`
	// SpeedupSVs and EnergySVs are kept for backward compatibility; the
	// per-model solver stats carry the same counts plus iterations and
	// convergence.
	SpeedupSVs   int        `json:"speedup_svs"`
	EnergySVs    int        `json:"energy_svs"`
	SpeedupModel modelStats `json:"speedup_model"`
	EnergyModel  modelStats `json:"energy_model"`
}

func (s *server) handleTrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req trainRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
	}
	if !s.trainMu.TryLock() {
		writeError(w, http.StatusConflict, "a training run is already in progress")
		return
	}
	defer s.trainMu.Unlock()

	eng := s.engine
	if req.Settings > 0 {
		opts := eng.Options()
		opts.Core.SettingsPerKernel = req.Settings
		eng = engine.New(eng.Harness(), opts)
	}

	kernels := engine.TrainingKernels()
	start := time.Now()
	samples, err := eng.BuildTrainingSet(r.Context(), kernels)
	if err != nil {
		trainError(w, err)
		return
	}
	models, err := eng.Fit(r.Context(), samples)
	if err != nil {
		trainError(w, err)
		return
	}
	// Install on the server's engine regardless of per-run overrides.
	s.engine.SetModels(models)
	writeJSON(w, http.StatusOK, trainResponse{
		Samples:    len(samples),
		Kernels:    len(kernels),
		DurationMS: float64(time.Since(start).Microseconds()) / 1000,
		SpeedupSVs: models.Speedup.NumSV(),
		EnergySVs:  models.Energy.NumSV(),
		SpeedupModel: modelStats{
			SupportVectors: models.Speedup.NumSV(),
			Iters:          models.Speedup.Iters,
			Converged:      models.Speedup.Converged,
		},
		EnergyModel: modelStats{
			SupportVectors: models.Energy.NumSV(),
			Iters:          models.Energy.Iters,
			Converged:      models.Energy.Converged,
		},
	})
}

func trainError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.Canceled) {
		// Client went away mid-run; 499 in nginx convention.
		writeError(w, 499, "training cancelled: %v", err)
		return
	}
	writeError(w, http.StatusInternalServerError, "training failed: %v", err)
}

type predictKernel struct {
	// Source is the OpenCL source containing the kernel.
	Source string `json:"source"`
	// Kernel names the kernel function ("" = first kernel in Source).
	Kernel string `json:"kernel"`
}

type predictRequest struct {
	Kernels []predictKernel `json:"kernels"`
	// Single-kernel shorthand, accepted at the top level.
	Source string `json:"source"`
	Kernel string `json:"kernel"`
}

type predictResult struct {
	Kernel string            `json:"kernel"`
	Pareto []core.Prediction `json:"pareto"`
	Error  string            `json:"error,omitempty"`
}

type predictResponse struct {
	Results []predictResult   `json:"results"`
	Cache   engine.CacheStats `json:"cache"`
}

func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	kernels := req.Kernels
	if req.Source != "" {
		kernels = append(kernels, predictKernel{Source: req.Source, Kernel: req.Kernel})
	}
	if len(kernels) == 0 {
		writeError(w, http.StatusBadRequest, "no kernels in request")
		return
	}
	p, err := s.engine.Predictor()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}

	results := make([]predictResult, len(kernels))
	batch := make([]int, 0, len(kernels)) // indices with valid features
	sts := make([]features.Static, 0, len(kernels))
	for i, k := range kernels {
		results[i].Kernel = k.Kernel
		st, err := features.ExtractSource(k.Source, k.Kernel)
		if err != nil {
			results[i].Error = err.Error()
			continue
		}
		batch = append(batch, i)
		sts = append(sts, st)
	}
	if len(batch) > 0 {
		sets, err := p.PredictBatch(r.Context(), sts)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "predict: %v", err)
			return
		}
		for j, i := range batch {
			results[i].Pareto = sets[j]
		}
	}
	writeJSON(w, http.StatusOK, predictResponse{Results: results, Cache: p.Stats()})
}

type selectRequest struct {
	// Policy names the objective and its parameters; see GET /policies.
	Policy policy.Spec `json:"policy"`
	// Kernels is the batch form; Source/Kernel the single-kernel shorthand,
	// exactly as on /predict.
	Kernels []predictKernel `json:"kernels"`
	Source  string          `json:"source"`
	Kernel  string          `json:"kernel"`
}

type selectResult struct {
	Kernel   string           `json:"kernel"`
	Decision *policy.Decision `json:"decision,omitempty"`
	Error    string           `json:"error,omitempty"`
}

type selectResponse struct {
	// Policy is the resolved spec (defaults applied) every decision used.
	Policy  policy.Spec    `json:"policy"`
	Results []selectResult `json:"results"`
	// Cache reports the governor's per-policy decision cache, not the
	// engine's SVR cache (that one is on /healthz and /predict).
	Cache policy.Stats `json:"cache"`
}

func (s *server) handleSelect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req selectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	spec := req.Policy.WithDefaults()
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	kernels := req.Kernels
	if req.Source != "" {
		kernels = append(kernels, predictKernel{Source: req.Source, Kernel: req.Kernel})
	}
	if len(kernels) == 0 {
		writeError(w, http.StatusBadRequest, "no kernels in request")
		return
	}
	gov, err := s.governor()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}

	results := make([]selectResult, len(kernels))
	for i, k := range kernels {
		results[i].Kernel = k.Kernel
		d, err := gov.DecideSource(k.Source, k.Kernel, spec)
		if err != nil {
			results[i].Error = err.Error()
			continue
		}
		results[i].Decision = &d
	}
	writeJSON(w, http.StatusOK, selectResponse{Policy: spec, Results: results, Cache: gov.Stats()})
}

type policiesResponse struct {
	Policies []policy.Info `json:"policies"`
}

func (s *server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, policiesResponse{Policies: policy.Builtins()})
}
