// Command gpufreqd is the long-running service entry point of the
// frequency-scaling prediction framework: an HTTP server that trains the
// speedup/energy models through the concurrent engine, persists them as
// versioned snapshots in a model registry, and serves Pareto-optimal
// frequency predictions for OpenCL kernels as JSON.
//
// Endpoints (documented in detail in docs/API.md):
//
//	GET  /healthz                liveness, device, active model version, cache counters
//	POST /train                  start a background (re)training run; returns 202 + version id
//	POST /predict                predict Pareto sets; body: {"kernels": [{"source": "...", "kernel": "..."}]}
//	                             or a single {"source": "...", "kernel": "..."}
//	POST /predict/batch          columnar batch prediction over pre-extracted features
//	                             (flat JSON columns, or binary framing via
//	                             Content-Type: application/x-gpufreq-columns)
//	POST /select                 resolve a policy to one chosen configuration
//	GET  /policies               list the built-in policies and their parameters
//	GET  /models                 list model versions (snapshots + in-flight training runs)
//	GET  /models/{id}            one version's manifest, training status, serving stats
//	POST /models/{id}/activate   hot-swap serving to the given version
//	POST /models/rollback        hot-swap serving back to the previously active version
//	POST /observe                report a measured (features, config, speedup/energy) sample
//	GET  /adapt/status           adaptation loop: store, drift verdict, retrain history
//	POST /adapt/retrain          force a holdout-guarded retrain now
//	POST /fleet/register         fleet: node registration/heartbeat (returns the snapshot when stale)
//	POST /fleet/observe          fleet: node-forwarded observation batches
//	GET  /fleet/nodes            fleet: the node directory with sync verdicts
//	POST /fleet/push             fleet: re-fan-out every active snapshot to stale nodes
//	GET  /fleet/budget           fleet: energy-budget status — plan, per-node tables, drift
//	POST /fleet/budget           fleet: set the budget or force a replan
//
// Usage:
//
//	gpufreqd [-addr :8080] [-device titanx|p100] [-workers 0] [-settings 40]
//	         [-model-dir DIR] [-model models.json] [-train-on-start]
//	         [-read-concurrency 64] [-control-concurrency 16]
//	         [-adapt-auto] [-adapt-factor 2.0] [-adapt-min-samples 32]
//	         [-adapt-cooldown 2m] [-adapt-capacity 1024] [-adapt-retrain-every 0]
//	         [-adapt-max-age 0] [-obs-dir DIR] [-budget-mix-shift 0.25]
//	         [-http-read-header-timeout 10s] [-http-read-timeout 2m]
//	         [-http-write-timeout 5m] [-http-idle-timeout 2m]
//	gpufreqd -agent -control URL [-node ID] [-advertise URL] [-fleet-sync 0]
//	         [-spool-dir DIR] [-addr :8080] [-device titanx|p100]
//	         [-workers 0] [-settings 40]
//
// Durability: -obs-dir persists the adaptation loop's observation window
// in a crash-safe write-ahead log, replayed on boot so a restarted daemon
// resumes drift detection with the exact pre-crash window; -spool-dir
// (-agent mode) persists observations the agent could not forward, flushed
// in order when the control plane is reachable again. Both servers bound
// slow clients with the four -http-*-timeout flags, and every handler
// panic is absorbed into a structured 500 (counted on /healthz).
//
// The default mode is the fleet's control plane as well as a standalone
// daemon: it owns the registry, aggregates observations forwarded by
// agents, runs drift detection and guarded retrains per device
// fleet-wide, and fans activated snapshots out to registered nodes. In
// -agent mode the process keeps only the memory-resident serving path
// (predict, batch, select, observe-forwarding) plus POST /fleet/snapshot,
// the control plane's push target: it registers with -control, installs
// verified snapshot pushes with a hot swap, and never trains. A new agent
// whose GPU profile has no published model is warm-started from the
// nearest published donor model (see internal/fleet).
//
// The adaptation loop (internal/adapt) closes the train→serve→observe
// cycle: POST /observe feeds a bounded observation store, a drift detector
// compares rolling prediction error against the active snapshot's recorded
// training residuals, and -adapt-auto (on by default) retrains in the
// background when drift — or the sample-count/age policy — fires, folding
// the observations into the training set. A candidate that is worse than
// the active model on held-out observations is published but never
// activated. -adapt-auto=false disables automatic retraining; drift is
// still detected and reported, and POST /adapt/retrain still works.
//
// With -model-dir, trained models are published as versioned on-disk
// snapshots and the active version is loaded on boot, so a restarted
// server serves predictions bit-identical to the pre-restart model without
// retraining. Without it, the registry runs in memory: versioning,
// activation and rollback all work, but nothing survives a restart.
// Training runs in the background — /predict and /select keep serving the
// old model and hot-swap to the new version when it is published.
//
// Handlers are split into a read plane (/predict, /predict/batch,
// /select, /policies) and a control plane (/train, /models*, /observe,
// /adapt/*) with independent in-flight limits (-read-concurrency,
// -control-concurrency; 0 = default, negative = unlimited). A saturated
// plane sheds immediately with 503 and Retry-After: 1 instead of queueing;
// per-plane shed counters appear in GET /healthz, which itself sits
// outside both limiters so liveness probes survive saturation.
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/features"
	"repro/internal/fleet"
	"repro/internal/freq"
	"repro/internal/gpu"
	"repro/internal/measure"
	"repro/internal/nvml"
	"repro/internal/policy"
	"repro/internal/registry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	deviceName := flag.String("device", "titanx", "GPU profile to serve: titanx or p100")
	workers := flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
	settings := flag.Int("settings", 40, "sampled frequency settings per training kernel")
	modelDir := flag.String("model-dir", "", "model registry directory (versioned snapshots; empty = in-memory registry)")
	modelPath := flag.String("model", "", "import pre-trained models from this flat file into the registry")
	trainOnStart := flag.Bool("train-on-start", false, "train the models before accepting traffic")
	adaptAuto := flag.Bool("adapt-auto", true, "retrain automatically when the drift detector (or a retrain policy) fires")
	adaptFactor := flag.Float64("adapt-factor", 0, "drift threshold as a multiple of the training residual baseline (0 = default 2.0)")
	adaptMinSamples := flag.Int("adapt-min-samples", 0, "observations required before drift is evaluated (0 = default 32)")
	adaptCooldown := flag.Duration("adapt-cooldown", 0, "minimum spacing between automatic retrains (0 = default 2m)")
	adaptCapacity := flag.Int("adapt-capacity", 0, "observation store bound in samples (0 = default 1024)")
	adaptRetrainEvery := flag.Int("adapt-retrain-every", 0, "retrain after this many observations regardless of drift (0 = disabled)")
	adaptMaxAge := flag.Duration("adapt-max-age", 0, "retrain when the active snapshot is older than this (0 = disabled)")
	adaptWarmStart := flag.Bool("adapt-warm-start", true, "seed automatic retrains from the active models (warm start); manual retrains always fit cold")
	readConcurrency := flag.Int("read-concurrency", 0, "max in-flight read-plane requests: predict/select/policies (0 = default 64, negative = unlimited)")
	controlConcurrency := flag.Int("control-concurrency", 0, "max in-flight control-plane requests: train/models/observe/adapt (0 = default 16, negative = unlimited)")
	obsDir := flag.String("obs-dir", "", "observation WAL directory: persists the observation window so a restart replays it (empty = memory-only)")
	spoolDir := flag.String("spool-dir", "", "observation spool directory (-agent mode): persists unforwarded observations across restarts (empty = memory-only)")
	readHeaderTimeout := flag.Duration("http-read-header-timeout", defaultReadHeaderTimeout, "max time to read a request's headers (0 = unlimited)")
	readTimeout := flag.Duration("http-read-timeout", defaultReadTimeout, "max time to read a whole request including the body (0 = unlimited)")
	writeTimeout := flag.Duration("http-write-timeout", defaultWriteTimeout, "max time to write a response (0 = unlimited)")
	idleTimeout := flag.Duration("http-idle-timeout", defaultIdleTimeout, "max keep-alive idle time between requests (0 = unlimited)")
	agentMode := flag.Bool("agent", false, "run as a thin fleet node agent against -control: serve pushed snapshots, forward observations, never train")
	controlURL := flag.String("control", "", "control plane base URL (required with -agent)")
	nodeID := flag.String("node", "", "fleet node id (-agent mode; default: the hostname)")
	advertise := flag.String("advertise", "", "base URL the control plane pushes snapshots to (-agent mode; default derived from -addr, loopback on wildcard binds)")
	fleetSync := flag.Duration("fleet-sync", 0, "agent heartbeat interval (-agent mode; 0 = follow the control plane's advertised interval)")
	mixShift := flag.Float64("budget-mix-shift", 0, "L1 kernel-mix drift per node that triggers a fleet budget replan (0 = default 0.25, negative = disabled)")
	flag.Parse()
	budgetMixShift = *mixShift

	timeouts := httpTimeouts{
		ReadHeader: *readHeaderTimeout,
		Read:       *readTimeout,
		Write:      *writeTimeout,
		Idle:       *idleTimeout,
	}

	if *agentMode {
		if err := runAgent(agentOptions{
			Addr:      *addr,
			Device:    *deviceName,
			Workers:   *workers,
			Settings:  *settings,
			Node:      *nodeID,
			Control:   *controlURL,
			Advertise: *advertise,
			Sync:      *fleetSync,
			SpoolDir:  *spoolDir,
			Limits:    planeLimits{Read: *readConcurrency, Control: *controlConcurrency},
			Timeouts:  timeouts,
		}); err != nil {
			log.Fatalf("gpufreqd: %v", err)
		}
		return
	}

	dev, err := device(*deviceName)
	if err != nil {
		log.Fatalf("gpufreqd: %v", err)
	}
	store, err := registry.Open(*modelDir)
	if err != nil {
		log.Fatalf("gpufreqd: %v", err)
	}
	var wal *adapt.WAL
	if *obsDir != "" {
		wal, err = adapt.OpenWAL(adapt.WALConfig{Dir: *obsDir, Capacity: *adaptCapacity})
		if err != nil {
			log.Fatalf("gpufreqd: opening observation WAL: %v", err)
		}
		defer wal.Close()
	}
	srv := newServerWAL(engine.New(measure.NewHarness(nvml.NewDevice(dev)), engine.Options{
		Workers: *workers,
		Core:    core.Options{SettingsPerKernel: *settings},
	}), store, *deviceName, adapt.Config{
		Auto:             *adaptAuto,
		DriftFactor:      *adaptFactor,
		MinSamples:       *adaptMinSamples,
		Cooldown:         *adaptCooldown,
		Capacity:         *adaptCapacity,
		RetrainEvery:     *adaptRetrainEvery,
		MaxModelAge:      *adaptMaxAge,
		DisableWarmStart: !*adaptWarmStart,
	}, planeLimits{Read: *readConcurrency, Control: *controlConcurrency}, wal)

	switch {
	case *modelPath != "":
		models, err := core.LoadFile(*modelPath)
		if err != nil {
			log.Fatalf("gpufreqd: loading %s: %v", *modelPath, err)
		}
		version, err := srv.importModels(models)
		if err != nil {
			log.Fatalf("gpufreqd: importing %s: %v", *modelPath, err)
		}
		log.Printf("imported models from %s as %s (speedup: %d SVs, energy: %d SVs)",
			*modelPath, version, models.Speedup.NumSV(), models.Energy.NumSV())
	case srv.loadActive():
		man := srv.activeManifest()
		log.Printf("serving %s/%s (hash %.8s…, trained %s) loaded from %s — no retraining needed",
			man.Device, man.Version, man.Hash, man.CreatedAt.Format(time.RFC3339), *modelDir)
	case *trainOnStart:
		log.Printf("training on the full synthetic suite (%d workers)...", srv.engine.Options().Workers)
		job, err := srv.startTraining(0)
		if err != nil {
			log.Fatalf("gpufreqd: training: %v", err)
		}
		srv.waitTraining(job)
		if job.snapshot(srv).Status == statusFailed {
			log.Fatalf("gpufreqd: training: %s", job.snapshot(srv).Error)
		}
		log.Printf("trained and published %s in %.0f ms", job.Version, job.snapshot(srv).DurationMS)
	}

	httpSrv := timeouts.server(*addr, srv.handler())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("gpufreqd listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("gpufreqd: %v", err)
	case <-ctx.Done():
		log.Print("shutdown signal received, draining connections...")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Fatalf("gpufreqd: shutdown: %v", err)
		}
		log.Print("bye")
	}
}

// device resolves a GPU profile name.
func device(name string) (*gpu.Device, error) { return gpu.ByName(name) }

// Training-job statuses reported by /train and /models.
const (
	statusTraining = "training"
	statusReady    = "ready"
	statusFailed   = "failed"
)

// trainJob tracks one background training run from reservation to
// publication. Fields past the immutable header are guarded by the owning
// server's jobsMu.
type trainJob struct {
	Version   string    `json:"version"`
	StartedAt time.Time `json:"started_at"`

	Status     string  `json:"status"`
	Error      string  `json:"error,omitempty"`
	DurationMS float64 `json:"duration_ms,omitempty"`
}

// snapshot returns a copy of the job under the server's lock.
func (j *trainJob) snapshot(s *server) trainJob {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	return *j
}

// server holds the HTTP layer's state: the engine, the snapshot store, the
// hot-swap serving holder, the adaptation loop, and training-run
// bookkeeping.
type server struct {
	engine  *engine.Engine
	store   *registry.Store
	serving *registry.Serving
	adapt   *adapt.Controller
	device  string
	mux     *http.ServeMux
	routes  []string // registered patterns, for introspection and docs checks
	start   time.Time

	trainMu sync.Mutex // serializes training runs; held for a run's whole lifetime

	// installMu serializes (store.Activate, serving.Install) pairs, so the
	// on-disk ACTIVE pointer and the in-process serving version can never
	// be swapped in opposite orders by a publishing trainer and a
	// concurrent /models/{id}/activate.
	installMu sync.Mutex

	jobsMu sync.Mutex
	jobs   map[string]*trainJob // version -> training run

	// fleet is the control plane mounted in default mode (nil in agent
	// mode); agent is the node-side half in -agent mode (nil otherwise).
	fleet *fleet.Control
	agent *fleet.Agent

	// read and control are the two handler planes' admission control:
	// serving endpoints and management endpoints shed load independently.
	read    *planeLimiter
	control *planeLimiter

	// panics counts handler panics absorbed by the recovery middleware
	// since boot; nonzero values surface on /healthz.
	panics atomic.Int64

	// wal is the observation WAL feeding the adaptation controller (nil
	// without -obs-dir); held here so /healthz can report its stats.
	wal *adapt.WAL
}

// newServer builds a server with default plane concurrency limits.
func newServer(e *engine.Engine, store *registry.Store, device string, acfg adapt.Config) *server {
	return newServerLimits(e, store, device, acfg, planeLimits{})
}

// newServerLimits is newServer with explicit read/control-plane
// concurrency limits (see planeLimits).
func newServerLimits(e *engine.Engine, store *registry.Store, device string, acfg adapt.Config, limits planeLimits) *server {
	return newServerWAL(e, store, device, acfg, limits, nil)
}

// newServerWAL is newServerLimits with a crash-safe observation WAL (nil =
// memory-only observations): the adaptation controller is seeded from the
// WAL's recovered window, so a restarted daemon resumes drift detection
// where the previous process stopped, and every ingested observation is
// appended for the next restart.
func newServerWAL(e *engine.Engine, store *registry.Store, device string, acfg adapt.Config, limits planeLimits, wal *adapt.WAL) *server {
	s := &server{
		engine:  e,
		store:   store,
		serving: registry.NewServing(),
		device:  device,
		mux:     http.NewServeMux(),
		start:   time.Now(),
		jobs:    map[string]*trainJob{},
		read:    newPlaneLimiter("read", limits.Read, defaultReadConcurrency),
		control: newPlaneLimiter("control", limits.Control, defaultControlConcurrency),
		wal:     wal,
	}
	s.adapt = adapt.New(acfg, adapt.Deps{
		Device: device,
		Store:  store,
		WAL:    wal,
		Current: func() (*engine.Predictor, string, bool) {
			version, pred, _, ok := s.serving.Current()
			return pred, version, ok
		},
		Install: s.activateAndInstall,
		Trainer: adapt.NewEngineTrainer(e, nil),
		Fronts: func(m *core.Models) *registry.Fronts {
			return registry.ComputeFronts(
				engine.NewPredictor(m, e.Harness().Device().Sim().Ladder, e.Options()),
				engine.TrainingKernels())
		},
	})
	// /healthz sits outside both limiters: orchestrator liveness probes
	// must keep answering while a plane sheds load, or a busy-but-healthy
	// instance gets restarted exactly during a spike.
	s.handle("/healthz", s.handleHealthz)
	// Read plane: the serving hot path. Sheds independently of the control
	// plane, so a management burst can never queue behind predictions or
	// vice versa.
	s.handleRead("/predict", s.handlePredict)
	s.handleRead("/predict/batch", s.handlePredictBatch)
	s.handleRead("/select", s.handleSelect)
	s.handleRead("/policies", s.handlePolicies)
	// Control plane: training, registry management, adaptation.
	s.handleControl("/train", s.handleTrain)
	s.handleControl("/models", s.handleModels)
	s.handleControl("/models/{id}", s.handleModelGet)
	s.handleControl("/models/{id}/activate", s.handleModelActivate)
	s.handleControl("/models/rollback", s.handleRollback)
	s.handleControl("/observe", s.handleObserve)
	s.handleControl("/adapt/status", s.handleAdaptStatus)
	s.handleControl("/adapt/retrain", s.handleAdaptRetrain)
	// Fleet control plane: node registration/heartbeat, fan-out, and the
	// fleet-wide observation aggregator, over this server's own registry.
	s.mountFleet(acfg)
	// Unmatched paths get the same structured JSON error shape as every
	// other failure, not net/http's plain-text 404 page. Registered
	// directly on the mux: "/" is a fallback, not part of the API surface.
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "no such endpoint %s (see docs/API.md)", r.URL.Path)
	})
	return s
}

// handle registers a route, recording its pattern so tests can verify the
// documented API surface matches the served one.
func (s *server) handle(pattern string, h http.HandlerFunc) {
	s.routes = append(s.routes, pattern)
	s.mux.HandleFunc(pattern, h)
}

// handleRead registers a read-plane route under the read limiter.
func (s *server) handleRead(pattern string, h http.HandlerFunc) {
	s.handle(pattern, s.read.wrap(h))
}

// handleControl registers a control-plane route under the control limiter.
func (s *server) handleControl(pattern string, h http.HandlerFunc) {
	s.handle(pattern, s.control.wrap(h))
}

// Default HTTP server timeouts, each overridable by flag. They bound how
// long one misbehaving client can hold a connection (and with it a plane
// slot): a stalled header, a body that trickles forever, a reader that
// never drains the response, an idle keep-alive that never speaks again.
const (
	defaultReadHeaderTimeout = 10 * time.Second
	defaultReadTimeout       = 2 * time.Minute
	defaultWriteTimeout      = 5 * time.Minute
	defaultIdleTimeout       = 2 * time.Minute
)

// httpTimeouts carries the flag-resolved server timeouts into both daemon
// modes (0 disables the corresponding bound).
type httpTimeouts struct {
	ReadHeader, Read, Write, Idle time.Duration
}

// server applies the timeouts to an http.Server serving handler.
func (t httpTimeouts) server(addr string, handler http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: t.ReadHeader,
		ReadTimeout:       t.Read,
		WriteTimeout:      t.Write,
		IdleTimeout:       t.Idle,
	}
}

// handler is the server's complete HTTP surface: the route mux wrapped in
// the panic-recovery middleware, so one handler bug costs a structured 500
// (counted on /healthz) instead of the connection — net/http would
// otherwise just close the stream, which a client sees as an unexplained
// transport error.
func (s *server) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				// The sanctioned abort-this-response panic; not a bug.
				panic(rec)
			}
			s.panics.Add(1)
			log.Printf("gpufreqd: panic serving %s %s: %v", r.Method, r.URL.Path, rec)
			// Best-effort: if the handler already wrote a header this is a
			// no-op on a dead stream, which is all that can be done.
			writeError(w, http.StatusInternalServerError, "internal error (panic recovered; see server log)")
		}()
		s.mux.ServeHTTP(w, r)
	})
}

// install publishes a model set as the serving version, hot-swapping the
// predictor/governor pair behind the serving holder's RWMutex so
// concurrent /predict and /select requests never see a half-installed
// version. The predictor is built directly from the models (not read back
// from the engine), so the (version, models) pairing cannot be torn by a
// concurrent install; the engine's models are updated too for its own
// consumers (Trained, solver-stat reporting). fronts is the snapshot's
// publish-time front table (nil for snapshots without one): the fresh
// governor serves kernels in the table without any SVR evaluations.
func (s *server) install(version string, models *core.Models, fronts *registry.Fronts) error {
	pred := engine.NewPredictor(models, s.engine.Harness().Device().Sim().Ladder, s.engine.Options())
	s.engine.SetModels(models)
	s.serving.InstallWithFronts(version, pred, fronts)
	return nil
}

// activateAndInstall points the store's ACTIVE pointer at the version and
// hot-swaps serving to it, as one serialized step. The snapshot's
// precomputed fronts, when present, are loaded from the store so every
// activation path — training publish, HTTP activate, rollback, adapt —
// hydrates the governor the same way.
func (s *server) activateAndInstall(version string, models *core.Models) error {
	s.installMu.Lock()
	defer s.installMu.Unlock()
	if err := s.store.Activate(s.device, version); err != nil {
		return err
	}
	fronts, err := s.store.LoadFronts(s.device, version)
	if err != nil {
		// Activate already integrity-checked the snapshot; a fronts load
		// failure here is unexpected but never fatal — serve with live
		// sweeps instead.
		log.Printf("gpufreqd: loading fronts for %s: %v", version, err)
		fronts = nil
	}
	if err := s.install(version, models, fronts); err != nil {
		return err
	}
	// Fan the new active snapshot out to registered fleet nodes in the
	// background: a fan-out failure never fails an activation, and stale
	// nodes converge on their next heartbeat anyway.
	if s.fleet != nil {
		go s.fleet.PushDevice(context.Background(), s.device)
	}
	return nil
}

// loadActive loads and installs the device's active snapshot from the
// store, if one exists. Used at boot so a restart against a populated
// model directory serves without retraining.
func (s *server) loadActive() bool {
	models, fronts, man, err := s.store.LoadFull(s.device, "")
	if err != nil {
		if !errors.Is(err, registry.ErrNoSnapshot) {
			log.Printf("gpufreqd: loading active snapshot: %v", err)
		}
		return false
	}
	if err := s.install(man.Version, models, fronts); err != nil {
		log.Printf("gpufreqd: installing %s: %v", man.Version, err)
		return false
	}
	return true
}

// activeManifest returns the manifest of the serving version (zero value
// if none is active or the store cannot produce it).
func (s *server) activeManifest() registry.Manifest {
	version := s.serving.Version()
	if version == "" {
		return registry.Manifest{}
	}
	man, err := s.store.GetManifest(s.device, version)
	if err != nil {
		return registry.Manifest{Version: version, Device: s.device}
	}
	return man
}

// importModels stores an externally supplied model set as a snapshot
// (deduplicated by content hash) and activates it. Like a training run,
// the import sweeps the training-kernel fronts at publish time so the
// imported snapshot serves /select from the table.
func (s *server) importModels(models *core.Models) (string, error) {
	hash, err := registry.HashModels(models)
	if err != nil {
		return "", err
	}
	version, ok := s.store.FindByHash(s.device, hash)
	if !ok {
		fronts := registry.ComputeFronts(
			engine.NewPredictor(models, s.engine.Harness().Device().Sim().Ladder, s.engine.Options()),
			engine.TrainingKernels())
		man, err := s.store.SaveWithFronts(s.device, "", models, registry.Training{}, fronts)
		if err != nil {
			return "", err
		}
		version = man.Version
	}
	return version, s.activateAndInstall(version, models)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// readJSON decodes one JSON document from a POST body into v. It is the
// shared malformed-body path of every POST endpoint, so they all fail the
// same way: 400 with a structured {"error": ...} naming the problem —
// including trailing garbage after the document, which plain Decode would
// silently ignore. allowEmpty admits an empty body as the zero value (used
// by endpoints whose parameters are all optional).
func readJSON(r *http.Request, v any, allowEmpty bool) error {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			if allowEmpty {
				return nil
			}
			return errors.New("empty request body")
		}
		return fmt.Errorf("bad request body: %v", err)
	}
	if dec.More() {
		return errors.New("bad request body: trailing data after the JSON document")
	}
	return nil
}

type healthResponse struct {
	Status        string             `json:"status"`
	Device        string             `json:"device"`
	Trained       bool               `json:"trained"`
	ModelVersion  string             `json:"model_version,omitempty"`
	Registry      string             `json:"registry"`
	UptimeSeconds float64            `json:"uptime_seconds"`
	Workers       int                `json:"workers"`
	Cache         *engine.CacheStats `json:"cache,omitempty"`
	// Planes reports per-plane admission control: concurrency limits and
	// requests shed since boot.
	Planes planesInfo `json:"planes"`
	// Panics counts handler panics absorbed by the recovery middleware
	// since boot (0 on a healthy server).
	Panics int64 `json:"panics"`
	// WAL is the observation WAL's accounting (-obs-dir only).
	WAL *adapt.WALStats `json:"wal,omitempty"`
	// Fleet is the agent's sync state (-agent mode only), including spool
	// depth, current sync backoff, and the degraded flag.
	Fleet *fleet.AgentStatus `json:"fleet,omitempty"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	resp := healthResponse{
		Status:        "ok",
		Device:        s.engine.Harness().Device().Sim().Name,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.engine.Options().Workers,
		Registry:      "memory",
		Planes:        planesInfo{Read: s.read.info(), Control: s.control.info()},
	}
	resp.Panics = s.panics.Load()
	if s.store.Persistent() {
		resp.Registry = s.store.Dir()
	}
	if s.wal != nil {
		st := s.wal.Stats()
		resp.WAL = &st
	}
	if s.agent != nil {
		st := s.agent.Status()
		resp.Fleet = &st
	}
	if version, pred, _, ok := s.serving.Current(); ok {
		resp.Trained = true
		resp.ModelVersion = version
		st := pred.Stats()
		resp.Cache = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

type trainRequest struct {
	// Settings overrides the per-kernel sampled settings for this run only
	// (0 = the server's configured default).
	Settings int `json:"settings"`
}

// trainAccepted is the 202 response to POST /train: the reserved version
// id and where to poll for completion.
type trainAccepted struct {
	Version string `json:"version"`
	Status  string `json:"status"`
	Poll    string `json:"poll"`
}

// startTraining reserves a version id, records the job, and launches the
// run in the background. The caller owns nothing: the goroutine publishes
// the snapshot, activates it, and hot-swaps serving when it succeeds.
func (s *server) startTraining(settingsOverride int) (*trainJob, error) {
	if !s.trainMu.TryLock() {
		return nil, errors.New("a training run is already in progress")
	}
	version, err := s.store.Reserve(s.device)
	if err != nil {
		s.trainMu.Unlock()
		return nil, fmt.Errorf("reserving a version: %v", err)
	}
	job := &trainJob{Version: version, Status: statusTraining, StartedAt: time.Now().UTC()}
	s.jobsMu.Lock()
	s.jobs[version] = job
	s.jobsMu.Unlock()
	go s.runTraining(job, settingsOverride)
	return job, nil
}

// runTraining is the background half of /train. It trains with
// context.Background(): the run belongs to the server, not to the HTTP
// request that started it, so a disconnecting client no longer cancels it.
func (s *server) runTraining(job *trainJob, settingsOverride int) {
	defer s.trainMu.Unlock()

	eng := s.engine
	if settingsOverride > 0 {
		opts := eng.Options()
		opts.Core.SettingsPerKernel = settingsOverride
		eng = engine.New(eng.Harness(), opts)
	}

	fail := func(err error) {
		s.jobsMu.Lock()
		job.Status = statusFailed
		job.Error = err.Error()
		s.jobsMu.Unlock()
	}

	kernels := engine.TrainingKernels()
	start := time.Now()
	samples, err := eng.BuildTrainingSet(context.Background(), kernels)
	if err != nil {
		fail(err)
		return
	}
	models, err := eng.Fit(context.Background(), samples)
	if err != nil {
		fail(err)
		return
	}
	durationMS := float64(time.Since(start).Microseconds()) / 1000

	tr := registry.Training{
		SettingsPerKernel: eng.Options().Core.WithDefaults().SettingsPerKernel,
		Kernels:           len(kernels),
		Samples:           len(samples),
		DurationMS:        durationMS,
	}
	// Training residuals become the drift detector's baseline for this
	// version (see internal/adapt).
	tr.SpeedupRMSE, tr.EnergyRMSE = core.ResidualRMSE(models, samples)
	// Publish-time fronts: sweep the full ladder for every training kernel
	// once, so /select on known kernels never evaluates the SVRs again.
	fronts := registry.ComputeFronts(
		engine.NewPredictor(models, eng.Harness().Device().Sim().Ladder, eng.Options()), kernels)
	if _, err := s.store.SaveWithFronts(s.device, job.Version, models, tr, fronts); err != nil {
		fail(fmt.Errorf("publishing snapshot: %w", err))
		return
	}
	if err := s.activateAndInstall(job.Version, models); err != nil {
		fail(fmt.Errorf("activating %s: %w", job.Version, err))
		return
	}
	s.jobsMu.Lock()
	job.Status = statusReady
	job.DurationMS = durationMS
	s.jobsMu.Unlock()
}

// waitTraining blocks until the job leaves the training state (used by
// -train-on-start; HTTP clients poll /models/{id} instead).
func (s *server) waitTraining(job *trainJob) {
	for job.snapshot(s).Status == statusTraining {
		time.Sleep(5 * time.Millisecond)
	}
}

func (s *server) handleTrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req trainRequest
	if err := readJSON(r, &req, true); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	job, err := s.startTraining(req.Settings)
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, trainAccepted{
		Version: job.Version,
		Status:  statusTraining,
		Poll:    "/models/" + job.Version,
	})
}

// modelEntry is one version in /models responses: its training status, the
// snapshot manifest once published, and per-version serving statistics
// (live counters for the active version, frozen ones for retired versions).
type modelEntry struct {
	Version    string                 `json:"version"`
	Status     string                 `json:"status"`
	Active     bool                   `json:"active"`
	Error      string                 `json:"error,omitempty"`
	StartedAt  *time.Time             `json:"started_at,omitempty"`
	DurationMS float64                `json:"duration_ms,omitempty"`
	Manifest   *registry.Manifest     `json:"manifest,omitempty"`
	Stats      *registry.VersionStats `json:"stats,omitempty"`
}

type modelsResponse struct {
	Device   string       `json:"device"`
	Active   string       `json:"active,omitempty"`
	Previous string       `json:"previous,omitempty"`
	Registry string       `json:"registry"`
	Models   []modelEntry `json:"models"`
}

// modelEntries assembles the merged view of published snapshots and
// in-flight/failed training runs, oldest snapshot first. For a version
// whose training run is still in flight, the job's status wins over the
// store's: a run publishes its snapshot before hot-swapping serving, and
// it must not be reported ready until the swap happened.
func (s *server) modelEntries() ([]modelEntry, error) {
	// Jobs are snapshotted before the store listing: a run that publishes
	// between the two reads then shows up as still "training" (harmless —
	// pollers retry) rather than vanishing from both views.
	s.jobsMu.Lock()
	jobs := make(map[string]trainJob, len(s.jobs))
	for v, job := range s.jobs {
		jobs[v] = *job
	}
	s.jobsMu.Unlock()
	entries, err := s.store.List(s.device)
	if err != nil {
		return nil, err
	}

	servingVersion := s.serving.Version()
	seen := map[string]bool{}
	out := make([]modelEntry, 0, len(entries))
	for _, e := range entries {
		seen[e.Version] = true
		me := modelEntry{Version: e.Version, Status: statusReady, Active: e.Version == servingVersion}
		if e.Err != "" {
			me.Status = statusFailed
			me.Error = e.Err
		} else {
			man := e.Manifest
			me.Manifest = &man
		}
		if job, ok := jobs[e.Version]; ok && job.Status != statusReady {
			me.Status = job.Status
			me.Error = job.Error
			t := job.StartedAt
			me.StartedAt = &t
		}
		if vs, ok := s.serving.StatsFor(e.Version); ok {
			me.Stats = &vs
		}
		out = append(out, me)
	}
	for _, job := range jobs {
		if seen[job.Version] || job.Status == statusReady {
			continue
		}
		t := job.StartedAt
		out = append(out, modelEntry{
			Version:   job.Version,
			Status:    job.Status,
			Error:     job.Error,
			StartedAt: &t,
		})
	}
	return out, nil
}

func (s *server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	models, err := s.modelEntries()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "listing models: %v", err)
		return
	}
	resp := modelsResponse{Device: s.device, Models: models, Registry: "memory"}
	if s.store.Persistent() {
		resp.Registry = s.store.Dir()
	}
	if st, ok := s.store.ActiveState(s.device); ok {
		resp.Active = st.Version
		resp.Previous = st.Previous
	}
	if v := s.serving.Version(); v != "" {
		resp.Active = v
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	id := r.PathValue("id")
	models, err := s.modelEntries()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "listing models: %v", err)
		return
	}
	for _, me := range models {
		if me.Version == id {
			writeJSON(w, http.StatusOK, me)
			return
		}
	}
	writeError(w, http.StatusNotFound, "no model version %q for %s", id, s.device)
}

// activateResponse reports the outcome of an activation or rollback.
type activateResponse struct {
	Active   string `json:"active"`
	Previous string `json:"previous,omitempty"`
	Hash     string `json:"hash,omitempty"`
}

// activateVersion loads, verifies, activates and hot-swaps one stored
// version — the shared body of /models/{id}/activate and /models/rollback.
func (s *server) activateVersion(w http.ResponseWriter, id string) {
	models, man, err := s.store.Load(s.device, id)
	switch {
	case errors.Is(err, registry.ErrNoSnapshot):
		writeError(w, http.StatusNotFound, "%v", err)
		return
	case errors.Is(err, registry.ErrCorrupt):
		writeError(w, http.StatusConflict, "refusing to activate: %v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "loading %s: %v", id, err)
		return
	}
	if err := s.activateAndInstall(id, models); err != nil {
		writeError(w, http.StatusInternalServerError, "activating %s: %v", id, err)
		return
	}
	resp := activateResponse{Active: id, Hash: man.Hash}
	if prev, ok := s.store.Previous(s.device); ok {
		resp.Previous = prev
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleModelActivate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	s.activateVersion(w, r.PathValue("id"))
}

func (s *server) handleRollback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	target, ok := s.store.Previous(s.device)
	if !ok {
		writeError(w, http.StatusConflict, "no previous version to roll back to")
		return
	}
	s.activateVersion(w, target)
}

type predictKernel struct {
	// Source is the OpenCL source containing the kernel.
	Source string `json:"source"`
	// Kernel names the kernel function ("" = first kernel in Source).
	Kernel string `json:"kernel"`
}

type predictRequest struct {
	Kernels []predictKernel `json:"kernels"`
	// Single-kernel shorthand, accepted at the top level.
	Source string `json:"source"`
	Kernel string `json:"kernel"`
}

type predictResult struct {
	Kernel string            `json:"kernel"`
	Pareto []core.Prediction `json:"pareto"`
	Error  string            `json:"error,omitempty"`
}

type predictResponse struct {
	ModelVersion string            `json:"model_version"`
	Results      []predictResult   `json:"results"`
	Cache        engine.CacheStats `json:"cache"`
}

func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req predictRequest
	if err := readJSON(r, &req, false); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	kernels := req.Kernels
	if req.Source != "" {
		kernels = append(kernels, predictKernel{Source: req.Source, Kernel: req.Kernel})
	}
	if len(kernels) == 0 {
		writeError(w, http.StatusBadRequest, "no kernels in request")
		return
	}
	version, p, _, ok := s.serving.Current()
	if !ok {
		writeError(w, http.StatusServiceUnavailable,
			"no active model version (POST /train, or activate a stored version)")
		return
	}

	results := make([]predictResult, len(kernels))
	batch := make([]int, 0, len(kernels)) // indices with valid features
	sts := make([]features.Static, 0, len(kernels))
	for i, k := range kernels {
		results[i].Kernel = k.Kernel
		st, err := features.ExtractSource(k.Source, k.Kernel)
		if err != nil {
			results[i].Error = err.Error()
			continue
		}
		batch = append(batch, i)
		sts = append(sts, st)
	}
	if len(batch) > 0 {
		sets, err := p.PredictBatch(r.Context(), sts)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "predict: %v", err)
			return
		}
		for j, i := range batch {
			results[i].Pareto = sets[j]
		}
	}
	writeJSON(w, http.StatusOK, predictResponse{ModelVersion: version, Results: results, Cache: p.Stats()})
}

type selectRequest struct {
	// Policy names the objective and its parameters; see GET /policies.
	Policy policy.Spec `json:"policy"`
	// Kernels is the batch form; Source/Kernel the single-kernel shorthand,
	// exactly as on /predict.
	Kernels []predictKernel `json:"kernels"`
	Source  string          `json:"source"`
	Kernel  string          `json:"kernel"`
}

type selectResult struct {
	Kernel   string           `json:"kernel"`
	Decision *policy.Decision `json:"decision,omitempty"`
	Error    string           `json:"error,omitempty"`
}

type selectResponse struct {
	// Policy is the resolved spec (defaults applied) every decision used.
	Policy       policy.Spec    `json:"policy"`
	ModelVersion string         `json:"model_version"`
	Results      []selectResult `json:"results"`
	// Cache reports the governor's per-policy decision cache, not the
	// engine's SVR cache (that one is on /healthz and /predict).
	Cache policy.Stats `json:"cache"`
}

func (s *server) handleSelect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req selectRequest
	if err := readJSON(r, &req, false); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec := req.Policy.WithDefaults()
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	kernels := req.Kernels
	if req.Source != "" {
		kernels = append(kernels, predictKernel{Source: req.Source, Kernel: req.Kernel})
	}
	if len(kernels) == 0 {
		writeError(w, http.StatusBadRequest, "no kernels in request")
		return
	}
	version, _, gov, ok := s.serving.Current()
	if !ok {
		writeError(w, http.StatusServiceUnavailable,
			"no active model version (POST /train, or activate a stored version)")
		return
	}

	results := make([]selectResult, len(kernels))
	for i, k := range kernels {
		results[i].Kernel = k.Kernel
		d, err := gov.DecideSource(k.Source, k.Kernel, spec)
		if err != nil {
			results[i].Error = err.Error()
			continue
		}
		results[i].Decision = &d
	}
	writeJSON(w, http.StatusOK, selectResponse{
		Policy: spec, ModelVersion: version, Results: results, Cache: gov.Stats(),
	})
}

type policiesResponse struct {
	Policies []policy.Info `json:"policies"`
}

func (s *server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, policiesResponse{Policies: policy.Builtins()})
}

// observeKernel is one reported observation: the kernel identified either
// by OpenCL source (features are extracted server-side) or by a
// pre-extracted static feature vector, plus the configuration it ran at
// and the measured objectives relative to default clocks.
type observeKernel struct {
	// Source and Kernel identify the kernel by OpenCL source, exactly as
	// on /predict. Alternatively Features carries the extracted static
	// feature vector directly (takes precedence when both are present).
	Source   string           `json:"source,omitempty"`
	Kernel   string           `json:"kernel,omitempty"`
	Features *features.Static `json:"features,omitempty"`
	Config   freq.Config      `json:"config"`
	Speedup  float64          `json:"speedup"`
	Energy   float64          `json:"norm_energy"`
}

// observation converts the report to an adapt.Observation, extracting
// features from source when no explicit vector was supplied.
func (k observeKernel) observation() (adapt.Observation, error) {
	o := adapt.Observation{
		Kernel:     k.Kernel,
		Config:     k.Config,
		Speedup:    k.Speedup,
		NormEnergy: k.Energy,
	}
	switch {
	case k.Features != nil:
		o.Features = *k.Features
	case k.Source != "":
		st, err := features.ExtractSource(k.Source, k.Kernel)
		if err != nil {
			return o, err
		}
		o.Features = st
	default:
		return o, errors.New("observation needs either source or features")
	}
	return o, nil
}

type observeRequest struct {
	Observations []observeKernel `json:"observations"`
	// Single-observation shorthand, accepted at the top level.
	observeKernel
}

// observeResult is one observation's ingest outcome.
type observeResult struct {
	Kernel string `json:"kernel,omitempty"`
	// Ingest is the controller's verdict (nil when the observation was
	// rejected, with Error explaining why).
	Ingest *adapt.IngestResult `json:"ingest,omitempty"`
	Error  string              `json:"error,omitempty"`
}

type observeResponse struct {
	ModelVersion string          `json:"model_version"`
	Results      []observeResult `json:"results"`
	// Spooled (agent mode only, with a 202 status) counts observations the
	// agent accepted into its local spool because the control plane was
	// unreachable; they flush in order on reconnect and Results carries no
	// ingest verdicts for them.
	Spooled int              `json:"spooled,omitempty"`
	Store   adapt.StoreStats `json:"store"`
}

func (s *server) handleObserve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req observeRequest
	if err := readJSON(r, &req, false); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	reports := req.Observations
	if req.Source != "" || req.Features != nil {
		reports = append(reports, req.observeKernel)
	}
	if len(reports) == 0 {
		writeError(w, http.StatusBadRequest, "no observations in request")
		return
	}
	version, _, _, ok := s.serving.Current()
	if !ok {
		writeError(w, http.StatusServiceUnavailable,
			"no active model version to observe against (POST /train first)")
		return
	}
	results := make([]observeResult, len(reports))
	for i, rep := range reports {
		results[i].Kernel = rep.Kernel
		o, err := rep.observation()
		if err != nil {
			results[i].Error = err.Error()
			continue
		}
		res, err := s.adapt.Observe(o)
		if err != nil {
			results[i].Error = err.Error()
			continue
		}
		results[i].Ingest = &res
	}
	writeJSON(w, http.StatusOK, observeResponse{
		ModelVersion: version,
		Results:      results,
		Store:        s.adapt.StoreStats(),
	})
}

func (s *server) handleAdaptStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, s.adapt.Status())
}

// adaptRetrainAccepted is the 202 response to POST /adapt/retrain.
type adaptRetrainAccepted struct {
	Status string `json:"status"`
	Poll   string `json:"poll"`
}

func (s *server) handleAdaptRetrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if _, _, _, ok := s.serving.Current(); !ok {
		writeError(w, http.StatusServiceUnavailable,
			"no active model version to retrain from (POST /train first)")
		return
	}
	if err := s.adapt.StartRetrain("manual: POST /adapt/retrain"); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, adaptRetrainAccepted{
		Status: "retraining",
		Poll:   "/adapt/status",
	})
}
