package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"slices"
	"testing"

	"repro/internal/colproto"
	"repro/internal/core"
	"repro/internal/synth"
)

// batchColumns builds a columnar request over the first n synthetic
// training kernels.
func batchColumns(n int) *colproto.Columns {
	cols := &colproto.Columns{}
	for _, b := range synth.Generate()[:n] {
		cols.Append(b.Name, b.Features())
	}
	return cols
}

// sortPreds orders a front canonically so batch and live derivations
// compare equal regardless of tie ordering.
func sortPreds(ps []core.Prediction) []core.Prediction {
	out := slices.Clone(ps)
	slices.SortFunc(out, func(a, b core.Prediction) int {
		switch {
		case a.Speedup != b.Speedup:
			if a.Speedup < b.Speedup {
				return -1
			}
			return 1
		case a.NormEnergy != b.NormEnergy:
			if a.NormEnergy < b.NormEnergy {
				return -1
			}
			return 1
		default:
			return int(a.Config.Mem - b.Config.Mem)
		}
	})
	return out
}

func TestPredictBatchJSONRoundTrip(t *testing.T) {
	s := testServer(t)
	trainWait(t, s, "{}")
	version, pred, _, ok := s.serving.Current()
	if !ok {
		t.Fatal("no serving predictor after training")
	}

	cols := batchColumns(3)
	doc, err := json.Marshal(cols)
	if err != nil {
		t.Fatal(err)
	}
	rec := post(t, s, "/predict/batch", string(doc))
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q, want application/json", ct)
	}
	var fronts colproto.Fronts
	if err := json.Unmarshal(rec.Body.Bytes(), &fronts); err != nil {
		t.Fatalf("decoding batch response: %v\n%s", err, rec.Body)
	}
	if fronts.Version != version || fronts.Count != cols.Len() {
		t.Fatalf("response version=%q count=%d, want %q/%d", fronts.Version, fronts.Count, version, cols.Len())
	}
	for i, b := range synth.Generate()[:cols.Len()] {
		got := sortPreds(fronts.Kernel(i))
		want := sortPreds(pred.ParetoSet(b.Features()))
		if len(got) != len(want) {
			t.Fatalf("%s: batch front has %d points, live %d", b.Name, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%s point %d: batch %+v, live %+v", b.Name, j, got[j], want[j])
			}
		}
		if last := fronts.Kernel(i); !last[len(last)-1].MemLHeuristic {
			t.Fatalf("%s: front does not end with the mem-L heuristic point", b.Name)
		}
	}
}

func TestPredictBatchBinaryRoundTrip(t *testing.T) {
	s := testServer(t)
	trainWait(t, s, "{}")

	cols := batchColumns(2)
	frame := cols.AppendBinary(nil)
	req := httptest.NewRequest(http.MethodPost, "/predict/batch", bytes.NewReader(frame))
	req.Header.Set("Content-Type", binaryContentType)
	rec := httptest.NewRecorder()
	s.mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("binary batch status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != binaryContentType {
		t.Fatalf("Content-Type %q, want %q", ct, binaryContentType)
	}
	var binFronts colproto.Fronts
	if err := binFronts.ParseBinary(rec.Body.Bytes()); err != nil {
		t.Fatal(err)
	}

	// The binary response must describe the same fronts as the JSON one.
	doc, err := json.Marshal(cols)
	if err != nil {
		t.Fatal(err)
	}
	jrec := post(t, s, "/predict/batch", string(doc))
	var jsonFronts colproto.Fronts
	if err := json.Unmarshal(jrec.Body.Bytes(), &jsonFronts); err != nil {
		t.Fatal(err)
	}
	if binFronts.Count != jsonFronts.Count || binFronts.Version != jsonFronts.Version {
		t.Fatalf("framings disagree: binary %d/%s, json %d/%s",
			binFronts.Count, binFronts.Version, jsonFronts.Count, jsonFronts.Version)
	}
	for i := 0; i < binFronts.Count; i++ {
		b, j := binFronts.Kernel(i), jsonFronts.Kernel(i)
		if len(b) != len(j) {
			t.Fatalf("kernel %d: binary %d points, json %d", i, len(b), len(j))
		}
		for k := range b {
			if b[k] != j[k] {
				t.Fatalf("kernel %d point %d: binary %+v, json %+v", i, k, b[k], j[k])
			}
		}
	}
}

func TestPredictBatchErrors(t *testing.T) {
	s := testServer(t)

	// No active model: 503 before training.
	if rec := post(t, s, "/predict/batch", `{"columns":[[1]]}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("untrained batch status %d, want 503: %s", rec.Code, rec.Body)
	}

	trainWait(t, s, "{}")
	cases := []struct {
		name, body string
		want       int
	}{
		{"empty body", "", http.StatusBadRequest},
		{"bad json", "{", http.StatusBadRequest},
		{"wrong column count", `{"columns":[[1],[2]]}`, http.StatusBadRequest},
		{"empty batch", `{"columns":[[],[],[],[],[],[],[],[],[],[]]}`, http.StatusBadRequest},
		{"ragged columns", `{"columns":[[1,2],[1],[1],[1],[1],[1],[1],[1],[1],[1]]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		rec := post(t, s, "/predict/batch", tc.body)
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d: %s", tc.name, rec.Code, tc.want, rec.Body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not structured JSON: %s", tc.name, rec.Body)
		}
	}
	if rec := get(t, s, "/predict/batch"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET batch status %d, want 405", rec.Code)
	}

	// A truncated binary frame is rejected, not misparsed.
	frame := batchColumns(2).AppendBinary(nil)
	req := httptest.NewRequest(http.MethodPost, "/predict/batch", bytes.NewReader(frame[:len(frame)-3]))
	req.Header.Set("Content-Type", binaryContentType)
	rec := httptest.NewRecorder()
	s.mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("truncated binary frame status %d, want 400: %s", rec.Code, rec.Body)
	}
}

// discardWriter is a ResponseWriter that reuses its header map and
// discards the body, so the alloc gate measures the handler, not the
// recorder.
type discardWriter struct {
	h    http.Header
	code int
	n    int
}

func (d *discardWriter) Header() http.Header { return d.h }
func (d *discardWriter) WriteHeader(c int)   { d.code = c }
func (d *discardWriter) Write(p []byte) (int, error) {
	d.n += len(p)
	return len(p), nil
}

// TestPredictBatchHandlerAllocs pins the allocation budget of the whole
// binary hot path — request decode, PredictFrontsInto, response encode —
// through the real handler. The steady-state budget is a handful of
// header-map and content-type allocations; the columnar work itself is
// allocation-free (see engine and colproto alloc tests).
func TestPredictBatchHandlerAllocs(t *testing.T) {
	s := testServer(t)
	trainWait(t, s, "{}")

	frame := batchColumns(1).AppendBinary(nil)
	body := bytes.NewReader(frame)
	req := httptest.NewRequest(http.MethodPost, "/predict/batch", body)
	req.Header.Set("Content-Type", binaryContentType)
	req.ContentLength = int64(len(frame))
	w := &discardWriter{h: make(http.Header)}

	run := func() {
		body.Reset(frame)
		req.Body = noopCloser{body}
		s.handlePredictBatch(w, req)
		if w.code != http.StatusOK {
			t.Fatalf("batch handler status %d", w.code)
		}
	}
	run() // warm pools and grow buffers
	allocs := testing.AllocsPerRun(50, run)
	// The budget covers header writes (two Set calls), Content-Length
	// formatting, and mime parsing — nothing proportional to the batch.
	const budget = 12
	if allocs > budget {
		t.Fatalf("binary batch handler allocates %.0f objects/request, budget %d", allocs, budget)
	}
}

type noopCloser struct{ *bytes.Reader }

func (noopCloser) Close() error { return nil }

// TestSelectServesPublishedFrontZeroSVR is the end-to-end zero-SVR pin:
// after training (which publishes fronts), /select on a training kernel
// resolves from the front table — the governor reports front hits and the
// serving predictor's SVR cache counters never move.
func TestSelectServesPublishedFrontZeroSVR(t *testing.T) {
	s := testServer(t)
	trainWait(t, s, "{}")
	_, pred, gov, ok := s.serving.Current()
	if !ok {
		t.Fatal("no serving governor after training")
	}
	if gov.FrontKernels() == 0 {
		t.Fatal("training published no front table")
	}

	b := synth.Generate()[0]
	base := pred.Stats()
	doc, err := json.Marshal(map[string]any{
		"policy": map[string]any{"name": "min-energy"},
		"source": b.Source,
		"kernel": b.KernelName,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := post(t, s, "/select", string(doc))
	if rec.Code != http.StatusOK {
		t.Fatalf("select status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Results []struct {
			Decision *json.RawMessage `json:"decision"`
			Error    string           `json:"error"`
		} `json:"results"`
		Cache struct {
			FrontKernels int    `json:"front_kernels"`
			FrontHits    uint64 `json:"front_hits"`
			SweepMisses  uint64 `json:"sweep_misses"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Error != "" || resp.Results[0].Decision == nil {
		t.Fatalf("select did not decide: %s", rec.Body)
	}
	if resp.Cache.FrontKernels == 0 || resp.Cache.FrontHits != 1 || resp.Cache.SweepMisses != 0 {
		t.Fatalf("decision did not come from the front table: %+v", resp.Cache)
	}
	if got := pred.Stats(); got != base {
		t.Fatalf("front-table select evaluated the SVRs: %+v -> %+v", base, got)
	}

	// An unknown kernel still decides (live sweep fallback).
	doc, _ = json.Marshal(map[string]any{
		"policy": map[string]any{"name": "min-energy"},
		"source": saxpy,
	})
	rec = post(t, s, "/select", string(doc))
	if rec.Code != http.StatusOK {
		t.Fatalf("fallback select status %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cache.SweepMisses != 1 {
		t.Fatalf("unknown kernel did not fall back to a live sweep: %+v", resp.Cache)
	}
	if got := pred.Stats(); got == base {
		t.Fatal("live-sweep fallback never touched the predictor")
	}
}

// TestPredictBatchPoolReuseAfterBadJSON is the pooled-state regression:
// a JSON request with the wrong column count is rejected with 400 but
// its buffers go back to the pool, and the next binary request — which
// almost certainly draws the same buffers — must still parse and serve
// rather than panic on the short column slice.
func TestPredictBatchPoolReuseAfterBadJSON(t *testing.T) {
	s := testServer(t)
	trainWait(t, s, "{}")

	for i := 0; i < 3; i++ {
		if rec := post(t, s, "/predict/batch", `{"columns":[[1],[2]]}`); rec.Code != http.StatusBadRequest {
			t.Fatalf("wrong-count JSON status %d, want 400: %s", rec.Code, rec.Body)
		}
		frame := batchColumns(2).AppendBinary(nil)
		req := httptest.NewRequest(http.MethodPost, "/predict/batch", bytes.NewReader(frame))
		req.Header.Set("Content-Type", binaryContentType)
		rec := httptest.NewRecorder()
		s.mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("binary request after bad JSON: status %d, want 200: %s", rec.Code, rec.Body)
		}
		var fronts colproto.Fronts
		if err := fronts.ParseBinary(rec.Body.Bytes()); err != nil {
			t.Fatal(err)
		}
		if fronts.Count != 2 {
			t.Fatalf("binary response has %d kernels, want 2", fronts.Count)
		}
	}
}

// TestPredictBatchBodyCap pins the request-size bound of the
// unauthenticated batch endpoint: a body over maxBatchBodyBytes is cut
// off with 413, and a request merely *claiming* a huge Content-Length
// cannot force a matching allocation.
func TestPredictBatchBodyCap(t *testing.T) {
	s := testServer(t)
	trainWait(t, s, "{}")

	big := bytes.Repeat([]byte("x"), maxBatchBodyBytes+1)
	req := httptest.NewRequest(http.MethodPost, "/predict/batch", bytes.NewReader(big))
	rec := httptest.NewRecorder()
	s.mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status %d, want 413: %s", rec.Code, rec.Body)
	}

	// A huge claimed Content-Length with no body must not preallocate:
	// the request fails fast as an empty body, and the pool keeps only
	// modest buffers.
	req = httptest.NewRequest(http.MethodPost, "/predict/batch", bytes.NewReader(nil))
	req.ContentLength = 1 << 40
	rec = httptest.NewRecorder()
	s.mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("claimed-huge empty body status %d, want 400: %s", rec.Code, rec.Body)
	}
	bb := batchBufPool.Get().(*batchBuffers)
	defer batchBufPool.Put(bb)
	if cap(bb.body) > maxBatchBodyBytes {
		t.Fatalf("pooled body buffer is %d bytes — an oversized buffer was pooled", cap(bb.body))
	}
}
