package main

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"repro/internal/adapt"
	"repro/internal/engine"
	"repro/internal/registry"
)

// docsServer builds a server purely for route introspection.
func docsServer(t *testing.T) *server {
	t.Helper()
	store, err := registry.Open("")
	if err != nil {
		t.Fatal(err)
	}
	return newServer(engine.NewDefault(engine.Options{}), store, "titanx", adapt.Config{})
}

// agentDocsServer builds an -agent mode server for route introspection.
func agentDocsServer(t *testing.T) *server {
	t.Helper()
	store, err := registry.Open("")
	if err != nil {
		t.Fatal(err)
	}
	return newAgentServer(engine.NewDefault(engine.Options{}), store, "titanx", planeLimits{})
}

// TestAPIDocsCoverRoutes keeps docs/API.md honest in both directions:
// every route the server actually registers must be mentioned there, and
// every route the doc's table claims must actually be registered — so CI
// fails on undocumented routes and on documentation for routes that no
// longer exist.
func TestAPIDocsCoverRoutes(t *testing.T) {
	doc, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("reading docs/API.md: %v", err)
	}
	// The documented surface is the union of the two modes: the default
	// control-plane server and the -agent node server (whose /fleet/snapshot
	// push target exists only there).
	var routes []string
	for _, s := range []*server{docsServer(t), agentDocsServer(t)} {
		if len(s.routes) == 0 {
			t.Fatal("server registered no routes")
		}
		routes = append(routes, s.routes...)
	}
	registered := map[string]bool{}
	for _, route := range routes {
		if registered[route] {
			continue
		}
		registered[route] = true
		if !strings.Contains(string(doc), "`"+route+"`") {
			t.Errorf("docs/API.md does not document route %s", route)
		}
	}

	// The routes table: | METHOD | `path` | purpose |
	rowRe := regexp.MustCompile(`(?m)^\|\s*(GET|POST|PUT|DELETE|PATCH)\s*\|\s*` + "`([^`]+)`")
	rows := rowRe.FindAllStringSubmatch(string(doc), -1)
	if len(rows) == 0 {
		t.Fatal("docs/API.md has no routes table rows")
	}
	if len(rows) < len(registered) {
		t.Errorf("routes table has %d rows but the two modes register %d routes", len(rows), len(registered))
	}
	for _, row := range rows {
		if path := row[2]; !registered[path] {
			t.Errorf("docs/API.md documents %s %s, which the server does not register", row[1], path)
		}
	}
}
