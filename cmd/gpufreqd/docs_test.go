package main

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"repro/internal/adapt"
	"repro/internal/engine"
	"repro/internal/registry"
)

// docsServer builds a server purely for route introspection.
func docsServer(t *testing.T) *server {
	t.Helper()
	store, err := registry.Open("")
	if err != nil {
		t.Fatal(err)
	}
	return newServer(engine.NewDefault(engine.Options{}), store, "titanx", adapt.Config{})
}

// TestAPIDocsCoverRoutes keeps docs/API.md honest in both directions:
// every route the server actually registers must be mentioned there, and
// every route the doc's table claims must actually be registered — so CI
// fails on undocumented routes and on documentation for routes that no
// longer exist.
func TestAPIDocsCoverRoutes(t *testing.T) {
	doc, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("reading docs/API.md: %v", err)
	}
	s := docsServer(t)
	if len(s.routes) == 0 {
		t.Fatal("server registered no routes")
	}
	registered := map[string]bool{}
	for _, route := range s.routes {
		registered[route] = true
		if !strings.Contains(string(doc), "`"+route+"`") {
			t.Errorf("docs/API.md does not document route %s", route)
		}
	}

	// The routes table: | METHOD | `path` | purpose |
	rowRe := regexp.MustCompile(`(?m)^\|\s*(GET|POST|PUT|DELETE|PATCH)\s*\|\s*` + "`([^`]+)`")
	rows := rowRe.FindAllStringSubmatch(string(doc), -1)
	if len(rows) == 0 {
		t.Fatal("docs/API.md has no routes table rows")
	}
	if len(rows) < len(s.routes) {
		t.Errorf("routes table has %d rows but the server registers %d routes", len(rows), len(s.routes))
	}
	for _, row := range rows {
		if path := row[2]; !registered[path] {
			t.Errorf("docs/API.md documents %s %s, which the server does not register", row[1], path)
		}
	}
}
