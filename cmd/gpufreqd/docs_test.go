package main

import (
	"os"
	"strings"
	"testing"

	"repro/internal/engine"
)

// TestAPIDocsCoverRoutes keeps docs/API.md honest: every route the server
// actually registers must be mentioned there. CI runs this as part of the
// docs job, so adding an endpoint without documenting it fails the build.
func TestAPIDocsCoverRoutes(t *testing.T) {
	doc, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("reading docs/API.md: %v", err)
	}
	s := newServer(engine.NewDefault(engine.Options{}))
	if len(s.routes) == 0 {
		t.Fatal("server registered no routes")
	}
	for _, route := range s.routes {
		if !strings.Contains(string(doc), "`"+route+"`") {
			t.Errorf("docs/API.md does not document route %s", route)
		}
	}
}
