package main

import (
	"encoding/json"
	"errors"
	"io"
	"mime"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/colproto"
	"repro/internal/engine"
	"repro/internal/features"
)

// binaryContentType selects the length-prefixed binary framing of the
// batch endpoint (see internal/colproto); anything else is treated as the
// JSON framing. The response mirrors the request's framing.
const binaryContentType = "application/x-gpufreq-columns"

// maxBatchBodyBytes bounds a /predict/batch request body. 8 MiB fits a
// ~100k-kernel binary batch (10 float64 columns ≈ 80 B/kernel) — far past
// any sane request — while keeping the unauthenticated read plane from
// being a memory-exhaustion vector: the claimed Content-Length is never
// trusted for preallocation beyond this, oversized bodies are cut off by
// http.MaxBytesReader, and buffers that grew past the cap are dropped
// instead of pooled.
const maxBatchBodyBytes = 8 << 20

// batchBuffers is one request's worth of reusable batch-path memory:
// the raw body, the decoded columnar request, the transposed feature rows,
// the columnar response, and the encoded output. Recycled through
// batchBufPool so the steady-state handler path performs no allocations
// beyond what request decoding itself requires (none for the binary
// framing; pinned by the server's AllocsPerRun test).
type batchBuffers struct {
	body []byte
	cols colproto.Columns
	sts  []features.Static
	resp colproto.Fronts
	out  []byte
}

var batchBufPool = sync.Pool{New: func() any { return new(batchBuffers) }}

// putBatchBuffers returns a buffer set to the pool unless a pathological
// request grew its byte buffers past the body cap — those are dropped so
// one oversized request cannot permanently bloat the pool.
func putBatchBuffers(bb *batchBuffers) {
	if cap(bb.body) > maxBatchBodyBytes || cap(bb.out) > maxBatchBodyBytes {
		return
	}
	batchBufPool.Put(bb)
}

// readBody reads the request body into the reusable buffer, growing it as
// needed (io.ReadAll would allocate a fresh slice per request). The
// Content-Length-driven preallocation is capped at maxBatchBodyBytes: the
// header is client-controlled and must not force an arbitrary allocation.
func (bb *batchBuffers) readBody(r *http.Request) error {
	bb.body = bb.body[:0]
	if n := r.ContentLength; n > 0 && n <= maxBatchBodyBytes && int64(cap(bb.body)) < n {
		bb.body = make([]byte, 0, n)
	}
	for {
		if len(bb.body) == cap(bb.body) {
			bb.body = append(bb.body, 0)[:len(bb.body)]
		}
		n, err := r.Body.Read(bb.body[len(bb.body):cap(bb.body)])
		bb.body = bb.body[:len(bb.body)+n]
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
	}
}

// handlePredictBatch is POST /predict/batch: the columnar batch prediction
// endpoint. The request carries one flat array per static code feature
// (JSON, or the binary framing selected by Content-Type
// application/x-gpufreq-columns); the response carries every kernel's
// Pareto set as offset-indexed flat columns in the same framing. The whole
// path — pooled request buffers, the engine's columnar PredictFrontsInto,
// handwritten response encoding — reuses memory across requests.
func (s *server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	version, pred, _, ok := s.serving.Current()
	if !ok {
		writeError(w, http.StatusServiceUnavailable,
			"no active model version (POST /train, or activate a stored version)")
		return
	}
	binaryReq := false
	if ct := r.Header.Get("Content-Type"); ct != "" {
		if mt, _, err := mime.ParseMediaType(ct); err == nil && mt == binaryContentType {
			binaryReq = true
		}
	}

	bb := batchBufPool.Get().(*batchBuffers)
	defer putBatchBuffers(bb)
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBodyBytes)
	if err := bb.readBody(r); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body over %d bytes", int64(maxBatchBodyBytes))
			return
		}
		writeError(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	if len(bb.body) == 0 {
		writeError(w, http.StatusBadRequest, "empty request body")
		return
	}
	if binaryReq {
		if err := bb.cols.ParseBinary(bb.body); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	} else {
		bb.cols.Reset()
		if err := json.Unmarshal(bb.body, &bb.cols); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
	}
	if err := bb.cols.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	bb.sts = bb.cols.StaticsInto(bb.sts[:0])
	scratch := engine.GetBatchScratch()
	fronts := pred.PredictFrontsInto(scratch, bb.sts)
	bb.resp.Reset()
	bb.resp.Version = version
	for _, f := range fronts {
		bb.resp.AppendFront(f)
	}
	engine.PutBatchScratch(scratch)

	if binaryReq {
		bb.out = bb.resp.AppendBinary(bb.out[:0])
		w.Header().Set("Content-Type", binaryContentType)
	} else {
		bb.out = bb.resp.AppendJSON(bb.out[:0])
		w.Header().Set("Content-Type", "application/json")
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(bb.out)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(bb.out)
}
