package main

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/engine"
	"repro/internal/registry"
)

// hardenedServer makes a server of either daemon mode behind the real
// timeout-carrying http.Server on a fresh loopback listener.
func hardenedServer(t *testing.T, agentMode bool, timeouts httpTimeouts) string {
	t.Helper()
	store, err := registry.Open("")
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.NewDefault(engine.Options{})
	var s *server
	if agentMode {
		s = newAgentServer(eng, store, "titanx", planeLimits{})
	} else {
		s = newServer(eng, store, "titanx", adapt.Config{})
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := timeouts.server("", s.handler())
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// TestStalledHeaderConnectionClosed is the slow-loris regression test for
// both daemon modes: a client that opens a connection and never finishes
// its request header must be disconnected by ReadHeaderTimeout, not hold a
// connection slot forever. This is what the -http-read-header-timeout flag
// (and the harness timeouts mirroring it) exists for.
func TestStalledHeaderConnectionClosed(t *testing.T) {
	for _, mode := range []struct {
		name  string
		agent bool
	}{{"default", false}, {"agent", true}} {
		t.Run(mode.name, func(t *testing.T) {
			addr := hardenedServer(t, mode.agent, httpTimeouts{
				ReadHeader: 100 * time.Millisecond,
				Read:       time.Second,
				Write:      time.Second,
				Idle:       time.Second,
			})
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			// Half a request line, then stall: a well-behaved server must
			// cut us off once ReadHeaderTimeout elapses.
			if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: stall")); err != nil {
				t.Fatal(err)
			}
			conn.SetReadDeadline(time.Now().Add(2 * time.Second))
			start := time.Now()
			if _, err := conn.Read(make([]byte, 1)); err == nil {
				t.Fatal("server answered a half-written request header")
			} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
				t.Fatal("server kept the stalled-header connection open past 2s")
			}
			if elapsed := time.Since(start); elapsed > 1500*time.Millisecond {
				t.Fatalf("stalled-header connection closed after %v, want ~ReadHeaderTimeout (100ms)", elapsed)
			}
		})
	}
}

// TestPanicRecoveryMiddleware pins the hardened handler contract: a
// panicking handler costs that request a structured JSON 500 — not a
// killed connection — and the incident is counted on /healthz.
func TestPanicRecoveryMiddleware(t *testing.T) {
	s := testServer(t)
	s.mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	h := s.handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler returned %d, want 500: %s", rec.Code, rec.Body)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error == "" {
		t.Fatalf("panic response is not a structured error: %q (%v)", rec.Body, err)
	}
	if !strings.Contains(body.Error, "panic") {
		t.Fatalf("panic response %q does not say a panic was recovered", body.Error)
	}

	// The incident shows up on /healthz, and a healthy request still works:
	// the middleware recovered the goroutine, not just the one response.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz after a recovered panic: %d: %s", rec.Code, rec.Body)
	}
	var health struct {
		Panics int64 `json:"panics"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Panics != 1 {
		t.Fatalf("healthz panics = %d after one recovered panic, want 1", health.Panics)
	}
}

// TestPanicRecoveryHonorsAbortHandler: http.ErrAbortHandler is the
// sanctioned abort-this-response panic and must pass through uncounted.
func TestPanicRecoveryHonorsAbortHandler(t *testing.T) {
	s := testServer(t)
	s.mux.HandleFunc("/abort", func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	})
	h := s.handler()

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("handler() swallowed http.ErrAbortHandler")
			}
		}()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/abort", nil))
	}()
	if got := s.panics.Load(); got != 0 {
		t.Fatalf("ErrAbortHandler counted as %d panics, want 0", got)
	}
}
