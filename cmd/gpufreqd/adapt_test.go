package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/registry"
)

// request performs an arbitrary-method request against the test server.
func request(t *testing.T, s *server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.mux.ServeHTTP(rec, httptest.NewRequest(method, path, strings.NewReader(body)))
	return rec
}

// adaptServer builds a server with a custom adaptation config over a small
// engine and an in-memory registry.
func adaptServer(t *testing.T, acfg adapt.Config) *server {
	t.Helper()
	store, err := registry.Open("")
	if err != nil {
		t.Fatal(err)
	}
	return newServer(engine.NewDefault(engine.Options{
		Workers: 2,
		Core:    core.Options{SettingsPerKernel: 4},
	}), store, "titanx", acfg)
}

// observeBody builds a single-observation /observe body around the shared
// saxpy kernel.
func observeBody(speedup, energy float64) string {
	b, _ := json.Marshal(map[string]any{
		"source":      saxpy,
		"kernel":      "saxpy",
		"config":      map[string]int{"mem": 3505, "core": 1000},
		"speedup":     speedup,
		"norm_energy": energy,
	})
	return string(b)
}

func TestObserveBeforeTraining(t *testing.T) {
	s := testServer(t)
	if rec := post(t, s, "/observe", observeBody(0.9, 0.9)); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("observe before training: %d, want 503: %s", rec.Code, rec.Body)
	}
	if rec := post(t, s, "/adapt/retrain", ""); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("adapt/retrain before training: %d, want 503: %s", rec.Code, rec.Body)
	}
	// Status works untrained: it just has no model version to judge.
	rec := get(t, s, "/adapt/status")
	if rec.Code != http.StatusOK {
		t.Fatalf("adapt/status: %d: %s", rec.Code, rec.Body)
	}
	var st adapt.Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.ModelVersion != "" || st.Store.Count != 0 {
		t.Fatalf("untrained status: %+v", st)
	}
}

func TestObserveIngestAndStatus(t *testing.T) {
	s := testServer(t)
	first := trainWait(t, s, "")

	rec := post(t, s, "/observe", observeBody(0.95, 0.92))
	if rec.Code != http.StatusOK {
		t.Fatalf("observe: %d: %s", rec.Code, rec.Body)
	}
	var resp observeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ModelVersion != first.Version {
		t.Errorf("model_version = %q, want %q", resp.ModelVersion, first.Version)
	}
	if len(resp.Results) != 1 || resp.Results[0].Error != "" || resp.Results[0].Ingest == nil ||
		!resp.Results[0].Ingest.Stored {
		t.Fatalf("observe results: %+v", resp.Results)
	}
	if resp.Store.Count != 1 || resp.Store.Total != 1 {
		t.Fatalf("store stats: %+v", resp.Store)
	}

	// Batch form plus one invalid observation reported inline.
	batch := `{"observations": [` +
		`{"source": ` + jsonStr(saxpy) + `, "kernel": "saxpy", "config": {"mem": 3505, "core": 900}, "speedup": 0.9, "norm_energy": 0.95},` +
		`{"source": ` + jsonStr(saxpy) + `, "kernel": "saxpy", "config": {"mem": 3505, "core": 900}, "speedup": -1, "norm_energy": 0.95}]}`
	rec = post(t, s, "/observe", batch)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch observe: %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 || resp.Results[0].Error != "" || resp.Results[1].Error == "" {
		t.Fatalf("batch results: %+v", resp.Results)
	}
	if resp.Store.Count != 2 {
		t.Fatalf("store count = %d, want 2 (invalid observation must not be stored)", resp.Store.Count)
	}

	var st adapt.Status
	if err := json.Unmarshal(get(t, s, "/adapt/status").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.ModelVersion != first.Version || st.Drift.Samples != 2 {
		t.Fatalf("status: %+v", st)
	}
	if st.Drift.BaselineSpeedup <= 0 || st.Drift.ThresholdSpeedup <= st.Drift.BaselineSpeedup {
		t.Fatalf("drift baselines/thresholds not populated: %+v", st.Drift)
	}
}

// TestTrainingRecordsResiduals checks that /train publishes manifests with
// the residual baselines the drift detector needs.
func TestTrainingRecordsResiduals(t *testing.T) {
	s := testServer(t)
	me := trainWait(t, s, "")
	if me.Manifest == nil {
		t.Fatal("no manifest")
	}
	tr := me.Manifest.Training
	if tr.SpeedupRMSE <= 0 || tr.EnergyRMSE <= 0 {
		t.Fatalf("training residuals not recorded: %+v", tr)
	}
	if tr.SpeedupRMSE > 1 || tr.EnergyRMSE > 1 {
		t.Fatalf("implausible residuals: %+v", tr)
	}
}

func TestAdaptRetrainEndpoint(t *testing.T) {
	s := adaptServer(t, adapt.Config{}) // auto off: manual control only
	first := trainWait(t, s, "")
	for i := 0; i < 8; i++ {
		if rec := post(t, s, "/observe", observeBody(0.9, 0.95)); rec.Code != http.StatusOK {
			t.Fatalf("observe: %d: %s", rec.Code, rec.Body)
		}
	}

	rec := post(t, s, "/adapt/retrain", "")
	if rec.Code != http.StatusAccepted {
		t.Fatalf("adapt/retrain: %d, want 202: %s", rec.Code, rec.Body)
	}
	var acc adaptRetrainAccepted
	if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Status != "retraining" || acc.Poll != "/adapt/status" {
		t.Fatalf("202 body: %+v", acc)
	}

	deadline := time.Now().Add(2 * time.Minute)
	var st adapt.Status
	for {
		if err := json.Unmarshal(get(t, s, "/adapt/status").Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.Retrain.Retrains > 0 && !st.Retrain.InProgress {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("manual retrain did not finish: %+v", st.Retrain)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Retrain.LastOutcome == adapt.OutcomeFailed {
		t.Fatalf("retrain failed: %s", st.Retrain.LastError)
	}
	if st.Retrain.LastVersion == "" || !strings.HasPrefix(st.Retrain.LastReason, "manual") {
		t.Fatalf("retrain state: %+v", st.Retrain)
	}
	// The candidate snapshot is in the registry either way; when the
	// holdout passed, serving moved to it and the manifest records the
	// folded-in observations.
	var me modelEntry
	if err := json.Unmarshal(get(t, s, "/models/"+st.Retrain.LastVersion).Body.Bytes(), &me); err != nil {
		t.Fatal(err)
	}
	if me.Manifest == nil || me.Manifest.Training.Observations == 0 {
		t.Fatalf("candidate manifest: %+v", me.Manifest)
	}
	if st.Retrain.LastOutcome == adapt.OutcomeActivated {
		if v := s.serving.Version(); v != st.Retrain.LastVersion {
			t.Fatalf("serving %q after activation of %q", v, st.Retrain.LastVersion)
		}
	} else if v := s.serving.Version(); v != first.Version {
		t.Fatalf("rejected candidate changed serving to %q", v)
	}
}

// TestAutoRetrainOverHTTP drives the whole loop through the HTTP surface:
// drifting observations trip the detector and the server retrains and
// hot-swaps (synchronously, so the test is deterministic on one vCPU).
func TestAutoRetrainOverHTTP(t *testing.T) {
	s := adaptServer(t, adapt.Config{
		Auto:            true,
		Sync:            true,
		MinSamples:      4,
		BaselineSpeedup: 0.01,
		BaselineEnergy:  0.01,
		Cooldown:        time.Hour,
	})
	first := trainWait(t, s, "")

	var started bool
	for i := 0; i < 8 && !started; i++ {
		rec := post(t, s, "/observe", observeBody(0.5, 0.5))
		if rec.Code != http.StatusOK {
			t.Fatalf("observe: %d: %s", rec.Code, rec.Body)
		}
		var resp observeResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Results[0].Ingest != nil && resp.Results[0].Ingest.RetrainStarted {
			started = true
		}
	}
	if !started {
		t.Fatal("drifting observations never started a retrain")
	}
	var st adapt.Status
	if err := json.Unmarshal(get(t, s, "/adapt/status").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Retrain.Retrains != 1 {
		t.Fatalf("retrains = %d, want 1: %+v", st.Retrain.Retrains, st.Retrain)
	}
	if st.Retrain.LastOutcome == adapt.OutcomeActivated && s.serving.Version() == first.Version {
		t.Fatal("activated retrain did not hot-swap serving")
	}
}

// TestJSONErrorShape pins the structured error contract: every failure
// path — unknown endpoints included — answers {"error": ...} JSON with a
// matching status code, never net/http's plain-text pages.
func TestJSONErrorShape(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		name, method, path, body string
		status                   int
	}{
		{"unknown path", http.MethodGet, "/nope", "", http.StatusNotFound},
		{"unknown nested path", http.MethodPost, "/models/v0001/delete", "", http.StatusNotFound},
		{"root", http.MethodGet, "/", "", http.StatusNotFound},
		{"malformed predict body", http.MethodPost, "/predict", "{not json", http.StatusBadRequest},
		{"empty predict body", http.MethodPost, "/predict", "", http.StatusBadRequest},
		{"trailing garbage", http.MethodPost, "/predict", `{"source": "x"} extra`, http.StatusBadRequest},
		{"malformed select body", http.MethodPost, "/select", "[1,2", http.StatusBadRequest},
		{"malformed train body", http.MethodPost, "/train", "{{", http.StatusBadRequest},
		{"malformed observe body", http.MethodPost, "/observe", "null garbage", http.StatusBadRequest},
		{"empty observe body", http.MethodPost, "/observe", "", http.StatusBadRequest},
		{"wrong method", http.MethodDelete, "/predict", "", http.StatusMethodNotAllowed},
		{"wrong method adapt", http.MethodPost, "/adapt/status", "", http.StatusMethodNotAllowed},
		{"wrong method observe", http.MethodGet, "/observe", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		rec := request(t, s, tc.method, tc.path, tc.body)
		if rec.Code != tc.status {
			t.Errorf("%s: status %d, want %d: %s", tc.name, rec.Code, tc.status, rec.Body)
			continue
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type %q, want application/json", tc.name, ct)
			continue
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: body is not a structured error: %s", tc.name, rec.Body)
		}
	}
}
