package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/measure"
	"repro/internal/nvml"
	"repro/internal/registry"
)

// agentRig is an -agent mode server wired to a running control-plane
// server over real loopback HTTP, as runAgent would assemble it.
type agentRig struct {
	server *server
	url    string
}

// newAgentRig builds an agent-mode server for a device and registers it
// against the control server's URL. The agent's own listener is live
// before the first sync so control-plane pushes can reach it.
func newAgentRig(t *testing.T, deviceName, controlURL string) *agentRig {
	t.Helper()
	dev, err := device(deviceName)
	if err != nil {
		t.Fatal(err)
	}
	store, err := registry.Open("")
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(measure.NewHarness(nvml.NewDevice(dev)), engine.Options{
		Workers: 4,
		Core:    core.Options{SettingsPerKernel: 4},
	})
	s := newAgentServer(eng, store, deviceName, planeLimits{})
	srv := httptest.NewServer(s.mux)
	t.Cleanup(srv.Close)
	agent, err := fleet.NewAgent(fleet.AgentConfig{
		Node:    "agent-" + deviceName,
		Addr:    srv.URL,
		Device:  deviceName,
		Control: controlURL,
		Store:   store,
		Engine:  eng,
		Serving: s.serving,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.agent = agent
	return &agentRig{server: s, url: srv.URL}
}

// TestAgentModeServesAndForwards drives the full daemon-level fleet path:
// a control-plane server trains and publishes, an agent-mode server
// syncs, serves /predict from the pushed snapshot, reports its fleet
// state on /healthz, forwards /observe upstream into the control plane's
// adaptation loop, and refuses the management surface it does not have.
func TestAgentModeServesAndForwards(t *testing.T) {
	ctl := testServer(t)
	trainWait(t, ctl, "")
	ctlSrv := httptest.NewServer(ctl.mux)
	defer ctlSrv.Close()

	rig := newAgentRig(t, "titanx", ctlSrv.URL)
	if err := syncAgent(rig); err != nil {
		t.Fatalf("agent sync: %v", err)
	}

	// The agent serves predictions from the installed snapshot.
	rec := post(t, rig.server, "/predict", `{"source": `+jsonStr(saxpy)+`}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("agent /predict status %d: %s", rec.Code, rec.Body)
	}
	var pr predictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.ModelVersion != ctl.serving.Version() {
		t.Fatalf("agent serves %q, control plane serves %q", pr.ModelVersion, ctl.serving.Version())
	}
	if len(pr.Results) != 1 || len(pr.Results[0].Pareto) == 0 {
		t.Fatalf("agent prediction empty: %+v", pr.Results)
	}

	// /healthz reports the fleet sync state.
	rec = get(t, rig.server, "/healthz")
	var health healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Fleet == nil || health.Fleet.Hash == "" || health.Fleet.Installs != 1 {
		t.Fatalf("agent /healthz fleet state: %+v", health.Fleet)
	}

	// /observe on the agent forwards into the control plane's own
	// adaptation loop (the agent's device is the control plane's
	// LocalDevice), so the control plane's store counts it.
	rec = post(t, rig.server, "/observe",
		`{"source": `+jsonStr(saxpy)+`, "config": {"mem": 3505, "core": 1000}, "speedup": 0.97, "norm_energy": 0.93}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("agent /observe status %d: %s", rec.Code, rec.Body)
	}
	var obs observeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &obs); err != nil {
		t.Fatal(err)
	}
	if len(obs.Results) != 1 || obs.Results[0].Error != "" || obs.Results[0].Ingest == nil {
		t.Fatalf("forwarded observation rejected: %+v", obs.Results)
	}
	if got := ctl.adapt.StoreStats().Count; got != 1 {
		t.Fatalf("control plane's store holds %d observations, want 1", got)
	}
	if n := ctl.adapt.StoreStats().Nodes["agent-titanx"]; n != 1 {
		t.Fatalf("observation not attributed to the forwarding node: %+v", ctl.adapt.StoreStats().Nodes)
	}

	// The agent has no training or registry-management surface.
	for _, path := range []string{"/train", "/models", "/adapt/status", "/fleet/nodes"} {
		rec := get(t, rig.server, path)
		if rec.Code != http.StatusNotFound {
			t.Errorf("agent %s status %d, want 404", path, rec.Code)
		}
	}

	// The control plane's directory lists the agent as synced.
	rec = get(t, ctl, "/fleet/nodes")
	if rec.Code != http.StatusOK {
		t.Fatalf("/fleet/nodes status %d: %s", rec.Code, rec.Body)
	}
	var nodes fleet.NodesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &nodes); err != nil {
		t.Fatal(err)
	}
	if len(nodes.Nodes) != 1 || nodes.Nodes[0].Node != "agent-titanx" || !nodes.Nodes[0].Synced {
		t.Fatalf("node directory: %+v", nodes.Nodes)
	}
}

// TestAgentRefusesTamperedPush pins the agent's wire-integrity check at
// the daemon level: a bit-flipped snapshot POSTed to /fleet/snapshot is
// refused with 409 Conflict and the serving model is untouched.
func TestAgentRefusesTamperedPush(t *testing.T) {
	ctl := testServer(t)
	trainWait(t, ctl, "")
	ctlSrv := httptest.NewServer(ctl.mux)
	defer ctlSrv.Close()

	rig := newAgentRig(t, "titanx", ctlSrv.URL)
	if err := syncAgent(rig); err != nil {
		t.Fatal(err)
	}
	before := rig.server.serving.Version()

	doc, err := ctl.store.ExportDoc("titanx", "")
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(doc), `"coefs": [`, `"coefs": [0,`, 1)
	if tampered == string(doc) {
		t.Fatal("tamper marker not found in the snapshot document")
	}
	resp, err := http.Post(rig.url+"/fleet/snapshot", "application/json", strings.NewReader(tampered))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict || !strings.Contains(e.Error, "corrupt") {
		t.Fatalf("tampered push: %d %q, want 409 naming corruption", resp.StatusCode, e.Error)
	}
	if got := rig.server.serving.Version(); got != before {
		t.Fatalf("tampered push changed serving from %q to %q", before, got)
	}
}

// TestActivateFansOutToAgents verifies the daemon-side push trigger: an
// HTTP activation on the control plane fans the snapshot out to a
// registered agent in the background.
func TestActivateFansOutToAgents(t *testing.T) {
	ctl := testServer(t)
	first := trainWait(t, ctl, "")
	// A different settings count yields different models (and a different
	// content hash), so the push below is a real install, not a no-op.
	// 16 clears the sampler's per-ladder minimum, which the default 4 is
	// clamped up to.
	second := trainWait(t, ctl, `{"settings": 16}`)
	if first.Version == second.Version || first.Manifest.Hash == second.Manifest.Hash {
		t.Fatal("expected two distinct snapshots")
	}
	ctlSrv := httptest.NewServer(ctl.mux)
	defer ctlSrv.Close()

	rig := newAgentRig(t, "titanx", ctlSrv.URL)
	if err := syncAgent(rig); err != nil {
		t.Fatal(err)
	}
	if got := rig.server.serving.Version(); got != second.Version {
		t.Fatalf("agent synced to %q, want the active %q", got, second.Version)
	}

	// Re-activate the first version over HTTP; the fan-out goroutine
	// pushes it to the agent.
	rec := post(t, ctl, "/models/"+first.Version+"/activate", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("activate status %d: %s", rec.Code, rec.Body)
	}
	// The install re-verifies the document hash and rebuilds a predictor,
	// which takes several seconds under the race detector on a 1-vCPU
	// runner (~6 s observed), so the budget is generous.
	deadline := time.Now().Add(60 * time.Second)
	for rig.server.serving.Version() != first.Version {
		if time.Now().After(deadline) {
			t.Fatalf("agent still serves %q, want pushed %q", rig.server.serving.Version(), first.Version)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// syncAgent runs one agent heartbeat with a short timeout.
func syncAgent(rig *agentRig) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := rig.server.agent.Sync(ctx)
	return err
}
