package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/colproto"
	"repro/internal/engine"
	"repro/internal/registry"
	"repro/internal/synth"
)

// paperSnapshotWithFronts publishes the cached paper-scale models plus
// their publish-time front table as the active snapshot of a fresh model
// directory.
func paperSnapshotWithFronts(b *testing.B) string {
	b.Helper()
	dir, models := paperSnapshot(b) // ensures paperBench.models
	// Re-save into the same registry with fronts and activate that version.
	store, err := registry.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.NewDefault(engine.Options{})
	fronts := registry.ComputeFronts(
		engine.NewPredictor(models, eng.Harness().Device().Sim().Ladder, eng.Options()),
		engine.TrainingKernels())
	man, err := store.SaveWithFronts("titanx", "", models, registry.Training{}, fronts)
	if err != nil {
		b.Fatal(err)
	}
	if err := store.Activate("titanx", man.Version); err != nil {
		b.Fatal(err)
	}
	return dir
}

// benchServerDir boots a server from an existing model directory.
func benchServerDir(b *testing.B, dir string) *server {
	b.Helper()
	store, err := registry.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	s := newServer(engine.NewDefault(engine.Options{}), store, "titanx", adapt.Config{})
	if !s.loadActive() {
		b.Fatal("bench server did not load the snapshot")
	}
	return s
}

// selectBody builds a /select request body for one training kernel.
func selectBody(src, kernel string) string {
	return `{"policy":{"name":"min-energy"},"source":` + jsonStr(src) + `,"kernel":` + jsonStr(kernel) + `}`
}

// selectFirstTouch measures the latency of every training kernel's FIRST
// /select decision on a fresh server (paced like predictPercentiles): the
// number that separates a published front table (map hit) from a live
// ladder sweep (two SVR evaluations per configuration).
func selectFirstTouch(b *testing.B, s *server) (p50, p99 float64) {
	b.Helper()
	var lat []time.Duration
	for _, bench := range synth.Generate() {
		body := selectBody(bench.Source, bench.KernelName)
		start := time.Now()
		rec := httptest.NewRecorder()
		s.mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/select", strings.NewReader(body)))
		if rec.Code != http.StatusOK {
			b.Fatalf("select status %d: %s", rec.Code, rec.Body)
		}
		lat = append(lat, time.Since(start))
		time.Sleep(probeInterval)
	}
	return percentiles(lat)
}

// BenchmarkSelectFirstTouchFront is the after: first-touch /select over
// the 106 training kernels against a snapshot with published fronts —
// every decision is a front-table map hit with zero SVR evaluations.
func BenchmarkSelectFirstTouchFront(b *testing.B) {
	dir := paperSnapshotWithFronts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := benchServerDir(b, dir)
		if _, _, gov, _ := s.serving.Current(); gov.FrontKernels() == 0 {
			b.Fatal("snapshot has no fronts")
		}
		p50, p99 := selectFirstTouch(b, s)
		b.ReportMetric(p50, "p50-ms")
		b.ReportMetric(p99, "p99-ms")
	}
}

// BenchmarkSelectFirstTouchLive is the before: the same first-touch sweep
// against a frontless snapshot, so every decision runs the live ladder
// sweep through the SVRs.
func BenchmarkSelectFirstTouchLive(b *testing.B) {
	dir, _ := paperSnapshot(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := benchServerDir(b, dir)
		p50, p99 := selectFirstTouch(b, s)
		b.ReportMetric(p50, "p50-ms")
		b.ReportMetric(p99, "p99-ms")
	}
}

// BenchmarkSelectHot measures steady-state /select latency on a
// front-published server: after one warm pass, paced probes rotating the
// training kernels (decision-cache and front-table hits only).
func BenchmarkSelectHot(b *testing.B) {
	dir := paperSnapshotWithFronts(b)
	s := benchServerDir(b, dir)
	kernels := synth.Generate()
	bodies := make([]string, len(kernels))
	for i, k := range kernels {
		bodies[i] = selectBody(k.Source, k.KernelName)
	}
	for _, body := range bodies { // warm pass
		rec := httptest.NewRecorder()
		s.mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/select", strings.NewReader(body)))
		if rec.Code != http.StatusOK {
			b.Fatalf("warmup select status %d: %s", rec.Code, rec.Body)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var lat []time.Duration
		for j := 0; j < 512; j++ {
			body := bodies[j%len(bodies)]
			start := time.Now()
			rec := httptest.NewRecorder()
			s.mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/select", strings.NewReader(body)))
			if rec.Code != http.StatusOK {
				b.Fatalf("select status %d: %s", rec.Code, rec.Body)
			}
			lat = append(lat, time.Since(start))
			time.Sleep(probeInterval)
		}
		p50, p99 := percentiles(lat)
		b.ReportMetric(p50, "p50-ms")
		b.ReportMetric(p99, "p99-ms")
	}
}

// BenchmarkPredictCeiling measures the single-kernel /predict requests/s
// ceiling: a closed loop with no pacing, the maximum one connection can
// push through the mux.
func BenchmarkPredictCeiling(b *testing.B) {
	dir, _ := paperSnapshot(b)
	s := benchServerDir(b, dir)
	kernels := benchKernels(32)
	// Warm the prediction cache so the ceiling measures the steady state.
	for _, k := range kernels {
		rec := httptest.NewRecorder()
		s.mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/predict",
			strings.NewReader(`{"source": `+jsonStr(k)+`}`)))
		if rec.Code != http.StatusOK {
			b.Fatalf("predict status %d: %s", rec.Code, rec.Body)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		const calls = 2048
		start := time.Now()
		for j := 0; j < calls; j++ {
			body := `{"source": ` + jsonStr(kernels[j%len(kernels)]) + `}`
			rec := httptest.NewRecorder()
			s.mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(body)))
			if rec.Code != http.StatusOK {
				b.Fatalf("predict status %d: %s", rec.Code, rec.Body)
			}
		}
		b.ReportMetric(float64(calls)/time.Since(start).Seconds(), "req/s")
		b.ReportMetric(float64(calls)/time.Since(start).Seconds(), "kernels/s")
	}
}

// BenchmarkBatchCeiling measures the columnar /predict/batch ceiling with
// the binary framing: 32 kernels per request in a closed loop, reported
// both as requests/s and kernels/s (the number to compare against
// BenchmarkPredictCeiling's kernels/s).
func BenchmarkBatchCeiling(b *testing.B) {
	dir := paperSnapshotWithFronts(b)
	s := benchServerDir(b, dir)
	const perRequest = 32
	cols := &colproto.Columns{}
	for _, k := range synth.Generate()[:perRequest] {
		cols.Append(k.Name, k.Features())
	}
	frame := cols.AppendBinary(nil)
	body := bytes.NewReader(frame)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		const calls = 64
		start := time.Now()
		for j := 0; j < calls; j++ {
			body.Reset(frame)
			req := httptest.NewRequest(http.MethodPost, "/predict/batch", body)
			req.Header.Set("Content-Type", binaryContentType)
			rec := httptest.NewRecorder()
			s.mux.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("batch status %d: %s", rec.Code, rec.Body)
			}
		}
		secs := time.Since(start).Seconds()
		b.ReportMetric(float64(calls)/secs, "req/s")
		b.ReportMetric(float64(calls*perRequest)/secs, "kernels/s")
	}
}
