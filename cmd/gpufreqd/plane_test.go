package main

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/registry"
)

func TestPlaneLimiterShedsOverLimit(t *testing.T) {
	l := newPlaneLimiter("read", 2, defaultReadConcurrency)
	if l.limit() != 2 {
		t.Fatalf("limit = %d, want 2", l.limit())
	}
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	h := l.wrap(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &discardWriter{h: make(http.Header)}
			h(w, nil)
		}()
		<-started
	}
	// Both slots taken: the third request is shed immediately.
	w := &discardWriter{h: make(http.Header)}
	h(w, nil)
	if w.code != http.StatusServiceUnavailable {
		t.Fatalf("over-limit request status %d, want 503", w.code)
	}
	if w.h.Get("Retry-After") == "" {
		t.Fatal("shed response has no Retry-After header")
	}
	if got := l.info(); got.Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", got.Shed)
	}
	close(release)
	wg.Wait()

	// With the slots free again, requests pass.
	w = &discardWriter{h: make(http.Header)}
	l.wrap(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })(w, nil)
	if w.code != http.StatusOK {
		t.Fatalf("post-drain request status %d, want 200", w.code)
	}
}

func TestPlaneLimiterDefaultsAndUnlimited(t *testing.T) {
	if l := newPlaneLimiter("read", 0, defaultReadConcurrency); l.limit() != defaultReadConcurrency {
		t.Fatalf("0 limit = %d, want default %d", l.limit(), defaultReadConcurrency)
	}
	l := newPlaneLimiter("control", -1, defaultControlConcurrency)
	if l.limit() != 0 {
		t.Fatalf("negative limit = %d, want 0 (unlimited)", l.limit())
	}
	// Unlimited wrap is the identity: no shedding ever.
	w := &discardWriter{h: make(http.Header)}
	l.wrap(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })(w, nil)
	if w.code != http.StatusOK || l.info().Shed != 0 {
		t.Fatalf("unlimited limiter interfered: code %d, shed %d", w.code, l.info().Shed)
	}
}

// TestPlaneSplitIndependence saturates the control plane and checks the
// read plane keeps serving: the two handler groups draw from independent
// semaphores.
func TestPlaneSplitIndependence(t *testing.T) {
	store, err := registry.Open("")
	if err != nil {
		t.Fatal(err)
	}
	s := newServerLimits(engine.NewDefault(engine.Options{
		Workers: 2,
		Core:    core.Options{SettingsPerKernel: 4},
	}), store, "titanx", adapt.Config{}, planeLimits{Read: 4, Control: 2})

	// Fill every control-plane slot.
	for i := 0; i < cap(s.control.sem); i++ {
		s.control.sem <- struct{}{}
	}
	defer func() {
		for i := 0; i < cap(s.control.sem); i++ {
			<-s.control.sem
		}
	}()

	rec := get(t, s, "/models")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated control plane served /models: %d", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("control shed has no Retry-After")
	}

	// The read plane is unaffected.
	rec = get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("read plane blocked by control saturation: %d: %s", rec.Code, rec.Body)
	}
	var hr struct {
		Planes struct {
			Read    planeInfo `json:"read"`
			Control planeInfo `json:"control"`
		} `json:"planes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Planes.Read.Limit != 4 || hr.Planes.Control.Limit != 2 {
		t.Fatalf("healthz planes = %+v, want limits 4/2", hr.Planes)
	}
	if hr.Planes.Control.Shed != 1 || hr.Planes.Read.Shed != 0 {
		t.Fatalf("healthz shed accounting = %+v, want control=1 read=0", hr.Planes)
	}
}

func TestHealthzDefaultPlaneLimits(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/healthz")
	var hr struct {
		Planes struct {
			Read    planeInfo `json:"read"`
			Control planeInfo `json:"control"`
		} `json:"planes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Planes.Read.Limit != defaultReadConcurrency || hr.Planes.Control.Limit != defaultControlConcurrency {
		t.Fatalf("default plane limits = %+v, want %d/%d",
			hr.Planes, defaultReadConcurrency, defaultControlConcurrency)
	}
}

// TestHealthzSurvivesReadSaturation pins that /healthz sits outside the
// plane limiters: with every read-plane slot taken, liveness probes keep
// answering 200 (an orchestrator must not restart a busy-but-healthy
// instance) while read-plane routes shed.
func TestHealthzSurvivesReadSaturation(t *testing.T) {
	store, err := registry.Open("")
	if err != nil {
		t.Fatal(err)
	}
	s := newServerLimits(engine.NewDefault(engine.Options{
		Workers: 2,
		Core:    core.Options{SettingsPerKernel: 4},
	}), store, "titanx", adapt.Config{}, planeLimits{Read: 2, Control: 2})

	for i := 0; i < cap(s.read.sem); i++ {
		s.read.sem <- struct{}{}
	}
	defer func() {
		for i := 0; i < cap(s.read.sem); i++ {
			<-s.read.sem
		}
	}()

	if rec := get(t, s, "/policies"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated read plane served /policies: %d", rec.Code)
	}
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz shed under read saturation: %d: %s", rec.Code, rec.Body)
	}
	var hr struct {
		Planes struct {
			Read planeInfo `json:"read"`
		} `json:"planes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Planes.Read.Shed != 1 {
		t.Fatalf("read shed counter = %d, want 1", hr.Planes.Read.Shed)
	}
}
