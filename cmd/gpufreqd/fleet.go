package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/gpu"
	"repro/internal/measure"
	"repro/internal/nvml"
	"repro/internal/registry"
)

// budgetMixShift carries the -budget-mix-shift flag into mountFleet
// (0 = fleet.DefaultMixShiftThreshold; negative disables auto-replans).
// A package variable because servers are also built by tests, where the
// zero value selects the default threshold.
var budgetMixShift float64

// mountFleet wires the fleet control plane into the default-mode server:
// the daemon's own registry becomes the fleet's source of truth, and the
// five /fleet/* management routes land on the control limiter with the
// rest of the management surface. The daemon's own device is the control
// plane's LocalDevice — its observations route into the daemon's existing
// adaptation loop and fleet activations for it go through the same
// serialized activate-and-install path as /models/{id}/activate, so one
// device never has two competing retrain loops.
func (s *server) mountFleet(acfg adapt.Config) {
	s.fleet = fleet.NewControl(s.store, fleet.ControlConfig{
		Opts:              s.engine.Options(),
		Adapt:             acfg,
		MixShiftThreshold: budgetMixShift,
		LocalDevice:       s.device,
		LocalObserve:      s.adapt.Observe,
		LocalActivate: func(version string) error {
			models, _, err := s.store.Load(s.device, version)
			if err != nil {
				return err
			}
			return s.activateAndInstall(version, models)
		},
	})
	s.handleControl("/fleet/register", s.fleet.HandleRegister)
	s.handleControl("/fleet/observe", s.fleet.HandleObserve)
	s.handleControl("/fleet/nodes", s.fleet.HandleNodes)
	s.handleControl("/fleet/push", s.fleet.HandlePush)
	s.handleControl("/fleet/budget", s.fleet.HandleBudget)
}

// newAgentServer builds the -agent mode server: only the memory-resident
// serving path (predict, batch, select, policies), observation forwarding
// to the control plane, and the snapshot push target. No training,
// registry management, or local adaptation routes exist in this mode —
// the control plane owns all of that for the whole fleet.
func newAgentServer(e *engine.Engine, store *registry.Store, device string, limits planeLimits) *server {
	s := &server{
		engine:  e,
		store:   store,
		serving: registry.NewServing(),
		device:  device,
		mux:     http.NewServeMux(),
		start:   time.Now(),
		jobs:    map[string]*trainJob{},
		read:    newPlaneLimiter("read", limits.Read, defaultReadConcurrency),
		control: newPlaneLimiter("control", limits.Control, defaultControlConcurrency),
	}
	s.handle("/healthz", s.handleHealthz)
	s.handleRead("/predict", s.handlePredict)
	s.handleRead("/predict/batch", s.handlePredictBatch)
	s.handleRead("/select", s.handleSelect)
	s.handleRead("/policies", s.handlePolicies)
	s.handleControl("/observe", s.handleObserveForward)
	s.handleControl("/fleet/snapshot", s.handleFleetSnapshot)
	s.handleControl("/fleet/decisions", s.handleFleetDecisions)
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "no such endpoint %s in agent mode (see docs/API.md)", r.URL.Path)
	})
	return s
}

// handleFleetSnapshot is the agent's push target: the control plane POSTs
// raw snapshot documents here and the agent verifies and hot-swaps them.
func (s *server) handleFleetSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.agent == nil {
		writeError(w, http.StatusServiceUnavailable, "agent not initialized")
		return
	}
	s.agent.HandleSnapshot(w, r)
}

// handleFleetDecisions is the agent's fleet-budget target: the control
// plane POSTs per-node decision tables here (GET returns the installed
// one).
func (s *server) handleFleetDecisions(w http.ResponseWriter, r *http.Request) {
	if s.agent == nil {
		writeError(w, http.StatusServiceUnavailable, "agent not initialized")
		return
	}
	s.agent.HandleDecisions(w, r)
}

// handleObserveForward is the agent-mode /observe: the same request shape
// as the daemon's, but observations are forwarded to the control plane's
// fleet aggregator instead of a local adaptation loop. Feature-extraction
// failures are rejected per item locally; everything else carries the
// control plane's per-observation verdicts back to the reporter.
func (s *server) handleObserveForward(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.agent == nil {
		writeError(w, http.StatusServiceUnavailable, "agent not initialized")
		return
	}
	var req observeRequest
	if err := readJSON(r, &req, false); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	reports := req.Observations
	if req.Source != "" || req.Features != nil {
		reports = append(reports, req.observeKernel)
	}
	if len(reports) == 0 {
		writeError(w, http.StatusBadRequest, "no observations in request")
		return
	}
	results := make([]observeResult, len(reports))
	obs := make([]adapt.Observation, 0, len(reports))
	idx := make([]int, 0, len(reports)) // indices with valid observations
	for i, rep := range reports {
		results[i].Kernel = rep.Kernel
		o, err := rep.observation()
		if err != nil {
			results[i].Error = err.Error()
			continue
		}
		idx = append(idx, i)
		obs = append(obs, o)
	}
	var store adapt.StoreStats
	var spooled int
	if len(obs) > 0 {
		resp, sp, err := s.agent.Forward(r.Context(), obs)
		if err != nil {
			writeError(w, http.StatusBadGateway, "forwarding observations to the control plane: %v", err)
			return
		}
		spooled = sp
		if resp != nil {
			for j, i := range idx {
				if j >= len(resp.Results) {
					break
				}
				results[i].Ingest = resp.Results[j].Ingest
				results[i].Error = resp.Results[j].Error
			}
			store = resp.Store
		}
	}
	// A spooled batch was accepted but not yet delivered: 202 tells the
	// reporter its observations are durably queued and will reach the
	// control plane when the partition heals.
	status := http.StatusOK
	if spooled > 0 {
		status = http.StatusAccepted
	}
	writeJSON(w, status, observeResponse{
		ModelVersion: s.serving.Version(),
		Results:      results,
		Spooled:      spooled,
		Store:        store,
	})
}

// agentOptions is runAgent's configuration, resolved from flags.
type agentOptions struct {
	Addr      string
	Device    string
	Workers   int
	Settings  int
	Node      string
	Control   string
	Advertise string
	Sync      time.Duration
	SpoolDir  string
	Limits    planeLimits
	Timeouts  httpTimeouts
}

// runAgent is the -agent entry point: a thin node agent that registers
// with the control plane, serves predictions from pushed (or pulled)
// snapshots out of a memory-resident registry, and forwards observations
// upstream. It listens before registering so the advertised push address
// is live by the time the control plane learns it.
func runAgent(opts agentOptions) error {
	if opts.Control == "" {
		return fmt.Errorf("-agent requires -control URL")
	}
	dev, err := gpu.ByName(opts.Device)
	if err != nil {
		return err
	}
	if opts.Node == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			return fmt.Errorf("-node not set and no usable hostname: %v", err)
		}
		opts.Node = host
	}
	// Agent registries are memory-mode by design: the store is a verified
	// cache of what the control plane pushed, not a source of truth.
	store, err := registry.Open("")
	if err != nil {
		return err
	}
	eng := engine.New(measure.NewHarness(nvml.NewDevice(dev)), engine.Options{
		Workers: opts.Workers,
		Core:    core.Options{SettingsPerKernel: opts.Settings},
	})
	s := newAgentServer(eng, store, opts.Device, opts.Limits)

	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return err
	}
	advertise := opts.Advertise
	if advertise == "" {
		advertise = advertiseURL(ln.Addr())
	}
	// The spool keeps observations that could not be forwarded; with
	// -spool-dir it survives agent restarts, so a partition plus a crash
	// still loses nothing.
	spool, err := adapt.OpenSpool(opts.SpoolDir)
	if err != nil {
		return err
	}
	defer spool.Close()
	agent, err := fleet.NewAgent(fleet.AgentConfig{
		Node:    opts.Node,
		Addr:    advertise,
		Device:  opts.Device,
		Control: opts.Control,
		Store:   store,
		Engine:  eng,
		Serving: s.serving,
		Spool:   spool,
	})
	if err != nil {
		return err
	}
	s.agent = agent

	httpSrv := opts.Timeouts.server("", s.handler())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The heartbeat loop registers, pulls the first snapshot (or a
	// cross-device bootstrap), and keeps the agent converged; its errors
	// are visible on /healthz and retried every tick.
	go agent.Run(ctx, opts.Sync)

	errc := make(chan error, 1)
	go func() {
		log.Printf("gpufreqd agent %s (%s) listening on %s, control plane %s",
			opts.Node, opts.Device, ln.Addr(), opts.Control)
		errc <- httpSrv.Serve(ln)
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		log.Print("shutdown signal received, draining connections...")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("shutdown: %v", err)
		}
		log.Print("bye")
		return nil
	}
}

// advertiseURL derives the default push address from the bound listener:
// an explicitly bound IP is advertised as-is, a wildcard bind falls back
// to loopback (multi-host deployments set -advertise).
func advertiseURL(addr net.Addr) string {
	tcp, ok := addr.(*net.TCPAddr)
	if !ok {
		return "http://" + addr.String()
	}
	ip := tcp.IP
	if ip == nil || ip.IsUnspecified() {
		ip = net.IPv4(127, 0, 0, 1)
	}
	return fmt.Sprintf("http://%s", net.JoinHostPort(ip.String(), fmt.Sprint(tcp.Port)))
}
