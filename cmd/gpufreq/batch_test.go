package main

import (
	"encoding/json"
	"io"
	"mime"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/colproto"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/freq"
)

// fakeBatchDaemon serves /predict/batch in both framings, echoing one
// synthetic front per requested kernel (speedup derived from the kernel's
// first feature so the round trip is observable).
func fakeBatchDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/predict/batch", func(w http.ResponseWriter, r *http.Request) {
		raw, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		binary := false
		if mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type")); err == nil && mt == binaryContentType {
			binary = true
		}
		var cols colproto.Columns
		if binary {
			if err := cols.ParseBinary(raw); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		} else if err := json.Unmarshal(raw, &cols); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := cols.Validate(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var resp colproto.Fronts
		resp.Version = "v0007"
		for _, st := range cols.StaticsInto(nil) {
			resp.AppendFront([]core.Prediction{
				{Config: freq.Config{Mem: 3505, Core: 1000}, Speedup: 1 + st[0], NormEnergy: 0.9},
				{Config: freq.Config{Mem: 810, Core: 600}, Speedup: 0.5, NormEnergy: 0.4, MemLHeuristic: true},
			})
		}
		if binary {
			w.Header().Set("Content-Type", binaryContentType)
			w.Write(resp.AppendBinary(nil))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(resp.AppendJSON(nil))
	})
	return httptest.NewServer(mux)
}

// captureStdout runs f with os.Stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	raw, _ := io.ReadAll(r)
	if ferr != nil {
		t.Fatalf("batch predict: %v (output so far: %s)", ferr, raw)
	}
	return string(raw)
}

// writeBatchCSV writes a named columnar CSV batch file for two kernels.
func writeBatchCSV(t *testing.T, dir string) string {
	t.Helper()
	var b strings.Builder
	b.WriteString("name," + strings.Join(features.Names, ",") + "\n")
	b.WriteString("alpha,0.5,0,0,0,0,0,0.25,0,0,0.125\n")
	b.WriteString("beta,0.75,0,0,0,0,0,0.5,0,0,0.25\n")
	path := filepath.Join(dir, "batch.csv")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBatchPredictCSVRoundTrip(t *testing.T) {
	srv := fakeBatchDaemon(t)
	defer srv.Close()
	path := writeBatchCSV(t, t.TempDir())
	for _, binary := range []bool{false, true} {
		out := captureStdout(t, func() error { return batchPredict(srv.URL, path, binary) })
		for _, want := range []string{"model v0007: 2 kernels", "alpha:", "beta:",
			"3505@1000", "1.500", "1.750", "[mem-L heuristic]"} {
			if !strings.Contains(out, want) {
				t.Errorf("binary=%v: output missing %q:\n%s", binary, want, out)
			}
		}
	}
}

func TestBatchPredictJSONFile(t *testing.T) {
	srv := fakeBatchDaemon(t)
	defer srv.Close()
	var cols colproto.Columns
	cols.Append("gamma", features.Static{0: 0.25})
	doc, err := json.Marshal(&cols)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "batch.json")
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error { return batchPredict(srv.URL, path, false) })
	if !strings.Contains(out, "gamma:") || !strings.Contains(out, "1.250") {
		t.Errorf("JSON batch output missing kernel front:\n%s", out)
	}
}

func TestReadColumnsFileErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name, body, wantErr string
	}{
		{"short.csv", "name," + strings.Join(features.Names, ",") + "\n", "at least one kernel"},
		{"cols.csv", "name,a,b\nx,1,2\n", "feature columns"},
		{"order.csv", "name," + strings.Join(append([]string{features.Names[1], features.Names[0]}, features.Names[2:]...), ",") + "\nx,1,2,3,4,5,6,7,8,9,10\n", "canonical order"},
		{"badnum.csv", "name," + strings.Join(features.Names, ",") + "\nx,oops,2,3,4,5,6,7,8,9,10\n", features.Names[0]},
		{"bad.json", "{", "bad.json"},
	}
	for _, tc := range cases {
		if _, err := readColumnsFile(write(tc.name, tc.body)); err == nil {
			t.Errorf("%s: want error containing %q, got nil", tc.name, tc.wantErr)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
	// Headerless feature order must also parse when unnamed.
	p := write("ok.csv", strings.Join(features.Names, ",")+"\n0.5,0,0,0,0,0,0,0,0,0\n")
	cols, err := readColumnsFile(p)
	if err != nil {
		t.Fatalf("unnamed CSV: %v", err)
	}
	if cols.Len() != 1 || len(cols.Names) != 0 {
		t.Fatalf("unnamed CSV: Len=%d Names=%v", cols.Len(), cols.Names)
	}
}
