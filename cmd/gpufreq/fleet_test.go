package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
)

// fakeControl serves canned fleet control-plane endpoints for CLI tests.
func fakeControl(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/nodes", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(fleet.NodesResponse{Nodes: []fleet.NodeInfo{
			{
				Node: "n1", Device: "titanx", Addr: "http://10.0.0.12:8080",
				Version: "v0003", Hash: "02ec002556ad966c", Synced: true,
				LastSeen: time.Now().UTC(), Pushes: 2,
			},
			{
				Node: "n2", Device: "p100", Addr: "http://10.0.0.13:8080",
				Synced: false, Pushes: 3, PushErrors: 1, LastError: "connection refused",
			},
		}})
	})
	mux.HandleFunc("/fleet/push", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		json.NewEncoder(w).Encode(fleet.PushReport{Targets: 2, Pushed: 2})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "no such endpoint"})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestCmdFleetNodes(t *testing.T) {
	ts := fakeControl(t)
	if err := cmdFleet([]string{"nodes", "-addr", ts.URL}); err != nil {
		t.Fatalf("fleet nodes: %v", err)
	}
}

func TestCmdFleetPush(t *testing.T) {
	ts := fakeControl(t)
	if err := cmdFleet([]string{"push", "-addr", ts.URL}); err != nil {
		t.Fatalf("fleet push: %v", err)
	}
}

func TestCmdFleetPushSurfacesFailures(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/push", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(fleet.PushReport{
			Targets: 2, Pushed: 1, Errors: []string{"n2: connection refused"},
		})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	err := cmdFleet([]string{"push", "-addr", ts.URL})
	if err == nil || !strings.Contains(err.Error(), "1 push(es) failed") {
		t.Fatalf("err = %v, want the failed pushes surfaced", err)
	}
}

func TestCmdFleetUsage(t *testing.T) {
	if err := cmdFleet(nil); err == nil {
		t.Error("fleet without a subcommand should fail")
	}
	if err := cmdFleet([]string{"bogus"}); err == nil || !strings.Contains(err.Error(), "unknown fleet subcommand") {
		t.Errorf("err = %v, want an unknown-subcommand failure", err)
	}
}
