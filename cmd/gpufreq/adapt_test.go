package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeDaemon serves canned gpufreqd adaptation endpoints for CLI tests.
func fakeDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/observe", func(w http.ResponseWriter, r *http.Request) {
		var req map[string]any
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if req["source"] == "" || req["speedup"] == nil {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(map[string]string{"error": "bad observation"})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"model_version": "v0002",
			"results": []map[string]any{{
				"ingest": map[string]any{
					"stored": true,
					"drift":  map[string]any{"drift": false, "reason": "within threshold"},
				},
			}},
			"store": map[string]int{"count": 1, "capacity": 1024, "total": 1},
		})
	})
	mux.HandleFunc("/adapt/status", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"auto":          true,
			"model_version": "v0002",
			"store":         map[string]int{"count": 1, "capacity": 1024},
			"drift":         map[string]any{"drift": false, "reason": "within threshold"},
			"retrain":       map[string]any{"retrains": 1, "activated": 1, "last_outcome": "activated", "last_version": "v0002"},
		})
	})
	mux.HandleFunc("/adapt/retrain", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"status": "retraining", "poll": "/adapt/status"})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "no such endpoint"})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func kernelFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "k.cl")
	src := `__kernel void k(__global float* o, float x) { o[0] = x * x; }`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdObserve(t *testing.T) {
	ts := fakeDaemon(t)
	err := cmdObserve([]string{
		"-addr", ts.URL, "-mem", "3505", "-core", "1000",
		"-speedup", "0.97", "-energy", "0.93", kernelFile(t),
	})
	if err != nil {
		t.Fatalf("cmdObserve: %v", err)
	}
	if err := cmdObserve([]string{"-addr", ts.URL}); err == nil {
		t.Error("cmdObserve without a kernel file should fail")
	}
}

func TestCmdAdapt(t *testing.T) {
	ts := fakeDaemon(t)
	if err := cmdAdapt([]string{"-addr", ts.URL}); err != nil {
		t.Fatalf("cmdAdapt status: %v", err)
	}
	if err := cmdAdapt([]string{"-addr", ts.URL, "-retrain"}); err != nil {
		t.Fatalf("cmdAdapt -retrain: %v", err)
	}
}

func TestCmdAdaptSurfacesDaemonError(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/adapt/retrain", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(map[string]string{"error": "a retrain is already in progress"})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	err := cmdAdapt([]string{"-addr", ts.URL, "-retrain"})
	if err == nil || !strings.Contains(err.Error(), "already in progress") {
		t.Fatalf("err = %v, want the daemon's structured error surfaced", err)
	}
}
