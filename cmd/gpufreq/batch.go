package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"

	"repro/internal/colproto"
	"repro/internal/features"
)

// binaryContentType is the Content-Type selecting the binary framing of
// gpufreqd's /predict/batch endpoint (mirrored from cmd/gpufreqd).
const binaryContentType = "application/x-gpufreq-columns"

// readColumnsFile loads a columnar batch request from disk. A .json file
// holds the colproto.Columns document directly; anything else is parsed as
// CSV with a header row naming the static features in features.Names
// order, optionally preceded by a "name" column labeling each kernel.
func readColumnsFile(path string) (*colproto.Columns, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cols := &colproto.Columns{}
	if strings.HasSuffix(path, ".json") {
		if err := json.Unmarshal(data, cols); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		if err := cols.Validate(); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		return cols, nil
	}
	recs, err := csv.NewReader(bytes.NewReader(data)).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(recs) < 2 {
		return nil, fmt.Errorf("%s: want a header row and at least one kernel row", path)
	}
	header := recs[0]
	named := len(header) > 0 && strings.EqualFold(strings.TrimSpace(header[0]), "name")
	first := 0
	if named {
		first = 1
	}
	if len(header)-first != features.StaticDim {
		return nil, fmt.Errorf("%s: header has %d feature columns, want %d (%s)",
			path, len(header)-first, features.StaticDim, strings.Join(features.Names, ","))
	}
	for i, want := range features.Names {
		if got := strings.TrimSpace(header[first+i]); got != want {
			return nil, fmt.Errorf("%s: header column %d is %q, want %q (features must appear in canonical order)",
				path, first+i+1, got, want)
		}
	}
	for rowNo, rec := range recs[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("%s: row %d has %d fields, header has %d",
				path, rowNo+2, len(rec), len(header))
		}
		name := ""
		if named {
			name = strings.TrimSpace(rec[0])
		}
		var st features.Static
		for i := 0; i < features.StaticDim; i++ {
			v, err := strconv.ParseFloat(strings.TrimSpace(rec[first+i]), 64)
			if err != nil {
				return nil, fmt.Errorf("%s: row %d, column %q: %v",
					path, rowNo+2, features.Names[i], err)
			}
			st[i] = v
		}
		cols.Append(name, st)
	}
	if !named {
		cols.Names = nil
	}
	if err := cols.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return cols, nil
}

// batchPredict sends a columnar batch request to a running gpufreqd and
// prints every kernel's predicted Pareto set. With binary set, both the
// request and the response use the length-prefixed binary framing.
func batchPredict(addr, path string, binary bool) error {
	cols, err := readColumnsFile(path)
	if err != nil {
		return err
	}
	var fronts colproto.Fronts
	if binary {
		frame := cols.AppendBinary(nil)
		resp, err := http.Post(strings.TrimRight(addr, "/")+"/predict/batch",
			binaryContentType, bytes.NewReader(frame))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			// Errors always come back as JSON, whatever the request framing.
			return decodeDaemon(resp, nil)
		}
		raw, err := readAll(resp)
		if err != nil {
			return err
		}
		if err := fronts.ParseBinary(raw); err != nil {
			return err
		}
	} else {
		if err := postJSON(addr, "/predict/batch", cols, &fronts); err != nil {
			return err
		}
	}
	fmt.Printf("model %s: %d kernels\n", fronts.Version, fronts.Count)
	for k := 0; k < fronts.Count; k++ {
		label := fmt.Sprintf("kernel %d", k)
		if k < len(cols.Names) && cols.Names[k] != "" {
			label = cols.Names[k]
		}
		fmt.Printf("\n%s:\n", label)
		fmt.Printf("%-12s %10s %12s\n", "mem@core", "speedup", "norm.energy")
		for _, p := range fronts.Kernel(k) {
			tag := ""
			if p.MemLHeuristic {
				tag = "  [mem-L heuristic]"
			}
			fmt.Printf("%-12s %10.3f %12.3f%s\n", p.Config, p.Speedup, p.NormEnergy, tag)
		}
	}
	return nil
}

// readAll drains a response body.
func readAll(resp *http.Response) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
