package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/fleet"
)

// cmdFleet dispatches the fleet subcommands against a running gpufreqd
// control plane: `gpufreq fleet nodes` prints the node directory with
// sync verdicts, `gpufreq fleet push` re-fans-out every device's active
// snapshot to its stale nodes.
func cmdFleet(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: gpufreq fleet <nodes|push> [-addr URL]")
	}
	switch args[0] {
	case "nodes":
		return cmdFleetNodes(args[1:])
	case "push":
		return cmdFleetPush(args[1:])
	default:
		return fmt.Errorf("unknown fleet subcommand %q; valid: nodes, push", args[0])
	}
}

// cmdFleetNodes prints the control plane's node directory.
func cmdFleetNodes(args []string) error {
	fs := flag.NewFlagSet("fleet nodes", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "control plane base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var resp fleet.NodesResponse
	if err := getJSON(*addr, "/fleet/nodes", &resp); err != nil {
		return err
	}
	if len(resp.Nodes) == 0 {
		fmt.Println("no registered nodes")
		return nil
	}
	fmt.Printf("%-12s %-8s %-8s %-6s %-9s %10s  %-20s %s\n",
		"node", "device", "version", "synced", "breaker", "hash", "last seen", "addr")
	for _, n := range resp.Nodes {
		last := ""
		if !n.LastSeen.IsZero() {
			last = n.LastSeen.Format("2006-01-02 15:04:05")
		}
		fmt.Printf("%-12s %-8s %-8s %-6v %-9s %10.8s…  %-20s %s\n",
			n.Node, n.Device, orNone(n.Version), n.Synced, n.Breaker, n.Hash, last, n.Addr)
		if n.PushErrors > 0 {
			fmt.Printf("%-12s   %d/%d pushes failed; last error: %s\n",
				"", n.PushErrors, n.Pushes, n.LastError)
		}
	}
	return nil
}

// cmdFleetPush triggers a fleet-wide re-fan-out and prints the round.
func cmdFleetPush(args []string) error {
	fs := flag.NewFlagSet("fleet push", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "control plane base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	start := time.Now()
	var report fleet.PushReport
	if err := postJSON(*addr, "/fleet/push", struct{}{}, &report); err != nil {
		return err
	}
	fmt.Printf("pushed to %d/%d stale nodes in %s\n",
		report.Pushed, report.Targets, time.Since(start).Round(time.Millisecond))
	if report.Skipped > 0 {
		fmt.Printf("  %d node(s) skipped: push circuit breaker open (see fleet nodes)\n", report.Skipped)
	}
	for _, e := range report.Errors {
		fmt.Fprintf(os.Stderr, "  push error: %s\n", e)
	}
	if len(report.Errors) > 0 {
		return fmt.Errorf("%d push(es) failed; stale nodes converge on their next heartbeat", len(report.Errors))
	}
	return nil
}
