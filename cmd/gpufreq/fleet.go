package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/fleet"
)

// cmdFleet dispatches the fleet subcommands against a running gpufreqd
// control plane: `gpufreq fleet nodes` prints the node directory with
// sync verdicts, `gpufreq fleet push` re-fans-out every device's active
// snapshot to its stale nodes, `gpufreq fleet budget` inspects or sets
// the fleet energy budget.
func cmdFleet(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: gpufreq fleet <nodes|push|budget> [-addr URL]")
	}
	switch args[0] {
	case "nodes":
		return cmdFleetNodes(args[1:])
	case "push":
		return cmdFleetPush(args[1:])
	case "budget":
		return cmdFleetBudget(args[1:])
	default:
		return fmt.Errorf("unknown fleet subcommand %q; valid: nodes, push, budget", args[0])
	}
}

// cmdFleetNodes prints the control plane's node directory.
func cmdFleetNodes(args []string) error {
	fs := flag.NewFlagSet("fleet nodes", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "control plane base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var resp fleet.NodesResponse
	if err := getJSON(*addr, "/fleet/nodes", &resp); err != nil {
		return err
	}
	if len(resp.Nodes) == 0 {
		fmt.Println("no registered nodes")
		return nil
	}
	fmt.Printf("%-12s %-8s %-8s %-6s %-9s %10s  %-20s %s\n",
		"node", "device", "version", "synced", "breaker", "hash", "last seen", "addr")
	for _, n := range resp.Nodes {
		last := ""
		if !n.LastSeen.IsZero() {
			last = n.LastSeen.Format("2006-01-02 15:04:05")
		}
		fmt.Printf("%-12s %-8s %-8s %-6v %-9s %10.8s…  %-20s %s\n",
			n.Node, n.Device, orNone(n.Version), n.Synced, n.Breaker, n.Hash, last, n.Addr)
		if n.PushErrors > 0 {
			fmt.Printf("%-12s   %d/%d pushes failed; last error: %s\n",
				"", n.PushErrors, n.Pushes, n.LastError)
		}
	}
	return nil
}

// cmdFleetPush triggers a fleet-wide re-fan-out and prints the round.
func cmdFleetPush(args []string) error {
	fs := flag.NewFlagSet("fleet push", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "control plane base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	start := time.Now()
	var report fleet.PushReport
	if err := postJSON(*addr, "/fleet/push", struct{}{}, &report); err != nil {
		return err
	}
	fmt.Printf("pushed to %d/%d stale nodes in %s\n",
		report.Pushed, report.Targets, time.Since(start).Round(time.Millisecond))
	if report.Skipped > 0 {
		fmt.Printf("  %d node(s) skipped: push circuit breaker open (see fleet nodes)\n", report.Skipped)
	}
	for _, e := range report.Errors {
		fmt.Fprintf(os.Stderr, "  push error: %s\n", e)
	}
	if len(report.Errors) > 0 {
		return fmt.Errorf("%d push(es) failed; stale nodes converge on their next heartbeat", len(report.Errors))
	}
	return nil
}

// cmdFleetBudget inspects or sets the fleet energy budget. With no flags
// it prints the current budget, plan, and per-node delivery state; -set
// installs a new budget total (with -unit) and -replan re-solves under
// the existing one. Both mutations print the resulting status.
func cmdFleetBudget(args []string) error {
	fs := flag.NewFlagSet("fleet budget", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "control plane base URL")
	set := fs.String("set", "", "install this budget total (normalized; one default-clock node = 1.0)")
	unit := fs.String("unit", "", "budget unit for -set: power or energy (default power)")
	replan := fs.Bool("replan", false, "re-solve the allocation under the existing budget")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var status fleet.BudgetStatusResponse
	switch {
	case *set != "":
		total, err := strconv.ParseFloat(*set, 64)
		if err != nil {
			return fmt.Errorf("-set %q: not a number", *set)
		}
		req := fleet.BudgetRequest{Total: &total, Unit: *unit}
		if err := postJSON(*addr, "/fleet/budget", req, &status); err != nil {
			return err
		}
	case *replan:
		if err := postJSON(*addr, "/fleet/budget", fleet.BudgetRequest{Replan: true}, &status); err != nil {
			return err
		}
	default:
		if *unit != "" {
			return fmt.Errorf("-unit only applies with -set")
		}
		if err := getJSON(*addr, "/fleet/budget", &status); err != nil {
			return err
		}
	}
	printBudgetStatus(status)
	return nil
}

// printBudgetStatus renders a BudgetStatusResponse for the terminal.
func printBudgetStatus(status fleet.BudgetStatusResponse) {
	if !status.Set {
		fmt.Println("no fleet budget set (gpufreq fleet budget -set TOTAL [-unit power|energy])")
		return
	}
	fmt.Printf("budget: %.4g %s (one default-clock node = 1.0)\n",
		status.Budget.Total, status.Budget.Unit)
	if p := status.Plan; p != nil {
		verdict := "feasible"
		if !p.Feasible {
			verdict = "INFEASIBLE (floor allocated; raise the budget)"
		}
		fmt.Printf("plan:   %s via %s, replan #%d at %s\n",
			verdict, p.Strategy, status.Replans, status.PlannedAt.Format("2006-01-02 15:04:05"))
		fmt.Printf("        fleet speedup %.4f (default clocks %.4f), cost %.4f (floor %.4f)\n",
			p.FleetSpeedup, p.DefaultSpeedup, p.Cost, p.FloorCost)
		fmt.Printf("        fleet power %.4f, fleet energy %.4f\n", p.FleetPower, p.FleetEnergy)
	} else {
		fmt.Println("plan:   none yet (no registered nodes with fronts?)")
	}
	if status.Stale {
		fmt.Printf("drift:  STALE — max mix shift %.3f ≥ threshold %.3f; next observation batch replans\n",
			status.MaxMixShift, status.MixShiftThreshold)
	} else if status.MixShiftThreshold >= 0 {
		fmt.Printf("drift:  max mix shift %.3f (replan threshold %.3f)\n",
			status.MaxMixShift, status.MixShiftThreshold)
	}
	if len(status.Nodes) > 0 {
		fmt.Printf("%-12s %-8s %7s %7s %-6s %10s  %s\n",
			"node", "device", "kernels", "entries", "synced", "hash", "mix")
		for _, n := range status.Nodes {
			mix := "observed"
			if n.UniformMix {
				mix = "uniform"
			}
			fmt.Printf("%-12s %-8s %7d %7d %-6v %10.8s…  %s (shift %.3f)\n",
				n.Node, n.Device, n.Kernels, n.Entries, n.Synced, orNone(n.Hash), mix, n.MixShift)
		}
	}
	for _, note := range status.Notes {
		fmt.Printf("note:   %s\n", note)
	}
	if lp := status.LastPush; lp != nil {
		fmt.Printf("push:   %d/%d tables delivered", lp.Pushed, lp.Targets)
		if lp.Skipped > 0 {
			fmt.Printf(", %d skipped (breaker open)", lp.Skipped)
		}
		fmt.Println()
		for _, e := range lp.Errors {
			fmt.Fprintf(os.Stderr, "  push error: %s\n", e)
		}
	}
}
