package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/measure"
	"repro/internal/nvml"
	"repro/internal/registry"
)

// newEngineOn builds a small-training engine for the named device.
func newEngineOn(t *testing.T, name string) *engine.Engine {
	t.Helper()
	d, err := device(name)
	if err != nil {
		t.Fatal(err)
	}
	return engine.New(measure.NewHarness(nvml.NewDevice(d)), engine.Options{
		Workers: 4,
		Core:    core.Options{SettingsPerKernel: 4},
	})
}

func contextForTest() context.Context { return context.Background() }

func TestDeviceSelection(t *testing.T) {
	for _, name := range []string{"", "titanx", "p100"} {
		if _, err := device(name); err != nil {
			t.Errorf("device(%q): %v", name, err)
		}
	}
	if _, err := device("rtx5090"); err == nil {
		t.Error("device(rtx5090) should fail")
	}
}

func TestCmdClocks(t *testing.T) {
	if err := cmdClocks([]string{"-device", "titanx"}); err != nil {
		t.Errorf("cmdClocks titanx: %v", err)
	}
	if err := cmdClocks([]string{"-device", "p100"}); err != nil {
		t.Errorf("cmdClocks p100: %v", err)
	}
	if err := cmdClocks([]string{"-device", "bogus"}); err == nil {
		t.Error("cmdClocks bogus should fail")
	}
}

func TestCmdFeatures(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "k.cl")
	src := `__kernel void k(__global float* o, float x) { o[0] = x * x; }`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdFeatures([]string{path}); err != nil {
		t.Errorf("cmdFeatures: %v", err)
	}
	if err := cmdFeatures([]string{path, "-kernel", "k"}); err == nil {
		// flag package requires flags before positional args in our setup;
		// the supported order is positional last.
		t.Log("flag-after-positional accepted (ok)")
	}
	if err := cmdFeatures([]string{"-kernel", "k", path}); err != nil {
		t.Errorf("cmdFeatures named: %v", err)
	}
	if err := cmdFeatures([]string{"-kernel", "missing", path}); err == nil {
		t.Error("cmdFeatures with missing kernel name should fail")
	}
	if err := cmdFeatures([]string{filepath.Join(dir, "absent.cl")}); err == nil {
		t.Error("cmdFeatures with absent file should fail")
	}
	if err := cmdFeatures(nil); err == nil {
		t.Error("cmdFeatures without args should fail")
	}
}

func TestCmdSelectList(t *testing.T) {
	if err := cmdSelect([]string{"-list"}); err != nil {
		t.Errorf("select -list: %v", err)
	}
}

func TestCmdSelectValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "k.cl")
	src := `__kernel void k(__global float* o, float x) { o[0] = x * x; }`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdSelect(nil); err == nil {
		t.Error("select without args should fail")
	}
	if err := cmdSelect([]string{"-policy", "max-vibes", path}); err == nil {
		t.Error("select with unknown policy should fail")
	}
	if err := cmdSelect([]string{"-device", "rtx5090", path}); err == nil {
		t.Error("select with unknown device should fail")
	}
	if err := cmdSelect([]string{"-model", filepath.Join(dir, "absent.json"), path}); err == nil {
		t.Error("select with absent model file should fail")
	}
}

// TestCmdSelectEndToEnd trains a tiny model once, persists it, then runs
// select against the file for every built-in policy on both devices.
func TestCmdSelectEndToEnd(t *testing.T) {
	dir := t.TempDir()
	kpath := filepath.Join(dir, "k.cl")
	src := `__kernel void k(__global const float* a, __global float* o, int n) {
		int i = get_global_id(0);
		if (i < n) o[i] = a[i] * 2.0f;
	}`
	if err := os.WriteFile(kpath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, dev := range []string{"titanx", "p100"} {
		mpath := filepath.Join(dir, dev+".json")
		eng := newEngineOn(t, dev)
		if _, err := eng.TrainDefault(contextForTest()); err != nil {
			t.Fatal(err)
		}
		models := eng.Models()
		if err := models.SaveFile(mpath); err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"min-energy", "max-perf", "edp", "ed2p", "balanced"} {
			args := []string{"-policy", name, "-device", dev, "-model", mpath, kpath}
			if err := cmdSelect(args); err != nil {
				t.Errorf("select %s on %s: %v", name, dev, err)
			}
		}
	}
	// The no-model branch trains in-process before deciding.
	if err := cmdSelect([]string{"-settings", "4", "-workers", "4", kpath}); err != nil {
		t.Errorf("select with in-process training: %v", err)
	}
}

// TestCmdSaveLoadModels exercises the registry subcommands end to end:
// save publishes and activates a snapshot, models lists it, load verifies
// and exports it, and predict/select serve from the same directory.
func TestCmdSaveLoadModels(t *testing.T) {
	dir := t.TempDir()
	modelDir := filepath.Join(dir, "models")
	kpath := filepath.Join(dir, "k.cl")
	src := `__kernel void k(__global const float* a, __global float* o, int n) {
		int i = get_global_id(0);
		if (i < n) o[i] = a[i] * 2.0f;
	}`
	if err := os.WriteFile(kpath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := cmdSave([]string{"-model-dir", modelDir, "-settings", "4", "-workers", "4"}); err != nil {
		t.Fatalf("save: %v", err)
	}
	store, err := registry.Open(modelDir)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := store.Active("titanx"); !ok || v != "v0001" {
		t.Fatalf("save did not activate: %q, %v", v, ok)
	}

	if err := cmdModels([]string{"-model-dir", modelDir}); err != nil {
		t.Fatalf("models: %v", err)
	}
	if err := cmdModels([]string{"-model-dir", modelDir, "-device", "p100"}); err != nil {
		t.Fatalf("models (empty device): %v", err)
	}

	flat := filepath.Join(dir, "exported.json")
	if err := cmdLoad([]string{"-model-dir", modelDir, "-out", flat}); err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := core.LoadFile(flat); err != nil {
		t.Fatalf("exported flat file unreadable: %v", err)
	}
	if err := cmdLoad([]string{"-model-dir", modelDir, "-version", "v0042"}); err == nil {
		t.Fatal("load of a missing version should fail")
	}

	if err := cmdPredict([]string{"-model-dir", modelDir, kpath}); err != nil {
		t.Fatalf("predict -model-dir: %v", err)
	}
	if err := cmdSelect([]string{"-model-dir", modelDir, "-policy", "edp", kpath}); err != nil {
		t.Fatalf("select -model-dir: %v", err)
	}

	// A second save mints v0002 and becomes active.
	if err := cmdSave([]string{"-model-dir", modelDir, "-settings", "4", "-workers", "4"}); err != nil {
		t.Fatalf("second save: %v", err)
	}
	if v, _ := store.Active("titanx"); v != "v0002" {
		t.Fatalf("second save active = %q, want v0002", v)
	}
	if prev, ok := store.Previous("titanx"); !ok || prev != "v0001" {
		t.Fatalf("previous = %q, %v; want v0001", prev, ok)
	}
}

func TestCmdCharacterizeValidation(t *testing.T) {
	if err := cmdCharacterize([]string{"NotABenchmark"}); err == nil {
		t.Error("characterize of unknown benchmark should fail")
	}
	if err := cmdCharacterize(nil); err == nil {
		t.Error("characterize without args should fail")
	}
}
