package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDeviceSelection(t *testing.T) {
	for _, name := range []string{"", "titanx", "p100"} {
		if _, err := device(name); err != nil {
			t.Errorf("device(%q): %v", name, err)
		}
	}
	if _, err := device("rtx5090"); err == nil {
		t.Error("device(rtx5090) should fail")
	}
}

func TestCmdClocks(t *testing.T) {
	if err := cmdClocks([]string{"-device", "titanx"}); err != nil {
		t.Errorf("cmdClocks titanx: %v", err)
	}
	if err := cmdClocks([]string{"-device", "p100"}); err != nil {
		t.Errorf("cmdClocks p100: %v", err)
	}
	if err := cmdClocks([]string{"-device", "bogus"}); err == nil {
		t.Error("cmdClocks bogus should fail")
	}
}

func TestCmdFeatures(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "k.cl")
	src := `__kernel void k(__global float* o, float x) { o[0] = x * x; }`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdFeatures([]string{path}); err != nil {
		t.Errorf("cmdFeatures: %v", err)
	}
	if err := cmdFeatures([]string{path, "-kernel", "k"}); err == nil {
		// flag package requires flags before positional args in our setup;
		// the supported order is positional last.
		t.Log("flag-after-positional accepted (ok)")
	}
	if err := cmdFeatures([]string{"-kernel", "k", path}); err != nil {
		t.Errorf("cmdFeatures named: %v", err)
	}
	if err := cmdFeatures([]string{"-kernel", "missing", path}); err == nil {
		t.Error("cmdFeatures with missing kernel name should fail")
	}
	if err := cmdFeatures([]string{filepath.Join(dir, "absent.cl")}); err == nil {
		t.Error("cmdFeatures with absent file should fail")
	}
	if err := cmdFeatures(nil); err == nil {
		t.Error("cmdFeatures without args should fail")
	}
}

func TestCmdCharacterizeValidation(t *testing.T) {
	if err := cmdCharacterize([]string{"NotABenchmark"}); err == nil {
		t.Error("characterize of unknown benchmark should fail")
	}
	if err := cmdCharacterize(nil); err == nil {
		t.Error("characterize without args should fail")
	}
}
