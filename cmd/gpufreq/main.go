// Command gpufreq is the user-facing CLI of the frequency-scaling
// prediction framework: it extracts static features from OpenCL kernels,
// inspects the simulated devices' clock tables, trains the speedup/energy
// models on the synthetic micro-benchmarks, manages the versioned model
// registry, and predicts Pareto-optimal frequency configurations for new
// kernels without executing them.
//
// Usage (flags come before the positional argument):
//
//	gpufreq clocks [-device titanx|p100]
//	gpufreq features [-kernel name] <kernel.cl>
//	gpufreq train [-out models.json] [-settings 40] [-workers 0]
//	gpufreq save [-model-dir DIR] [-device titanx|p100] [-settings 40] [-workers 0]
//	gpufreq load [-model-dir DIR] [-device titanx|p100] [-version vNNNN] [-out models.json]
//	gpufreq models [-model-dir DIR] [-device titanx|p100]
//	gpufreq predict [-model models.json | -model-dir DIR] [-kernel name] [-workers 0] <kernel.cl>
//	gpufreq predict -batch columns.csv [-addr http://localhost:8080] [-binary]
//	gpufreq select [-policy min-energy] [-max-slowdown 0.1] [-energy-budget 1.0]
//	               [-device titanx|p100] [-model models.json | -model-dir DIR]
//	               [-kernel name] <kernel.cl>
//	gpufreq select -list
//	gpufreq characterize <benchmark>
//	gpufreq observe [-addr http://localhost:8080] -mem 3505 -core 1000
//	                -speedup 0.97 -energy 0.93 [-kernel name] <kernel.cl>
//	gpufreq adapt [-addr http://localhost:8080] [-retrain]
//	gpufreq fleet nodes [-addr http://localhost:8080]
//	gpufreq fleet push [-addr http://localhost:8080]
//	gpufreq fleet budget [-addr http://localhost:8080] [-set 3.5 [-unit power|energy]] [-replan]
//
// fleet talks to a gpufreqd running as the fleet control plane: nodes
// prints the registered node directory with per-node sync verdicts, push
// re-fans-out every device's active snapshot to its stale nodes, and
// budget inspects or sets the fleet energy budget whose per-node decision
// tables the control plane allocates over each node's Pareto fronts.
//
// observe and adapt talk to a running gpufreqd: observe reports a measured
// (kernel, configuration, speedup/energy) sample into the daemon's
// adaptation loop, and adapt prints the loop's status (drift verdict,
// observation store, retrain history) or, with -retrain, forces a
// holdout-guarded retrain.
//
// Training, prediction and policy selection run through the concurrent
// engine (internal/engine) and the policy governor (internal/policy);
// -workers sizes the engine pool (0 = NumCPU). save/load/models operate on
// the same versioned snapshot registry (internal/registry) that
// cmd/gpufreqd serves from, so a model trained and saved here can be
// activated on a running daemon and vice versa. For the long-running HTTP
// service over the same engine and registry, see cmd/gpufreqd.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/adapt"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/features"
	"repro/internal/freq"
	"repro/internal/gpu"
	"repro/internal/measure"
	"repro/internal/nvml"
	"repro/internal/policy"
	"repro/internal/registry"
	"repro/internal/resilience"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "clocks":
		err = cmdClocks(os.Args[2:])
	case "features":
		err = cmdFeatures(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "save":
		err = cmdSave(os.Args[2:])
	case "load":
		err = cmdLoad(os.Args[2:])
	case "models":
		err = cmdModels(os.Args[2:])
	case "predict":
		err = cmdPredict(os.Args[2:])
	case "select":
		err = cmdSelect(os.Args[2:])
	case "characterize":
		err = cmdCharacterize(os.Args[2:])
	case "observe":
		err = cmdObserve(os.Args[2:])
	case "adapt":
		err = cmdAdapt(os.Args[2:])
	case "fleet":
		err = cmdFleet(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "gpufreq: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpufreq:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `gpufreq — predictable GPU frequency scaling for energy and performance

Commands:
  clocks        print the supported memory/core clock combinations
  features      extract the static code features of an OpenCL kernel
  train         train the speedup and energy models on the 106 micro-benchmarks
  save          train and publish a versioned snapshot into a model registry
  load          load (and verify) a snapshot from a model registry
  models        list the snapshots of a model registry
  predict       predict the Pareto-optimal frequency settings of a kernel
                (-batch FILE sends a columnar batch to a running gpufreqd)
  select        resolve a named policy to one chosen frequency configuration
  characterize  measure a built-in test benchmark across all configurations
  observe       report a measured sample to a running gpufreqd's adaptation loop
  adapt         show (or trigger) a running gpufreqd's adaptation loop
  fleet         inspect or steer a control plane's fleet (nodes, push, budget)

Flags come before the positional argument, e.g.:
  gpufreq predict -model models.json kernel.cl
`)
}

func device(name string) (*gpu.Device, error) { return gpu.ByName(name) }

func cmdClocks(args []string) error {
	fs := flag.NewFlagSet("clocks", flag.ExitOnError)
	dev := fs.String("device", "titanx", "device model: titanx or p100")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := device(*dev)
	if err != nil {
		return err
	}
	nv := nvml.NewDevice(d)
	fmt.Printf("%s\n", nv.Name())
	fmt.Printf("default configuration: %v\n", d.Ladder.Default())
	for _, m := range nv.DeviceGetSupportedMemoryClocks() {
		claimed, err := nv.DeviceGetSupportedGraphicsClocks(m)
		if err != nil {
			return err
		}
		actual := d.Ladder.CoreClocks(m)
		fmt.Printf("mem %4d MHz: %2d core clocks (%d claimed): %d..%d MHz\n",
			m, len(actual), len(claimed), actual[0], actual[len(actual)-1])
	}
	return nil
}

func cmdFeatures(args []string) error {
	fs := flag.NewFlagSet("features", flag.ExitOnError)
	kernel := fs.String("kernel", "", "kernel name (default: first kernel)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: gpufreq features [-kernel name] <kernel.cl>")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	st, err := features.ExtractSource(string(src), *kernel)
	if err != nil {
		return err
	}
	for i, name := range features.Names {
		fmt.Printf("%-12s %.4f\n", name, st[i])
	}
	return nil
}

// newEngine builds the concurrent engine every train/predict path uses.
func newEngine(settings, workers int) *engine.Engine {
	return engine.NewDefault(engine.Options{
		Workers: workers,
		Core:    core.Options{SettingsPerKernel: settings},
	})
}

// interruptContext is cancelled on Ctrl-C, aborting in-flight training.
func interruptContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt)
}

// trainEngine builds the full synthetic training set, fits both models,
// and installs them on the engine, returning the samples alongside the
// models so callers can record training residuals.
func trainEngine(ctx context.Context, eng *engine.Engine) (*core.Models, []core.Sample, error) {
	kernels := engine.TrainingKernels()
	samples, err := eng.BuildTrainingSet(ctx, kernels)
	if err != nil {
		return nil, nil, err
	}
	models, err := eng.Fit(ctx, samples)
	if err != nil {
		return nil, nil, err
	}
	eng.SetModels(models)
	fmt.Fprintf(os.Stderr, "trained on %d samples (%d micro-benchmarks, %d workers)\n",
		len(samples), len(kernels), eng.Options().Workers)
	return models, samples, nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	out := fs.String("out", "models.json", "output path for the trained models")
	settings := fs.Int("settings", 40, "sampled frequency settings per micro-benchmark")
	workers := fs.Int("workers", 0, "training worker pool size (0 = NumCPU)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := interruptContext()
	defer stop()
	models, _, err := trainEngine(ctx, newEngine(*settings, *workers))
	if err != nil {
		return err
	}
	if err := models.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("models written to %s (speedup: %d SVs, energy: %d SVs)\n",
		*out, models.Speedup.NumSV(), models.Energy.NumSV())
	return nil
}

// cmdSave trains on the chosen device and publishes the result as a
// versioned snapshot in the registry — the offline producer for the
// model directory cmd/gpufreqd serves from.
func cmdSave(args []string) error {
	fs := flag.NewFlagSet("save", flag.ExitOnError)
	modelDir := fs.String("model-dir", "models", "model registry directory")
	dev := fs.String("device", "titanx", "device model: titanx or p100")
	settings := fs.Int("settings", 40, "sampled frequency settings per micro-benchmark")
	workers := fs.Int("workers", 0, "training worker pool size (0 = NumCPU)")
	activate := fs.Bool("activate", true, "activate the snapshot after publishing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := device(*dev)
	if err != nil {
		return err
	}
	store, err := registry.Open(*modelDir)
	if err != nil {
		return err
	}
	eng := engine.New(measure.NewHarness(nvml.NewDevice(d)), engine.Options{
		Workers: *workers,
		Core:    core.Options{SettingsPerKernel: *settings},
	})
	ctx, stop := interruptContext()
	defer stop()
	start := time.Now()
	models, samples, err := trainEngine(ctx, eng)
	if err != nil {
		return err
	}
	tr := registry.Training{
		SettingsPerKernel: *settings,
		Kernels:           len(engine.TrainingKernels()),
		Samples:           len(samples),
		DurationMS:        float64(time.Since(start).Microseconds()) / 1000,
	}
	// Recorded residuals are the baseline gpufreqd's drift detector
	// compares live observations against.
	tr.SpeedupRMSE, tr.EnergyRMSE = core.ResidualRMSE(models, samples)
	// Publish-time fronts: precompute every training kernel's ladder sweep
	// and Pareto set so a daemon serving this snapshot resolves /select
	// for known kernels without evaluating the SVRs.
	fronts := registry.ComputeFronts(
		engine.NewPredictor(models, eng.Harness().Device().Sim().Ladder, eng.Options()),
		engine.TrainingKernels())
	man, err := store.SaveWithFronts(*dev, "", models, tr, fronts)
	if err != nil {
		return err
	}
	if *activate {
		if err := store.Activate(*dev, man.Version); err != nil {
			return err
		}
	}
	fmt.Printf("published %s/%s to %s (hash %.8s…, %d kernel fronts, activate=%v)\n",
		man.Device, man.Version, *modelDir, man.Hash, fronts.Len(), *activate)
	return nil
}

// cmdLoad loads (and thereby integrity-checks) a snapshot from the
// registry, prints its manifest summary, and optionally exports it as a
// flat models file.
func cmdLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	modelDir := fs.String("model-dir", "models", "model registry directory")
	dev := fs.String("device", "titanx", "device model: titanx or p100")
	version := fs.String("version", "", "snapshot version (default: the active one)")
	out := fs.String("out", "", "export the loaded models to this flat file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := registry.Open(*modelDir)
	if err != nil {
		return err
	}
	models, man, err := store.Load(*dev, *version)
	if err != nil {
		return err
	}
	fmt.Printf("version:  %s/%s\n", man.Device, man.Version)
	fmt.Printf("created:  %s\n", man.CreatedAt.Format(time.RFC3339))
	fmt.Printf("hash:     %s\n", man.Hash)
	fmt.Printf("training: %d kernels × %d settings = %d samples (%.0f ms)\n",
		man.Training.Kernels, man.Training.SettingsPerKernel,
		man.Training.Samples, man.Training.DurationMS)
	fmt.Printf("speedup:  %d SVs, %d iters, converged=%v\n",
		man.SpeedupModel.SupportVectors, man.SpeedupModel.Iters, man.SpeedupModel.Converged)
	fmt.Printf("energy:   %d SVs, %d iters, converged=%v\n",
		man.EnergyModel.SupportVectors, man.EnergyModel.Iters, man.EnergyModel.Converged)
	if *out != "" {
		if err := models.SaveFile(*out); err != nil {
			return err
		}
		fmt.Printf("exported to %s\n", *out)
	}
	return nil
}

// cmdModels lists the registry's snapshots for a device.
func cmdModels(args []string) error {
	fs := flag.NewFlagSet("models", flag.ExitOnError)
	modelDir := fs.String("model-dir", "models", "model registry directory")
	dev := fs.String("device", "titanx", "device model: titanx or p100")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := registry.Open(*modelDir)
	if err != nil {
		return err
	}
	entries, err := store.List(*dev)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		fmt.Printf("no snapshots for %s in %s\n", *dev, *modelDir)
		return nil
	}
	fmt.Printf("%-8s %-3s %-20s %8s %9s %10s  %s\n",
		"version", "", "created", "samples", "settings", "hash", "")
	for _, e := range entries {
		if e.Err != "" {
			fmt.Printf("%-8s %-3s CORRUPT: %s\n", e.Version, "", e.Err)
			continue
		}
		marker := ""
		if e.Active {
			marker = "*"
		}
		fmt.Printf("%-8s %-3s %-20s %8d %9d %10.8s…\n",
			e.Version, marker, e.CreatedAt.Format("2006-01-02 15:04:05"),
			e.Training.Samples, e.Training.SettingsPerKernel, e.Hash)
	}
	if prev, ok := store.Previous(*dev); ok {
		fmt.Printf("rollback target: %s\n", prev)
	}
	return nil
}

// resolveModels installs models into the engine from, in order of
// precedence: a registry's active (or named) snapshot, a flat model file,
// or an in-process training run. It is the shared model-acquisition path
// of predict and select.
func resolveModels(eng *engine.Engine, modelDir, deviceName, version, modelPath string) error {
	switch {
	case modelDir != "":
		store, err := registry.Open(modelDir)
		if err != nil {
			return err
		}
		models, man, err := store.Load(deviceName, version)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loaded %s/%s from %s (hash %.8s…)\n",
			man.Device, man.Version, modelDir, man.Hash)
		eng.SetModels(models)
		return nil
	case modelPath != "":
		models, err := core.LoadFile(modelPath)
		if err != nil {
			return err
		}
		eng.SetModels(models)
		return nil
	default:
		ctx, stop := interruptContext()
		defer stop()
		_, _, err := trainEngine(ctx, eng)
		return err
	}
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	modelPath := fs.String("model", "", "trained models file (default: train in-process)")
	modelDir := fs.String("model-dir", "", "model registry directory (use the active snapshot)")
	version := fs.String("version", "", "registry snapshot version (default: the active one)")
	kernel := fs.String("kernel", "", "kernel name (default: first kernel)")
	settings := fs.Int("settings", 40, "training settings when no model file is given")
	workers := fs.Int("workers", 0, "worker pool size (0 = NumCPU)")
	batchFile := fs.String("batch", "", "columnar batch file (CSV or .json); predict via a running gpufreqd instead of locally")
	addr := fs.String("addr", "http://localhost:8080", "gpufreqd base URL for -batch")
	binary := fs.Bool("binary", false, "use the binary wire framing for -batch")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *batchFile != "" {
		if fs.NArg() != 0 {
			return fmt.Errorf("usage: gpufreq predict -batch FILE [-addr URL] [-binary] (no positional kernel)")
		}
		return batchPredict(*addr, *batchFile, *binary)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: gpufreq predict [-model models.json | -model-dir DIR] <kernel.cl>")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	eng := newEngine(*settings, *workers)
	if err := resolveModels(eng, *modelDir, "titanx", *version, *modelPath); err != nil {
		return err
	}
	pred, err := eng.Predictor()
	if err != nil {
		return err
	}
	set, err := pred.PredictSource(string(src), *kernel)
	if err != nil {
		return err
	}
	fmt.Println("predicted Pareto-optimal frequency configurations:")
	fmt.Printf("%-12s %10s %12s\n", "mem@core", "speedup", "norm.energy")
	for _, p := range set {
		tag := ""
		if p.MemLHeuristic {
			tag = "  [mem-L heuristic]"
		}
		fmt.Printf("%-12s %10.3f %12.3f%s\n", p.Config, p.Speedup, p.NormEnergy, tag)
	}
	return nil
}

func cmdSelect(args []string) error {
	fs := flag.NewFlagSet("select", flag.ExitOnError)
	policyName := fs.String("policy", policy.MinEnergy, "policy: min-energy, max-perf, edp, ed2p or balanced")
	maxSlowdown := fs.Float64("max-slowdown", 0, "min-energy cap: maximum predicted slowdown fraction (0 = default 0.10)")
	energyBudget := fs.Float64("energy-budget", 0, "max-perf cap: maximum predicted normalized energy (0 = default 1.0)")
	includeHeuristic := fs.Bool("include-heuristic", false, "admit the mem-L heuristic configuration as a candidate")
	dev := fs.String("device", "titanx", "device model: titanx or p100")
	modelPath := fs.String("model", "", "trained models file (default: train in-process)")
	modelDir := fs.String("model-dir", "", "model registry directory (use the active snapshot)")
	version := fs.String("version", "", "registry snapshot version (default: the active one)")
	kernel := fs.String("kernel", "", "kernel name (default: first kernel)")
	settings := fs.Int("settings", 40, "training settings when no model file is given")
	workers := fs.Int("workers", 0, "worker pool size (0 = NumCPU)")
	list := fs.Bool("list", false, "list the built-in policies and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, info := range policy.Builtins() {
			fmt.Printf("%-11s %s\n", info.Name, info.Description)
			for param, doc := range info.Params {
				fmt.Printf("              -%s: %s\n", flagFor(param), doc)
			}
		}
		return nil
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: gpufreq select [-policy name] [-model models.json] <kernel.cl>")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	d, err := device(*dev)
	if err != nil {
		return err
	}
	spec := policy.Spec{
		Name:             *policyName,
		MaxSlowdown:      *maxSlowdown,
		EnergyBudget:     *energyBudget,
		IncludeHeuristic: *includeHeuristic,
	}
	if err := spec.Validate(); err != nil {
		return err
	}

	eng := engine.New(measure.NewHarness(nvml.NewDevice(d)), engine.Options{
		Workers: *workers,
		Core:    core.Options{SettingsPerKernel: *settings},
	})
	if err := resolveModels(eng, *modelDir, *dev, *version, *modelPath); err != nil {
		return err
	}
	pred, err := eng.Predictor()
	if err != nil {
		return err
	}
	gov := policy.NewGovernor(pred, 0)
	decision, err := gov.DecideSource(string(src), *kernel, spec)
	if err != nil {
		return err
	}

	resolved := decision.Policy
	fmt.Printf("device:  %s\n", d.Name)
	fmt.Printf("policy:  %s", resolved.Name)
	switch resolved.Name {
	case policy.MinEnergy:
		fmt.Printf(" (speedup >= %.3f)", resolved.SpeedupFloor())
	case policy.MaxPerf:
		fmt.Printf(" (normalized energy <= %.3f)", resolved.EnergyBudget)
	}
	fmt.Printf("\nchosen:  %v  (from %d Pareto candidates)\n", decision.Chosen.Config, decision.Candidates)
	fmt.Printf("  predicted speedup:           %.3f\n", decision.Chosen.Speedup)
	fmt.Printf("  predicted normalized energy: %.3f\n", decision.Chosen.NormEnergy)
	if !decision.Feasible {
		fmt.Printf("  constraint infeasible: %s\n", decision.Fallback)
	}
	return nil
}

// flagFor maps a policy spec JSON parameter to its CLI flag spelling.
func flagFor(param string) string {
	return strings.ReplaceAll(param, "_", "-")
}

// cliRetry retries daemon RPCs with jittered exponential backoff, so a
// one-shot command survives a daemon mid-restart or a briefly saturated
// listener instead of failing on the first refused connection.
var cliRetry = resilience.Retryer{BaseDelay: 200 * time.Millisecond, MaxDelay: 2 * time.Second}

// postJSON posts a JSON document to a gpufreqd endpoint and decodes the
// response, surfacing the daemon's structured {"error": ...} on failure.
// POSTs mutate daemon state (observe ingests, retrain starts work), so only
// transport failures — where no response was produced, hence nothing could
// have been ingested — are retried; any decoded response is final.
func postJSON(base, path string, body, out any) error {
	doc, err := json.Marshal(body)
	if err != nil {
		return err
	}
	url := strings.TrimRight(base, "/") + path
	var resp *http.Response
	err = cliRetry.Do(context.Background(), func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(doc))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err = http.DefaultClient.Do(req)
		return err
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeDaemon(resp, out)
}

// getJSON fetches a gpufreqd endpoint and decodes the response. GETs are
// idempotent, so transient 5xx answers are retried along with transport
// failures.
func getJSON(base, path string, out any) error {
	url := strings.TrimRight(base, "/") + path
	var resp *http.Response
	err := cliRetry.Do(context.Background(), func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		if r.StatusCode >= 500 {
			defer r.Body.Close()
			return decodeDaemon(r, nil)
		}
		resp = r
		return nil
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeDaemon(resp, out)
}

// decodeDaemon decodes a daemon response, turning non-2xx statuses into
// errors carrying the daemon's structured error text.
func decodeDaemon(resp *http.Response, out any) error {
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return fmt.Errorf("daemon: %s (%s)", e.Error, resp.Status)
		}
		return fmt.Errorf("daemon: %s", resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// cmdObserve reports one measured sample to a running gpufreqd's
// adaptation loop (POST /observe) and prints the ingest verdict.
func cmdObserve(args []string) error {
	fs := flag.NewFlagSet("observe", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "gpufreqd base URL")
	kernel := fs.String("kernel", "", "kernel name (default: first kernel)")
	mem := fs.Int("mem", 0, "memory clock the kernel ran at (MHz)")
	coreClk := fs.Int("core", 0, "core clock the kernel ran at (MHz)")
	speedup := fs.Float64("speedup", 0, "measured speedup relative to default clocks")
	energy := fs.Float64("energy", 0, "measured normalized energy relative to default clocks")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: gpufreq observe [-addr URL] -mem MHZ -core MHZ -speedup S -energy E <kernel.cl>")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	var resp struct {
		ModelVersion string `json:"model_version"`
		Results      []struct {
			Ingest *adapt.IngestResult `json:"ingest"`
			Error  string              `json:"error"`
		} `json:"results"`
		Store adapt.StoreStats `json:"store"`
	}
	err = postJSON(*addr, "/observe", map[string]any{
		"source":      string(src),
		"kernel":      *kernel,
		"config":      freq.Config{Mem: freq.MHz(*mem), Core: freq.MHz(*coreClk)},
		"speedup":     *speedup,
		"norm_energy": *energy,
	}, &resp)
	if err != nil {
		return err
	}
	if len(resp.Results) != 1 {
		return fmt.Errorf("daemon returned %d results, want 1", len(resp.Results))
	}
	if resp.Results[0].Error != "" {
		return fmt.Errorf("observation rejected: %s", resp.Results[0].Error)
	}
	in := resp.Results[0].Ingest
	fmt.Printf("observed against %s (store: %d/%d observations)\n",
		resp.ModelVersion, resp.Store.Count, resp.Store.Capacity)
	fmt.Printf("drift:   %v (%s)\n", in.Drift.Drift, in.Drift.Reason)
	if in.RetrainStarted {
		fmt.Printf("retrain: started (%s)\n", in.Reason)
	}
	return nil
}

// cmdAdapt prints a running gpufreqd's adaptation-loop status, or with
// -retrain forces a holdout-guarded retrain.
func cmdAdapt(args []string) error {
	fs := flag.NewFlagSet("adapt", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "gpufreqd base URL")
	retrain := fs.Bool("retrain", false, "force a retrain instead of printing status")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *retrain {
		var acc struct {
			Status string `json:"status"`
			Poll   string `json:"poll"`
		}
		if err := postJSON(*addr, "/adapt/retrain", struct{}{}, &acc); err != nil {
			return err
		}
		fmt.Printf("retrain %s; poll %s (or: gpufreq adapt)\n", acc.Status, acc.Poll)
		return nil
	}
	var st adapt.Status
	if err := getJSON(*addr, "/adapt/status", &st); err != nil {
		return err
	}
	fmt.Printf("auto-retrain: %v\n", st.Auto)
	fmt.Printf("model:        %s\n", orNone(st.ModelVersion))
	fmt.Printf("store:        %d/%d observations (%d total, %d dropped)\n",
		st.Store.Count, st.Store.Capacity, st.Store.Total, st.Store.Dropped)
	d := st.Drift
	fmt.Printf("drift:        %v — %s\n", d.Drift, d.Reason)
	fmt.Printf("  rolling RMSE   speedup %.4f  energy %.4f  (window %d, %d samples)\n",
		d.SpeedupRMSE, d.EnergyRMSE, d.Window, d.Samples)
	fmt.Printf("  baseline       speedup %.4f  energy %.4f\n", d.BaselineSpeedup, d.BaselineEnergy)
	fmt.Printf("  threshold      speedup %.4f  energy %.4f\n", d.ThresholdSpeedup, d.ThresholdEnergy)
	r := st.Retrain
	fmt.Printf("retrains:     %d (%d activated, %d rejected)%s\n",
		r.Retrains, r.Activated, r.Rejected, map[bool]string{true: " — one in progress", false: ""}[r.InProgress])
	if r.LastOutcome != "" {
		fmt.Printf("  last: %s → %s (%s)\n", orNone(r.LastVersion), r.LastOutcome, r.LastReason)
		if r.LastHoldout != nil {
			fmt.Printf("  holdout: candidate %.4f vs active %.4f over %d samples (passed=%v)\n",
				r.LastHoldout.CandidateRMSE, r.LastHoldout.ActiveRMSE,
				r.LastHoldout.Samples, r.LastHoldout.Passed)
		}
		if ws := r.LastWarmStart; ws != nil {
			if ws.Used {
				fmt.Printf("  warm start: seeded from %s (%d support vectors re-matched)\n",
					orNone(ws.FromVersion), ws.MatchedRows)
			} else {
				fmt.Printf("  warm start: cold fit — %s\n", ws.Fallback)
			}
		}
		if r.LastError != "" {
			fmt.Printf("  error: %s\n", r.LastError)
		}
	}
	return nil
}

// orNone renders an empty string as "(none)".
func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}

func cmdCharacterize(args []string) error {
	fs := flag.NewFlagSet("characterize", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: gpufreq characterize <benchmark>; valid: %v", bench.Names())
	}
	b, err := bench.ByName(fs.Arg(0))
	if err != nil {
		return err
	}
	h := measure.NewHarness(nvml.NewDevice(gpu.TitanX()))
	rels, err := h.Sweep(b.Profile())
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d configurations (baseline %v)\n",
		b.Name, len(rels), h.Device().Sim().Ladder.Default())
	fmt.Printf("%-12s %10s %12s\n", "mem@core", "speedup", "norm.energy")
	for _, r := range rels {
		fmt.Printf("%-12s %10.3f %12.3f\n", r.Config, r.Speedup, r.NormEnergy)
	}
	return nil
}
