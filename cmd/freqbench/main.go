// Command freqbench regenerates the paper's evaluation artifacts — every
// figure and table of Section 4 — as text reports on the simulated Titan X.
//
// Usage:
//
//	freqbench [-exp fig1|fig4|fig5|fig6|fig7|fig8|table2|policy|budget|p100|adapt|hotpath|all] [-settings 40] [-workers 0]
//	          [-model-dir DIR]
//
// fig6/fig7/fig8/table2 train the models on the full 106-micro-benchmark
// training set first — or, with -model-dir, load the registry's active
// Titan X snapshot instead of training. Every model-dependent table
// records the model version (and content hash) it was produced from.
// policy and p100 always train per-device engines (they evaluate both GPU
// profiles, including devices a Titan X snapshot cannot serve), so their
// tables carry "in-memory" provenance regardless of -model-dir. adapt runs
// the drift-recovery experiment (internal/adapt end to end: a synthetic
// workload shift, drift detection, guarded auto-retrain, recovered error);
// it owns its training and in-memory registry, so -model-dir is ignored.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/registry"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig1, fig4, fig5, fig6, fig7, fig8, table2, policy, budget, p100, adapt, hotpath, all")
	settings := flag.Int("settings", 40, "sampled frequency settings per training kernel")
	workers := flag.Int("workers", 0, "training/prediction worker pool size (0 = NumCPU)")
	modelDir := flag.String("model-dir", "", "model registry directory (use the active titanx snapshot instead of training)")
	flag.Parse()

	eng := engine.NewDefault(engine.Options{
		Workers: *workers,
		Core:    core.Options{SettingsPerKernel: *settings},
	})
	s := experiments.NewSuiteWithEngine(eng)
	if *modelDir != "" {
		store, err := registry.Open(*modelDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "freqbench:", err)
			os.Exit(1)
		}
		models, man, err := store.Load("titanx", "")
		if err != nil {
			fmt.Fprintln(os.Stderr, "freqbench:", err)
			os.Exit(1)
		}
		eng.SetModels(models)
		s.SetModelVersion(man.Version)
	}
	if err := run(s, *exp); err != nil {
		fmt.Fprintln(os.Stderr, "freqbench:", err)
		os.Exit(1)
	}
}

func run(s *experiments.Suite, exp string) error {
	w := os.Stdout
	switch exp {
	case "fig1":
		data, err := s.Fig1()
		if err != nil {
			return err
		}
		experiments.RenderFig1(w, data)
	case "fig4":
		experiments.RenderFig4(w, s.Fig4())
	case "fig5":
		data, err := s.Fig5()
		if err != nil {
			return err
		}
		experiments.RenderFig5(w, data)
	case "fig6":
		rep, err := s.Fig6()
		if err != nil {
			return err
		}
		experiments.RenderErrorReport(w, "Figure 6", rep)
	case "fig7":
		rep, err := s.Fig7()
		if err != nil {
			return err
		}
		experiments.RenderErrorReport(w, "Figure 7", rep)
	case "fig8":
		data, err := s.Fig8()
		if err != nil {
			return err
		}
		experiments.RenderFig8(w, data)
	case "table2":
		rep, err := s.Table2()
		if err != nil {
			return err
		}
		experiments.RenderTable2(w, rep)
	case "policy":
		tables, err := experiments.PolicyEval(s.Engine().Options())
		if err != nil {
			return err
		}
		experiments.RenderPolicyEval(w, tables)
	case "budget":
		tables, err := experiments.BudgetEval(s.Engine().Options())
		if err != nil {
			return err
		}
		experiments.RenderBudgetEval(w, tables)
	case "p100":
		r, err := experiments.PortabilityP100(s.Engine().Options().Core)
		if err != nil {
			return err
		}
		experiments.RenderPortability(w, r)
	case "hotpath":
		rep, err := s.HotPath()
		if err != nil {
			return err
		}
		experiments.RenderHotPath(w, rep)
	case "adapt":
		// A fresh suite on the same engine options (workers included): the
		// drift-recovery run hot-swaps models and must not disturb the
		// engine other experiments in the same invocation share.
		rep, err := experiments.NewSuiteWithEngine(engine.NewDefault(s.Engine().Options())).AdaptRecovery()
		if err != nil {
			return err
		}
		experiments.RenderAdaptReport(w, rep)
	case "all":
		for _, e := range []string{"fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "table2", "policy", "budget", "hotpath", "adapt"} {
			if err := run(s, e); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
