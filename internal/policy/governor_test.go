package policy

import (
	"context"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/features"
	"repro/internal/freq"
	"repro/internal/gpu"
	"repro/internal/measure"
	"repro/internal/nvml"
)

// Trained predictors are shared across the tests of this file (training
// even a small engine dominates test time); every test builds its own
// Governor, which is cheap.
var (
	predOnce = map[string]*sync.Once{"titanx": {}, "p100": {}}
	preds    = map[string]*engine.Predictor{}
	predErr  = map[string]error{}
	predMu   sync.Mutex
)

// trainedGovernor wraps the device's shared small-trained predictor in a
// fresh governor.
func trainedGovernor(t testing.TB, dev *gpu.Device, cacheSize int) *Governor {
	t.Helper()
	key := "titanx"
	if len(dev.Ladder.MemClocks()) == 1 {
		key = "p100"
	}
	predOnce[key].Do(func() {
		eng := engine.New(measure.NewHarness(nvml.NewDevice(dev)), engine.Options{
			Workers: 4,
			Core:    core.Options{SettingsPerKernel: 4},
		})
		var err error
		if _, err = eng.TrainDefault(context.Background()); err == nil {
			var p *engine.Predictor
			if p, err = eng.Predictor(); err == nil {
				predMu.Lock()
				preds[key] = p
				predMu.Unlock()
			}
		}
		predMu.Lock()
		predErr[key] = err
		predMu.Unlock()
	})
	predMu.Lock()
	defer predMu.Unlock()
	if predErr[key] != nil {
		t.Fatalf("training %s: %v", key, predErr[key])
	}
	return NewGovernor(preds[key], cacheSize)
}

// TestGovernorPolicyConsistentBothDevices drives every built-in policy on
// both GPU profiles and checks the decision is policy-consistent: a ladder
// configuration, drawn from the predicted front, honoring the constraint
// whenever the decision claims feasibility.
func TestGovernorPolicyConsistentBothDevices(t *testing.T) {
	for _, dev := range []*gpu.Device{gpu.TitanX(), gpu.P100()} {
		gov := trainedGovernor(t, dev, 0)
		ladder := dev.Ladder
		for _, b := range bench.All()[:4] {
			st := b.Features()
			for _, info := range Builtins() {
				d, err := gov.Decide(st, Spec{Name: info.Name})
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", dev.Name, b.Name, info.Name, err)
				}
				if !ladder.Supported(d.Chosen.Config) {
					t.Errorf("%s/%s/%s chose %v: not a ladder configuration",
						dev.Name, b.Name, info.Name, d.Chosen.Config)
				}
				if d.Candidates == 0 {
					t.Errorf("%s/%s/%s: zero candidates", dev.Name, b.Name, info.Name)
				}
				if d.Feasible {
					switch info.Name {
					case MinEnergy:
						if d.Chosen.Speedup < d.Policy.SpeedupFloor() {
							t.Errorf("%s/%s min-energy chose speedup %.3f below floor %.3f",
								dev.Name, b.Name, d.Chosen.Speedup, d.Policy.SpeedupFloor())
						}
					case MaxPerf:
						if d.Chosen.NormEnergy > d.Policy.EnergyBudget {
							t.Errorf("%s/%s max-perf chose energy %.3f above budget %.3f",
								dev.Name, b.Name, d.Chosen.NormEnergy, d.Policy.EnergyBudget)
						}
					}
				} else if d.Fallback == "" {
					t.Errorf("%s/%s/%s: infeasible decision without a fallback note",
						dev.Name, b.Name, info.Name)
				}
			}
		}
	}
}

func TestGovernorCacheAccounting(t *testing.T) {
	gov := trainedGovernor(t, gpu.TitanX(), 0)
	st := bench.All()[0].Features()
	spec := Spec{Name: EDP}

	d1, err := gov.Decide(st, spec)
	if err != nil {
		t.Fatal(err)
	}
	s := gov.Stats()
	if s.Misses != 1 || s.Hits != 0 || s.Entries != 1 {
		t.Fatalf("after first decide: %+v", s)
	}
	d2, err := gov.Decide(st, spec)
	if err != nil {
		t.Fatal(err)
	}
	if s = gov.Stats(); s.Hits != 1 {
		t.Fatalf("repeat decide did not hit the cache: %+v", s)
	}
	if d1.Chosen.Config != d2.Chosen.Config {
		t.Fatalf("cached decision differs: %v vs %v", d1.Chosen.Config, d2.Chosen.Config)
	}
	// A different spec for the same kernel is a distinct cache entry.
	if _, err := gov.Decide(st, Spec{Name: EDP, IncludeHeuristic: true}); err != nil {
		t.Fatal(err)
	}
	if s = gov.Stats(); s.Misses != 2 || s.Entries != 2 {
		t.Fatalf("spec variation not keyed separately: %+v", s)
	}
}

func TestGovernorCacheEviction(t *testing.T) {
	gov := trainedGovernor(t, gpu.TitanX(), 2)
	bs := bench.All()
	for _, b := range bs[:3] {
		if _, err := gov.Decide(b.Features(), Spec{Name: EDP}); err != nil {
			t.Fatal(err)
		}
	}
	if s := gov.Stats(); s.Entries != 2 || s.Capacity != 2 {
		t.Fatalf("cache exceeded its bound: %+v", s)
	}
	// Disabled cache never stores.
	off := NewGovernor(gov.Predictor(), -1)
	if _, err := off.Decide(bs[0].Features(), Spec{Name: EDP}); err != nil {
		t.Fatal(err)
	}
	if s := off.Stats(); s.Entries != 0 || s.Capacity != 0 {
		t.Fatalf("disabled cache stored entries: %+v", s)
	}
}

// TestGovernorConcurrentDeterminism hammers one governor from many
// goroutines across kernels and specs; every (kernel, spec) pair must
// resolve to one configuration. Run under -race this exercises the
// decision cache's locking.
func TestGovernorConcurrentDeterminism(t *testing.T) {
	gov := trainedGovernor(t, gpu.TitanX(), 4) // small: forces eviction churn
	bs := bench.All()[:6]
	// Features are extracted up front: bench's lazy parse cache is not
	// goroutine-safe, and the governor's contract is over feature vectors.
	sts := make([]features.Static, len(bs))
	for i, b := range bs {
		sts[i] = b.Features()
	}
	specs := []Spec{{Name: MinEnergy}, {Name: MaxPerf}, {Name: Balanced}}

	type key struct {
		bench int
		spec  int
	}
	var mu sync.Mutex
	seen := map[key]core.Prediction{}
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		for bi := range bs {
			for si := range specs {
				wg.Add(1)
				go func(bi, si int) {
					defer wg.Done()
					d, err := gov.Decide(sts[bi], specs[si])
					if err != nil {
						t.Errorf("%s/%s: %v", bs[bi].Name, specs[si].Name, err)
						return
					}
					mu.Lock()
					defer mu.Unlock()
					k := key{bi, si}
					if prev, ok := seen[k]; ok && prev.Config != d.Chosen.Config {
						t.Errorf("%s/%s nondeterministic: %v vs %v",
							bs[bi].Name, specs[si].Name, prev.Config, d.Chosen.Config)
					}
					seen[k] = d.Chosen
				}(bi, si)
			}
		}
	}
	wg.Wait()
}

func TestGovernorDecideSource(t *testing.T) {
	gov := trainedGovernor(t, gpu.TitanX(), 0)
	const saxpy = `__kernel void saxpy(__global const float* x, __global float* y, float a, int n) {
		int i = get_global_id(0);
		if (i < n) y[i] = a * x[i] + y[i];
	}`
	d, err := gov.DecideSource(saxpy, "saxpy", Spec{Name: Balanced})
	if err != nil {
		t.Fatal(err)
	}
	if !gpu.TitanX().Ladder.Supported(d.Chosen.Config) {
		t.Fatalf("chose %v: not a ladder configuration", d.Chosen.Config)
	}
	if _, err := gov.DecideSource("not opencl", "", Spec{Name: Balanced}); err == nil {
		t.Fatal("bad source should fail")
	}
	if _, err := gov.DecideSource(saxpy, "saxpy", Spec{Name: "nope"}); err == nil {
		t.Fatal("unknown policy should fail")
	}
}

func TestGovernorDecideOver(t *testing.T) {
	gov := trainedGovernor(t, gpu.TitanX(), 0)
	ladder := gpu.TitanX().Ladder
	sampled := ladder.TrainingSample(40)
	in := map[freq.Config]bool{}
	for _, c := range sampled {
		in[c] = true
	}
	d, err := gov.DecideOver(bench.All()[0].Features(), sampled, Spec{Name: EDP})
	if err != nil {
		t.Fatal(err)
	}
	if !in[d.Chosen.Config] {
		t.Fatalf("DecideOver chose %v outside the candidate sample", d.Chosen.Config)
	}
	if s := gov.Stats(); s.Hits+s.Misses != 0 {
		t.Fatalf("DecideOver touched the decision cache: %+v", s)
	}
}
