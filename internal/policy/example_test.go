package policy_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/freq"
	"repro/internal/policy"
)

// ExampleChoose resolves a min-energy policy over a predicted Pareto set:
// the cheapest configuration whose predicted slowdown stays inside the cap
// wins, deterministically.
func ExampleChoose() {
	pareto := []core.Prediction{
		{Config: freq.Config{Mem: 3505, Core: 595}, Speedup: 0.62, NormEnergy: 0.81},
		{Config: freq.Config{Mem: 3505, Core: 905}, Speedup: 0.92, NormEnergy: 0.90},
		{Config: freq.Config{Mem: 3505, Core: 1202}, Speedup: 1.14, NormEnergy: 1.21},
	}
	d, err := policy.Choose(pareto, policy.Spec{Name: policy.MinEnergy, MaxSlowdown: 0.10})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("chosen %v (speedup %.2f, energy %.2f), feasible=%v of %d candidates\n",
		d.Chosen.Config, d.Chosen.Speedup, d.Chosen.NormEnergy, d.Feasible, d.Candidates)
	// Output:
	// chosen 3505@905 (speedup 0.92, energy 0.90), feasible=true of 3 candidates
}

// ExampleChoose_infeasible shows the documented fallback: when no
// configuration meets the constraint, the decision still names one and
// says why.
func ExampleChoose_infeasible() {
	pareto := []core.Prediction{
		{Config: freq.Config{Mem: 3505, Core: 595}, Speedup: 0.62, NormEnergy: 0.81},
		{Config: freq.Config{Mem: 3505, Core: 1202}, Speedup: 1.14, NormEnergy: 1.21},
	}
	// A negative max_slowdown demands speedup ≥ 1.5 — nothing delivers it.
	d, err := policy.Choose(pareto, policy.Spec{Name: policy.MinEnergy, MaxSlowdown: -0.5})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("chosen %v, feasible=%v\n", d.Chosen.Config, d.Feasible)
	// Output:
	// chosen 3505@1202, feasible=false
}

// ExampleSpec_WithDefaults shows that a bare policy name is a complete
// specification.
func ExampleSpec_WithDefaults() {
	spec := policy.Spec{Name: policy.MinEnergy}.WithDefaults()
	fmt.Printf("max_slowdown=%.2f energy_budget=%.1f\n", spec.MaxSlowdown, spec.EnergyBudget)
	// Output:
	// max_slowdown=0.10 energy_budget=1.0
}
