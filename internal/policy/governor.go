package policy

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/features"
	"repro/internal/freq"
)

// defaultCacheSize bounds the governor's decision cache when the caller
// passes 0 to NewGovernor.
const defaultCacheSize = 4096

// Governor resolves policy specs against a trained predictor and memoizes
// whole decisions: one (kernel features, resolved spec) pair costs a full
// ladder sweep plus Pareto derivation the first time and a map lookup
// afterwards. It is the shared policy layer under cmd/gpufreqd's /select
// endpoint, the gpufreq select subcommand, and examples/scheduler. All
// methods are safe for concurrent use.
//
// Two layers sit between the decision cache and the predictor. A governor
// built with NewGovernorWithFronts holds the snapshot's publish-time front
// table: kernels in the table resolve with a map lookup and zero SVR
// evaluations. Kernels outside the table fall back to the live ladder
// sweep, whose result is memoized in a sweep LRU keyed on the static
// features alone — so differing specs over the same unknown kernel share
// one sweep instead of re-running it per spec.
//
// A Governor is bound to the Predictor it was built with; after retraining
// (which installs a new Predictor on the engine) build a new Governor so
// stale decisions cannot outlive their models.
type Governor struct {
	pred   *engine.Predictor
	fronts map[features.Static][]core.Prediction // publish-time fronts (nil = none)

	mu  sync.Mutex
	cap int
	m   map[decisionKey]*list.Element
	l   *list.List // front = most recently used

	// sweep LRU: live ladder-sweep results keyed on static features alone,
	// shared across specs. Same capacity and lock discipline as the
	// decision cache.
	sweepM map[features.Static]*list.Element
	sweepL *list.List

	hits        atomic.Uint64
	misses      atomic.Uint64
	frontHits   atomic.Uint64
	sweepHits   atomic.Uint64
	sweepMisses atomic.Uint64
}

// decisionKey identifies one cacheable decision: the kernel's static
// features plus the resolved spec (both comparable value types).
type decisionKey struct {
	st   features.Static
	spec Spec
}

type governorEntry struct {
	k decisionKey
	d Decision
}

type sweepEntry struct {
	st  features.Static
	set []core.Prediction
}

// NewGovernor builds a governor over a trained predictor. cacheSize bounds
// the decision cache in entries: 0 selects the default (4096), negative
// disables caching.
func NewGovernor(p *engine.Predictor, cacheSize int) *Governor {
	return NewGovernorWithFronts(p, cacheSize, nil)
}

// NewGovernorWithFronts builds a governor holding a publish-time front
// table: static features to precomputed Pareto set (registry
// Fronts.Map()). Kernels in the table decide with zero SVR evaluations;
// kernels outside it fall back to the live sweep. The governor keeps a
// reference to the map and its slices — callers must not mutate them. A
// nil or empty table behaves exactly like NewGovernor.
func NewGovernorWithFronts(p *engine.Predictor, cacheSize int, fronts map[features.Static][]core.Prediction) *Governor {
	g := &Governor{pred: p, cap: cacheSize}
	if len(fronts) > 0 {
		g.fronts = fronts
	}
	if cacheSize == 0 {
		g.cap = defaultCacheSize
	}
	if g.cap > 0 {
		g.m = make(map[decisionKey]*list.Element)
		g.l = list.New()
		g.sweepM = make(map[features.Static]*list.Element)
		g.sweepL = list.New()
	}
	return g
}

// Predictor returns the predictor the governor resolves policies over.
func (g *Governor) Predictor() *engine.Predictor { return g.pred }

// Decide predicts the kernel's Pareto set and resolves the spec over it,
// consulting the decision cache first.
func (g *Governor) Decide(st features.Static, spec Spec) (Decision, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return Decision{}, err
	}
	key := decisionKey{st: st, spec: spec}
	if d, ok := g.lookup(key); ok {
		g.hits.Add(1)
		return d, nil
	}
	g.misses.Add(1)
	d, err := Choose(g.paretoSet(st), spec)
	if err != nil {
		return Decision{}, err
	}
	g.store(key, d)
	return d, nil
}

// paretoSet resolves a kernel's Pareto set through the governor's layers:
// the publish-time front table (zero SVR evaluations), then the sweep LRU
// (one sweep shared across specs), then the predictor's live sweep.
func (g *Governor) paretoSet(st features.Static) []core.Prediction {
	if set, ok := g.fronts[st]; ok {
		g.frontHits.Add(1)
		return set
	}
	if set, ok := g.sweepLookup(st); ok {
		g.sweepHits.Add(1)
		return set
	}
	g.sweepMisses.Add(1)
	set := g.pred.ParetoSet(st)
	g.sweepStore(st, set)
	return set
}

func (g *Governor) sweepLookup(st features.Static) ([]core.Prediction, bool) {
	if g.sweepL == nil {
		return nil, false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	el, ok := g.sweepM[st]
	if !ok {
		return nil, false
	}
	g.sweepL.MoveToFront(el)
	return el.Value.(*sweepEntry).set, true
}

func (g *Governor) sweepStore(st features.Static, set []core.Prediction) {
	if g.sweepL == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if el, ok := g.sweepM[st]; ok {
		el.Value.(*sweepEntry).set = set
		g.sweepL.MoveToFront(el)
		return
	}
	if g.sweepL.Len() >= g.cap {
		if oldest := g.sweepL.Back(); oldest != nil {
			g.sweepL.Remove(oldest)
			delete(g.sweepM, oldest.Value.(*sweepEntry).st)
		}
	}
	g.sweepM[st] = g.sweepL.PushFront(&sweepEntry{st: st, set: set})
}

// DecideSource is the end-to-end governor entry point: parse OpenCL
// source, extract static features, and decide.
func (g *Governor) DecideSource(src, kernelName string, spec Spec) (Decision, error) {
	st, err := features.ExtractSource(src, kernelName)
	if err != nil {
		return Decision{}, err
	}
	return g.Decide(st, spec)
}

// DecideOver resolves the spec over the kernel's Pareto set restricted to
// the given candidate configurations (e.g. the paper's 40-setting
// evaluation sample). Uncached: the decision depends on the candidate
// list, which is not part of the cache key; callers supplying explicit
// candidates control their own reuse.
func (g *Governor) DecideOver(st features.Static, cfgs []freq.Config, spec Spec) (Decision, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return Decision{}, err
	}
	return Choose(g.pred.ParetoSetOver(st, cfgs), spec)
}

// Stats is a snapshot of the governor's cache counters: the decision
// cache (Hits/Misses/Entries/Capacity), the publish-time front table
// (FrontKernels/FrontHits), and the live-sweep LRU that backs kernels
// outside the table (SweepHits/SweepMisses). On a decision-cache miss
// exactly one of FrontHits, SweepHits, or SweepMisses advances — only
// SweepMisses cost SVR evaluations.
type Stats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
	// FrontKernels is the number of kernels in the publish-time front table
	// (0 when the governor serves a snapshot without fronts).
	FrontKernels int `json:"front_kernels"`
	// FrontHits counts decisions resolved from the front table with zero
	// SVR evaluations.
	FrontHits uint64 `json:"front_hits"`
	// SweepHits counts decisions that reused a memoized live sweep;
	// SweepMisses counts the sweeps actually run.
	SweepHits   uint64 `json:"sweep_hits"`
	SweepMisses uint64 `json:"sweep_misses"`
}

// Stats returns the governor's cache accounting since construction.
func (g *Governor) Stats() Stats {
	s := Stats{
		Hits:         g.hits.Load(),
		Misses:       g.misses.Load(),
		FrontKernels: len(g.fronts),
		FrontHits:    g.frontHits.Load(),
		SweepHits:    g.sweepHits.Load(),
		SweepMisses:  g.sweepMisses.Load(),
	}
	if g.l != nil {
		g.mu.Lock()
		s.Entries = g.l.Len()
		s.Capacity = g.cap
		g.mu.Unlock()
	}
	return s
}

// FrontKernels returns the number of kernels covered by the governor's
// publish-time front table (0 without fronts).
func (g *Governor) FrontKernels() int { return len(g.fronts) }

// Front returns the precomputed Pareto set for a kernel in the front
// table, if present. The slice aliases the table; callers must not mutate
// it.
func (g *Governor) Front(st features.Static) ([]core.Prediction, bool) {
	set, ok := g.fronts[st]
	return set, ok
}

func (g *Governor) lookup(k decisionKey) (Decision, bool) {
	if g.l == nil {
		return Decision{}, false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	el, ok := g.m[k]
	if !ok {
		return Decision{}, false
	}
	g.l.MoveToFront(el)
	return el.Value.(*governorEntry).d, true
}

func (g *Governor) store(k decisionKey, d Decision) {
	if g.l == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if el, ok := g.m[k]; ok {
		el.Value.(*governorEntry).d = d
		g.l.MoveToFront(el)
		return
	}
	if g.l.Len() >= g.cap {
		if oldest := g.l.Back(); oldest != nil {
			g.l.Remove(oldest)
			delete(g.m, oldest.Value.(*governorEntry).k)
		}
	}
	g.m[k] = g.l.PushFront(&governorEntry{k: k, d: d})
}
