package policy

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/features"
	"repro/internal/freq"
)

// defaultCacheSize bounds the governor's decision cache when the caller
// passes 0 to NewGovernor.
const defaultCacheSize = 4096

// Governor resolves policy specs against a trained predictor and memoizes
// whole decisions: one (kernel features, resolved spec) pair costs a full
// ladder sweep plus Pareto derivation the first time and a map lookup
// afterwards. It is the shared policy layer under cmd/gpufreqd's /select
// endpoint, the gpufreq select subcommand, and examples/scheduler. All
// methods are safe for concurrent use.
//
// A Governor is bound to the Predictor it was built with; after retraining
// (which installs a new Predictor on the engine) build a new Governor so
// stale decisions cannot outlive their models.
type Governor struct {
	pred *engine.Predictor

	mu  sync.Mutex
	cap int
	m   map[decisionKey]*list.Element
	l   *list.List // front = most recently used

	hits   atomic.Uint64
	misses atomic.Uint64
}

// decisionKey identifies one cacheable decision: the kernel's static
// features plus the resolved spec (both comparable value types).
type decisionKey struct {
	st   features.Static
	spec Spec
}

type governorEntry struct {
	k decisionKey
	d Decision
}

// NewGovernor builds a governor over a trained predictor. cacheSize bounds
// the decision cache in entries: 0 selects the default (4096), negative
// disables caching.
func NewGovernor(p *engine.Predictor, cacheSize int) *Governor {
	g := &Governor{pred: p, cap: cacheSize}
	if cacheSize == 0 {
		g.cap = defaultCacheSize
	}
	if g.cap > 0 {
		g.m = make(map[decisionKey]*list.Element)
		g.l = list.New()
	}
	return g
}

// Predictor returns the predictor the governor resolves policies over.
func (g *Governor) Predictor() *engine.Predictor { return g.pred }

// Decide predicts the kernel's Pareto set and resolves the spec over it,
// consulting the decision cache first.
func (g *Governor) Decide(st features.Static, spec Spec) (Decision, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return Decision{}, err
	}
	key := decisionKey{st: st, spec: spec}
	if d, ok := g.lookup(key); ok {
		g.hits.Add(1)
		return d, nil
	}
	g.misses.Add(1)
	d, err := Choose(g.pred.ParetoSet(st), spec)
	if err != nil {
		return Decision{}, err
	}
	g.store(key, d)
	return d, nil
}

// DecideSource is the end-to-end governor entry point: parse OpenCL
// source, extract static features, and decide.
func (g *Governor) DecideSource(src, kernelName string, spec Spec) (Decision, error) {
	st, err := features.ExtractSource(src, kernelName)
	if err != nil {
		return Decision{}, err
	}
	return g.Decide(st, spec)
}

// DecideOver resolves the spec over the kernel's Pareto set restricted to
// the given candidate configurations (e.g. the paper's 40-setting
// evaluation sample). Uncached: the decision depends on the candidate
// list, which is not part of the cache key; callers supplying explicit
// candidates control their own reuse.
func (g *Governor) DecideOver(st features.Static, cfgs []freq.Config, spec Spec) (Decision, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return Decision{}, err
	}
	return Choose(g.pred.ParetoSetOver(st, cfgs), spec)
}

// Stats is a snapshot of the governor's decision-cache counters.
type Stats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
}

// Stats returns the decision-cache accounting since construction.
func (g *Governor) Stats() Stats {
	s := Stats{Hits: g.hits.Load(), Misses: g.misses.Load()}
	if g.l != nil {
		g.mu.Lock()
		s.Entries = g.l.Len()
		s.Capacity = g.cap
		g.mu.Unlock()
	}
	return s
}

func (g *Governor) lookup(k decisionKey) (Decision, bool) {
	if g.l == nil {
		return Decision{}, false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	el, ok := g.m[k]
	if !ok {
		return Decision{}, false
	}
	g.l.MoveToFront(el)
	return el.Value.(*governorEntry).d, true
}

func (g *Governor) store(k decisionKey, d Decision) {
	if g.l == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if el, ok := g.m[k]; ok {
		el.Value.(*governorEntry).d = d
		g.l.MoveToFront(el)
		return
	}
	if g.l.Len() >= g.cap {
		if oldest := g.l.Back(); oldest != nil {
			g.l.Remove(oldest)
			delete(g.m, oldest.Value.(*governorEntry).k)
		}
	}
	g.m[k] = g.l.PushFront(&governorEntry{k: k, d: d})
}
