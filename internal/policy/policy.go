// Package policy turns predicted Pareto sets into concrete DVFS decisions.
//
// The prediction pipeline (internal/core, internal/engine) stops at a
// Pareto-optimal set of (speedup, normalized energy) trade-offs — the
// paper's end product (Sections 3.4, 4.5). An operator, however, needs a
// single frequency configuration to apply through the management API, and
// which Pareto point is "best" depends on intent: a battery-constrained
// deployment wants minimum energy at bounded slowdown, a latency-critical
// one wants maximum performance inside an energy budget, a throughput
// cluster may optimize the energy-delay product. This package names those
// intents as composable policy specifications and resolves them over a
// predicted set deterministically:
//
//	min-energy  minimize normalized energy subject to a maximum-slowdown cap
//	max-perf    maximize speedup subject to a normalized-energy budget
//	edp         minimize the energy-delay product E·D ∝ energy/speedup
//	ed2p        minimize the energy-delay² product ∝ energy/speedup²
//	balanced    pick the knee point of the Pareto front
//
// Constrained policies degrade gracefully: when no configuration satisfies
// the constraint, the decision falls back to the feasible extreme closest
// to it (documented per policy on Decision.Fallback) and reports
// Feasible=false rather than failing, so a governor can always apply
// *some* clock. All selection is deterministic, including exact-tie
// resolution (higher speedup, then lower energy, then lower memory and
// core clocks).
package policy

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
)

// Built-in policy names, accepted by Spec.Name.
const (
	MinEnergy = "min-energy"
	MaxPerf   = "max-perf"
	EDP       = "edp"
	ED2P      = "ed2p"
	Balanced  = "balanced"
)

// Default constraint parameters, applied by Spec.WithDefaults.
const (
	// DefaultMaxSlowdown caps min-energy at 10% predicted slowdown
	// (speedup ≥ 0.90), the operating point the paper's evaluation and the
	// scheduler example center on.
	DefaultMaxSlowdown = 0.10
	// DefaultEnergyBudget caps max-perf at the baseline's energy
	// (normalized energy ≤ 1.0): "as fast as possible without paying more
	// than default clocks".
	DefaultEnergyBudget = 1.0
)

// ErrEmptyFront is returned by Choose when the candidate set is empty —
// either the predicted Pareto set itself is empty, or it contains only the
// mem-L heuristic point and the spec excludes heuristic configurations.
var ErrEmptyFront = errors.New("policy: empty candidate set")

// ErrUnknownPolicy is returned for a Spec whose Name is not a built-in.
var ErrUnknownPolicy = errors.New("policy: unknown policy")

// Spec is one policy request: a built-in objective plus its parameters.
// The zero value of each parameter selects the documented default, so a
// bare {Name: "min-energy"} is a complete spec. Spec is comparable and is
// used as (part of) a cache key by Governor.
type Spec struct {
	// Name selects the objective: min-energy, max-perf, edp, ed2p or
	// balanced.
	Name string `json:"name"`
	// MaxSlowdown is the min-energy constraint: the chosen configuration's
	// predicted slowdown relative to default clocks may not exceed this
	// fraction (0.10 ⇒ predicted speedup ≥ 0.90). 0 selects
	// DefaultMaxSlowdown; negative values demand a predicted speedup above
	// 1 (e.g. -0.05 ⇒ speedup ≥ 1.05). Ignored by other policies.
	MaxSlowdown float64 `json:"max_slowdown,omitempty"`
	// EnergyBudget is the max-perf constraint: the chosen configuration's
	// predicted normalized energy may not exceed this value. 0 selects
	// DefaultEnergyBudget. Ignored by other policies.
	EnergyBudget float64 `json:"energy_budget,omitempty"`
	// IncludeHeuristic admits the mem-L heuristic point as a candidate.
	// It is excluded by default: its objective values are model
	// extrapolations outside the trained frequency range (Section 4.5), so
	// constraint checks against them are not trustworthy.
	IncludeHeuristic bool `json:"include_heuristic,omitempty"`
}

// WithDefaults resolves zero-valued parameters to the documented defaults.
func (s Spec) WithDefaults() Spec {
	if s.MaxSlowdown == 0 {
		s.MaxSlowdown = DefaultMaxSlowdown
	}
	if s.EnergyBudget == 0 {
		s.EnergyBudget = DefaultEnergyBudget
	}
	return s
}

// SpeedupFloor is the minimum predicted speedup the min-energy constraint
// admits, derived from MaxSlowdown.
func (s Spec) SpeedupFloor() float64 { return 1 - s.WithDefaults().MaxSlowdown }

// Validate reports whether the spec names a built-in policy.
func (s Spec) Validate() error {
	switch s.Name {
	case MinEnergy, MaxPerf, EDP, ED2P, Balanced:
		return nil
	}
	return fmt.Errorf("%w %q (built-ins: %s, %s, %s, %s, %s)",
		ErrUnknownPolicy, s.Name, MinEnergy, MaxPerf, EDP, ED2P, Balanced)
}

// Info describes one built-in policy for discovery endpoints (GET
// /policies, gpufreq select -list).
type Info struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// Params documents the spec parameters the policy consumes, with their
	// defaults rendered in the text.
	Params map[string]string `json:"params,omitempty"`
}

// Builtins lists every built-in policy in stable order.
func Builtins() []Info {
	return []Info{
		{
			Name:        MinEnergy,
			Description: "minimize predicted normalized energy subject to a maximum predicted slowdown; falls back to the maximum-speedup configuration when no candidate meets the cap",
			Params: map[string]string{
				"max_slowdown": fmt.Sprintf("maximum predicted slowdown fraction (default %.2f ⇒ speedup ≥ %.2f)", DefaultMaxSlowdown, 1-DefaultMaxSlowdown),
			},
		},
		{
			Name:        MaxPerf,
			Description: "maximize predicted speedup subject to a normalized-energy budget; falls back to the minimum-energy configuration when no candidate fits the budget",
			Params: map[string]string{
				"energy_budget": fmt.Sprintf("maximum predicted normalized energy (default %.1f = baseline energy)", DefaultEnergyBudget),
			},
		},
		{
			Name:        EDP,
			Description: "minimize the predicted energy-delay product (normalized energy / speedup); unconstrained",
		},
		{
			Name:        ED2P,
			Description: "minimize the predicted energy-delay² product (normalized energy / speedup²); unconstrained",
		},
		{
			Name:        Balanced,
			Description: "pick the knee point of the predicted Pareto front: the configuration furthest below the chord joining the front's extremes in normalized objective space",
		},
	}
}

// Decision is a resolved policy choice over one predicted Pareto set.
type Decision struct {
	// Policy is the resolved spec (defaults applied) the decision answers.
	Policy Spec `json:"policy"`
	// Chosen is the selected prediction; Chosen.Config is the
	// configuration to apply through the management API.
	Chosen core.Prediction `json:"chosen"`
	// Feasible reports whether the constraint (if the policy has one) was
	// satisfiable. Unconstrained policies always report true.
	Feasible bool `json:"feasible"`
	// Fallback explains, when Feasible is false, which documented fallback
	// produced Chosen.
	Fallback string `json:"fallback,omitempty"`
	// Candidates is the number of Pareto points the policy chose from
	// (after heuristic filtering).
	Candidates int `json:"candidates"`
}

// Choose resolves a policy spec over a predicted Pareto set. The set is
// what engine.Predictor.ParetoSet returns: Pareto-optimal modeled points
// plus, possibly, a trailing mem-L heuristic point (filtered out unless
// the spec opts in). Choose never mutates the input and is deterministic:
// equal inputs produce equal decisions, with exact objective ties broken
// toward higher speedup, then lower energy, then lower memory and core
// clocks.
func Choose(set []core.Prediction, spec Spec) (Decision, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return Decision{}, err
	}
	cands := candidates(set, spec)
	if len(cands) == 0 {
		return Decision{}, ErrEmptyFront
	}
	d := Decision{Policy: spec, Feasible: true, Candidates: len(cands)}
	switch spec.Name {
	case MinEnergy:
		floor := spec.SpeedupFloor()
		if best, ok := argBest(cands, func(p core.Prediction) (float64, bool) {
			return p.NormEnergy, p.Speedup >= floor
		}, false); ok {
			d.Chosen = best
			return d, nil
		}
		// No candidate meets the slowdown cap: the maximum-speedup point is
		// the closest any configuration gets to the floor.
		d.Feasible = false
		d.Chosen = maxSpeedup(cands)
		d.Fallback = fmt.Sprintf("no configuration meets speedup ≥ %.3f; chose the maximum-speedup configuration", floor)
	case MaxPerf:
		if best, ok := argBest(cands, func(p core.Prediction) (float64, bool) {
			return p.Speedup, p.NormEnergy <= spec.EnergyBudget
		}, true); ok {
			d.Chosen = best
			return d, nil
		}
		// No candidate fits the budget: the minimum-energy point is the
		// closest any configuration gets to it.
		d.Feasible = false
		d.Chosen = minEnergy(cands)
		d.Fallback = fmt.Sprintf("no configuration meets normalized energy ≤ %.3f; chose the minimum-energy configuration", spec.EnergyBudget)
	case EDP:
		d.Chosen, _ = argBest(cands, func(p core.Prediction) (float64, bool) {
			return product(p, 1), true
		}, false)
	case ED2P:
		d.Chosen, _ = argBest(cands, func(p core.Prediction) (float64, bool) {
			return product(p, 2), true
		}, false)
	case Balanced:
		d.Chosen = knee(cands)
	}
	return d, nil
}

// candidates filters the set down to the points the policy may choose:
// modeled points always, the mem-L heuristic point only on opt-in.
func candidates(set []core.Prediction, spec Spec) []core.Prediction {
	out := make([]core.Prediction, 0, len(set))
	for _, p := range set {
		if p.MemLHeuristic && !spec.IncludeHeuristic {
			continue
		}
		out = append(out, p)
	}
	return out
}

// product is the generalized energy-delay product E·Dⁿ in normalized
// terms: delay relative to baseline is 1/speedup, so E·Dⁿ ∝ e/sⁿ.
// Non-positive predicted speedups (a degenerate model output) score +Inf
// so they are never chosen ahead of a usable point.
func product(p core.Prediction, n int) float64 {
	if p.Speedup <= 0 {
		return math.Inf(1)
	}
	return p.NormEnergy / math.Pow(p.Speedup, float64(n))
}

// tieBetter is the deterministic exact-tie order: higher speedup, then
// lower energy, then lower memory clock, then lower core clock.
func tieBetter(a, b core.Prediction) bool {
	if a.Speedup != b.Speedup {
		return a.Speedup > b.Speedup
	}
	if a.NormEnergy != b.NormEnergy {
		return a.NormEnergy < b.NormEnergy
	}
	if a.Config.Mem != b.Config.Mem {
		return a.Config.Mem < b.Config.Mem
	}
	return a.Config.Core < b.Config.Core
}

// argBest scans the candidates for the best feasible score (maximize when
// maximize is true, else minimize), resolving exact score ties with
// tieBetter. ok is false when no candidate is feasible.
func argBest(cands []core.Prediction, score func(core.Prediction) (float64, bool), maximize bool) (core.Prediction, bool) {
	var best core.Prediction
	bestScore := math.Inf(1)
	if maximize {
		bestScore = math.Inf(-1)
	}
	found := false
	for _, p := range cands {
		s, feasible := score(p)
		if !feasible {
			continue
		}
		improves := s < bestScore
		if maximize {
			improves = s > bestScore
		}
		if !found || improves || (s == bestScore && tieBetter(p, best)) {
			best, bestScore, found = p, s, true
		}
	}
	return best, found
}

// maxSpeedup returns the maximum-speedup candidate (ties via tieBetter).
func maxSpeedup(cands []core.Prediction) core.Prediction {
	best, _ := argBest(cands, func(p core.Prediction) (float64, bool) {
		return p.Speedup, true
	}, true)
	return best
}

// minEnergy returns the minimum-energy candidate (ties via tieBetter).
func minEnergy(cands []core.Prediction) core.Prediction {
	best, _ := argBest(cands, func(p core.Prediction) (float64, bool) {
		return p.NormEnergy, true
	}, false)
	return best
}

// knee picks the Pareto front's knee point: objectives are normalized to
// [0,1] over the candidate set, and the point with the greatest
// perpendicular distance below the chord joining the maximum-speedup and
// minimum-energy extremes wins. Degenerate fronts (fewer than three
// points, or a collapsed objective range where every distance is zero)
// resolve through the deterministic tie order, which favors the
// higher-speedup end.
func knee(cands []core.Prediction) core.Prediction {
	sLo, sHi := math.Inf(1), math.Inf(-1)
	eLo, eHi := math.Inf(1), math.Inf(-1)
	for _, p := range cands {
		sLo, sHi = math.Min(sLo, p.Speedup), math.Max(sHi, p.Speedup)
		eLo, eHi = math.Min(eLo, p.NormEnergy), math.Max(eHi, p.NormEnergy)
	}
	sSpan, eSpan := sHi-sLo, eHi-eLo
	if sSpan <= 0 || eSpan <= 0 {
		// All candidates share a speedup or an energy value: no curvature
		// to find a knee on.
		best, _ := argBest(cands, func(core.Prediction) (float64, bool) { return 0, true }, false)
		return best
	}
	// On a normalized bi-objective front the max-speedup extreme sits at
	// (1,1) and the min-energy extreme at (0,0); the chord is the diagonal
	// u = v, and the knee maximizes the distance below it, (u - v)/√2.
	best, _ := argBest(cands, func(p core.Prediction) (float64, bool) {
		u := (p.Speedup - sLo) / sSpan
		v := (p.NormEnergy - eLo) / eSpan
		return u - v, true
	}, true)
	return best
}
