package policy

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/gpu"
)

// TestGovernorFrontZeroSVR pins the publish-time-fronts contract: deciding
// a kernel present in the front table performs zero SVR evaluations — the
// predictor's cache counters (which tick on every ParetoSet call, hit or
// miss) stay frozen — and every such decision is a front hit.
func TestGovernorFrontZeroSVR(t *testing.T) {
	pred := trainedGovernor(t, gpu.TitanX(), -1).Predictor()
	st := bench.All()[0].Features()
	set := pred.ParetoSet(st) // simulate the publish-time sweep

	// Decision cache disabled (-1): every Decide resolves a Pareto set.
	gov := NewGovernorWithFronts(pred, -1,
		map[features.Static][]core.Prediction{st: set})
	if gov.FrontKernels() != 1 {
		t.Fatalf("FrontKernels = %d, want 1", gov.FrontKernels())
	}
	live := NewGovernor(pred, -1)

	// Front decisions must match live decisions spec for spec.
	specs := []Spec{{Name: MinEnergy}, {Name: MaxPerf}, {Name: EDP}, {Name: MinEnergy}}
	for _, spec := range specs {
		d, err := gov.Decide(st, spec)
		if err != nil {
			t.Fatal(err)
		}
		want, err := live.Decide(st, spec)
		if err != nil {
			t.Fatal(err)
		}
		if d.Chosen.Config != want.Chosen.Config {
			t.Fatalf("%s: front decision %v != live decision %v",
				spec.Name, d.Chosen.Config, want.Chosen.Config)
		}
	}
	// With a frozen baseline, front decisions alone must not move the
	// predictor's counters (which tick on every ParetoSet call).
	base := pred.Stats()
	for _, spec := range specs {
		if _, err := gov.Decide(st, spec); err != nil {
			t.Fatal(err)
		}
	}
	if got := pred.Stats(); got != base {
		t.Fatalf("front decisions touched the predictor: %+v -> %+v", base, got)
	}

	s := gov.Stats()
	if s.FrontKernels != 1 || s.FrontHits != uint64(2*len(specs)) {
		t.Fatalf("front accounting: %+v, want front_kernels=1 front_hits=%d", s, 2*len(specs))
	}
	if s.SweepHits != 0 || s.SweepMisses != 0 {
		t.Fatalf("front kernel leaked into the sweep layer: %+v", s)
	}
	if got, ok := gov.Front(st); !ok || len(got) != len(set) {
		t.Fatalf("Front(st) = %v, %v; want the published set", got, ok)
	}
}

// TestGovernorSweepSharedAcrossSpecs pins the sweep-LRU contract: differing
// specs over the same unknown kernel (not in the front table) share one
// live ladder sweep.
func TestGovernorSweepSharedAcrossSpecs(t *testing.T) {
	gov := trainedGovernor(t, gpu.TitanX(), 0)
	st := bench.All()[1].Features()

	specs := []Spec{{Name: MinEnergy}, {Name: MaxPerf}, {Name: EDP}}
	for _, spec := range specs {
		if _, err := gov.Decide(st, spec); err != nil {
			t.Fatal(err)
		}
	}
	s := gov.Stats()
	if s.Misses != uint64(len(specs)) {
		t.Fatalf("decision misses = %d, want %d (distinct specs)", s.Misses, len(specs))
	}
	if s.SweepMisses != 1 || s.SweepHits != uint64(len(specs)-1) {
		t.Fatalf("sweep not shared across specs: %+v (want 1 miss, %d hits)", s, len(specs)-1)
	}
	if s.FrontKernels != 0 || s.FrontHits != 0 {
		t.Fatalf("frontless governor reported front activity: %+v", s)
	}

	// A second kernel takes its own sweep.
	if _, err := gov.Decide(bench.All()[2].Features(), Spec{Name: MinEnergy}); err != nil {
		t.Fatal(err)
	}
	if s = gov.Stats(); s.SweepMisses != 2 {
		t.Fatalf("second kernel did not sweep: %+v", s)
	}

	// Repeating a (kernel, spec) pair is a decision-cache hit and must not
	// touch the sweep layer again.
	if _, err := gov.Decide(st, specs[0]); err != nil {
		t.Fatal(err)
	}
	if s2 := gov.Stats(); s2.Hits != s.Hits+1 || s2.SweepHits != s.SweepHits || s2.SweepMisses != s.SweepMisses {
		t.Fatalf("decision-cache hit leaked into sweep layer: %+v -> %+v", s, s2)
	}
}

// BenchmarkGovernorDecideFront measures the decision path the publish-time
// front table buys: caches disabled, every Decide is a front-table map hit
// plus policy resolution — zero SVR evaluations.
func BenchmarkGovernorDecideFront(b *testing.B) {
	pred := trainedGovernor(b, gpu.TitanX(), -1).Predictor()
	st := bench.All()[0].Features()
	set := pred.ParetoSet(st)
	gov := NewGovernorWithFronts(pred, -1,
		map[features.Static][]core.Prediction{st: set})
	spec := Spec{Name: MinEnergy}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gov.Decide(st, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGovernorDecideLiveSweep is the same decision without fronts or
// caches: a full ladder sweep through both SVRs per call.
func BenchmarkGovernorDecideLiveSweep(b *testing.B) {
	pred := trainedGovernor(b, gpu.TitanX(), -1).Predictor()
	st := bench.All()[0].Features()
	gov := NewGovernor(pred, -1)
	spec := Spec{Name: MinEnergy}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gov.Decide(st, spec); err != nil {
			b.Fatal(err)
		}
	}
}
