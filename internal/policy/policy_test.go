package policy

import (
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/freq"
)

// front is a hand-built predicted Pareto set: speedup descends with the
// core clock while energy descends too (the classic trade-off shape), plus
// a trailing mem-L heuristic point as ParetoSet emits.
func front() []core.Prediction {
	return []core.Prediction{
		{Config: freq.Config{Mem: 3505, Core: 1202}, Speedup: 1.05, NormEnergy: 1.20},
		{Config: freq.Config{Mem: 3505, Core: 1001}, Speedup: 1.00, NormEnergy: 1.00},
		{Config: freq.Config{Mem: 3505, Core: 885}, Speedup: 0.93, NormEnergy: 0.88},
		{Config: freq.Config{Mem: 3304, Core: 772}, Speedup: 0.84, NormEnergy: 0.80},
		{Config: freq.Config{Mem: 810, Core: 595}, Speedup: 0.62, NormEnergy: 0.71},
		{Config: freq.Config{Mem: 405, Core: 405}, Speedup: 0.30, NormEnergy: 0.95, MemLHeuristic: true},
	}
}

func mustChoose(t *testing.T, set []core.Prediction, spec Spec) Decision {
	t.Helper()
	d, err := Choose(set, spec)
	if err != nil {
		t.Fatalf("Choose(%+v): %v", spec, err)
	}
	return d
}

func TestChooseMinEnergy(t *testing.T) {
	d := mustChoose(t, front(), Spec{Name: MinEnergy}) // default cap: speedup ≥ 0.90
	if got, want := d.Chosen.Config, (freq.Config{Mem: 3505, Core: 885}); got != want {
		t.Fatalf("chosen %v, want %v", got, want)
	}
	if !d.Feasible || d.Fallback != "" {
		t.Fatalf("expected feasible decision: %+v", d)
	}
	// Loosening the cap admits lower-energy points.
	d = mustChoose(t, front(), Spec{Name: MinEnergy, MaxSlowdown: 0.40})
	if got, want := d.Chosen.Config, (freq.Config{Mem: 810, Core: 595}); got != want {
		t.Fatalf("loose cap chose %v, want %v", got, want)
	}
}

func TestChooseMinEnergyInfeasibleFallsBackToMaxSpeedup(t *testing.T) {
	// A negative MaxSlowdown demands speedup ≥ 1.10: nothing qualifies.
	d := mustChoose(t, front(), Spec{Name: MinEnergy, MaxSlowdown: -0.10})
	if d.Feasible {
		t.Fatal("expected infeasible decision")
	}
	if d.Fallback == "" {
		t.Fatal("infeasible decision must document its fallback")
	}
	if got, want := d.Chosen.Config, (freq.Config{Mem: 3505, Core: 1202}); got != want {
		t.Fatalf("fallback chose %v, want max-speedup %v", got, want)
	}
}

func TestChooseMaxPerf(t *testing.T) {
	d := mustChoose(t, front(), Spec{Name: MaxPerf}) // default budget: energy ≤ 1.0
	if got, want := d.Chosen.Config, (freq.Config{Mem: 3505, Core: 1001}); got != want {
		t.Fatalf("chosen %v, want %v", got, want)
	}
	d = mustChoose(t, front(), Spec{Name: MaxPerf, EnergyBudget: 1.5})
	if got, want := d.Chosen.Config, (freq.Config{Mem: 3505, Core: 1202}); got != want {
		t.Fatalf("big budget chose %v, want %v", got, want)
	}
}

func TestChooseMaxPerfInfeasibleFallsBackToMinEnergy(t *testing.T) {
	d := mustChoose(t, front(), Spec{Name: MaxPerf, EnergyBudget: 0.10})
	if d.Feasible || d.Fallback == "" {
		t.Fatalf("expected documented infeasible fallback: %+v", d)
	}
	if got, want := d.Chosen.Config, (freq.Config{Mem: 810, Core: 595}); got != want {
		t.Fatalf("fallback chose %v, want min-energy %v", got, want)
	}
}

func TestChooseProducts(t *testing.T) {
	// EDP = e/s: 1.20/1.05=1.143, 1.0, 0.88/0.93=0.946, 0.80/0.84=0.952,
	// 0.71/0.62=1.145 → 885-core point wins.
	d := mustChoose(t, front(), Spec{Name: EDP})
	if got, want := d.Chosen.Config, (freq.Config{Mem: 3505, Core: 885}); got != want {
		t.Fatalf("edp chose %v, want %v", got, want)
	}
	// ED2P weights delay harder, pulling the choice back toward the
	// default clock: 1.0/1.0²=1.0 beats 0.88/0.93²=1.017.
	d = mustChoose(t, front(), Spec{Name: ED2P})
	if got, want := d.Chosen.Config, (freq.Config{Mem: 3505, Core: 1001}); got != want {
		t.Fatalf("ed2p chose %v, want %v", got, want)
	}
	// A non-positive speedup can never win a product policy.
	set := []core.Prediction{
		{Config: freq.Config{Mem: 3505, Core: 595}, Speedup: -0.1, NormEnergy: 0.01},
		{Config: freq.Config{Mem: 3505, Core: 1001}, Speedup: 1.0, NormEnergy: 1.0},
	}
	d = mustChoose(t, set, Spec{Name: EDP})
	if got, want := d.Chosen.Config, (freq.Config{Mem: 3505, Core: 1001}); got != want {
		t.Fatalf("edp with degenerate speedup chose %v, want %v", got, want)
	}
}

func TestChooseBalancedKnee(t *testing.T) {
	// Normalized: (1.05,1.20)→(1,1); (0.62,0.71)→(0,0). The 885-core point
	// maps to (0.721,0.347): u-v = 0.374, the largest bulge below the
	// chord.
	d := mustChoose(t, front(), Spec{Name: Balanced})
	if got, want := d.Chosen.Config, (freq.Config{Mem: 3505, Core: 885}); got != want {
		t.Fatalf("balanced chose %v, want %v", got, want)
	}
}

func TestChooseEmptyFront(t *testing.T) {
	for _, set := range [][]core.Prediction{
		nil,
		{},
		// Only a heuristic point, excluded by default.
		{{Config: freq.Config{Mem: 405, Core: 405}, Speedup: 0.3, NormEnergy: 0.9, MemLHeuristic: true}},
	} {
		if _, err := Choose(set, Spec{Name: MinEnergy}); !errors.Is(err, ErrEmptyFront) {
			t.Fatalf("Choose(%v) err = %v, want ErrEmptyFront", set, err)
		}
	}
	// Opting in to the heuristic point makes the singleton usable again.
	set := []core.Prediction{{Config: freq.Config{Mem: 405, Core: 405}, Speedup: 0.3, NormEnergy: 0.9, MemLHeuristic: true}}
	d := mustChoose(t, set, Spec{Name: EDP, IncludeHeuristic: true})
	if got, want := d.Chosen.Config, (freq.Config{Mem: 405, Core: 405}); got != want {
		t.Fatalf("heuristic opt-in chose %v, want %v", got, want)
	}
}

func TestChooseSingletonFront(t *testing.T) {
	single := []core.Prediction{{Config: freq.Config{Mem: 715, Core: 1328}, Speedup: 1.0, NormEnergy: 1.0}}
	for _, name := range []string{MinEnergy, MaxPerf, EDP, ED2P, Balanced} {
		d := mustChoose(t, single, Spec{Name: name})
		if d.Chosen.Config != single[0].Config {
			t.Fatalf("%s on singleton chose %v", name, d.Chosen.Config)
		}
		if d.Candidates != 1 {
			t.Fatalf("%s candidates = %d, want 1", name, d.Candidates)
		}
	}
	// A singleton that violates a constraint still resolves, infeasibly.
	d := mustChoose(t, single, Spec{Name: MaxPerf, EnergyBudget: 0.5})
	if d.Feasible || d.Chosen.Config != single[0].Config {
		t.Fatalf("infeasible singleton: %+v", d)
	}
}

func TestChooseUnknownPolicy(t *testing.T) {
	if _, err := Choose(front(), Spec{Name: "max-vibes"}); !errors.Is(err, ErrUnknownPolicy) {
		t.Fatalf("err = %v, want ErrUnknownPolicy", err)
	}
}

func TestChooseDoesNotMutateInput(t *testing.T) {
	set := front()
	want := front()
	_ = mustChoose(t, set, Spec{Name: Balanced})
	if !reflect.DeepEqual(set, want) {
		t.Fatal("Choose mutated its input set")
	}
}

// TestChooseTieBreakDeterminism resolves a front full of exact objective
// ties concurrently and demands one identical answer everywhere — run
// under -race this also proves Choose shares no state across calls.
func TestChooseTieBreakDeterminism(t *testing.T) {
	tied := []core.Prediction{
		{Config: freq.Config{Mem: 3505, Core: 1001}, Speedup: 1.0, NormEnergy: 1.0},
		{Config: freq.Config{Mem: 3505, Core: 885}, Speedup: 1.0, NormEnergy: 1.0},
		{Config: freq.Config{Mem: 3304, Core: 885}, Speedup: 1.0, NormEnergy: 1.0},
		{Config: freq.Config{Mem: 810, Core: 595}, Speedup: 1.0, NormEnergy: 1.0},
	}
	// Tie order: lower mem first, then lower core.
	want := freq.Config{Mem: 810, Core: 595}
	for _, name := range []string{MinEnergy, MaxPerf, EDP, ED2P, Balanced} {
		var wg sync.WaitGroup
		got := make([]freq.Config, 16)
		for i := range got {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				d, err := Choose(tied, Spec{Name: name})
				if err != nil {
					t.Errorf("%s: %v", name, err)
					return
				}
				got[i] = d.Chosen.Config
			}(i)
		}
		wg.Wait()
		for i, g := range got {
			if g != want {
				t.Fatalf("%s run %d chose %v, want %v", name, i, g, want)
			}
		}
	}
}

func TestSpecDefaults(t *testing.T) {
	s := Spec{Name: MinEnergy}.WithDefaults()
	if s.MaxSlowdown != DefaultMaxSlowdown || s.EnergyBudget != DefaultEnergyBudget {
		t.Fatalf("defaults not applied: %+v", s)
	}
	if got := (Spec{Name: MinEnergy, MaxSlowdown: 0.25}).SpeedupFloor(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("SpeedupFloor = %v, want 0.75", got)
	}
}

func TestBuiltinsCoverValidation(t *testing.T) {
	infos := Builtins()
	if len(infos) != 5 {
		t.Fatalf("Builtins() = %d entries, want 5", len(infos))
	}
	for _, info := range infos {
		if err := (Spec{Name: info.Name}).Validate(); err != nil {
			t.Errorf("built-in %q fails Validate: %v", info.Name, err)
		}
		if info.Description == "" {
			t.Errorf("built-in %q has no description", info.Name)
		}
	}
}
