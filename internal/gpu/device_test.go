package gpu

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/clkernel"
	"repro/internal/freq"
)

// computeProfile is a heavily compute-bound kernel profile: float FMA chains
// with negligible memory traffic.
func computeProfile() KernelProfile {
	var c clkernel.Counts
	c.Ops[clkernel.OpFloatAdd] = 2000
	c.Ops[clkernel.OpFloatMul] = 2000
	c.Ops[clkernel.OpGlobalAccess] = 2
	c.GlobalBytes = 8
	return KernelProfile{Name: "compute", Counts: c, WorkItems: 1 << 20}
}

// memoryProfile is a memory-bound kernel profile: streaming global traffic
// with minimal arithmetic.
func memoryProfile() KernelProfile {
	var c clkernel.Counts
	c.Ops[clkernel.OpGlobalAccess] = 64
	c.Ops[clkernel.OpIntAdd] = 8
	c.GlobalBytes = 256
	return KernelProfile{Name: "memory", Counts: c, WorkItems: 1 << 20}
}

func mustSim(t *testing.T, d *Device, p KernelProfile, cfg freq.Config) Result {
	t.Helper()
	r, err := d.Simulate(p, cfg)
	if err != nil {
		t.Fatalf("Simulate(%v): %v", cfg, err)
	}
	return r
}

func TestComputeBoundLinearSpeedup(t *testing.T) {
	d := TitanX()
	p := computeProfile()
	def := mustSim(t, d, p, d.Ladder.Default())
	// Speedup at mem-H should track core frequency nearly linearly.
	for _, core := range []freq.MHz{595, 800, 1001, 1202} {
		r := mustSim(t, d, p, freq.Config{Mem: freq.MemH, Core: core})
		speedup := def.TimeSec / r.TimeSec
		linear := float64(core) / float64(d.Ladder.Default().Core)
		if math.Abs(speedup-linear) > 0.05*linear {
			t.Errorf("core %d: speedup %.3f deviates from linear %.3f by more than 5%%",
				core, speedup, linear)
		}
	}
}

func TestComputeBoundMemInsensitive(t *testing.T) {
	d := TitanX()
	p := computeProfile()
	rH := mustSim(t, d, p, freq.Config{Mem: freq.MemH, Core: 1001})
	rl := mustSim(t, d, p, freq.Config{Mem: freq.Meml, Core: 1001})
	ratio := rl.TimeSec / rH.TimeSec
	if ratio > 1.10 {
		t.Errorf("compute-bound kernel slowed %.2fx by memory downscale, want < 1.10x", ratio)
	}
	// ...and it should save energy at the lower memory clock (paper: k-NN
	// at mem-l is as fast as the highest setting with less energy).
	if rl.EnergyJ >= rH.EnergyJ {
		t.Errorf("compute-bound kernel energy at mem-l (%.3f J) not below mem-H (%.3f J)",
			rl.EnergyJ, rH.EnergyJ)
	}
}

func TestMemoryBoundCoreInsensitive(t *testing.T) {
	d := TitanX()
	p := memoryProfile()
	lo := mustSim(t, d, p, freq.Config{Mem: freq.MemH, Core: 700})
	hi := mustSim(t, d, p, freq.Config{Mem: freq.MemH, Core: 1202})
	ratio := lo.TimeSec / hi.TimeSec
	if ratio > 1.15 {
		t.Errorf("memory-bound kernel sped up %.2fx by core scaling, want < 1.15x", ratio)
	}
	// Memory downscale must hurt it badly.
	rl := mustSim(t, d, p, freq.Config{Mem: freq.Meml, Core: 1001})
	rH := mustSim(t, d, p, freq.Config{Mem: freq.MemH, Core: 1001})
	if rl.TimeSec < 2*rH.TimeSec {
		t.Errorf("memory-bound kernel at mem-l only %.2fx slower, want > 2x",
			rl.TimeSec/rH.TimeSec)
	}
}

func TestMemoryBoundEnergyRisesWithCore(t *testing.T) {
	// Paper (MT, Fig. 1e): for memory-bound kernels raising the core clock
	// only wastes energy.
	d := TitanX()
	p := memoryProfile()
	lo := mustSim(t, d, p, freq.Config{Mem: freq.MemH, Core: 700})
	hi := mustSim(t, d, p, freq.Config{Mem: freq.MemH, Core: 1202})
	if hi.EnergyJ <= lo.EnergyJ {
		t.Errorf("memory-bound energy at 1202 MHz (%.2f J) not above 700 MHz (%.2f J)",
			hi.EnergyJ, lo.EnergyJ)
	}
}

func TestEnergyParabolaMinimum(t *testing.T) {
	// Paper (k-NN, Fig. 1b): normalized energy over core frequency at a
	// high memory clock is parabolic with a minimum in [885, 987] MHz.
	d := TitanX()
	p := computeProfile()
	cores := d.Ladder.CoreClocks(freq.MemH)
	best := cores[0]
	bestE := math.Inf(1)
	for _, c := range cores {
		r := mustSim(t, d, p, freq.Config{Mem: freq.MemH, Core: c})
		if r.EnergyJ < bestE {
			bestE = r.EnergyJ
			best = c
		}
	}
	if best < 800 || best > 1050 {
		t.Errorf("energy minimum at %d MHz, want within [800, 1050] (paper: [885, 987])", best)
	}
	// The curve must actually bend: both extremes above the minimum.
	first := mustSim(t, d, p, freq.Config{Mem: freq.MemH, Core: cores[0]})
	last := mustSim(t, d, p, freq.Config{Mem: freq.MemH, Core: cores[len(cores)-1]})
	if first.EnergyJ <= bestE*1.02 || last.EnergyJ <= bestE*1.02 {
		t.Errorf("energy curve too flat: ends %.3f/%.3f J vs min %.3f J",
			first.EnergyJ, last.EnergyJ, bestE)
	}
}

func TestPowerEnvelope(t *testing.T) {
	d := TitanX()
	p := computeProfile()
	r := mustSim(t, d, p, d.Ladder.Default())
	if r.PowerWatts < 150 || r.PowerWatts > 300 {
		t.Errorf("full-load default power = %.1f W, want within [150, 300] (TDP 250 W)",
			r.PowerWatts)
	}
	// Lowest clocks should draw far less.
	lo := mustSim(t, d, p, freq.Config{Mem: freq.MemL, Core: 135})
	if lo.PowerWatts >= r.PowerWatts/2 {
		t.Errorf("low-clock power %.1f W not well below default %.1f W", lo.PowerWatts, r.PowerWatts)
	}
}

func TestTimeMonotoneInCore(t *testing.T) {
	d := TitanX()
	for _, p := range []KernelProfile{computeProfile(), memoryProfile()} {
		prev := math.Inf(1)
		for _, c := range d.Ladder.CoreClocks(freq.MemH) {
			r := mustSim(t, d, p, freq.Config{Mem: freq.MemH, Core: c})
			if r.TimeSec > prev*(1+1e-9) {
				t.Errorf("%s: time increased when core rose to %d MHz", p.Name, c)
			}
			prev = r.TimeSec
		}
	}
}

func TestTimeMonotoneInMem(t *testing.T) {
	d := TitanX()
	p := memoryProfile()
	prev := math.Inf(1)
	for _, m := range []freq.MHz{freq.MemL, freq.Meml, freq.Memh, freq.MemH} {
		r := mustSim(t, d, p, freq.Config{Mem: m, Core: 405})
		if r.TimeSec > prev*(1+1e-9) {
			t.Errorf("time increased when mem rose to %d MHz", m)
		}
		prev = r.TimeSec
	}
}

func TestSimulateClampsCore(t *testing.T) {
	d := TitanX()
	p := computeProfile()
	r1392 := mustSim(t, d, p, freq.Config{Mem: freq.MemH, Core: 1392})
	r1202 := mustSim(t, d, p, freq.Config{Mem: freq.MemH, Core: 1202})
	if r1392.TimeSec != r1202.TimeSec || r1392.Config.Core != 1202 {
		t.Errorf("request above clamp not applied as 1202 MHz: %+v", r1392.Config)
	}
}

func TestSimulateUnsupportedMem(t *testing.T) {
	d := TitanX()
	if _, err := d.Simulate(computeProfile(), freq.Config{Mem: 999, Core: 1001}); err == nil {
		t.Error("expected error for unsupported memory clock")
	}
}

func TestVoltageCurve(t *testing.T) {
	d := TitanX()
	if v := d.Voltage(135); v != d.VIdle {
		t.Errorf("Voltage(135) = %v, want VIdle %v", v, d.VIdle)
	}
	if v := d.Voltage(365); v <= d.VIdle || v >= d.VMin {
		t.Errorf("Voltage(365) = %v, want strictly between VIdle and VMin", v)
	}
	if v := d.Voltage(595); v != d.VMin {
		t.Errorf("Voltage(595) = %v, want VMin %v", v, d.VMin)
	}
	if v := d.Voltage(1202); v != d.VMax {
		t.Errorf("Voltage(1202) = %v, want VMax %v", v, d.VMax)
	}
	if v := d.Voltage(1392); v != d.VMax {
		t.Errorf("Voltage(1392) = %v, want VMax (saturated)", v)
	}
	mid := d.Voltage(900)
	if mid <= d.VMin || mid >= d.VMax {
		t.Errorf("Voltage(900) = %v, want strictly between %v and %v", mid, d.VMin, d.VMax)
	}
}

func TestVoltageMonotoneProperty(t *testing.T) {
	d := TitanX()
	f := func(a, b uint16) bool {
		fa, fb := freq.MHz(a%1500), freq.MHz(b%1500)
		if fa > fb {
			fa, fb = fb, fa
		}
		return d.Voltage(fa) <= d.Voltage(fb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResultsPositiveProperty(t *testing.T) {
	d := TitanX()
	cfgs := d.Ladder.Configs()
	f := func(idx uint16, fadd, gacc uint8) bool {
		cfg := cfgs[int(idx)%len(cfgs)]
		var c clkernel.Counts
		c.Ops[clkernel.OpFloatAdd] = float64(fadd) + 1
		c.Ops[clkernel.OpGlobalAccess] = float64(gacc)
		c.GlobalBytes = float64(gacc) * 4
		p := KernelProfile{Name: "q", Counts: c, WorkItems: 4096}
		r, err := d.Simulate(p, cfg)
		if err != nil {
			return false
		}
		ok := r.TimeSec > 0 && r.PowerWatts > 0 && r.EnergyJ > 0 &&
			!math.IsNaN(r.TimeSec) && !math.IsInf(r.TimeSec, 0) &&
			r.CoreUtil >= 0 && r.CoreUtil <= 1 && r.MemUtil >= 0 && r.MemUtil <= 1
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	d := TitanX()
	p := KernelProfile{Name: "bare"} // zero profile: defaults kick in
	r, err := d.SimulateDefault(p)
	if err != nil {
		t.Fatalf("SimulateDefault: %v", err)
	}
	if r.TimeSec <= 0 {
		t.Errorf("TimeSec = %v, want > 0 (launch overhead)", r.TimeSec)
	}
}

func TestP100Simulates(t *testing.T) {
	d := P100()
	p := computeProfile()
	r, err := d.SimulateDefault(p)
	if err != nil {
		t.Fatalf("P100 SimulateDefault: %v", err)
	}
	if r.PowerWatts < 100 || r.PowerWatts > 350 {
		t.Errorf("P100 default power = %.1f W, out of plausible envelope", r.PowerWatts)
	}
	// P100 memory clock is fixed: only one ladder entry.
	if got := len(d.Ladder.MemClocks()); got != 1 {
		t.Errorf("P100 has %d memory clocks, want 1", got)
	}
}

func TestIntensityBounds(t *testing.T) {
	d := TitanX()
	var hot clkernel.Counts
	hot.Ops[clkernel.OpSpecial] = 100
	var cold clkernel.Counts
	cold.Ops[clkernel.OpOther] = 100
	ih := d.intensity(hot)
	ic := d.intensity(cold)
	if ih <= ic {
		t.Errorf("special-function intensity %v not above control intensity %v", ih, ic)
	}
	if ih > 1.5 || ic < 0.5 {
		t.Errorf("intensity out of [0.5, 1.5]: %v, %v", ih, ic)
	}
	if d.intensity(clkernel.Counts{}) != 1 {
		t.Error("empty counts intensity != 1")
	}
}
