// Package gpu implements a deterministic analytical GPU device model used as
// the measurement substrate in place of the paper's physical NVIDIA GPUs.
//
// The model reproduces the empirical laws the paper's predictive models are
// built on (Sections 1.1 and 3.4):
//
//   - Execution time is the (smoothed) maximum of a compute phase, whose
//     duration scales inversely with the core clock, and a memory phase,
//     whose duration scales inversely with the memory clock's bandwidth.
//     Compute-bound kernels therefore speed up linearly with core frequency
//     while memory-bound kernels are insensitive to it.
//   - Board power is the sum of constant power, leakage growing with the
//     core voltage, core dynamic power C·V(f)²·f scaled by utilization and
//     instruction-mix intensity, and memory power growing with the memory
//     clock. The supply voltage V(f) is flat up to a floor frequency and
//     rises linearly to the maximum boost voltage, which produces the
//     paper's parabolic normalized-energy curves with an interior minimum.
//
// All outputs are exactly reproducible: the device model itself is pure;
// measurement noise is added (deterministically) by internal/measure.
package gpu

import (
	"fmt"
	"math"

	"repro/internal/clkernel"
	"repro/internal/freq"
)

// Device is an analytical GPU model bound to a frequency ladder.
type Device struct {
	// Name identifies the modeled board.
	Name string
	// Ladder is the supported frequency configuration space.
	Ladder *freq.Ladder

	// SMs is the number of streaming multiprocessors.
	SMs int
	// Occupancy is the default fraction of peak issue throughput achieved.
	Occupancy float64

	// Throughput holds per-SM per-cycle issue throughput for each
	// instruction class (operations per cycle per SM).
	Throughput [clkernel.NumOpClasses]float64
	// EnergyWeight holds the per-class relative energy cost of one
	// operation, used to derive the instruction-mix intensity factor.
	EnergyWeight [clkernel.NumOpClasses]float64

	// GlobalBytesPerCycle is DRAM bandwidth per memory-clock MHz·1e6
	// (bytes transferred per memory clock cycle at full efficiency).
	GlobalBytesPerCycle float64
	// MemBWExp is the exponent of the delivered-bandwidth power law:
	// BW(f) = BW(fmax) · (f/fmax)^MemBWExp. Real boards deliver
	// sub-linear bandwidth as the memory clock drops (the controller
	// regains efficiency at lower command rates), which is why the
	// paper's mem-l/mem-L measurements retain ~45%/~31% of peak
	// bandwidth rather than 23%/12%. 1 (or 0) selects a linear law.
	MemBWExp float64
	// LocalBytesPerCycle is shared/local memory bandwidth per SM per core
	// clock cycle.
	LocalBytesPerCycle float64

	// The core voltage curve is piecewise linear: VIdle at or below
	// VIdleMHz, rising to VMin at VFloorMHz (the DVFS floor), then to
	// VMax at VMaxMHz, saturating above. VIdle = 0 disables the idle
	// segment (voltage is flat at VMin below the floor).
	VIdle, VMin, VMax            float64
	VIdleMHz, VFloorMHz, VMaxMHz freq.MHz

	// ConstWatts is frequency-independent board power (fans, VRM, I/O).
	ConstWatts float64
	// LeakPerVolt is static leakage power per volt of core voltage.
	LeakPerVolt float64
	// CoreCapWatts is the effective switched-capacitance coefficient:
	// watts per (V² · GHz) at utilization and intensity 1.
	CoreCapWatts float64
	// CoreIdleFrac is the fraction of core dynamic power drawn even when
	// the core pipeline is stalled on memory (clock tree, schedulers).
	CoreIdleFrac float64
	// MemWattsPerGHz is memory-system power per GHz of memory clock at
	// full utilization; MemIdleFrac is the idle fraction.
	MemWattsPerGHz float64
	MemIdleFrac    float64

	// LaunchOverheadSec is fixed per-launch host/driver overhead.
	LaunchOverheadSec float64
	// OverlapExp smooths max(Tcompute, Tmem); higher = harder max.
	OverlapExp float64
}

// Result reports one simulated kernel execution at one configuration.
type Result struct {
	Config freq.Config
	// TimeSec is the kernel wall time in seconds, PowerWatts the average
	// board power during it, EnergyJ their product.
	TimeSec    float64
	PowerWatts float64
	EnergyJ    float64
	// ComputeSec and MemSec are the phase durations before overlap.
	ComputeSec float64
	MemSec     float64
	// CoreUtil and MemUtil are the utilization factors used for power.
	CoreUtil float64
	MemUtil  float64
}

// KernelProfile is the dynamic execution profile of one kernel launch,
// derived from the kernel's weighted instruction counts and launch geometry.
type KernelProfile struct {
	// Name identifies the kernel (used for deterministic noise seeds).
	Name string
	// Counts are per-work-item weighted instruction counts.
	Counts clkernel.Counts
	// WorkItems is the total global work size of one launch.
	WorkItems int
	// Coalescing in (0,1] is DRAM transfer efficiency: 1 = fully
	// coalesced accesses, lower values inflate effective traffic.
	Coalescing float64
	// CacheHitRate in [0,1) is the fraction of global traffic served by
	// on-chip cache (which scales with core clock instead of DRAM).
	CacheHitRate float64
	// OccupancyScale multiplies the device's default occupancy (1 = no
	// change); low-parallelism kernels use values below 1.
	OccupancyScale float64
}

// normalize applies profile defaults.
func (p KernelProfile) normalize() KernelProfile {
	if p.Coalescing <= 0 || p.Coalescing > 1 {
		p.Coalescing = 1
	}
	if p.CacheHitRate < 0 || p.CacheHitRate >= 1 {
		p.CacheHitRate = 0
	}
	if p.OccupancyScale <= 0 {
		p.OccupancyScale = 1
	}
	if p.WorkItems <= 0 {
		p.WorkItems = 1
	}
	return p
}

// Voltage returns the modeled core supply voltage at the given core clock.
func (d *Device) Voltage(core freq.MHz) float64 {
	switch {
	case core >= d.VMaxMHz:
		return d.VMax
	case core >= d.VFloorMHz:
		t := float64(core-d.VFloorMHz) / float64(d.VMaxMHz-d.VFloorMHz)
		return d.VMin + (d.VMax-d.VMin)*t
	case d.VIdle > 0 && d.VIdleMHz < d.VFloorMHz:
		if core <= d.VIdleMHz {
			return d.VIdle
		}
		t := float64(core-d.VIdleMHz) / float64(d.VFloorMHz-d.VIdleMHz)
		return d.VIdle + (d.VMin-d.VIdle)*t
	default:
		return d.VMin
	}
}

// deliveredBandwidth returns DRAM bandwidth in bytes/second at the given
// memory clock, applying the sub-linear power law around the ladder's
// highest clock.
func (d *Device) deliveredBandwidth(mem freq.MHz) float64 {
	peak := d.Ladder.MemClocks()[0]
	peakBW := d.GlobalBytesPerCycle * float64(peak) * 1e6
	exp := d.MemBWExp
	if exp <= 0 {
		exp = 1
	}
	frac := float64(mem) / float64(peak)
	if frac > 1 {
		frac = 1
	}
	return peakBW * math.Pow(frac, exp)
}

// intensity derives the instruction-mix energy-intensity factor in
// [0.5, 1.5] from the per-class energy weights.
func (d *Device) intensity(c clkernel.Counts) float64 {
	total, weighted := 0.0, 0.0
	for i := range c.Ops {
		total += c.Ops[i]
		weighted += c.Ops[i] * d.EnergyWeight[i]
	}
	if total <= 0 {
		return 1
	}
	in := weighted / total
	return math.Min(1.5, math.Max(0.5, in))
}

// computeCyclesPerItem returns the issue cycles one work-item needs.
func (d *Device) computeCyclesPerItem(p KernelProfile) float64 {
	cyc := 0.0
	for i, n := range p.Counts.Ops {
		if thr := d.Throughput[i]; thr > 0 {
			cyc += n / thr
		}
	}
	// Shared/local memory bandwidth cost (beyond issue cost).
	if d.LocalBytesPerCycle > 0 {
		cyc += p.Counts.LocalBytes / d.LocalBytesPerCycle
	}
	// Cache-served global traffic consumes core-clock cycles too.
	if d.GlobalBytesPerCycle > 0 && p.CacheHitRate > 0 {
		cachedBytes := p.Counts.GlobalBytes * p.CacheHitRate
		cyc += cachedBytes / (d.LocalBytesPerCycle * 2) // L2 is ~2x shared BW
	}
	return cyc
}

// Simulate runs the analytical model for one kernel launch at the requested
// configuration. The configuration is clamped by the device ladder (the
// Titan X >1202 MHz quirk) before evaluation; it returns an error if the
// memory clock is not supported at all.
func (d *Device) Simulate(p KernelProfile, cfg freq.Config) (Result, error) {
	p = p.normalize()
	cfg = d.Ladder.Clamp(cfg)
	if len(d.Ladder.CoreClocks(cfg.Mem)) == 0 {
		return Result{}, fmt.Errorf("gpu: %s: unsupported memory clock %d MHz", d.Name, cfg.Mem)
	}

	fCoreHz := float64(cfg.Core) * 1e6
	fMemHz := float64(cfg.Mem) * 1e6

	// --- Time model ---
	occ := d.Occupancy * p.OccupancyScale
	if occ > 1 {
		occ = 1
	}
	cyc := d.computeCyclesPerItem(p)
	computeSec := float64(p.WorkItems) * cyc / (float64(d.SMs) * occ) / fCoreHz

	dramBytes := p.Counts.GlobalBytes * float64(p.WorkItems) * (1 - p.CacheHitRate) / p.Coalescing
	memSec := 0.0
	if d.GlobalBytesPerCycle > 0 {
		memSec = dramBytes / d.deliveredBandwidth(cfg.Mem)
	}

	// Smoothed max: phases overlap, the longer one dominates.
	exp := d.OverlapExp
	if exp <= 0 {
		exp = 4
	}
	var kernelSec float64
	switch {
	case memSec == 0:
		kernelSec = computeSec
	case computeSec == 0:
		kernelSec = memSec
	default:
		kernelSec = math.Pow(math.Pow(computeSec, exp)+math.Pow(memSec, exp), 1/exp)
	}
	timeSec := kernelSec + d.LaunchOverheadSec

	// --- Power model ---
	v := d.Voltage(cfg.Core)
	coreUtil := 1.0
	memUtil := 1.0
	if kernelSec > 0 {
		coreUtil = computeSec / kernelSec
		memUtil = memSec / kernelSec
	}
	if coreUtil > 1 {
		coreUtil = 1
	}
	if memUtil > 1 {
		memUtil = 1
	}
	intens := d.intensity(p.Counts)

	coreDyn := d.CoreCapWatts * v * v * (fCoreHz / 1e9) *
		(d.CoreIdleFrac + (1-d.CoreIdleFrac)*coreUtil*intens)
	memDyn := d.MemWattsPerGHz * (fMemHz / 1e9) *
		(d.MemIdleFrac + (1-d.MemIdleFrac)*memUtil)
	power := d.ConstWatts + d.LeakPerVolt*v + coreDyn + memDyn

	return Result{
		Config:     cfg,
		TimeSec:    timeSec,
		PowerWatts: power,
		EnergyJ:    power * timeSec,
		ComputeSec: computeSec,
		MemSec:     memSec,
		CoreUtil:   coreUtil,
		MemUtil:    memUtil,
	}, nil
}

// SimulateDefault runs the kernel at the device's default configuration.
func (d *Device) SimulateDefault(p KernelProfile) (Result, error) {
	return d.Simulate(p, d.Ladder.Default())
}
