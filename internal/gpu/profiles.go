package gpu

import (
	"fmt"

	"repro/internal/clkernel"
	"repro/internal/freq"
)

// ByName builds the simulated device with the given profile name: "titanx"
// (also the default for "") or "p100". It is the single name→device
// mapping shared by the cmd binaries.
func ByName(name string) (*Device, error) {
	switch name {
	case "titanx", "":
		return TitanX(), nil
	case "p100":
		return P100(), nil
	}
	return nil, fmt.Errorf("unknown device %q (titanx, p100)", name)
}

// maxwellThroughput returns per-SM per-cycle issue throughput for a
// Maxwell-class SM (GM200): 128 CUDA cores, 32 SFUs, 32 LSUs per SM.
func maxwellThroughput() [clkernel.NumOpClasses]float64 {
	var t [clkernel.NumOpClasses]float64
	t[clkernel.OpIntAdd] = 128
	t[clkernel.OpIntMul] = 32 // XMAD-emulated 32-bit multiply
	t[clkernel.OpIntDiv] = 6  // long emulation sequence
	t[clkernel.OpIntBitwise] = 128
	t[clkernel.OpFloatAdd] = 128
	t[clkernel.OpFloatMul] = 128
	t[clkernel.OpFloatDiv] = 16
	t[clkernel.OpSpecial] = 32
	t[clkernel.OpGlobalAccess] = 32 // LSU issue slots
	t[clkernel.OpLocalAccess] = 32
	t[clkernel.OpOther] = 128
	return t
}

// energyWeights returns the per-class relative energy per operation used by
// the intensity factor. Division and transcendental operations are the most
// expensive; control/other the cheapest.
func energyWeights() [clkernel.NumOpClasses]float64 {
	var w [clkernel.NumOpClasses]float64
	w[clkernel.OpIntAdd] = 0.85
	w[clkernel.OpIntMul] = 1.05
	w[clkernel.OpIntDiv] = 1.30
	w[clkernel.OpIntBitwise] = 0.75
	w[clkernel.OpFloatAdd] = 1.00
	w[clkernel.OpFloatMul] = 1.10
	w[clkernel.OpFloatDiv] = 1.40
	w[clkernel.OpSpecial] = 1.50
	w[clkernel.OpGlobalAccess] = 1.20
	w[clkernel.OpLocalAccess] = 0.90
	w[clkernel.OpOther] = 0.60
	return w
}

// TitanX builds the simulated GTX Titan X (Maxwell) device. Constants are
// calibrated so that (a) compute-bound kernels speed up linearly with core
// clock, (b) normalized energy over core clock is parabolic with its
// minimum near the paper's [885, 987] MHz interval at the default memory
// clock, and (c) the board draws on the order of its 250 W TDP at the
// default configuration under full load.
func TitanX() *Device {
	return &Device{
		Name:      "GTX Titan X (simulated)",
		Ladder:    freq.TitanX(),
		SMs:       24,
		Occupancy: 0.75,

		Throughput:   maxwellThroughput(),
		EnergyWeight: energyWeights(),

		// 384-bit GDDR5: 336 GB/s delivered at 3505 MHz (96 B per
		// memory-clock cycle). Delivered bandwidth follows a sub-linear
		// power law in the memory clock (exponent 0.545), matching the
		// paper's observation that mem-l/mem-L retain ~45%/~31% of peak
		// bandwidth rather than the linear 23%/12%.
		GlobalBytesPerCycle: 96,
		MemBWExp:            0.545,
		LocalBytesPerCycle:  128,

		VIdle: 0.65, VMin: 0.80, VMax: 1.084,
		VIdleMHz: 135, VFloorMHz: 595, VMaxMHz: 1202,

		ConstWatts:     15,
		LeakPerVolt:    48,
		CoreCapWatts:   85,
		CoreIdleFrac:   0.22,
		MemWattsPerGHz: 12.5,
		MemIdleFrac:    0.30,

		LaunchOverheadSec: 6e-6,
		OverlapExp:        4,
	}
}

// P100 builds the simulated Tesla P100 (Pascal) device: 56 SMs (64 cores
// each; throughput numbers below are per-SM), HBM2 with a single 715 MHz
// memory clock, and a fine-grained core ladder.
func P100() *Device {
	t := maxwellThroughput()
	// Pascal GP100 SMs are half-width (64 cores) but there are many more.
	for i := range t {
		t[i] /= 2
	}
	t[clkernel.OpFloatAdd] = 64
	t[clkernel.OpFloatMul] = 64
	return &Device{
		Name:      "Tesla P100 (simulated)",
		Ladder:    freq.P100(),
		SMs:       56,
		Occupancy: 0.75,

		Throughput:   t,
		EnergyWeight: energyWeights(),

		// HBM2: 732 GB/s at 715 MHz -> ~1024 B per memory-clock cycle.
		GlobalBytesPerCycle: 1024,
		LocalBytesPerCycle:  64,

		VIdle: 0.70, VMin: 0.80, VMax: 1.10,
		VIdleMHz: 544, VFloorMHz: 810, VMaxMHz: 1328,

		ConstWatts:     35,
		LeakPerVolt:    48,
		CoreCapWatts:   140,
		CoreIdleFrac:   0.22,
		MemWattsPerGHz: 45, // HBM2 stack power per GHz
		MemIdleFrac:    0.35,

		LaunchOverheadSec: 5e-6,
		OverlapExp:        4,
	}
}
