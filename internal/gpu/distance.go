package gpu

import (
	"math"

	"repro/internal/clkernel"
	"repro/internal/freq"
)

// ProfileDistance is a symmetric dissimilarity in [0, 1] between two
// device profiles, used by the fleet layer to pick the nearest donor model
// when bootstrapping a new GPU type from another device's snapshot. It is
// the mean relative difference over the characteristics that determine how
// well a model transfers (the paper's titanx↔p100 portability result says
// snapshots are useful warm starts across devices; how useful tracks how
// similar the devices are): aggregate compute throughput, delivered memory
// bandwidth, the shape of the DVFS space, and the power-model scale.
// Identical profiles are at distance 0.
func ProfileDistance(a, b *Device) float64 {
	fa, fb := profileFeatures(a), profileFeatures(b)
	var sum float64
	for i := range fa {
		sum += relDiff(fa[i], fb[i])
	}
	return sum / float64(len(fa))
}

// profileFeatures reduces a device to the scalar characteristics the
// distance compares.
func profileFeatures(d *Device) [6]float64 {
	peakCore := peakClock(d.Ladder.CoreClocks(d.Ladder.Default().Mem))
	peakMem := peakClock(d.Ladder.MemClocks())
	return [6]float64{
		// Aggregate FP32 issue rate at the top core clock (ops/s scale).
		float64(d.SMs) * d.Throughput[clkernel.OpFloatAdd] * float64(peakCore),
		// Peak delivered DRAM bandwidth (bytes/s scale).
		d.GlobalBytesPerCycle * float64(peakMem),
		// DVFS space: how many distinct memory clocks and how wide the
		// core-clock range is (what the models must generalize over).
		float64(len(d.Ladder.MemClocks())),
		float64(peakCore - d.VFloorMHz),
		// Power-model scale: board power at the top configuration drives
		// the normalized-energy curve the energy model learns.
		d.ConstWatts + d.LeakPerVolt*d.VMax + d.CoreCapWatts,
		d.MemWattsPerGHz * float64(peakMem) / 1000,
	}
}

// peakClock returns the highest clock in a ladder slice (0 for empty).
func peakClock(cs []freq.MHz) freq.MHz {
	var m freq.MHz
	for _, c := range cs {
		if c > m {
			m = c
		}
	}
	return m
}

// relDiff is |x−y| / max(|x|,|y|), the per-feature relative difference in
// [0, 1]; two zeros are identical (0).
func relDiff(x, y float64) float64 {
	den := math.Max(math.Abs(x), math.Abs(y))
	if den == 0 {
		return 0
	}
	return math.Abs(x-y) / den
}
