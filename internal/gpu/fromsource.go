package gpu

import (
	"fmt"

	"repro/internal/clkernel"
)

// ProfileFromSource parses OpenCL source and derives a kernel execution
// profile from the weighted instruction counts of the named kernel (empty =
// first kernel). Memory-behaviour fields keep their defaults (fully
// coalesced, no cache reuse); callers can adjust them on the result.
func ProfileFromSource(src, kernelName string, workItems int) (KernelProfile, error) {
	prog, err := clkernel.Parse(src)
	if err != nil {
		return KernelProfile{}, err
	}
	k := prog.Kernels[0]
	if kernelName != "" {
		k = prog.Kernel(kernelName)
		if k == nil {
			return KernelProfile{}, fmt.Errorf("gpu: kernel %q not found", kernelName)
		}
	}
	return KernelProfile{
		Name:      k.Name,
		Counts:    clkernel.Count(k, prog, clkernel.Weighted),
		WorkItems: workItems,
	}, nil
}
