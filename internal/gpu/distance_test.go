package gpu

import "testing"

func TestProfileDistance(t *testing.T) {
	titanx, err := ByName("titanx")
	if err != nil {
		t.Fatal(err)
	}
	p100, err := ByName("p100")
	if err != nil {
		t.Fatal(err)
	}

	if d := ProfileDistance(titanx, titanx); d != 0 {
		t.Fatalf("distance(titanx, titanx) = %g, want 0", d)
	}
	if d := ProfileDistance(p100, p100); d != 0 {
		t.Fatalf("distance(p100, p100) = %g, want 0", d)
	}

	ab, ba := ProfileDistance(titanx, p100), ProfileDistance(p100, titanx)
	if ab != ba {
		t.Fatalf("distance is not symmetric: %g vs %g", ab, ba)
	}
	if ab <= 0 || ab > 1 {
		t.Fatalf("distance(titanx, p100) = %g, want in (0, 1]", ab)
	}
}
