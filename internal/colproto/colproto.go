// Package colproto defines the columnar wire protocol of the batch
// prediction endpoint (POST /predict/batch): a request carrying one flat
// array per static code feature instead of an array of per-kernel objects,
// and a response carrying every kernel's Pareto set as offset-indexed flat
// columns. The layout exists for the serving hot path — flat arrays decode
// into reusable buffers, encode with handwritten appenders, and never
// force per-kernel allocations — but it is also the natural shape for
// callers that already hold feature matrices (schedulers, batch sweeps).
//
// Both messages exist in two framings that carry identical information:
//
//   - JSON, with the field names documented in docs/API.md. Feature
//     columns appear in features.Names order.
//   - A length-prefixed little-endian binary framing, selected by
//     Content-Type application/x-gpufreq-columns. Requests start with the
//     magic "GFC1", responses with "GFF1".
//
// The binary framings are byte-exact functions of their content, so a
// decode/encode round trip is bit-identical (pinned by the package tests).
package colproto

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/freq"
)

// MagicColumns and MagicFronts are the 4-byte magics opening the binary
// request and response framings.
const (
	MagicColumns = "GFC1"
	MagicFronts  = "GFF1"
)

// Columns is the columnar batch request: n kernels as one flat array per
// static code feature. Feature columns are ordered exactly as
// features.Names; all columns must have equal length.
type Columns struct {
	// Names optionally labels the kernels, index-aligned with the columns.
	// Empty or nil means unlabeled. Not carried by the binary framing.
	Names []string `json:"names,omitempty"`
	// Columns holds one array per static feature, in features.Names order
	// (so Columns[0] is every kernel's int_add fraction, and so on).
	Columns [][]float64 `json:"columns"`
}

// Reset empties the request in place, keeping column capacity for reuse.
// The outer slice is rebuilt whenever its length is not features.StaticDim:
// a pooled Columns may come back from a rejected JSON request that
// unmarshaled the wrong column count into it, and every reuse path
// (ParseBinary, Append) indexes all StaticDim columns unconditionally.
func (c *Columns) Reset() {
	c.Names = c.Names[:0]
	if len(c.Columns) != features.StaticDim {
		c.Columns = make([][]float64, features.StaticDim)
	}
	for i := range c.Columns {
		c.Columns[i] = c.Columns[i][:0]
	}
}

// Append adds one kernel to the request, transposing its static feature
// vector into the columns.
func (c *Columns) Append(name string, st features.Static) {
	if len(c.Columns) != features.StaticDim {
		c.Columns = make([][]float64, features.StaticDim)
	}
	c.Names = append(c.Names, name)
	for i := 0; i < features.StaticDim; i++ {
		c.Columns[i] = append(c.Columns[i], st[i])
	}
}

// Len returns the number of kernels in the request (the column length).
func (c *Columns) Len() int {
	if len(c.Columns) == 0 {
		return 0
	}
	return len(c.Columns[0])
}

// Validate checks the structural invariants: exactly features.StaticDim
// columns, all of equal non-zero length, and Names (when present) aligned
// with them.
func (c *Columns) Validate() error {
	if len(c.Columns) != features.StaticDim {
		return fmt.Errorf("colproto: %d feature columns, want %d (%v)",
			len(c.Columns), features.StaticDim, features.Names)
	}
	n := len(c.Columns[0])
	for i, col := range c.Columns {
		if len(col) != n {
			return fmt.Errorf("colproto: column %q has %d entries, column %q has %d",
				features.Names[i], len(col), features.Names[0], n)
		}
	}
	if n == 0 {
		return fmt.Errorf("colproto: empty batch")
	}
	if len(c.Names) != 0 && len(c.Names) != n {
		return fmt.Errorf("colproto: %d names for %d kernels", len(c.Names), n)
	}
	return nil
}

// StaticsInto transposes the columns back into per-kernel static feature
// vectors, appending to dst (pass dst[:0] to reuse its backing). Call
// Validate first; StaticsInto assumes a well-formed request.
func (c *Columns) StaticsInto(dst []features.Static) []features.Static {
	n := c.Len()
	for k := 0; k < n; k++ {
		var st features.Static
		for i := 0; i < features.StaticDim; i++ {
			st[i] = c.Columns[i][k]
		}
		dst = append(dst, st)
	}
	return dst
}

// AppendBinary appends the request's binary framing to dst and returns the
// extended slice: MagicColumns, a uint32 kernel count, then the
// features.StaticDim float64 columns back to back. Names are not carried.
func (c *Columns) AppendBinary(dst []byte) []byte {
	dst = append(dst, MagicColumns...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(c.Len()))
	for _, col := range c.Columns {
		for _, v := range col {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst
}

// ParseBinary decodes a binary request into c, reusing its column backing
// (Reset semantics). The frame must be complete and exactly sized.
func (c *Columns) ParseBinary(data []byte) error {
	if len(data) < len(MagicColumns)+4 || string(data[:4]) != MagicColumns {
		return fmt.Errorf("colproto: not a binary columns frame")
	}
	n := int(binary.LittleEndian.Uint32(data[4:8]))
	want := 8 + features.StaticDim*n*8
	if len(data) != want {
		return fmt.Errorf("colproto: columns frame is %d bytes, want %d for %d kernels",
			len(data), want, n)
	}
	c.Reset()
	off := 8
	for i := 0; i < features.StaticDim; i++ {
		col := c.Columns[i]
		for k := 0; k < n; k++ {
			col = append(col, math.Float64frombits(binary.LittleEndian.Uint64(data[off:off+8])))
			off += 8
		}
		c.Columns[i] = col
	}
	return nil
}

// Fronts is the columnar batch response: every kernel's Pareto set
// flattened into shared columns, delimited by the offsets array. Kernel
// i's points occupy the half-open index range [Offsets[i], Offsets[i+1])
// of each column.
type Fronts struct {
	// Version is the model snapshot version that produced the predictions.
	Version string `json:"version"`
	// Count is the number of kernels (len(Offsets) - 1).
	Count int `json:"count"`
	// Offsets delimits the per-kernel ranges; len Count+1, starting at 0.
	Offsets []int `json:"offsets"`
	// Mem and Core are the configuration columns in MHz.
	Mem  []int `json:"mem"`
	Core []int `json:"core"`
	// Speedup and Energy are the predicted objective columns.
	Speedup []float64 `json:"speedup"`
	Energy  []float64 `json:"energy"`
	// MemL flags the rows that are the appended mem-L heuristic point.
	MemL []bool `json:"mem_l"`
}

// Reset empties the response in place, keeping capacity for reuse.
func (f *Fronts) Reset() {
	f.Version = ""
	f.Count = 0
	f.Offsets = f.Offsets[:0]
	f.Mem = f.Mem[:0]
	f.Core = f.Core[:0]
	f.Speedup = f.Speedup[:0]
	f.Energy = f.Energy[:0]
	f.MemL = f.MemL[:0]
}

// AppendFront adds one kernel's Pareto set to the response columns.
func (f *Fronts) AppendFront(preds []core.Prediction) {
	if len(f.Offsets) == 0 {
		f.Offsets = append(f.Offsets, 0)
	}
	for _, p := range preds {
		f.Mem = append(f.Mem, int(p.Config.Mem))
		f.Core = append(f.Core, int(p.Config.Core))
		f.Speedup = append(f.Speedup, p.Speedup)
		f.Energy = append(f.Energy, p.NormEnergy)
		f.MemL = append(f.MemL, p.MemLHeuristic)
	}
	f.Offsets = append(f.Offsets, len(f.Mem))
	f.Count++
}

// Kernel materializes kernel i's Pareto set from the columns — the
// client-side convenience accessor (it allocates; the serving path never
// calls it).
func (f *Fronts) Kernel(i int) []core.Prediction {
	lo, hi := f.Offsets[i], f.Offsets[i+1]
	out := make([]core.Prediction, 0, hi-lo)
	for j := lo; j < hi; j++ {
		out = append(out, core.Prediction{
			Config:        freq.Config{Mem: freq.MHz(f.Mem[j]), Core: freq.MHz(f.Core[j])},
			Speedup:       f.Speedup[j],
			NormEnergy:    f.Energy[j],
			MemLHeuristic: f.MemL[j],
		})
	}
	return out
}

// AppendJSON appends the response's JSON encoding to dst and returns the
// extended slice — the handwritten encoder the zero-alloc serve path uses
// instead of reflection-based marshaling. The output unmarshals back into
// an equal Fronts via encoding/json (pinned by the package tests); float
// formatting is strconv's shortest round-trip form, which can differ
// textually from encoding/json's for extreme exponents while decoding to
// the same value. Non-finite floats are encoded as null (see
// appendFloatArray) rather than producing invalid JSON.
func (f *Fronts) AppendJSON(dst []byte) []byte {
	dst = append(dst, `{"version":`...)
	dst = strconv.AppendQuote(dst, f.Version)
	dst = append(dst, `,"count":`...)
	dst = strconv.AppendInt(dst, int64(f.Count), 10)
	dst = append(dst, `,"offsets":`...)
	dst = appendIntArray(dst, f.Offsets)
	dst = append(dst, `,"mem":`...)
	dst = appendIntArray(dst, f.Mem)
	dst = append(dst, `,"core":`...)
	dst = appendIntArray(dst, f.Core)
	dst = append(dst, `,"speedup":`...)
	dst = appendFloatArray(dst, f.Speedup)
	dst = append(dst, `,"energy":`...)
	dst = appendFloatArray(dst, f.Energy)
	dst = append(dst, `,"mem_l":`...)
	dst = appendBoolArray(dst, f.MemL)
	return append(dst, '}')
}

// AppendBinary appends the response's binary framing to dst: MagicFronts,
// a uint16-length-prefixed version string, uint32 kernel and total point
// counts, the Count+1 uint32 offsets, the four float64/int32 point columns,
// and the mem-L flag bytes.
func (f *Fronts) AppendBinary(dst []byte) []byte {
	dst = append(dst, MagicFronts...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(f.Version)))
	dst = append(dst, f.Version...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f.Count))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Mem)))
	for _, o := range f.Offsets {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(o))
	}
	for _, v := range f.Mem {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(v)))
	}
	for _, v := range f.Core {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(v)))
	}
	for _, v := range f.Speedup {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	for _, v := range f.Energy {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	for _, b := range f.MemL {
		if b {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// ParseBinary decodes a binary response into f, reusing its column backing
// (Reset semantics). The frame must be complete and exactly sized.
func (f *Fronts) ParseBinary(data []byte) error {
	if len(data) < len(MagicFronts)+2 || string(data[:4]) != MagicFronts {
		return fmt.Errorf("colproto: not a binary fronts frame")
	}
	off := 4
	vlen := int(binary.LittleEndian.Uint16(data[off : off+2]))
	off += 2
	if len(data) < off+vlen+8 {
		return fmt.Errorf("colproto: truncated fronts frame")
	}
	version := string(data[off : off+vlen])
	off += vlen
	count := int(binary.LittleEndian.Uint32(data[off : off+4]))
	total := int(binary.LittleEndian.Uint32(data[off+4 : off+8]))
	off += 8
	want := off + (count+1)*4 + total*(4+4+8+8+1)
	if len(data) != want {
		return fmt.Errorf("colproto: fronts frame is %d bytes, want %d for %d kernels / %d points",
			len(data), want, count, total)
	}
	f.Reset()
	f.Version = version
	f.Count = count
	for i := 0; i <= count; i++ {
		f.Offsets = append(f.Offsets, int(binary.LittleEndian.Uint32(data[off:off+4])))
		off += 4
	}
	for i := 0; i < total; i++ {
		f.Mem = append(f.Mem, int(int32(binary.LittleEndian.Uint32(data[off:off+4]))))
		off += 4
	}
	for i := 0; i < total; i++ {
		f.Core = append(f.Core, int(int32(binary.LittleEndian.Uint32(data[off:off+4]))))
		off += 4
	}
	for i := 0; i < total; i++ {
		f.Speedup = append(f.Speedup, math.Float64frombits(binary.LittleEndian.Uint64(data[off:off+8])))
		off += 8
	}
	for i := 0; i < total; i++ {
		f.Energy = append(f.Energy, math.Float64frombits(binary.LittleEndian.Uint64(data[off:off+8])))
		off += 8
	}
	for i := 0; i < total; i++ {
		f.MemL = append(f.MemL, data[off] != 0)
		off++
	}
	return nil
}

// appendIntArray appends a JSON array of integers.
func appendIntArray(dst []byte, vs []int) []byte {
	if vs == nil {
		return append(dst, "null"...)
	}
	dst = append(dst, '[')
	for i, v := range vs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, int64(v), 10)
	}
	return append(dst, ']')
}

// appendFloatArray appends a JSON array of floats in encoding/json's
// shortest round-trip format. NaN and ±Inf have no JSON representation
// (strconv would emit literals no JSON parser accepts), so non-finite
// values become null — the document stays parseable even if a model ever
// produces a non-finite prediction; encoding/json decodes the null back
// as 0.
func appendFloatArray(dst []byte, vs []float64) []byte {
	if vs == nil {
		return append(dst, "null"...)
	}
	dst = append(dst, '[')
	for i, v := range vs {
		if i > 0 {
			dst = append(dst, ',')
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			dst = append(dst, "null"...)
			continue
		}
		dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
	}
	return append(dst, ']')
}

// appendBoolArray appends a JSON array of booleans.
func appendBoolArray(dst []byte, vs []bool) []byte {
	if vs == nil {
		return append(dst, "null"...)
	}
	dst = append(dst, '[')
	for i, v := range vs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendBool(dst, v)
	}
	return append(dst, ']')
}
