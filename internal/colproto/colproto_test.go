package colproto

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/freq"
)

func sampleStatics(n int) []features.Static {
	out := make([]features.Static, n)
	for k := range out {
		for i := 0; i < features.StaticDim; i++ {
			out[k][i] = float64(k*features.StaticDim+i) / 97.0
		}
	}
	return out
}

func sampleFronts() *Fronts {
	f := &Fronts{Version: "v0042"}
	f.AppendFront([]core.Prediction{
		{Config: freq.Config{Mem: 3505, Core: 595}, Speedup: 0.51, NormEnergy: 0.62},
		{Config: freq.Config{Mem: 3505, Core: 1189}, Speedup: 1.0, NormEnergy: 1.0},
		{Config: freq.Config{Mem: 810, Core: 1189}, Speedup: 0.7, NormEnergy: 0.8, MemLHeuristic: true},
	})
	f.AppendFront(nil) // a kernel with an empty front stays representable
	f.AppendFront([]core.Prediction{
		{Config: freq.Config{Mem: 810, Core: 405}, Speedup: 0.25, NormEnergy: 0.31},
	})
	return f
}

func TestColumnsRoundTripJSON(t *testing.T) {
	var c Columns
	c.Reset()
	for i, st := range sampleStatics(5) {
		c.Append(string(rune('a'+i)), st)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	doc, err := json.Marshal(&c)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Columns
	if err := json.Unmarshal(doc, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(back.StaticsInto(nil), c.StaticsInto(nil)) {
		t.Fatal("JSON round trip changed the feature rows")
	}
	if !reflect.DeepEqual(back.Names, c.Names) {
		t.Fatalf("JSON round trip changed names: %v != %v", back.Names, c.Names)
	}
}

func TestColumnsRoundTripBinary(t *testing.T) {
	var c Columns
	c.Reset()
	for _, st := range sampleStatics(7) {
		c.Append("", st)
	}
	frame := c.AppendBinary(nil)
	var back Columns
	if err := back.ParseBinary(frame); err != nil {
		t.Fatalf("ParseBinary: %v", err)
	}
	if !reflect.DeepEqual(back.StaticsInto(nil), c.StaticsInto(nil)) {
		t.Fatal("binary round trip changed the feature rows")
	}
	// Re-encoding is bit-identical.
	if again := back.AppendBinary(nil); !bytes.Equal(again, frame) {
		t.Fatal("binary re-encode is not bit-identical")
	}
	// Truncated and corrupt frames are rejected.
	if err := back.ParseBinary(frame[:len(frame)-1]); err == nil {
		t.Fatal("truncated frame accepted")
	}
	bad := append([]byte("XXXX"), frame[4:]...)
	if err := back.ParseBinary(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestColumnsValidate(t *testing.T) {
	var c Columns
	c.Reset()
	if err := c.Validate(); err == nil {
		t.Fatal("empty batch accepted")
	}
	c.Append("k", features.Static{})
	c.Columns[3] = append(c.Columns[3], 0.5) // ragged column
	if err := c.Validate(); err == nil {
		t.Fatal("ragged columns accepted")
	}
	c.Reset()
	c.Append("k", features.Static{})
	c.Names = append(c.Names, "extra")
	if err := c.Validate(); err == nil {
		t.Fatal("misaligned names accepted")
	}
	c.Columns = c.Columns[:4]
	if err := c.Validate(); err == nil {
		t.Fatal("missing columns accepted")
	}
}

func TestFrontsAppendJSONRoundTrips(t *testing.T) {
	f := sampleFronts()
	doc := f.AppendJSON(nil)
	if !json.Valid(doc) {
		t.Fatalf("AppendJSON output is not valid JSON: %s", doc)
	}
	var back Fronts
	if err := json.Unmarshal(doc, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(&back, f) {
		t.Fatalf("JSON round trip changed the response:\n got %+v\nwant %+v", &back, f)
	}
	// The per-kernel accessor slices the columns correctly.
	if got := back.Kernel(0); len(got) != 3 || !got[2].MemLHeuristic {
		t.Fatalf("Kernel(0) = %+v", got)
	}
	if got := back.Kernel(1); len(got) != 0 {
		t.Fatalf("Kernel(1) = %+v, want empty", got)
	}
}

func TestFrontsRoundTripBinary(t *testing.T) {
	f := sampleFronts()
	frame := f.AppendBinary(nil)
	var back Fronts
	if err := back.ParseBinary(frame); err != nil {
		t.Fatalf("ParseBinary: %v", err)
	}
	if !reflect.DeepEqual(&back, f) {
		t.Fatalf("binary round trip changed the response:\n got %+v\nwant %+v", &back, f)
	}
	if again := back.AppendBinary(nil); !bytes.Equal(again, frame) {
		t.Fatal("binary re-encode is not bit-identical")
	}
	if err := back.ParseBinary(frame[:9]); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

// TestAppendAllocs pins the allocation-free encode contract: appending
// into pre-grown buffers performs zero allocations.
func TestAppendAllocs(t *testing.T) {
	f := sampleFronts()
	jsonBuf := f.AppendJSON(nil)
	binBuf := f.AppendBinary(nil)
	if allocs := testing.AllocsPerRun(100, func() {
		jsonBuf = f.AppendJSON(jsonBuf[:0])
	}); allocs != 0 {
		t.Fatalf("AppendJSON allocates %.1f times per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		binBuf = f.AppendBinary(binBuf[:0])
	}); allocs != 0 {
		t.Fatalf("AppendBinary allocates %.1f times per run, want 0", allocs)
	}
}

// TestResetRepairsWrongColumnCount is the pooled-reuse regression: a
// Columns that a rejected JSON request left with the wrong number of
// columns must be rebuilt by Reset, so the next binary parse on the same
// value neither panics (too few columns) nor fails Validate (too many).
func TestResetRepairsWrongColumnCount(t *testing.T) {
	var want Columns
	want.Reset()
	for _, st := range sampleStatics(2) {
		want.Append("", st)
	}
	frame := want.AppendBinary(nil)

	for _, bad := range []string{
		`{"columns":[[1],[2]]}`, // fewer columns than StaticDim
		`{"columns":[[1],[1],[1],[1],[1],[1],[1],[1],[1],[1],[1],[1]]}`, // more
	} {
		var c Columns
		if err := json.Unmarshal([]byte(bad), &c); err != nil {
			t.Fatal(err)
		}
		if c.Validate() == nil {
			t.Fatalf("wrong-count request %s validated", bad)
		}
		if err := c.ParseBinary(frame); err != nil {
			t.Fatalf("binary parse after reusing %s: %v", bad, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("reused request invalid after %s: %v", bad, err)
		}
		if !reflect.DeepEqual(c.Columns, want.Columns) {
			t.Fatalf("reused parse after %s decoded wrong columns:\n got %v\nwant %v",
				bad, c.Columns, want.Columns)
		}
	}
}

// TestAppendJSONNonFinite pins that non-finite predictions still encode
// to valid JSON: NaN/±Inf become null (decoded back as 0 by
// encoding/json) instead of bare literals no parser accepts.
func TestAppendJSONNonFinite(t *testing.T) {
	f := &Fronts{Version: "v1"}
	f.AppendFront([]core.Prediction{
		{Config: freq.Config{Mem: 810, Core: 405}, Speedup: math.NaN(), NormEnergy: math.Inf(1)},
		{Config: freq.Config{Mem: 810, Core: 595}, Speedup: 0.5, NormEnergy: math.Inf(-1)},
	})
	doc := f.AppendJSON(nil)
	if !json.Valid(doc) {
		t.Fatalf("non-finite AppendJSON output is not valid JSON: %s", doc)
	}
	var back Fronts
	if err := json.Unmarshal(doc, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.Speedup[0] != 0 || back.Energy[0] != 0 || back.Energy[1] != 0 {
		t.Fatalf("non-finite values did not decode as 0: %+v", back)
	}
	if back.Speedup[1] != 0.5 {
		t.Fatalf("finite neighbor corrupted: %+v", back)
	}
}
