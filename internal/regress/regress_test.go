package regress

import (
	"math"
	"testing"
	"testing/quick"
)

type det struct{ s uint64 }

func (d *det) next() float64 {
	d.s = d.s*6364136223846793005 + 1442695040888963407
	return float64(d.s>>11) / float64(1<<53)
}

func linearData(n int, seed uint64) ([][]float64, []float64) {
	r := &det{s: seed}
	var xs [][]float64
	var ys []float64
	for i := 0; i < n; i++ {
		a, b := r.next(), r.next()
		xs = append(xs, []float64{a, b})
		ys = append(ys, 2+3*a-1.5*b)
	}
	return xs, ys
}

func TestOLSExactRecovery(t *testing.T) {
	xs, ys := linearData(50, 1)
	m, err := OLS(xs, ys)
	if err != nil {
		t.Fatalf("OLS: %v", err)
	}
	if math.Abs(m.Intercept-2) > 1e-6 {
		t.Errorf("intercept = %v, want 2", m.Intercept)
	}
	if math.Abs(m.Weights[0]-3) > 1e-6 || math.Abs(m.Weights[1]+1.5) > 1e-6 {
		t.Errorf("weights = %v, want [3, -1.5]", m.Weights)
	}
	if rmse := RMSE(predictAll(m, xs), ys); rmse > 1e-6 {
		t.Errorf("RMSE = %v, want ~0", rmse)
	}
}

func TestRidgeShrinks(t *testing.T) {
	xs, ys := linearData(50, 2)
	ols, err := OLS(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	ridge, err := Ridge(xs, ys, 50)
	if err != nil {
		t.Fatal(err)
	}
	if norm(ridge.Weights) >= norm(ols.Weights) {
		t.Errorf("ridge weights ‖%v‖ not smaller than OLS ‖%v‖", ridge.Weights, ols.Weights)
	}
}

func TestLassoSparsity(t *testing.T) {
	// Third feature is pure noise: LASSO must zero it out.
	r := &det{s: 3}
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		a, b, c := r.next(), r.next(), r.next()
		xs = append(xs, []float64{a, b, c})
		ys = append(ys, 1+4*a-2*b)
		_ = c
	}
	m, err := Lasso(xs, ys, 0.05, 2000)
	if err != nil {
		t.Fatalf("Lasso: %v", err)
	}
	if m.Weights[2] != 0 {
		t.Errorf("noise weight = %v, want exactly 0", m.Weights[2])
	}
	if m.Weights[0] < 2 || m.Weights[1] > -0.5 {
		t.Errorf("signal weights %v too shrunk", m.Weights)
	}
}

func TestLassoHeavyPenaltyZeroesAll(t *testing.T) {
	xs, ys := linearData(50, 4)
	m, err := Lasso(xs, ys, 1e6, 100)
	if err != nil {
		t.Fatal(err)
	}
	for j, w := range m.Weights {
		if w != 0 {
			t.Errorf("weight %d = %v, want 0 under huge penalty", j, w)
		}
	}
	// Intercept should then be the target mean.
	mean := 0.0
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	if math.Abs(m.Intercept-mean) > 1e-9 {
		t.Errorf("intercept = %v, want mean %v", m.Intercept, mean)
	}
}

func TestPolynomialFitsParabola(t *testing.T) {
	var xs [][]float64
	var ys []float64
	for i := 0; i <= 30; i++ {
		x := float64(i) / 30
		xs = append(xs, []float64{x})
		ys = append(ys, 1.5*(x-0.7)*(x-0.7)+0.8)
	}
	lin, err := OLS(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	quad, err := Polynomial(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r := RMSE(predictAll(quad, xs), ys); r > 1e-6 {
		t.Errorf("degree-2 RMSE = %v, want ~0", r)
	}
	if RMSE(predictAll(quad, xs), ys) >= RMSE(predictAll(lin, xs), ys) {
		t.Error("quadratic fit not better than linear on a parabola")
	}
}

func TestPolynomialCrossTerms(t *testing.T) {
	// y = x0*x1 requires the pairwise product feature.
	r := &det{s: 9}
	var xs [][]float64
	var ys []float64
	for i := 0; i < 100; i++ {
		a, b := r.next(), r.next()
		xs = append(xs, []float64{a, b})
		ys = append(ys, a*b)
	}
	m, err := Polynomial(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rmse := RMSE(predictAll(m, xs), ys); rmse > 1e-6 {
		t.Errorf("cross-term RMSE = %v, want ~0", rmse)
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := OLS(nil, nil); err == nil {
		t.Error("OLS empty: expected error")
	}
	if _, err := OLS([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("OLS mismatched: expected error")
	}
	if _, err := OLS([][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Error("OLS ragged: expected error")
	}
	if _, err := Ridge([][]float64{{1}}, []float64{1}, -1); err == nil {
		t.Error("Ridge negative lambda: expected error")
	}
	if _, err := Lasso([][]float64{{1}}, []float64{1}, -1, 10); err == nil {
		t.Error("Lasso negative lambda: expected error")
	}
	if _, err := Polynomial([][]float64{{1}}, []float64{1}, 0); err == nil {
		t.Error("Polynomial degree 0: expected error")
	}
	if _, err := OLS([][]float64{{}}, []float64{1}); err == nil {
		t.Error("OLS zero-dim: expected error")
	}
}

func TestConstantColumnHandled(t *testing.T) {
	xs := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	ys := []float64{2, 4, 6, 8}
	m, err := OLS(xs, ys)
	if err != nil {
		t.Fatalf("OLS with constant column: %v", err)
	}
	if math.Abs(m.Predict([]float64{5, 5})-10) > 1e-6 {
		t.Errorf("Predict = %v, want 10", m.Predict([]float64{5, 5}))
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Errorf("RMSE identical = %v", got)
	}
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMSE = %v, want sqrt(12.5)", got)
	}
	if !math.IsNaN(RMSE([]float64{1}, []float64{1, 2})) {
		t.Error("RMSE with mismatched lengths should be NaN")
	}
}

func TestOLSResidualOrthogonalityProperty(t *testing.T) {
	// Property: OLS residuals are orthogonal to every feature column.
	f := func(seed uint16) bool {
		xs, ys := linearData(30, uint64(seed)+1)
		// Perturb targets so residuals are nonzero.
		r := &det{s: uint64(seed) * 77}
		for i := range ys {
			ys[i] += 0.3 * (r.next() - 0.5)
		}
		m, err := OLS(xs, ys)
		if err != nil {
			return false
		}
		for j := 0; j < 2; j++ {
			dot := 0.0
			for i, x := range xs {
				dot += (ys[i] - m.Predict(x)) * x[j]
			}
			if math.Abs(dot) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func predictAll(m *Model, xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = m.Predict(x)
	}
	return out
}

func norm(w []float64) float64 {
	s := 0.0
	for _, v := range w {
		s += v * v
	}
	return math.Sqrt(s)
}
