package regress

import (
	"math"
	"testing"
)

func TestGaussFallbackOnIndefinite(t *testing.T) {
	// Directly exercise the Gaussian-elimination path with a symmetric
	// indefinite (but nonsingular) system that Cholesky rejects.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x, err := solveSPD(a, b)
	if err != nil {
		t.Fatalf("solveSPD: %v", err)
	}
	// Solution: x = [3, 2].
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestGaussSingular(t *testing.T) {
	a := [][]float64{{1, 1}, {1, 1}}
	b := []float64{1, 2}
	if _, err := gauss(a, b); err == nil {
		t.Error("expected error for singular system")
	}
}

func TestSoftThreshold(t *testing.T) {
	cases := []struct{ v, l, want float64 }{
		{2, 0.5, 1.5},
		{-2, 0.5, -1.5},
		{0.3, 0.5, 0},
		{-0.3, 0.5, 0},
		{0.5, 0.5, 0},
	}
	for _, c := range cases {
		if got := softThreshold(c.v, c.l); got != c.want {
			t.Errorf("softThreshold(%v, %v) = %v, want %v", c.v, c.l, got, c.want)
		}
	}
}

func TestLassoZeroPenaltyMatchesOLS(t *testing.T) {
	xs, ys := linearData(60, 5)
	ols, err := OLS(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	lasso, err := Lasso(xs, ys, 0, 5000)
	if err != nil {
		t.Fatal(err)
	}
	for j := range ols.Weights {
		if math.Abs(ols.Weights[j]-lasso.Weights[j]) > 1e-4 {
			t.Errorf("weight %d: OLS %v vs LASSO(0) %v", j, ols.Weights[j], lasso.Weights[j])
		}
	}
}

func TestExpandDegrees(t *testing.T) {
	x := []float64{2, 3}
	d1 := expand(x, 1)
	if len(d1) != 2 {
		t.Errorf("degree 1 expansion len %d", len(d1))
	}
	d2 := expand(x, 2)
	// [2 3 4 9 6]: originals, squares, pairwise product.
	want := []float64{2, 3, 4, 9, 6}
	if len(d2) != len(want) {
		t.Fatalf("degree 2 expansion = %v", d2)
	}
	for i := range want {
		if d2[i] != want[i] {
			t.Errorf("expansion[%d] = %v, want %v", i, d2[i], want[i])
		}
	}
	d3 := expand(x, 3)
	if len(d3) != 7 { // + cubes
		t.Errorf("degree 3 expansion len = %d, want 7", len(d3))
	}
}

func TestRidgeLambdaZeroIsOLS(t *testing.T) {
	xs, ys := linearData(40, 8)
	a, err := Ridge(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OLS(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Weights {
		if math.Abs(a.Weights[j]-b.Weights[j]) > 1e-6 {
			t.Errorf("weight %d differs: %v vs %v", j, a.Weights[j], b.Weights[j])
		}
	}
}
