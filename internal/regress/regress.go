// Package regress implements the simpler regression models the paper
// evaluated and discarded in favor of SVR (Section 3.4): ordinary least
// squares, ridge regression, LASSO (coordinate descent), and polynomial
// regression via feature expansion. They are used as ablation baselines.
package regress

import (
	"errors"
	"fmt"
	"math"
)

// Model is a fitted linear-in-features regressor.
type Model struct {
	// Weights has one coefficient per (expanded) feature.
	Weights []float64
	// Intercept is the bias term.
	Intercept float64
	// Degree is the polynomial expansion degree applied to inputs (1 = raw).
	Degree int
}

// Predict evaluates the model at x (raw, unexpanded features).
func (m *Model) Predict(x []float64) float64 {
	ex := expand(x, m.Degree)
	s := m.Intercept
	for i, w := range m.Weights {
		s += w * ex[i]
	}
	return s
}

// expand maps x to its polynomial feature expansion of the given degree:
// degree 1 returns x; degree d appends x_i^2 ... x_i^d per component plus
// first-order pairwise products for d >= 2.
func expand(x []float64, degree int) []float64 {
	if degree <= 1 {
		return x
	}
	out := append([]float64(nil), x...)
	for d := 2; d <= degree; d++ {
		for _, v := range x {
			out = append(out, math.Pow(v, float64(d)))
		}
	}
	for i := 0; i < len(x); i++ {
		for j := i + 1; j < len(x); j++ {
			out = append(out, x[i]*x[j])
		}
	}
	return out
}

func validate(xs [][]float64, ys []float64) (int, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return 0, fmt.Errorf("regress: bad training set: %d xs, %d ys", len(xs), len(ys))
	}
	d := len(xs[0])
	if d == 0 {
		return 0, errors.New("regress: empty feature vectors")
	}
	for i, x := range xs {
		if len(x) != d {
			return 0, fmt.Errorf("regress: row %d has dim %d, want %d", i, len(x), d)
		}
	}
	return d, nil
}

// OLS fits ordinary least squares via the normal equations with a tiny
// ridge jitter for numerical stability of collinear designs.
func OLS(xs [][]float64, ys []float64) (*Model, error) {
	return Ridge(xs, ys, 1e-9)
}

// Ridge fits L2-regularized least squares: (XᵀX + λI)w = Xᵀy, with an
// unpenalized intercept handled by centering.
func Ridge(xs [][]float64, ys []float64, lambda float64) (*Model, error) {
	if _, err := validate(xs, ys); err != nil {
		return nil, err
	}
	if lambda < 0 {
		return nil, errors.New("regress: lambda must be non-negative")
	}
	return ridgeExpanded(xs, ys, lambda, 1)
}

// Polynomial fits OLS on a degree-d polynomial feature expansion.
func Polynomial(xs [][]float64, ys []float64, degree int) (*Model, error) {
	if _, err := validate(xs, ys); err != nil {
		return nil, err
	}
	if degree < 1 {
		return nil, errors.New("regress: degree must be >= 1")
	}
	return ridgeExpanded(xs, ys, 1e-9, degree)
}

func ridgeExpanded(xs [][]float64, ys []float64, lambda float64, degree int) (*Model, error) {
	n := len(xs)
	exp := make([][]float64, n)
	for i, x := range xs {
		exp[i] = expand(x, degree)
	}
	d := len(exp[0])

	// Center features and targets so the intercept is exact.
	muX := make([]float64, d)
	for _, x := range exp {
		for j, v := range x {
			muX[j] += v
		}
	}
	for j := range muX {
		muX[j] /= float64(n)
	}
	muY := 0.0
	for _, y := range ys {
		muY += y
	}
	muY /= float64(n)

	// Build XᵀX + λI and Xᵀy on centered data.
	ata := make([][]float64, d)
	for i := range ata {
		ata[i] = make([]float64, d)
	}
	aty := make([]float64, d)
	for r := 0; r < n; r++ {
		x := exp[r]
		yc := ys[r] - muY
		for i := 0; i < d; i++ {
			xi := x[i] - muX[i]
			aty[i] += xi * yc
			for j := i; j < d; j++ {
				ata[i][j] += xi * (x[j] - muX[j])
			}
		}
	}
	for i := 0; i < d; i++ {
		ata[i][i] += lambda
		for j := 0; j < i; j++ {
			ata[i][j] = ata[j][i]
		}
	}

	w, err := solveSPD(ata, aty)
	if err != nil {
		return nil, err
	}
	b := muY
	for j := range w {
		b -= w[j] * muX[j]
	}
	return &Model{Weights: w, Intercept: b, Degree: degree}, nil
}

// solveSPD solves Ax = b for symmetric positive-definite A via Cholesky
// with partial fallback to Gaussian elimination if factorization fails.
func solveSPD(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	ok := true
	for i := 0; i < n && ok; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					ok = false
					break
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	if ok {
		// Forward then backward substitution.
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			s := b[i]
			for k := 0; k < i; k++ {
				s -= l[i][k] * y[k]
			}
			y[i] = s / l[i][i]
		}
		x := make([]float64, n)
		for i := n - 1; i >= 0; i-- {
			s := y[i]
			for k := i + 1; k < n; k++ {
				s -= l[k][i] * x[k]
			}
			x[i] = s / l[i][i]
		}
		return x, nil
	}
	return gauss(a, b)
}

// gauss solves Ax = b by Gaussian elimination with partial pivoting.
func gauss(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-14 {
			return nil, errors.New("regress: singular system")
		}
		m[col], m[piv] = m[piv], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for c := i + 1; c < n; c++ {
			s -= m[i][c] * x[c]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}

// Lasso fits L1-regularized least squares by cyclic coordinate descent on
// standardized features. lambda is the L1 penalty; iters caps the sweeps.
func Lasso(xs [][]float64, ys []float64, lambda float64, iters int) (*Model, error) {
	n, err := 0, error(nil)
	if n, err = validate(xs, ys); err != nil {
		return nil, err
	}
	_ = n
	if lambda < 0 {
		return nil, errors.New("regress: lambda must be non-negative")
	}
	if iters <= 0 {
		iters = 1000
	}
	rows := len(xs)
	d := len(xs[0])

	// Standardize columns.
	mu := make([]float64, d)
	sd := make([]float64, d)
	for _, x := range xs {
		for j, v := range x {
			mu[j] += v
		}
	}
	for j := range mu {
		mu[j] /= float64(rows)
	}
	for _, x := range xs {
		for j, v := range x {
			dv := v - mu[j]
			sd[j] += dv * dv
		}
	}
	for j := range sd {
		sd[j] = math.Sqrt(sd[j] / float64(rows))
		if sd[j] < 1e-12 {
			sd[j] = 1 // constant column: weight will stay 0
		}
	}
	muY := 0.0
	for _, y := range ys {
		muY += y
	}
	muY /= float64(rows)

	z := make([][]float64, rows)
	for i, x := range xs {
		z[i] = make([]float64, d)
		for j, v := range x {
			z[i][j] = (v - mu[j]) / sd[j]
		}
	}

	w := make([]float64, d)
	resid := make([]float64, rows)
	for i := range resid {
		resid[i] = ys[i] - muY
	}
	for it := 0; it < iters; it++ {
		maxDelta := 0.0
		for j := 0; j < d; j++ {
			// rho = (1/n) Σ z_ij (resid_i + w_j z_ij)
			rho := 0.0
			for i := range z {
				rho += z[i][j] * (resid[i] + w[j]*z[i][j])
			}
			rho /= float64(rows)
			newW := softThreshold(rho, lambda)
			if newW != w[j] {
				delta := newW - w[j]
				for i := range z {
					resid[i] -= delta * z[i][j]
				}
				if ad := math.Abs(delta); ad > maxDelta {
					maxDelta = ad
				}
				w[j] = newW
			}
		}
		if maxDelta < 1e-9 {
			break
		}
	}

	// De-standardize.
	out := make([]float64, d)
	b := muY
	for j := range w {
		out[j] = w[j] / sd[j]
		b -= out[j] * mu[j]
	}
	return &Model{Weights: out, Intercept: b, Degree: 1}, nil
}

func softThreshold(v, lambda float64) float64 {
	switch {
	case v > lambda:
		return v - lambda
	case v < -lambda:
		return v + lambda
	default:
		return 0
	}
}

// RMSE computes the root-mean-square error of predictions against targets.
func RMSE(pred, ys []float64) float64 {
	if len(pred) != len(ys) || len(ys) == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := range ys {
		d := pred[i] - ys[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(ys)))
}
