package nvml

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/clkernel"
	"repro/internal/freq"
	"repro/internal/gpu"
)

func newTitanX() *Device { return NewDevice(gpu.TitanX()) }

func busyProfile() gpu.KernelProfile {
	var c clkernel.Counts
	c.Ops[clkernel.OpFloatAdd] = 1000
	c.Ops[clkernel.OpFloatMul] = 1000
	return gpu.KernelProfile{Name: "busy", Counts: c, WorkItems: 1 << 20}
}

func TestSupportedClockQueries(t *testing.T) {
	d := newTitanX()
	mems := d.DeviceGetSupportedMemoryClocks()
	if len(mems) != 4 || mems[0] != 3505 {
		t.Fatalf("memory clocks = %v", mems)
	}
	cores, err := d.DeviceGetSupportedGraphicsClocks(3505)
	if err != nil {
		t.Fatalf("graphics clocks: %v", err)
	}
	// The claimed list includes clamped gray clocks above 1202.
	if cores[len(cores)-1] != 1392 {
		t.Errorf("top claimed clock = %d, want 1392", cores[len(cores)-1])
	}
	if _, err := d.DeviceGetSupportedGraphicsClocks(1234); err == nil {
		t.Error("expected error for unknown memory clock")
	}
}

func TestSetApplicationsClocks(t *testing.T) {
	d := newTitanX()
	if err := d.DeviceSetApplicationsClocks(3505, 1001); err != nil {
		t.Fatalf("set 3505@1001: %v", err)
	}
	if got := d.DeviceGetApplicationsClocks(); got != (freq.Config{Mem: 3505, Core: 1001}) {
		t.Errorf("applied = %v", got)
	}
}

func TestSetClampQuirk(t *testing.T) {
	// Paper: "some of the configurations marked as supported by NVML are
	// not available, because the setting function does not actually change
	// the frequencies" — setting 1392 succeeds but applies 1202.
	d := newTitanX()
	if err := d.DeviceSetApplicationsClocks(3505, 1392); err != nil {
		t.Fatalf("set 3505@1392 should succeed (claimed): %v", err)
	}
	if got := d.DeviceGetApplicationsClocks().Core; got != 1202 {
		t.Errorf("applied core = %d, want clamped 1202", got)
	}
}

func TestSetRejectsUnknown(t *testing.T) {
	d := newTitanX()
	err := d.DeviceSetApplicationsClocks(3505, 123)
	if err == nil {
		t.Fatal("expected error for unlisted core clock")
	}
	var ns *ErrNotSupported
	if !errors.As(err, &ns) {
		t.Errorf("error type %T, want *ErrNotSupported", err)
	}
	if err := d.DeviceSetApplicationsClocks(101, 135); err == nil {
		t.Error("expected error for unknown memory clock")
	}
}

func TestResetApplicationsClocks(t *testing.T) {
	d := newTitanX()
	cores := d.Sim().Ladder.CoreClocks(810)
	if err := d.DeviceSetApplicationsClocks(810, cores[0]); err != nil {
		t.Fatal(err)
	}
	d.DeviceResetApplicationsClocks()
	if got := d.DeviceGetApplicationsClocks(); got != d.Sim().Ladder.Default() {
		t.Errorf("after reset applied = %v, want default", got)
	}
}

func TestAutoBoostToggle(t *testing.T) {
	d := newTitanX()
	if !d.AutoBoostedClocksEnabled() {
		t.Error("auto-boost should start enabled")
	}
	d.SetAutoBoostedClocksEnabled(false)
	if d.AutoBoostedClocksEnabled() {
		t.Error("auto-boost still enabled after disable")
	}
}

func TestPowerIdleVsLoad(t *testing.T) {
	d := newTitanX()
	idle := float64(d.DeviceGetPowerUsage()) / 1000
	r, err := d.BeginWorkload(busyProfile())
	if err != nil {
		t.Fatalf("BeginWorkload: %v", err)
	}
	loaded := float64(d.DeviceGetPowerUsage()) / 1000
	d.EndWorkload()
	after := float64(d.DeviceGetPowerUsage()) / 1000
	if loaded <= idle*1.5 {
		t.Errorf("loaded power %.1f W not well above idle %.1f W", loaded, idle)
	}
	if math.Abs(loaded-r.PowerWatts) > 0.05*r.PowerWatts {
		t.Errorf("reading %.1f W deviates >5%% from model %.1f W", loaded, r.PowerWatts)
	}
	if after > idle*1.2 {
		t.Errorf("power after EndWorkload %.1f W still near load", after)
	}
}

func TestPowerNoiseBounded(t *testing.T) {
	d := newTitanX()
	if _, err := d.BeginWorkload(busyProfile()); err != nil {
		t.Fatal(err)
	}
	defer d.EndWorkload()
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	var sum float64
	const n = 500
	for i := 0; i < n; i++ {
		w := float64(d.DeviceGetPowerUsage()) / 1000
		sum += w
		lo = math.Min(lo, w)
		hi = math.Max(hi, w)
	}
	mean := sum / n
	if (hi-lo)/mean > 0.05 {
		t.Errorf("noise spread %.2f%% too large", 100*(hi-lo)/mean)
	}
	if (hi-lo)/mean == 0 {
		t.Error("power readings carry no noise at all; sampling realism lost")
	}
}

func TestPowerDeterministic(t *testing.T) {
	read := func() []uint64 {
		d := newTitanX()
		if _, err := d.BeginWorkload(busyProfile()); err != nil {
			t.Fatal(err)
		}
		out := make([]uint64, 10)
		for i := range out {
			out[i] = d.DeviceGetPowerUsage()
		}
		return out
	}
	a, b := read(), read()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reading %d differs across identical runs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestBeginWorkloadBadClocks(t *testing.T) {
	d := NewDevice(gpu.P100())
	// P100 simulates fine at its only memory clock.
	if _, err := d.BeginWorkload(busyProfile()); err != nil {
		t.Errorf("P100 BeginWorkload: %v", err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := newTitanX()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				d.DeviceGetPowerUsage()
				_ = d.DeviceGetApplicationsClocks()
				_ = d.DeviceSetApplicationsClocks(3505, 1001)
			}
		}()
	}
	wg.Wait() // race detector verifies safety
}
