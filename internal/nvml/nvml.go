// Package nvml simulates the subset of the NVIDIA Management Library the
// paper relies on (Section 4.1): querying supported memory and graphics
// clocks, setting application clocks, reading board power, and disabling
// auto-boost. It reproduces the Titan X quirk the paper documents — some
// configurations are reported as supported but setting them silently applies
// a clamped core clock — and NVML's power-reading quantization (milliwatt
// integers) with a small deterministic sensor noise.
//
// The API mirrors NVML's C naming (DeviceGetSupportedMemoryClocks,
// DeviceSetApplicationsClocks, DeviceGetPowerUsage) so that the measurement
// harness reads like real NVML client code.
package nvml

import (
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/freq"
	"repro/internal/gpu"
)

// ErrNotSupported is returned for configurations the device cannot apply at
// all (unknown memory clock, or core clock absent from the claimed list).
type ErrNotSupported struct {
	Cfg freq.Config
}

// Error names the rejected clock combination.
func (e *ErrNotSupported) Error() string {
	return fmt.Sprintf("nvml: clock combination %v not supported", e.Cfg)
}

// Device is a handle to one simulated GPU.
type Device struct {
	mu        sync.Mutex
	sim       *gpu.Device
	applied   freq.Config
	autoBoost bool
	load      *gpu.Result // current synthetic workload, nil when idle
	readings  uint64      // power-sensor read counter (noise stream)
}

// NewDevice wraps a simulated GPU as an NVML device handle. Auto-boost
// starts enabled, as on real hardware.
func NewDevice(sim *gpu.Device) *Device {
	return &Device{sim: sim, applied: sim.Ladder.Default(), autoBoost: true}
}

// Sim exposes the underlying device model (for the measurement harness).
func (d *Device) Sim() *gpu.Device { return d.sim }

// Name returns the device name string.
func (d *Device) Name() string { return d.sim.Name }

// DeviceGetSupportedMemoryClocks lists supported memory clocks, highest
// first, as NVML does.
func (d *Device) DeviceGetSupportedMemoryClocks() []freq.MHz {
	return d.sim.Ladder.MemClocks()
}

// DeviceGetSupportedGraphicsClocks lists the core clocks NVML *claims* to
// support for a memory clock. On the Titan X this includes clocks above
// 1202 MHz that are silently clamped when applied (the paper's gray
// points in Fig. 4a).
func (d *Device) DeviceGetSupportedGraphicsClocks(mem freq.MHz) ([]freq.MHz, error) {
	cs := d.sim.Ladder.ClaimedCoreClocks(mem)
	if len(cs) == 0 {
		return nil, &ErrNotSupported{Cfg: freq.Config{Mem: mem}}
	}
	return cs, nil
}

// DeviceSetApplicationsClocks requests the given clocks. Requests from the
// claimed list always succeed, but — as on the real board — the clocks
// actually applied may differ (core clamped to 1202 MHz). Callers must read
// back DeviceGetApplicationsClocks to learn the effective setting.
func (d *Device) DeviceSetApplicationsClocks(mem, core freq.MHz) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	claimed := d.sim.Ladder.ClaimedCoreClocks(mem)
	if len(claimed) == 0 {
		return &ErrNotSupported{Cfg: freq.Config{Mem: mem, Core: core}}
	}
	found := false
	for _, c := range claimed {
		if c == core {
			found = true
			break
		}
	}
	if !found {
		return &ErrNotSupported{Cfg: freq.Config{Mem: mem, Core: core}}
	}
	d.applied = d.sim.Ladder.Clamp(freq.Config{Mem: mem, Core: core})
	return nil
}

// DeviceGetApplicationsClocks returns the clocks actually in effect.
func (d *Device) DeviceGetApplicationsClocks() freq.Config {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.applied
}

// DeviceResetApplicationsClocks restores the default configuration.
func (d *Device) DeviceResetApplicationsClocks() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.applied = d.sim.Ladder.Default()
}

// SetAutoBoostedClocksEnabled enables or disables auto-boost. The paper
// disables it so that all measurements happen at manually-set clocks.
func (d *Device) SetAutoBoostedClocksEnabled(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.autoBoost = on
}

// AutoBoostedClocksEnabled reports the auto-boost state.
func (d *Device) AutoBoostedClocksEnabled() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.autoBoost
}

// BeginWorkload marks the device as executing the given kernel profile at
// the currently applied clocks, so that power readings reflect load. It
// returns the simulation result describing the run.
func (d *Device) BeginWorkload(p gpu.KernelProfile) (gpu.Result, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, err := d.sim.Simulate(p, d.applied)
	if err != nil {
		return gpu.Result{}, err
	}
	d.load = &r
	return r, nil
}

// EndWorkload marks the device idle again.
func (d *Device) EndWorkload() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.load = nil
}

// idlePowerLocked estimates board power with no kernel resident.
func (d *Device) idlePowerLocked() float64 {
	v := d.sim.Voltage(d.applied.Core)
	return d.sim.ConstWatts + d.sim.LeakPerVolt*v*0.8
}

// DeviceGetPowerUsage returns the current board power draw in milliwatts,
// like nvmlDeviceGetPowerUsage. Readings carry a deterministic ±1% sensor
// noise stream and are quantized to integer milliwatts.
func (d *Device) DeviceGetPowerUsage() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var w float64
	if d.load != nil {
		w = d.load.PowerWatts
	} else {
		w = d.idlePowerLocked()
	}
	d.readings++
	noise := noiseAt(d.sim.Name, d.readings)
	w *= 1 + 0.01*noise
	if w < 0 {
		w = 0
	}
	return uint64(w * 1000)
}

// PowerSampleHz is NVML's power-sensor refresh rate on the modeled boards.
const PowerSampleHz = 62.5

// noiseAt returns a deterministic pseudo-random value in [-1, 1) derived
// from the device name and a counter.
func noiseAt(name string, n uint64) float64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	var b [8]byte
	for i := range b {
		b[i] = byte(n >> (8 * i))
	}
	h.Write(b[:])
	u := h.Sum64()
	return float64(u%(1<<20))/float64(1<<19) - 1
}
