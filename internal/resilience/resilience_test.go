package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRetryerSucceedsAfterTransientFailures pins the basic retry contract:
// failures up to MaxAttempts-1 are retried and a late success is a success.
func TestRetryerSucceedsAfterTransientFailures(t *testing.T) {
	r := Retryer{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
	calls := 0
	err := r.Do(context.Background(), func(ctx context.Context) error {
		if calls++; calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("op called %d times, want 3", calls)
	}
}

// TestRetryerExhaustsAttempts pins the failure shape: the last error is
// wrapped and the attempt count is bounded.
func TestRetryerExhaustsAttempts(t *testing.T) {
	r := Retryer{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
	sentinel := errors.New("down")
	calls := 0
	err := r.Do(context.Background(), func(ctx context.Context) error {
		calls++
		return sentinel
	})
	if calls != 3 {
		t.Fatalf("op called %d times, want 3", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v does not wrap the last attempt's error", err)
	}
}

// TestRetryerBackoffFullJitter pins the backoff envelope: with Rand pinned
// to its extremes, the wait is 0 at one end and the doubling-then-capped
// ceiling at the other.
func TestRetryerBackoffFullJitter(t *testing.T) {
	base, max := 100*time.Millisecond, 400*time.Millisecond
	low := Retryer{BaseDelay: base, MaxDelay: max, Rand: func() float64 { return 0 }}
	high := Retryer{BaseDelay: base, MaxDelay: max, Rand: func() float64 { return 0.999999 }}
	for attempt, ceiling := range []time.Duration{base, 2 * base, 4 * base, max, max} {
		if d := low.Backoff(attempt); d != 0 {
			t.Errorf("attempt %d: low jitter gave %v, want 0", attempt, d)
		}
		d := high.Backoff(attempt)
		if d > ceiling || d < ceiling-ceiling/100 {
			t.Errorf("attempt %d: high jitter gave %v, want ≈%v", attempt, d, ceiling)
		}
	}
}

// TestRetryerContextCancelsSleep proves a cancelled context aborts the
// backoff sleep immediately instead of serving it out.
func TestRetryerContextCancelsSleep(t *testing.T) {
	r := Retryer{MaxAttempts: 2, BaseDelay: time.Hour, MaxDelay: time.Hour,
		Rand: func() float64 { return 0.999 }}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		done <- r.Do(ctx, func(ctx context.Context) error {
			close(started)
			return errors.New("fail")
		})
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error %v does not wrap context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation; it is sleeping out the backoff")
	}
}

// TestRetryerAttemptTimeout proves each attempt gets its own deadline.
func TestRetryerAttemptTimeout(t *testing.T) {
	r := Retryer{MaxAttempts: 2, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond,
		AttemptTimeout: 10 * time.Millisecond}
	var deadlines int
	err := r.Do(context.Background(), func(ctx context.Context) error {
		if _, ok := ctx.Deadline(); ok {
			deadlines++
		}
		<-ctx.Done() // block until the per-attempt timeout fires
		return ctx.Err()
	})
	if err == nil {
		t.Fatal("Do succeeded; want per-attempt timeouts to fail it")
	}
	if deadlines != 2 {
		t.Fatalf("%d attempts saw a deadline, want 2", deadlines)
	}
}

// TestBreakerLifecycle walks the full closed → open → half-open → closed
// circle with a pinned clock.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	b := &Breaker{FailureThreshold: 3, Cooldown: time.Minute, now: func() time.Time { return now }}
	fail := errors.New("down")

	if got := b.State(); got != StateClosed {
		t.Fatalf("initial state %s, want closed", got)
	}
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.Record(fail)
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after 2 failures %s, want closed (threshold 3)", got)
	}
	b.Record(fail) // third consecutive failure trips it
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after threshold %s, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request before the cool-down")
	}

	now = now.Add(61 * time.Second) // cool-down elapsed → one probe
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state after cool-down %s, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Record(fail) // failed probe → open again, cool-down restarted
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after failed probe %s, want open", got)
	}
	if b.Allow() {
		t.Fatal("breaker allowed a request right after a failed probe")
	}

	now = now.Add(61 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker rejected the second probe after the restarted cool-down")
	}
	b.Record(nil) // successful probe closes the circuit
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after successful probe %s, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected a request")
	}
}

// TestBreakerSuccessResetsFailureCount proves intermittent failures below
// the threshold never trip the breaker.
func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b := &Breaker{FailureThreshold: 2}
	fail := errors.New("down")
	for i := 0; i < 10; i++ {
		b.Record(fail)
		b.Record(nil)
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("state %s after alternating outcomes, want closed", got)
	}
}

// TestBreakerDo pins the Do wrapper: ErrOpen without invoking the
// operation while tripped.
func TestBreakerDo(t *testing.T) {
	now := time.Unix(0, 0)
	b := &Breaker{FailureThreshold: 1, Cooldown: time.Minute, now: func() time.Time { return now }}
	calls := 0
	op := func(ctx context.Context) error { calls++; return errors.New("down") }
	if err := b.Do(context.Background(), op); err == nil {
		t.Fatal("first Do succeeded, want the op's error")
	}
	if err := b.Do(context.Background(), op); !errors.Is(err, ErrOpen) {
		t.Fatalf("tripped Do returned %v, want ErrOpen", err)
	}
	if calls != 1 {
		t.Fatalf("op called %d times, want 1 (open breaker must not call it)", calls)
	}
}

// TestBreakerSetIsolation proves per-peer breakers trip independently and
// unknown peers read as closed.
func TestBreakerSetIsolation(t *testing.T) {
	s := &BreakerSet{FailureThreshold: 1, Cooldown: time.Hour}
	s.Get("dead").Record(errors.New("down"))
	if got := s.State("dead"); got != StateOpen {
		t.Fatalf("dead peer state %s, want open", got)
	}
	if got := s.State("healthy"); got != StateClosed {
		t.Fatalf("untouched peer state %s, want closed", got)
	}
	if !s.Get("healthy").Allow() {
		t.Fatal("healthy peer's breaker rejected a request")
	}
}

// TestBreakerConcurrentProbes hammers a half-open breaker from many
// goroutines: exactly one gets the probe slot.
func TestBreakerConcurrentProbes(t *testing.T) {
	now := time.Unix(0, 0)
	var mu sync.Mutex
	b := &Breaker{FailureThreshold: 1, Cooldown: time.Second, now: func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}}
	b.Record(errors.New("down"))
	mu.Lock()
	now = now.Add(2 * time.Second)
	mu.Unlock()

	var wg sync.WaitGroup
	allowed := make(chan struct{}, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Allow() {
				allowed <- struct{}{}
			}
		}()
	}
	wg.Wait()
	close(allowed)
	n := 0
	for range allowed {
		n++
	}
	if n != 1 {
		t.Fatalf("%d goroutines won the half-open probe slot, want exactly 1", n)
	}
}

func ExampleRetryer_Do() {
	r := Retryer{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
	attempts := 0
	err := r.Do(context.Background(), func(ctx context.Context) error {
		if attempts++; attempts < 2 {
			return errors.New("transient failure")
		}
		return nil
	})
	fmt.Println(attempts, err)
	// Output: 2 <nil>
}
