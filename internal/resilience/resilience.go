// Package resilience is the fleet's fault-handling toolkit: a Retryer
// (exponential backoff with full jitter, per-attempt timeouts, context
// cancellation) and a Breaker (a closed/open/half-open circuit breaker with
// a cool-down probe), plus a per-peer BreakerSet.
//
// Every fleet RPC goes through these two primitives: the agent's
// register/heartbeat loop backs off between failed syncs instead of
// hammering a recovering control plane on a fixed tick (the full jitter
// spreads a fleet's reconnects so heal-time traffic is not a thundering
// herd), observation forwarding retries transient failures before spooling
// to disk, and the control plane's snapshot fan-out keeps a breaker per
// node so one dead agent is skipped instantly instead of slowing every
// activation behind its connect timeout.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Retryer defaults, applied by withDefaults.
const (
	// DefaultMaxAttempts bounds one Do call's tries.
	DefaultMaxAttempts = 4
	// DefaultBaseDelay is the first backoff ceiling; each failure doubles
	// it up to DefaultMaxDelay.
	DefaultBaseDelay = 100 * time.Millisecond
	// DefaultMaxDelay caps the backoff ceiling.
	DefaultMaxDelay = 5 * time.Second
)

// Retryer retries an operation with exponential backoff and full jitter:
// the wait before attempt n is uniform in [0, min(MaxDelay, BaseDelay·2ⁿ)].
// Full jitter (rather than ±50% around the midpoint) is deliberate — when a
// whole fleet loses the same control plane at once, it is the strongest
// de-correlator of the retry times. The zero value retries with the
// documented defaults. Retryer is stateless and safe for concurrent use.
type Retryer struct {
	// MaxAttempts is the total number of tries, first attempt included
	// (0 = DefaultMaxAttempts; 1 disables retrying).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff ceiling (0 = default).
	BaseDelay time.Duration
	// MaxDelay caps the ceiling (0 = default).
	MaxDelay time.Duration
	// AttemptTimeout bounds each individual attempt via a derived context
	// (0 = no per-attempt bound; the parent context still applies).
	AttemptTimeout time.Duration
	// Rand supplies the jitter in [0,1) (nil = math/rand). Tests pin it.
	Rand func() float64
}

// withDefaults resolves the zero values.
func (r Retryer) withDefaults() Retryer {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = DefaultMaxAttempts
	}
	if r.BaseDelay <= 0 {
		r.BaseDelay = DefaultBaseDelay
	}
	if r.MaxDelay <= 0 {
		r.MaxDelay = DefaultMaxDelay
	}
	if r.Rand == nil {
		r.Rand = rand.Float64
	}
	return r
}

// Backoff returns the jittered wait before retry attempt (0-based: attempt
// 0 is the wait after the first failure): uniform in [0, ceiling], where
// ceiling doubles per attempt from BaseDelay up to MaxDelay. It is exposed
// so loops that own their own scheduling (the agent heartbeat) share the
// exact backoff policy of Do.
func (r Retryer) Backoff(attempt int) time.Duration {
	r = r.withDefaults()
	return time.Duration(r.Rand() * float64(r.ceiling(attempt)))
}

// ceiling is the un-jittered exponential cap for a 0-based attempt.
// Caller has resolved defaults.
func (r Retryer) ceiling(attempt int) time.Duration {
	d := r.BaseDelay
	for i := 0; i < attempt && d < r.MaxDelay; i++ {
		d *= 2
	}
	if d > r.MaxDelay {
		d = r.MaxDelay
	}
	return d
}

// Do runs op until it succeeds, the attempts are exhausted, or the context
// is cancelled — whichever comes first. Each attempt gets a child context
// bounded by AttemptTimeout (when set); between failures Do sleeps the
// jittered backoff, aborting the sleep the moment ctx is cancelled. The
// returned error is the last attempt's, wrapped with the attempt count;
// a cancelled context surfaces as ctx.Err (wrapping the last attempt error
// when one exists).
func (r Retryer) Do(ctx context.Context, op func(ctx context.Context) error) error {
	r = r.withDefaults()
	var last error
	for attempt := 0; attempt < r.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if last != nil {
				return fmt.Errorf("%w (after %d attempts: %v)", err, attempt, last)
			}
			return err
		}
		actx, cancel := ctx, context.CancelFunc(func() {})
		if r.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, r.AttemptTimeout)
		}
		err := op(actx)
		cancel()
		if err == nil {
			return nil
		}
		last = err
		if attempt == r.MaxAttempts-1 {
			break
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("%w (after %d attempts: %v)", ctx.Err(), attempt+1, last)
		case <-time.After(r.Backoff(attempt)):
		}
	}
	return fmt.Errorf("resilience: %d attempts failed: %w", r.MaxAttempts, last)
}

// Breaker defaults, applied on first use.
const (
	// DefaultFailureThreshold is the consecutive-failure count that trips a
	// closed breaker open.
	DefaultFailureThreshold = 5
	// DefaultCooldown is how long a tripped breaker stays open before it
	// admits one half-open probe.
	DefaultCooldown = 15 * time.Second
)

// Breaker states reported by State.
const (
	// StateClosed passes every request; failures are counted.
	StateClosed = "closed"
	// StateOpen rejects every request until the cool-down elapses.
	StateOpen = "open"
	// StateHalfOpen admits exactly one probe; its outcome decides between
	// closed and another open period.
	StateHalfOpen = "half-open"
)

// ErrOpen is the error Do returns (and callers of Allow should treat a
// false return as) when the breaker is rejecting requests.
var ErrOpen = errors.New("resilience: circuit breaker open")

// Breaker is a per-peer circuit breaker. Closed, it counts consecutive
// failures and trips open at FailureThreshold; open, it rejects everything
// until Cooldown has elapsed; then it goes half-open and admits exactly one
// probe — a probe success closes the circuit, a probe failure re-opens it
// for another cool-down. The zero value uses the documented defaults. All
// methods are safe for concurrent use.
type Breaker struct {
	// FailureThreshold trips the breaker after this many consecutive
	// failures (0 = default).
	FailureThreshold int
	// Cooldown is the open period before a half-open probe (0 = default).
	Cooldown time.Duration

	mu       sync.Mutex
	failures int
	open     bool
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	// now is the clock, swappable by tests; nil = time.Now.
	now func() time.Time
}

// clock resolves the test clock. Caller holds mu.
func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

// threshold resolves the configured trip point.
func (b *Breaker) threshold() int {
	if b.FailureThreshold <= 0 {
		return DefaultFailureThreshold
	}
	return b.FailureThreshold
}

// cooldown resolves the configured open period.
func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return DefaultCooldown
	}
	return b.Cooldown
}

// Allow reports whether a request may proceed now. In the open state it
// starts the half-open probe when the cool-down has elapsed — the caller
// that got true MUST report the outcome via Record (or Do does it for
// them), or the breaker stays half-open with its one probe slot taken.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.probing || b.clock().Sub(b.openedAt) < b.cooldown() {
		return false
	}
	b.probing = true
	return true
}

// Record reports one request outcome to the breaker.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.open, b.probing, b.failures = false, false, 0
		return
	}
	if b.open {
		// A failed half-open probe (or a straggler from before the trip):
		// restart the cool-down.
		b.probing = false
		b.openedAt = b.clock()
		return
	}
	if b.failures++; b.failures >= b.threshold() {
		b.open = true
		b.probing = false
		b.openedAt = b.clock()
	}
}

// Do guards op with the breaker: ErrOpen without calling op when the
// circuit is rejecting, otherwise op's own error, recorded either way.
func (b *Breaker) Do(ctx context.Context, op func(ctx context.Context) error) error {
	if !b.Allow() {
		return ErrOpen
	}
	err := op(ctx)
	b.Record(err)
	return err
}

// State names the breaker's current state (closed, open, or half-open —
// the latter while the cool-down has elapsed or a probe is in flight).
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case !b.open:
		return StateClosed
	case b.probing || b.clock().Sub(b.openedAt) >= b.cooldown():
		return StateHalfOpen
	default:
		return StateOpen
	}
}

// BreakerSet is a lazily populated map of per-peer breakers sharing one
// configuration — the control plane keys it by node id so each agent's
// push link trips independently. Safe for concurrent use.
type BreakerSet struct {
	// FailureThreshold and Cooldown configure every breaker the set creates
	// (0 = the Breaker defaults).
	FailureThreshold int
	Cooldown         time.Duration

	mu sync.Mutex
	m  map[string]*Breaker
}

// Get returns the peer's breaker, creating it closed on first use.
func (s *BreakerSet) Get(peer string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = map[string]*Breaker{}
	}
	b, ok := s.m[peer]
	if !ok {
		b = &Breaker{FailureThreshold: s.FailureThreshold, Cooldown: s.Cooldown}
		s.m[peer] = b
	}
	return b
}

// State reports a peer's breaker state without creating one (StateClosed
// for peers the set has never seen — an untracked peer is not rejected).
func (s *BreakerSet) State(peer string) string {
	s.mu.Lock()
	b := s.m[peer]
	s.mu.Unlock()
	if b == nil {
		return StateClosed
	}
	return b.State()
}
