package pareto

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b Point
		want bool
	}{
		{Point{Speedup: 1, Energy: 0.5}, Point{Speedup: 1, Energy: 0.6}, true},   // same s, less e
		{Point{Speedup: 1.1, Energy: 0.5}, Point{Speedup: 1, Energy: 0.5}, true}, // more s, same e
		{Point{Speedup: 1.1, Energy: 0.4}, Point{Speedup: 1, Energy: 0.5}, true}, // better both
		{Point{Speedup: 1, Energy: 0.5}, Point{Speedup: 1, Energy: 0.5}, false},  // equal
		{Point{Speedup: 1, Energy: 0.6}, Point{Speedup: 1, Energy: 0.5}, false},  // worse e
		{Point{Speedup: 0.9, Energy: 0.4}, Point{Speedup: 1, Energy: 0.5}, false},
		{Point{Speedup: 1.2, Energy: 0.6}, Point{Speedup: 1, Energy: 0.5}, false}, // trade-off
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func frontSet(ps []Point) map[[2]float64]int {
	m := map[[2]float64]int{}
	for _, p := range ps {
		m[[2]float64{p.Speedup, p.Energy}]++
	}
	return m
}

func TestSimpleFront(t *testing.T) {
	pts := []Point{
		{Speedup: 1.0, Energy: 1.0, ID: 0},
		{Speedup: 1.2, Energy: 1.3, ID: 1}, // front: fastest
		{Speedup: 0.8, Energy: 0.7, ID: 2}, // front: frugal
		{Speedup: 0.9, Energy: 1.1, ID: 3}, // dominated by 0
		{Speedup: 1.0, Energy: 1.2, ID: 4}, // dominated by 0
		{Speedup: 0.5, Energy: 0.7, ID: 5}, // dominated by 2
	}
	front := Simple(pts)
	want := map[[2]float64]int{
		{1.0, 1.0}: 1,
		{1.2, 1.3}: 1,
		{0.8, 0.7}: 1,
	}
	got := frontSet(front)
	if len(got) != len(want) {
		t.Fatalf("front = %v, want keys %v", front, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Errorf("front missing/miscounting %v", k)
		}
	}
}

func TestFastMatchesSimpleProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var pts []Point
		for i := 0; i+1 < len(raw); i += 2 {
			s, e := raw[i], raw[i+1]
			if math.IsNaN(s) || math.IsInf(s, 0) || math.IsNaN(e) || math.IsInf(e, 0) {
				continue
			}
			// Map into plausible objective ranges.
			pts = append(pts, Point{
				Speedup: math.Mod(math.Abs(s), 1.5),
				Energy:  math.Mod(math.Abs(e), 2.0),
				ID:      i / 2,
			})
		}
		a := frontSet(Simple(pts))
		b := frontSet(Fast(pts))
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFrontMembersNotMutuallyDominating(t *testing.T) {
	f := func(raw [24]float64) bool {
		var pts []Point
		for i := 0; i+1 < len(raw); i += 2 {
			pts = append(pts, Point{
				Speedup: math.Mod(math.Abs(raw[i]), 1.5),
				Energy:  math.Mod(math.Abs(raw[i+1]), 2.0),
			})
		}
		front := Fast(pts)
		for i := range front {
			for j := range front {
				if i != j && Dominates(front[i], front[j]) {
					return false
				}
			}
		}
		// Every non-front point must be dominated by some front point or
		// be a duplicate of a front point.
		fs := frontSet(front)
		for _, p := range pts {
			if fs[[2]float64{p.Speedup, p.Energy}] > 0 {
				continue
			}
			dominated := false
			for _, fp := range front {
				if Dominates(fp, p) {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFrontEmptyAndSingle(t *testing.T) {
	if got := Simple(nil); len(got) != 0 {
		t.Errorf("Simple(nil) = %v", got)
	}
	if got := Fast(nil); len(got) != 0 {
		t.Errorf("Fast(nil) = %v", got)
	}
	one := []Point{{Speedup: 1, Energy: 1, ID: 7}}
	if got := Fast(one); len(got) != 1 || got[0].ID != 7 {
		t.Errorf("Fast(single) = %v", got)
	}
}

func TestDuplicatesKept(t *testing.T) {
	pts := []Point{
		{Speedup: 1, Energy: 1, ID: 0},
		{Speedup: 1, Energy: 1, ID: 1},
		{Speedup: 0.5, Energy: 1.5, ID: 2},
	}
	for name, fn := range map[string]func([]Point) []Point{"Simple": Simple, "Fast": Fast} {
		front := fn(pts)
		if len(front) != 2 {
			t.Errorf("%s kept %d points, want both duplicates", name, len(front))
		}
	}
}

func TestHypervolumeRectangles(t *testing.T) {
	// Single point (1, 1) vs ref (0, 2): area 1x1 = 1.
	hv := Hypervolume([]Point{{Speedup: 1, Energy: 1}}, RefPoint)
	if math.Abs(hv-1) > 1e-12 {
		t.Errorf("HV = %v, want 1", hv)
	}
	// Two-point staircase: (1, 1) and (0.5, 0.5).
	// Area = 1*(2-1) [s in 0.5..1 at e=1... actually s in (0.5,1]] plus ...
	// Sweep: (1,1) contributes (1-0.5)*(2-1)=0.5; (0.5,0.5) contributes
	// (0.5-0)*(2-0.5)=0.75. Total 1.25.
	hv = Hypervolume([]Point{
		{Speedup: 1, Energy: 1},
		{Speedup: 0.5, Energy: 0.5},
	}, RefPoint)
	if math.Abs(hv-1.25) > 1e-12 {
		t.Errorf("HV = %v, want 1.25", hv)
	}
	// Dominated points must not change the volume.
	hv2 := Hypervolume([]Point{
		{Speedup: 1, Energy: 1},
		{Speedup: 0.5, Energy: 0.5},
		{Speedup: 0.4, Energy: 1.9},
	}, RefPoint)
	if math.Abs(hv2-hv) > 1e-12 {
		t.Errorf("dominated point changed HV: %v vs %v", hv2, hv)
	}
}

func TestHypervolumeClipsOutside(t *testing.T) {
	// A point worse than the reference in energy contributes nothing.
	hv := Hypervolume([]Point{{Speedup: 1, Energy: 2.5}}, RefPoint)
	if hv != 0 {
		t.Errorf("HV = %v, want 0 for point outside reference box", hv)
	}
}

func TestHypervolumeMonotoneProperty(t *testing.T) {
	// Adding points never decreases hypervolume.
	f := func(raw [20]float64, extraS, extraE float64) bool {
		var pts []Point
		for i := 0; i+1 < len(raw); i += 2 {
			pts = append(pts, Point{
				Speedup: math.Mod(math.Abs(raw[i]), 1.5),
				Energy:  math.Mod(math.Abs(raw[i+1]), 2.0),
			})
		}
		base := Hypervolume(pts, RefPoint)
		more := append(pts, Point{
			Speedup: math.Mod(math.Abs(extraS), 1.5),
			Energy:  math.Mod(math.Abs(extraE), 2.0),
		})
		return Hypervolume(more, RefPoint) >= base-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCoverageDifference(t *testing.T) {
	ref := []Point{{Speedup: 1.2, Energy: 0.9}, {Speedup: 0.9, Energy: 0.7}}
	// Perfect approximation: zero difference.
	if d := CoverageDifference(ref, ref); d != 0 {
		t.Errorf("D(P*, P*) = %v, want 0", d)
	}
	// Superset approximation also covers everything.
	super := append([]Point{{Speedup: 1.3, Energy: 1.0}}, ref...)
	if d := CoverageDifference(ref, super); d != 0 {
		t.Errorf("D(P*, superset) = %v, want 0", d)
	}
	// Missing the fast extreme leaves uncovered volume.
	partial := []Point{{Speedup: 0.9, Energy: 0.7}}
	d := CoverageDifference(ref, partial)
	// Missing volume: (1.2-0.9)*(2-0.9) = 0.33.
	if math.Abs(d-0.33) > 1e-9 {
		t.Errorf("D = %v, want 0.33", d)
	}
}

func TestCoverageDifferenceNonNegativeProperty(t *testing.T) {
	f := func(raw [16]float64) bool {
		var a, b []Point
		for i := 0; i+1 < len(raw); i += 2 {
			p := Point{
				Speedup: math.Mod(math.Abs(raw[i]), 1.5),
				Energy:  math.Mod(math.Abs(raw[i+1]), 2.0),
			}
			if i%4 == 0 {
				a = append(a, p)
			} else {
				b = append(b, p)
			}
		}
		return CoverageDifference(a, b) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExtremes(t *testing.T) {
	pts := []Point{
		{Speedup: 1.0, Energy: 1.0, ID: 0},
		{Speedup: 1.2, Energy: 1.3, ID: 1},
		{Speedup: 0.8, Energy: 0.7, ID: 2},
	}
	maxS, minE, ok := Extremes(pts)
	if !ok {
		t.Fatal("Extremes not ok")
	}
	if maxS.ID != 1 {
		t.Errorf("max speedup ID = %d, want 1", maxS.ID)
	}
	if minE.ID != 2 {
		t.Errorf("min energy ID = %d, want 2", minE.ID)
	}
	if _, _, ok := Extremes(nil); ok {
		t.Error("Extremes(nil) reported ok")
	}
}

func TestExtremesTieBreak(t *testing.T) {
	pts := []Point{
		{Speedup: 1.2, Energy: 1.3, ID: 0},
		{Speedup: 1.2, Energy: 1.1, ID: 1}, // same speedup, less energy: preferred
		{Speedup: 0.7, Energy: 0.7, ID: 2},
		{Speedup: 0.9, Energy: 0.7, ID: 3}, // same energy, more speedup: preferred
	}
	maxS, minE, _ := Extremes(pts)
	if maxS.ID != 1 {
		t.Errorf("max speedup tie-break ID = %d, want 1", maxS.ID)
	}
	if minE.ID != 3 {
		t.Errorf("min energy tie-break ID = %d, want 3", minE.ID)
	}
}

func TestExtremesDistance(t *testing.T) {
	ref := []Point{{Speedup: 1.2, Energy: 1.3}, {Speedup: 0.8, Energy: 0.7}}
	approx := []Point{{Speedup: 1.15, Energy: 1.25}, {Speedup: 0.85, Energy: 0.72}}
	d, ok := ExtremesDistance(ref, approx)
	if !ok {
		t.Fatal("not ok")
	}
	if math.Abs(d.MaxSpeedupDS-0.05) > 1e-12 || math.Abs(d.MaxSpeedupDE-0.05) > 1e-12 {
		t.Errorf("max speedup distance = (%v, %v), want (0.05, 0.05)", d.MaxSpeedupDS, d.MaxSpeedupDE)
	}
	if math.Abs(d.MinEnergyDS-0.05) > 1e-12 || math.Abs(d.MinEnergyDE-0.02) > 1e-12 {
		t.Errorf("min energy distance = (%v, %v), want (0.05, 0.02)", d.MinEnergyDS, d.MinEnergyDE)
	}
	if _, ok := ExtremesDistance(ref, nil); ok {
		t.Error("empty approximation reported ok")
	}
}

func TestFrontSorted(t *testing.T) {
	pts := []Point{
		{Speedup: 1.2, Energy: 1.3},
		{Speedup: 0.8, Energy: 0.7},
		{Speedup: 1.0, Energy: 1.0},
	}
	front := Fast(pts)
	if !sort.SliceIsSorted(front, func(i, j int) bool {
		return front[i].Speedup < front[j].Speedup
	}) {
		t.Errorf("front not sorted by speedup: %v", front)
	}
}
