// Package pareto implements the multi-objective machinery of the paper
// (Sections 3.4 and 4.5) for the bi-objective (speedup, normalized energy)
// problem: Pareto dominance (maximize speedup, minimize energy), the paper's
// simple Pareto-set algorithm (Algorithm 1) plus an O(n log n) sort-based
// variant, the 2-D hypervolume indicator, the binary coverage-difference
// metric D(P*, P') used in Table 2, and extreme-point distances.
package pareto

import (
	"math"
	"sort"
)

// Point is one kernel execution in objective space: Speedup is maximized,
// Energy (normalized energy) is minimized. ID optionally tags the point
// (e.g. the frequency configuration index) through set operations.
type Point struct {
	Speedup float64
	Energy  float64
	ID      int
}

// Dominates reports whether a ≺ b under the paper's definition:
// (s_a ≥ s_b ∧ e_a < e_b) ∨ (s_a > s_b ∧ e_a ≤ e_b).
func Dominates(a, b Point) bool {
	if a.Speedup >= b.Speedup && a.Energy < b.Energy {
		return true
	}
	if a.Speedup > b.Speedup && a.Energy <= b.Energy {
		return true
	}
	return false
}

// Simple computes the Pareto set with the paper's Algorithm 1: repeatedly
// pop a candidate and compare against the remaining points. O(n²) worst
// case but straightforward; kept verbatim as the reference implementation.
func Simple(points []Point) []Point {
	pending := append([]Point(nil), points...)
	var front []Point
	for len(pending) > 0 {
		candidate := pending[0]
		pending = pending[1:]
		dominated := false
		var rest []Point
		for _, p := range pending {
			if Dominates(p, candidate) {
				dominated = true
			}
			if !Dominates(candidate, p) {
				rest = append(rest, p)
			}
		}
		pending = rest
		if !dominated {
			// Not dominated by any remaining point; check against the
			// front built so far (handles duplicates and earlier winners).
			ok := true
			for _, f := range front {
				if Dominates(f, candidate) {
					ok = false
					break
				}
			}
			if ok {
				front = append(front, candidate)
			}
		}
	}
	sortFront(front)
	return front
}

// Fast computes the same Pareto set in O(n log n): sort by speedup
// descending (energy ascending as tie-break), then keep points whose energy
// is a strict running minimum, handling equal-speedup groups correctly.
func Fast(points []Point) []Point {
	if len(points) == 0 {
		return nil
	}
	ps := append([]Point(nil), points...)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Speedup != ps[j].Speedup {
			return ps[i].Speedup > ps[j].Speedup
		}
		return ps[i].Energy < ps[j].Energy
	})
	var front []Point
	bestE := math.Inf(1)
	i := 0
	for i < len(ps) {
		// Group of equal speedup: only its minimal-energy member can be
		// non-dominated, and only if it improves on the running minimum.
		j := i
		for j < len(ps) && ps[j].Speedup == ps[i].Speedup {
			j++
		}
		if ps[i].Energy < bestE {
			front = append(front, ps[i])
			bestE = ps[i].Energy
		}
		i = j
	}
	// Duplicate non-dominated points (exact ties in both objectives) are
	// all members of the front per the paper's non-strict definition.
	var out []Point
	for _, f := range front {
		for _, p := range points {
			if p.Speedup == f.Speedup && p.Energy == f.Energy {
				out = append(out, p)
			}
		}
	}
	sortFront(out)
	return out
}

func sortFront(front []Point) {
	sort.Slice(front, func(i, j int) bool {
		if front[i].Speedup != front[j].Speedup {
			return front[i].Speedup < front[j].Speedup
		}
		return front[i].Energy < front[j].Energy
	})
}

// RefPoint is the hypervolume reference point the paper uses for Table 2:
// speedup 0.0 (worst) and normalized energy 2.0 (worst).
var RefPoint = Point{Speedup: 0, Energy: 2}

// Hypervolume computes the 2-D dominated hypervolume of the point set with
// respect to ref (speedup maximized, energy minimized): the area of the
// union of rectangles [0→s_i] × [e_i→e_ref]. Points outside the reference
// box contribute only their clipped part.
func Hypervolume(points []Point, ref Point) float64 {
	front := Fast(points)
	if len(front) == 0 {
		return 0
	}
	// Sweep from the highest-speedup point down. Along the front, energy
	// strictly improves as speedup drops, so each point contributes the
	// rectangle between the next point's speedup (or the reference) and
	// its own speedup, at its own energy level.
	desc := append([]Point(nil), front...)
	sort.Slice(desc, func(i, j int) bool { return desc[i].Speedup > desc[j].Speedup })
	hv := 0.0
	for i := 0; i < len(desc); i++ {
		p := desc[i]
		if p.Speedup <= ref.Speedup || p.Energy >= ref.Energy {
			continue
		}
		nextS := ref.Speedup
		if i+1 < len(desc) {
			nextS = math.Max(desc[i+1].Speedup, ref.Speedup)
		}
		if p.Speedup > nextS {
			hv += (p.Speedup - nextS) * (ref.Energy - p.Energy)
		}
	}
	return hv
}

// CoverageDifference is the binary hypervolume metric of Table 2:
// D(P*, P') = HV(P* ∪ P') − HV(P'), the volume dominated by the reference
// set but missed by the approximation. 0 means the approximation covers
// everything the reference front covers.
func CoverageDifference(ref, approx []Point) float64 {
	union := append(append([]Point(nil), ref...), approx...)
	d := Hypervolume(union, RefPoint) - Hypervolume(approx, RefPoint)
	if d < 0 {
		return 0 // numerical guard: union can never dominate less
	}
	return d
}

// Extremes returns the maximum-speedup point and the minimum-energy point
// of the set (the paper's two "extreme configurations"). Ties break toward
// the better other objective. ok is false for an empty set.
func Extremes(points []Point) (maxSpeedup, minEnergy Point, ok bool) {
	if len(points) == 0 {
		return Point{}, Point{}, false
	}
	maxSpeedup, minEnergy = points[0], points[0]
	for _, p := range points[1:] {
		if p.Speedup > maxSpeedup.Speedup ||
			(p.Speedup == maxSpeedup.Speedup && p.Energy < maxSpeedup.Energy) {
			maxSpeedup = p
		}
		if p.Energy < minEnergy.Energy ||
			(p.Energy == minEnergy.Energy && p.Speedup > minEnergy.Speedup) {
			minEnergy = p
		}
	}
	return maxSpeedup, minEnergy, true
}

// ExtremeDistance reports the per-objective absolute distances between the
// corresponding extreme points of the reference and approximation sets, as
// the (Δspeedup, Δenergy) pairs of Table 2.
type ExtremeDistance struct {
	MaxSpeedupDS, MaxSpeedupDE float64
	MinEnergyDS, MinEnergyDE   float64
}

// ExtremesDistance computes the extreme-point distances between the true
// set and the approximation. ok is false if either set is empty.
func ExtremesDistance(ref, approx []Point) (ExtremeDistance, bool) {
	rMax, rMin, ok1 := Extremes(ref)
	aMax, aMin, ok2 := Extremes(approx)
	if !ok1 || !ok2 {
		return ExtremeDistance{}, false
	}
	return ExtremeDistance{
		MaxSpeedupDS: math.Abs(rMax.Speedup - aMax.Speedup),
		MaxSpeedupDE: math.Abs(rMax.Energy - aMax.Energy),
		MinEnergyDS:  math.Abs(rMin.Speedup - aMin.Speedup),
		MinEnergyDE:  math.Abs(rMin.Energy - aMin.Energy),
	}, true
}
