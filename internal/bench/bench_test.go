package bench

import (
	"math"
	"testing"

	"repro/internal/clkernel"
	"repro/internal/freq"
	"repro/internal/gpu"
	"repro/internal/measure"
	"repro/internal/nvml"
)

func TestTwelveBenchmarks(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("All() returned %d benchmarks, want 12", len(all))
	}
	want := []string{
		"PerlinNoise", "MD", "K-means", "MedianFilter", "Convolution",
		"Blackscholes", "MT", "Flte", "MatrixMultiply", "BitCompression",
		"AES", "k-NN",
	}
	for i, b := range all {
		if b.Name != want[i] {
			t.Errorf("benchmark %d = %q, want %q (Table 2 order)", i, b.Name, want[i])
		}
	}
}

func TestAllSourcesParse(t *testing.T) {
	for _, b := range All() {
		prog, err := clkernel.Parse(b.Source)
		if err != nil {
			t.Errorf("%s: parse error: %v", b.Name, err)
			continue
		}
		if prog.Kernel(b.KernelName) == nil {
			t.Errorf("%s: kernel %q missing", b.Name, b.KernelName)
		}
	}
}

func TestFeaturesPlausible(t *testing.T) {
	for _, b := range All() {
		f := b.Features()
		if !f.Valid() {
			t.Errorf("%s: invalid features %v", b.Name, f)
		}
		if f.Sum() <= 0 {
			t.Errorf("%s: empty features", b.Name)
		}
	}
	// Characteristic instruction mixes.
	knn, err := ByName("k-NN")
	if err != nil {
		t.Fatal(err)
	}
	f := knn.Features()
	if f[clkernel.OpFloatMul] <= 0 || f[clkernel.OpSpecial] <= 0 {
		t.Errorf("k-NN should contain float muls and sqrt: %v", f)
	}
	aes, err := ByName("AES")
	if err != nil {
		t.Fatal(err)
	}
	fa := aes.Features()
	if fa[clkernel.OpIntBitwise] < 0.2 {
		t.Errorf("AES bitwise share = %.3f, want dominant", fa[clkernel.OpIntBitwise])
	}
	mtb, err := ByName("MT")
	if err != nil {
		t.Fatal(err)
	}
	fm := mtb.Features()
	if fm[clkernel.OpIntBitwise] <= 0 || fm[clkernel.OpGlobalAccess] <= 0 {
		t.Errorf("MT should mix bitwise and global accesses: %v", fm)
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("k-NN"); err != nil {
		t.Errorf("ByName(k-NN): %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
	if got := len(Names()); got != 12 {
		t.Errorf("Names() has %d entries", got)
	}
}

// coreSensitivity measures the speedup gained by raising the core clock
// from the lowest to the highest setting at the default memory clock.
func coreSensitivity(t *testing.T, b *Benchmark) float64 {
	t.Helper()
	h := measure.NewHarness(nvml.NewDevice(gpu.TitanX()))
	base, err := h.Baseline(b.Profile())
	if err != nil {
		t.Fatalf("%s: baseline: %v", b.Name, err)
	}
	ladder := h.Device().Sim().Ladder
	cores := ladder.CoreClocks(freq.MemH)
	lo, err := h.MeasureRelative(b.Profile(), freq.Config{Mem: freq.MemH, Core: cores[0]}, base)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := h.MeasureRelative(b.Profile(), freq.Config{Mem: freq.MemH, Core: cores[len(cores)-1]}, base)
	if err != nil {
		t.Fatal(err)
	}
	return hi.Speedup / lo.Speedup
}

func TestComputeVsMemoryGroups(t *testing.T) {
	// Paper, Fig. 5: the twelve benchmarks split into compute-dominated
	// kernels (speedup follows the core clock) and memory-dominated ones
	// (speedup insensitive to it). Verify the canonical representatives.
	computeGroup := []string{"k-NN", "PerlinNoise", "MD", "AES"}
	memoryGroup := []string{"MT", "Blackscholes", "BitCompression"}
	for _, name := range computeGroup {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s := coreSensitivity(t, b); s < 1.5 {
			t.Errorf("%s: core sensitivity %.2f, want > 1.5 (compute-dominated)", name, s)
		}
	}
	for _, name := range memoryGroup {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s := coreSensitivity(t, b); s > 1.4 {
			t.Errorf("%s: core sensitivity %.2f, want < 1.4 (memory-dominated)", name, s)
		}
	}
}

func TestKnnDoublesAcrossCoreRange(t *testing.T) {
	// Paper, Section 4.2: for k-NN at mem-H, speedup goes from 0.62 up to
	// 1.12 — "it can double the performance by only changing the core
	// frequency".
	b, err := ByName("k-NN")
	if err != nil {
		t.Fatal(err)
	}
	h := measure.NewHarness(nvml.NewDevice(gpu.TitanX()))
	base, err := h.Baseline(b.Profile())
	if err != nil {
		t.Fatal(err)
	}
	ladder := h.Device().Sim().Ladder
	cores := ladder.CoreClocks(freq.MemH)
	lo, err := h.MeasureRelative(b.Profile(), freq.Config{Mem: freq.MemH, Core: cores[0]}, base)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := h.MeasureRelative(b.Profile(), freq.Config{Mem: freq.MemH, Core: cores[len(cores)-1]}, base)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Speedup > 0.75 || lo.Speedup < 0.45 {
		t.Errorf("k-NN low-core speedup = %.3f, want ~0.62", lo.Speedup)
	}
	if hi.Speedup < 1.05 || hi.Speedup > 1.3 {
		t.Errorf("k-NN high-core speedup = %.3f, want ~1.12-1.2", hi.Speedup)
	}
}

func TestMTPrefersHighMemory(t *testing.T) {
	// Paper, Fig. 1d: MT gains nothing from core scaling but loses badly
	// from memory downscaling.
	b, err := ByName("MT")
	if err != nil {
		t.Fatal(err)
	}
	h := measure.NewHarness(nvml.NewDevice(gpu.TitanX()))
	base, err := h.Baseline(b.Profile())
	if err != nil {
		t.Fatal(err)
	}
	ladder := h.Device().Sim().Ladder
	lCores := ladder.CoreClocks(freq.Meml)
	ml, err := h.MeasureRelative(b.Profile(), freq.Config{Mem: freq.Meml, Core: lCores[len(lCores)-1]}, base)
	if err != nil {
		t.Fatal(err)
	}
	if ml.Speedup > 0.7 {
		t.Errorf("MT at mem-l speedup = %.3f, want well below 1", ml.Speedup)
	}
}

func TestProfilesDeterministic(t *testing.T) {
	for _, b := range All() {
		p1 := b.Profile()
		b2, err := ByName(b.Name)
		if err != nil {
			t.Fatal(err)
		}
		p2 := b2.Profile()
		if p1.Counts != p2.Counts || p1.WorkItems != p2.WorkItems {
			t.Errorf("%s: profile not deterministic", b.Name)
		}
	}
}

func TestRuntimesReasonable(t *testing.T) {
	// Kernel times at default clocks should land in a realistic range
	// (0.05 ms .. 500 ms) so the 62.5 Hz power sampling logic is exercised
	// the same way as on the real board.
	d := gpu.TitanX()
	for _, b := range All() {
		r, err := d.SimulateDefault(b.Profile())
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		ms := r.TimeSec * 1e3
		if ms < 0.05 || ms > 500 {
			t.Errorf("%s: default runtime %.3f ms outside [0.05, 500]", b.Name, ms)
		}
		if math.IsNaN(r.PowerWatts) || r.PowerWatts < 50 || r.PowerWatts > 300 {
			t.Errorf("%s: default power %.1f W implausible", b.Name, r.PowerWatts)
		}
	}
}
