// Package bench provides the paper's twelve test benchmarks (Section 4.2)
// as OpenCL-subset kernels with launch metadata: PerlinNoise, MD
// (molecular dynamics), K-means, MedianFilter, Convolution, Blackscholes,
// MT (Mersenne Twister), Flte (FIR filter), MatrixMultiply,
// BitCompression, AES and k-NN.
//
// The top group (k-NN, AES, MatrixMultiply, Convolution, PerlinNoise, MD,
// K-means, Flte) is compute-dominated: speedup tracks the core clock. The
// bottom group (MedianFilter, BitCompression, MT, Blackscholes) is
// memory-dominated: speedup tracks the memory clock (paper, Fig. 5).
package bench

import (
	"fmt"

	"repro/internal/clkernel"
	"repro/internal/features"
	"repro/internal/gpu"
)

// Benchmark is one test application.
type Benchmark struct {
	// Name as used in the paper's figures and tables.
	Name string
	// KernelName is the kernel function within Source.
	KernelName string
	// Source is the OpenCL kernel source.
	Source string
	// WorkItems is the global work size of one launch.
	WorkItems int
	// Coalescing, CacheHitRate and OccupancyScale position the kernel's
	// memory behaviour (see gpu.KernelProfile).
	Coalescing     float64
	CacheHitRate   float64
	OccupancyScale float64

	prog *clkernel.Program
}

// Program returns the parsed program (cached).
func (b *Benchmark) Program() *clkernel.Program {
	if b.prog == nil {
		b.prog = clkernel.MustParse(b.Source)
	}
	return b.prog
}

// Features extracts the static feature vector.
func (b *Benchmark) Features() features.Static {
	return features.Extract(b.Program().Kernel(b.KernelName), b.Program())
}

// AllFeatures extracts the static feature vectors of every test benchmark,
// in Names() order — the natural input of a batch prediction request.
func AllFeatures() []features.Static {
	bs := All()
	out := make([]features.Static, len(bs))
	for i, b := range bs {
		out[i] = b.Features()
	}
	return out
}

// Profile derives the simulator execution profile.
func (b *Benchmark) Profile() gpu.KernelProfile {
	counts := clkernel.Count(b.Program().Kernel(b.KernelName), b.Program(), clkernel.Weighted)
	return gpu.KernelProfile{
		Name:           b.Name,
		Counts:         counts,
		WorkItems:      b.WorkItems,
		Coalescing:     b.Coalescing,
		CacheHitRate:   b.CacheHitRate,
		OccupancyScale: b.OccupancyScale,
	}
}

// ByName returns the benchmark with the given name, or an error listing the
// valid names.
func ByName(name string) (*Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown benchmark %q (valid: %v)", name, Names())
}

// Names lists the benchmark names in the paper's Table 2 order.
func Names() []string {
	var out []string
	for _, b := range All() {
		out = append(out, b.Name)
	}
	return out
}

// All returns the twelve test benchmarks, in the paper's Table 2 order
// (sorted by its coverage-difference results).
func All() []*Benchmark {
	return []*Benchmark{
		perlinNoise(), md(), kmeans(), medianFilter(), convolution(),
		blackscholes(), mt(), flte(), matrixMultiply(), bitCompression(),
		aes(), knn(),
	}
}

func perlinNoise() *Benchmark {
	return &Benchmark{
		Name:       "PerlinNoise",
		KernelName: "perlin",
		WorkItems:  1 << 21,
		Coalescing: 1, CacheHitRate: 0.5, OccupancyScale: 1,
		Source: `
float fade(float t) {
    return t * t * t * (t * (t * 6.0f - 15.0f) + 10.0f);
}
float lerp1(float a, float b, float t) {
    return a + t * (b - a);
}
float grad(int h, float x, float y) {
    int hh = h & 7;
    float u = (hh < 4) ? x : y;
    float v = (hh < 4) ? y : x;
    float su = ((hh & 1) == 0) ? u : -u;
    float sv = ((hh & 2) == 0) ? v : -v;
    return su + sv;
}
__kernel void perlin(__global const int* perm, __global float* out,
                     int width, float scale) {
    int gid = get_global_id(0);
    float x = (float)(gid % width) * scale;
    float y = (float)(gid / width) * scale;
    float acc = 0.0f;
    float amp = 1.0f;
    for (int oct = 0; oct < 4; oct++) {
        int xi = (int)x & 255;
        int yi = (int)y & 255;
        float xf = x - floor(x);
        float yf = y - floor(y);
        float u = fade(xf);
        float v = fade(yf);
        int aa = perm[(perm[xi & 255] + yi) & 255];
        int ab = perm[(perm[xi & 255] + yi + 1) & 255];
        int ba = perm[(perm[(xi + 1) & 255] + yi) & 255];
        int bb = perm[(perm[(xi + 1) & 255] + yi + 1) & 255];
        float g1 = grad(aa, xf, yf);
        float g2 = grad(ba, xf - 1.0f, yf);
        float g3 = grad(ab, xf, yf - 1.0f);
        float g4 = grad(bb, xf - 1.0f, yf - 1.0f);
        float x1 = lerp1(g1, g2, u);
        float x2 = lerp1(g3, g4, u);
        acc += lerp1(x1, x2, v) * amp;
        amp *= 0.5f;
        x *= 2.0f;
        y *= 2.0f;
    }
    out[gid] = acc;
}`,
	}
}

func md() *Benchmark {
	return &Benchmark{
		Name:       "MD",
		KernelName: "md_forces",
		WorkItems:  1 << 17,
		Coalescing: 1, CacheHitRate: 0.93, OccupancyScale: 1,
		Source: `
__kernel void md_forces(__global const float4* pos, __global float4* force,
                        int nAtoms, float cutsq, float lj1, float lj2) {
    int i = get_global_id(0);
    float4 p = pos[i];
    float fx = 0.0f; float fy = 0.0f; float fz = 0.0f;
    for (int j = 0; j < 128; j++) {
        float4 q = pos[(i + j + 1) % nAtoms];
        float dx = p.x - q.x;
        float dy = p.y - q.y;
        float dz = p.z - q.z;
        float r2 = dx * dx + dy * dy + dz * dz;
        if (r2 < cutsq) {
            float r2inv = 1.0f / r2;
            float r6inv = r2inv * r2inv * r2inv;
            float f = r2inv * r6inv * (lj1 * r6inv - lj2);
            fx += dx * f;
            fy += dy * f;
            fz += dz * f;
        }
    }
    float4 out;
    out.x = fx; out.y = fy; out.z = fz; out.w = 0.0f;
    force[i] = out;
}`,
	}
}

func kmeans() *Benchmark {
	return &Benchmark{
		Name:       "K-means",
		KernelName: "kmeans_assign",
		WorkItems:  1 << 20,
		Coalescing: 1, CacheHitRate: 0.9, OccupancyScale: 1,
		Source: `
__kernel void kmeans_assign(__global const float* points,
                            __constant float* centroids,
                            __global int* assign,
                            int nPoints, int nClusters) {
    int i = get_global_id(0);
    float px = points[i * 4];
    float py = points[i * 4 + 1];
    float pz = points[i * 4 + 2];
    float pw = points[i * 4 + 3];
    int best = 0;
    float bestDist = 1e30f;
    for (int c = 0; c < 16; c++) {
        float dx = px - centroids[c * 4];
        float dy = py - centroids[c * 4 + 1];
        float dz = pz - centroids[c * 4 + 2];
        float dw = pw - centroids[c * 4 + 3];
        float d = dx * dx + dy * dy + dz * dz + dw * dw;
        if (d < bestDist) {
            bestDist = d;
            best = c;
        }
    }
    assign[i] = best;
}`,
	}
}

func medianFilter() *Benchmark {
	return &Benchmark{
		Name:       "MedianFilter",
		KernelName: "median3x3",
		WorkItems:  1 << 21,
		Coalescing: 0.55, CacheHitRate: 0.55, OccupancyScale: 1,
		Source: `
float minf(float a, float b) { return (a < b) ? a : b; }
float maxf(float a, float b) { return (a > b) ? a : b; }
__kernel void median3x3(__global const float* in, __global float* out,
                        int width, int height) {
    int x = get_global_id(0) % width;
    int y = get_global_id(0) / width;
    int xm = (x > 0) ? x - 1 : 0;
    int xp = (x < width - 1) ? x + 1 : width - 1;
    int ym = (y > 0) ? y - 1 : 0;
    int yp = (y < height - 1) ? y + 1 : height - 1;
    float v0 = in[ym * width + xm];
    float v1 = in[ym * width + x];
    float v2 = in[ym * width + xp];
    float v3 = in[y * width + xm];
    float v4 = in[y * width + x];
    float v5 = in[y * width + xp];
    float v6 = in[yp * width + xm];
    float v7 = in[yp * width + x];
    float v8 = in[yp * width + xp];
    float t;
    t = minf(v1, v2); v2 = maxf(v1, v2); v1 = t;
    t = minf(v4, v5); v5 = maxf(v4, v5); v4 = t;
    t = minf(v7, v8); v8 = maxf(v7, v8); v7 = t;
    t = minf(v0, v1); v1 = maxf(v0, v1); v0 = t;
    t = minf(v3, v4); v4 = maxf(v3, v4); v3 = t;
    t = minf(v6, v7); v7 = maxf(v6, v7); v6 = t;
    t = minf(v1, v2); v2 = maxf(v1, v2); v1 = t;
    t = minf(v4, v5); v5 = maxf(v4, v5); v4 = t;
    t = minf(v7, v8); v8 = maxf(v7, v8); v7 = t;
    v3 = maxf(v0, v3);
    v6 = maxf(v3, v6);
    v5 = minf(v5, v8);
    v2 = minf(v2, v5);
    v4 = maxf(v1, v4);
    v4 = minf(v4, v7);
    v4 = minf(maxf(v2, v4), v6);
    out[y * width + x] = v4;
}`,
	}
}

func convolution() *Benchmark {
	return &Benchmark{
		Name:       "Convolution",
		KernelName: "conv5x5",
		WorkItems:  1 << 21,
		Coalescing: 1, CacheHitRate: 0.88, OccupancyScale: 1,
		Source: `
__kernel void conv5x5(__global const float* in, __constant float* filter,
                      __global float* out, int width, int height) {
    int x = get_global_id(0) % width;
    int y = get_global_id(0) / width;
    float acc = 0.0f;
    for (int fy = 0; fy < 5; fy++) {
        for (int fx = 0; fx < 5; fx++) {
            int ix = x + fx - 2;
            int iy = y + fy - 2;
            if (ix >= 0) {
                if (ix < width) {
                    if (iy >= 0) {
                        if (iy < height) {
                            acc += in[iy * width + ix] * filter[fy * 5 + fx];
                        }
                    }
                }
            }
        }
    }
    out[y * width + x] = acc;
}`,
	}
}

func blackscholes() *Benchmark {
	return &Benchmark{
		Name:       "Blackscholes",
		KernelName: "blackscholes",
		WorkItems:  1 << 22,
		Coalescing: 0.55, CacheHitRate: 0.05, OccupancyScale: 1,
		Source: `
float cnd(float d) {
    float k = 1.0f / (1.0f + 0.2316419f * fabs(d));
    float poly = k * (0.319381530f + k * (-0.356563782f +
        k * (1.781477937f + k * (-1.821255978f + k * 1.330274429f))));
    float w = 0.39894228f * exp(-0.5f * d * d) * poly;
    return (d > 0.0f) ? 1.0f - w : w;
}
__kernel void blackscholes(__global const float* price,
                           __global const float* strike,
                           __global const float* years,
                           __global float* callOut,
                           __global float* putOut,
                           float riskfree, float volatility) {
    int i = get_global_id(0);
    float s = price[i];
    float x = strike[i];
    float t = years[i];
    float sqrtT = sqrt(t);
    float d1 = (log(s / x) + (riskfree + 0.5f * volatility * volatility) * t)
             / (volatility * sqrtT);
    float d2 = d1 - volatility * sqrtT;
    float cndD1 = cnd(d1);
    float cndD2 = cnd(d2);
    float expRT = exp(-riskfree * t);
    callOut[i] = s * cndD1 - x * expRT * cndD2;
    putOut[i] = x * expRT * (1.0f - cndD2) - s * (1.0f - cndD1);
}`,
	}
}

func mt() *Benchmark {
	return &Benchmark{
		Name:       "MT",
		KernelName: "mersenne",
		WorkItems:  1 << 20,
		Coalescing: 0.5, CacheHitRate: 0.05, OccupancyScale: 1,
		Source: `
__kernel void mersenne(__global const uint* state, __global uint* out,
                       int perThread) {
    int gid = get_global_id(0);
    uint s0 = state[gid * 4];
    uint s1 = state[gid * 4 + 1];
    uint s2 = state[gid * 4 + 2];
    uint s3 = state[gid * 4 + 3];
    for (int i = 0; i < 16; i++) {
        uint y = (s0 & 0x80000000u) | (s1 & 0x7fffffffu);
        uint next = s3 ^ (y >> 1);
        if ((y & 1u) != 0u) {
            next = next ^ 0x9908b0dfu;
        }
        uint t = next;
        t = t ^ (t >> 11);
        t = t ^ ((t << 7) & 0x9d2c5680u);
        t = t ^ ((t << 15) & 0xefc60000u);
        t = t ^ (t >> 18);
        out[gid * 16 + i] = t;
        s0 = s1; s1 = s2; s2 = s3; s3 = next;
    }
}`,
	}
}

func flte() *Benchmark {
	return &Benchmark{
		Name:       "Flte",
		KernelName: "fir",
		WorkItems:  1 << 21,
		Coalescing: 1, CacheHitRate: 0.92, OccupancyScale: 1,
		Source: `
__kernel void fir(__global const float* signal, __constant float* taps,
                  __global float* out, int n) {
    int i = get_global_id(0);
    float acc = 0.0f;
    for (int t = 0; t < 32; t++) {
        acc += signal[i + t] * taps[t];
    }
    out[i] = acc;
}`,
	}
}

func matrixMultiply() *Benchmark {
	return &Benchmark{
		Name:       "MatrixMultiply",
		KernelName: "matmul_tiled",
		WorkItems:  1 << 20,
		Coalescing: 1, CacheHitRate: 0.3, OccupancyScale: 1,
		Source: `
__kernel void matmul_tiled(__global const float* a, __global const float* b,
                           __global float* c, int n) {
    __local float tileA[256];
    __local float tileB[256];
    int row = get_global_id(0) / n;
    int col = get_global_id(0) % n;
    int lrow = get_local_id(0) / 16;
    int lcol = get_local_id(0) % 16;
    float acc = 0.0f;
    for (int t = 0; t < 32; t++) {
        tileA[lrow * 16 + lcol] = a[row * n + t * 16 + lcol];
        tileB[lrow * 16 + lcol] = b[(t * 16 + lrow) * n + col];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int k = 0; k < 16; k++) {
            acc += tileA[lrow * 16 + k] * tileB[k * 16 + lcol];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    c[row * n + col] = acc;
}`,
	}
}

func bitCompression() *Benchmark {
	return &Benchmark{
		Name:       "BitCompression",
		KernelName: "bitpack",
		WorkItems:  1 << 21,
		Coalescing: 0.9, CacheHitRate: 0.05, OccupancyScale: 1,
		Source: `
__kernel void bitpack(__global const uint* in, __global uint* out, int n) {
    int gid = get_global_id(0);
    uint w0 = in[gid * 4];
    uint w1 = in[gid * 4 + 1];
    uint w2 = in[gid * 4 + 2];
    uint w3 = in[gid * 4 + 3];
    uint p0 = (w0 & 0xffu) | ((w1 & 0xffu) << 8) |
              ((w2 & 0xffu) << 16) | ((w3 & 0xffu) << 24);
    out[gid] = p0;
}`,
	}
}

func aes() *Benchmark {
	return &Benchmark{
		Name:       "AES",
		KernelName: "aes_round",
		WorkItems:  1 << 20,
		Coalescing: 1, CacheHitRate: 0.35, OccupancyScale: 1,
		Source: `
__kernel void aes_round(__global const uint* in, __global uint* out,
                        __local uint* sbox, __constant uint* roundKeys) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    uint s0 = in[gid * 4];
    uint s1 = in[gid * 4 + 1];
    uint s2 = in[gid * 4 + 2];
    uint s3 = in[gid * 4 + 3];
    for (int r = 0; r < 10; r++) {
        uint t0 = sbox[(s0 >> 24) & 255] ^ sbox[(s1 >> 16) & 255]
                ^ sbox[(s2 >> 8) & 255] ^ sbox[s3 & 255];
        uint t1 = sbox[(s1 >> 24) & 255] ^ sbox[(s2 >> 16) & 255]
                ^ sbox[(s3 >> 8) & 255] ^ sbox[s0 & 255];
        uint t2 = sbox[(s2 >> 24) & 255] ^ sbox[(s3 >> 16) & 255]
                ^ sbox[(s0 >> 8) & 255] ^ sbox[s1 & 255];
        uint t3 = sbox[(s3 >> 24) & 255] ^ sbox[(s0 >> 16) & 255]
                ^ sbox[(s1 >> 8) & 255] ^ sbox[s2 & 255];
        s0 = t0 ^ roundKeys[r * 4];
        s1 = t1 ^ roundKeys[r * 4 + 1];
        s2 = t2 ^ roundKeys[r * 4 + 2];
        s3 = t3 ^ roundKeys[r * 4 + 3];
    }
    out[gid * 4] = s0;
    out[gid * 4 + 1] = s1;
    out[gid * 4 + 2] = s2;
    out[gid * 4 + 3] = s3;
}`,
	}
}

func knn() *Benchmark {
	return &Benchmark{
		Name:       "k-NN",
		KernelName: "knn_dist",
		WorkItems:  1 << 19,
		Coalescing: 1, CacheHitRate: 0.92, OccupancyScale: 1,
		Source: `
__kernel void knn_dist(__global const float4* refs, __global const float4* query,
                       __global float* dist, int nRef) {
    int gid = get_global_id(0);
    float4 q = query[gid];
    float best0 = 1e30f;
    float best1 = 1e30f;
    float best2 = 1e30f;
    float best3 = 1e30f;
    for (int j = 0; j < 96; j++) {
        float4 r = refs[j];
        float dx = q.x - r.x;
        float dy = q.y - r.y;
        float dz = q.z - r.z;
        float dw = q.w - r.w;
        float d = sqrt(dx * dx + dy * dy + dz * dz + dw * dw);
        if (d < best0) {
            best3 = best2; best2 = best1; best1 = best0; best0 = d;
        } else if (d < best1) {
            best3 = best2; best2 = best1; best1 = d;
        } else if (d < best2) {
            best3 = best2; best2 = d;
        } else if (d < best3) {
            best3 = d;
        }
    }
    dist[gid * 4] = best0;
    dist[gid * 4 + 1] = best1;
    dist[gid * 4 + 2] = best2;
    dist[gid * 4 + 3] = best3;
}`,
	}
}
