// Package synth generates the paper's 106 synthetic training
// micro-benchmarks (Section 3.3): pattern-based OpenCL codes, each pattern
// stressing one feature class with instruction intensities 2⁰..2⁸ (nine
// codes per pattern, ten patterns), plus sixteen mixed-feature kernels. The
// generated sources are real OpenCL-subset code that flows through the same
// front-end, feature extractor and simulator as the test benchmarks.
package synth

import (
	"fmt"
	"strings"

	"repro/internal/clkernel"
	"repro/internal/features"
	"repro/internal/gpu"
)

// Benchmark is one generated training micro-benchmark.
type Benchmark struct {
	// Name is unique, e.g. "b-float-add-64".
	Name string
	// Pattern is the generating pattern, e.g. "b-float-add".
	Pattern string
	// Intensity is the instruction count of the stressed class.
	Intensity int
	// Source is the OpenCL kernel source.
	Source string
	// KernelName is the kernel function's name within Source.
	KernelName string

	prog *clkernel.Program
}

// Program returns the parsed program (cached).
func (b *Benchmark) Program() *clkernel.Program {
	if b.prog == nil {
		b.prog = clkernel.MustParse(b.Source)
	}
	return b.prog
}

// Features extracts the static feature vector of the benchmark.
func (b *Benchmark) Features() features.Static {
	return features.Extract(b.Program().Kernel(b.KernelName), b.Program())
}

// Profile derives the dynamic execution profile used by the simulator.
// Micro-benchmarks run 2²⁰ work-items with the cache behaviour of a typical
// application kernel (partial L2 reuse, near-full coalescing) so that the
// feature→behaviour mapping the models learn is centered on what the test
// benchmarks exhibit.
func (b *Benchmark) Profile() gpu.KernelProfile {
	counts := clkernel.Count(b.Program().Kernel(b.KernelName), b.Program(), clkernel.Weighted)
	return gpu.KernelProfile{
		Name:         b.Name,
		Counts:       counts,
		WorkItems:    1 << 20,
		Coalescing:   0.9,
		CacheHitRate: 0.45,
	}
}

// Intensities are the per-pattern instruction intensities: 2⁰..2⁸, nine
// codes per pattern as in the paper ("from 2⁰ to 2⁸").
var Intensities = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}

// pattern describes one code-generation pattern.
type pattern struct {
	name string
	gen  func(n int) string
}

// repeatOp emits n dependent operations on accumulators v0..v3 to avoid a
// single trivially-foldable chain.
func repeatOp(n int, op func(acc string, i int) string) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		acc := fmt.Sprintf("v%d", i%4)
		b.WriteString("    ")
		b.WriteString(op(acc, i))
		b.WriteString("\n")
	}
	return b.String()
}

func intHeader(name string, n int) string {
	return fmt.Sprintf(`__kernel void %s(__global int* data, int n) {
    int gid = get_global_id(0);
    int v0 = gid; int v1 = gid + n; int v2 = n; int v3 = 1;
%s    data[gid] = v0 + v1 + v2 + v3;
}`, name, bodyPlaceholder(n))
}

// bodyPlaceholder is replaced by the caller; kept to make templates obvious.
func bodyPlaceholder(int) string { return "%BODY%" }

func buildInt(kind string, stmt func(acc string, i int) string) func(int) string {
	return func(n int) string {
		name := kernelName(kind, n)
		src := intHeader(name, n)
		return strings.Replace(src, "%BODY%", repeatOp(n, stmt), 1)
	}
}

func floatHeader(name string) string {
	return fmt.Sprintf(`__kernel void %s(__global float* data, int n) {
    int gid = get_global_id(0);
    float v0 = data[gid];
    float v1 = v0 + 1.0f; float v2 = v0 + 2.0f; float v3 = v0 + 3.0f;
%s    data[gid] = v0 + v1 + v2 + v3;
}`, name, "%BODY%")
}

func buildFloat(kind string, stmt func(acc string, i int) string) func(int) string {
	return func(n int) string {
		name := kernelName(kind, n)
		return strings.Replace(floatHeader(name), "%BODY%", repeatOp(n, stmt), 1)
	}
}

func kernelName(kind string, n int) string {
	return strings.ReplaceAll(kind, "-", "_") + fmt.Sprintf("_%d", n)
}

// patterns covers each of the ten feature classes.
func patterns() []pattern {
	return []pattern{
		{"b-int-add", buildInt("b-int-add", func(a string, i int) string {
			return fmt.Sprintf("%s = %s + %d;", a, a, i+1)
		})},
		{"b-int-mul", buildInt("b-int-mul", func(a string, i int) string {
			return fmt.Sprintf("%s = %s * %d;", a, a, i%7+3)
		})},
		{"b-int-div", buildInt("b-int-div", func(a string, i int) string {
			return fmt.Sprintf("%s = %s / %d;", a, a, i%5+2)
		})},
		{"b-int-bw", buildInt("b-int-bw", func(a string, i int) string {
			switch i % 3 {
			case 0:
				return fmt.Sprintf("%s = %s ^ %d;", a, a, i+1)
			case 1:
				return fmt.Sprintf("%s = %s << 1;", a, a)
			default:
				return fmt.Sprintf("%s = %s | %d;", a, a, i+1)
			}
		})},
		{"b-float-add", buildFloat("b-float-add", func(a string, i int) string {
			return fmt.Sprintf("%s = %s + %d.5f;", a, a, i+1)
		})},
		{"b-float-mul", buildFloat("b-float-mul", func(a string, i int) string {
			return fmt.Sprintf("%s = %s * 1.00%df;", a, a, i%9+1)
		})},
		{"b-float-div", buildFloat("b-float-div", func(a string, i int) string {
			return fmt.Sprintf("%s = %s / 1.00%df;", a, a, i%9+1)
		})},
		{"b-sf", buildFloat("b-sf", func(a string, i int) string {
			fns := []string{"sin", "cos", "exp", "log", "sqrt", "rsqrt"}
			return fmt.Sprintf("%s = %s(%s);", a, fns[i%len(fns)], a)
		})},
		{"b-gl-access", func(n int) string {
			name := kernelName("b-gl-access", n)
			var body strings.Builder
			for i := 0; i < n; i++ {
				// Alternate streaming loads and stores through the four
				// precomputed strided indices: the access itself is the
				// only per-line instruction.
				if i%2 == 0 {
					fmt.Fprintf(&body, "    acc = data[i%d];\n", i%4)
				} else {
					fmt.Fprintf(&body, "    out[i%d] = acc;\n", i%4)
				}
			}
			return fmt.Sprintf(`__kernel void %s(__global float* data, __global float* out, int n) {
    int gid = get_global_id(0);
    int mask = n - 1;
    int i0 = gid & mask;
    int i1 = (gid + 4096) & mask;
    int i2 = (gid + 8192) & mask;
    int i3 = (gid + 12288) & mask;
    float acc = 0.0f;
%s    out[i0] = acc;
}`, name, body.String())
		}},
		{"b-loc-access", func(n int) string {
			name := kernelName("b-loc-access", n)
			var body strings.Builder
			for i := 0; i < n; i++ {
				if i%2 == 0 {
					fmt.Fprintf(&body, "    acc = tile[l%d];\n", i%4)
				} else {
					fmt.Fprintf(&body, "    tile[l%d] = acc;\n", i%4)
				}
			}
			return fmt.Sprintf(`__kernel void %s(__global float* data, int n) {
    __local float tile[256];
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int l0 = lid & 255;
    int l1 = (lid + 64) & 255;
    int l2 = (lid + 128) & 255;
    int l3 = (lid + 192) & 255;
    tile[l0] = data[gid];
    barrier(CLK_LOCAL_MEM_FENCE);
    float acc = 0.0f;
%s    data[gid] = acc;
}`, name, body.String())
		}},
	}
}

// mixed emits the sixteen mixed-feature kernels: deterministic combinations
// sweeping the compute/memory balance and the int/float balance, so the
// training set covers the interior of the feature space, not only its axes.
func mixed() []Benchmark {
	var out []Benchmark
	for i := 0; i < 16; i++ {
		fa := 4 + 12*(i%4)    // float add/mul chain length
		ia := 2 + 6*((i/4)%4) // int ops
		gl := 1 + i%5         // extra global accesses
		sf := i % 3           // special functions
		name := fmt.Sprintf("b-mix-%02d", i)
		kname := fmt.Sprintf("b_mix_%02d", i)
		var body strings.Builder
		for k := 0; k < fa; k++ {
			fmt.Fprintf(&body, "    f%d = f%d * 1.001f + 0.5f;\n", k%2, k%2)
		}
		for k := 0; k < ia; k++ {
			switch k % 3 {
			case 0:
				fmt.Fprintf(&body, "    a = a + %d;\n", k+1)
			case 1:
				fmt.Fprintf(&body, "    a = a ^ %d;\n", k+1)
			default:
				fmt.Fprintf(&body, "    a = a * 3;\n")
			}
		}
		for k := 0; k < gl; k++ {
			fmt.Fprintf(&body, "    f0 += data[(gid + %d) & mask];\n", (k+1)*128)
		}
		for k := 0; k < sf; k++ {
			fmt.Fprintf(&body, "    f1 = sqrt(f1 + 1.0f);\n")
		}
		src := fmt.Sprintf(`__kernel void %s(__global float* data, int n) {
    int gid = get_global_id(0);
    int mask = n - 1;
    int a = gid;
    float f0 = data[gid];
    float f1 = 1.5f;
%s    data[gid & mask] = f0 + f1 + (float)a;
}`, kname, body.String())
		out = append(out, Benchmark{
			Name:       name,
			Pattern:    "b-mix",
			Intensity:  i,
			Source:     src,
			KernelName: kname,
		})
	}
	return out
}

// Generate builds all 106 micro-benchmarks: 10 patterns × 9 intensities
// plus 16 mixed kernels.
func Generate() []Benchmark {
	var out []Benchmark
	for _, p := range patterns() {
		for _, n := range Intensities {
			out = append(out, Benchmark{
				Name:       fmt.Sprintf("%s-%d", p.name, n),
				Pattern:    p.name,
				Intensity:  n,
				Source:     p.gen(n),
				KernelName: kernelName(p.name, n),
			})
		}
	}
	out = append(out, mixed()...)
	return out
}
