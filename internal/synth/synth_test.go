package synth

import (
	"strings"
	"testing"

	"repro/internal/clkernel"
	"repro/internal/features"
)

func TestGenerateCount(t *testing.T) {
	bs := Generate()
	if len(bs) != 106 {
		t.Fatalf("Generate() produced %d benchmarks, want 106 (paper, Section 3.3)", len(bs))
	}
	names := map[string]bool{}
	for _, b := range bs {
		if names[b.Name] {
			t.Errorf("duplicate benchmark name %q", b.Name)
		}
		names[b.Name] = true
	}
}

func TestAllSourcesParse(t *testing.T) {
	for _, b := range Generate() {
		b := b
		prog, err := clkernel.Parse(b.Source)
		if err != nil {
			t.Errorf("%s: parse error: %v\nsource:\n%s", b.Name, err, b.Source)
			continue
		}
		if prog.Kernel(b.KernelName) == nil {
			t.Errorf("%s: kernel %q not found", b.Name, b.KernelName)
		}
	}
}

func TestPatternsStressTheirClass(t *testing.T) {
	// For each single-class pattern at high intensity, the stressed feature
	// must be the dominant component of the static feature vector.
	classOf := map[string]int{
		"b-int-add":    int(clkernel.OpIntAdd),
		"b-int-mul":    int(clkernel.OpIntMul),
		"b-int-div":    int(clkernel.OpIntDiv),
		"b-int-bw":     int(clkernel.OpIntBitwise),
		"b-float-add":  int(clkernel.OpFloatAdd),
		"b-float-mul":  int(clkernel.OpFloatMul),
		"b-float-div":  int(clkernel.OpFloatDiv),
		"b-sf":         int(clkernel.OpSpecial),
		"b-gl-access":  int(clkernel.OpGlobalAccess),
		"b-loc-access": int(clkernel.OpLocalAccess),
	}
	for _, b := range Generate() {
		want, ok := classOf[b.Pattern]
		if !ok || b.Intensity < 256 {
			continue
		}
		f := b.Features()
		for i := range f {
			if i != want && f[i] > f[want] {
				t.Errorf("%s: feature %s (%.3f) exceeds stressed %s (%.3f)",
					b.Name, features.Names[i], f[i], features.Names[want], f[want])
			}
		}
		if f[want] < 0.5 {
			t.Errorf("%s: stressed feature share %.3f, want > 0.5 at intensity 256",
				b.Name, f[want])
		}
	}
}

func TestIntensityMonotone(t *testing.T) {
	// Within a pattern, the stressed feature share must grow with
	// intensity (that is the point of the intensity sweep).
	byPattern := map[string][]Benchmark{}
	for _, b := range Generate() {
		byPattern[b.Pattern] = append(byPattern[b.Pattern], b)
	}
	fa := int(clkernel.OpFloatAdd)
	seq := byPattern["b-float-add"]
	if len(seq) != 9 {
		t.Fatalf("b-float-add has %d codes, want 9", len(seq))
	}
	prev := -1.0
	for _, b := range seq {
		share := b.Features()[fa]
		if share <= prev {
			t.Errorf("%s: share %.4f not above previous %.4f", b.Name, share, prev)
		}
		prev = share
	}
}

func TestProfilesUsable(t *testing.T) {
	for _, b := range Generate() {
		p := b.Profile()
		if p.WorkItems <= 0 {
			t.Errorf("%s: bad WorkItems", b.Name)
		}
		if p.Counts.Total() <= 0 {
			t.Errorf("%s: empty counts", b.Name)
		}
		if p.Name != b.Name {
			t.Errorf("%s: profile name %q", b.Name, p.Name)
		}
	}
}

func TestMemoryPatternsHaveTraffic(t *testing.T) {
	for _, b := range Generate() {
		if b.Pattern == "b-gl-access" && b.Intensity >= 16 {
			p := b.Profile()
			if p.Counts.GlobalBytes < float64(b.Intensity)*4*0.9 {
				t.Errorf("%s: GlobalBytes = %.0f, want >= ~%d", b.Name,
					p.Counts.GlobalBytes, b.Intensity*4)
			}
		}
		if b.Pattern == "b-loc-access" && b.Intensity >= 16 {
			p := b.Profile()
			if p.Counts.LocalBytes <= 0 {
				t.Errorf("%s: no local traffic", b.Name)
			}
		}
	}
}

func TestMixedKernelsVaryFeatures(t *testing.T) {
	var mixes []features.Static
	for _, b := range Generate() {
		if b.Pattern == "b-mix" {
			mixes = append(mixes, b.Features())
		}
	}
	if len(mixes) != 16 {
		t.Fatalf("got %d mixed kernels, want 16", len(mixes))
	}
	distinct := map[features.Static]bool{}
	for _, f := range mixes {
		distinct[f] = true
	}
	if len(distinct) < 12 {
		t.Errorf("only %d distinct mixed feature vectors of 16; poor space coverage", len(distinct))
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, b := Generate(), Generate()
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Source != b[i].Source {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
}

func TestNamesMatchPatternConvention(t *testing.T) {
	for _, b := range Generate() {
		if !strings.HasPrefix(b.Name, b.Pattern) {
			t.Errorf("name %q does not start with pattern %q", b.Name, b.Pattern)
		}
	}
}
