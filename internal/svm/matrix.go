package svm

// designMatrix stores the training inputs as one contiguous row-major block
// so kernel-row computation walks sequential memory instead of chasing
// per-row slice headers. Row i occupies data[i*dim : (i+1)*dim].
type designMatrix struct {
	data []float64
	n    int
	dim  int
}

// newDesignMatrix copies xs (validated as rectangular by Train) into flat
// storage.
func newDesignMatrix(xs [][]float64) *designMatrix {
	n := len(xs)
	dim := 0
	if n > 0 {
		dim = len(xs[0])
	}
	d := &designMatrix{data: make([]float64, n*dim), n: n, dim: dim}
	for i, x := range xs {
		copy(d.data[i*dim:(i+1)*dim], x)
	}
	return d
}

// row returns the i-th input vector as a capacity-clipped subslice.
func (d *designMatrix) row(i int) []float64 {
	return d.data[i*d.dim : (i+1)*d.dim : (i+1)*d.dim]
}
