package svm

// This file preserves the pre-overhaul SMO solver verbatim (per-element
// Kernel.Eval row fills over [][]float64, full 2n-variable scans, no
// shrinking) as a test-only reference implementation. The equivalence tests
// train the production solver and this reference on the same data and
// require matching models; see TestSolverMatchesReference.

import "math"

// refModel is the reference solver's output: f(x) = Σ coef·K(sv, x) + b.
type refModel struct {
	SupportVectors [][]float64
	Coefs          []float64
	B              float64
	Iters          int
	Converged      bool
	kernel         Kernel
}

// Predict evaluates the reference regression function with the plain
// per-support-vector kernel expansion.
func (m *refModel) Predict(x []float64) float64 {
	s := m.B
	for i, sv := range m.SupportVectors {
		s += m.Coefs[i] * m.kernel.Eval(sv, x)
	}
	return s
}

// refTrain is the pre-overhaul Train, minus input validation (the tests
// feed it known-good data).
func refTrain(xs [][]float64, ys []float64, k Kernel, p Params) *refModel {
	n := len(xs)
	if p.Tol <= 0 {
		p.Tol = 1e-3
	}
	maxIter := p.MaxIter
	if maxIter <= 0 {
		maxIter = 200 * n
		if maxIter < 100_000 {
			maxIter = 100_000
		}
	}
	s := &refSolver{
		xs: xs, ys: ys, k: k,
		n: n, c: p.C, eps: p.Epsilon, tol: p.Tol,
		cache: newRefRowCache(k, xs, p.CacheRows),
	}
	iters, converged := s.solve(maxIter)

	m := &refModel{kernel: k, Iters: iters, Converged: converged}
	for i := 0; i < n; i++ {
		beta := s.alpha[i] - s.alpha[i+n]
		if math.Abs(beta) > 1e-12 {
			m.SupportVectors = append(m.SupportVectors, xs[i])
			m.Coefs = append(m.Coefs, beta)
		}
	}
	m.B = s.offset()
	return m
}

type refSolver struct {
	xs    [][]float64
	ys    []float64
	k     Kernel
	n     int
	c     float64
	eps   float64
	tol   float64
	alpha []float64
	grad  []float64
	cache *refRowCache
}

func (s *refSolver) z(a int) float64 {
	if a < s.n {
		return 1
	}
	return -1
}

func (s *refSolver) p(a int) float64 {
	if a < s.n {
		return s.eps - s.ys[a]
	}
	return s.eps + s.ys[a-s.n]
}

func (s *refSolver) solve(maxIter int) (int, bool) {
	n2 := 2 * s.n
	s.alpha = make([]float64, n2)
	s.grad = make([]float64, n2)
	for a := 0; a < n2; a++ {
		s.grad[a] = s.p(a)
	}
	for it := 0; it < maxIter; it++ {
		i, j, gap := s.selectPair()
		if gap < s.tol {
			return it, true
		}
		s.update(i, j)
	}
	return maxIter, false
}

func (s *refSolver) selectPair() (int, int, float64) {
	n2 := 2 * s.n
	up := -1
	upVal := math.Inf(-1)
	for a := 0; a < n2; a++ {
		z := s.z(a)
		if (z > 0 && s.alpha[a] < s.c) || (z < 0 && s.alpha[a] > 0) {
			if v := -z * s.grad[a]; v > upVal {
				upVal, up = v, a
			}
		}
	}
	if up < 0 {
		return 0, 0, 0
	}
	rowUp := s.cache.row(up % s.n)
	kii := rowUp[up%s.n]

	low := -1
	lowVal := math.Inf(1)
	bestGain := -1.0
	const tau = 1e-12
	for a := 0; a < n2; a++ {
		z := s.z(a)
		if (z < 0 && s.alpha[a] < s.c) || (z > 0 && s.alpha[a] > 0) {
			v := -z * s.grad[a]
			if v < lowVal {
				lowVal = v
			}
			b := upVal - v
			if b > 0 {
				at := kii + s.cache.diag(a%s.n) - 2*rowUp[a%s.n]
				if at <= 0 {
					at = tau
				}
				if gain := b * b / at; gain > bestGain {
					bestGain, low = gain, a
				}
			}
		}
	}
	if low < 0 {
		return 0, 0, 0
	}
	return up, low, upVal - lowVal
}

func (s *refSolver) update(i, j int) {
	const tau = 1e-12
	zi, zj := s.z(i), s.z(j)
	rowI := s.cache.row(i % s.n)
	rowJ := s.cache.row(j % s.n)
	kii := rowI[i%s.n]
	kjj := rowJ[j%s.n]
	kij := rowI[j%s.n]

	quad := kii + kjj - 2*kij
	if quad <= 0 {
		quad = tau
	}
	oldAi, oldAj := s.alpha[i], s.alpha[j]
	if zi != zj {
		delta := (-s.grad[i] - s.grad[j]) / quad
		diff := s.alpha[i] - s.alpha[j]
		s.alpha[i] += delta
		s.alpha[j] += delta
		if diff > 0 {
			if s.alpha[j] < 0 {
				s.alpha[j] = 0
				s.alpha[i] = diff
			}
			if s.alpha[i] > s.c {
				s.alpha[i] = s.c
				s.alpha[j] = s.c - diff
			}
		} else {
			if s.alpha[i] < 0 {
				s.alpha[i] = 0
				s.alpha[j] = -diff
			}
			if s.alpha[j] > s.c {
				s.alpha[j] = s.c
				s.alpha[i] = s.c + diff
			}
		}
	} else {
		delta := (s.grad[i] - s.grad[j]) / quad
		sum := s.alpha[i] + s.alpha[j]
		s.alpha[i] -= delta
		s.alpha[j] += delta
		if sum > s.c {
			if s.alpha[i] > s.c {
				s.alpha[i] = s.c
				s.alpha[j] = sum - s.c
			}
		} else {
			if s.alpha[j] < 0 {
				s.alpha[j] = 0
				s.alpha[i] = sum
			}
		}
		if sum > s.c {
			if s.alpha[j] > s.c {
				s.alpha[j] = s.c
				s.alpha[i] = sum - s.c
			}
		} else {
			if s.alpha[i] < 0 {
				s.alpha[i] = 0
				s.alpha[j] = sum
			}
		}
	}

	dAi := s.alpha[i] - oldAi
	dAj := s.alpha[j] - oldAj
	if dAi == 0 && dAj == 0 {
		return
	}
	n := s.n
	for base := 0; base < n; base++ {
		ki := rowI[base]
		kj := rowJ[base]
		v := zi*ki*dAi + zj*kj*dAj
		s.grad[base] += v
		s.grad[base+n] -= v
	}
}

func (s *refSolver) offset() float64 {
	n2 := 2 * s.n
	sum, cnt := 0.0, 0
	lo, hi := math.Inf(-1), math.Inf(1)
	for a := 0; a < n2; a++ {
		v := s.z(a) * s.grad[a]
		switch {
		case s.alpha[a] > 0 && s.alpha[a] < s.c:
			sum += v
			cnt++
		case s.alpha[a] == 0:
			if s.z(a) > 0 {
				hi = math.Min(hi, v)
			} else {
				lo = math.Max(lo, v)
			}
		default:
			if s.z(a) > 0 {
				lo = math.Max(lo, v)
			} else {
				hi = math.Min(hi, v)
			}
		}
	}
	var mult float64
	if cnt > 0 {
		mult = sum / float64(cnt)
	} else {
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			mult = 0
		case math.IsInf(lo, -1):
			mult = hi
		case math.IsInf(hi, 1):
			mult = lo
		default:
			mult = (lo + hi) / 2
		}
	}
	return -mult
}

// refRowCache is the old FIFO-masquerading-as-LRU row cache, kept verbatim
// so the reference solver reproduces the old numerics exactly.
type refRowCache struct {
	k     Kernel
	xs    [][]float64
	rows  map[int][]float64
	lru   []int
	cap   int
	diags []float64
}

func newRefRowCache(k Kernel, xs [][]float64, capRows int) *refRowCache {
	if capRows <= 0 {
		capRows = 768
	}
	diags := make([]float64, len(xs))
	for i, x := range xs {
		diags[i] = k.Eval(x, x)
	}
	return &refRowCache{k: k, xs: xs, rows: map[int][]float64{}, cap: capRows, diags: diags}
}

func (c *refRowCache) diag(i int) float64 { return c.diags[i] }

func (c *refRowCache) row(i int) []float64 {
	if r, ok := c.rows[i]; ok {
		return r
	}
	r := make([]float64, len(c.xs))
	for j := range c.xs {
		r[j] = c.k.Eval(c.xs[i], c.xs[j])
	}
	if len(c.rows) >= c.cap {
		oldest := c.lru[0]
		c.lru = c.lru[1:]
		delete(c.rows, oldest)
	}
	c.rows[i] = r
	c.lru = append(c.lru, i)
	return r
}
