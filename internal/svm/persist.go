package svm

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// modelJSON is the serialized form of a Model.
type modelJSON struct {
	Kernel struct {
		Type   string  `json:"type"`
		Gamma  float64 `json:"gamma,omitempty"`
		Coef0  float64 `json:"coef0,omitempty"`
		Degree int     `json:"degree,omitempty"`
	} `json:"kernel"`
	SupportVectors [][]float64 `json:"support_vectors"`
	Coefs          []float64   `json:"coefs"`
	B              float64     `json:"b"`
}

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	var mj modelJSON
	switch k := m.kernel.(type) {
	case Linear:
		mj.Kernel.Type = "linear"
	case RBF:
		mj.Kernel.Type = "rbf"
		mj.Kernel.Gamma = k.Gamma
	case Poly:
		mj.Kernel.Type = "poly"
		mj.Kernel.Gamma = k.Gamma
		mj.Kernel.Coef0 = k.Coef0
		mj.Kernel.Degree = k.Degree
	default:
		return fmt.Errorf("svm: cannot serialize kernel %T", m.kernel)
	}
	mj.SupportVectors = m.SupportVectors
	mj.Coefs = m.Coefs
	mj.B = m.B
	enc := json.NewEncoder(w)
	return enc.Encode(&mj)
}

// Load reads a model saved by Save. The serialized form carries the
// support vectors as plain rows; finalize rebuilds the flattened
// support-vector matrix and the kernel-specific prediction fast paths, so
// a loaded model predicts exactly like the one that was saved.
func Load(r io.Reader) (*Model, error) {
	var mj modelJSON
	if err := json.NewDecoder(r).Decode(&mj); err != nil {
		return nil, fmt.Errorf("svm: decode model: %w", err)
	}
	if len(mj.SupportVectors) != len(mj.Coefs) {
		return nil, fmt.Errorf("svm: %d support vectors but %d coefficients",
			len(mj.SupportVectors), len(mj.Coefs))
	}
	// Ragged rows would be silently truncated / zero-padded by the
	// flattening in finalize; reject them here instead.
	if len(mj.SupportVectors) > 0 {
		dim := len(mj.SupportVectors[0])
		for i, sv := range mj.SupportVectors {
			if len(sv) != dim {
				return nil, fmt.Errorf("svm: support vector %d has dim %d, want %d",
					i, len(sv), dim)
			}
		}
	}
	m := &Model{SupportVectors: mj.SupportVectors, Coefs: mj.Coefs, B: mj.B, Converged: true}
	switch mj.Kernel.Type {
	case "linear":
		m.kernel = Linear{}
	case "rbf":
		m.kernel = RBF{Gamma: mj.Kernel.Gamma}
	case "poly":
		m.kernel = Poly{Gamma: mj.Kernel.Gamma, Coef0: mj.Kernel.Coef0, Degree: mj.Kernel.Degree}
	default:
		return nil, fmt.Errorf("svm: unknown kernel type %q", mj.Kernel.Type)
	}
	m.finalize()
	return m, nil
}

// SaveFile writes the model to a file path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a model from a file path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
