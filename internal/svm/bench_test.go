package svm

import (
	"fmt"
	"math"
	"testing"
)

// benchProblem builds a deterministic regression problem shaped like the
// paper's training sets: dim-dimensional inputs in the unit box with a
// smooth nonlinear target.
func benchProblem(n, dim int) ([][]float64, []float64) {
	r := &det{s: 42}
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := make([]float64, dim)
		s := 0.0
		for j := range x {
			x[j] = r.next()
			s += x[j]
		}
		xs[i] = x
		ys[i] = math.Sin(2*s) + 0.3*s
	}
	return xs, ys
}

// BenchmarkSVMTrain times one full ε-SVR fit per kernel at paper-style
// hyper-parameters, so solver-level regressions are visible independently
// of the engine's measurement sweep.
func BenchmarkSVMTrain(b *testing.B) {
	const n, dim = 1024, 12
	xs, ys := benchProblem(n, dim)
	for _, tc := range []struct {
		name string
		k    Kernel
	}{
		{"linear", Linear{}},
		{"rbf", RBF{Gamma: 4}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m, err := Train(xs, ys, tc.k, Params{C: 1000, Epsilon: 0.1})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(m.Iters), "iters")
					b.ReportMetric(float64(m.NumSV()), "svs")
				}
			}
		})
	}
}

// BenchmarkSVMPredict times single and batch prediction through the
// flattened support-vector fast paths; the Into variants must not allocate.
func BenchmarkSVMPredict(b *testing.B) {
	const n, dim = 1024, 12
	xs, ys := benchProblem(n, dim)
	queries := make([][]float64, 171) // one modeled frequency ladder sweep
	r := &det{s: 77}
	for i := range queries {
		q := make([]float64, dim)
		for j := range q {
			q[j] = r.next()
		}
		queries[i] = q
	}
	out := make([]float64, len(queries))
	for _, tc := range []struct {
		name string
		k    Kernel
	}{
		{"linear", Linear{}},
		{"rbf", RBF{Gamma: 4}},
	} {
		m, err := Train(xs, ys, tc.k, Params{C: 1000, Epsilon: 0.1})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%s/single", tc.name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Predict(queries[i%len(queries)])
			}
		})
		b.Run(fmt.Sprintf("%s/batch171", tc.name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.PredictBatchInto(out, queries)
			}
		})
	}
}
