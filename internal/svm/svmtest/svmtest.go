// Package svmtest provides model-verification helpers shared by the SVR
// solver tests and the warm-start equivalence battery: a KKT-residual
// checker certifying that a trained ε-SVR model is optimal (to a tolerance)
// for the rows it was trained on, a feasibility check for iteration-capped
// fits, holdout RMSE, and a stable content signature for bit-identity
// comparisons. It is a production (non _test) package so that external test
// packages across the repository — and future fleet verification tooling —
// can import one shared implementation of "is this model actually a
// solution", rather than each suite re-deriving the dual conditions.
package svmtest

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"

	"repro/internal/svm"
)

// sumTol bounds the equality-constraint residue |Σβ| relative to C. An
// exactly-solved dual has Σβ = 0; the solver's support-vector cutoff
// (|β| ≤ 1e-12 rows are dropped from the model) and the warm-start
// projection each leave residues at that scale, a factor 1e-6 below any C
// used in practice.
const sumTol = 1e-6

// betasFor matches each of the model's support vectors to a training row by
// bit-exact row identity — the same identity the warm-start path uses — and
// returns the per-row coefficient vector (0 for non-support rows).
// Duplicated rows consume duplicated support vectors in order. It errors
// when a support vector matches no row: the model was not trained on xs.
func betasFor(m *svm.Model, xs [][]float64) ([]float64, error) {
	type queue struct{ idx []int }
	byKey := make(map[string]*queue, len(xs))
	key := func(x []float64) string {
		b := make([]byte, 0, 8*len(x))
		for _, v := range x {
			u := math.Float64bits(v)
			b = append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
				byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
		}
		return string(b)
	}
	for i, x := range xs {
		k := key(x)
		q := byKey[k]
		if q == nil {
			q = &queue{}
			byKey[k] = q
		}
		q.idx = append(q.idx, i)
	}
	beta := make([]float64, len(xs))
	for j, sv := range m.SupportVectors {
		q := byKey[key(sv)]
		if q == nil || len(q.idx) == 0 {
			return nil, fmt.Errorf("svmtest: support vector %d matches no training row", j)
		}
		beta[q.idx[0]] = m.Coefs[j]
		q.idx = q.idx[1:]
	}
	return beta, nil
}

// VerifyKKT certifies that model m is an optimal solution of the ε-SVR dual
// on the training set (xs, ys) under hyper-parameters p, to tolerance tol
// (p.Tol resolves the solver default when zero; pass the same tol the fit
// converged to). With r_i = y_i − f(x_i) and β_i the row's dual
// coefficient, the conditions checked are the stationarity cases of the
// ε-insensitive loss:
//
//	β = 0:        |r| ≤ ε + tol        (inside the tube)
//	0 < β < C:    |r − ε| ≤ tol        (on the upper tube edge)
//	β = C:        r ≥ ε − tol          (above the tube)
//	−C < β < 0:   |r + ε| ≤ tol        (on the lower tube edge)
//	β = −C:       r ≤ −ε + tol         (below the tube)
//
// plus the box constraint |β| ≤ C and the equality constraint Σβ ≈ 0.
// These are exactly the conditions the solver's maximal-violating-pair
// stopping criterion guarantees at convergence, expressed against the
// model's own offset, so every converged fit — cold or warm-started — must
// pass at its own tolerance. A nil error means the model is a certified
// solution; any other return pinpoints the worst violation.
func VerifyKKT(m *svm.Model, xs [][]float64, ys []float64, p svm.Params, tol float64) error {
	if len(xs) == 0 || len(ys) != len(xs) {
		return fmt.Errorf("svmtest: bad verification set: %d xs, %d ys", len(xs), len(ys))
	}
	if p.C <= 0 {
		return fmt.Errorf("svmtest: C must be positive")
	}
	if tol <= 0 {
		if tol = p.Tol; tol <= 0 {
			tol = 1e-3 // the solver's documented default
		}
	}
	beta, err := betasFor(m, xs)
	if err != nil {
		return err
	}
	if err := checkFeasible(beta, p.C); err != nil {
		return err
	}

	c, eps := p.C, p.Epsilon
	// A coefficient within the support-vector collection cutoff of a bound
	// counts as at that bound; the solver clips to the bounds exactly, so
	// this slack only absorbs the 1e-12 cutoff itself.
	const bTol = 1e-11
	worst, worstRow := 0.0, -1
	for i, x := range xs {
		r := ys[i] - m.Predict(x)
		b := beta[i]
		viol := 0.0
		// Each side of the box contributes one inequality; interior and
		// zero coefficients activate both of their sides.
		if b < c-bTol && r-eps > viol { // can still increase β: r ≤ ε required
			viol = r - eps
		}
		if b > -c+bTol && -eps-r > viol { // can still decrease β: r ≥ −ε required
			viol = -eps - r
		}
		if b > bTol && eps-r > viol { // positive β demands r ≥ ε
			viol = eps - r
		}
		if b < -bTol && r+eps > viol { // negative β demands r ≤ −ε
			viol = r + eps
		}
		if viol > worst {
			worst, worstRow = viol, i
		}
	}
	if worst > tol {
		return fmt.Errorf("svmtest: KKT violation %.3e > tol %.3e at row %d (β=%.6g, residual=%.6g)",
			worst, tol, worstRow, beta[worstRow], ys[worstRow]-m.Predict(xs[worstRow]))
	}
	return nil
}

// checkFeasible verifies the box and equality constraints of a coefficient
// vector. Shared by VerifyKKT and VerifyFeasibility.
func checkFeasible(beta []float64, c float64) error {
	sum := 0.0
	for i, b := range beta {
		if math.IsNaN(b) || math.Abs(b) > c*(1+1e-12) {
			return fmt.Errorf("svmtest: coefficient %d = %g outside the box [-C, C], C = %g", i, b, c)
		}
		sum += b
	}
	if math.Abs(sum) > sumTol*math.Max(1, c) {
		return fmt.Errorf("svmtest: equality constraint violated: Σβ = %g", sum)
	}
	return nil
}

// VerifyFeasibility checks only the dual constraints — box |β| ≤ C and
// equality Σβ ≈ 0 — without requiring optimality. It is the right check for
// iteration-capped fits (Model.Converged false), which are feasible partial
// solutions by construction but need not satisfy the KKT residuals.
func VerifyFeasibility(m *svm.Model, p svm.Params) error {
	if p.C <= 0 {
		return fmt.Errorf("svmtest: C must be positive")
	}
	return checkFeasible(m.Coefs, p.C)
}

// RMSE returns the model's root-mean-square prediction error over a sample
// set — the holdout metric of the warm/cold equivalence battery.
func RMSE(m *svm.Model, xs [][]float64, ys []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var ss float64
	for i, x := range xs {
		d := m.Predict(x) - ys[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Signature returns the SHA-256 hex digest of the model's canonical
// serialized form (support vectors, coefficients, offset, kernel). Two
// models with equal signatures predict bit-identically; the warm-start
// determinism pin asserts a 0%-delta retrain reproduces the active model's
// signature exactly.
func Signature(m *svm.Model) (string, error) {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// Equivalent certifies that a warm-started fit is interchangeable with the
// cold fit on the same data: both models must be converged and their
// holdout RMSEs must agree within rmseTol. Combined with VerifyKKT on each
// model this is the battery's convergence-equivalence criterion.
func Equivalent(cold, warm *svm.Model, holdXs [][]float64, holdYs []float64, rmseTol float64) error {
	if !cold.Converged || !warm.Converged {
		return fmt.Errorf("svmtest: not converged (cold %v, warm %v)", cold.Converged, warm.Converged)
	}
	cr, wr := RMSE(cold, holdXs, holdYs), RMSE(warm, holdXs, holdYs)
	if d := math.Abs(cr - wr); d > rmseTol {
		return fmt.Errorf("svmtest: holdout RMSE diverged: cold %.9f, warm %.9f (|Δ| = %.3e > %.3e)",
			cr, wr, d, rmseTol)
	}
	return nil
}
