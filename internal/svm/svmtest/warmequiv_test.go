package svmtest_test

// The warm/cold equivalence battery — the contract that makes warm-started
// retraining trustworthy: for every combination of GPU profile (Titan X,
// P100), objective kernel (linear speedup, RBF energy), and corpus delta
// (0%, 1%, 10%, 50% changed rows), a warm-started fit must
//
//   - converge and pass the KKT checker at the same tolerance as the cold
//     fit on the same rows,
//   - agree with the cold fit's holdout RMSE within 1e-6, and
//   - at 0% delta, reproduce the prior model bit-for-bit (equal content
//     signatures).
//
// The corpora are real simulated-measurement training sets built through
// the engine, not synthetic toys, so the battery exercises the exact data
// shapes the adaptation loop retrains on.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/measure"
	"repro/internal/nvml"
	"repro/internal/svm"
	"repro/internal/svm/svmtest"
)

// batteryOptions are the paper's hyper-parameters at a tight tolerance:
// 1e-8 instead of the serving default 1e-3, so "equivalent" is judged where
// the dual optimum is pinned sharply enough for the 1e-6 RMSE bound to be
// meaningful (at 1e-6 two converged linear-kernel fits can still disagree
// by a few 1e-6 in holdout RMSE — the within-tolerance optimum ball is
// wider than the bound).
func batteryOptions() core.Options {
	return core.Options{
		SettingsPerKernel: 6,
		// The linear kernel's positive-semidefinite dual has slow terminal
		// directions at this tolerance; the iteration cap must leave room
		// for them (the fits still take well under a second each).
		Params: svm.Params{C: 1000, Epsilon: 0.1, Tol: 1e-8, MaxIter: 40_000_000},
	}.WithDefaults()
}

// batteryCorpus builds one profile's corpora: the base training set, a pool
// of replacement rows (disjoint kernels, same device) that model "changed
// rows", and a holdout set for the RMSE-equivalence check.
func batteryCorpus(t *testing.T, dev *gpu.Device) (base, pool, holdout []core.Sample) {
	t.Helper()
	opt := batteryOptions()
	eng := engine.New(measure.NewHarness(nvml.NewDevice(dev)), engine.Options{Core: opt})
	kernels := engine.TrainingKernels()
	build := func(ks []core.TrainingKernel) []core.Sample {
		s, err := eng.BuildTrainingSet(t.Context(), ks)
		if err != nil {
			t.Fatalf("building corpus on %s: %v", dev.Name, err)
		}
		return s
	}
	return build(kernels[:16]), build(kernels[16:30]), build(kernels[30:36])
}

// fitPair returns the cold and warm fits of one matrix (warm seeded from
// prior), with both models of each pair verified against the KKT checker.
func fitPair(t *testing.T, label string, m *core.TrainingMatrix, prior *core.Models) (cold, warm *core.Models) {
	t.Helper()
	opt := batteryOptions()
	cold, err := core.TrainMatrix(m, opt, nil)
	if err != nil {
		t.Fatalf("%s: cold fit: %v", label, err)
	}
	warm, err = core.TrainMatrix(m, opt, prior)
	if err != nil {
		t.Fatalf("%s: warm fit: %v", label, err)
	}
	for _, mc := range []struct {
		name   string
		model  *svm.Model
		ys     []float64
		kernel svm.Kernel
	}{
		{"cold/speedup", cold.Speedup, m.Speedup, opt.SpeedupKernel},
		{"cold/energy", cold.Energy, m.Energy, opt.EnergyKernel},
		{"warm/speedup", warm.Speedup, m.Speedup, opt.SpeedupKernel},
		{"warm/energy", warm.Energy, m.Energy, opt.EnergyKernel},
	} {
		if !mc.model.Converged {
			t.Fatalf("%s: %s did not converge (%d iters)", label, mc.name, mc.model.Iters)
		}
		if err := svmtest.VerifyKKT(mc.model, m.Rows, mc.ys, opt.Params, 0); err != nil {
			t.Errorf("%s: %s: %v", label, mc.name, err)
		}
	}
	return cold, warm
}

func TestWarmColdEquivalenceBattery(t *testing.T) {
	profiles := []struct {
		name string
		dev  *gpu.Device
	}{
		{"titanx", gpu.TitanX()},
		{"p100", gpu.P100()},
	}
	deltas := []int{0, 1, 10, 50} // percent of base rows replaced

	for _, prof := range profiles {
		prof := prof
		t.Run(prof.name, func(t *testing.T) {
			base, pool, holdout := batteryCorpus(t, prof.dev)
			opt := batteryOptions()
			holdM := core.NewTrainingMatrix(holdout)
			prior, err := core.TrainMatrix(core.NewTrainingMatrix(base), opt, nil)
			if err != nil {
				t.Fatalf("prior fit: %v", err)
			}

			for _, pct := range deltas {
				pct := pct
				t.Run(fmt.Sprintf("delta-%d%%", pct), func(t *testing.T) {
					changed := len(base) * pct / 100
					if pct > 0 && changed == 0 {
						changed = 1
					}
					if changed > len(pool) {
						t.Fatalf("delta %d%% needs %d replacement rows, pool has %d", pct, changed, len(pool))
					}
					corpus := append([]core.Sample{}, base...)
					copy(corpus, pool[:changed])
					m := core.NewTrainingMatrix(corpus)

					cold, warm := fitPair(t, fmt.Sprintf("%s/%d%%", prof.name, pct), m, prior)

					for _, obj := range []struct {
						name       string
						cold, warm *svm.Model
						ys         []float64
					}{
						{"speedup", cold.Speedup, warm.Speedup, holdM.Speedup},
						{"energy", cold.Energy, warm.Energy, holdM.Energy},
					} {
						if err := svmtest.Equivalent(obj.cold, obj.warm, holdM.Rows, obj.ys, 1e-6); err != nil {
							t.Errorf("%s: %v", obj.name, err)
						}
					}

					if pct == 0 {
						// Determinism pin: an unchanged corpus must
						// reproduce the active models bit-for-bit.
						for _, pair := range []struct {
							name        string
							prior, warm *svm.Model
						}{
							{"speedup", prior.Speedup, warm.Speedup},
							{"energy", prior.Energy, warm.Energy},
						} {
							ps, err := svmtest.Signature(pair.prior)
							if err != nil {
								t.Fatal(err)
							}
							ws, err := svmtest.Signature(pair.warm)
							if err != nil {
								t.Fatal(err)
							}
							if ps != ws {
								t.Errorf("%s: 0%%-delta warm fit is not bit-identical to the prior (prior %s, warm %s)",
									pair.name, ps[:12], ws[:12])
							}
							if pair.warm.Warm == nil || !pair.warm.Warm.Reused {
								t.Errorf("%s: 0%%-delta fit did not report seed reuse: %+v", pair.name, pair.warm.Warm)
							}
						}
					}
				})
			}
		})
	}
}
