package svm

import (
	"bytes"
	"math"
	"testing"
)

// warmData builds a deterministic nonlinear regression set (for RBF fits).
func warmData(n int, seed uint64) ([][]float64, []float64) {
	d := &det{s: seed}
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x1, x2 := 2*d.next()-1, 2*d.next()-1
		xs[i] = []float64{x1, x2}
		ys[i] = math.Sin(2*x1) + 0.5*x2*x2 + 0.3*x1*x2
	}
	return xs, ys
}

// warmLinData builds a deterministic linear regression set: a linear-kernel
// fit on a nonlinear target never reaches the stopping tolerance, so tests
// that need a converged Linear prior must use a target the kernel can fit.
func warmLinData(n int, seed uint64) ([][]float64, []float64) {
	d := &det{s: seed}
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x1, x2 := 2*d.next()-1, 2*d.next()-1
		xs[i] = []float64{x1, x2}
		ys[i] = 1.5*x1 - 0.7*x2 + 0.05*(d.next()-0.5)
	}
	return xs, ys
}

func modelBytes(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}

// TestWarmStartIdenticalCorpusBitIdentical is the svm-layer determinism
// pin: re-fitting on the exact same rows with WarmStart set must accept the
// seed without a single iteration and reproduce the prior model
// bit-identically, offset included.
func TestWarmStartIdenticalCorpusBitIdentical(t *testing.T) {
	for _, k := range []Kernel{Linear{}, RBF{Gamma: 2}} {
		var xs [][]float64
		var ys []float64
		if k == (Kernel)(Linear{}) {
			xs, ys = warmLinData(160, 7)
		} else {
			xs, ys = warmData(160, 7)
		}
		cold, err := Train(xs, ys, k, paperParams)
		if err != nil {
			t.Fatalf("%v cold: %v", k, err)
		}
		if !cold.Converged {
			t.Fatalf("%v: cold prior did not converge", k)
		}
		p := paperParams
		p.WarmStart = cold
		warm, err := Train(xs, ys, k, p)
		if err != nil {
			t.Fatalf("%v warm: %v", k, err)
		}
		if warm.Warm == nil {
			t.Fatalf("%v: warm fit reported no WarmInfo", k)
		}
		if !warm.Warm.Reused {
			t.Errorf("%v: identical corpus not reused: %+v", k, *warm.Warm)
		}
		if warm.Iters != 0 {
			t.Errorf("%v: identical corpus took %d iterations, want 0", k, warm.Iters)
		}
		if got, want := modelBytes(t, warm), modelBytes(t, cold); !bytes.Equal(got, want) {
			t.Errorf("%v: warm model is not bit-identical to the prior", k)
		}
	}
}

// TestWarmStartConvergesFasterOnDelta pins the point of the feature: on the
// workload adaptation produces — an unchanged base corpus with a handful of
// new rows folded in — the warm fit must converge in far fewer iterations
// than the cold fit, to an equally valid solution.
func TestWarmStartConvergesFasterOnDelta(t *testing.T) {
	xs, ys := warmData(400, 11)
	cold, err := Train(xs, ys, RBF{Gamma: 2}, paperParams)
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	// Fold in 2.5% new rows, the adapt-loop shape.
	extraXs, extraYs := warmData(10, 99)
	xs2 := append(append([][]float64{}, xs...), extraXs...)
	ys2 := append(append([]float64{}, ys...), extraYs...)

	cold2, err := Train(xs2, ys2, RBF{Gamma: 2}, paperParams)
	if err != nil {
		t.Fatalf("cold refit: %v", err)
	}
	p := paperParams
	p.WarmStart = cold
	warm2, err := Train(xs2, ys2, RBF{Gamma: 2}, p)
	if err != nil {
		t.Fatalf("warm refit: %v", err)
	}
	if !warm2.Converged {
		t.Fatal("warm refit did not converge")
	}
	if warm2.Warm.Matched == 0 || warm2.Warm.Dropped != 0 {
		t.Errorf("unexpected seeding report: %+v", *warm2.Warm)
	}
	if warm2.Iters*2 >= cold2.Iters {
		t.Errorf("warm refit took %d iterations vs cold %d, want < half", warm2.Iters, cold2.Iters)
	}
	// Both fits must predict near-identically on the training rows.
	for i := 0; i < len(xs2); i += 7 {
		if d := math.Abs(warm2.Predict(xs2[i]) - cold2.Predict(xs2[i])); d > 1e-2 {
			t.Fatalf("row %d: warm and cold predictions diverged by %g", i, d)
		}
	}
}

// TestWarmStartDroppedMassProjected removes rows that carried support
// vectors: the dropped mass must be projected back onto the feasible set
// and the fit must still converge.
func TestWarmStartDroppedMassProjected(t *testing.T) {
	xs, ys := warmData(150, 3)
	base, err := Train(xs, ys, RBF{Gamma: 2}, paperParams)
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	// Keep only the first two thirds of the rows.
	cut := 2 * len(xs) / 3
	p := paperParams
	p.WarmStart = base
	warm, err := Train(xs[:cut], ys[:cut], RBF{Gamma: 2}, p)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if !warm.Converged {
		t.Fatal("warm fit on the truncated corpus did not converge")
	}
	if warm.Warm.Dropped == 0 {
		t.Errorf("expected dropped support vectors, got %+v", *warm.Warm)
	}
	if warm.Warm.Reused {
		t.Error("a lossy seed must never reuse the prior offset")
	}
	// The projection must have restored Σβ = 0 on the seed; the trained
	// model's coefficients inherit it.
	sum := 0.0
	for _, c := range warm.Coefs {
		sum += c
	}
	if math.Abs(sum) > 1e-6*paperParams.C {
		t.Errorf("Σβ = %g after projection and refit", sum)
	}
}

// TestWarmStartDuplicateRows exercises the FIFO row-identity matching with
// weight-replicated duplicate rows, the shape adapt's fold-in produces.
func TestWarmStartDuplicateRows(t *testing.T) {
	xs, ys := warmLinData(60, 5)
	// Replicate the first 10 rows three times, as ObservationWeight does.
	for i := 0; i < 10; i++ {
		for r := 0; r < 2; r++ {
			xs = append(xs, xs[i])
			ys = append(ys, ys[i])
		}
	}
	base, err := Train(xs, ys, Linear{}, paperParams)
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	p := paperParams
	p.WarmStart = base
	warm, err := Train(xs, ys, Linear{}, p)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if !warm.Warm.Reused {
		t.Errorf("duplicate-row corpus not reused: %+v", *warm.Warm)
	}
	if got, want := modelBytes(t, warm), modelBytes(t, base); !bytes.Equal(got, want) {
		t.Error("duplicate-row warm refit is not bit-identical")
	}
}

// TestWarmStartRejectsMismatches pins the loud-failure contract for
// incompatible seeds.
func TestWarmStartRejectsMismatches(t *testing.T) {
	xs, ys := warmData(50, 1)
	base, err := Train(xs, ys, RBF{Gamma: 2}, paperParams)
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	p := paperParams
	p.WarmStart = base
	if _, err := Train(xs, ys, Linear{}, p); err == nil {
		t.Error("kernel mismatch accepted")
	}
	if _, err := Train(xs, ys, RBF{Gamma: 3}, p); err == nil {
		t.Error("kernel parameter mismatch accepted")
	}
	xs3 := make([][]float64, len(xs))
	for i, x := range xs {
		xs3[i] = []float64{x[0], x[1], 1}
	}
	if _, err := Train(xs3, ys, RBF{Gamma: 2}, p); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

// TestWarmStartClampsForeignBox seeds from a model trained with a larger C:
// out-of-box coefficients must be clamped, reported, and never reused.
func TestWarmStartClampsForeignBox(t *testing.T) {
	xs, ys := warmData(80, 13)
	big := Params{C: 1000, Epsilon: 0.01}
	base, err := Train(xs, ys, RBF{Gamma: 2}, big)
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	atBound := 0
	for _, c := range base.Coefs {
		if math.Abs(c) > 1 {
			atBound++
		}
	}
	if atBound == 0 {
		t.Skip("no coefficients above the smaller box; dataset too easy")
	}
	small := Params{C: 1, Epsilon: 0.01, WarmStart: base}
	warm, err := Train(xs, ys, RBF{Gamma: 2}, small)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if warm.Warm.Clamped == 0 {
		t.Errorf("expected clamped coefficients, got %+v", *warm.Warm)
	}
	if warm.Warm.Reused {
		t.Error("a clamped seed must never reuse the prior offset")
	}
	for i, c := range warm.Coefs {
		if math.Abs(c) > 1+1e-9 {
			t.Fatalf("coefficient %d = %g escaped the box", i, c)
		}
	}
}

func TestProjectBalance(t *testing.T) {
	beta := []float64{0.5, -0.25, 0}
	moved := projectBalance(beta, 1, 0.25)
	if moved <= 0 {
		t.Fatalf("no mass moved")
	}
	sum := 0.0
	for _, b := range beta {
		sum += b
	}
	if math.Abs(sum) > 1e-12 {
		t.Errorf("Σβ = %g after projection", sum)
	}
	for i, b := range beta {
		if math.Abs(b) > 1 {
			t.Errorf("beta[%d] = %g outside box", i, b)
		}
	}
}
