package svm

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Params configures ε-SVR training. The paper uses C = 1000, ε = 0.1 for
// both models, linear kernel for speedup and RBF(γ=0.1) for energy.
type Params struct {
	// C is the box constraint (regularization inverse).
	C float64
	// Epsilon is the insensitive-tube half width.
	Epsilon float64
	// Tol is the KKT violation tolerance for convergence (default 1e-3).
	Tol float64
	// MaxIter caps SMO iterations; <=0 means 200×n with a floor of 100k.
	MaxIter int
	// CacheRows bounds the kernel row cache (default 768 rows).
	CacheRows int
}

// Model is a trained ε-SVR: f(x) = Σ coef_i·K(sv_i, x) + b.
type Model struct {
	SupportVectors [][]float64
	Coefs          []float64
	B              float64
	kernel         Kernel
	// Iters and Converged describe the training run.
	Iters     int
	Converged bool

	// Prediction fast paths, derived once by finalize: linear models
	// collapse their support-vector expansion into one weight vector; RBF
	// models precompute ‖sv‖² so every kernel evaluation reduces to a dot
	// product (‖a−b‖² = ‖a‖² + ‖b‖² − 2 a·b).
	linWeights []float64
	svNorms    []float64
}

// finalize derives the kernel-specific prediction fast paths. Train and
// Load call it on every constructed model.
func (m *Model) finalize() {
	switch k := m.kernel.(type) {
	case Linear:
		if len(m.SupportVectors) == 0 {
			return
		}
		w := make([]float64, len(m.SupportVectors[0]))
		for i, sv := range m.SupportVectors {
			c := m.Coefs[i]
			for j, v := range sv {
				w[j] += c * v
			}
		}
		m.linWeights = w
	case RBF:
		_ = k
		norms := make([]float64, len(m.SupportVectors))
		for i, sv := range m.SupportVectors {
			s := 0.0
			for _, v := range sv {
				s += v * v
			}
			norms[i] = s
		}
		m.svNorms = norms
	}
}

// Kernel returns the kernel the model was trained with.
func (m *Model) Kernel() Kernel { return m.kernel }

// Predict evaluates the regression function at x.
func (m *Model) Predict(x []float64) float64 {
	if m.linWeights != nil {
		s := m.B
		for j, w := range m.linWeights {
			s += w * x[j]
		}
		return s
	}
	if m.svNorms != nil {
		return m.predictRBF(x)
	}
	s := m.B
	for i, sv := range m.SupportVectors {
		s += m.Coefs[i] * m.kernel.Eval(sv, x)
	}
	return s
}

// predictRBF evaluates an RBF model reusing the precomputed support-vector
// norms; ‖x‖² is computed once and shared across all support vectors.
func (m *Model) predictRBF(x []float64) float64 {
	gamma := m.kernel.(RBF).Gamma
	xn := 0.0
	for _, v := range x {
		xn += v * v
	}
	s := m.B
	for i, sv := range m.SupportVectors {
		dot := 0.0
		for j, v := range sv {
			dot += v * x[j]
		}
		d := m.svNorms[i] + xn - 2*dot
		if d < 0 {
			d = 0 // guard against rounding below zero
		}
		s += m.Coefs[i] * math.Exp(-gamma*d)
	}
	return s
}

// parallelBatchMin is the batch size above which PredictBatch shards rows
// across GOMAXPROCS goroutines. Below it the spawn overhead dominates the
// per-row kernel expansion cost.
const parallelBatchMin = 256

// PredictBatch evaluates the model at every row of xs, sharding large
// batches across GOMAXPROCS workers. Rows reuse the kernel-specific fast
// paths prepared by finalize, so batch prediction never recomputes
// per-support-vector quantities.
func (m *Model) PredictBatch(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	workers := runtime.GOMAXPROCS(0)
	if len(xs) < parallelBatchMin || workers <= 1 {
		for i, x := range xs {
			out[i] = m.Predict(x)
		}
		return out
	}
	if workers > len(xs) {
		workers = len(xs)
	}
	var wg sync.WaitGroup
	chunk := (len(xs) + workers - 1) / workers
	for lo := 0; lo < len(xs); lo += chunk {
		hi := lo + chunk
		if hi > len(xs) {
			hi = len(xs)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = m.Predict(xs[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// NumSV returns the number of support vectors.
func (m *Model) NumSV() int { return len(m.SupportVectors) }

// Train fits an ε-SVR on (xs, ys) with the given kernel. It implements SMO
// on the standard 2n-variable dual with maximal-violating-pair working-set
// selection and an LRU kernel row cache.
func Train(xs [][]float64, ys []float64, k Kernel, p Params) (*Model, error) {
	n := len(xs)
	if n == 0 || len(ys) != n {
		return nil, fmt.Errorf("svm: bad training set: %d xs, %d ys", n, len(ys))
	}
	dim := len(xs[0])
	for i, x := range xs {
		if len(x) != dim {
			return nil, fmt.Errorf("svm: row %d has dim %d, want %d", i, len(x), dim)
		}
	}
	for i, y := range ys {
		if math.IsNaN(y) || math.IsInf(y, 0) {
			return nil, fmt.Errorf("svm: target %d is not finite: %v", i, y)
		}
	}
	if p.C <= 0 {
		return nil, errors.New("svm: C must be positive")
	}
	if p.Epsilon < 0 {
		return nil, errors.New("svm: epsilon must be non-negative")
	}
	if p.Tol <= 0 {
		p.Tol = 1e-3
	}
	maxIter := p.MaxIter
	if maxIter <= 0 {
		maxIter = 200 * n
		if maxIter < 100_000 {
			maxIter = 100_000
		}
	}

	s := &solver{
		xs: xs, ys: ys, k: k,
		n: n, c: p.C, eps: p.Epsilon, tol: p.Tol,
		cache: newRowCache(k, xs, p.CacheRows),
	}
	iters, converged := s.solve(maxIter)

	// Collect support vectors: beta_i = alpha_i - alpha*_i != 0.
	m := &Model{kernel: k, Iters: iters, Converged: converged}
	for i := 0; i < n; i++ {
		beta := s.alpha[i] - s.alpha[i+n]
		if math.Abs(beta) > 1e-12 {
			m.SupportVectors = append(m.SupportVectors, xs[i])
			m.Coefs = append(m.Coefs, beta)
		}
	}
	m.B = s.offset()
	m.finalize()
	return m, nil
}

// solver holds SMO state for the 2n-variable ε-SVR dual:
//
//	min ½ αᵀQα + pᵀα  s.t.  zᵀα = 0, 0 ≤ α ≤ C
//
// with, for a < n (the αᵢ block, z=+1): p_a = ε − y_a, and for a ≥ n (the
// αᵢ* block, z=−1): p_a = ε + y_{a−n}; Q_ab = z_a z_b K(x_{a%n}, x_{b%n}).
type solver struct {
	xs    [][]float64
	ys    []float64
	k     Kernel
	n     int
	c     float64
	eps   float64
	tol   float64
	alpha []float64 // 2n
	grad  []float64 // 2n
	cache *rowCache
}

func (s *solver) z(a int) float64 {
	if a < s.n {
		return 1
	}
	return -1
}

func (s *solver) p(a int) float64 {
	if a < s.n {
		return s.eps - s.ys[a]
	}
	return s.eps + s.ys[a-s.n]
}

// solve runs SMO until convergence or maxIter, returning (iters, converged).
func (s *solver) solve(maxIter int) (int, bool) {
	n2 := 2 * s.n
	s.alpha = make([]float64, n2)
	s.grad = make([]float64, n2)
	for a := 0; a < n2; a++ {
		s.grad[a] = s.p(a) // alpha = 0 initially
	}

	for it := 0; it < maxIter; it++ {
		i, j, gap := s.selectPair()
		if gap < s.tol {
			return it, true
		}
		s.update(i, j)
	}
	return maxIter, false
}

// selectPair picks the working pair with second-order selection (LIBSVM
// WSS2): i is the maximal violator in I_up; j maximizes the guaranteed
// objective decrease b²/a among I_low candidates. The returned gap is the
// first-order KKT violation used as the stopping criterion.
func (s *solver) selectPair() (int, int, float64) {
	n2 := 2 * s.n
	up := -1
	upVal := math.Inf(-1)
	for a := 0; a < n2; a++ {
		z := s.z(a)
		// a ∈ I_up: α can still move in the +z direction.
		if (z > 0 && s.alpha[a] < s.c) || (z < 0 && s.alpha[a] > 0) {
			if v := -z * s.grad[a]; v > upVal {
				upVal, up = v, a
			}
		}
	}
	if up < 0 {
		return 0, 0, 0
	}
	rowUp := s.cache.row(up % s.n)
	kii := rowUp[up%s.n]

	low := -1
	lowVal := math.Inf(1)
	bestGain := -1.0
	const tau = 1e-12
	for a := 0; a < n2; a++ {
		z := s.z(a)
		// a ∈ I_low: α can still move in the −z direction.
		if (z < 0 && s.alpha[a] < s.c) || (z > 0 && s.alpha[a] > 0) {
			v := -z * s.grad[a]
			if v < lowVal {
				lowVal = v
			}
			b := upVal - v
			if b > 0 {
				// a_t = K_ii + K_tt − 2K_it = ‖φ(x_i) − φ(x_t)‖².
				at := kii + s.cache.diag(a%s.n) - 2*rowUp[a%s.n]
				if at <= 0 {
					at = tau
				}
				if gain := b * b / at; gain > bestGain {
					bestGain, low = gain, a
				}
			}
		}
	}
	if low < 0 {
		return 0, 0, 0
	}
	return up, low, upVal - lowVal
}

// q returns Q_ab.
func (s *solver) q(a, b int) float64 {
	return s.z(a) * s.z(b) * s.cache.at(a%s.n, b%s.n)
}

// update performs the analytic two-variable optimization for pair (i, j),
// then refreshes the gradient.
func (s *solver) update(i, j int) {
	const tau = 1e-12
	zi, zj := s.z(i), s.z(j)
	rowI := s.cache.row(i % s.n)
	rowJ := s.cache.row(j % s.n)
	kii := rowI[i%s.n]
	kjj := rowJ[j%s.n]
	kij := rowI[j%s.n]

	// In the 2n-variable dual, Q_ab = z_a z_b K_(a%n)(b%n); for both pair
	// kinds the quadratic coefficient reduces to ‖φ(x_i) − φ(x_j)‖².
	quad := kii + kjj - 2*kij
	if quad <= 0 {
		quad = tau
	}
	oldAi, oldAj := s.alpha[i], s.alpha[j]
	if zi != zj {
		delta := (-s.grad[i] - s.grad[j]) / quad
		diff := s.alpha[i] - s.alpha[j]
		s.alpha[i] += delta
		s.alpha[j] += delta
		// Box clipping preserving alpha_i - alpha_j = diff (LIBSVM order).
		if diff > 0 {
			if s.alpha[j] < 0 {
				s.alpha[j] = 0
				s.alpha[i] = diff
			}
			if s.alpha[i] > s.c {
				s.alpha[i] = s.c
				s.alpha[j] = s.c - diff
			}
		} else {
			if s.alpha[i] < 0 {
				s.alpha[i] = 0
				s.alpha[j] = -diff
			}
			if s.alpha[j] > s.c {
				s.alpha[j] = s.c
				s.alpha[i] = s.c + diff
			}
		}
	} else {
		delta := (s.grad[i] - s.grad[j]) / quad
		sum := s.alpha[i] + s.alpha[j]
		s.alpha[i] -= delta
		s.alpha[j] += delta
		// Box clipping preserving alpha_i + alpha_j = sum (LIBSVM order).
		if sum > s.c {
			if s.alpha[i] > s.c {
				s.alpha[i] = s.c
				s.alpha[j] = sum - s.c
			}
		} else {
			if s.alpha[j] < 0 {
				s.alpha[j] = 0
				s.alpha[i] = sum
			}
		}
		if sum > s.c {
			if s.alpha[j] > s.c {
				s.alpha[j] = s.c
				s.alpha[i] = sum - s.c
			}
		} else {
			if s.alpha[i] < 0 {
				s.alpha[i] = 0
				s.alpha[j] = sum
			}
		}
	}

	dAi := s.alpha[i] - oldAi
	dAj := s.alpha[j] - oldAj
	if dAi == 0 && dAj == 0 {
		return
	}
	// Gradient update: G_a += Q_ai dAi + Q_aj dAj, exploiting the block
	// structure Q_ab = z_a z_b K_(a%n)(b%n).
	n := s.n
	for base := 0; base < n; base++ {
		ki := rowI[base]
		kj := rowJ[base]
		v := zi*ki*dAi + zj*kj*dAj
		s.grad[base] += v   // z_a = +1
		s.grad[base+n] -= v // z_a = -1
	}
}

// offset derives the bias term b of f(x) = Σβ K + b from the KKT
// conditions: for interior variables z_a G_a is the equality multiplier; b
// is its negation. Falls back to the feasible-interval midpoint when no
// variable is strictly inside the box.
func (s *solver) offset() float64 {
	n2 := 2 * s.n
	sum, cnt := 0.0, 0
	lo, hi := math.Inf(-1), math.Inf(1)
	for a := 0; a < n2; a++ {
		v := s.z(a) * s.grad[a]
		switch {
		case s.alpha[a] > 0 && s.alpha[a] < s.c:
			sum += v
			cnt++
		case s.alpha[a] == 0:
			// G - b' z >= 0 where b' is the multiplier: z G >= b' if z>0...
			if s.z(a) > 0 {
				hi = math.Min(hi, v)
			} else {
				lo = math.Max(lo, v)
			}
		default: // alpha == C
			if s.z(a) > 0 {
				lo = math.Max(lo, v)
			} else {
				hi = math.Min(hi, v)
			}
		}
	}
	var mult float64
	if cnt > 0 {
		mult = sum / float64(cnt)
	} else {
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			mult = 0
		case math.IsInf(lo, -1):
			mult = hi
		case math.IsInf(hi, 1):
			mult = lo
		default:
			mult = (lo + hi) / 2
		}
	}
	return -mult
}

// rowCache is an LRU cache of kernel matrix rows.
type rowCache struct {
	k     Kernel
	xs    [][]float64
	rows  map[int][]float64
	lru   []int
	cap   int
	diags []float64
}

func newRowCache(k Kernel, xs [][]float64, capRows int) *rowCache {
	if capRows <= 0 {
		capRows = 768
	}
	diags := make([]float64, len(xs))
	for i, x := range xs {
		diags[i] = k.Eval(x, x)
	}
	return &rowCache{k: k, xs: xs, rows: map[int][]float64{}, cap: capRows, diags: diags}
}

// diag returns K(x_i, x_i) from the precomputed diagonal.
func (c *rowCache) diag(i int) float64 { return c.diags[i] }

// row returns the full kernel row for base index i, computing and caching
// it on demand.
func (c *rowCache) row(i int) []float64 {
	if r, ok := c.rows[i]; ok {
		return r
	}
	r := make([]float64, len(c.xs))
	for j := range c.xs {
		r[j] = c.k.Eval(c.xs[i], c.xs[j])
	}
	if len(c.rows) >= c.cap {
		// Evict the oldest cached row.
		oldest := c.lru[0]
		c.lru = c.lru[1:]
		delete(c.rows, oldest)
	}
	c.rows[i] = r
	c.lru = append(c.lru, i)
	return r
}

// at returns K(x_i, x_j), via the cache when available.
func (c *rowCache) at(i, j int) float64 {
	if r, ok := c.rows[i]; ok {
		return r[j]
	}
	if r, ok := c.rows[j]; ok {
		return r[i]
	}
	return c.k.Eval(c.xs[i], c.xs[j])
}
