package svm

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Params configures ε-SVR training. The paper uses C = 1000, ε = 0.1 for
// both models, linear kernel for speedup and RBF(γ=0.1) for energy.
type Params struct {
	// C is the box constraint (regularization inverse).
	C float64
	// Epsilon is the insensitive-tube half width.
	Epsilon float64
	// Tol is the KKT violation tolerance for convergence (default 1e-3).
	Tol float64
	// MaxIter caps SMO iterations; <=0 means 200×n with a floor of 100k.
	MaxIter int
	// CacheRows bounds the kernel row cache in entries (default 768).
	// Each cached row holds one float64 per training sample, so the byte
	// budget of the cache is CacheRows × n × 8: the default over the
	// paper-scale n ≈ 4.3k training set is ~26 MiB. Rows are evicted in
	// true least-recently-used order; values below 2 are clamped to 2 (the
	// solver reads two rows at once), and capacity changes training time
	// but never the trained model.
	CacheRows int
	// DisableShrinking turns off the LIBSVM-style active-set shrinking
	// heuristic (the -h 0 switch of LIBSVM). Shrinking cuts working-set
	// selection from O(2n) to O(active) per iteration and is on by
	// default; the solver always reconstructs the full gradient and
	// re-checks every variable before declaring convergence, so the
	// stopping criterion is identical either way.
	DisableShrinking bool
	// WarmStart seeds the solver from a previously trained model instead of
	// from zero: the prior's support vectors are re-matched against the new
	// design matrix by bit-exact row identity, matched rows start at their
	// prior β, changed or added rows enter at β = 0, and dropped support
	// vectors have their mass projected back onto the feasible set before
	// the first iteration. When the training set is the old corpus ± a
	// small window, most variables are already KKT-optimal and the fit
	// converges in a fraction of the cold iterations — with an unchanged
	// set it reproduces the prior model bit-identically (Model.Warm.Reused).
	// The prior must use the same kernel and feature dimension; Train
	// errors loudly otherwise. The trained model is always converged to the
	// same tolerance as a cold fit — warm-starting changes the SMO
	// trajectory, never the stopping criterion.
	WarmStart *Model
}

// Model is a trained ε-SVR: f(x) = Σ coef_i·K(sv_i, x) + b.
type Model struct {
	SupportVectors [][]float64
	Coefs          []float64
	B              float64
	kernel         Kernel
	// Iters and Converged describe the training run.
	Iters     int
	Converged bool
	// Warm reports how a warm-started fit was seeded (nil for cold fits).
	// It is training-run metadata, not part of the model weights, and is
	// never serialized.
	Warm *WarmInfo

	// Prediction fast paths, derived once by finalize: the support
	// vectors are flattened into one contiguous row-major matrix, linear
	// models collapse their expansion into one weight vector, and RBF
	// models precompute ‖sv‖² so every kernel evaluation reduces to a dot
	// product (‖a−b‖² = ‖a‖² + ‖b‖² − 2 a·b). Predict allocates nothing.
	svFlat     []float64
	svDim      int
	linWeights []float64
	svNorms    []float64
}

// finalize derives the kernel-specific prediction fast paths. Train and
// Load call it on every constructed model.
func (m *Model) finalize() {
	nsv := len(m.SupportVectors)
	if nsv == 0 {
		m.svFlat, m.svDim, m.linWeights, m.svNorms = nil, 0, nil, nil
		return
	}
	dim := len(m.SupportVectors[0])
	m.svDim = dim
	m.svFlat = make([]float64, nsv*dim)
	for i, sv := range m.SupportVectors {
		copy(m.svFlat[i*dim:(i+1)*dim], sv)
	}
	// Re-point the public rows into the flat copy: the model then owns its
	// support vectors outright instead of pinning the caller's (possibly
	// much larger, contiguously allocated) training rows for its lifetime,
	// and the data exists once, not twice.
	for i := range m.SupportVectors {
		m.SupportVectors[i] = m.sv(i)
	}
	m.linWeights, m.svNorms = nil, nil
	switch m.kernel.(type) {
	case Linear:
		w := make([]float64, dim)
		for i := 0; i < nsv; i++ {
			c := m.Coefs[i]
			for j, v := range m.sv(i) {
				w[j] += c * v
			}
		}
		m.linWeights = w
	case RBF:
		norms := make([]float64, nsv)
		for i := 0; i < nsv; i++ {
			s := 0.0
			for _, v := range m.sv(i) {
				s += v * v
			}
			norms[i] = s
		}
		m.svNorms = norms
	}
}

// sv returns support vector i from the flattened matrix.
func (m *Model) sv(i int) []float64 {
	return m.svFlat[i*m.svDim : (i+1)*m.svDim : (i+1)*m.svDim]
}

// Kernel returns the kernel the model was trained with.
func (m *Model) Kernel() Kernel { return m.kernel }

// Predict evaluates the regression function at x. It allocates nothing.
func (m *Model) Predict(x []float64) float64 {
	if m.linWeights != nil {
		s := m.B
		for j, w := range m.linWeights {
			s += w * x[j]
		}
		return s
	}
	if m.svNorms != nil {
		return m.predictRBF(x)
	}
	s := m.B
	for i := range m.Coefs {
		s += m.Coefs[i] * m.kernel.Eval(m.sv(i), x)
	}
	return s
}

// predictRBF evaluates an RBF model over the flattened support-vector
// matrix, reusing the precomputed norms; ‖x‖² is computed once and shared
// across all support vectors.
func (m *Model) predictRBF(x []float64) float64 {
	gamma := m.kernel.(RBF).Gamma
	xn := 0.0
	for _, v := range x {
		xn += v * v
	}
	s := m.B
	for i, c := range m.Coefs {
		sv := m.sv(i)
		dot := 0.0
		for j, v := range sv {
			dot += v * x[j]
		}
		d := m.svNorms[i] + xn - 2*dot
		if d < 0 {
			d = 0 // guard against rounding below zero
		}
		s += c * math.Exp(-gamma*d)
	}
	return s
}

// parallelBatchMin is the batch size above which PredictBatch shards rows
// across GOMAXPROCS goroutines. Below it the spawn overhead dominates the
// per-row kernel expansion cost.
const parallelBatchMin = 256

// PredictBatch evaluates the model at every row of xs, sharding large
// batches across GOMAXPROCS workers. It allocates only the result slice;
// see PredictBatchInto for the allocation-free form.
func (m *Model) PredictBatch(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	m.PredictBatchInto(out, xs)
	return out
}

// PredictBatchInto evaluates the model at every row of xs into out (which
// must have len(xs) entries). Rows reuse the kernel-specific fast paths
// prepared by finalize — each row walks the shared flattened support-vector
// matrix with no per-row state — so batches below the parallel threshold
// (256 rows) allocate nothing; larger batches shard across GOMAXPROCS
// goroutines, whose spawns are the only allocations.
func (m *Model) PredictBatchInto(out []float64, xs [][]float64) {
	if len(out) != len(xs) {
		panic(fmt.Sprintf("svm: PredictBatchInto: %d outputs for %d inputs", len(out), len(xs)))
	}
	workers := runtime.GOMAXPROCS(0)
	if len(xs) < parallelBatchMin || workers <= 1 {
		for i, x := range xs {
			out[i] = m.Predict(x)
		}
		return
	}
	if workers > len(xs) {
		workers = len(xs)
	}
	var wg sync.WaitGroup
	chunk := (len(xs) + workers - 1) / workers
	for lo := 0; lo < len(xs); lo += chunk {
		hi := lo + chunk
		if hi > len(xs) {
			hi = len(xs)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = m.Predict(xs[i])
			}
		}(lo, hi)
	}
	wg.Wait()
}

// NumSV returns the number of support vectors.
func (m *Model) NumSV() int { return len(m.SupportVectors) }

// Train fits an ε-SVR on (xs, ys) with the given kernel. It implements SMO
// on the standard 2n-variable dual with maximal-violating-pair working-set
// selection, kernel-specialized row computation over a flat design matrix,
// LIBSVM-style active-set shrinking, and an LRU kernel row cache.
func Train(xs [][]float64, ys []float64, k Kernel, p Params) (*Model, error) {
	n := len(xs)
	if n == 0 || len(ys) != n {
		return nil, fmt.Errorf("svm: bad training set: %d xs, %d ys", n, len(ys))
	}
	dim := len(xs[0])
	for i, x := range xs {
		if len(x) != dim {
			return nil, fmt.Errorf("svm: row %d has dim %d, want %d", i, len(x), dim)
		}
	}
	for i, y := range ys {
		if math.IsNaN(y) || math.IsInf(y, 0) {
			return nil, fmt.Errorf("svm: target %d is not finite: %v", i, y)
		}
	}
	if p.C <= 0 {
		return nil, errors.New("svm: C must be positive")
	}
	if p.Epsilon < 0 {
		return nil, errors.New("svm: epsilon must be non-negative")
	}
	if p.Tol <= 0 {
		p.Tol = 1e-3
	}
	maxIter := p.MaxIter
	if maxIter <= 0 {
		maxIter = 200 * n
		if maxIter < 100_000 {
			maxIter = 100_000
		}
	}

	var seed *warmSeed
	if p.WarmStart != nil {
		var err error
		if seed, err = buildWarmSeed(p.WarmStart, xs, k, p.C); err != nil {
			return nil, fmt.Errorf("svm: warm start: %w", err)
		}
	}

	s := &solver{
		ys: ys,
		n:  n, c: p.C, eps: p.Epsilon, tol: p.Tol,
		cache: newRowCache(k, newDesignMatrix(xs), p.CacheRows),
	}
	if seed != nil {
		s.warm = seed.beta
	}
	iters, converged := s.solve(maxIter, !p.DisableShrinking)

	// Collect support vectors: beta_i = alpha_i - alpha*_i != 0.
	m := &Model{kernel: k, Iters: iters, Converged: converged}
	for i := 0; i < n; i++ {
		beta := s.alpha[i] - s.alpha[i+n]
		if math.Abs(beta) > 1e-12 {
			m.SupportVectors = append(m.SupportVectors, xs[i])
			m.Coefs = append(m.Coefs, beta)
		}
	}
	m.B = s.offset()
	if seed != nil {
		info := seed.info
		// An exact seed the solver accepted without moving a single
		// variable IS the prior dual solution on identical rows: carry the
		// prior offset over verbatim so the retrain is bit-identical
		// (offset() would re-derive the same b up to summation order).
		if info.Reused = seed.exact && converged && !s.moved && p.WarmStart.Converged; info.Reused {
			m.B = p.WarmStart.B
		}
		m.Warm = &info
	}
	m.finalize()
	return m, nil
}

// shrinkInterval is how many SMO iterations pass between shrink attempts
// (LIBSVM uses min(l, 1000) for dual dimension l).
const shrinkInterval = 1000

// solver holds SMO state for the 2n-variable ε-SVR dual:
//
//	min ½ αᵀQα + pᵀα  s.t.  zᵀα = 0, 0 ≤ α ≤ C
//
// with, for a < n (the αᵢ block, z=+1): p_a = ε − y_a, and for a ≥ n (the
// αᵢ* block, z=−1): p_a = ε + y_{a−n}; Q_ab = z_a z_b K(x_{a%n}, x_{b%n}).
//
// The active set starts as all 2n variables; shrinking periodically removes
// bound variables that cannot currently be selected, so selectPair and the
// gradient refresh in update cost O(active) instead of O(2n). Gradient
// entries of fully shrunk bases go stale and are reconstructed by unshrink
// before convergence is declared (and before the offset is derived).
type solver struct {
	ys  []float64
	n   int
	c   float64
	eps float64
	tol float64

	alpha []float64 // 2n dual variables
	grad  []float64 // 2n gradient; stale for bases outside activeBases
	cache *rowCache

	// The active set is kept as two ascending lists split by dual block
	// (z=+1 variables a < n, z=−1 variables a ≥ n): iterating the first
	// then the second visits variables in ascending index order — the
	// same tie-breaking order as a full 0..2n scan — without a per-element
	// block branch.
	activePos   []int  // active variables < n, ascending
	activeNeg   []int  // active variables ≥ n, ascending
	activeBases []int  // bases with ≥1 active variable, ascending
	baseActive  []bool // len n, membership mask for activeBases
	fullActive  bool   // active covers all 2n variables
	unshrunk    bool   // the one-time near-convergence unshrink happened

	warm  []float64 // per-row initial β (nil = cold start from zero)
	moved bool      // any update changed an alpha (warm-reuse detection)
}

func (s *solver) z(a int) float64 {
	if a < s.n {
		return 1
	}
	return -1
}

func (s *solver) p(a int) float64 {
	if a < s.n {
		return s.eps - s.ys[a]
	}
	return s.eps + s.ys[a-s.n]
}

// solve runs SMO until convergence or maxIter, returning (iters, converged).
func (s *solver) solve(maxIter int, shrinking bool) (int, bool) {
	n2 := 2 * s.n
	s.alpha = make([]float64, n2)
	s.grad = make([]float64, n2)
	if s.warm != nil {
		s.seedWarm(s.warm)
	} else {
		for a := 0; a < n2; a++ {
			s.grad[a] = s.p(a) // alpha = 0 initially
		}
	}
	s.baseActive = make([]bool, s.n)
	s.activateAll()

	interval := shrinkInterval
	if n2 < interval {
		interval = n2
	}
	counter := interval

	for it := 0; it < maxIter; it++ {
		if shrinking {
			if counter--; counter == 0 {
				counter = interval
				s.shrink()
			}
		}
		i, j, gap := s.selectPair()
		if gap < s.tol {
			if s.fullActive {
				return it, true
			}
			// Converged on the shrunk problem only: reconstruct the
			// stale gradients, restore every variable, and re-check
			// against the full set before declaring convergence.
			s.unshrink()
			counter = 1 // re-shrink on the next iteration (LIBSVM)
			i, j, gap = s.selectPair()
			if gap < s.tol {
				return it, true
			}
		}
		s.update(i, j)
	}
	if !s.fullActive {
		s.unshrink() // offset needs fresh gradients for every variable
	}
	return maxIter, false
}

// activateAll restores the full 2n-variable active set.
func (s *solver) activateAll() {
	n := s.n
	if cap(s.activePos) < n {
		s.activePos = make([]int, n)
		s.activeNeg = make([]int, n)
		s.activeBases = make([]int, n)
	}
	s.activePos = s.activePos[:n]
	s.activeNeg = s.activeNeg[:n]
	s.activeBases = s.activeBases[:n]
	for b := 0; b < n; b++ {
		s.activePos[b] = b
		s.activeNeg[b] = b + n
		s.activeBases[b] = b
		s.baseActive[b] = true
	}
	s.fullActive = true
}

// selectPair picks the working pair with second-order selection (LIBSVM
// WSS2) over the active set: i is the maximal violator in I_up; j maximizes
// the guaranteed objective decrease b²/a among I_low candidates. The
// returned gap is the first-order KKT violation used as the stopping
// criterion.
func (s *solver) selectPair() (int, int, float64) {
	n := s.n
	alpha, grad, c := s.alpha, s.grad, s.c
	up := -1
	upVal := math.Inf(-1)
	// a ∈ I_up: α can still move in the +z direction.
	for _, a := range s.activePos {
		if alpha[a] < c {
			if v := -grad[a]; v > upVal {
				upVal, up = v, a
			}
		}
	}
	for _, a := range s.activeNeg {
		if alpha[a] > 0 {
			if v := grad[a]; v > upVal {
				upVal, up = v, a
			}
		}
	}
	if up < 0 {
		return 0, 0, 0
	}
	upBase := up % n
	rowUp := s.cache.row(upBase)
	kii := rowUp[upBase]
	diags := s.cache.diags

	low := -1
	lowVal := math.Inf(1)
	bestGain := -1.0
	const tau = 1e-12
	// a ∈ I_low: α can still move in the −z direction.
	for _, a := range s.activePos {
		if alpha[a] <= 0 {
			continue
		}
		v := -grad[a]
		if v < lowVal {
			lowVal = v
		}
		if b := upVal - v; b > 0 {
			// at = K_ii + K_tt − 2K_it = ‖φ(x_i) − φ(x_t)‖².
			at := kii + diags[a] - 2*rowUp[a]
			if at <= 0 {
				at = tau
			}
			if gain := b * b / at; gain > bestGain {
				bestGain, low = gain, a
			}
		}
	}
	for _, a := range s.activeNeg {
		if alpha[a] >= c {
			continue
		}
		v := grad[a]
		if v < lowVal {
			lowVal = v
		}
		if b := upVal - v; b > 0 {
			base := a - n
			at := kii + diags[base] - 2*rowUp[base]
			if at <= 0 {
				at = tau
			}
			if gain := b * b / at; gain > bestGain {
				bestGain, low = gain, a
			}
		}
	}
	if low < 0 {
		return 0, 0, 0
	}
	return up, low, upVal - lowVal
}

// update performs the analytic two-variable optimization for pair (i, j),
// then refreshes the gradient of every active base.
func (s *solver) update(i, j int) {
	const tau = 1e-12
	zi, zj := s.z(i), s.z(j)
	rowI := s.cache.row(i % s.n)
	rowJ := s.cache.row(j % s.n)
	kii := rowI[i%s.n]
	kjj := rowJ[j%s.n]
	kij := rowI[j%s.n]

	// In the 2n-variable dual, Q_ab = z_a z_b K_(a%n)(b%n); for both pair
	// kinds the quadratic coefficient reduces to ‖φ(x_i) − φ(x_j)‖².
	quad := kii + kjj - 2*kij
	if quad <= 0 {
		quad = tau
	}
	oldAi, oldAj := s.alpha[i], s.alpha[j]
	if zi != zj {
		delta := (-s.grad[i] - s.grad[j]) / quad
		diff := s.alpha[i] - s.alpha[j]
		s.alpha[i] += delta
		s.alpha[j] += delta
		// Box clipping preserving alpha_i - alpha_j = diff (LIBSVM order).
		if diff > 0 {
			if s.alpha[j] < 0 {
				s.alpha[j] = 0
				s.alpha[i] = diff
			}
			if s.alpha[i] > s.c {
				s.alpha[i] = s.c
				s.alpha[j] = s.c - diff
			}
		} else {
			if s.alpha[i] < 0 {
				s.alpha[i] = 0
				s.alpha[j] = -diff
			}
			if s.alpha[j] > s.c {
				s.alpha[j] = s.c
				s.alpha[i] = s.c + diff
			}
		}
	} else {
		delta := (s.grad[i] - s.grad[j]) / quad
		sum := s.alpha[i] + s.alpha[j]
		s.alpha[i] -= delta
		s.alpha[j] += delta
		// Box clipping preserving alpha_i + alpha_j = sum (LIBSVM order).
		if sum > s.c {
			if s.alpha[i] > s.c {
				s.alpha[i] = s.c
				s.alpha[j] = sum - s.c
			}
		} else {
			if s.alpha[j] < 0 {
				s.alpha[j] = 0
				s.alpha[i] = sum
			}
		}
		if sum > s.c {
			if s.alpha[j] > s.c {
				s.alpha[j] = s.c
				s.alpha[i] = sum - s.c
			}
		} else {
			if s.alpha[i] < 0 {
				s.alpha[i] = 0
				s.alpha[j] = sum
			}
		}
	}

	dAi := s.alpha[i] - oldAi
	dAj := s.alpha[j] - oldAj
	if dAi == 0 && dAj == 0 {
		return
	}
	s.moved = true
	// Gradient update over active bases: G_a += Q_ai dAi + Q_aj dAj,
	// exploiting the block structure Q_ab = z_a z_b K_(a%n)(b%n). Both
	// entries of a base share one kernel term, so updating the pair costs
	// the same as updating either half.
	n := s.n
	grad := s.grad
	for _, base := range s.activeBases {
		ki := rowI[base]
		kj := rowJ[base]
		v := zi*ki*dAi + zj*kj*dAj
		grad[base] += v   // z_a = +1
		grad[base+n] -= v // z_a = -1
	}
}

// shrink removes bound variables that can no longer be selected from the
// active set (LIBSVM do_shrinking): with m = max I_up and M = min I_low of
// the violation values −z·G, an I_up-only variable below M or an
// I_low-only variable above m cannot form a violating pair until the
// gradient landscape shifts, so it is parked until unshrink. Free
// variables always stay active. Near convergence (gap ≤ 10·tol) the full
// gradient is reconstructed once first, so the final rounds shrink from
// exact values.
func (s *solver) shrink() {
	n := s.n
	m := math.Inf(-1)
	M := math.Inf(1)
	for _, a := range s.activePos {
		v := -s.grad[a]
		if s.alpha[a] < s.c && v > m {
			m = v
		}
		if s.alpha[a] > 0 && v < M {
			M = v
		}
	}
	for _, a := range s.activeNeg {
		v := s.grad[a]
		if s.alpha[a] > 0 && v > m {
			m = v
		}
		if s.alpha[a] < s.c && v < M {
			M = v
		}
	}

	if !s.unshrunk && m-M <= 10*s.tol {
		s.unshrunk = true
		s.unshrink()
	}

	keptPos := s.activePos[:0]
	for _, a := range s.activePos {
		if s.keepActive(a, m, M) {
			keptPos = append(keptPos, a)
		}
	}
	s.activePos = keptPos
	keptNeg := s.activeNeg[:0]
	for _, a := range s.activeNeg {
		if s.keepActive(a, m, M) {
			keptNeg = append(keptNeg, a)
		}
	}
	s.activeNeg = keptNeg
	s.fullActive = len(s.activePos)+len(s.activeNeg) == 2*n

	// Rebuild the active base list as the sorted union of the two block
	// lists (both already ascending).
	for b := range s.baseActive {
		s.baseActive[b] = false
	}
	bases := s.activeBases[:0]
	i, j := 0, 0
	for i < len(s.activePos) || j < len(s.activeNeg) {
		var b int
		switch {
		case i >= len(s.activePos):
			b = s.activeNeg[j] - n
			j++
		case j >= len(s.activeNeg) || s.activePos[i] < s.activeNeg[j]-n:
			b = s.activePos[i]
			i++
		case s.activePos[i] == s.activeNeg[j]-n:
			b = s.activePos[i]
			i++
			j++
		default:
			b = s.activeNeg[j] - n
			j++
		}
		bases = append(bases, b)
		s.baseActive[b] = true
	}
	s.activeBases = bases
}

// keepActive reports whether variable a must stay active given the current
// maximal violation bounds m (max over I_up) and M (min over I_low).
func (s *solver) keepActive(a int, m, M float64) bool {
	atLower := s.alpha[a] == 0
	atUpper := s.alpha[a] == s.c
	if !atLower && !atUpper {
		return true // free variables always participate
	}
	var v float64 // −z·G, the violation value
	if a < s.n {
		v = -s.grad[a]
	} else {
		v = s.grad[a]
	}
	// A bound variable sits in exactly one of I_up / I_low.
	inUp := (a < s.n && !atUpper) || (a >= s.n && !atLower)
	if inUp {
		return v >= M
	}
	return v <= m
}

// unshrink reconstructs the stale gradient entries of every fully shrunk
// base and restores the full active set. Reconstruction exploits the block
// structure: G_a = p_a + z_a f_(a%n) with f_i = Σ_j β_j K_ij, accumulated
// column-wise with one cached kernel row per nonzero β.
func (s *solver) unshrink() {
	n := s.n
	if len(s.activeBases) < n {
		stale := make([]int, 0, n-len(s.activeBases))
		for b := 0; b < n; b++ {
			if !s.baseActive[b] {
				stale = append(stale, b)
			}
		}
		f := make([]float64, n)
		for j := 0; j < n; j++ {
			beta := s.alpha[j] - s.alpha[j+n]
			if beta == 0 {
				continue
			}
			row := s.cache.row(j)
			for _, b := range stale {
				f[b] += beta * row[b]
			}
		}
		for _, b := range stale {
			s.grad[b] = s.p(b) + f[b]
			s.grad[b+n] = s.p(b+n) - f[b]
		}
	}
	s.activateAll()
}

// offset derives the bias term b of f(x) = Σβ K + b from the KKT
// conditions: for interior variables z_a G_a is the equality multiplier; b
// is its negation. Falls back to the feasible-interval midpoint when no
// variable is strictly inside the box.
func (s *solver) offset() float64 {
	n2 := 2 * s.n
	sum, cnt := 0.0, 0
	lo, hi := math.Inf(-1), math.Inf(1)
	for a := 0; a < n2; a++ {
		v := s.z(a) * s.grad[a]
		switch {
		case s.alpha[a] > 0 && s.alpha[a] < s.c:
			sum += v
			cnt++
		case s.alpha[a] == 0:
			// G - b' z >= 0 where b' is the multiplier: z G >= b' if z>0...
			if s.z(a) > 0 {
				hi = math.Min(hi, v)
			} else {
				lo = math.Max(lo, v)
			}
		default: // alpha == C
			if s.z(a) > 0 {
				lo = math.Max(lo, v)
			} else {
				hi = math.Min(hi, v)
			}
		}
	}
	var mult float64
	if cnt > 0 {
		mult = sum / float64(cnt)
	} else {
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			mult = 0
		case math.IsInf(lo, -1):
			mult = hi
		case math.IsInf(hi, 1):
			mult = lo
		default:
			mult = (lo + hi) / 2
		}
	}
	return -mult
}
