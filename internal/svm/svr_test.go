package svm

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

// paperParams are the hyper-parameters the paper uses for both models.
var paperParams = Params{C: 1000, Epsilon: 0.1}

// det is a tiny deterministic pseudo-random stream for test data.
type det struct{ s uint64 }

func (d *det) next() float64 {
	d.s = d.s*6364136223846793005 + 1442695040888963407
	return float64(d.s>>11) / float64(1<<53)
}

func TestLinearFit1D(t *testing.T) {
	// y = 2x + 1 must be recovered within the epsilon tube.
	var xs [][]float64
	var ys []float64
	for i := 0; i <= 20; i++ {
		x := float64(i) / 10
		xs = append(xs, []float64{x})
		ys = append(ys, 2*x+1)
	}
	m, err := Train(xs, ys, Linear{}, paperParams)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if !m.Converged {
		t.Error("training did not converge")
	}
	for i, x := range xs {
		got := m.Predict(x)
		if math.Abs(got-ys[i]) > paperParams.Epsilon+0.02 {
			t.Errorf("Predict(%v) = %.4f, want %.4f ± ε", x, got, ys[i])
		}
	}
	// Extrapolation must stay linear.
	if got := m.Predict([]float64{3}); math.Abs(got-7) > 0.3 {
		t.Errorf("Predict(3) = %.4f, want ~7", got)
	}
}

func TestLinearFitMultiDim(t *testing.T) {
	// y = 1 + 2a - 3b + 0.5c over a grid.
	var xs [][]float64
	var ys []float64
	r := &det{s: 7}
	for i := 0; i < 120; i++ {
		a, b, c := r.next(), r.next(), r.next()
		xs = append(xs, []float64{a, b, c})
		ys = append(ys, 1+2*a-3*b+0.5*c)
	}
	m, err := Train(xs, ys, Linear{}, paperParams)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	rmse := 0.0
	for i, x := range xs {
		d := m.Predict(x) - ys[i]
		rmse += d * d
	}
	rmse = math.Sqrt(rmse / float64(len(xs)))
	if rmse > 0.08 {
		t.Errorf("RMSE = %.4f, want < 0.08 (ε = 0.1)", rmse)
	}
}

func TestRBFFitsNonlinear(t *testing.T) {
	// A parabola with a minimum — the shape of normalized energy over core
	// frequency — cannot be fit by a linear model but must be by RBF.
	var xs [][]float64
	var ys []float64
	for i := 0; i <= 40; i++ {
		x := float64(i) / 40
		xs = append(xs, []float64{x})
		ys = append(ys, 1.5*(x-0.7)*(x-0.7)+0.8)
	}
	rbf, err := Train(xs, ys, RBF{Gamma: 10}, paperParams)
	if err != nil {
		t.Fatalf("Train RBF: %v", err)
	}
	lin, err := Train(xs, ys, Linear{}, paperParams)
	if err != nil {
		t.Fatalf("Train linear: %v", err)
	}
	rmseOf := func(m *Model) float64 {
		s := 0.0
		for i, x := range xs {
			d := m.Predict(x) - ys[i]
			s += d * d
		}
		return math.Sqrt(s / float64(len(xs)))
	}
	if r := rmseOf(rbf); r > 0.12 {
		t.Errorf("RBF RMSE = %.4f, want < 0.12", r)
	}
	// The linear model cannot represent the bend; RBF must beat it.
	if rmseOf(rbf) >= rmseOf(lin) {
		t.Errorf("RBF RMSE %.4f not better than linear %.4f on parabola",
			rmseOf(rbf), rmseOf(lin))
	}
}

func TestEpsilonTubeSparsity(t *testing.T) {
	// Points inside the ε-tube of the solution need not become support
	// vectors: the model must be sparser than the training set on clean
	// linear data with a wide tube.
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		x := float64(i) / 200
		xs = append(xs, []float64{x})
		ys = append(ys, x)
	}
	m, err := Train(xs, ys, Linear{}, Params{C: 10, Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSV() >= len(xs)/2 {
		t.Errorf("NumSV = %d of %d, want sparse solution", m.NumSV(), len(xs))
	}
}

func TestTrainValidation(t *testing.T) {
	ok := [][]float64{{1}, {2}}
	okY := []float64{1, 2}
	cases := []struct {
		name string
		xs   [][]float64
		ys   []float64
		p    Params
	}{
		{"empty", nil, nil, paperParams},
		{"mismatched", ok, []float64{1}, paperParams},
		{"ragged", [][]float64{{1}, {2, 3}}, okY, paperParams},
		{"nan target", ok, []float64{1, math.NaN()}, paperParams},
		{"bad C", ok, okY, Params{C: 0, Epsilon: 0.1}},
		{"bad epsilon", ok, okY, Params{C: 1, Epsilon: -1}},
	}
	for _, c := range cases {
		if _, err := Train(c.xs, c.ys, Linear{}, c.p); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestConstantTarget(t *testing.T) {
	xs := [][]float64{{0}, {0.5}, {1}}
	ys := []float64{3, 3, 3}
	m, err := Train(xs, ys, Linear{}, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{0.25}); math.Abs(got-3) > paperParams.Epsilon+1e-6 {
		t.Errorf("Predict = %.4f, want 3 ± ε", got)
	}
}

func TestDeterministicTraining(t *testing.T) {
	var xs [][]float64
	var ys []float64
	r := &det{s: 3}
	for i := 0; i < 60; i++ {
		a, b := r.next(), r.next()
		xs = append(xs, []float64{a, b})
		ys = append(ys, math.Sin(3*a)+b)
	}
	m1, err := Train(xs, ys, RBF{Gamma: 1}, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(xs, ys, RBF{Gamma: 1}, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	if m1.NumSV() != m2.NumSV() || m1.B != m2.B {
		t.Error("training is not deterministic")
	}
	for i := 0; i < 10; i++ {
		x := []float64{float64(i) / 10, 0.5}
		if m1.Predict(x) != m2.Predict(x) {
			t.Fatalf("predictions differ at %v", x)
		}
	}
}

func TestNoisyDataStaysBounded(t *testing.T) {
	r := &det{s: 11}
	var xs [][]float64
	var ys []float64
	for i := 0; i < 150; i++ {
		x := r.next()
		xs = append(xs, []float64{x})
		ys = append(ys, 2*x+0.2*(r.next()-0.5))
	}
	m, err := Train(xs, ys, Linear{}, Params{C: 100, Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		v := m.Predict(x)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite prediction at %v", x)
		}
	}
}

func TestPredictFiniteProperty(t *testing.T) {
	xs := [][]float64{{0, 0}, {0.5, 1}, {1, 0.2}, {0.3, 0.9}}
	ys := []float64{0, 1, 0.5, 0.8}
	m, err := Train(xs, ys, RBF{Gamma: 0.1}, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		if math.Abs(a) > 1e6 || math.Abs(b) > 1e6 {
			return true
		}
		v := m.Predict([]float64{a, b})
		return !math.IsNaN(v) && !math.IsInf(v, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredictBatch(t *testing.T) {
	xs := [][]float64{{0}, {1}}
	ys := []float64{0, 1}
	m, err := Train(xs, ys, Linear{}, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	batch := m.PredictBatch(xs)
	if len(batch) != 2 {
		t.Fatalf("batch length %d", len(batch))
	}
	for i, x := range xs {
		if batch[i] != m.Predict(x) {
			t.Errorf("batch[%d] != Predict", i)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	var xs [][]float64
	var ys []float64
	for i := 0; i <= 10; i++ {
		x := float64(i) / 10
		xs = append(xs, []float64{x, 1 - x})
		ys = append(ys, 3*x-1)
	}
	for _, k := range []Kernel{Linear{}, RBF{Gamma: 0.1}, Poly{Gamma: 1, Coef0: 1, Degree: 2}} {
		m, err := Train(xs, ys, k, paperParams)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatalf("%v: Save: %v", k, err)
		}
		m2, err := Load(&buf)
		if err != nil {
			t.Fatalf("%v: Load: %v", k, err)
		}
		for _, x := range xs {
			if math.Abs(m.Predict(x)-m2.Predict(x)) > 1e-12 {
				t.Errorf("%v: prediction drift after round trip", k)
			}
		}
	}
}

func TestLoadRejectsBad(t *testing.T) {
	cases := []string{
		"not json",
		`{"kernel":{"type":"mystery"},"support_vectors":[],"coefs":[],"b":0}`,
		`{"kernel":{"type":"linear"},"support_vectors":[[1]],"coefs":[],"b":0}`,
		`{"kernel":{"type":"linear"},"support_vectors":[[1,2],[3]],"coefs":[1,1],"b":0}`,
	}
	for _, c := range cases {
		if _, err := Load(bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("Load(%q) succeeded, want error", c)
		}
	}
}

func TestKernelStrings(t *testing.T) {
	if (Linear{}).String() != "linear" {
		t.Error("Linear.String")
	}
	if s := (RBF{Gamma: 0.1}).String(); s != "rbf(gamma=0.1)" {
		t.Errorf("RBF.String = %q", s)
	}
	if s := (Poly{Gamma: 1, Coef0: 0, Degree: 3}).String(); s == "" {
		t.Error("Poly.String empty")
	}
}

func TestKernelSymmetryProperty(t *testing.T) {
	kernels := []Kernel{Linear{}, RBF{Gamma: 0.5}, Poly{Gamma: 1, Coef0: 1, Degree: 2}}
	f := func(a, b [4]float64) bool {
		for i := range a {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) || math.Abs(a[i]) > 1e6 {
				return true
			}
			if math.IsNaN(b[i]) || math.IsInf(b[i], 0) || math.Abs(b[i]) > 1e6 {
				return true
			}
		}
		for _, k := range kernels {
			if k.Eval(a[:], b[:]) != k.Eval(b[:], a[:]) {
				return false
			}
		}
		// RBF is bounded in (0, 1] and equals 1 on the diagonal.
		r := RBF{Gamma: 0.5}
		v := r.Eval(a[:], a[:])
		if math.Abs(v-1) > 1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
