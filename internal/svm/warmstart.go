package svm

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
)

// WarmInfo reports how a warm-started fit was seeded from the prior model.
// It lives on the trained Model for status/manifest reporting and is never
// serialized: a saved-and-reloaded model carries only its weights, so the
// persisted form (and its content hash) is identical whether the fit was
// warm or cold.
type WarmInfo struct {
	// Matched counts the prior support vectors re-matched against the new
	// design matrix by row identity.
	Matched int
	// Dropped counts the prior support vectors with no matching row; their
	// coefficient mass is projected back onto the feasible set before the
	// first iteration.
	Dropped int
	// Clamped counts matched coefficients that had to be clipped into the
	// current box constraint [-C, C] (only possible when C changed between
	// fits).
	Clamped int
	// Projected is the total coefficient mass the feasibility projection
	// moved to restore the equality constraint Σβ = 0 after drops or clamps.
	Projected float64
	// Reused reports that the solver accepted the seed without moving any
	// variable and the prior offset was carried over verbatim — the
	// warm-started model is bit-identical to the prior one.
	Reused bool
}

// warmSeed is the solver's starting point derived from a prior model: one
// initial β per training row, plus the seeding report.
type warmSeed struct {
	beta []float64
	info WarmInfo
	// exact marks a seed that reproduces the prior dual state verbatim:
	// every prior support vector matched and nothing was clamped or
	// projected. Only an exact seed may reuse the prior offset.
	exact bool
}

// sameKernel reports whether two kernels are interchangeable for
// warm-starting: same dynamic type and (for comparable types) same
// parameters. Non-comparable user-supplied kernels never match — a seed
// under a different kernel geometry would be silently wrong, so Train
// rejects it loudly instead.
func sameKernel(a, b Kernel) bool {
	ta, tb := reflect.TypeOf(a), reflect.TypeOf(b)
	if ta != tb || ta == nil || !ta.Comparable() {
		return false
	}
	return a == b
}

// rowKey maps a feature row to its exact bit pattern, the identity used to
// re-match prior support vectors against the new design matrix. Matching is
// bitwise on purpose: a row whose features changed by even one ulp is a
// different observation and must re-enter at β = 0.
func rowKey(x []float64) string {
	b := make([]byte, 8*len(x))
	for i, v := range x {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return string(b)
}

// buildWarmSeed derives the solver's initial β vector from a prior model:
// prior support vectors are matched to rows of xs by bit-exact row identity
// (duplicated rows consume duplicate support vectors in order), unmatched
// rows enter at β = 0, and the mass of dropped support vectors is projected
// back onto the feasible set (Σβ = 0, |β| ≤ C) before the first iteration.
func buildWarmSeed(prior *Model, xs [][]float64, k Kernel, c float64) (*warmSeed, error) {
	if !sameKernel(k, prior.kernel) {
		return nil, fmt.Errorf("kernel mismatch: prior %v, new %v", prior.kernel, k)
	}
	nsv := prior.NumSV()
	if nsv > 0 && len(xs) > 0 && prior.svDim != len(xs[0]) {
		return nil, fmt.Errorf("dimension mismatch: prior %d, new %d", prior.svDim, len(xs[0]))
	}

	// FIFO queues per row identity, so weight-replicated duplicate rows each
	// consume one of the prior's duplicate support vectors.
	byKey := make(map[string][]int, nsv)
	for j := range prior.SupportVectors {
		key := rowKey(prior.SupportVectors[j])
		byKey[key] = append(byKey[key], j)
	}

	seed := &warmSeed{beta: make([]float64, len(xs))}
	for i, x := range xs {
		key := rowKey(x)
		q := byKey[key]
		if len(q) == 0 {
			continue
		}
		byKey[key] = q[1:]
		b := prior.Coefs[q[0]]
		if b > c {
			b, seed.info.Clamped = c, seed.info.Clamped+1
		} else if b < -c {
			b, seed.info.Clamped = -c, seed.info.Clamped+1
		}
		seed.beta[i] = b
		seed.info.Matched++
	}
	seed.info.Dropped = nsv - seed.info.Matched

	// Feasibility projection: the dual requires Σβ = 0 exactly (SMO updates
	// preserve the sum, so an infeasible start could never be repaired).
	// Residues at the support-vector cutoff scale (the solver drops
	// |β| ≤ 1e-12 when collecting a model) are left alone — smearing them
	// across rows would perturb an otherwise exact seed for no benefit.
	sum := 0.0
	for _, b := range seed.beta {
		sum += b
	}
	if thresh := 1e-9 * math.Max(1, c); math.Abs(sum) > thresh {
		seed.info.Projected = projectBalance(seed.beta, c, sum)
	}
	seed.exact = seed.info.Dropped == 0 && seed.info.Clamped == 0 && seed.info.Projected == 0
	return seed, nil
}

// projectBalance restores Σβ = 0 and returns the total mass moved. It
// prefers shrinking same-sign coefficients toward zero — the seeds that
// carried the dropped rows' slack are the ones most likely to be stale —
// and only if the imbalance survives that does it push other rows toward
// the opposite bound. Shrink-first matters for seed quality: dumping the
// imbalance onto arbitrary rows at up to ±C hands the solver a near-
// adversarial start, while shrinking keeps every coefficient inside the
// envelope of plausible solutions. The projection only affects the
// starting point's quality, never the fit's correctness: any feasible
// seed converges to the same KKT tolerance.
func projectBalance(beta []float64, c, sum float64) float64 {
	moved := 0.0
	take := func(i int, room float64) {
		d := math.Min(math.Abs(sum), room)
		if d <= 0 {
			return
		}
		if sum > 0 {
			beta[i] -= d
			sum -= d
		} else {
			beta[i] += d
			sum += d
		}
		moved += d
	}
	// Pass 1: shrink coefficients of the imbalance's own sign toward zero.
	for i := range beta {
		if sum == 0 {
			return moved
		}
		if sum > 0 && beta[i] > 0 {
			take(i, beta[i])
		} else if sum < 0 && beta[i] < 0 {
			take(i, -beta[i])
		}
	}
	// Pass 2: the residue exceeds all same-sign mass; spread it over the
	// remaining box slack.
	for i := range beta {
		if sum == 0 {
			break
		}
		if sum > 0 {
			take(i, beta[i]+c)
		} else {
			take(i, c-beta[i])
		}
	}
	return moved
}

// seedWarm installs a warm seed as the solver's starting state: alphas from
// the per-row betas (β > 0 fills the αᵢ block, β < 0 the αᵢ* block) and the
// gradient reconstructed incrementally from the matched rows only —
// G_a = p_a + z_a f_(a%n) with f_i = Σ_j β_j K_ij accumulated with one
// cached kernel row per nonzero β, the same identity unshrink uses. A cold
// start is the special case β = 0, f = 0, G_a = p_a.
func (s *solver) seedWarm(beta []float64) {
	n := s.n
	f := make([]float64, n)
	for j, b := range beta {
		if b == 0 {
			continue
		}
		if b > 0 {
			s.alpha[j] = b
		} else {
			s.alpha[j+n] = -b
		}
		row := s.cache.row(j)
		for i := 0; i < n; i++ {
			f[i] += b * row[i]
		}
	}
	for i := 0; i < n; i++ {
		s.grad[i] = s.p(i) + f[i]
		s.grad[i+n] = s.p(i+n) - f[i]
	}
}
