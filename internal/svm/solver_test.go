package svm

import (
	"bytes"
	"math"
	"testing"
)

// equivGrid builds a deterministic evaluation grid inside the unit box.
func equivGrid(dim, n int) [][]float64 {
	r := &det{s: 99}
	out := make([][]float64, n)
	for i := range out {
		x := make([]float64, dim)
		for j := range x {
			x[j] = r.next()
		}
		out[i] = x
	}
	return out
}

// TestSolverMatchesReference trains the production solver (shrinking on and
// off) and the preserved pre-overhaul reference solver on the same data and
// requires the models to agree: same support-vector count, same offset and
// predictions within 1e-9, and — since the stopping criterion is identical —
// the same convergence flag.
func TestSolverMatchesReference(t *testing.T) {
	type dataset struct {
		name string
		k    Kernel
		p    Params
		xs   [][]float64
		ys   []float64
	}
	var sets []dataset

	// Linear, multi-dimensional.
	{
		var xs [][]float64
		var ys []float64
		r := &det{s: 7}
		for i := 0; i < 150; i++ {
			a, b, c := r.next(), r.next(), r.next()
			xs = append(xs, []float64{a, b, c})
			ys = append(ys, 1+2*a-3*b+0.5*c+0.05*(r.next()-0.5))
		}
		sets = append(sets, dataset{"linear", Linear{}, paperParams, xs, ys})
	}
	// RBF on a nonlinear surface.
	{
		var xs [][]float64
		var ys []float64
		r := &det{s: 3}
		for i := 0; i < 120; i++ {
			a, b := r.next(), r.next()
			xs = append(xs, []float64{a, b})
			ys = append(ys, math.Sin(3*a)+b*b)
		}
		sets = append(sets, dataset{"rbf", RBF{Gamma: 2}, paperParams, xs, ys})
	}
	// Polynomial (exercises the specialized poly rows).
	{
		var xs [][]float64
		var ys []float64
		for i := 0; i <= 60; i++ {
			x := float64(i) / 60
			xs = append(xs, []float64{x})
			ys = append(ys, 2*x*x-x+0.5)
		}
		sets = append(sets, dataset{"poly", Poly{Gamma: 1, Coef0: 1, Degree: 2},
			Params{C: 1000, Epsilon: 0.02}, xs, ys})
	}
	// A capped run: the unconverged path must also match.
	{
		var xs [][]float64
		var ys []float64
		r := &det{s: 9}
		for i := 0; i < 80; i++ {
			a := r.next()
			xs = append(xs, []float64{a})
			ys = append(ys, math.Sin(20*a))
		}
		sets = append(sets, dataset{"capped", Linear{},
			Params{C: 1e6, Epsilon: 1e-6, MaxIter: 5000}, xs, ys})
	}

	grid := equivGrid(3, 64)
	for _, ds := range sets {
		ref := refTrain(ds.xs, ds.ys, ds.k, ds.p)
		for _, shrink := range []bool{true, false} {
			p := ds.p
			p.DisableShrinking = !shrink
			name := ds.name + "/shrink"
			if !shrink {
				name = ds.name + "/noshrink"
			}
			t.Run(name, func(t *testing.T) {
				m, err := Train(ds.xs, ds.ys, ds.k, p)
				if err != nil {
					t.Fatal(err)
				}
				if m.Converged != ref.Converged {
					t.Errorf("Converged = %v, reference %v", m.Converged, ref.Converged)
				}
				if m.NumSV() != len(ref.Coefs) {
					t.Errorf("NumSV = %d, reference %d", m.NumSV(), len(ref.Coefs))
				}
				if d := math.Abs(m.B - ref.B); d > 1e-9 {
					t.Errorf("B = %v, reference %v (|Δ| = %g)", m.B, ref.B, d)
				}
				dim := len(ds.xs[0])
				for _, x := range grid {
					x := x[:dim]
					got, want := m.Predict(x), ref.Predict(x)
					if d := math.Abs(got - want); d > 1e-9 {
						t.Fatalf("Predict(%v) = %v, reference %v (|Δ| = %g)", x, got, want, d)
					}
				}
			})
		}
	}
}

// TestShrinkingIterationSemantics checks the documented invariants of the
// shrinking path against the non-shrinking one on a converging problem:
// both satisfy the same stopping criterion (shrinking re-checks the full
// set before declaring convergence), Iters counts performed update steps,
// and the models agree. Iteration counts are not required to be equal —
// shrinking may legitimately alter the SMO trajectory.
func TestShrinkingIterationSemantics(t *testing.T) {
	var xs [][]float64
	var ys []float64
	r := &det{s: 5}
	for i := 0; i < 100; i++ {
		a, b := r.next(), r.next()
		xs = append(xs, []float64{a, b})
		ys = append(ys, a+0.5*b)
	}
	on, err := Train(xs, ys, Linear{}, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	off, err := Train(xs, ys, Linear{}, Params{C: paperParams.C, Epsilon: paperParams.Epsilon, DisableShrinking: true})
	if err != nil {
		t.Fatal(err)
	}
	if !on.Converged || !off.Converged {
		t.Fatalf("expected convergence (shrink %v, noshrink %v)", on.Converged, off.Converged)
	}
	if on.Iters <= 0 || off.Iters <= 0 {
		t.Fatalf("Iters not counting update steps: shrink %d, noshrink %d", on.Iters, off.Iters)
	}
	for _, x := range xs {
		if d := math.Abs(on.Predict(x) - off.Predict(x)); d > 1e-9 {
			t.Fatalf("shrinking changed the converged model at %v (|Δ| = %g)", x, d)
		}
	}
}

// TestCacheRowsFloorClamped guards the eviction slice-reuse invariant: the
// solver holds two rows at once, so a 1-row cache must clamp to 2 and train
// the same model as the default capacity.
func TestCacheRowsFloorClamped(t *testing.T) {
	var xs [][]float64
	var ys []float64
	r := &det{s: 31}
	for i := 0; i < 60; i++ {
		a, b := r.next(), r.next()
		xs = append(xs, []float64{a, b})
		ys = append(ys, 2*a-b)
	}
	def, err := Train(xs, ys, Linear{}, Params{C: 100, Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Train(xs, ys, Linear{}, Params{C: 100, Epsilon: 0.05, CacheRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if one.NumSV() != def.NumSV() || one.B != def.B {
		t.Fatalf("CacheRows=1 changed the model: %d SVs B=%v vs %d SVs B=%v",
			one.NumSV(), one.B, def.NumSV(), def.B)
	}
	for _, x := range xs {
		if one.Predict(x) != def.Predict(x) {
			t.Fatalf("CacheRows=1 changed predictions at %v", x)
		}
	}
}

// TestRowCacheLRUEviction asserts true recency-based eviction: hitting a row
// must protect it from eviction when a later insert exceeds capacity.
func TestRowCacheLRUEviction(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}, {4}}
	d := newDesignMatrix(xs)
	c := newRowCache(Linear{}, d, 2)

	c.row(0)
	c.row(1)
	c.row(0) // refresh row 0: row 1 is now least recently used
	c.row(2) // past capacity: must evict row 1, not row 0
	if _, ok := c.rows[0]; !ok {
		t.Fatal("row 0 evicted despite being most recently used (FIFO, not LRU)")
	}
	if _, ok := c.rows[1]; ok {
		t.Fatal("row 1 still cached; LRU should have evicted it")
	}
	if _, ok := c.rows[2]; !ok {
		t.Fatal("row 2 not cached after insert")
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d rows, capacity 2", c.len())
	}
}

// TestRowCacheAtRefreshesRecency asserts that single-element at lookups
// participate in the LRU accounting.
func TestRowCacheAtRefreshesRecency(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}}
	d := newDesignMatrix(xs)
	c := newRowCache(Linear{}, d, 2)

	c.row(0)
	c.row(1)
	if got, want := c.at(0, 2), 3.0; got != want {
		t.Fatalf("at(0,2) = %v, want %v", got, want)
	}
	c.row(2) // must evict row 1: the at lookup refreshed row 0
	if _, ok := c.rows[0]; !ok {
		t.Fatal("row 0 evicted although at(0, ...) refreshed it")
	}
	if _, ok := c.rows[1]; ok {
		t.Fatal("row 1 survived although it was least recently used")
	}

	// at on an uncached pair answers from the symmetric cached row.
	c2 := newRowCache(Linear{}, d, 2)
	c2.row(1)
	if got, want := c2.at(2, 1), 6.0; got != want {
		t.Fatalf("at(2,1) = %v, want %v", got, want)
	}
	// And computes directly (without caching) when neither row is cached.
	if got, want := c2.at(0, 2), 3.0; got != want {
		t.Fatalf("at(0,2) = %v, want %v", got, want)
	}
	if c2.len() != 1 {
		t.Fatalf("at cached a full row: %d entries, want 1", c2.len())
	}
}

// TestRowKernelsMatchEval checks every specialized row filler against the
// per-element kernel it replaces.
func TestRowKernelsMatchEval(t *testing.T) {
	r := &det{s: 13}
	var xs [][]float64
	for i := 0; i < 40; i++ {
		xs = append(xs, []float64{r.next(), r.next(), r.next()})
	}
	d := newDesignMatrix(xs)
	for _, k := range []Kernel{Linear{}, RBF{Gamma: 0.7}, Poly{Gamma: 1, Coef0: 1, Degree: 3}} {
		rk := rowKernelFor(k)
		dst := make([]float64, len(xs))
		for i := range xs {
			rk.fillRow(d, i, 0, len(xs), dst)
			for j := range xs {
				want := k.Eval(xs[i], xs[j])
				if math.Abs(dst[j]-want) > 1e-12 {
					t.Fatalf("%v: row %d col %d = %v, Eval = %v", k, i, j, dst[j], want)
				}
			}
		}
	}
}

// TestFlattenedSupportVectorsRoundTrip checks that persist/load rebuilds the
// flattened support-vector matrix and the fast paths exactly.
func TestFlattenedSupportVectorsRoundTrip(t *testing.T) {
	r := &det{s: 17}
	var xs [][]float64
	var ys []float64
	for i := 0; i < 90; i++ {
		a, b := r.next(), r.next()
		xs = append(xs, []float64{a, b})
		ys = append(ys, math.Sin(2*a)-b)
	}
	for _, k := range []Kernel{Linear{}, RBF{Gamma: 1.5}, Poly{Gamma: 1, Coef0: 1, Degree: 2}} {
		m, err := Train(xs, ys, k, paperParams)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatalf("%v: Save: %v", k, err)
		}
		m2, err := Load(&buf)
		if err != nil {
			t.Fatalf("%v: Load: %v", k, err)
		}
		if len(m2.svFlat) != m2.NumSV()*m2.svDim || m2.svDim != len(xs[0]) {
			t.Fatalf("%v: flat matrix %d×%d for %d SVs", k, len(m2.svFlat), m2.svDim, m2.NumSV())
		}
		for i := 0; i < m.NumSV(); i++ {
			for j, v := range m.sv(i) {
				if m2.sv(i)[j] != v {
					t.Fatalf("%v: flat SV %d differs after round trip", k, i)
				}
			}
		}
		for _, x := range xs {
			if m.Predict(x) != m2.Predict(x) {
				t.Fatalf("%v: prediction drift after round trip", k)
			}
		}
	}
}

// TestPredictBatchInto covers the allocation-free batch form, including the
// length mismatch panic.
func TestPredictBatchInto(t *testing.T) {
	xs := [][]float64{{0}, {0.5}, {1}}
	ys := []float64{0, 1, 2}
	m, err := Train(xs, ys, Linear{}, paperParams)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(xs))
	m.PredictBatchInto(out, xs)
	for i, x := range xs {
		if out[i] != m.Predict(x) {
			t.Errorf("out[%d] != Predict", i)
		}
	}
	allocs := testing.AllocsPerRun(100, func() { m.PredictBatchInto(out, xs) })
	if allocs != 0 {
		t.Errorf("PredictBatchInto allocates %v times per call, want 0", allocs)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	m.PredictBatchInto(out[:1], xs)
}
