package svm_test

// Property sweep: every model class this package trains — the preserved
// reference solver, the production solver with shrinking on and off, warm-
// started fits, and iteration-capped partial fits — must produce a model
// that passes the shared svmtest verification at its own tolerance. The
// checks run in an external test package because the checker itself lives
// in svmtest, which imports svm.

import (
	"math"
	"testing"

	"repro/internal/svm"
	"repro/internal/svm/svmtest"
)

// propRand is the same deterministic LCG the internal suite uses.
type propRand struct{ s uint64 }

func (d *propRand) next() float64 {
	d.s = d.s*6364136223846793005 + 1442695040888963407
	return float64(d.s>>11) / float64(1<<53)
}

type propSet struct {
	name string
	xs   [][]float64
	ys   []float64
	k    svm.Kernel
	p    svm.Params
}

// propSets builds one dataset per kernel family, shaped like the internal
// suite's: targets each kernel can actually fit, so every class converges.
func propSets() []propSet {
	linXs := make([][]float64, 150)
	linYs := make([]float64, 150)
	d := &propRand{s: 42}
	for i := range linXs {
		x1, x2 := 2*d.next()-1, 2*d.next()-1
		linXs[i] = []float64{x1, x2}
		linYs[i] = 2*x1 - x2 + 0.05*(d.next()-0.5)
	}
	rbfXs := make([][]float64, 120)
	rbfYs := make([]float64, 120)
	d = &propRand{s: 7}
	for i := range rbfXs {
		x1, x2 := 2*d.next()-1, 2*d.next()-1
		rbfXs[i] = []float64{x1, x2}
		rbfYs[i] = math.Sin(2*x1) + 0.5*x2*x2
	}
	polyXs := make([][]float64, 100)
	polyYs := make([]float64, 100)
	d = &propRand{s: 13}
	for i := range polyXs {
		x1, x2 := 2*d.next()-1, 2*d.next()-1
		polyXs[i] = []float64{x1, x2}
		polyYs[i] = (x1 + x2) * (x1 + x2)
	}
	pp := svm.Params{C: 1000, Epsilon: 0.1}
	return []propSet{
		{"linear", linXs, linYs, svm.Linear{}, pp},
		{"rbf", rbfXs, rbfYs, svm.RBF{Gamma: 2}, pp},
		{"poly", polyXs, polyYs, svm.Poly{Gamma: 1, Coef0: 1, Degree: 2}, pp},
	}
}

// TestKKTPropertySweep certifies every converged model class against the
// shared KKT checker at the solver's stopping tolerance.
func TestKKTPropertySweep(t *testing.T) {
	for _, set := range propSets() {
		set := set
		t.Run(set.name, func(t *testing.T) {
			classes := []struct {
				name  string
				train func() (*svm.Model, error)
			}{
				{"reference", func() (*svm.Model, error) {
					return svm.RefTrainModel(set.xs, set.ys, set.k, set.p), nil
				}},
				{"shrinking-on", func() (*svm.Model, error) {
					return svm.Train(set.xs, set.ys, set.k, set.p)
				}},
				{"shrinking-off", func() (*svm.Model, error) {
					p := set.p
					p.DisableShrinking = true
					return svm.Train(set.xs, set.ys, set.k, p)
				}},
				{"warm-started", func() (*svm.Model, error) {
					prior, err := svm.Train(set.xs, set.ys, set.k, set.p)
					if err != nil {
						return nil, err
					}
					p := set.p
					p.WarmStart = prior
					return svm.Train(set.xs, set.ys, set.k, p)
				}},
			}
			for _, cl := range classes {
				m, err := cl.train()
				if err != nil {
					t.Fatalf("%s: train: %v", cl.name, err)
				}
				if !m.Converged {
					t.Fatalf("%s: did not converge (%d iters)", cl.name, m.Iters)
				}
				if err := svmtest.VerifyKKT(m, set.xs, set.ys, set.p, 0); err != nil {
					t.Errorf("%s: %v", cl.name, err)
				}
			}
		})
	}
}

// TestFeasibilityIterationCapped pins the iteration-capped class: a fit cut
// off mid-solve is not optimal, but it must still be dual-feasible — SMO
// updates preserve the box and equality constraints at every step.
func TestFeasibilityIterationCapped(t *testing.T) {
	for _, set := range propSets() {
		p := set.p
		p.MaxIter = 20
		m, err := svm.Train(set.xs, set.ys, set.k, p)
		if err != nil {
			t.Fatalf("%s: train: %v", set.name, err)
		}
		if err := svmtest.VerifyFeasibility(m, p); err != nil {
			t.Errorf("%s capped: %v", set.name, err)
		}
	}
}

// TestVerifyKKTDetectsBrokenModels is the checker's own negative control: a
// model whose optimality was destroyed after training must be rejected.
func TestVerifyKKTDetectsBrokenModels(t *testing.T) {
	set := propSets()[1] // rbf
	m, err := svm.Train(set.xs, set.ys, set.k, set.p)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Coefs) == 0 {
		t.Fatal("no support vectors")
	}

	// Corrupted offset: every residual shifts, violating the tube cases.
	bad, err := svm.Train(set.xs, set.ys, set.k, set.p)
	if err != nil {
		t.Fatal(err)
	}
	bad.B += 1
	if err := svmtest.VerifyKKT(bad, set.xs, set.ys, set.p, 0); err == nil {
		t.Error("offset-corrupted model passed VerifyKKT")
	}

	// Out-of-box coefficient: feasibility must fail.
	bad2, err := svm.Train(set.xs, set.ys, set.k, set.p)
	if err != nil {
		t.Fatal(err)
	}
	bad2.Coefs[0] = 2 * set.p.C
	if err := svmtest.VerifyKKT(bad2, set.xs, set.ys, set.p, 0); err == nil {
		t.Error("out-of-box model passed VerifyKKT")
	}

	// Model trained on different rows: support vectors match nothing.
	other := make([][]float64, len(set.xs))
	for i, x := range set.xs {
		other[i] = []float64{x[0] + 10, x[1] + 10}
	}
	if err := svmtest.VerifyKKT(m, other, set.ys, set.p, 0); err == nil {
		t.Error("model verified against a foreign training set")
	}
}
