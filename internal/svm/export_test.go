package svm

// Test-only exports: the external property-test package (svm_test) applies
// the svmtest KKT checker to every model class this suite trains, including
// the preserved reference solver — which internal test files cannot do
// themselves, because package svm's own tests may not import svmtest
// (svmtest imports svm).

// RefTrainModel runs the preserved pre-overhaul reference solver and wraps
// its output as a public Model, so external tests can verify the reference
// implementation with the same checkers as the production solver.
func RefTrainModel(xs [][]float64, ys []float64, k Kernel, p Params) *Model {
	rm := refTrain(xs, ys, k, p)
	m := &Model{
		SupportVectors: rm.SupportVectors,
		Coefs:          rm.Coefs,
		B:              rm.B,
		kernel:         k,
		Iters:          rm.Iters,
		Converged:      rm.Converged,
	}
	m.finalize()
	return m
}
