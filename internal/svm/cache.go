package svm

import (
	"runtime"
	"sync"
)

// defaultCacheRows is the row-cache capacity when Params.CacheRows is zero.
const defaultCacheRows = 768

// parallelRowMin is the training-set size above which a cache miss shards
// the row computation across a worker pool; below it the spawn overhead
// exceeds the fill cost (a row fill is O(n·dim)).
const parallelRowMin = 2048

// rowEntry is one cached kernel row on the recency list.
type rowEntry struct {
	idx        int
	row        []float64
	prev, next *rowEntry
}

// rowCache is a true LRU cache of kernel-matrix rows: every lookup that
// touches a cached row — full-row fetches and single-element at lookups
// alike — refreshes its recency, and eviction removes the least recently
// used row, reusing its backing slice for the incoming one so steady-state
// misses allocate nothing.
//
// Sizing: capacity is counted in rows. Each cached row holds n float64s, so
// the byte budget is cap × n × 8 — the default 768 rows over the
// paper-scale n ≈ 4.3k training set is ~26 MiB.
type rowCache struct {
	k     Kernel
	rk    rowKernel
	d     *designMatrix
	cap   int
	rows  map[int]*rowEntry
	head  *rowEntry // most recently used
	tail  *rowEntry // least recently used
	diags []float64

	// fillWorkers shards row fills when the rows are long enough to pay
	// for the fan-out.
	fillWorkers int
}

func newRowCache(k Kernel, d *designMatrix, capRows int) *rowCache {
	if capRows <= 0 {
		capRows = defaultCacheRows
	}
	// The solver holds up to two rows at once (update's rowI/rowJ), and
	// eviction reuses the victim's backing slice: a single-row cache would
	// overwrite a row the solver is still reading. Two rows is the floor.
	if capRows < 2 {
		capRows = 2
	}
	rk := rowKernelFor(k)
	diags := make([]float64, d.n)
	for i := range diags {
		x := d.row(i)
		diags[i] = k.Eval(x, x)
	}
	fillWorkers := runtime.GOMAXPROCS(0)
	if _, cheap := rk.(linearRows); cheap {
		// A linear row is ~n·dim flops of streaming memory work — a few
		// microseconds even at paper scale — so per-miss goroutine fan-out
		// costs more than it saves. Only transcendental kernels (exp/pow
		// per entry) amortize the spawn overhead.
		fillWorkers = 1
	}
	return &rowCache{
		k: k, rk: rk, d: d, cap: capRows,
		rows: make(map[int]*rowEntry, capRows), diags: diags,
		fillWorkers: fillWorkers,
	}
}

// diag returns K(x_i, x_i) from the precomputed diagonal.
func (c *rowCache) diag(i int) float64 { return c.diags[i] }

// len reports the number of cached rows.
func (c *rowCache) len() int { return len(c.rows) }

// touch moves e to the front of the recency list.
func (c *rowCache) touch(e *rowEntry) {
	if c.head == e {
		return
	}
	e.prev.next = e.next
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev = nil
	e.next = c.head
	c.head.prev = e
	c.head = e
}

// pushFront inserts a detached entry at the front of the recency list.
func (c *rowCache) pushFront(e *rowEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	} else {
		c.tail = e
	}
	c.head = e
}

// row returns the full kernel row for base index i, computing and caching
// it on demand.
func (c *rowCache) row(i int) []float64 {
	if e, ok := c.rows[i]; ok {
		c.touch(e)
		return e.row
	}
	var e *rowEntry
	if len(c.rows) >= c.cap && c.tail != nil {
		// Evict the least recently used row and reuse its slice.
		e = c.tail
		delete(c.rows, e.idx)
		c.tail = e.prev
		if c.tail != nil {
			c.tail.next = nil
		} else {
			c.head = nil
		}
	} else {
		e = &rowEntry{row: make([]float64, c.d.n)}
	}
	e.idx = i
	c.fill(i, e.row)
	c.rows[i] = e
	c.pushFront(e)
	return e.row
}

// at returns K(x_i, x_j): from a cached row when one is available
// (refreshing its recency — single-element lookups participate in the LRU
// accounting), otherwise computed directly without caching. The solver's
// hot paths index full rows and no longer call at; it remains the cache's
// point-lookup API (exercised by the unit tests).
func (c *rowCache) at(i, j int) float64 {
	if e, ok := c.rows[i]; ok {
		c.touch(e)
		return e.row[j]
	}
	if e, ok := c.rows[j]; ok {
		c.touch(e)
		return e.row[i]
	}
	return c.k.Eval(c.d.row(i), c.d.row(j))
}

// fill computes row i into dst, sharding across the worker pool when the
// row is long enough for the fan-out to pay off.
func (c *rowCache) fill(i int, dst []float64) {
	n := c.d.n
	if c.fillWorkers <= 1 || n < parallelRowMin {
		c.rk.fillRow(c.d, i, 0, n, dst)
		return
	}
	workers := c.fillWorkers
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			c.rk.fillRow(c.d, i, lo, hi, dst)
		}(lo, hi)
	}
	wg.Wait()
}
