// Package svm implements ε-support-vector regression trained with a
// LIBSVM-style SMO solver, supporting the linear and RBF kernels the paper
// selects for its speedup and normalized-energy models (Section 3.4) plus a
// polynomial kernel for ablations. Stdlib only.
package svm

import (
	"fmt"
	"math"
)

// Kernel evaluates a Mercer kernel on two feature vectors.
type Kernel interface {
	// Eval returns K(a, b). Vectors must have equal length.
	Eval(a, b []float64) float64
	// String describes the kernel and its parameters.
	String() string
}

// Linear is the inner-product kernel K(a,b) = a·b, used by the paper for
// speedup modeling (speedup grows linearly with core frequency).
type Linear struct{}

// Eval returns the dot product of a and b.
func (Linear) Eval(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func (Linear) String() string { return "linear" }

// RBF is the Gaussian kernel K(a,b) = exp(-γ‖a−b‖²), used by the paper for
// normalized-energy modeling with γ = 0.1.
type RBF struct {
	Gamma float64
}

// Eval returns exp(-γ‖a−b‖²).
func (k RBF) Eval(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return math.Exp(-k.Gamma * d)
}

func (k RBF) String() string { return fmt.Sprintf("rbf(gamma=%g)", k.Gamma) }

// Poly is the polynomial kernel K(a,b) = (γ a·b + c)^d.
type Poly struct {
	Gamma  float64
	Coef0  float64
	Degree int
}

// Eval returns (γ a·b + c)^d.
func (k Poly) Eval(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return math.Pow(k.Gamma*s+k.Coef0, float64(k.Degree))
}

func (k Poly) String() string {
	return fmt.Sprintf("poly(gamma=%g, coef0=%g, degree=%d)", k.Gamma, k.Coef0, k.Degree)
}
