// Package svm implements ε-support-vector regression trained with a
// LIBSVM-style SMO solver, supporting the linear and RBF kernels the paper
// selects for its speedup and normalized-energy models (Section 3.4) plus a
// polynomial kernel for ablations. Stdlib only.
package svm

import (
	"fmt"
	"math"
)

// Kernel evaluates a Mercer kernel on two feature vectors.
type Kernel interface {
	// Eval returns K(a, b). Vectors must have equal length.
	Eval(a, b []float64) float64
	// String describes the kernel and its parameters.
	String() string
}

// Linear is the inner-product kernel K(a,b) = a·b, used by the paper for
// speedup modeling (speedup grows linearly with core frequency).
type Linear struct{}

// Eval returns the dot product of a and b.
func (Linear) Eval(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// String names the kernel in logs and reports.
func (Linear) String() string { return "linear" }

// RBF is the Gaussian kernel K(a,b) = exp(-γ‖a−b‖²), used by the paper for
// normalized-energy modeling with γ = 0.1.
type RBF struct {
	Gamma float64
}

// Eval returns exp(-γ‖a−b‖²).
func (k RBF) Eval(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return math.Exp(-k.Gamma * d)
}

// String names the kernel and its bandwidth in logs and reports.
func (k RBF) String() string { return fmt.Sprintf("rbf(gamma=%g)", k.Gamma) }

// Poly is the polynomial kernel K(a,b) = (γ a·b + c)^d.
type Poly struct {
	Gamma  float64
	Coef0  float64
	Degree int
}

// Eval returns (γ a·b + c)^d.
func (k Poly) Eval(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return math.Pow(k.Gamma*s+k.Coef0, float64(k.Degree))
}

// String names the kernel and its parameters in logs and reports.
func (k Poly) String() string {
	return fmt.Sprintf("poly(gamma=%g, coef0=%g, degree=%d)", k.Gamma, k.Coef0, k.Degree)
}

// rowKernel computes whole kernel-matrix rows over a flat design matrix.
// The solver's row fills go through these specializations instead of
// per-element Kernel.Eval interface dispatch: each row is one tight loop
// over contiguous memory, bit-identical to the per-element kernel so the
// SMO trajectory is unchanged.
type rowKernel interface {
	// fillRow writes K(x_i, x_j) into dst[j] for every j in [lo, hi).
	fillRow(d *designMatrix, i, lo, hi int, dst []float64)
}

// rowKernelFor returns the specialized row filler for the built-in kernels
// and a generic per-element fallback for anything else.
func rowKernelFor(k Kernel) rowKernel {
	switch k := k.(type) {
	case Linear:
		return linearRows{}
	case RBF:
		return rbfRows{gamma: k.Gamma}
	case Poly:
		return polyRows{k}
	default:
		return genericRows{k}
	}
}

type linearRows struct{}

func (linearRows) fillRow(d *designMatrix, i, lo, hi int, dst []float64) {
	xi := d.row(i)
	for j := lo; j < hi; j++ {
		xj := d.row(j)
		s := 0.0
		for t, v := range xi {
			s += v * xj[t]
		}
		dst[j] = s
	}
}

type rbfRows struct{ gamma float64 }

func (r rbfRows) fillRow(d *designMatrix, i, lo, hi int, dst []float64) {
	// ‖xi−xj‖² is summed in difference form, bit-identical to RBF.Eval,
	// rather than via precomputed norms (‖xi‖² + ‖xj‖² − 2 xi·xj): the
	// norm form perturbs kernel entries by one ulp, which flips SMO
	// working-pair selections and breaks numerical equivalence with
	// per-element evaluation. The exp dominates the entry cost either
	// way; the win here is the contiguous whole-row loop without
	// interface dispatch. Prediction, whose accumulation order is its
	// own, does use the norm form (Model.predictRBF).
	xi := d.row(i)
	for j := lo; j < hi; j++ {
		xj := d.row(j)
		q := 0.0
		for t, v := range xi {
			diff := v - xj[t]
			q += diff * diff
		}
		dst[j] = math.Exp(-r.gamma * q)
	}
}

type polyRows struct{ k Poly }

func (p polyRows) fillRow(d *designMatrix, i, lo, hi int, dst []float64) {
	xi := d.row(i)
	deg := float64(p.k.Degree)
	for j := lo; j < hi; j++ {
		xj := d.row(j)
		s := 0.0
		for t, v := range xi {
			s += v * xj[t]
		}
		dst[j] = math.Pow(p.k.Gamma*s+p.k.Coef0, deg)
	}
}

// genericRows preserves the old per-element path for user-supplied kernels.
type genericRows struct{ k Kernel }

func (g genericRows) fillRow(d *designMatrix, i, lo, hi int, dst []float64) {
	xi := d.row(i)
	for j := lo; j < hi; j++ {
		dst[j] = g.k.Eval(xi, d.row(j))
	}
}
