package svm

import (
	"math"
	"testing"
)

func TestPolyKernelFitsQuadratic(t *testing.T) {
	var xs [][]float64
	var ys []float64
	for i := 0; i <= 20; i++ {
		x := float64(i) / 20
		xs = append(xs, []float64{x})
		ys = append(ys, 2*x*x-x+0.5)
	}
	m, err := Train(xs, ys, Poly{Gamma: 1, Coef0: 1, Degree: 2}, Params{C: 1000, Epsilon: 0.02})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	for i, x := range xs {
		if math.Abs(m.Predict(x)-ys[i]) > 0.05 {
			t.Errorf("Predict(%v) = %.4f, want %.4f", x, m.Predict(x), ys[i])
		}
	}
}

func TestTinyRowCacheStillConverges(t *testing.T) {
	// A 2-row cache forces constant eviction; results must not change.
	var xs [][]float64
	var ys []float64
	r := &det{s: 21}
	for i := 0; i < 80; i++ {
		a, b := r.next(), r.next()
		xs = append(xs, []float64{a, b})
		ys = append(ys, 1+a-2*b)
	}
	big, err := Train(xs, ys, Linear{}, Params{C: 100, Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Train(xs, ys, Linear{}, Params{C: 100, Epsilon: 0.05, CacheRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		if math.Abs(big.Predict(x)-small.Predict(x)) > 1e-9 {
			t.Fatalf("cache size changed the solution at %v: %v vs %v",
				x, big.Predict(x), small.Predict(x))
		}
	}
}

func TestMaxIterCapReported(t *testing.T) {
	var xs [][]float64
	var ys []float64
	r := &det{s: 9}
	for i := 0; i < 60; i++ {
		a := r.next()
		xs = append(xs, []float64{a})
		ys = append(ys, math.Sin(20*a)) // hard for a linear kernel
	}
	m, err := Train(xs, ys, Linear{}, Params{C: 1e6, Epsilon: 1e-6, MaxIter: 25})
	if err != nil {
		t.Fatal(err)
	}
	if m.Converged {
		t.Error("25 iterations should not converge on this problem")
	}
	if m.Iters != 25 {
		t.Errorf("Iters = %d, want 25", m.Iters)
	}
	// Even unconverged models must predict finite values.
	for _, x := range xs {
		if v := m.Predict(x); math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite prediction %v", v)
		}
	}
}

func TestOffsetWithAllBoundSVs(t *testing.T) {
	// Two conflicting targets beyond the tube push both alphas to C; the
	// offset must fall back to the feasible-interval midpoint.
	xs := [][]float64{{0}, {0}}
	ys := []float64{0, 2}
	m, err := Train(xs, ys, Linear{}, Params{C: 1, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	got := m.Predict([]float64{0})
	if math.Abs(got-1) > 0.15 {
		t.Errorf("conflicting targets: Predict = %.3f, want ~1 (midpoint)", got)
	}
}

func TestNumSVAndBatchConsistency(t *testing.T) {
	xs := [][]float64{{0}, {0.5}, {1}, {1.5}}
	ys := []float64{0, 1, 2, 3}
	m, err := Train(xs, ys, Linear{}, Params{C: 10, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSV() != len(m.Coefs) || m.NumSV() != len(m.SupportVectors) {
		t.Errorf("NumSV %d inconsistent with coefs %d / SVs %d",
			m.NumSV(), len(m.Coefs), len(m.SupportVectors))
	}
	out := m.PredictBatch(xs)
	for i := range xs {
		if out[i] != m.Predict(xs[i]) {
			t.Errorf("batch mismatch at %d", i)
		}
	}
}
