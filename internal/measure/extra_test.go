package measure

import (
	"math"
	"testing"

	"repro/internal/gpu"
	"repro/internal/nvml"
)

func TestJitterDisabled(t *testing.T) {
	h := NewHarness(nvml.NewDevice(gpu.TitanX()))
	h.TimingJitter = 0
	p := computeProfile()
	m, err := h.Measure(p, h.Device().Sim().Ladder.Default())
	if err != nil {
		t.Fatal(err)
	}
	// With jitter off, the measured kernel time must equal the model time
	// exactly.
	r, err := h.Device().Sim().Simulate(p, h.Device().Sim().Ladder.Default())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.KernelSec-r.TimeSec) > 1e-15 {
		t.Errorf("KernelSec = %v, model = %v; want exact with jitter off", m.KernelSec, r.TimeSec)
	}
}

func TestMinRepsHonored(t *testing.T) {
	h := NewHarness(nvml.NewDevice(gpu.TitanX()))
	h.MinReps = 17
	h.MinRunSec = 0 // force the rep floor to be the binding constraint
	m, err := h.Measure(computeProfile(), h.Device().Sim().Ladder.Default())
	if err != nil {
		t.Fatal(err)
	}
	if m.Reps != 17 {
		t.Errorf("Reps = %d, want 17", m.Reps)
	}
}

func TestLongKernelFewReps(t *testing.T) {
	// A kernel already longer than MinRunSec runs exactly MinReps times.
	h := NewHarness(nvml.NewDevice(gpu.TitanX()))
	p := computeProfile()
	p.WorkItems = 1 << 28 // very long launch
	m, err := h.Measure(p, h.Device().Sim().Ladder.Default())
	if err != nil {
		t.Fatal(err)
	}
	if m.Reps != h.MinReps {
		t.Errorf("Reps = %d, want MinReps %d", m.Reps, h.MinReps)
	}
}

func TestPowerSampleCap(t *testing.T) {
	// Extremely long total runs cap the sample count instead of looping
	// forever; the mean is converged long before the cap.
	h := NewHarness(nvml.NewDevice(gpu.TitanX()))
	h.MinRunSec = 1e6
	m, err := h.Measure(computeProfile(), h.Device().Sim().Ladder.Default())
	if err != nil {
		t.Fatal(err)
	}
	if m.PowerSamples > 100_000 {
		t.Errorf("PowerSamples = %d, want capped at 100000", m.PowerSamples)
	}
	if m.AvgPowerW <= 0 {
		t.Error("no power measured")
	}
}

func TestInvalidBaselineRejected(t *testing.T) {
	h := NewHarness(nvml.NewDevice(gpu.TitanX()))
	_, err := h.MeasureRelative(computeProfile(), h.Device().Sim().Ladder.Default(), Measurement{})
	if err == nil {
		t.Error("zero baseline should be rejected")
	}
}
