// Package measure implements the paper's measurement procedure (Section
// 4.1) on top of the simulated NVML device: set the application clocks,
// execute the kernel repeatedly until the run is long enough for a
// statistically consistent power value, sample board power at NVML's
// 62.5 Hz, and compute per-kernel energy as average power times execution
// time. Speedup and normalized energy are computed against the default
// frequency configuration.
//
// Simulated wall-clock time advances virtually — a full exhaustive sweep
// that takes 70 minutes on the real board (paper, Section 3.3) completes in
// milliseconds — but the arithmetic (sample counts, averaging, quantization,
// deterministic sensor noise) matches what the real harness would do.
package measure

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/freq"
	"repro/internal/gpu"
	"repro/internal/nvml"
)

// Harness measures kernels on one simulated device.
type Harness struct {
	dev *nvml.Device
	// MinRunSec is the minimum total run duration per configuration; the
	// kernel is repeated until it is reached (paper: "executed multiple
	// times, to make sure that the execution time is long enough").
	MinRunSec float64
	// MinReps is the minimum number of kernel repetitions.
	MinReps int
	// TimingJitter is the relative standard spread of the wall-clock
	// timing noise (deterministic); 0 disables it.
	TimingJitter float64
}

// NewHarness builds a harness with the defaults used throughout the
// reproduction: at least 0.5 simulated seconds and 3 repetitions per
// configuration, 0.4% timing jitter. It disables auto-boost, as the paper
// does for all experiments.
func NewHarness(dev *nvml.Device) *Harness {
	dev.SetAutoBoostedClocksEnabled(false)
	return &Harness{dev: dev, MinRunSec: 0.5, MinReps: 3, TimingJitter: 0.004}
}

// Device returns the underlying NVML device handle.
func (h *Harness) Device() *nvml.Device { return h.dev }

// Clone returns an independent harness over a fresh NVML handle to the same
// simulated device model, preserving the measurement settings. Clones share
// no mutable state, so each can measure concurrently with the original; each
// clone also restarts the device's deterministic sensor-noise stream, making
// per-clone measurement sequences reproducible regardless of what other
// clones do.
func (h *Harness) Clone() *Harness {
	dev := nvml.NewDevice(h.dev.Sim())
	dev.SetAutoBoostedClocksEnabled(false)
	return &Harness{
		dev:          dev,
		MinRunSec:    h.MinRunSec,
		MinReps:      h.MinReps,
		TimingJitter: h.TimingJitter,
	}
}

// Measurement is the outcome of measuring one kernel at one configuration.
type Measurement struct {
	// Config is the configuration actually applied (after clamping).
	Config freq.Config
	// KernelSec is the mean per-launch execution time in seconds.
	KernelSec float64
	// AvgPowerW is the mean sampled board power in watts.
	AvgPowerW float64
	// EnergyJ is the per-launch energy: AvgPowerW * KernelSec.
	EnergyJ float64
	// Reps is how many times the kernel was launched.
	Reps int
	// PowerSamples is how many 62.5 Hz sensor readings were averaged.
	PowerSamples int
}

// Measure runs one kernel profile at the requested configuration.
func (h *Harness) Measure(p gpu.KernelProfile, cfg freq.Config) (Measurement, error) {
	if err := h.dev.DeviceSetApplicationsClocks(cfg.Mem, cfg.Core); err != nil {
		return Measurement{}, err
	}
	applied := h.dev.DeviceGetApplicationsClocks()
	r, err := h.dev.BeginWorkload(p)
	if err != nil {
		return Measurement{}, err
	}
	defer h.dev.EndWorkload()

	reps := h.MinReps
	if reps < 1 {
		reps = 1
	}
	if r.TimeSec > 0 {
		if need := int(math.Ceil(h.MinRunSec / r.TimeSec)); need > reps {
			reps = need
		}
	}
	totalSec := r.TimeSec * float64(reps)
	// Deterministic wall-clock jitter per (kernel, config).
	if h.TimingJitter > 0 {
		totalSec *= 1 + h.TimingJitter*noise(p.Name, applied, 0)
	}

	// Sample power at 62.5 Hz across the whole run.
	n := int(totalSec * nvml.PowerSampleHz)
	if n < 1 {
		n = 1
	}
	if n > 100_000 {
		n = 100_000 // cap: beyond this the mean is fully converged
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(h.dev.DeviceGetPowerUsage()) / 1000
	}
	avgW := sum / float64(n)
	kernelSec := totalSec / float64(reps)

	return Measurement{
		Config:       applied,
		KernelSec:    kernelSec,
		AvgPowerW:    avgW,
		EnergyJ:      avgW * kernelSec,
		Reps:         reps,
		PowerSamples: n,
	}, nil
}

// Relative is a measurement normalized against the default configuration:
// Speedup = T_default/T (higher is better), NormEnergy = E/E_default (lower
// is better) — the paper's two objectives.
type Relative struct {
	Config     freq.Config
	Speedup    float64
	NormEnergy float64
	Raw        Measurement
}

// Baseline measures the kernel at the device's default configuration.
func (h *Harness) Baseline(p gpu.KernelProfile) (Measurement, error) {
	return h.Measure(p, h.dev.Sim().Ladder.Default())
}

// MeasureRelative measures one configuration and normalizes against the
// provided baseline measurement.
func (h *Harness) MeasureRelative(p gpu.KernelProfile, cfg freq.Config, base Measurement) (Relative, error) {
	m, err := h.Measure(p, cfg)
	if err != nil {
		return Relative{}, err
	}
	if base.KernelSec <= 0 || base.EnergyJ <= 0 {
		return Relative{}, fmt.Errorf("measure: invalid baseline %+v", base)
	}
	return Relative{
		Config:     m.Config,
		Speedup:    base.KernelSec / m.KernelSec,
		NormEnergy: m.EnergyJ / base.EnergyJ,
		Raw:        m,
	}, nil
}

// Characterize measures the kernel at every given configuration, all
// normalized against a freshly measured default baseline. Configurations
// that clamp to the same applied clocks are measured once and reported once
// (under the applied configuration).
func (h *Harness) Characterize(p gpu.KernelProfile, cfgs []freq.Config) ([]Relative, error) {
	base, err := h.Baseline(p)
	if err != nil {
		return nil, err
	}
	seen := make(map[freq.Config]bool, len(cfgs))
	out := make([]Relative, 0, len(cfgs))
	for _, cfg := range cfgs {
		applied := h.dev.Sim().Ladder.Clamp(cfg)
		if seen[applied] {
			continue
		}
		seen[applied] = true
		rel, err := h.MeasureRelative(p, applied, base)
		if err != nil {
			return nil, err
		}
		out = append(out, rel)
	}
	return out, nil
}

// Sweep characterizes the kernel over every actually-supported
// configuration of the device.
func (h *Harness) Sweep(p gpu.KernelProfile) ([]Relative, error) {
	return h.Characterize(p, h.dev.Sim().Ladder.Configs())
}

// noise derives a deterministic pseudo-random value in [-1, 1) from a
// kernel name, configuration and index.
func noise(name string, cfg freq.Config, idx uint64) float64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	var b [24]byte
	put64(b[0:], uint64(cfg.Mem))
	put64(b[8:], uint64(cfg.Core))
	put64(b[16:], idx)
	h.Write(b[:])
	u := h.Sum64()
	return float64(u%(1<<20))/float64(1<<19) - 1
}

func put64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
