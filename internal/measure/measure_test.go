package measure

import (
	"math"
	"testing"

	"repro/internal/clkernel"
	"repro/internal/freq"
	"repro/internal/gpu"
	"repro/internal/nvml"
)

func newHarness() *Harness {
	return NewHarness(nvml.NewDevice(gpu.TitanX()))
}

func computeProfile() gpu.KernelProfile {
	var c clkernel.Counts
	c.Ops[clkernel.OpFloatAdd] = 2000
	c.Ops[clkernel.OpFloatMul] = 2000
	c.Ops[clkernel.OpGlobalAccess] = 2
	c.GlobalBytes = 8
	return gpu.KernelProfile{Name: "compute", Counts: c, WorkItems: 1 << 20}
}

func memoryProfile() gpu.KernelProfile {
	var c clkernel.Counts
	c.Ops[clkernel.OpGlobalAccess] = 64
	c.Ops[clkernel.OpIntAdd] = 8
	c.GlobalBytes = 256
	return gpu.KernelProfile{Name: "memory", Counts: c, WorkItems: 1 << 20}
}

func TestMeasureBasics(t *testing.T) {
	h := newHarness()
	m, err := h.Measure(computeProfile(), freq.Config{Mem: 3505, Core: 1001})
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if m.KernelSec <= 0 || m.AvgPowerW <= 0 || m.EnergyJ <= 0 {
		t.Errorf("non-positive measurement: %+v", m)
	}
	if m.Reps < h.MinReps {
		t.Errorf("Reps = %d, want >= %d", m.Reps, h.MinReps)
	}
	if float64(m.Reps)*m.KernelSec < h.MinRunSec*0.9 {
		t.Errorf("total run %.3f s below MinRunSec %.3f", float64(m.Reps)*m.KernelSec, h.MinRunSec)
	}
	if m.PowerSamples < 10 {
		t.Errorf("PowerSamples = %d, want a meaningful sample count", m.PowerSamples)
	}
	if math.Abs(m.EnergyJ-m.AvgPowerW*m.KernelSec) > 1e-9 {
		t.Error("EnergyJ != AvgPowerW * KernelSec")
	}
}

func TestMeasureDisablesAutoBoost(t *testing.T) {
	d := nvml.NewDevice(gpu.TitanX())
	NewHarness(d)
	if d.AutoBoostedClocksEnabled() {
		t.Error("harness did not disable auto-boost (paper disables dynamic scaling)")
	}
}

func TestMeasureDeterministic(t *testing.T) {
	run := func() Measurement {
		h := newHarness()
		m, err := h.Measure(computeProfile(), freq.Config{Mem: 3505, Core: 885})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("identical measurement runs differ:\n%+v\n%+v", a, b)
	}
}

func TestSpeedupAtDefaultIsOne(t *testing.T) {
	h := newHarness()
	p := computeProfile()
	base, err := h.Baseline(p)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := h.MeasureRelative(p, h.Device().Sim().Ladder.Default(), base)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rel.Speedup-1) > 0.02 {
		t.Errorf("speedup at default = %.4f, want ~1", rel.Speedup)
	}
	if math.Abs(rel.NormEnergy-1) > 0.03 {
		t.Errorf("normalized energy at default = %.4f, want ~1", rel.NormEnergy)
	}
}

func TestMeasureClampedConfig(t *testing.T) {
	h := newHarness()
	m, err := h.Measure(computeProfile(), freq.Config{Mem: 3505, Core: 1392})
	if err != nil {
		t.Fatalf("Measure claimed config: %v", err)
	}
	if m.Config.Core != 1202 {
		t.Errorf("applied core = %d, want clamped 1202", m.Config.Core)
	}
}

func TestMeasureUnsupported(t *testing.T) {
	h := newHarness()
	if _, err := h.Measure(computeProfile(), freq.Config{Mem: 999, Core: 135}); err == nil {
		t.Error("expected error for unsupported memory clock")
	}
}

func TestCharacterizeSweep(t *testing.T) {
	h := newHarness()
	p := computeProfile()
	rels, err := h.Sweep(p)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	ladder := h.Device().Sim().Ladder
	if len(rels) != ladder.NumConfigs() {
		t.Fatalf("sweep produced %d points, want %d", len(rels), ladder.NumConfigs())
	}
	// The sweep of a compute-bound kernel must show the paper's shape:
	// highest speedup at the highest core clock, speedup < 1 at low ones.
	var maxS, minS float64 = 0, math.Inf(1)
	var maxAt freq.Config
	for _, r := range rels {
		if r.Speedup > maxS {
			maxS, maxAt = r.Speedup, r.Config
		}
		minS = math.Min(minS, r.Speedup)
	}
	if maxAt.Core != 1202 {
		t.Errorf("max speedup at %v, want core 1202", maxAt)
	}
	if maxS < 1.1 || maxS > 1.3 {
		t.Errorf("max speedup = %.3f, want ~1.2 (1202/1001)", maxS)
	}
	if minS > 0.2 {
		t.Errorf("min speedup = %.3f, want far below 1 at 135 MHz", minS)
	}
}

func TestCharacterizeDedupesClamped(t *testing.T) {
	h := newHarness()
	cfgs := []freq.Config{
		{Mem: 3505, Core: 1202},
		{Mem: 3505, Core: 1392}, // clamps to the same applied config
	}
	rels, err := h.Characterize(computeProfile(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 1 {
		t.Errorf("got %d measurements, want 1 after dedup", len(rels))
	}
}

func TestMemoryBoundShape(t *testing.T) {
	h := newHarness()
	p := memoryProfile()
	base, err := h.Baseline(p)
	if err != nil {
		t.Fatal(err)
	}
	// Core scaling barely helps a memory-bound kernel...
	ladder := h.Device().Sim().Ladder
	lo, err := h.MeasureRelative(p, freq.Config{Mem: 3505, Core: ladder.NearestCore(3505, 721)}, base)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Speedup < 0.9 {
		t.Errorf("memory-bound speedup at 721 MHz core = %.3f, want ~1", lo.Speedup)
	}
	// ...but dropping the memory clock hurts.
	cores := h.Device().Sim().Ladder.CoreClocks(freq.Meml)
	ml, err := h.MeasureRelative(p, freq.Config{Mem: freq.Meml, Core: cores[len(cores)-1]}, base)
	if err != nil {
		t.Fatal(err)
	}
	if ml.Speedup > 0.6 {
		t.Errorf("memory-bound speedup at mem-l = %.3f, want well below 1", ml.Speedup)
	}
}

func TestBaselineConsistency(t *testing.T) {
	// Energy = power x time must survive the relative normalization:
	// NormEnergy/Speedup ratio equals (P_cfg/P_def) exactly.
	h := newHarness()
	p := computeProfile()
	base, err := h.Baseline(p)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := h.MeasureRelative(p, freq.Config{Mem: 3304, Core: 885}, base)
	if err != nil {
		t.Fatal(err)
	}
	lhs := rel.NormEnergy * rel.Speedup
	rhs := rel.Raw.AvgPowerW / base.AvgPowerW
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Errorf("identity violated: normEnergy*speedup = %v, powerRatio = %v", lhs, rhs)
	}
}
