package engine

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/clkernel"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/gpu"
)

// testEngine returns an engine over a reduced training setup that fits in
// test time: a slice of the synthetic suite at few sampled settings.
func testEngine(t *testing.T, workers int) (*Engine, []core.TrainingKernel) {
	t.Helper()
	e := NewDefault(Options{
		Workers: workers,
		Core:    core.Options{SettingsPerKernel: 6},
	})
	kernels := TrainingKernels()[:24]
	return e, kernels
}

func TestBuildTrainingSetDeterministicAcrossWorkerCounts(t *testing.T) {
	e1, kernels := testEngine(t, 1)
	e8, _ := testEngine(t, 8)
	ctx := context.Background()

	s1, err := e1.BuildTrainingSet(ctx, kernels)
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	s8, err := e8.BuildTrainingSet(ctx, kernels)
	if err != nil {
		t.Fatalf("workers=8: %v", err)
	}
	if !reflect.DeepEqual(s1, s8) {
		t.Fatal("training set differs between worker counts")
	}
	settings := core.TrainingSettings(e1.Harness(), e1.Options().Core)
	if len(s1) != len(kernels)*len(settings) {
		t.Fatalf("got %d samples, want %d", len(s1), len(kernels)*len(settings))
	}
}

func TestTrainAndPredictViaEngine(t *testing.T) {
	e, kernels := testEngine(t, 0)
	if e.Trained() {
		t.Fatal("engine claims to be trained before Train")
	}
	if _, err := e.Predictor(); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("Predictor before training: err = %v, want ErrNotTrained", err)
	}
	models, err := e.Train(context.Background(), kernels)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if models.Speedup.NumSV() == 0 || models.Energy.NumSV() == 0 {
		t.Fatal("trained models have no support vectors")
	}
	p, err := e.Predictor()
	if err != nil {
		t.Fatalf("Predictor: %v", err)
	}

	// The cached facade must agree with the uncached core predictor.
	st := bench.AllFeatures()[0]
	want := core.NewPredictor(models, e.Harness().Device().Sim().Ladder).ParetoSet(st)
	got := p.ParetoSet(st)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("engine ParetoSet disagrees with core:\n got %v\nwant %v", got, want)
	}
	if last := got[len(got)-1]; !last.MemLHeuristic {
		t.Fatalf("last prediction %+v is not the mem-L heuristic", last)
	}
}

func TestCacheAccounting(t *testing.T) {
	e, kernels := testEngine(t, 4)
	if _, err := e.Train(context.Background(), kernels); err != nil {
		t.Fatalf("Train: %v", err)
	}
	p, err := e.Predictor()
	if err != nil {
		t.Fatal(err)
	}
	st := bench.AllFeatures()[1]

	p.ParetoSet(st)
	s1 := p.Stats()
	if s1.Hits != 0 {
		// The mem-L heuristic vector is fresh too, so the first sweep is
		// all misses.
		t.Fatalf("first sweep: %d hits, want 0", s1.Hits)
	}
	if s1.Misses == 0 || s1.Entries == 0 {
		t.Fatalf("first sweep recorded no misses/entries: %+v", s1)
	}

	p.ParetoSet(st)
	s2 := p.Stats()
	if s2.Misses != s1.Misses {
		t.Fatalf("repeat sweep added misses: %d -> %d", s1.Misses, s2.Misses)
	}
	if s2.Hits != s1.Misses {
		t.Fatalf("repeat sweep hits = %d, want %d (every vector cached)", s2.Hits, s1.Misses)
	}

	// A disabled cache must record misses only and hold no entries.
	un := NewPredictor(e.Models(), p.Ladder(), Options{Workers: 2, CacheSize: -1})
	un.ParetoSet(st)
	un.ParetoSet(st)
	su := un.Stats()
	if su.Hits != 0 || su.Entries != 0 || su.Capacity != 0 {
		t.Fatalf("disabled cache stats: %+v", su)
	}
}

func TestCacheEviction(t *testing.T) {
	c := newPredCache(2)
	k := func(i float64) features.Vector { var v features.Vector; v[0] = i; return v }
	c.put(k(1), cacheVal{speedup: 1})
	c.put(k(2), cacheVal{speedup: 2})
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("key 1 missing before eviction")
	}
	// Key 2 is now LRU; inserting key 3 must evict it.
	c.put(k(3), cacheVal{speedup: 3})
	if _, ok := c.get(k(2)); ok {
		t.Fatal("key 2 survived eviction")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("key 1 evicted despite recent use")
	}
	if c.len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.len())
	}
}

// TestConcurrentPredictBatch exercises many goroutines sharing one cached
// Predictor; run under -race it is the engine's concurrent-safety proof.
func TestConcurrentPredictBatch(t *testing.T) {
	e, kernels := testEngine(t, 4)
	if _, err := e.Train(context.Background(), kernels); err != nil {
		t.Fatalf("Train: %v", err)
	}
	p, err := e.Predictor()
	if err != nil {
		t.Fatal(err)
	}
	sts := bench.AllFeatures()
	want, err := p.PredictBatch(context.Background(), sts)
	if err != nil {
		t.Fatal(err)
	}

	const callers = 8
	var wg sync.WaitGroup
	results := make([][][]core.Prediction, callers)
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c], errs[c] = p.PredictBatch(context.Background(), sts)
		}(c)
	}
	wg.Wait()
	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatalf("caller %d: %v", c, errs[c])
		}
		if !reflect.DeepEqual(results[c], want) {
			t.Fatalf("caller %d diverged from reference batch", c)
		}
	}
	if s := p.Stats(); s.Hits == 0 {
		t.Fatalf("concurrent repeat batches recorded no cache hits: %+v", s)
	}
}

func TestBuildTrainingSetCancellation(t *testing.T) {
	e, _ := testEngine(t, 2)
	kernels := TrainingKernels() // full suite: plenty of in-flight work
	ctx, cancel := context.WithCancel(context.Background())

	type result struct {
		samples []core.Sample
		err     error
	}
	done := make(chan result, 1)
	go func() {
		s, err := e.BuildTrainingSet(ctx, kernels)
		done <- result{s, err}
	}()
	cancel()

	select {
	case r := <-done:
		if !errors.Is(r.err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", r.err)
		}
		if r.samples != nil {
			t.Fatal("cancelled run returned samples")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled training run did not return")
	}
	if e.Trained() {
		t.Fatal("cancelled run installed models")
	}
}

// TestBuildTrainingSetWorkerError injects a kernel whose measurement fails
// (a corrupt profile yields an invalid baseline) and checks the pool
// surfaces the error instead of deadlocking the feeder — for every worker
// count, including fewer workers than remaining jobs.
func TestBuildTrainingSetWorkerError(t *testing.T) {
	bad := core.TrainingKernel{
		Name: "bad",
		Profile: gpu.KernelProfile{
			Name:      "bad",
			Counts:    clkernel.Counts{GlobalBytes: -1e6},
			WorkItems: 1 << 20,
		},
	}
	for _, workers := range []int{1, 2, 8} {
		e := NewDefault(Options{Workers: workers, Core: core.Options{SettingsPerKernel: 6}})
		kernels := append([]core.TrainingKernel{bad}, TrainingKernels()[:16]...)

		done := make(chan error, 1)
		go func() {
			_, err := e.BuildTrainingSet(context.Background(), kernels)
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Fatalf("workers=%d: no error for failing kernel", workers)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("workers=%d: pool deadlocked on worker error", workers)
		}
	}
}

func TestTrainCancellationBeforeFit(t *testing.T) {
	e, kernels := testEngine(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Train(ctx, kernels); !errors.Is(err, context.Canceled) {
		t.Fatalf("Train on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestPredictBatchCancellation(t *testing.T) {
	e, kernels := testEngine(t, 2)
	if _, err := e.Train(context.Background(), kernels); err != nil {
		t.Fatal(err)
	}
	p, err := e.Predictor()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.PredictBatch(ctx, bench.AllFeatures()); !errors.Is(err, context.Canceled) {
		t.Fatalf("PredictBatch on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestPredictSourceMatchesCore(t *testing.T) {
	e, kernels := testEngine(t, 4)
	models, err := e.Train(context.Background(), kernels)
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.Predictor()
	if err != nil {
		t.Fatal(err)
	}
	const src = `__kernel void axpy(__global const float* x, __global float* y, float a, int n) {
		int i = get_global_id(0);
		if (i < n) y[i] = a * x[i] + y[i];
	}`
	got, err := p.PredictSource(src, "axpy")
	if err != nil {
		t.Fatalf("PredictSource: %v", err)
	}
	cp := core.NewPredictor(models, p.Ladder())
	want, err := cp.PredictSource(src, "axpy")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("engine PredictSource disagrees with core path")
	}
}
