package engine

import (
	"math"
	"slices"
	"sync"

	"repro/internal/core"
	"repro/internal/features"
)

// BatchScratch is the reusable working memory of the columnar batch
// prediction path: the flat feature matrix, the per-model output columns,
// and the per-kernel prediction segments fronts are derived in. A scratch
// grows to the largest batch it has served and is then allocation-free for
// every batch that fits; the serving layer recycles scratches through
// GetBatchScratch/PutBatchScratch so the steady-state batch path allocates
// nothing (pinned by the engine's AllocsPerRun test). A BatchScratch must
// not be used concurrently.
type BatchScratch struct {
	rows    []float64   // flat row-major feature matrix, one row per (kernel, config)
	xs      [][]float64 // row views into rows, passed to svm.PredictBatchInto
	speedup []float64   // speedup-model output column
	energy  []float64   // energy-model output column
	preds   []core.Prediction
	fronts  [][]core.Prediction
}

// batchPool recycles scratches across requests. Pool entries the GC drops
// under memory pressure are simply rebuilt on the next Get.
var batchPool = sync.Pool{New: func() any { return new(BatchScratch) }}

// GetBatchScratch returns a scratch from the shared pool (allocating a
// fresh empty one only when the pool is dry). Return it with
// PutBatchScratch when the results derived from it are no longer
// referenced.
func GetBatchScratch() *BatchScratch { return batchPool.Get().(*BatchScratch) }

// PutBatchScratch returns a scratch to the shared pool. The slices handed
// out by PredictFrontsInto alias the scratch's memory and must not be read
// after it is returned.
func PutBatchScratch(s *BatchScratch) { batchPool.Put(s) }

// ensure sizes the scratch for nKernels kernels of stride rows each,
// reusing existing capacity. The row views are rebuilt every call (cheap:
// slice-header writes into already-allocated backing).
func (s *BatchScratch) ensure(nKernels, stride int) {
	n := nKernels * stride
	dim := features.Dim
	if cap(s.rows) < n*dim {
		s.rows = make([]float64, n*dim)
	}
	s.rows = s.rows[:n*dim]
	if cap(s.xs) < n {
		s.xs = make([][]float64, n)
	}
	s.xs = s.xs[:n]
	for i := range s.xs {
		s.xs[i] = s.rows[i*dim : (i+1)*dim : (i+1)*dim]
	}
	if cap(s.speedup) < n {
		s.speedup = make([]float64, n)
		s.energy = make([]float64, n)
	}
	s.speedup = s.speedup[:n]
	s.energy = s.energy[:n]
	if cap(s.preds) < n {
		s.preds = make([]core.Prediction, n)
	}
	s.preds = s.preds[:n]
	if cap(s.fronts) < nKernels {
		s.fronts = make([][]core.Prediction, nKernels)
	}
	s.fronts = s.fronts[:nKernels]
}

// PredictFrontsInto predicts the Pareto set of every kernel in the batch
// through the columnar fast path: one flat feature matrix over the modeled
// ladder (plus the mem-L heuristic row per kernel), one PredictBatchInto
// call per model across the whole batch, and in-place per-kernel front
// derivation. The result is index-aligned with sts and semantically
// identical to calling ParetoSet per kernel (pinned by the engine tests).
//
// Unlike ParetoSet, this path bypasses the prediction LRU — a batch
// recomputes its rows unconditionally — and every returned slice aliases
// the scratch: results are valid only until the scratch is reused or
// returned to the pool. Batches whose row count stays under the svm
// parallel threshold (256) allocate nothing once the scratch has grown;
// larger batches shard the model evaluation across GOMAXPROCS goroutines,
// whose spawns are the only allocations.
func (p *Predictor) PredictFrontsInto(s *BatchScratch, sts []features.Static) [][]core.Prediction {
	nCfg := len(p.cfgs)
	stride := nCfg
	if p.hasMemL {
		stride++
	}
	s.ensure(len(sts), stride)

	// Stage 1: materialize the feature matrix, kernels × stride rows.
	dim := features.Dim
	off := 0
	for i := range sts {
		for _, cfg := range p.cfgs {
			v := features.Combine(sts[i], cfg)
			copy(s.rows[off:off+dim], v[:])
			off += dim
		}
		if p.hasMemL {
			v := features.Combine(sts[i], p.memLCfg)
			copy(s.rows[off:off+dim], v[:])
			off += dim
		}
	}

	// Stage 2: one columnar sweep per model over the whole batch.
	p.inner.Models.Speedup.PredictBatchInto(s.speedup, s.xs)
	p.inner.Models.Energy.PredictBatchInto(s.energy, s.xs)

	// Stage 3: assemble predictions and derive each kernel's front in place.
	for i := range sts {
		base := i * stride
		seg := s.preds[base : base+stride]
		for j, cfg := range p.cfgs {
			seg[j] = core.Prediction{Config: cfg, Speedup: s.speedup[base+j], NormEnergy: s.energy[base+j]}
		}
		m := frontInPlace(seg[:nCfg])
		if p.hasMemL {
			// The heuristic row rides after the modeled grid; move it to
			// just past the compacted front, matching paretoOf's contract.
			seg[m] = core.Prediction{
				Config:        p.memLCfg,
				Speedup:       s.speedup[base+nCfg],
				NormEnergy:    s.energy[base+nCfg],
				MemLHeuristic: true,
			}
			m++
		}
		s.fronts[i] = seg[:m:stride]
	}
	return s.fronts
}

// frontInPlace compacts preds to its Pareto set (speedup maximized, energy
// minimized) and returns the front length. It reproduces pareto.Fast's
// semantics without allocating: sort descending by speedup (ascending
// energy tie-break), keep each equal-speedup group's minimal-energy members
// when they improve the running energy minimum (exact ties in both
// objectives are all front members, per the paper's non-strict dominance),
// then reverse into the ascending-speedup output order.
func frontInPlace(preds []core.Prediction) int {
	slices.SortFunc(preds, func(a, b core.Prediction) int {
		switch {
		case a.Speedup > b.Speedup:
			return -1
		case a.Speedup < b.Speedup:
			return 1
		case a.NormEnergy < b.NormEnergy:
			return -1
		case a.NormEnergy > b.NormEnergy:
			return 1
		}
		return 0
	})
	bestE := math.Inf(1)
	m := 0
	i := 0
	for i < len(preds) {
		j := i
		for j < len(preds) && preds[j].Speedup == preds[i].Speedup {
			j++
		}
		if preds[i].NormEnergy < bestE {
			bestE = preds[i].NormEnergy
			for k := i; k < j && preds[k].NormEnergy == bestE; k++ {
				preds[m] = preds[k]
				m++
			}
		}
		i = j
	}
	for a, b := 0, m-1; a < b; a, b = a+1, b-1 {
		preds[a], preds[b] = preds[b], preds[a]
	}
	return m
}
