// Package engine is the concurrent orchestration layer between the user
// entry points (cmd/gpufreq, cmd/gpufreqd, the examples) and the
// model/measurement internals (internal/core, internal/svm,
// internal/measure). It owns the two things the batch pipeline in
// internal/core deliberately keeps sequential:
//
//   - Training: the per-benchmark sampling unit (core.SampleKernel) is
//     sharded across a worker pool, each worker measuring on an independent
//     harness clone, and the two ε-SVR fits — which share inputs but no
//     state — run concurrently. Construction is context-aware, so an
//     in-flight training run can be cancelled.
//   - Prediction: a Predictor facade with batch prediction over many
//     kernels, parallel evaluation of the frequency ladder, and an LRU
//     cache keyed on the combined (static-features, configuration) model
//     input vector so repeated kernels skip the SVR sweep entirely.
//
// Sharding is per training kernel on a fresh harness clone, which makes the
// assembled training set deterministic and independent of the worker count
// (each kernel always sees its own sensor-noise stream from the start).
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/measure"
	"repro/internal/nvml"
	"repro/internal/svm"
	"repro/internal/synth"
)

// ErrNotTrained is returned by Predictor accessors before any models have
// been trained or installed.
var ErrNotTrained = errors.New("engine: no trained models (run Train or SetModels first)")

// Options configures the engine. Zero values select sensible defaults.
type Options struct {
	// Workers sizes the worker pool for training-set construction, ladder
	// sweeps, and batch prediction. <= 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// Core carries the training options through to the model layer
	// (settings per kernel, SVR kernels, hyper-parameters).
	Core core.Options
	// CacheSize bounds the prediction cache in entries. 0 selects the
	// default (8192); negative disables caching.
	CacheSize int
}

const defaultCacheSize = 8192

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.CacheSize == 0 {
		o.CacheSize = defaultCacheSize
	}
	return o
}

// Engine couples a measurement harness with (lazily trained) models and a
// cached predictor. All methods are safe for concurrent use.
type Engine struct {
	harness *measure.Harness
	opts    Options

	mu     sync.RWMutex
	models *core.Models
	pred   *Predictor
}

// New builds an engine over an existing harness.
func New(h *measure.Harness, opts Options) *Engine {
	return &Engine{harness: h, opts: opts.withDefaults()}
}

// NewDefault builds an engine over a fresh simulated Titan X, the paper's
// primary evaluation device.
func NewDefault(opts Options) *Engine {
	return New(measure.NewHarness(nvml.NewDevice(gpu.TitanX())), opts)
}

// Harness exposes the measurement harness (for characterization sweeps).
func (e *Engine) Harness() *measure.Harness { return e.harness }

// Options returns the engine's resolved options.
func (e *Engine) Options() Options { return e.opts }

// TrainingKernels adapts the paper's 106 synthetic micro-benchmarks into
// training kernels.
func TrainingKernels() []core.TrainingKernel {
	bs := synth.Generate()
	out := make([]core.TrainingKernel, len(bs))
	for i := range bs {
		out[i] = core.TrainingKernel{
			Name:     bs[i].Name,
			Features: bs[i].Features(),
			Profile:  bs[i].Profile(),
		}
	}
	return out
}

// BuildTrainingSet assembles the supervised training set by sharding the
// per-kernel sampling unit across the worker pool. Each kernel is measured
// on a fresh harness clone, so the result is byte-identical for any worker
// count. The context cancels the run between kernel measurements.
func (e *Engine) BuildTrainingSet(ctx context.Context, kernels []core.TrainingKernel) ([]core.Sample, error) {
	settings := core.TrainingSettings(e.harness, e.opts.Core)
	perKernel := make([][]core.Sample, len(kernels))

	workers := e.opts.Workers
	if workers > len(kernels) {
		workers = len(kernels)
	}
	if workers < 1 {
		workers = 1
	}

	// stop cancels the run on the first worker error, so the feeder never
	// blocks sending to a pool whose workers have all exited.
	stopCtx, stop := context.WithCancel(ctx)
	defer stop()

	jobs := make(chan int)
	errc := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if stopCtx.Err() != nil {
					return
				}
				samples, err := core.SampleKernel(e.harness.Clone(), kernels[i], settings)
				if err != nil {
					errc <- err // buffered: one slot per worker
					stop()
					return
				}
				perKernel[i] = samples
			}
		}()
	}

feed:
	for i := range kernels {
		select {
		case jobs <- i:
		case <-stopCtx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	select {
	case err := <-errc:
		return nil, fmt.Errorf("engine: building training set: %w", err)
	default:
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("engine: building training set: %w", err)
	}

	var out []core.Sample
	for _, ks := range perKernel {
		out = append(out, ks...)
	}
	return out, nil
}

// Fit trains the speedup and normalized-energy SVRs concurrently — the two
// fits share the design matrix but no solver state, so they are
// embarrassingly parallel. The context is honored at entry and its error
// reported after the fits complete (SMO itself is not interruptible).
func (e *Engine) Fit(ctx context.Context, samples []core.Sample) (*core.Models, error) {
	if len(samples) == 0 {
		return nil, errors.New("engine: empty training set")
	}
	return e.FitMatrix(ctx, core.NewTrainingMatrix(samples), nil)
}

// FitMatrix is Fit over a prebuilt training matrix, with an optional warm
// start: when prior is non-nil each fit is seeded from the corresponding
// prior model (svm.Params.WarmStart), which on the adaptation workload —
// unchanged corpus rows plus a few folded-in observations — converges orders
// of magnitude faster than a cold fit. The two fits still run concurrently;
// each goroutine gets its own Params copy, so the shared options are never
// mutated.
func (e *Engine) FitMatrix(ctx context.Context, m *core.TrainingMatrix, prior *core.Models) (*core.Models, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opt := e.opts.Core.WithDefaults()
	if m.Len() == 0 {
		return nil, errors.New("engine: empty training set")
	}
	ps, pe := opt.Params, opt.Params
	if prior != nil {
		ps.WarmStart = prior.Speedup
		pe.WarmStart = prior.Energy
	}

	var (
		wg         sync.WaitGroup
		sm, em     *svm.Model
		sErr, eErr error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		sm, sErr = svm.Train(m.Rows, m.Speedup, opt.SpeedupKernel, ps)
	}()
	go func() {
		defer wg.Done()
		em, eErr = svm.Train(m.Rows, m.Energy, opt.EnergyKernel, pe)
	}()
	wg.Wait()

	if sErr != nil {
		return nil, fmt.Errorf("engine: training speedup model: %w", sErr)
	}
	if eErr != nil {
		return nil, fmt.Errorf("engine: training energy model: %w", eErr)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &core.Models{Speedup: sm, Energy: em}, nil
}

// Train builds the training set and fits both models, installing the result
// as the engine's active models. It returns the models for inspection.
func (e *Engine) Train(ctx context.Context, kernels []core.TrainingKernel) (*core.Models, error) {
	samples, err := e.BuildTrainingSet(ctx, kernels)
	if err != nil {
		return nil, err
	}
	models, err := e.Fit(ctx, samples)
	if err != nil {
		return nil, err
	}
	e.SetModels(models)
	return models, nil
}

// TrainDefault trains on the paper's full synthetic micro-benchmark suite.
func (e *Engine) TrainDefault(ctx context.Context) (*core.Models, error) {
	return e.Train(ctx, TrainingKernels())
}

// SetModels installs externally obtained models (e.g. loaded from disk) as
// the active models and rebuilds the predictor.
func (e *Engine) SetModels(m *core.Models) {
	ladder := e.harness.Device().Sim().Ladder
	pred := NewPredictor(m, ladder, e.opts)
	e.mu.Lock()
	e.models = m
	e.pred = pred
	e.mu.Unlock()
}

// Models returns the active models, or nil before training.
func (e *Engine) Models() *core.Models {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.models
}

// Trained reports whether models are installed.
func (e *Engine) Trained() bool { return e.Models() != nil }

// Predictor returns the cached concurrent predictor over the active models.
func (e *Engine) Predictor() (*Predictor, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.pred == nil {
		return nil, ErrNotTrained
	}
	return e.pred, nil
}
