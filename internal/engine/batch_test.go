package engine

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/features"
)

// sortPreds normalizes a prediction set into a canonical order so fronts
// derived by different algorithms compare equal regardless of how they
// break exact objective ties.
func sortPreds(ps []core.Prediction) []core.Prediction {
	out := append([]core.Prediction(nil), ps...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Speedup != b.Speedup {
			return a.Speedup < b.Speedup
		}
		if a.NormEnergy != b.NormEnergy {
			return a.NormEnergy < b.NormEnergy
		}
		if a.Config.Mem != b.Config.Mem {
			return a.Config.Mem < b.Config.Mem
		}
		return a.Config.Core < b.Config.Core
	})
	return out
}

func TestPredictFrontsIntoMatchesParetoSet(t *testing.T) {
	e, kernels := testEngine(t, 4)
	if _, err := e.Train(context.Background(), kernels); err != nil {
		t.Fatalf("Train: %v", err)
	}
	p, err := e.Predictor()
	if err != nil {
		t.Fatalf("Predictor: %v", err)
	}

	sts := bench.AllFeatures()
	scratch := GetBatchScratch()
	defer PutBatchScratch(scratch)
	fronts := p.PredictFrontsInto(scratch, sts)
	if len(fronts) != len(sts) {
		t.Fatalf("got %d fronts for %d kernels", len(fronts), len(sts))
	}
	for i, st := range sts {
		want := p.ParetoSet(st)
		if !reflect.DeepEqual(sortPreds(fronts[i]), sortPreds(want)) {
			t.Errorf("kernel %d: batch front disagrees with ParetoSet:\n got %v\nwant %v", i, fronts[i], want)
		}
		if last := fronts[i][len(fronts[i])-1]; !last.MemLHeuristic {
			t.Errorf("kernel %d: last prediction %+v is not the mem-L heuristic", i, last)
		}
	}

	// Reusing the scratch for a different batch must not corrupt results.
	again := p.PredictFrontsInto(scratch, sts[:4])
	for i := range again {
		want := p.ParetoSet(sts[i])
		if !reflect.DeepEqual(sortPreds(again[i]), sortPreds(want)) {
			t.Errorf("reuse kernel %d: batch front disagrees with ParetoSet", i)
		}
	}
}

func TestFrontInPlaceMatchesParetoFront(t *testing.T) {
	cases := [][]core.Prediction{
		{},
		{{Speedup: 1, NormEnergy: 1}},
		// Strictly improving chain: everything is on the front.
		{{Speedup: 1, NormEnergy: 0.5}, {Speedup: 2, NormEnergy: 0.8}, {Speedup: 3, NormEnergy: 1.2}},
		// A dominated middle point.
		{{Speedup: 1, NormEnergy: 0.5}, {Speedup: 0.9, NormEnergy: 0.9}, {Speedup: 2, NormEnergy: 1.0}},
		// Equal-speedup group: only the minimal-energy member survives.
		{{Speedup: 1, NormEnergy: 0.7}, {Speedup: 1, NormEnergy: 0.5}, {Speedup: 1, NormEnergy: 0.6}},
		// Exact duplicates in both objectives are all front members.
		{{Speedup: 2, NormEnergy: 0.5}, {Speedup: 2, NormEnergy: 0.5}, {Speedup: 1, NormEnergy: 0.9}},
		// Duplicates that are dominated stay out.
		{{Speedup: 1, NormEnergy: 0.9}, {Speedup: 1, NormEnergy: 0.9}, {Speedup: 2, NormEnergy: 0.5}},
	}
	for ci, preds := range cases {
		want := core.ParetoFront(preds)
		got := append([]core.Prediction(nil), preds...)
		m := frontInPlace(got)
		if !reflect.DeepEqual(sortPreds(got[:m]), sortPreds(want)) {
			t.Errorf("case %d: frontInPlace = %v, want %v", ci, got[:m], want)
		}
	}
}

// TestPredictFrontsIntoAllocs pins the zero-allocation contract of the
// steady-state batch path: once the scratch has grown to the batch size,
// a sub-threshold batch performs no allocations at all.
func TestPredictFrontsIntoAllocs(t *testing.T) {
	e, kernels := testEngine(t, 4)
	if _, err := e.Train(context.Background(), kernels); err != nil {
		t.Fatalf("Train: %v", err)
	}
	p, err := e.Predictor()
	if err != nil {
		t.Fatalf("Predictor: %v", err)
	}
	sts := bench.AllFeatures()[:1]
	if rows := len(sts) * (len(p.modeledConfigs()) + 1); rows >= 256 {
		t.Skipf("batch of %d rows exceeds the sequential threshold", rows)
	}
	scratch := GetBatchScratch()
	defer PutBatchScratch(scratch)
	p.PredictFrontsInto(scratch, sts) // grow the scratch

	var sink [][]core.Prediction
	allocs := testing.AllocsPerRun(100, func() {
		sink = p.PredictFrontsInto(scratch, sts)
	})
	if allocs != 0 {
		t.Fatalf("steady-state batch path allocates %.1f times per run, want 0", allocs)
	}
	_ = sink
	_ = features.Dim
}
