package engine

import (
	"container/list"
	"sync"

	"repro/internal/features"
)

// cacheVal is a cached pair of model outputs for one combined input vector.
type cacheVal struct {
	speedup float64
	energy  float64
}

// predCache is a mutex-guarded LRU cache of SVR evaluations keyed on the
// combined (static-features, configuration) model input vector — the exact
// input both models consume, so a hit is valid for any request that maps to
// the same vector regardless of which kernel or sweep produced it.
type predCache struct {
	mu  sync.Mutex
	cap int
	m   map[features.Vector]*list.Element
	l   *list.List // front = most recently used
}

type cacheEntry struct {
	k features.Vector
	v cacheVal
}

func newPredCache(capacity int) *predCache {
	return &predCache{
		cap: capacity,
		m:   make(map[features.Vector]*list.Element, capacity),
		l:   list.New(),
	}
}

// get returns the cached value for k, marking it most recently used.
func (c *predCache) get(k features.Vector) (cacheVal, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		return cacheVal{}, false
	}
	c.l.MoveToFront(el)
	return el.Value.(*cacheEntry).v, true
}

// put inserts or refreshes k, evicting the least recently used entry when
// the cache is full.
func (c *predCache) put(k features.Vector, v cacheVal) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		el.Value.(*cacheEntry).v = v
		c.l.MoveToFront(el)
		return
	}
	if c.l.Len() >= c.cap {
		oldest := c.l.Back()
		if oldest != nil {
			c.l.Remove(oldest)
			delete(c.m, oldest.Value.(*cacheEntry).k)
		}
	}
	c.m[k] = c.l.PushFront(&cacheEntry{k: k, v: v})
}

// len returns the current entry count.
func (c *predCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.l.Len()
}
