package engine_test

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/features"
)

const saxpy = `__kernel void saxpy(__global const float* x, __global float* y, float a, int n) {
	int i = get_global_id(0);
	if (i < n) y[i] = a * x[i] + y[i];
}`

// ExampleEngine_Train trains on a small slice of the synthetic suite and
// predicts the Pareto set of a kernel that is never executed — the
// paper's two-phase pipeline through the concurrent engine.
func ExampleEngine_Train() {
	eng := engine.NewDefault(engine.Options{
		Workers: 2,
		Core:    core.Options{SettingsPerKernel: 4},
	})
	// A 12-kernel subset keeps the example fast; production uses the full
	// 106-micro-benchmark suite via TrainDefault.
	kernels := engine.TrainingKernels()[:12]
	if _, err := eng.Train(context.Background(), kernels); err != nil {
		fmt.Println("error:", err)
		return
	}
	pred, err := eng.Predictor()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	set, err := pred.PredictSource(saxpy, "saxpy")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("trained=%v pareto non-empty=%v\n", eng.Trained(), len(set) > 0)
	// Output:
	// trained=true pareto non-empty=true
}

// ExamplePredictor_PredictBatch predicts many kernels in one call; results
// are index-aligned and every SVR evaluation lands in the shared cache.
func ExamplePredictor_PredictBatch() {
	eng := engine.NewDefault(engine.Options{
		Workers: 2,
		Core:    core.Options{SettingsPerKernel: 4},
	})
	if _, err := eng.Train(context.Background(), engine.TrainingKernels()[:12]); err != nil {
		fmt.Println("error:", err)
		return
	}
	pred, err := eng.Predictor()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	kernels := engine.TrainingKernels()[:3]
	sts := make([]features.Static, len(kernels))
	for i, k := range kernels {
		sts[i] = k.Features
	}
	sets, err := pred.PredictBatch(context.Background(), sts)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	stats := pred.Stats()
	fmt.Printf("kernels=%d all predicted=%v cache populated=%v\n",
		len(sets), nonEmpty(sets), stats.Misses > 0)
	// Output:
	// kernels=3 all predicted=true cache populated=true
}

func nonEmpty(sets [][]core.Prediction) bool {
	for _, s := range sets {
		if len(s) == 0 {
			return false
		}
	}
	return true
}
