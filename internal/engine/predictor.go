package engine

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/freq"
)

// Predictor is the engine's concurrent prediction facade over a pair of
// trained models: it mirrors core.Predictor's API, evaluates the frequency
// ladder in parallel, batches whole kernel lists, and memoizes SVR
// evaluations in an LRU cache shared by all callers. All methods are safe
// for concurrent use.
type Predictor struct {
	inner   *core.Predictor
	workers int
	cache   *predCache // nil when caching is disabled

	// Ladder-derived constants, computed once at construction so the hot
	// paths never rebuild them: the modeled configuration list (all memory
	// clocks but mem-L × their core clocks) and the mem-L heuristic
	// configuration. The ladder is immutable for the predictor's lifetime.
	cfgs    []freq.Config
	memLCfg freq.Config
	hasMemL bool

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewPredictor builds a cached concurrent predictor.
func NewPredictor(m *core.Models, ladder *freq.Ladder, opts Options) *Predictor {
	opts = opts.withDefaults()
	p := &Predictor{
		inner:   core.NewPredictor(m, ladder),
		workers: opts.Workers,
	}
	if opts.CacheSize > 0 {
		p.cache = newPredCache(opts.CacheSize)
	}
	for _, mem := range p.inner.ModeledMems() {
		for _, c := range p.inner.Ladder.CoreClocks(mem) {
			p.cfgs = append(p.cfgs, freq.Config{Mem: mem, Core: c})
		}
	}
	p.memLCfg, p.hasMemL = core.MemLHeuristicConfig(p.inner.Ladder)
	return p
}

// Core returns the underlying uncached predictor.
func (p *Predictor) Core() *core.Predictor { return p.inner }

// Ladder returns the frequency ladder predictions are made over.
func (p *Predictor) Ladder() *freq.Ladder { return p.inner.Ladder }

// CacheStats is a snapshot of the prediction cache counters.
type CacheStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
}

// Stats returns the cache hit/miss accounting since construction.
func (p *Predictor) Stats() CacheStats {
	s := CacheStats{Hits: p.hits.Load(), Misses: p.misses.Load()}
	if p.cache != nil {
		s.Entries = p.cache.len()
		s.Capacity = p.cache.cap
	}
	return s
}

// PredictConfig predicts both objectives for one configuration, consulting
// the cache first.
func (p *Predictor) PredictConfig(st features.Static, cfg freq.Config) core.Prediction {
	v := features.Combine(st, cfg)
	if p.cache != nil {
		if cv, ok := p.cache.get(v); ok {
			p.hits.Add(1)
			return core.Prediction{Config: cfg, Speedup: cv.speedup, NormEnergy: cv.energy}
		}
	}
	p.misses.Add(1)
	x := v.Slice()
	pr := core.Prediction{
		Config:     cfg,
		Speedup:    p.inner.Models.Speedup.Predict(x),
		NormEnergy: p.inner.Models.Energy.Predict(x),
	}
	if p.cache != nil {
		p.cache.put(v, cacheVal{speedup: pr.Speedup, energy: pr.NormEnergy})
	}
	return pr
}

// predictConfigs evaluates many configurations for one kernel, splitting
// the sweep across the worker pool when it is large enough to pay off.
func (p *Predictor) predictConfigs(st features.Static, cfgs []freq.Config) []core.Prediction {
	out := make([]core.Prediction, len(cfgs))
	const parallelMin = 32
	if p.workers <= 1 || len(cfgs) < parallelMin {
		for i, cfg := range cfgs {
			out[i] = p.PredictConfig(st, cfg)
		}
		return out
	}
	workers := p.workers
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	chunk := (len(cfgs) + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < len(cfgs); lo += chunk {
		hi := lo + chunk
		if hi > len(cfgs) {
			hi = len(cfgs)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = p.PredictConfig(st, cfgs[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// modeledConfigs returns the cached list of every supported configuration
// of the modeled memory clocks (all but mem-L). Callers must not mutate it.
func (p *Predictor) modeledConfigs() []freq.Config { return p.cfgs }

// PredictAll predicts both objectives at every supported configuration of
// the given memory clocks (nil = the modeled clocks: all but mem-L),
// evaluating the ladder in parallel.
func (p *Predictor) PredictAll(st features.Static, mems []freq.MHz) []core.Prediction {
	var cfgs []freq.Config
	if mems == nil {
		cfgs = p.modeledConfigs()
	} else {
		for _, m := range mems {
			for _, c := range p.inner.Ladder.CoreClocks(m) {
				cfgs = append(cfgs, freq.Config{Mem: m, Core: c})
			}
		}
	}
	return p.predictConfigs(st, cfgs)
}

// memLHeuristic is the cached-path version of core.Predictor.MemLHeuristic.
func (p *Predictor) memLHeuristic(st features.Static) (core.Prediction, bool) {
	if !p.hasMemL {
		return core.Prediction{}, false
	}
	pr := p.PredictConfig(st, p.memLCfg)
	pr.MemLHeuristic = true
	return pr, true
}

// paretoOf derives the Pareto front and appends the mem-L heuristic
// configuration, matching core.Predictor's output contract.
func (p *Predictor) paretoOf(st features.Static, preds []core.Prediction) []core.Prediction {
	out := core.ParetoFront(preds)
	if heur, ok := p.memLHeuristic(st); ok {
		out = append(out, heur)
	}
	return out
}

// ParetoSet predicts the Pareto-optimal frequency configurations for a
// kernel given only its static features (prediction-phase steps 1–9 of
// Fig. 3), sweeping the modeled ladder in parallel.
func (p *Predictor) ParetoSet(st features.Static) []core.Prediction {
	return p.paretoOf(st, p.predictConfigs(st, p.modeledConfigs()))
}

// ParetoSetOver is ParetoSet restricted to the given candidate
// configurations; lowest-memory-clock candidates are excluded from modeling
// and replaced by the mem-L heuristic, as in core.Predictor.ParetoSetOver.
func (p *Predictor) ParetoSetOver(st features.Static, cfgs []freq.Config) []core.Prediction {
	modeled := core.ExcludeMemL(p.inner.Ladder, cfgs)
	return p.paretoOf(st, p.predictConfigs(st, modeled))
}

// PredictSource is the end-to-end prediction entry point: parse OpenCL
// source, extract static features, and predict the Pareto set.
func (p *Predictor) PredictSource(src, kernelName string) ([]core.Prediction, error) {
	st, err := features.ExtractSource(src, kernelName)
	if err != nil {
		return nil, err
	}
	return p.ParetoSet(st), nil
}

// PredictBatch predicts the Pareto set of every kernel in the batch,
// fanning kernels out across the worker pool. Results are index-aligned
// with the input. The context cancels unstarted work; the partial result is
// discarded and ctx.Err() returned.
func (p *Predictor) PredictBatch(ctx context.Context, sts []features.Static) ([][]core.Prediction, error) {
	out := make([][]core.Prediction, len(sts))
	workers := p.workers
	if workers > len(sts) {
		workers = len(sts)
	}
	if workers < 1 {
		workers = 1
	}
	cfgs := p.modeledConfigs()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					return
				}
				// Per-kernel sweeps stay sequential here: the batch fan-out
				// already saturates the pool, and nesting predictConfigs
				// would oversubscribe it.
				preds := make([]core.Prediction, len(cfgs))
				for j, cfg := range cfgs {
					preds[j] = p.PredictConfig(sts[i], cfg)
				}
				out[i] = p.paretoOf(sts[i], preds)
			}
		}()
	}
	for i := range sts {
		select {
		case jobs <- i:
		case <-ctx.Done():
			close(jobs)
			wg.Wait()
			return nil, ctx.Err()
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
