package budget

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

// FuzzBudgetPlan fuzzes the two wire surfaces the control plane parses:
// decision-table documents (DecodeTable) and plan requests (a budget plus
// an item list, solved with Solve). The contract under fuzz:
//
//   - every rejection is a typed error (ErrBadTable for tables,
//     ErrBadBudget/ErrBadItem for plans) — never a panic, never an
//     untyped error;
//   - every accepted table round-trips byte-identically through
//     encode → decode → encode;
//   - every accepted plan respects its budget when feasible and re-solves
//     to the identical plan (determinism).
func FuzzBudgetPlan(f *testing.F) {
	// A canonical accepting table, so the fuzzer starts from a valid
	// document and mutates toward the rejection boundaries.
	if doc, err := EncodeTable(validTable()); err == nil {
		f.Add(doc)
	}
	// Rejection boundary seeds: malformed budgets (negative, wrong unit,
	// JSON that cannot express NaN/Inf), empty fronts, mixed-profile
	// tables with duplicate feature keys, bad hashes.
	f.Add([]byte(`{"node":"n","device":"d","budget":{"total":-1},"entries":[]}`))
	f.Add([]byte(`{"node":"n","device":"d","budget":{"total":1,"unit":"furlongs"},"entries":[]}`))
	f.Add([]byte(`{"budget":{"total":1e999},"items":[{"node":"n","kernel":"k","weight":1,"front":[]}]}`))
	f.Add([]byte(`{"budget":{"total":2},"items":[{"node":"n","kernel":"k","weight":1,"front":[]}]}`))
	f.Add([]byte(`{"budget":{"total":2},"items":[{"node":"n","kernel":"k","weight":-1,"front":[{"config":{"mem":3505,"core":1001},"speedup":1,"norm_energy":1}]}]}`))
	f.Add([]byte(`{"node":"n","device":"d","budget":{"total":1},"entries":null,"hash":"00"}`))

	f.Fuzz(func(t *testing.T, doc []byte) {
		// Surface 1: the decision-table codec.
		tbl, err := DecodeTable(doc)
		if err != nil {
			if !errors.Is(err, ErrBadTable) {
				t.Fatalf("DecodeTable rejection not typed: %v", err)
			}
		} else {
			enc, err := EncodeTable(tbl)
			if err != nil {
				t.Fatalf("accepted table fails re-encode: %v", err)
			}
			tbl2, err := DecodeTable(enc)
			if err != nil {
				t.Fatalf("re-encoded table fails decode: %v", err)
			}
			enc2, err := EncodeTable(tbl2)
			if err != nil {
				t.Fatalf("second re-encode: %v", err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("table round trip not stable:\n%s\nvs\n%s", enc, enc2)
			}
		}

		// Surface 2: a plan request (the POST /fleet/budget body shape).
		var req struct {
			Budget Budget `json:"budget"`
			Items  []Item `json:"items"`
		}
		if json.Unmarshal(doc, &req) != nil {
			return
		}
		p, err := Solve(req.Items, req.Budget)
		if err != nil {
			if !errors.Is(err, ErrBadBudget) && !errors.Is(err, ErrBadItem) {
				t.Fatalf("Solve rejection not typed: %v", err)
			}
			return
		}
		if p.Feasible && p.Cost > req.Budget.Total*(1+1e-12) {
			t.Fatalf("accepted plan exceeds budget: cost %g > %g", p.Cost, req.Budget.Total)
		}
		again, err := Solve(req.Items, req.Budget)
		if err != nil {
			t.Fatalf("re-solve failed: %v", err)
		}
		a, _ := json.Marshal(p)
		b, _ := json.Marshal(again)
		if !bytes.Equal(a, b) {
			t.Fatalf("solve not deterministic:\n%s\nvs\n%s", a, b)
		}
	})
}
