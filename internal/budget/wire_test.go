package budget

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/freq"
	"repro/internal/policy"
)

func validTable() *DecisionTable {
	st := features.Static{}
	st[0] = 1.5
	st2 := features.Static{}
	st2[0] = 2.5
	return &DecisionTable{
		Node: "node-a", Device: "titanx",
		Budget:   Budget{Total: 1.5, Unit: UnitPower},
		Feasible: true,
		Entries: []Entry{
			{Kernel: "k1", Features: st, Weight: 0.6, Decision: policy.Decision{
				Policy:   policy.Spec{Name: PolicyName},
				Chosen:   core.Prediction{Config: freq.Config{Mem: 3505, Core: 1001}, Speedup: 1.1, NormEnergy: 0.9},
				Feasible: true, Candidates: 1,
			}},
			{Kernel: "k2", Features: st2, Weight: 0.4, Decision: policy.Decision{
				Policy:   policy.Spec{Name: PolicyName},
				Chosen:   core.Prediction{Config: freq.Config{Mem: 3304, Core: 900}, Speedup: 0.95, NormEnergy: 0.7},
				Feasible: true, Candidates: 1,
			}},
		},
	}
}

// TestTableRoundTrip: encode stamps a hash, decode verifies it, and a
// second encode is byte-identical — the invariant FuzzBudgetPlan pounds on.
func TestTableRoundTrip(t *testing.T) {
	doc, err := EncodeTable(validTable())
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTable(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash == "" {
		t.Fatal("decoded table lost its hash")
	}
	again, err := EncodeTable(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc, again) {
		t.Fatalf("round trip not stable:\n%s\nvs\n%s", doc, again)
	}
}

// TestTableTamperDetected: any byte-level tamper after encoding fails the
// content hash.
func TestTableTamperDetected(t *testing.T) {
	doc, err := EncodeTable(validTable())
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(doc, []byte(`"weight":0.6`), []byte(`"weight":0.7`), 1)
	if bytes.Equal(tampered, doc) {
		t.Fatal("tamper did not change the document")
	}
	if _, err := DecodeTable(tampered); !errors.Is(err, ErrBadTable) || !strings.Contains(err.Error(), "hash") {
		t.Fatalf("tampered table: got %v, want hash mismatch wrapping ErrBadTable", err)
	}
}

// TestTableValidation pins every rejection class to ErrBadTable.
func TestTableValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*DecisionTable)
	}{
		{"no node", func(d *DecisionTable) { d.Node = "" }},
		{"no device", func(d *DecisionTable) { d.Device = "" }},
		{"bad budget", func(d *DecisionTable) { d.Budget.Total = -1 }},
		{"bad unit", func(d *DecisionTable) { d.Budget.Unit = "bogus" }},
		{"no entries", func(d *DecisionTable) { d.Entries = nil }},
		{"zero weight", func(d *DecisionTable) { d.Entries[0].Weight = 0 }},
		{"negative objective", func(d *DecisionTable) { d.Entries[0].Decision.Chosen.Speedup = -1 }},
		{"zero config", func(d *DecisionTable) { d.Entries[0].Decision.Chosen.Config.Core = 0 }},
		{"duplicate features", func(d *DecisionTable) { d.Entries[1].Features = d.Entries[0].Features }},
		{"oversized", func(d *DecisionTable) {
			e := d.Entries[0]
			d.Entries = nil
			for i := 0; i <= maxTableEntries; i++ {
				ee := e
				ee.Features[0] = float64(i)
				d.Entries = append(d.Entries, ee)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := validTable()
			tc.mut(d)
			if err := d.Validate(); !errors.Is(err, ErrBadTable) {
				t.Fatalf("got %v, want ErrBadTable", err)
			}
			if _, err := EncodeTable(d); !errors.Is(err, ErrBadTable) {
				t.Fatalf("encode: got %v, want ErrBadTable", err)
			}
		})
	}
	if _, err := DecodeTable([]byte(`{"node":`)); !errors.Is(err, ErrBadTable) {
		t.Fatalf("malformed JSON: got %v, want ErrBadTable", err)
	}
}

// TestTablesCutsPlanByNode: a two-node plan cuts into two hashed tables,
// each carrying exactly its node's kernels with the plan's budget echoed;
// kernels the feature resolver cannot place are dropped.
func TestTablesCutsPlanByNode(t *testing.T) {
	front := []core.Prediction{
		{Config: freq.Config{Mem: 3505, Core: 600}, Speedup: 0.8, NormEnergy: 0.6},
		{Config: freq.Config{Mem: 3505, Core: 1001}, Speedup: 1.0, NormEnergy: 1.0},
	}
	items := []Item{
		{Node: "a", Kernel: "k1", Weight: 0.5, Front: front},
		{Node: "a", Kernel: "k2", Weight: 0.5, Front: front},
		{Node: "b", Kernel: "k1", Weight: 1, Front: front},
		{Node: "b", Kernel: "orphan", Weight: 1, Front: front},
	}
	p, err := Solve(items, Budget{Total: 10})
	if err != nil {
		t.Fatal(err)
	}
	feats := func(node, kernel string) (features.Static, bool) {
		if kernel == "orphan" {
			return features.Static{}, false
		}
		st := features.Static{}
		if kernel == "k2" {
			st[0] = 1
		}
		return st, true
	}
	device := func(node string) string {
		if node == "a" {
			return "titanx"
		}
		return "p100"
	}
	tables, err := Tables(&p, device, feats)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want 2", len(tables))
	}
	a, b := tables["a"], tables["b"]
	if a == nil || b == nil {
		t.Fatalf("missing node table: %v", tables)
	}
	if a.Device != "titanx" || b.Device != "p100" {
		t.Fatalf("device resolution: a=%s b=%s", a.Device, b.Device)
	}
	if len(a.Entries) != 2 || len(b.Entries) != 1 {
		t.Fatalf("entry counts: a=%d b=%d (orphan must be dropped)", len(a.Entries), len(b.Entries))
	}
	for name, tbl := range tables {
		if tbl.Hash == "" {
			t.Fatalf("table %s missing hash", name)
		}
		if tbl.Budget != p.Budget {
			t.Fatalf("table %s budget %+v != plan %+v", name, tbl.Budget, p.Budget)
		}
		if err := tbl.Validate(); err != nil {
			t.Fatalf("table %s invalid: %v", name, err)
		}
		for _, e := range tbl.Entries {
			if e.Decision.Policy.Name != PolicyName {
				t.Fatalf("table %s entry %s policy %q", name, e.Kernel, e.Decision.Policy.Name)
			}
		}
	}
}
