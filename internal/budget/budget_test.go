package budget

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/freq"
)

// randFront generates a plausible prediction set: a mostly-increasing
// (speedup, energy) staircase with injected dominated points, exact
// duplicates, and an occasional mem-L heuristic point — the same mixture a
// live ParetoSet sweep can produce — so the canonicalizer earns its keep
// on every trial.
func randFront(rng *rand.Rand) []core.Prediction {
	n := 2 + rng.Intn(8)
	s := 0.3 + rng.Float64()*0.2
	e := 0.35 + rng.Float64()*0.2
	var out []core.Prediction
	for i := 0; i < n; i++ {
		s += 0.01 + rng.Float64()*0.15
		e += 0.01 + rng.Float64()*0.15
		p := core.Prediction{
			Config:     freq.Config{Mem: freq.MHz(405 + 100*i), Core: freq.MHz(500 + 10*rng.Intn(70))},
			Speedup:    s,
			NormEnergy: e,
		}
		out = append(out, p)
		if rng.Intn(4) == 0 { // dominated: same speedup, worse energy
			d := p
			d.NormEnergy += 0.05
			d.Config.Core++
			out = append(out, d)
		}
		if rng.Intn(8) == 0 { // exact duplicate objectives, different config
			d := p
			d.Config.Core += 7
			out = append(out, d)
		}
	}
	if rng.Intn(3) == 0 {
		out = append(out, core.Prediction{
			Config: freq.Config{Mem: 405, Core: 135}, Speedup: 0.2, NormEnergy: 0.3,
			MemLHeuristic: true,
		})
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// randFleet generates a random multi-node, multi-kernel item set.
func randFleet(rng *rand.Rand) []Item {
	nodes := 1 + rng.Intn(5)
	var items []Item
	for n := 0; n < nodes; n++ {
		kernels := 1 + rng.Intn(5)
		for k := 0; k < kernels; k++ {
			items = append(items, Item{
				Node:   fmt.Sprintf("node-%d", n),
				Kernel: fmt.Sprintf("kern-%d", k),
				Weight: 0.05 + rng.Float64(),
				Front:  randFront(rng),
			})
		}
	}
	return items
}

// randBudget draws a budget spanning the interesting range: below the
// floor (infeasible), between floor and the most expensive allocation,
// and above it (unconstrained), in both units.
func randBudget(rng *rand.Rand, items []Item) Budget {
	unit := UnitPower
	if rng.Intn(2) == 0 {
		unit = UnitEnergy
	}
	b := Budget{Unit: unit}
	// Price the extremes through the solver's own canonicalization.
	prep, err := prepare(items, Budget{Total: 1, Unit: unit})
	if err != nil {
		panic(err)
	}
	var floor, ceil float64
	for i := range prep {
		floor += prep[i].costs[0]
		ceil += prep[i].costs[len(prep[i].costs)-1]
	}
	b.Total = floor*0.5 + rng.Float64()*(ceil*1.2-floor*0.5)
	return b
}

// dump renders a failing trial for reproduction.
func dump(t *testing.T, items []Item, b Budget) {
	t.Helper()
	doc, _ := json.Marshal(struct {
		Budget Budget `json:"budget"`
		Items  []Item `json:"items"`
	}{b, items})
	t.Logf("offending trial (budget + front set):\n%s", doc)
}

const trials = 300

// TestPlanRespectsBudget: a feasible plan never spends more than the
// budget; an infeasible one (budget below the fleet floor) allocates
// exactly the floor and says so. Holds for the governor and both
// baselines.
func TestPlanRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	solvers := map[string]func([]Item, Budget) (Plan, error){
		"solve": Solve, "greedy": SolveGreedy, "uniform": SolveUniform, "per-device": SolvePerDevice,
	}
	for i := 0; i < trials; i++ {
		items := randFleet(rng)
		b := randBudget(rng, items)
		for name, solve := range solvers {
			p, err := solve(items, b)
			if err != nil {
				dump(t, items, b)
				t.Fatalf("trial %d: %s: %v", i, name, err)
			}
			if p.Feasible && p.Cost > b.Total*(1+1e-12) {
				dump(t, items, b)
				t.Fatalf("trial %d: %s: cost %g exceeds budget %g", i, name, p.Cost, b.Total)
			}
			if !p.Feasible {
				if b.Total >= p.FloorCost {
					dump(t, items, b)
					t.Fatalf("trial %d: %s: infeasible verdict with budget %g ≥ floor %g", i, name, b.Total, p.FloorCost)
				}
				if math.Abs(p.Cost-p.FloorCost) > 1e-9 {
					dump(t, items, b)
					t.Fatalf("trial %d: %s: infeasible plan cost %g is not the floor %g", i, name, p.Cost, p.FloorCost)
				}
			}
		}
	}
}

// TestPlanNeverSelectsDominatedPoint: every allocated point is
// Pareto-optimal among its item's usable front points and never the mem-L
// heuristic extrapolation.
func TestPlanNeverSelectsDominatedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < trials; i++ {
		items := randFleet(rng)
		b := randBudget(rng, items)
		p, err := Solve(items, b)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		fronts := map[string][]core.Prediction{}
		for _, it := range items {
			fronts[it.Node+"/"+it.Kernel] = it.Front
		}
		for _, a := range p.Allocations {
			c := a.Chosen
			if c.MemLHeuristic {
				dump(t, items, b)
				t.Fatalf("trial %d: %s/%s: allocated the mem-L heuristic point", i, a.Node, a.Kernel)
			}
			for _, q := range fronts[a.Node+"/"+a.Kernel] {
				if !usable(q) {
					continue
				}
				if q.Speedup >= c.Speedup && q.NormEnergy <= c.NormEnergy &&
					(q.Speedup > c.Speedup || q.NormEnergy < c.NormEnergy) {
					dump(t, items, b)
					t.Fatalf("trial %d: %s/%s: chose (%g, %g), dominated by (%g, %g)",
						i, a.Node, a.Kernel, c.Speedup, c.NormEnergy, q.Speedup, q.NormEnergy)
				}
			}
		}
	}
}

// TestPlanDeterministic: a fixed input solves to the same plan every time,
// regardless of item order — the same stable tie-breaking contract the
// policy layer documents.
func TestPlanDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < trials/3; i++ {
		items := randFleet(rng)
		b := randBudget(rng, items)
		first, err := Solve(items, b)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		want, _ := json.Marshal(first)
		for rep := 0; rep < 3; rep++ {
			shuffled := append([]Item(nil), items...)
			rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
			again, err := Solve(shuffled, b)
			if err != nil {
				t.Fatalf("trial %d rep %d: %v", i, rep, err)
			}
			got, _ := json.Marshal(again)
			if string(got) != string(want) {
				dump(t, items, b)
				t.Fatalf("trial %d rep %d: plan differs across runs:\n%s\nvs\n%s", i, rep, want, got)
			}
		}
	}
}

// TestPlanMonotoneInBudget: raising the budget never lowers predicted
// fleet speedup — more watts can only buy more throughput.
func TestPlanMonotoneInBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	solvers := map[string]func([]Item, Budget) (Plan, error){
		"solve": Solve, "greedy": SolveGreedy, "uniform": SolveUniform, "per-device": SolvePerDevice,
	}
	for i := 0; i < trials/3; i++ {
		items := randFleet(rng)
		b := randBudget(rng, items)
		for name, solve := range solvers {
			last := math.Inf(-1)
			lastB := 0.0
			for step := 0; step < 12; step++ {
				bb := b
				bb.Total = b.Total * (0.4 + 0.12*float64(step) + rng.Float64()*0.05)
				if bb.Total < lastB {
					continue
				}
				p, err := solve(items, bb)
				if err != nil {
					t.Fatalf("trial %d: %s: %v", i, name, err)
				}
				if p.FleetSpeedup < last-1e-12 {
					dump(t, items, bb)
					t.Fatalf("trial %d: %s: budget %g → speedup %g but budget %g → %g (monotonicity violated)",
						i, name, lastB, last, bb.Total, p.FleetSpeedup)
				}
				last, lastB = p.FleetSpeedup, bb.Total
			}
		}
	}
}

// TestGovernorDominatesBaselines: the budget governor's predicted fleet
// speedup is ≥ uniform capping and ≥ per-device greedy on every trial — it
// strictly generalizes both. A failure prints the offending front set for
// reproduction.
func TestGovernorDominatesBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < trials; i++ {
		items := randFleet(rng)
		b := randBudget(rng, items)
		gov, err := Solve(items, b)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		uni, err := SolveUniform(items, b)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		per, err := SolvePerDevice(items, b)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if gov.FleetSpeedup < uni.FleetSpeedup {
			dump(t, items, b)
			t.Fatalf("trial %d: governor %g < uniform-cap %g", i, gov.FleetSpeedup, uni.FleetSpeedup)
		}
		if gov.FleetSpeedup < per.FleetSpeedup {
			dump(t, items, b)
			t.Fatalf("trial %d: governor %g < per-device-greedy %g", i, gov.FleetSpeedup, per.FleetSpeedup)
		}
	}
}

// TestPlanInternalConsistency: the plan's totals are exactly the sums of
// its allocations, and allocations come back in stable (node, kernel)
// order.
func TestPlanInternalConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < trials/3; i++ {
		items := randFleet(rng)
		b := randBudget(rng, items)
		p, err := Solve(items, b)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if len(p.Allocations) != len(items) {
			t.Fatalf("trial %d: %d allocations for %d items", i, len(p.Allocations), len(items))
		}
		var speedup, cost, power, energy float64
		for j, a := range p.Allocations {
			speedup += a.Throughput
			cost += a.Cost
			power += a.Weight * a.Chosen.NormEnergy * a.Chosen.Speedup
			energy += a.Weight * a.Chosen.NormEnergy
			if j > 0 {
				prev := p.Allocations[j-1]
				if prev.Node > a.Node || (prev.Node == a.Node && prev.Kernel >= a.Kernel) {
					t.Fatalf("trial %d: allocations out of order: %s/%s after %s/%s",
						i, a.Node, a.Kernel, prev.Node, prev.Kernel)
				}
			}
		}
		for name, pair := range map[string][2]float64{
			"fleet_speedup": {speedup, p.FleetSpeedup},
			"cost":          {cost, p.Cost},
			"fleet_power":   {power, p.FleetPower},
			"fleet_energy":  {energy, p.FleetEnergy},
		} {
			if math.Abs(pair[0]-pair[1]) > 1e-9 {
				t.Fatalf("trial %d: %s: allocations sum to %g, plan says %g", i, name, pair[0], pair[1])
			}
		}
	}
}

// TestSolveTypedErrors pins the validation contract: every malformed input
// class is rejected with its typed error, never a panic or a silent
// best-effort plan.
func TestSolveTypedErrors(t *testing.T) {
	good := []Item{{Node: "n", Kernel: "k", Weight: 1, Front: []core.Prediction{
		{Config: freq.Config{Mem: 3505, Core: 1001}, Speedup: 1, NormEnergy: 1},
	}}}
	cases := []struct {
		name  string
		items []Item
		b     Budget
		want  error
	}{
		{"nan budget", good, Budget{Total: math.NaN()}, ErrBadBudget},
		{"inf budget", good, Budget{Total: math.Inf(1)}, ErrBadBudget},
		{"negative budget", good, Budget{Total: -1}, ErrBadBudget},
		{"unknown unit", good, Budget{Total: 1, Unit: "furlongs"}, ErrBadBudget},
		{"no node", []Item{{Kernel: "k", Weight: 1, Front: good[0].Front}}, Budget{Total: 1}, ErrBadItem},
		{"zero weight", []Item{{Node: "n", Kernel: "k", Front: good[0].Front}}, Budget{Total: 1}, ErrBadItem},
		{"nan weight", []Item{{Node: "n", Kernel: "k", Weight: math.NaN(), Front: good[0].Front}}, Budget{Total: 1}, ErrBadItem},
		{"empty front", []Item{{Node: "n", Kernel: "k", Weight: 1}}, Budget{Total: 1}, ErrBadItem},
		{"all-heuristic front", []Item{{Node: "n", Kernel: "k", Weight: 1, Front: []core.Prediction{
			{Config: freq.Config{Mem: 405, Core: 135}, Speedup: 0.5, NormEnergy: 0.5, MemLHeuristic: true},
		}}}, Budget{Total: 1}, ErrBadItem},
		{"non-finite front", []Item{{Node: "n", Kernel: "k", Weight: 1, Front: []core.Prediction{
			{Config: freq.Config{Mem: 3505, Core: 1001}, Speedup: math.Inf(1), NormEnergy: 1},
		}}}, Budget{Total: 1}, ErrBadItem},
		{"duplicate item", append(append([]Item{}, good...), good...), Budget{Total: 1}, ErrBadItem},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for name, solve := range map[string]func([]Item, Budget) (Plan, error){
				"solve": Solve, "greedy": SolveGreedy, "uniform": SolveUniform, "per-device": SolvePerDevice,
			} {
				if _, err := solve(tc.items, tc.b); !errorsIs(err, tc.want) {
					t.Errorf("%s: got %v, want %v", name, err, tc.want)
				}
			}
		})
	}
}

// errorsIs is errors.Is without the import shadowing the test helpers.
func errorsIs(err, target error) bool {
	for e := err; e != nil; {
		if e == target {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// TestEmptyFleet: no items is a valid (trivially feasible) plan, not an
// error — a fleet with no observed mix yet has nothing to govern.
func TestEmptyFleet(t *testing.T) {
	p, err := Solve(nil, Budget{Total: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible || p.FleetSpeedup != 0 || len(p.Allocations) != 0 {
		t.Fatalf("unexpected empty-fleet plan: %+v", p)
	}
}
