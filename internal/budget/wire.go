package budget

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/features"
	"repro/internal/policy"
)

// maxTableEntries bounds a decision-table document: far above any real
// fleet mix (the training suite has ~10² kernels) and low enough that a
// hostile document cannot make an agent allocate unbounded memory.
const maxTableEntries = 4096

// Entry is one kernel's slot in a node's decision table: the kernel's
// identity (static features are the lookup key, the name is diagnostic)
// and the fleet governor's decision for it.
type Entry struct {
	// Kernel labels the kernel; Features is the static feature vector the
	// serving layers key on.
	Kernel   string          `json:"kernel"`
	Features features.Static `json:"features"`
	// Weight is the kernel's share of the node's observed mix at plan
	// time.
	Weight float64 `json:"weight"`
	// Decision is the allocated choice in the policy layer's decision
	// shape; Decision.Chosen.Config is the configuration to apply.
	Decision policy.Decision `json:"decision"`
}

// DecisionTable is one node's slice of a fleet plan: the per-kernel
// decisions the control plane pushes to (or hands a heartbeating) agent.
// The embedded hash covers every other field, so an agent can verify a
// table's integrity independently — the same convergence contract snapshot
// documents carry.
type DecisionTable struct {
	// Node and Device identify the agent the table is for.
	Node   string `json:"node"`
	Device string `json:"device"`
	// Budget and Feasible echo the plan the table was cut from.
	Budget   Budget `json:"budget"`
	Feasible bool   `json:"feasible"`
	// Entries is the per-kernel allocation, in the plan's stable kernel
	// order.
	Entries []Entry `json:"entries"`
	// Hash is the SHA-256 hex digest of the canonical table document with
	// this field empty; it doubles as the staleness key agents report on
	// heartbeats.
	Hash string `json:"hash,omitempty"`
}

// finite reports whether v is a usable number.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate rejects tables an agent must not install: missing identity, an
// unresolvable budget, no entries (an empty table is expressed by not
// pushing one), oversized tables, non-finite weights or objectives,
// non-positive configurations, and duplicate kernel features (two
// conflicting decisions for one lookup key). All rejections wrap
// ErrBadTable.
func (t *DecisionTable) Validate() error {
	if t.Node == "" || t.Device == "" {
		return fmt.Errorf("%w: missing node or device", ErrBadTable)
	}
	if err := t.Budget.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadTable, err)
	}
	if len(t.Entries) == 0 {
		return fmt.Errorf("%w: no entries", ErrBadTable)
	}
	if len(t.Entries) > maxTableEntries {
		return fmt.Errorf("%w: %d entries (max %d)", ErrBadTable, len(t.Entries), maxTableEntries)
	}
	seen := make(map[features.Static]bool, len(t.Entries))
	for i, e := range t.Entries {
		if !finite(e.Weight) || e.Weight <= 0 {
			return fmt.Errorf("%w: entry %d (%s): weight %g", ErrBadTable, i, e.Kernel, e.Weight)
		}
		for _, v := range e.Features {
			if !finite(v) {
				return fmt.Errorf("%w: entry %d (%s): non-finite feature", ErrBadTable, i, e.Kernel)
			}
		}
		c := e.Decision.Chosen
		if !finite(c.Speedup) || c.Speedup <= 0 || !finite(c.NormEnergy) || c.NormEnergy <= 0 {
			return fmt.Errorf("%w: entry %d (%s): objectives (%g, %g)", ErrBadTable, i, e.Kernel, c.Speedup, c.NormEnergy)
		}
		if c.Config.Mem <= 0 || c.Config.Core <= 0 {
			return fmt.Errorf("%w: entry %d (%s): configuration %v", ErrBadTable, i, e.Kernel, c.Config)
		}
		if seen[e.Features] {
			return fmt.Errorf("%w: entry %d (%s): duplicate kernel features", ErrBadTable, i, e.Kernel)
		}
		seen[e.Features] = true
	}
	return nil
}

// hashTable computes the canonical content hash: the JSON encoding with
// the Hash field cleared.
func hashTable(t *DecisionTable) (string, error) {
	c := *t
	c.Hash = ""
	doc, err := json.Marshal(&c)
	if err != nil {
		return "", fmt.Errorf("budget: hashing table: %w", err)
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:]), nil
}

// EncodeTable validates the table, stamps its content hash, and serializes
// it to the wire document DecodeTable accepts.
func EncodeTable(t *DecisionTable) ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	hash, err := hashTable(t)
	if err != nil {
		return nil, err
	}
	t.Hash = hash
	doc, err := json.Marshal(t)
	if err != nil {
		return nil, fmt.Errorf("budget: encoding table: %w", err)
	}
	return doc, nil
}

// DecodeTable parses, validates, and integrity-checks a decision-table
// document. Every failure — malformed JSON, validation, a missing or
// mismatched content hash — wraps ErrBadTable, and every accepted document
// re-encodes to the same bytes (pinned by the FuzzBudgetPlan corpus).
func DecodeTable(doc []byte) (*DecisionTable, error) {
	var t DecisionTable
	if err := json.Unmarshal(doc, &t); err != nil {
		return nil, fmt.Errorf("%w: parsing: %v", ErrBadTable, err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if t.Hash == "" {
		return nil, fmt.Errorf("%w: missing content hash", ErrBadTable)
	}
	want, err := hashTable(&t)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTable, err)
	}
	if t.Hash != want {
		return nil, fmt.Errorf("%w: content hash mismatch (document %.8s…, computed %.8s…)", ErrBadTable, t.Hash, want)
	}
	return &t, nil
}

// Tables cuts a solved plan into per-node decision tables. The plan
// stores kernels by label; the caller supplies the node→device and
// (node, kernel)→features resolvers (the control plane knows both from the
// mixes and fronts it solved over). Allocations whose kernel the resolver
// cannot place are skipped — the caller decides whether that is an error.
// Tables come back keyed by node with hashes stamped.
func Tables(p *Plan, device func(node string) string, feats func(node, kernel string) (features.Static, bool)) (map[string]*DecisionTable, error) {
	byNode := map[string]*DecisionTable{}
	for _, a := range p.Allocations {
		st, ok := feats(a.Node, a.Kernel)
		if !ok {
			continue
		}
		t := byNode[a.Node]
		if t == nil {
			t = &DecisionTable{
				Node: a.Node, Device: device(a.Node),
				Budget: p.Budget, Feasible: p.Feasible,
			}
			byNode[a.Node] = t
		}
		t.Entries = append(t.Entries, Entry{
			Kernel:   a.Kernel,
			Features: st,
			Weight:   a.Weight,
			Decision: a.Decision(p.Feasible),
		})
	}
	for _, t := range byNode {
		hash, err := hashTable(t)
		if err != nil {
			return nil, err
		}
		t.Hash = hash
	}
	return byNode, nil
}
