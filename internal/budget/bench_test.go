package budget

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkBudgetPlan measures full governor plan latency (all three arms)
// against fleet size: nodes × kernels items, each with a randomized front.
func BenchmarkBudgetPlan(b *testing.B) {
	for _, shape := range []struct{ nodes, kernels int }{
		{4, 4}, {16, 8}, {64, 16},
	} {
		b.Run(fmt.Sprintf("nodes=%d/kernels=%d", shape.nodes, shape.kernels), func(b *testing.B) {
			rng := rand.New(rand.NewSource(42))
			var items []Item
			for n := 0; n < shape.nodes; n++ {
				for k := 0; k < shape.kernels; k++ {
					items = append(items, Item{
						Node:   fmt.Sprintf("node-%03d", n),
						Kernel: fmt.Sprintf("kern-%03d", k),
						Weight: 1 / float64(shape.kernels),
						Front:  randFront(rng),
					})
				}
			}
			budget := Budget{Total: 0.8 * float64(shape.nodes)}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Solve(items, budget); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
