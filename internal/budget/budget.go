// Package budget turns the per-kernel (speedup, energy) Pareto fronts the
// registry publishes into a fleet-level allocation: given a total power (or
// energy) budget for the whole fleet and every node's observed kernel mix,
// it picks one concrete frequency configuration per (node, kernel) that
// maximizes predicted fleet throughput without exceeding the budget.
//
// The paper's artifact is a per-kernel trade-off curve; a datacenter
// optimizes a global objective over many devices at once. This package is
// the bridge: each (node, kernel) pair contributes a weighted copy of its
// kernel's Pareto front, and the allocator solves a multiple-choice
// knapsack over those fronts.
//
// Three strategies are implemented, and Solve returns the best of them so
// the governor never loses to its own baselines:
//
//   - greedy (the governor's core): start every pair at its cheapest front
//     point, convexify each front into upgrade moves, order all moves by
//     marginal utility Δspeedup/Δcost, and spend the budget down the list
//     (skipping moves that no longer fit). Because each front's move
//     ratios strictly decrease and the scan order is budget-independent,
//     raising the budget can only grow the selected move set — the
//     monotonicity the property tests pin.
//   - uniform-cap: one global per-unit cost cap for every pair, the
//     largest cap the budget affords — the "set every device to the same
//     frequency ceiling" baseline operators use today.
//   - per-device-greedy: each node gets its floor cost plus an equal share
//     of the remaining headroom and runs the greedy allocator alone — the
//     "every device optimizes itself" baseline.
//
// All three respect the budget, select only Pareto-optimal points, and are
// deterministic with stable tie-breaking; Solve's best-of-three therefore
// is too, and its predicted fleet speedup is ≥ both baselines by
// construction and monotone in the budget (a maximum of monotone
// functions). A budget below the fleet's floor cost — the cost of running
// everything at the cheapest front points — is infeasible: the plan
// reports Feasible=false and allocates the floor, mirroring the graceful
// constraint fallbacks of internal/policy.
//
// Costs are normalized to one default-clock node: a node running its whole
// mix at default clocks draws exactly 1.0 power units (speedup 1, energy
// 1), so a fleet of N nodes at default clocks draws N. UnitPower budgets
// cap Σ weight·energy·speedup (energy per unit work × work rate = draw);
// UnitEnergy budgets cap Σ weight·energy (joules per interval at fixed
// delivered work).
package budget

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/policy"
)

// Budget units, accepted by Budget.Unit.
const (
	// UnitPower caps normalized fleet power draw: Σ weight·energy·speedup,
	// in units of one default-clock node. The default.
	UnitPower = "power"
	// UnitEnergy caps normalized energy per fixed work interval:
	// Σ weight·energy, in units of one default-clock node's interval energy.
	UnitEnergy = "energy"
)

// Typed validation errors. Every rejection the package produces wraps one
// of these, so callers (and the fuzz harness) can distinguish bad input
// from bugs.
var (
	// ErrBadBudget rejects a non-finite, negative, or unknown-unit budget.
	ErrBadBudget = errors.New("budget: invalid budget")
	// ErrBadItem rejects an allocation item with a non-finite or
	// non-positive weight, a missing node, or an unusable front.
	ErrBadItem = errors.New("budget: invalid item")
	// ErrBadTable rejects a decision-table document that fails validation
	// (see wire.go).
	ErrBadTable = errors.New("budget: invalid decision table")
)

// Budget is the fleet-wide cap the allocator solves under.
type Budget struct {
	// Total is the cap in normalized units (one default-clock node = 1.0;
	// see the unit constants).
	Total float64 `json:"total"`
	// Unit selects what Total caps: "power" (default for "") or "energy".
	Unit string `json:"unit,omitempty"`
}

// WithDefaults resolves an empty unit to UnitPower.
func (b Budget) WithDefaults() Budget {
	if b.Unit == "" {
		b.Unit = UnitPower
	}
	return b
}

// Validate rejects budgets the allocator cannot solve under: NaN or ±Inf
// totals, negative totals, and unknown units. All rejections wrap
// ErrBadBudget.
func (b Budget) Validate() error {
	if math.IsNaN(b.Total) || math.IsInf(b.Total, 0) {
		return fmt.Errorf("%w: total is not finite", ErrBadBudget)
	}
	if b.Total < 0 {
		return fmt.Errorf("%w: total %g is negative", ErrBadBudget, b.Total)
	}
	switch b.WithDefaults().Unit {
	case UnitPower, UnitEnergy:
		return nil
	}
	return fmt.Errorf("%w: unknown unit %q (valid: %s, %s)", ErrBadBudget, b.Unit, UnitPower, UnitEnergy)
}

// unitCost is a point's per-unit-weight cost under the budget's unit.
// Along a Pareto front (speedup and energy both ascending) it is strictly
// increasing for either unit, which the allocator's floor/upgrade
// structure relies on.
func (b Budget) unitCost(p core.Prediction) float64 {
	if b.WithDefaults().Unit == UnitEnergy {
		return p.NormEnergy
	}
	return p.NormEnergy * p.Speedup
}

// Item is one (node, kernel) allocation problem: how much of the node's
// time the kernel accounts for, and the kernel's published Pareto front.
type Item struct {
	// Node identifies the device the kernel runs on; Kernel labels the
	// kernel (diagnostics and stable ordering — two items of one node must
	// have distinct kernel labels).
	Node   string `json:"node"`
	Kernel string `json:"kernel"`
	// Weight is the fraction of the node's time spent in this kernel. A
	// node's weights conventionally sum to 1 so the node draws 1.0
	// normalized power units at default clocks; the allocator only
	// requires each weight to be finite and positive.
	Weight float64 `json:"weight"`
	// Front is the kernel's predicted Pareto set (registry publish-time
	// fronts or a live sweep). Dominated points, non-finite points,
	// non-positive objectives, and mem-L heuristic points (model
	// extrapolations, excluded exactly as internal/policy excludes them by
	// default) are filtered before solving; an item whose front has no
	// usable point is rejected.
	Front []core.Prediction `json:"front"`
}

// validate rejects items the solver cannot price.
func (it Item) validate() error {
	if it.Node == "" {
		return fmt.Errorf("%w: item %q/%q has no node", ErrBadItem, it.Node, it.Kernel)
	}
	if math.IsNaN(it.Weight) || math.IsInf(it.Weight, 0) || it.Weight <= 0 {
		return fmt.Errorf("%w: item %s/%s weight %g (want finite and positive)", ErrBadItem, it.Node, it.Kernel, it.Weight)
	}
	if len(it.Front) == 0 {
		return fmt.Errorf("%w: item %s/%s has an empty front", ErrBadItem, it.Node, it.Kernel)
	}
	return nil
}

// usable reports whether a front point may be allocated: finite, positive
// objectives, and not the mem-L heuristic extrapolation.
func usable(p core.Prediction) bool {
	for _, v := range [...]float64{p.Speedup, p.NormEnergy} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return false
		}
	}
	return !p.MemLHeuristic
}

// canonFront filters an item's front to its usable, Pareto-optimal points
// in ascending speedup (and therefore ascending energy and unit cost)
// order, deduplicating exact objective ties through the policy package's
// deterministic tie order.
func canonFront(front []core.Prediction) []core.Prediction {
	pts := make([]core.Prediction, 0, len(front))
	for _, p := range front {
		if usable(p) {
			pts = append(pts, p)
		}
	}
	// Sort ascending by speedup, then ascending energy, then the stable
	// config order, so domination is a single linear scan.
	sort.Slice(pts, func(i, j int) bool {
		a, b := pts[i], pts[j]
		if a.Speedup != b.Speedup {
			return a.Speedup < b.Speedup
		}
		if a.NormEnergy != b.NormEnergy {
			return a.NormEnergy < b.NormEnergy
		}
		if a.Config.Mem != b.Config.Mem {
			return a.Config.Mem < b.Config.Mem
		}
		return a.Config.Core < b.Config.Core
	})
	// Keep the non-dominated staircase: scanning from the highest speedup
	// down, a point survives only if its energy is strictly below every
	// survivor with higher speedup, and only the first point of an
	// equal-speedup run (lowest energy, then the stable config order)
	// survives — the rest are dominated or exact duplicates.
	out := make([]core.Prediction, 0, len(pts))
	minEnergy := math.Inf(1)
	for i := len(pts) - 1; i >= 0; i-- {
		p := pts[i]
		if p.NormEnergy >= minEnergy {
			continue
		}
		if i > 0 && pts[i-1].Speedup == p.Speedup {
			continue // an equal-speedup predecessor has ≤ energy: dominated
		}
		minEnergy = p.NormEnergy
		out = append(out, p)
	}
	// Reverse into ascending order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Allocation is one (node, kernel) slot of a plan: the front point the
// fleet governor assigned, with its weighted cost and throughput
// contribution.
type Allocation struct {
	// Node and Kernel identify the slot; Weight echoes the item.
	Node   string  `json:"node"`
	Kernel string  `json:"kernel"`
	Weight float64 `json:"weight"`
	// Chosen is the assigned Pareto point; Chosen.Config is the frequency
	// configuration the node should apply while running this kernel.
	Chosen core.Prediction `json:"chosen"`
	// Cost is the slot's contribution to the budgeted total
	// (weight × unit cost); Throughput its contribution to fleet speedup
	// (weight × speedup).
	Cost       float64 `json:"cost"`
	Throughput float64 `json:"throughput"`
}

// Decision renders the allocation as the policy layer's decision shape, so
// downstream consumers (agents, operators) see the same contract /select
// produces. The pseudo-policy name "budget" marks fleet-governed choices.
func (a Allocation) Decision(feasible bool) policy.Decision {
	d := policy.Decision{
		Policy:     policy.Spec{Name: PolicyName},
		Chosen:     a.Chosen,
		Feasible:   feasible,
		Candidates: 1,
	}
	if !feasible {
		d.Fallback = "fleet budget below floor cost; allocated the cheapest front point"
	}
	return d
}

// PolicyName is the pseudo-policy name stamped on decisions emitted by the
// fleet budget governor (it is not a policy.Builtins entry: the choice is
// made fleet-wide, not per kernel).
const PolicyName = "budget"

// Strategy names, recorded on Plan.Strategy.
const (
	StrategyGreedy    = "greedy"
	StrategyUniform   = "uniform-cap"
	StrategyPerDevice = "per-device-greedy"
)

// Plan is a solved fleet allocation.
type Plan struct {
	// Budget echoes the solved-under budget (defaults resolved).
	Budget Budget `json:"budget"`
	// Strategy names the arm that produced the winning allocation
	// (Solve) or the single arm that ran (the baseline solvers).
	Strategy string `json:"strategy"`
	// Feasible is false when even the floor allocation — every pair at its
	// cheapest usable front point — exceeds the budget; the floor is
	// allocated anyway so nodes always have a concrete table.
	Feasible bool `json:"feasible"`
	// FleetSpeedup is the predicted fleet throughput Σ weight·speedup —
	// the allocator's objective. DefaultSpeedup is the same sum at default
	// clocks (= Σ weight), the "no capping" reference.
	FleetSpeedup   float64 `json:"fleet_speedup"`
	DefaultSpeedup float64 `json:"default_speedup"`
	// Cost is the plan's budgeted total (Σ allocation cost) in the
	// budget's unit; FloorCost the cheapest possible total.
	Cost      float64 `json:"cost"`
	FloorCost float64 `json:"floor_cost"`
	// FleetPower and FleetEnergy report both normalized totals regardless
	// of which one the budget capped: Σ w·e·s and Σ w·e.
	FleetPower  float64 `json:"fleet_power"`
	FleetEnergy float64 `json:"fleet_energy"`
	// Allocations lists every (node, kernel) slot, sorted by node then
	// kernel for deterministic output.
	Allocations []Allocation `json:"allocations"`
}

// item is the solver's internal, canonicalized form of one Item.
type item struct {
	node, kernel string
	weight       float64
	front        []core.Prediction // canonical: usable, Pareto, ascending
	costs        []float64         // weighted cost per front point
	chosen       int               // index into front
	frozen       bool              // greedy: a skipped move freezes the item
}

// move is one convex-hull upgrade step of one item: jump from front point
// `from` to `to`, paying cost for gain.
type move struct {
	item     int
	from, to int
	cost     float64 // weighted Δcost
	gain     float64 // weighted Δspeedup
	ratio    float64 // Δspeedup/Δcost (weight cancels)
}

// prepare validates and canonicalizes the items, sorted by (node, kernel)
// so every downstream result is independent of input order. Duplicate
// (node, kernel) labels are rejected: the caller's mix must merge weights
// first, or the plan would carry two conflicting decisions for one slot.
func prepare(items []Item, b Budget) ([]item, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	out := make([]item, 0, len(items))
	for _, it := range items {
		if err := it.validate(); err != nil {
			return nil, err
		}
		front := canonFront(it.Front)
		if len(front) == 0 {
			return nil, fmt.Errorf("%w: item %s/%s has no usable front point (all dominated, non-finite, or heuristic)",
				ErrBadItem, it.Node, it.Kernel)
		}
		costs := make([]float64, len(front))
		for i, p := range front {
			costs[i] = it.Weight * b.unitCost(p)
		}
		out = append(out, item{
			node: it.Node, kernel: it.Kernel, weight: it.Weight,
			front: front, costs: costs,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].node != out[j].node {
			return out[i].node < out[j].node
		}
		return out[i].kernel < out[j].kernel
	})
	for i := 1; i < len(out); i++ {
		if out[i].node == out[i-1].node && out[i].kernel == out[i-1].kernel {
			return nil, fmt.Errorf("%w: duplicate item %s/%s (merge mix weights before solving)",
				ErrBadItem, out[i].node, out[i].kernel)
		}
	}
	return out, nil
}

// hullMoves builds the item's upgrade sequence as the concave majorant of
// its (cost, speedup) staircase: from each point, the next move jumps to
// the later point with the highest Δspeedup/Δcost (ties to the farthest),
// so ratios strictly decrease along the sequence.
func hullMoves(idx int, it *item) []move {
	var out []move
	i := 0
	for i < len(it.front)-1 {
		bestJ, bestRatio := -1, math.Inf(-1)
		for j := i + 1; j < len(it.front); j++ {
			dc := it.costs[j] - it.costs[i]
			ds := it.weight * (it.front[j].Speedup - it.front[i].Speedup)
			// Canonical fronts have strictly increasing cost, so dc > 0
			// mathematically; if both deltas underflow to 0 the move is
			// treated as free so the 0/0 NaN cannot poison the sort order.
			r := ds / dc
			if math.IsNaN(r) {
				r = math.Inf(1)
			}
			if r > bestRatio || (r == bestRatio && j > bestJ) {
				bestJ, bestRatio = j, r
			}
		}
		out = append(out, move{
			item: idx, from: i, to: bestJ,
			cost:  it.costs[bestJ] - it.costs[i],
			gain:  it.weight * (it.front[bestJ].Speedup - it.front[i].Speedup),
			ratio: bestRatio,
		})
		i = bestJ
	}
	return out
}

// solveGreedyOn runs the greedy knapsack on prepared items (mutating their
// chosen indices): floor first, then the budget-independent move sequence,
// taking every move that still fits. Items are at their floor on entry.
func solveGreedyOn(items []item, total float64) []item {
	var moves []move
	for i := range items {
		moves = append(moves, hullMoves(i, &items[i])...)
	}
	// The scan order is fixed for every budget: ratio descending, ties by
	// the items' canonical order then move position. Per-item ratios
	// strictly decrease, so sorting keeps each item's moves in sequence.
	sort.Slice(moves, func(a, b int) bool {
		if moves[a].ratio != moves[b].ratio {
			return moves[a].ratio > moves[b].ratio
		}
		if moves[a].item != moves[b].item {
			return moves[a].item < moves[b].item
		}
		return moves[a].from < moves[b].from
	})
	remaining := total
	for i := range items {
		remaining -= items[i].costs[items[i].chosen]
	}
	for _, m := range moves {
		it := &items[m.item]
		if it.frozen || it.chosen != m.from {
			continue
		}
		if m.cost > remaining {
			// A skipped move freezes the item: taking a later move of the
			// same front without its predecessor would be incoherent.
			it.frozen = true
			continue
		}
		remaining -= m.cost
		it.chosen = m.to
	}
	return items
}

// planFrom assembles the Plan for solved items.
func planFrom(items []item, b Budget, strategy string) Plan {
	p := Plan{Budget: b.WithDefaults(), Strategy: strategy, Feasible: true}
	for i := range items {
		it := &items[i]
		chosen := it.front[it.chosen]
		cost := it.costs[it.chosen]
		p.Allocations = append(p.Allocations, Allocation{
			Node: it.node, Kernel: it.kernel, Weight: it.weight,
			Chosen:     chosen,
			Cost:       cost,
			Throughput: it.weight * chosen.Speedup,
		})
		p.FleetSpeedup += it.weight * chosen.Speedup
		p.DefaultSpeedup += it.weight
		p.Cost += cost
		p.FloorCost += it.costs[0]
		p.FleetPower += it.weight * chosen.NormEnergy * chosen.Speedup
		p.FleetEnergy += it.weight * chosen.NormEnergy
	}
	if p.FloorCost > b.Total {
		p.Feasible = false
	}
	return p
}

// SolveGreedy runs the governor's greedy marginal-utility knapsack alone:
// every pair starts at its cheapest front point and upgrade moves are taken
// in global Δspeedup/Δcost order while they fit. Solve wraps this (and the
// two baselines); use the standalone form for experiments that compare the
// arms.
func SolveGreedy(items []Item, b Budget) (Plan, error) {
	prep, err := prepare(items, b)
	if err != nil {
		return Plan{}, err
	}
	return planFrom(solveGreedyOn(prep, b.Total), b, StrategyGreedy), nil
}

// SolveUniform runs the uniform-cap baseline: one global per-unit cost cap
// applies to every (node, kernel) pair — each picks its fastest front
// point at or under the cap (or its floor point when none is) — and the
// cap is the largest value the budget affords. This is "set the whole
// fleet to one frequency ceiling": it cannot trade a cheap kernel's
// headroom for an expensive kernel's speedup.
func SolveUniform(items []Item, b Budget) (Plan, error) {
	prep, err := prepare(items, b)
	if err != nil {
		return Plan{}, err
	}
	// Candidate caps: every distinct unit cost in any front. Scanning them
	// ascending, total cost and fleet speedup are both nondecreasing, so
	// the last affordable cap is the baseline's answer.
	var caps []float64
	for i := range prep {
		for _, p := range prep[i].front {
			caps = append(caps, b.unitCost(p))
		}
	}
	sort.Float64s(caps)
	best := -1.0 // below every unit cost: everything at its floor
	for _, c := range caps {
		if uniformCost(prep, b, c) <= b.Total {
			best = c
		}
	}
	for i := range prep {
		prep[i].chosen = uniformChoice(&prep[i], b, best)
	}
	return planFrom(prep, b, StrategyUniform), nil
}

// uniformChoice is the item's selection under cap c: the highest-speedup
// front point whose unit cost is ≤ c, or the floor point when none is.
func uniformChoice(it *item, b Budget, c float64) int {
	choice := 0
	for j, p := range it.front {
		if b.unitCost(p) <= c {
			choice = j
		}
	}
	return choice
}

// uniformCost totals the fleet cost under cap c.
func uniformCost(items []item, b Budget, c float64) float64 {
	var total float64
	for i := range items {
		total += items[i].costs[uniformChoice(&items[i], b, c)]
	}
	return total
}

// SolvePerDevice runs the per-device-greedy baseline: every node receives
// its own floor cost plus an equal share of the fleet's remaining headroom
// and solves its kernels greedily in isolation. Equal headroom split keeps
// the baseline budget-respecting; what it cannot do is move headroom
// between nodes with unequal marginal utility — exactly the gap the fleet
// governor closes.
func SolvePerDevice(items []Item, b Budget) (Plan, error) {
	prep, err := prepare(items, b)
	if err != nil {
		return Plan{}, err
	}
	// Group the (already canonically sorted) items into per-node runs.
	type span struct{ lo, hi int }
	var nodes []span
	for i := 0; i < len(prep); {
		j := i
		for j < len(prep) && prep[j].node == prep[i].node {
			j++
		}
		nodes = append(nodes, span{i, j})
		i = j
	}
	var floor float64
	for i := range prep {
		floor += prep[i].costs[0]
	}
	headroom := 0.0
	if len(nodes) > 0 && b.Total > floor {
		headroom = (b.Total - floor) / float64(len(nodes))
	}
	for _, sp := range nodes {
		nodeItems := prep[sp.lo:sp.hi]
		nodeBudget := headroom
		for i := range nodeItems {
			nodeBudget += nodeItems[i].costs[0]
		}
		solveGreedyOn(nodeItems, nodeBudget)
	}
	return planFrom(prep, b, StrategyPerDevice), nil
}

// Solve is the fleet budget governor: it runs the greedy knapsack and both
// baselines and returns the best plan by predicted fleet speedup (ties to
// the lower cost, then the fixed greedy → uniform → per-device order). The
// result is therefore never worse than either baseline, deterministic, and
// monotone in the budget; it allocates only Pareto-optimal points and
// respects the budget whenever the budget covers the fleet's floor cost
// (otherwise Feasible=false and the floor is allocated).
func Solve(items []Item, b Budget) (Plan, error) {
	greedy, err := SolveGreedy(items, b)
	if err != nil {
		return Plan{}, err
	}
	uniform, err := SolveUniform(items, b)
	if err != nil {
		return Plan{}, err
	}
	perDev, err := SolvePerDevice(items, b)
	if err != nil {
		return Plan{}, err
	}
	best := greedy
	for _, cand := range []Plan{uniform, perDev} {
		if cand.FleetSpeedup > best.FleetSpeedup ||
			(cand.FleetSpeedup == best.FleetSpeedup && cand.Cost < best.Cost) {
			best = cand
		}
	}
	return best, nil
}
