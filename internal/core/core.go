// Package core implements the paper's contribution: a two-phase predictive
// framework for GPU frequency scaling (Sections 3.1–3.4).
//
// Training phase: the 106 synthetic micro-benchmarks are executed on the
// (simulated) device at ~40 sampled frequency settings each; their static
// code features combined with the normalized frequency configuration form
// the 12-dimensional inputs of two ε-SVR models — a linear-kernel model for
// speedup and an RBF-kernel model for normalized energy (C=1000, ε=0.1,
// γ=0.1).
//
// Prediction phase: for a new kernel, only its static features are needed —
// the kernel is never executed. Both models are evaluated at every supported
// frequency configuration of the three highest memory clocks, the paper's
// Algorithm 1 derives the Pareto set, and the mem-L heuristic appends the
// highest-core configuration of the lowest memory clock (Section 4.5).
package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/features"
	"repro/internal/freq"
	"repro/internal/gpu"
	"repro/internal/measure"
	"repro/internal/pareto"
	"repro/internal/svm"
)

// Options configures training. Zero values select the paper's setup.
type Options struct {
	// SettingsPerKernel is the number of sampled frequency settings per
	// micro-benchmark (paper: 40).
	SettingsPerKernel int
	// SpeedupKernel and EnergyKernel override the SVR kernels (paper:
	// linear for speedup, RBF γ=0.1 for energy).
	SpeedupKernel svm.Kernel
	EnergyKernel  svm.Kernel
	// Params are the shared SVR hyper-parameters (paper: C=1000, ε=0.1).
	Params svm.Params
}

// WithDefaults resolves zero values to the paper's setup.
func (o Options) WithDefaults() Options {
	if o.SettingsPerKernel <= 0 {
		o.SettingsPerKernel = 40
	}
	if o.SpeedupKernel == nil {
		o.SpeedupKernel = svm.Linear{}
	}
	if o.EnergyKernel == nil {
		// The paper states γ=0.1 for its feature scaling; on this
		// substrate's feature distribution the equivalent smoothness is
		// γ=4 (see the Ablation benchmarks, which sweep γ including the
		// paper's value).
		o.EnergyKernel = svm.RBF{Gamma: 4}
	}
	if o.Params.C == 0 {
		o.Params = svm.Params{C: 1000, Epsilon: 0.1}
	}
	return o
}

// Sample is one training observation: a kernel execution at a frequency
// setting with its measured objectives.
type Sample struct {
	Kernel     string
	Config     freq.Config
	Vector     features.Vector
	Speedup    float64
	NormEnergy float64
}

// TrainingKernel couples a kernel's static features with its execution
// profile; internal/synth benchmarks satisfy it via Adapt.
type TrainingKernel struct {
	Name     string
	Features features.Static
	Profile  gpu.KernelProfile
}

// SampleKernel executes one training kernel at the given frequency settings
// and returns its supervised samples (the per-kernel unit of training-phase
// steps 1–4 of Fig. 2). It is the shared primitive under BuildTrainingSet
// and the engine's worker pool: each call measures a baseline first, then
// every setting, on whatever harness it is handed.
func SampleKernel(h *measure.Harness, k TrainingKernel, settings []freq.Config) ([]Sample, error) {
	base, err := h.Baseline(k.Profile)
	if err != nil {
		return nil, fmt.Errorf("core: baseline for %s: %w", k.Name, err)
	}
	out := make([]Sample, 0, len(settings))
	for _, cfg := range settings {
		rel, err := h.MeasureRelative(k.Profile, cfg, base)
		if err != nil {
			return nil, fmt.Errorf("core: measuring %s at %v: %w", k.Name, cfg, err)
		}
		out = append(out, Sample{
			Kernel:     k.Name,
			Config:     rel.Config,
			Vector:     features.Combine(k.Features, rel.Config),
			Speedup:    rel.Speedup,
			NormEnergy: rel.NormEnergy,
		})
	}
	return out, nil
}

// TrainingSettings returns the sampled frequency settings used per
// micro-benchmark for the harness's device.
func TrainingSettings(h *measure.Harness, opt Options) []freq.Config {
	opt = opt.WithDefaults()
	return h.Device().Sim().Ladder.TrainingSample(opt.SettingsPerKernel)
}

// BuildTrainingSet executes every training kernel at the sampled frequency
// settings and assembles the supervised training set (training-phase steps
// 1–4 of Fig. 2). This is the sequential reference path; the concurrent
// engine (internal/engine) shards the same SampleKernel unit across a
// worker pool.
func BuildTrainingSet(h *measure.Harness, kernels []TrainingKernel, opt Options) ([]Sample, error) {
	settings := TrainingSettings(h, opt)
	var out []Sample
	for _, k := range kernels {
		ks, err := SampleKernel(h, k, settings)
		if err != nil {
			return nil, err
		}
		out = append(out, ks...)
	}
	return out, nil
}

// DesignRows lays the samples' input vectors out as rows backed by one
// contiguous allocation — the shape the SVR solver's flat design matrix
// copies from, and a single allocation instead of one per sample.
func DesignRows(samples []Sample) [][]float64 {
	flat := make([]float64, len(samples)*features.Dim)
	xs := make([][]float64, len(samples))
	for i := range samples {
		row := flat[i*features.Dim : (i+1)*features.Dim : (i+1)*features.Dim]
		copy(row, samples[i].Vector[:])
		xs[i] = row
	}
	return xs
}

// TrainingMatrix is a training set laid out for the SVR solver: the design
// rows (flat-backed, as DesignRows produces) plus the two target columns.
// Building it is the per-retrain layout cost; callers that refit on a mostly
// unchanged corpus build the base matrix once and extend it per retrain with
// WithExtra, so only the new rows pay for layout.
type TrainingMatrix struct {
	Rows    [][]float64
	Speedup []float64
	Energy  []float64
}

// NewTrainingMatrix lays the samples out as a solver-ready matrix.
func NewTrainingMatrix(samples []Sample) *TrainingMatrix {
	m := &TrainingMatrix{
		Rows:    DesignRows(samples),
		Speedup: make([]float64, len(samples)),
		Energy:  make([]float64, len(samples)),
	}
	for i, s := range samples {
		m.Speedup[i] = s.Speedup
		m.Energy[i] = s.NormEnergy
	}
	return m
}

// WithExtra returns the matrix extended with additional samples. The
// receiver's rows are shared, not copied (they are read-only to the solver),
// and the receiver itself is never modified — full slice expressions pin the
// appends to fresh backing arrays, so a cached base matrix can be extended
// concurrently by independent retrains.
func (m *TrainingMatrix) WithExtra(extra []Sample) *TrainingMatrix {
	if len(extra) == 0 {
		return m
	}
	ex := NewTrainingMatrix(extra)
	return &TrainingMatrix{
		Rows:    append(m.Rows[:len(m.Rows):len(m.Rows)], ex.Rows...),
		Speedup: append(m.Speedup[:len(m.Speedup):len(m.Speedup)], ex.Speedup...),
		Energy:  append(m.Energy[:len(m.Energy):len(m.Energy)], ex.Energy...),
	}
}

// Len reports the number of training rows.
func (m *TrainingMatrix) Len() int { return len(m.Rows) }

// Models holds the two trained single-objective models.
type Models struct {
	Speedup *svm.Model
	Energy  *svm.Model
}

// Train fits the speedup and normalized-energy SVR models on the training
// set (training-phase steps 5–6 of Fig. 2).
func Train(samples []Sample, opt Options) (*Models, error) {
	return TrainWarm(samples, opt, nil)
}

// TrainWarm is Train with an optional warm start: when prior is non-nil,
// each fit is seeded from the corresponding prior model via
// svm.Params.WarmStart, which re-matches prior support vectors against the
// new design rows by bit-exact identity. On the adaptation workload — an
// unchanged synthetic corpus with a few observation rows folded in — the
// seeded solve converges orders of magnitude faster than a cold fit and, on
// an identical corpus, reproduces the prior models bit-for-bit.
func TrainWarm(samples []Sample, opt Options, prior *Models) (*Models, error) {
	opt = opt.WithDefaults()
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	return TrainMatrix(NewTrainingMatrix(samples), opt, prior)
}

// TrainMatrix fits both models on a prebuilt matrix. It is the sequential
// reference path under Train and TrainWarm; the engine's FitMatrix runs the
// same two fits concurrently.
func TrainMatrix(m *TrainingMatrix, opt Options, prior *Models) (*Models, error) {
	opt = opt.WithDefaults()
	if m.Len() == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	ps, pe := opt.Params, opt.Params
	if prior != nil {
		ps.WarmStart = prior.Speedup
		pe.WarmStart = prior.Energy
	}
	sm, err := svm.Train(m.Rows, m.Speedup, opt.SpeedupKernel, ps)
	if err != nil {
		return nil, fmt.Errorf("core: training speedup model: %w", err)
	}
	em, err := svm.Train(m.Rows, m.Energy, opt.EnergyKernel, pe)
	if err != nil {
		return nil, fmt.Errorf("core: training energy model: %w", err)
	}
	return &Models{Speedup: sm, Energy: em}, nil
}

// ResidualRMSE evaluates trained models back on a supervised sample set
// and returns the fractional root-mean-square residual per objective
// (0.05 = 5 percentage points). Recorded in snapshot manifests at training
// time, it is the baseline the adaptation loop's drift detector compares
// live prediction error against. Empty input returns zeros.
func ResidualRMSE(m *Models, samples []Sample) (speedup, energy float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	var ss, se float64
	for _, s := range samples {
		v := s.Vector.Slice()
		ds := m.Speedup.Predict(v) - s.Speedup
		de := m.Energy.Predict(v) - s.NormEnergy
		ss += ds * ds
		se += de * de
	}
	n := float64(len(samples))
	return math.Sqrt(ss / n), math.Sqrt(se / n)
}

// ResidualRMSEOn is ResidualRMSE over a prebuilt matrix: the same
// fractional RMS residual per objective, without materializing a combined
// sample slice. Empty input returns zeros.
func ResidualRMSEOn(m *Models, tm *TrainingMatrix) (speedup, energy float64) {
	if tm.Len() == 0 {
		return 0, 0
	}
	var ss, se float64
	for i, row := range tm.Rows {
		ds := m.Speedup.Predict(row) - tm.Speedup[i]
		de := m.Energy.Predict(row) - tm.Energy[i]
		ss += ds * ds
		se += de * de
	}
	n := float64(tm.Len())
	return math.Sqrt(ss / n), math.Sqrt(se / n)
}

// Prediction is one predicted kernel execution: a frequency configuration
// with its predicted objectives.
type Prediction struct {
	Config     freq.Config `json:"config"`
	Speedup    float64     `json:"speedup"`
	NormEnergy float64     `json:"norm_energy"`
	// MemLHeuristic marks the configuration appended by the mem-L rule
	// rather than predicted by the models.
	MemLHeuristic bool `json:"mem_l_heuristic,omitempty"`
}

// Predictor evaluates trained models over a device's frequency domain.
type Predictor struct {
	Models *Models
	Ladder *freq.Ladder
}

// NewPredictor binds models to a frequency ladder.
func NewPredictor(m *Models, ladder *freq.Ladder) *Predictor {
	return &Predictor{Models: m, Ladder: ladder}
}

// ModeledMems returns the memory clocks the models are applied to during
// Pareto prediction: all but the lowest (mem-L is excluded and handled by
// the heuristic; Section 4.5).
func (p *Predictor) ModeledMems() []freq.MHz {
	mems := p.Ladder.MemClocks()
	if len(mems) <= 1 {
		return mems
	}
	// MemClocks is descending; drop the last (lowest).
	return mems[:len(mems)-1]
}

// PredictConfig predicts both objectives for one configuration.
func (p *Predictor) PredictConfig(st features.Static, cfg freq.Config) Prediction {
	v := features.Combine(st, cfg).Slice()
	return Prediction{
		Config:     cfg,
		Speedup:    p.Models.Speedup.Predict(v),
		NormEnergy: p.Models.Energy.Predict(v),
	}
}

// PredictAll predicts both objectives at every supported configuration of
// the given memory clocks (nil = the modeled clocks: all but mem-L).
func (p *Predictor) PredictAll(st features.Static, mems []freq.MHz) []Prediction {
	if mems == nil {
		mems = p.ModeledMems()
	}
	var out []Prediction
	for _, m := range mems {
		for _, c := range p.Ladder.CoreClocks(m) {
			out = append(out, p.PredictConfig(st, freq.Config{Mem: m, Core: c}))
		}
	}
	return out
}

// ParetoSet predicts the Pareto-optimal frequency configurations for a
// kernel given only its static features (prediction-phase steps 1–9 of
// Fig. 3): model predictions over the three highest memory clocks, the
// paper's Algorithm 1, plus the mem-L heuristic configuration.
func (p *Predictor) ParetoSet(st features.Static) []Prediction {
	return p.paretoOf(st, p.PredictAll(st, nil))
}

// ParetoSetOver is ParetoSet restricted to the given candidate
// configurations (e.g. the 40-setting evaluation sample the paper uses).
// Lowest-memory-clock candidates are excluded from modeling, as in
// ParetoSet, and replaced by the mem-L heuristic configuration.
func (p *Predictor) ParetoSetOver(st features.Static, cfgs []freq.Config) []Prediction {
	var preds []Prediction
	for _, cfg := range ExcludeMemL(p.Ladder, cfgs) {
		preds = append(preds, p.PredictConfig(st, cfg))
	}
	return p.paretoOf(st, preds)
}

// ExcludeMemL drops lowest-memory-clock candidates when the ladder has more
// than one memory clock — those configurations are handled by the mem-L
// heuristic rather than the models (Section 4.5).
func ExcludeMemL(ladder *freq.Ladder, cfgs []freq.Config) []freq.Config {
	mems := ladder.MemClocks()
	if len(mems) <= 1 {
		return cfgs
	}
	low := mems[len(mems)-1]
	out := make([]freq.Config, 0, len(cfgs))
	for _, cfg := range cfgs {
		if cfg.Mem == low {
			continue
		}
		out = append(out, cfg)
	}
	return out
}

func (p *Predictor) paretoOf(st features.Static, preds []Prediction) []Prediction {
	out := ParetoFront(preds)
	if heur, ok := p.MemLHeuristic(st); ok {
		out = append(out, heur)
	}
	return out
}

// ParetoFront filters predictions down to the Pareto-optimal subset. The
// front is computed with the O(n log n) sort-based algorithm, which returns
// the same set as the paper's Algorithm 1 (pareto.Simple, kept as the
// paper-fidelity reference and checked equivalent in the pareto and core
// tests) ordered by ascending speedup.
func ParetoFront(preds []Prediction) []Prediction {
	pts := make([]pareto.Point, len(preds))
	for i, pr := range preds {
		pts[i] = pareto.Point{Speedup: pr.Speedup, Energy: pr.NormEnergy, ID: i}
	}
	front := pareto.Fast(pts)
	out := make([]Prediction, 0, len(front)+1)
	for _, f := range front {
		out = append(out, preds[f.ID])
	}
	return out
}

// MemLHeuristicConfig returns the configuration the mem-L rule appends: the
// highest-core configuration of the lowest memory clock. ok is false when
// the ladder has a single memory clock (e.g. the P100).
func MemLHeuristicConfig(ladder *freq.Ladder) (freq.Config, bool) {
	mems := ladder.MemClocks()
	if len(mems) <= 1 {
		return freq.Config{}, false
	}
	low := mems[len(mems)-1]
	cores := ladder.CoreClocks(low)
	if len(cores) == 0 {
		return freq.Config{}, false
	}
	return freq.Config{Mem: low, Core: cores[len(cores)-1]}, true
}

// MemLHeuristic returns the highest-core configuration of the lowest memory
// clock, flagged as heuristic, with model-extrapolated objective values
// attached for reference. ok is false when the ladder has a single memory
// clock (e.g. the P100).
func (p *Predictor) MemLHeuristic(st features.Static) (Prediction, bool) {
	cfg, ok := MemLHeuristicConfig(p.Ladder)
	if !ok {
		return Prediction{}, false
	}
	pr := p.PredictConfig(st, cfg)
	pr.MemLHeuristic = true
	return pr, true
}

// PredictSource is the end-to-end prediction entry point: parse OpenCL
// source, extract static features, and predict the Pareto set.
func (p *Predictor) PredictSource(src, kernelName string) ([]Prediction, error) {
	st, err := features.ExtractSource(src, kernelName)
	if err != nil {
		return nil, err
	}
	return p.ParetoSet(st), nil
}

// modelsJSON is the serialized form of Models.
type modelsJSON struct {
	Speedup json.RawMessage `json:"speedup"`
	Energy  json.RawMessage `json:"energy"`
}

// Save writes both models as a single JSON document.
func (m *Models) Save(w io.Writer) error {
	var sb, eb bytes.Buffer
	if err := m.Speedup.Save(&sb); err != nil {
		return err
	}
	if err := m.Energy.Save(&eb); err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(modelsJSON{Speedup: sb.Bytes(), Energy: eb.Bytes()})
}

// Load reads models saved by Save.
func Load(r io.Reader) (*Models, error) {
	var mj modelsJSON
	if err := json.NewDecoder(r).Decode(&mj); err != nil {
		return nil, fmt.Errorf("core: decode models: %w", err)
	}
	sm, err := svm.Load(bytes.NewReader(mj.Speedup))
	if err != nil {
		return nil, fmt.Errorf("core: speedup model: %w", err)
	}
	em, err := svm.Load(bytes.NewReader(mj.Energy))
	if err != nil {
		return nil, fmt.Errorf("core: energy model: %w", err)
	}
	return &Models{Speedup: sm, Energy: em}, nil
}

// SaveFile writes the models to a file path.
func (m *Models) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads models from a file path.
func LoadFile(path string) (*Models, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
