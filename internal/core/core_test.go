package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/features"
	"repro/internal/freq"
	"repro/internal/gpu"
	"repro/internal/measure"
	"repro/internal/nvml"
	"repro/internal/pareto"
	"repro/internal/svm"
	"repro/internal/synth"
)

// Adapt converts synth benchmarks to training kernels.
func adapt(bs []synth.Benchmark) []TrainingKernel {
	out := make([]TrainingKernel, len(bs))
	for i := range bs {
		out[i] = TrainingKernel{
			Name:     bs[i].Name,
			Features: bs[i].Features(),
			Profile:  bs[i].Profile(),
		}
	}
	return out
}

// trainSmall trains on a reduced setup (every 2nd micro-benchmark, 16
// settings) to keep unit tests fast; benches exercise the full 106×40.
func trainSmall(t *testing.T) (*Models, *measure.Harness) {
	t.Helper()
	h := measure.NewHarness(nvml.NewDevice(gpu.TitanX()))
	all := synth.Generate()
	var subset []synth.Benchmark
	for i := range all {
		if i%2 == 0 {
			subset = append(subset, all[i])
		}
	}
	samples, err := BuildTrainingSet(h, adapt(subset), Options{SettingsPerKernel: 16})
	if err != nil {
		t.Fatalf("BuildTrainingSet: %v", err)
	}
	models, err := Train(samples, Options{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return models, h
}

var cachedModels *Models
var cachedHarness *measure.Harness

func sharedModels(t *testing.T) (*Models, *measure.Harness) {
	t.Helper()
	if cachedModels == nil {
		cachedModels, cachedHarness = trainSmall(t)
	}
	return cachedModels, cachedHarness
}

func TestBuildTrainingSetShape(t *testing.T) {
	h := measure.NewHarness(nvml.NewDevice(gpu.TitanX()))
	bs := synth.Generate()[:3]
	samples, err := BuildTrainingSet(h, adapt(bs), Options{SettingsPerKernel: 10})
	if err != nil {
		t.Fatal(err)
	}
	settings := h.Device().Sim().Ladder.TrainingSample(10)
	want := 3 * len(settings)
	if len(samples) != want {
		t.Fatalf("got %d samples, want %d", len(samples), want)
	}
	for _, s := range samples {
		if s.Speedup <= 0 || s.NormEnergy <= 0 {
			t.Errorf("%s@%v: non-positive objectives %v %v", s.Kernel, s.Config, s.Speedup, s.NormEnergy)
		}
		if s.Vector[features.StaticDim] < -0.01 {
			t.Errorf("core frequency feature negative: %v", s.Vector[features.StaticDim])
		}
	}
}

func TestPaperTrainingSetSize(t *testing.T) {
	// Paper: 106 micro-benchmarks x 40 sampled settings = 4240 samples.
	if testing.Short() {
		t.Skip("full training set in -short mode")
	}
	h := measure.NewHarness(nvml.NewDevice(gpu.TitanX()))
	settings := h.Device().Sim().Ladder.TrainingSample(40)
	if len(settings) < 38 || len(settings) > 42 {
		t.Fatalf("sampled %d settings, want ~40", len(settings))
	}
	total := len(settings) * 106
	if total < 4000 || total > 4500 {
		t.Errorf("training size %d, want ~4240", total)
	}
}

func TestTrainedModelsPredictSensibly(t *testing.T) {
	models, h := sharedModels(t)
	pred := NewPredictor(models, h.Device().Sim().Ladder)

	// A compute-heavy unseen kernel: predicted speedup must grow with the
	// core clock at the highest memory clock.
	knnB, err := bench.ByName("k-NN")
	if err != nil {
		t.Fatal(err)
	}
	st := knnB.Features()
	ladder := h.Device().Sim().Ladder
	lo := pred.PredictConfig(st, freq.Config{Mem: freq.MemH, Core: 595})
	mid := pred.PredictConfig(st, freq.Config{Mem: freq.MemH, Core: ladder.NearestCore(freq.MemH, 898)})
	hi := pred.PredictConfig(st, freq.Config{Mem: freq.MemH, Core: 1202})
	if !(lo.Speedup < mid.Speedup && mid.Speedup < hi.Speedup) {
		t.Errorf("predicted speedup not increasing in core clock: %.3f, %.3f, %.3f",
			lo.Speedup, mid.Speedup, hi.Speedup)
	}
	// Around the default configuration the speedup prediction should be
	// near 1 (it is the normalization anchor).
	def := pred.PredictConfig(st, h.Device().Sim().Ladder.Default())
	if math.Abs(def.Speedup-1) > 0.25 {
		t.Errorf("predicted speedup at default = %.3f, want ~1", def.Speedup)
	}
	if math.Abs(def.NormEnergy-1) > 0.25 {
		t.Errorf("predicted energy at default = %.3f, want ~1", def.NormEnergy)
	}
}

func TestSpeedupAccuracyOnUnseenKernels(t *testing.T) {
	// End-to-end accuracy check mirroring Fig. 6: on the high memory
	// clocks the speedup RMSE over the test benchmarks must be small.
	models, h := sharedModels(t)
	pred := NewPredictor(models, h.Device().Sim().Ladder)
	var se []float64
	for _, name := range []string{"k-NN", "MT", "MatrixMultiply", "Blackscholes"} {
		b, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		st := b.Features()
		base, err := h.Baseline(b.Profile())
		if err != nil {
			t.Fatal(err)
		}
		ladder := h.Device().Sim().Ladder
		for _, cfg := range []freq.Config{
			{Mem: freq.MemH, Core: 595},
			{Mem: freq.MemH, Core: ladder.NearestCore(freq.MemH, 898)},
			{Mem: freq.MemH, Core: 1001},
			{Mem: freq.MemH, Core: 1202},
			{Mem: freq.Memh, Core: ladder.NearestCore(freq.Memh, 898)},
		} {
			rel, err := h.MeasureRelative(b.Profile(), cfg, base)
			if err != nil {
				t.Fatal(err)
			}
			p := pred.PredictConfig(st, cfg)
			se = append(se, p.Speedup-rel.Speedup)
		}
	}
	rmse := 0.0
	for _, e := range se {
		rmse += e * e
	}
	rmse = math.Sqrt(rmse / float64(len(se)))
	// Paper reports 6.68% RMSE at mem-H; allow slack for the reduced
	// training subset used in unit tests.
	if rmse > 0.20 {
		t.Errorf("speedup RMSE on unseen kernels = %.3f, want < 0.20", rmse)
	}
}

func TestParetoSetProperties(t *testing.T) {
	models, h := sharedModels(t)
	pred := NewPredictor(models, h.Device().Sim().Ladder)
	b, err := bench.ByName("Convolution")
	if err != nil {
		t.Fatal(err)
	}
	set := pred.ParetoSet(b.Features())
	if len(set) < 2 {
		t.Fatalf("Pareto set has %d points, want several", len(set))
	}
	// Exactly one mem-L heuristic point, and it is the highest mem-L core.
	heurs := 0
	for _, p := range set {
		if p.MemLHeuristic {
			heurs++
			if p.Config.Mem != freq.MemL {
				t.Errorf("heuristic point at mem %d, want %d", p.Config.Mem, freq.MemL)
			}
			cores := h.Device().Sim().Ladder.CoreClocks(freq.MemL)
			if p.Config.Core != cores[len(cores)-1] {
				t.Errorf("heuristic core = %d, want last mem-L core %d",
					p.Config.Core, cores[len(cores)-1])
			}
		} else if p.Config.Mem == freq.MemL {
			t.Errorf("non-heuristic mem-L point %v in predicted set", p.Config)
		}
	}
	if heurs != 1 {
		t.Errorf("%d heuristic points, want 1", heurs)
	}
	// Model-predicted members must be mutually non-dominated.
	for i, a := range set {
		if a.MemLHeuristic {
			continue
		}
		for j, b := range set {
			if i == j || b.MemLHeuristic {
				continue
			}
			if a.Speedup >= b.Speedup && a.NormEnergy < b.NormEnergy {
				t.Errorf("set member %v dominates %v", a.Config, b.Config)
			}
		}
	}
}

// TestParetoFrontMatchesSimple keeps core.ParetoFront (which runs the
// O(n log n) pareto.Fast) interchangeable with the paper's Algorithm 1
// (pareto.Simple) over random prediction clouds, including exact duplicates
// and tied objectives.
func TestParetoFrontMatchesSimple(t *testing.T) {
	seed := uint64(12345)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>11) / float64(1<<53)
	}
	for trial := 0; trial < 50; trial++ {
		n := 5 + trial*7
		preds := make([]Prediction, n)
		for i := range preds {
			// Quantize some coordinates so ties and duplicates occur.
			s := next()
			e := next()
			if i%3 == 0 {
				s = math.Round(s*8) / 8
				e = math.Round(e*8) / 8
			}
			preds[i] = Prediction{
				Config:     freq.Config{Mem: freq.MHz(i), Core: freq.MHz(i)},
				Speedup:    0.2 + s,
				NormEnergy: 0.6 + e,
			}
		}
		got := ParetoFront(preds)

		pts := make([]pareto.Point, n)
		for i, pr := range preds {
			pts[i] = pareto.Point{Speedup: pr.Speedup, Energy: pr.NormEnergy, ID: i}
		}
		want := pareto.Simple(pts)

		if len(got) != len(want) {
			t.Fatalf("trial %d: front size %d (Fast) vs %d (Simple)", trial, len(got), len(want))
		}
		// Both fronts are sorted by (speedup, energy); compare as multisets
		// of objective pairs so duplicate-point ID order doesn't matter.
		for i := range got {
			if got[i].Speedup != want[i].Speedup || got[i].NormEnergy != want[i].Energy {
				t.Fatalf("trial %d: front[%d] = (%v, %v), Algorithm 1 has (%v, %v)",
					trial, i, got[i].Speedup, got[i].NormEnergy, want[i].Speedup, want[i].Energy)
			}
		}
	}
}

func TestPredictSource(t *testing.T) {
	models, h := sharedModels(t)
	pred := NewPredictor(models, h.Device().Sim().Ladder)
	src := `__kernel void saxpy(__global float* x, __global float* y, float a, int n) {
	    int i = get_global_id(0);
	    if (i < n) { y[i] = a * x[i] + y[i]; }
	}`
	set, err := pred.PredictSource(src, "saxpy")
	if err != nil {
		t.Fatalf("PredictSource: %v", err)
	}
	if len(set) == 0 {
		t.Fatal("empty prediction")
	}
	if _, err := pred.PredictSource("garbage", ""); err == nil {
		t.Error("expected parse error")
	}
}

func TestModelsSaveLoadRoundTrip(t *testing.T) {
	models, h := sharedModels(t)
	var buf bytes.Buffer
	if err := models.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	st, err := features.ExtractSource(`__kernel void k(__global float* o) { o[0] = 1.0f; }`, "")
	if err != nil {
		t.Fatal(err)
	}
	p1 := NewPredictor(models, h.Device().Sim().Ladder)
	p2 := NewPredictor(loaded, h.Device().Sim().Ladder)
	cfg := freq.Config{Mem: freq.MemH, Core: 1001}
	a, b := p1.PredictConfig(st, cfg), p2.PredictConfig(st, cfg)
	if math.Abs(a.Speedup-b.Speedup) > 1e-9 || math.Abs(a.NormEnergy-b.NormEnergy) > 1e-9 {
		t.Errorf("round-trip drift: %+v vs %+v", a, b)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("expected decode error")
	}
	if _, err := Load(strings.NewReader(`{"speedup": {"kernel":{"type":"x"}}, "energy": null}`)); err == nil {
		t.Error("expected kernel error")
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, Options{}); err == nil {
		t.Error("Train(nil) should fail")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.SettingsPerKernel != 40 {
		t.Errorf("SettingsPerKernel = %d, want 40", o.SettingsPerKernel)
	}
	if _, ok := o.SpeedupKernel.(svm.Linear); !ok {
		t.Errorf("speedup kernel = %v, want linear", o.SpeedupKernel)
	}
	rbf, ok := o.EnergyKernel.(svm.RBF)
	if !ok || rbf.Gamma != 4 {
		t.Errorf("energy kernel = %v, want rbf(4) (substrate-calibrated)", o.EnergyKernel)
	}
	if o.Params.C != 1000 || o.Params.Epsilon != 0.1 {
		t.Errorf("params = %+v, want C=1000 eps=0.1", o.Params)
	}
}

func TestP100PredictorNoHeuristic(t *testing.T) {
	// On a single-memory-clock device the mem-L heuristic must not fire.
	models, _ := sharedModels(t)
	pred := NewPredictor(models, freq.P100())
	st, err := features.ExtractSource(`__kernel void k(__global float* o) { o[0] = 1.0f; }`, "")
	if err != nil {
		t.Fatal(err)
	}
	set := pred.ParetoSet(st)
	for _, p := range set {
		if p.MemLHeuristic {
			t.Error("heuristic point on single-memory-clock device")
		}
	}
}

func TestResidualRMSE(t *testing.T) {
	// Empty input is defined as zero.
	models, h := sharedModels(t)
	if s, e := ResidualRMSE(models, nil); s != 0 || e != 0 {
		t.Errorf("ResidualRMSE(nil) = (%g, %g), want zeros", s, e)
	}
	// On its own training distribution the residuals are positive (the
	// ε-tube admits errors) but bounded well below the prediction range.
	bs := synth.Generate()[:4]
	samples, err := BuildTrainingSet(h.Clone(), adapt(bs), Options{SettingsPerKernel: 10})
	if err != nil {
		t.Fatal(err)
	}
	s, e := ResidualRMSE(models, samples)
	if s <= 0 || e <= 0 {
		t.Errorf("residuals = (%g, %g), want positive", s, e)
	}
	if s > 0.5 || e > 0.5 {
		t.Errorf("residuals = (%g, %g), implausibly large", s, e)
	}
}
