// Package freq models the multi-domain frequency configuration space of a
// DVFS-capable GPU: the discrete ladders of memory and core (graphics)
// clocks, which core clocks are actually tunable for each memory clock, the
// default configuration used as the baseline for speedup and normalized
// energy, and the linear [0,1] normalization used to turn a configuration
// into model features.
//
// The tables mirror the NVIDIA GTX Titan X (Maxwell) and Tesla P100 setups
// described in Section 4.1 of Fan, Cosenza, Juurlink, "Predictable GPUs
// Frequency Scaling for Energy and Performance" (ICPP 2019): four memory
// clocks on the Titan X (405, 810, 3304, 3505 MHz, labeled L, l, h, H), a
// single memory clock on the P100, and per-memory core-clock lists with very
// different cardinalities (6 / 71 / 50 / 50). Core clocks requested above
// 1202 MHz are accepted by the management API but silently clamped, which
// this package reproduces (see Ladder.Clamp and Claimed).
package freq

import (
	"fmt"
	"sort"
)

// MHz is a clock frequency in megahertz. Clock ladders are discrete, so an
// integer representation is exact.
type MHz int

// Config is one (memory clock, core clock) frequency configuration.
type Config struct {
	Mem  MHz `json:"mem"`
	Core MHz `json:"core"`
}

// String renders the configuration as "mem@core", e.g. "3505@1001".
func (c Config) String() string { return fmt.Sprintf("%d@%d", c.Mem, c.Core) }

// MemLabel names the Titan X memory clocks as in the paper: H, h, l, L.
// Unknown clocks map to their numeric value.
func MemLabel(m MHz) string {
	switch m {
	case MemH:
		return "Mem-H"
	case Memh:
		return "Mem-h"
	case Meml:
		return "Mem-l"
	case MemL:
		return "Mem-L"
	}
	return fmt.Sprintf("Mem-%d", m)
}

// Titan X memory clocks (MHz), labeled as in the paper.
const (
	MemL MHz = 405  // lowest memory clock: only 6 core clocks supported
	Meml MHz = 810  // low memory clock: 71 core clocks
	Memh MHz = 3304 // high memory clock: 50 core clocks
	MemH MHz = 3505 // highest (default) memory clock: 50 core clocks
)

// Core-domain landmarks (MHz) used by the paper.
const (
	CoreMin     MHz = 135  // lowest core clock in any ladder
	CoreNormMax MHz = 1189 // top of the paper's [135, 1189] normalization interval
	CoreClamp   MHz = 1202 // highest core clock the hardware actually applies
	CoreMax     MHz = 1392 // highest core clock NVML claims to support
	CoreDefault MHz = 1001 // Titan X default core clock (auto-boost disabled)
)

// NormBounds is the linear normalization interval for one frequency domain.
type NormBounds struct {
	Lo, Hi MHz
}

// Normalize maps f linearly into [0,1] over the bounds, without clamping:
// values outside the interval extrapolate, mirroring the paper's plain
// linear mapping.
func (b NormBounds) Normalize(f MHz) float64 {
	return float64(f-b.Lo) / float64(b.Hi-b.Lo)
}

// Paper normalization intervals: core [135, 1189], memory [405, 3505].
var (
	CoreBounds = NormBounds{Lo: CoreMin, Hi: CoreNormMax}
	MemBounds  = NormBounds{Lo: MemL, Hi: MemH}
)

// Normalized returns the (coreNorm, memNorm) feature pair of a configuration
// using the paper's normalization intervals.
func (c Config) Normalized() (core, mem float64) {
	return CoreBounds.Normalize(c.Core), MemBounds.Normalize(c.Mem)
}

// Ladder is the set of frequency configurations supported by one device:
// for each memory clock, the list of core clocks that can actually be
// applied, plus the list the management library claims to support (a
// superset on the Titan X: requests above the clamp are accepted but
// silently applied as the clamp frequency).
type Ladder struct {
	name    string
	mems    []MHz           // descending (H first), matching NVML order
	actual  map[MHz][]MHz   // memory clock -> ascending core clocks actually applied
	claimed map[MHz][]MHz   // memory clock -> ascending core clocks claimed by NVML
	def     Config          // default configuration (auto-boost disabled)
	clamp   MHz             // requests above this are applied as this (0: none)
	clamped map[MHz]bool    // memory clocks subject to the clamp quirk
	index   map[Config]bool // actual membership
}

// Name reports the device name the ladder describes.
func (l *Ladder) Name() string { return l.name }

// Default returns the default (baseline) configuration.
func (l *Ladder) Default() Config { return l.def }

// MemClocks returns the supported memory clocks in NVML order (descending).
func (l *Ladder) MemClocks() []MHz { return append([]MHz(nil), l.mems...) }

// CoreClocks returns the core clocks actually applied for the given memory
// clock, ascending. The returned slice is a copy.
func (l *Ladder) CoreClocks(mem MHz) []MHz {
	return append([]MHz(nil), l.actual[mem]...)
}

// ClaimedCoreClocks returns the core clocks the management library claims to
// support for the given memory clock, ascending. On the Titan X this is a
// superset of CoreClocks for mem-l/h/H: entries above 1202 MHz are claimed
// but clamp to 1202 MHz when applied.
func (l *Ladder) ClaimedCoreClocks(mem MHz) []MHz {
	return append([]MHz(nil), l.claimed[mem]...)
}

// Supported reports whether the configuration can actually be applied
// (i.e. setting it results in exactly those clocks).
func (l *Ladder) Supported(c Config) bool { return l.index[c] }

// Clamp maps a requested configuration to the configuration the hardware
// actually applies, reproducing the Titan X quirk: for clamped memory
// clocks, core requests above the clamp frequency are applied as the clamp
// frequency. Requests for unknown clocks are returned unchanged; use
// Supported to validate.
func (l *Ladder) Clamp(c Config) Config {
	if l.clamp != 0 && l.clamped[c.Mem] && c.Core > l.clamp {
		c.Core = l.clamp
	}
	return c
}

// Configs returns every actually-applicable configuration, ordered by
// descending memory clock then ascending core clock.
func (l *Ladder) Configs() []Config {
	var out []Config
	for _, m := range l.mems {
		for _, c := range l.actual[m] {
			out = append(out, Config{Mem: m, Core: c})
		}
	}
	return out
}

// NumConfigs returns the number of actually-applicable configurations.
func (l *Ladder) NumConfigs() int {
	n := 0
	for _, cs := range l.actual {
		n += len(cs)
	}
	return n
}

// NearestCore snaps a core frequency to the closest actually-supported core
// clock for the given memory clock. It panics if the memory clock is not in
// the ladder (programming error: memory clocks are a tiny fixed set).
func (l *Ladder) NearestCore(mem MHz, core MHz) MHz {
	cs := l.actual[mem]
	if len(cs) == 0 {
		panic(fmt.Sprintf("freq: memory clock %d MHz not in ladder %s", mem, l.name))
	}
	i := sort.Search(len(cs), func(i int) bool { return cs[i] >= core })
	if i == 0 {
		return cs[0]
	}
	if i == len(cs) {
		return cs[len(cs)-1]
	}
	if cs[i]-core < core-cs[i-1] {
		return cs[i]
	}
	return cs[i-1]
}

// ascending returns n evenly spaced MHz values from lo to hi inclusive.
func ascending(lo, hi MHz, n int) []MHz {
	if n == 1 {
		return []MHz{lo}
	}
	out := make([]MHz, n)
	span := float64(hi - lo)
	for i := 0; i < n; i++ {
		out[i] = lo + MHz(span*float64(i)/float64(n-1)+0.5)
	}
	out[n-1] = hi
	return out
}

// snap replaces, for each anchor within the slice's range, the nearest
// element by the anchor, preserving ascending order and uniqueness. It is
// used to force paper-named clocks (1001, 1189, ...) onto the synthetic
// evenly-spaced ladder.
func snap(vals []MHz, anchors ...MHz) []MHz {
	for _, a := range anchors {
		if len(vals) == 0 || a < vals[0] || a > vals[len(vals)-1] {
			continue
		}
		best, bd := -1, MHz(1<<30)
		for i, v := range vals {
			d := v - a
			if d < 0 {
				d = -d
			}
			if d < bd {
				best, bd = i, d
			}
		}
		vals[best] = a
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	// Dedupe in place (snapping two neighbours onto one anchor is possible
	// only with pathological anchor sets; keep the ladder well-formed anyway).
	out := vals[:0]
	var prev MHz = -1
	for _, v := range vals {
		if v != prev {
			out = append(out, v)
		}
		prev = v
	}
	return out
}

// TitanX builds the GTX Titan X (Maxwell) ladder used throughout the paper:
//
//	mem-L  405 MHz:  6 core clocks, 135–405 MHz (no clamp quirk: NVML claims
//	                 exactly what it applies)
//	mem-l  810 MHz: 71 core clocks, 135–1202 MHz
//	mem-h 3304 MHz: 50 core clocks, 595–1202 MHz
//	mem-H 3505 MHz: 50 core clocks, 595–1202 MHz
//
// plus, for mem-l/h/H, claimed-but-clamped core clocks up to 1392 MHz.
// Default configuration: 3505 MHz memory, 1001 MHz core.
func TitanX() *Ladder {
	l := &Ladder{
		name:    "NVIDIA GTX Titan X (Maxwell, simulated)",
		mems:    []MHz{MemH, Memh, Meml, MemL},
		actual:  map[MHz][]MHz{},
		claimed: map[MHz][]MHz{},
		def:     Config{Mem: MemH, Core: CoreDefault},
		clamp:   CoreClamp,
		clamped: map[MHz]bool{Meml: true, Memh: true, MemH: true},
	}

	// Gray region: claimed core clocks above the clamp, shared by mem-l/h/H.
	gray := ascending(1217, CoreMax, 13)

	memLCores := ascending(CoreMin, 405, 6)
	memlCores := snap(ascending(CoreMin, CoreClamp, 71), CoreDefault, CoreNormMax)
	hiCores := snap(ascending(595, CoreClamp, 50), 885, 987, CoreDefault, CoreNormMax)

	l.actual[MemL] = memLCores
	l.actual[Meml] = memlCores
	l.actual[Memh] = append([]MHz(nil), hiCores...)
	l.actual[MemH] = append([]MHz(nil), hiCores...)

	l.claimed[MemL] = append([]MHz(nil), memLCores...)
	l.claimed[Meml] = append(append([]MHz(nil), memlCores...), gray...)
	l.claimed[Memh] = append(append([]MHz(nil), hiCores...), gray...)
	l.claimed[MemH] = append(append([]MHz(nil), hiCores...), gray...)

	l.buildIndex()
	return l
}

// P100 builds the Tesla P100 ladder: a single 715 MHz memory clock with a
// fine-grained core ladder from 544 to 1328 MHz (Fig. 4b). The P100 has no
// clamp quirk in the modeled range.
func P100() *Ladder {
	l := &Ladder{
		name:    "NVIDIA Tesla P100 (Pascal, simulated)",
		mems:    []MHz{715},
		actual:  map[MHz][]MHz{},
		claimed: map[MHz][]MHz{},
		def:     Config{Mem: 715, Core: 1328},
		clamp:   0,
		clamped: map[MHz]bool{},
	}
	cores := ascending(544, 1328, 60)
	l.actual[715] = cores
	l.claimed[715] = append([]MHz(nil), cores...)
	l.buildIndex()
	return l
}

func (l *Ladder) buildIndex() {
	l.index = make(map[Config]bool)
	for _, m := range l.mems {
		for _, c := range l.actual[m] {
			l.index[Config{Mem: m, Core: c}] = true
		}
	}
	if !l.index[l.def] {
		panic(fmt.Sprintf("freq: default configuration %v not in ladder %s", l.def, l.name))
	}
}

// TrainingSample returns the paper's "40 carefully sampled frequency
// settings": an even spread over each memory clock's core ladder,
// proportional to ladder size, always including each ladder's extremes and
// the default configuration. n is the total number of settings (the paper
// uses 40); if n exceeds the number of actual configurations every
// configuration is returned.
func (l *Ladder) TrainingSample(n int) []Config {
	total := l.NumConfigs()
	if n >= total {
		return l.Configs()
	}
	if n < len(l.mems)*2 {
		n = len(l.mems) * 2 // at least both extremes of every ladder
	}
	var out []Config
	remaining := n
	memsLeft := len(l.mems)
	for _, m := range l.mems {
		cs := l.actual[m]
		// Proportional share, at least 2, never more than the ladder holds.
		share := remaining * len(cs) / maxInt(1, totalFrom(l, memsLeft))
		if share < 2 {
			share = 2
		}
		if share > len(cs) {
			share = len(cs)
		}
		if memsLeft == 1 {
			share = minInt(remaining, len(cs))
		}
		out = append(out, spread(m, cs, share)...)
		remaining -= share
		memsLeft--
	}
	// Force-include the default configuration.
	found := false
	for _, c := range out {
		if c == l.def {
			found = true
			break
		}
	}
	if !found {
		out = append(out, l.def)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Mem != out[j].Mem {
			return out[i].Mem > out[j].Mem
		}
		return out[i].Core < out[j].Core
	})
	return out
}

// totalFrom counts configurations in the last k memory ladders (NVML order).
func totalFrom(l *Ladder, k int) int {
	n := 0
	for i := len(l.mems) - k; i < len(l.mems); i++ {
		if i < 0 {
			continue
		}
		n += len(l.actual[l.mems[i]])
	}
	return n
}

// spread picks k core clocks evenly from cs (which is ascending), always
// including both extremes, and returns them as configs at memory clock m.
func spread(m MHz, cs []MHz, k int) []Config {
	if k <= 0 {
		return nil
	}
	if k == 1 {
		return []Config{{Mem: m, Core: cs[len(cs)-1]}}
	}
	if k >= len(cs) {
		out := make([]Config, len(cs))
		for i, c := range cs {
			out[i] = Config{Mem: m, Core: c}
		}
		return out
	}
	out := make([]Config, 0, k)
	seen := map[MHz]bool{}
	for i := 0; i < k; i++ {
		idx := i * (len(cs) - 1) / (k - 1)
		c := cs[idx]
		if !seen[c] {
			seen[c] = true
			out = append(out, Config{Mem: m, Core: c})
		}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
