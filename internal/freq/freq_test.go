package freq

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTitanXMemClocks(t *testing.T) {
	l := TitanX()
	mems := l.MemClocks()
	want := []MHz{3505, 3304, 810, 405}
	if len(mems) != len(want) {
		t.Fatalf("MemClocks() = %v, want %v", mems, want)
	}
	for i := range want {
		if mems[i] != want[i] {
			t.Errorf("MemClocks()[%d] = %d, want %d", i, mems[i], want[i])
		}
	}
}

func TestTitanXCoreCounts(t *testing.T) {
	l := TitanX()
	// Paper, Section 4.1: mem-L supports 6 core clocks, mem-l 71, mem-h and
	// mem-H 50 each.
	cases := []struct {
		mem  MHz
		want int
	}{
		{MemL, 6},
		{Meml, 71},
		{Memh, 50},
		{MemH, 50},
	}
	for _, c := range cases {
		if got := len(l.CoreClocks(c.mem)); got != c.want {
			t.Errorf("len(CoreClocks(%d)) = %d, want %d", c.mem, got, c.want)
		}
	}
	if got := l.NumConfigs(); got != 177 {
		t.Errorf("NumConfigs() = %d, want 177", got)
	}
}

func TestTitanXAnchors(t *testing.T) {
	l := TitanX()
	// Paper-named clocks must exist on the high-memory ladders.
	for _, mem := range []MHz{MemH, Memh} {
		for _, core := range []MHz{885, 987, 1001, 1189, 1202} {
			if !l.Supported(Config{Mem: mem, Core: core}) {
				t.Errorf("config %d@%d not supported", mem, core)
			}
		}
	}
	if !l.Supported(l.Default()) {
		t.Errorf("default config %v not supported", l.Default())
	}
	if l.Default() != (Config{Mem: 3505, Core: 1001}) {
		t.Errorf("Default() = %v, want 3505@1001", l.Default())
	}
}

func TestTitanXMemLRange(t *testing.T) {
	l := TitanX()
	cs := l.CoreClocks(MemL)
	if cs[0] != 135 || cs[len(cs)-1] != 405 {
		t.Errorf("mem-L core range = [%d, %d], want [135, 405]", cs[0], cs[len(cs)-1])
	}
}

func TestClampQuirk(t *testing.T) {
	l := TitanX()
	// Setting a core clock above 1202 MHz for mem-l/h/H actually sets 1202.
	for _, mem := range []MHz{Meml, Memh, MemH} {
		got := l.Clamp(Config{Mem: mem, Core: 1392})
		if got.Core != 1202 {
			t.Errorf("Clamp(%d@1392).Core = %d, want 1202", mem, got.Core)
		}
	}
	// mem-L has no clamp quirk (no claimed clocks above its range).
	got := l.Clamp(Config{Mem: MemL, Core: 405})
	if got.Core != 405 {
		t.Errorf("Clamp(405@405).Core = %d, want 405", got.Core)
	}
	// Below the clamp, configurations pass through unchanged.
	c := Config{Mem: MemH, Core: 1001}
	if l.Clamp(c) != c {
		t.Errorf("Clamp(%v) = %v, want unchanged", c, l.Clamp(c))
	}
}

func TestClampIdempotent(t *testing.T) {
	l := TitanX()
	f := func(memIdx uint8, core uint16) bool {
		mems := l.MemClocks()
		m := mems[int(memIdx)%len(mems)]
		c := Config{Mem: m, Core: MHz(core)}
		once := l.Clamp(c)
		twice := l.Clamp(once)
		return once == twice
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClaimedSuperset(t *testing.T) {
	l := TitanX()
	for _, m := range l.MemClocks() {
		actual := l.CoreClocks(m)
		claimed := l.ClaimedCoreClocks(m)
		if len(claimed) < len(actual) {
			t.Errorf("mem %d: claimed %d < actual %d", m, len(claimed), len(actual))
		}
		set := map[MHz]bool{}
		for _, c := range claimed {
			set[c] = true
		}
		for _, c := range actual {
			if !set[c] {
				t.Errorf("mem %d: actual core %d missing from claimed list", m, c)
			}
		}
	}
	// Gray points exist only above the clamp.
	for _, m := range []MHz{Meml, Memh, MemH} {
		actual := map[MHz]bool{}
		for _, c := range l.CoreClocks(m) {
			actual[c] = true
		}
		grays := 0
		for _, c := range l.ClaimedCoreClocks(m) {
			if !actual[c] {
				grays++
				if c <= CoreClamp {
					t.Errorf("mem %d: gray core %d at or below clamp", m, c)
				}
			}
		}
		if grays == 0 {
			t.Errorf("mem %d: expected claimed-but-clamped gray clocks", m)
		}
	}
}

func TestLaddersSortedUnique(t *testing.T) {
	for _, l := range []*Ladder{TitanX(), P100()} {
		for _, m := range l.MemClocks() {
			for _, cs := range [][]MHz{l.CoreClocks(m), l.ClaimedCoreClocks(m)} {
				for i := 1; i < len(cs); i++ {
					if cs[i] <= cs[i-1] {
						t.Errorf("%s mem %d: core list not strictly ascending at %d: %d <= %d",
							l.Name(), m, i, cs[i], cs[i-1])
					}
				}
			}
		}
	}
}

func TestNormalization(t *testing.T) {
	if got := CoreBounds.Normalize(135); got != 0 {
		t.Errorf("Normalize(135) = %v, want 0", got)
	}
	if got := CoreBounds.Normalize(1189); got != 1 {
		t.Errorf("Normalize(1189) = %v, want 1", got)
	}
	if got := MemBounds.Normalize(405); got != 0 {
		t.Errorf("Normalize(405) = %v, want 0", got)
	}
	if got := MemBounds.Normalize(3505); got != 1 {
		t.Errorf("Normalize(3505) = %v, want 1", got)
	}
	core, mem := (Config{Mem: 3505, Core: 1189}).Normalized()
	if core != 1 || mem != 1 {
		t.Errorf("Normalized() = (%v, %v), want (1, 1)", core, mem)
	}
	// The clamp clock 1202 extrapolates slightly above 1.
	if got := CoreBounds.Normalize(1202); got <= 1 || got > 1.05 {
		t.Errorf("Normalize(1202) = %v, want slightly above 1", got)
	}
}

func TestNormalizeMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		fa, fb := MHz(a), MHz(b)
		if fa > fb {
			fa, fb = fb, fa
		}
		return CoreBounds.Normalize(fa) <= CoreBounds.Normalize(fb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConfigsOrderAndCount(t *testing.T) {
	l := TitanX()
	cfgs := l.Configs()
	if len(cfgs) != l.NumConfigs() {
		t.Fatalf("len(Configs()) = %d, want %d", len(cfgs), l.NumConfigs())
	}
	for i := 1; i < len(cfgs); i++ {
		a, b := cfgs[i-1], cfgs[i]
		if a.Mem == b.Mem && a.Core >= b.Core {
			t.Errorf("Configs() not ascending in core at %d: %v then %v", i, a, b)
		}
		if a.Mem < b.Mem {
			t.Errorf("Configs() not descending in mem at %d: %v then %v", i, a, b)
		}
	}
	for _, c := range cfgs {
		if !l.Supported(c) {
			t.Errorf("Configs() returned unsupported %v", c)
		}
	}
}

func TestTrainingSample(t *testing.T) {
	l := TitanX()
	s := l.TrainingSample(40)
	if len(s) < 38 || len(s) > 42 {
		t.Fatalf("len(TrainingSample(40)) = %d, want ~40", len(s))
	}
	// Must cover every memory clock and include the default configuration.
	mems := map[MHz]int{}
	hasDefault := false
	seen := map[Config]bool{}
	for _, c := range s {
		if !l.Supported(c) {
			t.Errorf("sample contains unsupported config %v", c)
		}
		if seen[c] {
			t.Errorf("sample contains duplicate config %v", c)
		}
		seen[c] = true
		mems[c.Mem]++
		if c == l.Default() {
			hasDefault = true
		}
	}
	for _, m := range l.MemClocks() {
		if mems[m] < 2 {
			t.Errorf("sample has %d configs at mem %d, want >= 2", mems[m], m)
		}
	}
	if !hasDefault {
		t.Error("sample does not include the default configuration")
	}
	// Extremes of each ladder are included.
	for _, m := range l.MemClocks() {
		cs := l.CoreClocks(m)
		lo := Config{Mem: m, Core: cs[0]}
		hi := Config{Mem: m, Core: cs[len(cs)-1]}
		if !seen[lo] || !seen[hi] {
			t.Errorf("sample misses ladder extreme for mem %d (lo present=%v hi present=%v)",
				m, seen[lo], seen[hi])
		}
	}
}

func TestTrainingSampleAllWhenLarge(t *testing.T) {
	l := TitanX()
	s := l.TrainingSample(10_000)
	if len(s) != l.NumConfigs() {
		t.Errorf("TrainingSample(10000) returned %d configs, want all %d", len(s), l.NumConfigs())
	}
}

func TestNearestCore(t *testing.T) {
	l := TitanX()
	cases := []struct {
		mem  MHz
		in   MHz
		want MHz
	}{
		{MemH, 1001, 1001},
		{MemH, 100, 595},
		{MemH, 5000, 1202},
		{MemL, 500, 405},
		{MemL, 10, 135},
	}
	for _, c := range cases {
		if got := l.NearestCore(c.mem, c.in); got != c.want {
			t.Errorf("NearestCore(%d, %d) = %d, want %d", c.mem, c.in, got, c.want)
		}
	}
}

func TestNearestCoreIsNearest(t *testing.T) {
	l := TitanX()
	f := func(memIdx uint8, core uint16) bool {
		mems := l.MemClocks()
		m := mems[int(memIdx)%len(mems)]
		got := l.NearestCore(m, MHz(core))
		gd := math.Abs(float64(got) - float64(core))
		for _, c := range l.CoreClocks(m) {
			if math.Abs(float64(c)-float64(core)) < gd {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestP100(t *testing.T) {
	l := P100()
	mems := l.MemClocks()
	if len(mems) != 1 || mems[0] != 715 {
		t.Fatalf("P100 MemClocks() = %v, want [715]", mems)
	}
	cs := l.CoreClocks(715)
	if len(cs) != 60 {
		t.Errorf("P100 core count = %d, want 60", len(cs))
	}
	if cs[0] != 544 || cs[len(cs)-1] != 1328 {
		t.Errorf("P100 core range = [%d, %d], want [544, 1328]", cs[0], cs[len(cs)-1])
	}
	if !l.Supported(l.Default()) {
		t.Errorf("P100 default %v unsupported", l.Default())
	}
}

func TestMemLabel(t *testing.T) {
	cases := map[MHz]string{
		3505: "Mem-H",
		3304: "Mem-h",
		810:  "Mem-l",
		405:  "Mem-L",
		715:  "Mem-715",
	}
	for m, want := range cases {
		if got := MemLabel(m); got != want {
			t.Errorf("MemLabel(%d) = %q, want %q", m, got, want)
		}
	}
}

func TestConfigString(t *testing.T) {
	c := Config{Mem: 3505, Core: 1001}
	if got := c.String(); got != "3505@1001" {
		t.Errorf("String() = %q, want %q", got, "3505@1001")
	}
}
