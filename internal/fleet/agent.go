package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/adapt"
	"repro/internal/budget"
	"repro/internal/engine"
	"repro/internal/registry"
	"repro/internal/resilience"
)

// DefaultDegradedAfter is how long the control plane must be continuously
// unreachable before the agent flags itself degraded on /healthz.
const DefaultDegradedAfter = 3 * DefaultSyncInterval

// spoolFlushBatch bounds one forwarding RPC during a spool flush.
const spoolFlushBatch = 64

// AgentConfig wires a node agent to its serving stack and its control
// plane. Node, Device, Control, Store, Engine, and Serving are required.
type AgentConfig struct {
	// Node is this agent's unique id within the fleet.
	Node string
	// Addr is the base URL the control plane can push snapshots to
	// ("" disables push; the agent then converges by heartbeat pull only).
	Addr string
	// Device is the GPU profile this agent serves.
	Device string
	// Control is the control plane's base URL.
	Control string
	// Client is the HTTP client for register/observe calls (nil = a
	// default with a 10 s timeout). The fleettest harness injects a
	// fault-injecting transport here.
	Client *http.Client
	// Store is the agent's local snapshot cache — typically memory-mode,
	// matching the "memory-resident serving path" the agent keeps.
	Store *registry.Store
	// Engine supplies the agent's ladder and prediction options; installed
	// models are also set on it so diagnostic paths see them.
	Engine *engine.Engine
	// Serving is the hot-swap holder the agent's read plane serves from.
	Serving *registry.Serving
	// Spool queues observations that fail to forward until the control
	// plane is reachable again (nil = an in-memory spool; cmd/gpufreqd
	// wires a disk-backed one via -spool-dir). Nothing is ever dropped:
	// a failed forward enqueues, a successful sync flushes in order.
	Spool *adapt.Spool
	// Retry is the backoff policy shared by observation forwarding (full
	// Do with retries) and the heartbeat loop (Backoff between failed
	// syncs). The zero value uses the resilience defaults.
	Retry resilience.Retryer
	// DegradedAfter flags the agent degraded once the control plane has
	// been continuously unreachable this long (0 = DefaultDegradedAfter).
	DegradedAfter time.Duration
}

// AgentStatus is the agent's fleet-sync state, reported on /healthz in
// agent mode.
type AgentStatus struct {
	// Node, Device, and Control echo the configuration.
	Node    string `json:"node"`
	Device  string `json:"device"`
	Control string `json:"control"`
	// Version and Hash identify the installed snapshot ("" before the
	// first install).
	Version string `json:"version,omitempty"`
	Hash    string `json:"hash,omitempty"`
	// Bootstrap is set when the installed snapshot came from a
	// cross-device warm start.
	Bootstrap *BootstrapInfo `json:"bootstrap,omitempty"`
	// Syncs counts completed register/heartbeat round trips; Installs
	// counts snapshot installs (heartbeat pulls and pushes alike).
	Syncs    int `json:"syncs"`
	Installs int `json:"installs"`
	// LastSync is when the last heartbeat round trip succeeded.
	LastSync time.Time `json:"last_sync,omitempty"`
	// LastError is the most recent sync failure ("" after a success).
	LastError string `json:"last_error,omitempty"`
	// Plan is the content hash of the installed fleet decision table (""
	// when the control plane has not budgeted this node); PlanEntries its
	// kernel count.
	Plan        string `json:"plan,omitempty"`
	PlanEntries int    `json:"plan_entries,omitempty"`
	// Spool is the forward spool's accounting: SpoolDepth observations are
	// queued awaiting a reachable control plane.
	Spool adapt.SpoolStats `json:"spool"`
	// SyncBackoffSeconds is the jittered wait before the next heartbeat
	// while syncs are failing (0 when healthy — the loop runs on the
	// regular interval).
	SyncBackoffSeconds float64 `json:"sync_backoff_seconds,omitempty"`
	// FailingSince is when the current run of sync failures started (zero
	// when the last sync succeeded); Degraded is set once that run exceeds
	// the configured threshold.
	FailingSince time.Time `json:"failing_since,omitempty"`
	Degraded     bool      `json:"degraded"`
}

// Agent is the node-side half of the fleet: it registers with (and
// heartbeats to) the control plane, installs pushed or pulled snapshot
// documents into its local store and hot-swap holder, and forwards
// locally reported observations upstream. It never trains. All methods
// are safe for concurrent use; installs serialize against each other but
// never block the serving read path (registry.Serving swaps atomically).
type Agent struct {
	cfg AgentConfig

	flushMu sync.Mutex // serializes spool flushes so delivery stays in order

	mu           sync.Mutex
	version      string
	hash         string
	bootstrap    *BootstrapInfo
	table        *budget.DecisionTable // installed fleet decision table
	tableDoc     []byte                // its exact wire document
	planHash     string                // its content hash ("" before install)
	syncs        int
	installs     int
	lastSync     time.Time
	lastError    string
	failingSince time.Time     // start of the current run of sync failures
	backoff      time.Duration // current failure backoff (0 when healthy)
}

// NewAgent validates the configuration and returns an agent; no network
// traffic happens until Sync or Run.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	switch {
	case cfg.Node == "":
		return nil, errors.New("fleet: agent needs a node id")
	case cfg.Device == "":
		return nil, errors.New("fleet: agent needs a device")
	case cfg.Control == "":
		return nil, errors.New("fleet: agent needs a control plane URL")
	case cfg.Store == nil || cfg.Engine == nil || cfg.Serving == nil:
		return nil, errors.New("fleet: agent needs a store, an engine, and a serving holder")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.Spool == nil {
		// Every agent spools: without a directory the queue is in-memory,
		// surviving a partition (though not a process crash).
		cfg.Spool, _ = adapt.OpenSpool("")
	}
	if cfg.DegradedAfter <= 0 {
		cfg.DegradedAfter = DefaultDegradedAfter
	}
	return &Agent{cfg: cfg}, nil
}

// Status reports the agent's sync state, including the degraded-mode
// fields operators alert on: spool depth, current sync backoff, and the
// degraded flag once the control plane has been unreachable past the
// threshold.
func (a *Agent) Status() AgentStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	entries := 0
	if a.table != nil {
		entries = len(a.table.Entries)
	}
	return AgentStatus{
		Node: a.cfg.Node, Device: a.cfg.Device, Control: a.cfg.Control,
		Version: a.version, Hash: a.hash, Bootstrap: a.bootstrap,
		Plan: a.planHash, PlanEntries: entries,
		Syncs: a.syncs, Installs: a.installs,
		LastSync: a.lastSync, LastError: a.lastError,
		Spool:              a.cfg.Spool.Stats(),
		SyncBackoffSeconds: a.backoff.Seconds(),
		FailingSince:       a.failingSince,
		Degraded:           !a.failingSince.IsZero() && time.Since(a.failingSince) >= a.cfg.DegradedAfter,
	}
}

// Sync performs one register/heartbeat round trip: report what is being
// served, install whatever snapshot the control plane hands back, and
// return the response. A device with no published model and no compatible
// bootstrap donor is an explicit error (the registration itself still
// stands and later heartbeats retry) — never a silent cold fit.
func (a *Agent) Sync(ctx context.Context) (RegisterResponse, error) {
	a.mu.Lock()
	req := RegisterRequest{
		Node: a.cfg.Node, Addr: a.cfg.Addr, Device: a.cfg.Device,
		Version: a.version, Hash: a.hash, Plan: a.planHash,
	}
	a.mu.Unlock()

	var resp RegisterResponse
	err := a.postJSON(ctx, "/fleet/register", req, &resp)
	if err != nil {
		a.recordSync(err)
		return RegisterResponse{}, err
	}
	if len(resp.Snapshot) > 0 {
		if _, _, err := a.installDoc(resp.Snapshot, resp.Bootstrap); err != nil {
			err = fmt.Errorf("fleet: installing snapshot from control plane: %w", err)
			a.recordSync(err)
			return resp, err
		}
	}
	if len(resp.Decisions) > 0 {
		if _, _, err := a.InstallTable(resp.Decisions); err != nil {
			err = fmt.Errorf("fleet: installing decision table from control plane: %w", err)
			a.recordSync(err)
			return resp, err
		}
	}
	if resp.BootstrapError != "" && a.Status().Hash == "" {
		err = fmt.Errorf("fleet: device %s has no published model and no bootstrap donor: %s",
			a.cfg.Device, resp.BootstrapError)
		a.recordSync(err)
		return resp, err
	}
	a.recordSync(nil)
	return resp, nil
}

// recordSync updates the sync accounting.
func (a *Agent) recordSync(err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.syncs++
	if err != nil {
		a.lastError = err.Error()
		if a.failingSince.IsZero() {
			a.failingSince = time.Now().UTC()
		}
		return
	}
	a.lastError = ""
	a.failingSince = time.Time{}
	a.lastSync = time.Now().UTC()
}

// Run heartbeats until the context is cancelled. interval <= 0 follows
// the control plane's advertised SyncSeconds (falling back to
// DefaultSyncInterval until the first successful round trip). A failed
// sync is retried on exponential backoff with full jitter instead of the
// regular tick — a whole fleet that lost its control plane reconnects
// spread out, not as a thundering herd — and a successful sync flushes
// the observation spool (the reconnect signal). Cancellation is honored
// both during an in-flight Sync (the request context aborts it) and at
// the loop top, so a post-cancel tick never fires one more sync.
func (a *Agent) Run(ctx context.Context, interval time.Duration) {
	attempt := 0
	for {
		if ctx.Err() != nil {
			return
		}
		resp, err := a.Sync(ctx)
		if ctx.Err() != nil {
			return
		}
		var wait time.Duration
		if err != nil {
			wait = a.cfg.Retry.Backoff(attempt)
			attempt++
		} else {
			attempt = 0
			a.FlushSpool(ctx)
			if wait = interval; wait <= 0 {
				wait = DefaultSyncInterval
				if resp.SyncSeconds > 0 {
					wait = time.Duration(resp.SyncSeconds * float64(time.Second))
				}
			}
		}
		a.setBackoff(err, wait)
		select {
		case <-ctx.Done():
			return
		case <-time.After(wait):
		}
	}
}

// setBackoff records the current failure backoff for Status (0 while
// healthy — the regular interval is pacing, not backoff).
func (a *Agent) setBackoff(err error, wait time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err != nil {
		a.backoff = wait
	} else {
		a.backoff = 0
	}
}

// InstallDoc verifies a snapshot document and hot-swaps serving to it.
// The document is imported into the agent's local store (content hash
// checked — ErrCorrupt on tampering; schema checked — ErrIncompatible on
// mismatch), deserialized, and installed as a predictor over the agent's
// own ladder. Installing the already-serving hash is an idempotent no-op
// (installed=false). A snapshot recorded for a different device (a
// cross-device bootstrap) installs its models but drops its front table:
// fronts are sweeps of the donor's ladder, so the governor falls back to
// live sweeps on this agent's ladder.
func (a *Agent) InstallDoc(doc []byte) (registry.Manifest, bool, error) {
	return a.installDoc(doc, nil)
}

// installDoc is InstallDoc plus bootstrap provenance for Status.
func (a *Agent) installDoc(doc []byte, boot *BootstrapInfo) (registry.Manifest, bool, error) {
	man, err := a.cfg.Store.ImportDoc(doc)
	if err != nil {
		return registry.Manifest{}, false, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if man.Hash == a.hash && a.hash != "" {
		return man, false, nil
	}
	models, fronts, _, err := a.cfg.Store.LoadFull(man.Device, man.Version)
	if err != nil {
		return registry.Manifest{}, false, err
	}
	if man.Device != a.cfg.Device {
		fronts = nil
	}
	ladder := a.cfg.Engine.Harness().Device().Sim().Ladder
	pred := engine.NewPredictor(models, ladder, a.cfg.Engine.Options())
	a.cfg.Engine.SetModels(models)
	a.cfg.Serving.InstallWithFronts(man.Version, pred, fronts)
	a.version, a.hash = man.Version, man.Hash
	if boot != nil {
		b := *boot
		a.bootstrap = &b
	} else if man.Device == a.cfg.Device {
		a.bootstrap = nil
	}
	a.installs++
	return man, true, nil
}

// HandleSnapshot is POST /fleet/snapshot on the agent: the control
// plane's push target. The body is a raw snapshot document; a document
// that fails the content-hash check or the schema check is refused with
// 409 Conflict and the currently serving snapshot keeps serving.
func (a *Agent) HandleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeWireError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	doc, err := io.ReadAll(io.LimitReader(r.Body, maxWireBody))
	if err != nil {
		writeWireError(w, http.StatusBadRequest, fmt.Errorf("reading snapshot: %v", err))
		return
	}
	man, installed, err := a.InstallDoc(doc)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, registry.ErrCorrupt) || errors.Is(err, registry.ErrIncompatible) {
			status = http.StatusConflict
		}
		writeWireError(w, status, err)
		return
	}
	writeWire(w, http.StatusOK, SnapshotResponse{
		Device: man.Device, Version: man.Version, Hash: man.Hash, Installed: installed,
	})
}

// Forward sends a batch of locally reported observations to the control
// plane's aggregator, retrying transient failures with backoff. When
// delivery still fails — or earlier observations are already spooled, in
// which case delivering the new batch first would reorder the stream —
// the batch is enqueued in the spool and delivered by a later flush:
// spooled > 0 (with resp nil) means "accepted locally, queued". An error
// is returned only when the batch could neither be delivered nor spooled.
func (a *Agent) Forward(ctx context.Context, obs []adapt.Observation) (resp *ObserveResponse, spooled int, err error) {
	if a.cfg.Spool.Depth() > 0 {
		if err := a.cfg.Spool.Enqueue(obs...); err != nil {
			return nil, 0, err
		}
		// Opportunistic drain: if the control plane is already back, the
		// queue (including this batch) goes out now instead of waiting for
		// the next heartbeat.
		a.FlushSpool(ctx)
		return nil, len(obs), nil
	}
	r, derr := a.deliver(ctx, obs)
	if derr == nil {
		return r, 0, nil
	}
	if err := a.cfg.Spool.Enqueue(obs...); err != nil {
		return nil, 0, fmt.Errorf("fleet: forward failed (%v) and spooling failed: %w", derr, err)
	}
	return nil, len(obs), nil
}

// FlushSpool delivers queued observations to the control plane, oldest
// first in bounded batches, until the spool drains or a delivery fails.
// Flushes serialize so the stream order is preserved. It returns how many
// observations were delivered.
func (a *Agent) FlushSpool(ctx context.Context) (flushed int) {
	a.flushMu.Lock()
	defer a.flushMu.Unlock()
	for {
		batch := a.cfg.Spool.Pending(spoolFlushBatch)
		if len(batch) == 0 {
			return flushed
		}
		if _, err := a.deliver(ctx, batch); err != nil {
			return flushed
		}
		// Ack only what was delivered; observations enqueued concurrently
		// stay queued for the next round of the loop.
		if err := a.cfg.Spool.Ack(len(batch)); err != nil {
			return flushed
		}
		flushed += len(batch)
	}
}

// deliver is one forwarding RPC under the retry policy.
func (a *Agent) deliver(ctx context.Context, obs []adapt.Observation) (*ObserveResponse, error) {
	req := ObserveRequest{Node: a.cfg.Node, Device: a.cfg.Device, Observations: obs}
	var resp ObserveResponse
	err := a.cfg.Retry.Do(ctx, func(ctx context.Context) error {
		return a.postJSON(ctx, "/fleet/observe", req, &resp)
	})
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// postJSON POSTs v to the control plane and decodes the JSON response
// into out, surfacing the control plane's {"error": ...} body on non-200.
func (a *Agent) postJSON(ctx context.Context, path string, v, out any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	url := strings.TrimSuffix(a.cfg.Control, "/") + path
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	httpResp, err := a.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(httpResp.Body, maxWireBody))
	if err != nil {
		return err
	}
	if httpResp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("fleet: control plane: %s", e.Error)
		}
		return fmt.Errorf("fleet: control plane: %s", httpResp.Status)
	}
	return json.Unmarshal(data, out)
}
