package fleet

import (
	"encoding/json"
	"time"

	"repro/internal/adapt"
	"repro/internal/budget"
)

// RegisterRequest is the body of POST /fleet/register — both the initial
// registration and every subsequent heartbeat. The agent reports what it
// is currently serving (Version/Hash, empty when nothing is installed) so
// the control plane can decide in one round trip whether the agent needs
// the active snapshot.
type RegisterRequest struct {
	// Node is the agent's unique id within the fleet.
	Node string `json:"node"`
	// Addr is the base URL the control plane can reach the agent at for
	// snapshot pushes (e.g. "http://10.0.0.7:8080").
	Addr string `json:"addr"`
	// Device is the GPU profile the agent serves.
	Device string `json:"device"`
	// Version and Hash identify the snapshot the agent currently serves
	// ("" before the first install). Hash is the convergence key: two
	// stores agree on content, not just on version labels.
	Version string `json:"version,omitempty"`
	Hash    string `json:"hash,omitempty"`
	// Plan is the content hash of the fleet decision table the agent
	// currently holds ("" before the first install) — the budget analogue
	// of Hash, so a heartbeat also converges the node's budget allocation.
	Plan string `json:"plan,omitempty"`
}

// BootstrapInfo describes a cross-device warm start: the donor device
// whose active snapshot was handed to an agent whose own device has no
// published model yet.
type BootstrapInfo struct {
	// Donor is the device the snapshot was trained for.
	Donor string `json:"donor"`
	// Version is the donor's active version.
	Version string `json:"version"`
	// Distance is the profile distance between donor and the agent's
	// device (gpu.ProfileDistance).
	Distance float64 `json:"distance"`
}

// RegisterResponse answers a registration/heartbeat. Snapshot carries the
// full registry snapshot document (the ExportDoc/ImportDoc wire format)
// when — and only when — the agent's reported hash differs from what it
// should be serving; an up-to-date agent gets a small acknowledgement.
type RegisterResponse struct {
	// Node and Device echo the registration.
	Node   string `json:"node"`
	Device string `json:"device"`
	// Active is the device's active version at the control plane ("" when
	// the device has no published model yet).
	Active string `json:"active,omitempty"`
	// Snapshot is the snapshot document the agent should install, present
	// only when the agent is stale (or bootstrapping).
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
	// Bootstrap is set when Snapshot came from another device's model
	// because the agent's device has none.
	Bootstrap *BootstrapInfo `json:"bootstrap,omitempty"`
	// BootstrapError explains why no bootstrap donor could be offered when
	// the device has no model — an explicit failure, never a silent cold
	// fit. The registration itself still succeeds: the node is enrolled
	// and will receive the device's first published snapshot.
	BootstrapError string `json:"bootstrap_error,omitempty"`
	// SyncSeconds is the heartbeat interval the control plane asks for.
	SyncSeconds float64 `json:"sync_seconds,omitempty"`
	// Decisions is the node's fleet decision table (the budget.EncodeTable
	// wire document), present only when the agent's reported plan hash
	// differs from the current plan's table for this node.
	Decisions json.RawMessage `json:"decisions,omitempty"`
}

// SnapshotResponse answers a snapshot push (POST /fleet/snapshot on the
// agent).
type SnapshotResponse struct {
	// Device and Version identify the installed snapshot.
	Device  string `json:"device"`
	Version string `json:"version"`
	// Hash is the snapshot's content hash, echoed for convergence checks.
	Hash string `json:"hash"`
	// Installed is false when the agent was already serving this exact
	// snapshot and skipped the reinstall.
	Installed bool `json:"installed"`
}

// ObserveRequest is the body of POST /fleet/observe: a batch of
// observations forwarded by one agent. The control plane stamps each
// observation with the sending node before ingesting it.
type ObserveRequest struct {
	// Node and Device identify the forwarding agent.
	Node   string `json:"node"`
	Device string `json:"device"`
	// Observations are the agent's validated measurements.
	Observations []adapt.Observation `json:"observations"`
}

// ObserveResult is one forwarded observation's ingest outcome.
type ObserveResult struct {
	// Ingest is the adaptation controller's verdict (nil when rejected,
	// with Error explaining why).
	Ingest *adapt.IngestResult `json:"ingest,omitempty"`
	Error  string              `json:"error,omitempty"`
}

// ObserveResponse reports a forwarded batch's outcome plus the device's
// fleet-wide observation-store accounting.
type ObserveResponse struct {
	Device  string           `json:"device"`
	Results []ObserveResult  `json:"results"`
	Store   adapt.StoreStats `json:"store"`
}

// NodeInfo is one registered node as reported by GET /fleet/nodes.
type NodeInfo struct {
	// Node, Device and Addr are the registration identity.
	Node   string `json:"node"`
	Device string `json:"device"`
	Addr   string `json:"addr"`
	// Version and Hash are the snapshot the node last reported (heartbeat)
	// or acknowledged (push).
	Version string `json:"version,omitempty"`
	Hash    string `json:"hash,omitempty"`
	// Synced reports whether the node's hash matches its device's active
	// snapshot (true also when the device has no active snapshot yet).
	Synced bool `json:"synced"`
	// RegisteredAt and LastSeen bound the node's liveness window.
	RegisteredAt time.Time `json:"registered_at"`
	LastSeen     time.Time `json:"last_seen"`
	// Pushes and PushErrors count snapshot pushes attempted to this node;
	// LastError is the most recent push failure ("" after a success).
	Pushes     int    `json:"pushes"`
	PushErrors int    `json:"push_errors"`
	LastError  string `json:"last_error,omitempty"`
	// Breaker is the node's push circuit-breaker state: "closed" (healthy),
	// "open" (pushes suspended after repeated failures) or "half-open"
	// (cool-down elapsed, next push is the probe).
	Breaker string `json:"breaker"`
	// Plan is the content hash of the fleet decision table the node last
	// reported or acknowledged ("" when it holds none).
	Plan string `json:"plan,omitempty"`
}

// NodesResponse is the body of GET /fleet/nodes.
type NodesResponse struct {
	Nodes []NodeInfo `json:"nodes"`
}

// BudgetRequest is the body of POST /fleet/budget. Total set (with an
// optional Unit) installs a new fleet budget and replans; Replan alone
// re-solves under the existing budget (409 when none is set).
type BudgetRequest struct {
	Total  *float64 `json:"total,omitempty"`
	Unit   string   `json:"unit,omitempty"`
	Replan bool     `json:"replan,omitempty"`
}

// BudgetNodeStatus is one node's slice of the fleet budget status.
type BudgetNodeStatus struct {
	// Node and Device identify the agent.
	Node   string `json:"node"`
	Device string `json:"device"`
	// Kernels is how many distinct kernels the node's observed mix holds;
	// UniformMix is true when the plan fell back to the uniform front-table
	// mix because the node had no observations at plan time.
	Kernels    int  `json:"kernels"`
	UniformMix bool `json:"uniform_mix,omitempty"`
	// Hash and Entries describe the node's table in the current plan;
	// Reported is the hash the node last acknowledged, and Synced whether
	// the two agree.
	Hash     string `json:"hash,omitempty"`
	Entries  int    `json:"entries,omitempty"`
	Reported string `json:"reported,omitempty"`
	Synced   bool   `json:"synced"`
	// MixShift is the node's kernel-mix L1 drift since the plan.
	MixShift float64 `json:"mix_shift"`
}

// BudgetStatusResponse is the body of GET /fleet/budget (and the response
// to a successful POST).
type BudgetStatusResponse struct {
	// Set reports whether a fleet budget is installed; Budget echoes it.
	Set    bool           `json:"set"`
	Budget *budget.Budget `json:"budget,omitempty"`
	// Plan is the current allocation (nil before the first replan).
	Plan *budget.Plan `json:"plan,omitempty"`
	// PlannedAt and Replans account for plan freshness.
	PlannedAt time.Time `json:"planned_at,omitempty"`
	Replans   int       `json:"replans"`
	// MixShiftThreshold is the auto-replan trigger; MaxMixShift the largest
	// per-node drift since the plan; Stale whether that drift has crossed
	// the threshold (the next observation batch will replan).
	MixShiftThreshold float64 `json:"mix_shift_threshold"`
	MaxMixShift       float64 `json:"max_mix_shift"`
	Stale             bool    `json:"stale"`
	// Notes lists kernels or nodes the planner had to skip and why.
	Notes []string `json:"notes,omitempty"`
	// Nodes is the per-node delivery and drift state, sorted by node id.
	Nodes []BudgetNodeStatus `json:"nodes,omitempty"`
	// LastPush reports the most recent decision-table fan-out round.
	LastPush *PushReport `json:"last_push,omitempty"`
}

// DecisionsResponse answers a decision-table push (POST /fleet/decisions
// on the agent).
type DecisionsResponse struct {
	// Node, Device and Hash identify the installed table.
	Node   string `json:"node"`
	Device string `json:"device"`
	Hash   string `json:"hash"`
	// Entries is the table's kernel count; Installed is false when the
	// agent already held this exact table.
	Entries   int  `json:"entries"`
	Installed bool `json:"installed"`
}

// PushReport summarizes one fan-out round (POST /fleet/push, or the
// automatic fan-out after an activation).
type PushReport struct {
	// Device is the device the round covered ("" for an all-devices round).
	Device string `json:"device,omitempty"`
	// Targets is how many registered nodes were stale and considered for a
	// push (including any skipped by an open breaker); Pushed how many
	// installed successfully.
	Targets int `json:"targets"`
	Pushed  int `json:"pushed"`
	// Skipped counts stale nodes whose circuit breaker was open: they were
	// not contacted this round and will converge on their next heartbeat or
	// once the breaker's probe succeeds.
	Skipped int `json:"skipped,omitempty"`
	// Errors lists per-node failures as "node: error".
	Errors []string `json:"errors,omitempty"`
}
