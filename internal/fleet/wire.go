package fleet

import (
	"encoding/json"
	"time"

	"repro/internal/adapt"
)

// RegisterRequest is the body of POST /fleet/register — both the initial
// registration and every subsequent heartbeat. The agent reports what it
// is currently serving (Version/Hash, empty when nothing is installed) so
// the control plane can decide in one round trip whether the agent needs
// the active snapshot.
type RegisterRequest struct {
	// Node is the agent's unique id within the fleet.
	Node string `json:"node"`
	// Addr is the base URL the control plane can reach the agent at for
	// snapshot pushes (e.g. "http://10.0.0.7:8080").
	Addr string `json:"addr"`
	// Device is the GPU profile the agent serves.
	Device string `json:"device"`
	// Version and Hash identify the snapshot the agent currently serves
	// ("" before the first install). Hash is the convergence key: two
	// stores agree on content, not just on version labels.
	Version string `json:"version,omitempty"`
	Hash    string `json:"hash,omitempty"`
}

// BootstrapInfo describes a cross-device warm start: the donor device
// whose active snapshot was handed to an agent whose own device has no
// published model yet.
type BootstrapInfo struct {
	// Donor is the device the snapshot was trained for.
	Donor string `json:"donor"`
	// Version is the donor's active version.
	Version string `json:"version"`
	// Distance is the profile distance between donor and the agent's
	// device (gpu.ProfileDistance).
	Distance float64 `json:"distance"`
}

// RegisterResponse answers a registration/heartbeat. Snapshot carries the
// full registry snapshot document (the ExportDoc/ImportDoc wire format)
// when — and only when — the agent's reported hash differs from what it
// should be serving; an up-to-date agent gets a small acknowledgement.
type RegisterResponse struct {
	// Node and Device echo the registration.
	Node   string `json:"node"`
	Device string `json:"device"`
	// Active is the device's active version at the control plane ("" when
	// the device has no published model yet).
	Active string `json:"active,omitempty"`
	// Snapshot is the snapshot document the agent should install, present
	// only when the agent is stale (or bootstrapping).
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
	// Bootstrap is set when Snapshot came from another device's model
	// because the agent's device has none.
	Bootstrap *BootstrapInfo `json:"bootstrap,omitempty"`
	// BootstrapError explains why no bootstrap donor could be offered when
	// the device has no model — an explicit failure, never a silent cold
	// fit. The registration itself still succeeds: the node is enrolled
	// and will receive the device's first published snapshot.
	BootstrapError string `json:"bootstrap_error,omitempty"`
	// SyncSeconds is the heartbeat interval the control plane asks for.
	SyncSeconds float64 `json:"sync_seconds,omitempty"`
}

// SnapshotResponse answers a snapshot push (POST /fleet/snapshot on the
// agent).
type SnapshotResponse struct {
	// Device and Version identify the installed snapshot.
	Device  string `json:"device"`
	Version string `json:"version"`
	// Hash is the snapshot's content hash, echoed for convergence checks.
	Hash string `json:"hash"`
	// Installed is false when the agent was already serving this exact
	// snapshot and skipped the reinstall.
	Installed bool `json:"installed"`
}

// ObserveRequest is the body of POST /fleet/observe: a batch of
// observations forwarded by one agent. The control plane stamps each
// observation with the sending node before ingesting it.
type ObserveRequest struct {
	// Node and Device identify the forwarding agent.
	Node   string `json:"node"`
	Device string `json:"device"`
	// Observations are the agent's validated measurements.
	Observations []adapt.Observation `json:"observations"`
}

// ObserveResult is one forwarded observation's ingest outcome.
type ObserveResult struct {
	// Ingest is the adaptation controller's verdict (nil when rejected,
	// with Error explaining why).
	Ingest *adapt.IngestResult `json:"ingest,omitempty"`
	Error  string              `json:"error,omitempty"`
}

// ObserveResponse reports a forwarded batch's outcome plus the device's
// fleet-wide observation-store accounting.
type ObserveResponse struct {
	Device  string           `json:"device"`
	Results []ObserveResult  `json:"results"`
	Store   adapt.StoreStats `json:"store"`
}

// NodeInfo is one registered node as reported by GET /fleet/nodes.
type NodeInfo struct {
	// Node, Device and Addr are the registration identity.
	Node   string `json:"node"`
	Device string `json:"device"`
	Addr   string `json:"addr"`
	// Version and Hash are the snapshot the node last reported (heartbeat)
	// or acknowledged (push).
	Version string `json:"version,omitempty"`
	Hash    string `json:"hash,omitempty"`
	// Synced reports whether the node's hash matches its device's active
	// snapshot (true also when the device has no active snapshot yet).
	Synced bool `json:"synced"`
	// RegisteredAt and LastSeen bound the node's liveness window.
	RegisteredAt time.Time `json:"registered_at"`
	LastSeen     time.Time `json:"last_seen"`
	// Pushes and PushErrors count snapshot pushes attempted to this node;
	// LastError is the most recent push failure ("" after a success).
	Pushes     int    `json:"pushes"`
	PushErrors int    `json:"push_errors"`
	LastError  string `json:"last_error,omitempty"`
	// Breaker is the node's push circuit-breaker state: "closed" (healthy),
	// "open" (pushes suspended after repeated failures) or "half-open"
	// (cool-down elapsed, next push is the probe).
	Breaker string `json:"breaker"`
}

// NodesResponse is the body of GET /fleet/nodes.
type NodesResponse struct {
	Nodes []NodeInfo `json:"nodes"`
}

// PushReport summarizes one fan-out round (POST /fleet/push, or the
// automatic fan-out after an activation).
type PushReport struct {
	// Device is the device the round covered ("" for an all-devices round).
	Device string `json:"device,omitempty"`
	// Targets is how many registered nodes were stale and considered for a
	// push (including any skipped by an open breaker); Pushed how many
	// installed successfully.
	Targets int `json:"targets"`
	Pushed  int `json:"pushed"`
	// Skipped counts stale nodes whose circuit breaker was open: they were
	// not contacted this round and will converge on their next heartbeat or
	// once the breaker's probe succeeds.
	Skipped int `json:"skipped,omitempty"`
	// Errors lists per-node failures as "node: error".
	Errors []string `json:"errors,omitempty"`
}
