package fleettest

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkFleetPush measures one activation's fan-out latency against
// fleet size: every iteration flips the active snapshot between two
// versions and pushes it to all registered nodes, so each round delivers
// a full snapshot to every agent over real loopback HTTP.
func BenchmarkFleetPush(b *testing.B) {
	for _, nNodes := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", nNodes), func(b *testing.B) {
			ctx := context.Background()
			cl := NewCluster(b, Options{})
			man1 := cl.PublishTrained("titanx", 0)
			man2 := cl.PublishTrained("titanx", 1)
			store := cl.Control.Store()
			for i := 0; i < nNodes; i++ {
				n := cl.AddNode(fmt.Sprintf("n%d", i), "titanx")
				if _, err := n.Agent.Sync(ctx); err != nil {
					b.Fatal(err)
				}
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				man := man1
				if i%2 == 1 {
					man = man2
				}
				if err := store.Activate("titanx", man.Version); err != nil {
					b.Fatal(err)
				}
				report := cl.Control.PushDevice(ctx, "titanx")
				if report.Pushed != nNodes || len(report.Errors) != 0 {
					b.Fatalf("round %d: %+v", i, report)
				}
			}
		})
	}
}
