package fleettest

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/engine"
)

// TestClusterConvergesThroughPartitionAndRestart is the fleet acceptance
// test: three agents and a control plane on real listeners in one
// process. It drives the full lifecycle — initial sync, a publish with
// fan-out, a network partition (the partitioned agent keeps serving the
// old snapshot and misses the push), heal-and-converge, and an agent
// restart (fresh store, fresh serving holder, same identity) — asserting
// after every transition that converged agents serve bit-identically.
func TestClusterConvergesThroughPartitionAndRestart(t *testing.T) {
	ctx := context.Background()
	cl := NewCluster(t, Options{})

	man1 := cl.PublishTrained("titanx", 0)
	n1 := cl.AddNode("n1", "titanx")
	n2 := cl.AddNode("n2", "titanx")
	n3 := cl.AddNode("n3", "titanx")
	all := []*Node{n1, n2, n3}

	// Initial sync: every agent pulls v0001 on registration.
	for _, n := range all {
		if _, err := n.Agent.Sync(ctx); err != nil {
			t.Fatalf("%s initial sync: %v", n.Name, err)
		}
		if got := n.Agent.Status().Hash; got != man1.Hash {
			t.Fatalf("%s installed %.8s, want %.8s", n.Name, got, man1.Hash)
		}
	}
	sig := Signature(t, n1.Serving, 3)
	for _, n := range all[1:] {
		if got := Signature(t, n.Serving, 3); got != sig {
			t.Fatalf("%s does not serve bit-identically to n1 on %s", n.Name, man1.Version)
		}
	}

	// Publish v0002 and fan it out by push.
	man2 := cl.PublishTrained("titanx", 1)
	report := cl.Control.PushDevice(ctx, "titanx")
	if report.Targets != 3 || report.Pushed != 3 || len(report.Errors) != 0 {
		t.Fatalf("v0002 fan-out: %+v", report)
	}
	sig2 := Signature(t, n1.Serving, 3)
	if sig2 == sig {
		t.Fatal("v0002 signature equals v0001 — versions are not distinguishable")
	}
	for _, n := range all {
		if n.Agent.Status().Hash != man2.Hash || Signature(t, n.Serving, 3) != sig2 {
			t.Fatalf("%s did not converge on %s", n.Name, man2.Version)
		}
	}

	// Partition n3 in both directions, then publish v0003.
	cl.Partition(n3)
	man3 := cl.PublishTrained("titanx", 2)
	report = cl.Control.PushDevice(ctx, "titanx")
	if report.Targets != 3 || report.Pushed != 2 || len(report.Errors) != 1 {
		t.Fatalf("fan-out during partition: %+v", report)
	}
	if !strings.Contains(report.Errors[0], "n3") {
		t.Fatalf("fan-out error does not name the partitioned node: %v", report.Errors)
	}
	// The partitioned agent's heartbeat fails too, and it keeps serving
	// the snapshot it has.
	if _, err := n3.Agent.Sync(ctx); err == nil || !errors.Is(err, ErrSevered) {
		t.Fatalf("partitioned heartbeat error = %v, want ErrSevered", err)
	}
	if got := n3.Serving.Version(); got != man2.Version {
		t.Fatalf("partitioned agent serves %q, want to keep %q", got, man2.Version)
	}
	sig3 := Signature(t, n1.Serving, 3)
	if n2sig := Signature(t, n2.Serving, 3); n2sig != sig3 {
		t.Fatal("n1 and n2 diverged on v0003")
	}

	// Heal: the next heartbeat pulls the missed snapshot — convergence
	// needs no extra protocol.
	cl.Heal(n3)
	if err := cl.WaitSynced(ctx, man3.Hash, n3); err != nil {
		t.Fatal(err)
	}
	if got := Signature(t, n3.Serving, 3); got != sig3 {
		t.Fatal("healed agent does not serve bit-identically")
	}

	// Restart n2: the fresh process has an empty store and serving holder
	// but the same fleet identity. It must re-register (its address
	// changed), receive the current snapshot, and serve bit-identically.
	n2 = cl.RestartNode("n2")
	if n2.Serving.Version() != "" {
		t.Fatal("restarted agent retained serving state")
	}
	if _, err := n2.Agent.Sync(ctx); err != nil {
		t.Fatalf("restarted agent sync: %v", err)
	}
	st := n2.Agent.Status()
	if st.Hash != man3.Hash || st.Installs != 1 {
		t.Fatalf("restarted agent status: %+v", st)
	}
	if got := Signature(t, n2.Serving, 3); got != sig3 {
		t.Fatal("restarted agent does not serve bit-identically")
	}

	// The control plane's directory reflects the new address and the
	// converged fleet. The directory records what each node last
	// *reported*, so the restarted agent's install becomes visible on its
	// next heartbeat.
	if _, err := n2.Agent.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	nodes := cl.Control.Nodes()
	if len(nodes) != 3 {
		t.Fatalf("directory has %d nodes, want 3", len(nodes))
	}
	for _, info := range nodes {
		if !info.Synced || info.Hash != man3.Hash {
			t.Fatalf("directory disagrees on convergence: %+v", info)
		}
		if info.Node == "n2" && info.Addr != n2.URL {
			t.Fatalf("restarted n2's address not updated: %q vs %q", info.Addr, n2.URL)
		}
	}
}

// TestClusterBootstrapsFreshDeviceProfile covers the cross-device warm
// start: a brand-new agent with a GPU profile the fleet has never
// published for (p100 in a titanx fleet) registers and must start serving
// from the nearest donor's snapshot — a transfer, not a cold fit.
func TestClusterBootstrapsFreshDeviceProfile(t *testing.T) {
	ctx := context.Background()
	cl := NewCluster(t, Options{})
	man := cl.PublishTrained("titanx", 0)

	tx := cl.AddNode("tx1", "titanx")
	if _, err := tx.Agent.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	p := cl.AddNode("p1", "p100")
	if _, err := p.Agent.Sync(ctx); err != nil {
		t.Fatalf("bootstrap sync: %v", err)
	}
	st := p.Agent.Status()
	if st.Bootstrap == nil || st.Bootstrap.Donor != "titanx" || st.Bootstrap.Version != man.Version {
		t.Fatalf("bootstrap provenance: %+v", st.Bootstrap)
	}
	if st.Bootstrap.Distance <= 0 {
		t.Errorf("profile distance = %g, want > 0", st.Bootstrap.Distance)
	}
	// The donor's snapshot was transferred, not refit: same content hash.
	if st.Hash != man.Hash {
		t.Fatalf("bootstrapped hash %.8s, want the donor's %.8s", st.Hash, man.Hash)
	}

	// The donor's publish-time fronts are ladder-specific and must be
	// dropped on the cross-device install: the titanx node serves from the
	// front table, the p100 node falls back to live sweeps.
	_, _, txGov, _ := tx.Serving.Current()
	_, _, pGov, _ := p.Serving.Current()
	if txGov.FrontKernels() == 0 {
		t.Error("same-device node lost its publish-time fronts")
	}
	if pGov.FrontKernels() != 0 {
		t.Error("cross-device node kept the donor's ladder-specific fronts")
	}

	// Decisions on the p100 node resolve over the p100 ladder.
	k := engine.TrainingKernels()[2].Features
	p100Ladder := p.Engine.Harness().Device().Sim().Ladder
	set := pGov.Predictor().ParetoSet(k)
	if len(set) == 0 {
		t.Fatal("bootstrapped predictor returned an empty Pareto set")
	}
	for _, pt := range set {
		if !contains(p100Ladder.MemClocks(), pt.Config.Mem) {
			t.Fatalf("bootstrapped node predicted over a foreign ladder: %+v", pt.Config)
		}
	}
}

// contains reports whether a clock list includes c.
func contains[T comparable](xs []T, c T) bool {
	for _, x := range xs {
		if x == c {
			return true
		}
	}
	return false
}

// TestClusterBootstrapEdgeCases pins the failure modes of cross-device
// bootstrap over the real wire: no compatible donor is an explicit error
// (never a silent cold fit), and a tampered snapshot pushed to an agent
// is refused with 409 while the agent keeps serving what it has.
func TestClusterBootstrapEdgeCases(t *testing.T) {
	ctx := context.Background()
	cl := NewCluster(t, Options{})

	// Empty fleet: the p100 agent's registration stands, but the sync
	// reports the missing donor explicitly and nothing is installed.
	p := cl.AddNode("p1", "p100")
	if _, err := p.Agent.Sync(ctx); err == nil || !strings.Contains(err.Error(), "no bootstrap donor") {
		t.Fatalf("no-donor sync error = %v, want an explicit no-donor failure", err)
	}
	if p.Engine.Trained() {
		t.Fatal("agent cold-fitted models locally despite having no donor")
	}
	if nodes := cl.Control.Nodes(); len(nodes) != 1 || nodes[0].Node != "p1" {
		t.Fatalf("registration did not stand: %+v", nodes)
	}

	// Publish a donor; now the same heartbeat loop bootstraps.
	man := cl.PublishTrained("titanx", 0)
	if _, err := p.Agent.Sync(ctx); err != nil {
		t.Fatalf("post-publish sync: %v", err)
	}
	if p.Agent.Status().Hash != man.Hash {
		t.Fatal("agent did not bootstrap once a donor appeared")
	}

	// A tampered push over the real wire: refused with 409, serving
	// untouched.
	doc, err := cl.Control.Store().ExportDoc("titanx", man.Version)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(doc), `"coefs": [`, `"coefs": [0,`, 1)
	if tampered == string(doc) {
		t.Fatal("tamper marker not found")
	}
	resp, err := http.Post(p.URL+"/fleet/snapshot", "application/json", strings.NewReader(tampered))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || !strings.Contains(string(body), "corrupt") {
		t.Fatalf("tampered push: %d %s, want 409 naming corruption", resp.StatusCode, body)
	}
	if got := p.Agent.Status().Hash; got != man.Hash {
		t.Fatalf("tampered push changed serving: %.8s vs %.8s", got, man.Hash)
	}
}

// TestChaosDropAndDelay exercises the remaining fault shapes: a dropped
// push is retried to convergence by the next heartbeat, and a delayed
// link slows traffic without failing it.
func TestChaosDropAndDelay(t *testing.T) {
	ctx := context.Background()
	cl := NewCluster(t, Options{})
	cl.PublishTrained("titanx", 0)
	n := cl.AddNode("n1", "titanx")
	if _, err := n.Agent.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	// Drop exactly the next push to this node: the fan-out round reports
	// the failure, the node stays stale, and the next heartbeat converges.
	man2 := cl.PublishTrained("titanx", 1)
	cl.ControlChaos.DropNext(hostOf(n.URL), 1)
	report := cl.Control.PushDevice(ctx, "titanx")
	if report.Pushed != 0 || len(report.Errors) != 1 {
		t.Fatalf("dropped-push report: %+v", report)
	}
	if _, err := n.Agent.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if got := n.Agent.Status().Hash; got != man2.Hash {
		t.Fatalf("heartbeat after dropped push installed %.8s, want %.8s", got, man2.Hash)
	}

	// A delayed agent→control link: the heartbeat still succeeds.
	n.Chaos.Delay(hostOf(cl.ControlURL), 20e6) // 20ms
	if _, err := n.Agent.Sync(ctx); err != nil {
		t.Fatalf("sync over delayed link: %v", err)
	}
	n.Chaos.Heal(hostOf(cl.ControlURL))
}
