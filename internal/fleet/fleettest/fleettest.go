// Package fleettest is the in-process multi-node integration harness for
// the fleet layer: one control plane plus N node agents, each listening
// on its own 127.0.0.1:0 socket inside a single test binary, wired
// through fault-injecting transports (Chaos) so tests can partition,
// delay, or drop traffic per node-pair. Tests drive real HTTP over the
// same wire paths production uses — register/heartbeat, snapshot push,
// observation forwarding — and assert fleet-wide convergence with
// bit-identical serving signatures.
package fleettest

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/gpu"
	"repro/internal/measure"
	"repro/internal/nvml"
	"repro/internal/policy"
	"repro/internal/registry"
	"repro/internal/resilience"
)

// Options tunes a test cluster. The zero value selects a small, fast
// configuration suitable for CI.
type Options struct {
	// Engine configures every engine the cluster builds (control-plane
	// retrain engines and per-node serving engines). Zero selects 2
	// workers and 2 settings per kernel.
	Engine engine.Options
	// Adapt configures the control plane's fleet adaptation controllers.
	Adapt adapt.Config
	// TrainKernels bounds fleet retrains and publish-time front sweeps
	// (nil = the first 8 training kernels).
	TrainKernels []core.TrainingKernel
	// Trainer optionally injects a fake trainer into the control plane.
	Trainer func(device string, eng *engine.Engine) adapt.Trainer
	// BreakerThreshold and BreakerCooldown tune the control plane's
	// per-node push circuit breakers (0 = resilience defaults).
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

// withDefaults resolves the zero values.
func (o Options) withDefaults() Options {
	if o.Engine.Workers == 0 {
		o.Engine.Workers = 2
	}
	if o.Engine.Core.SettingsPerKernel == 0 {
		o.Engine.Core.SettingsPerKernel = 2
	}
	if o.TrainKernels == nil {
		o.TrainKernels = engine.TrainingKernels()[:8]
	}
	return o
}

// Node is one agent plus the serving stack and listener it runs on.
type Node struct {
	// Name and Device identify the node in the fleet.
	Name   string
	Device string
	// URL is the node's base address (the control plane pushes here).
	URL string
	// Agent, Store, Engine, and Serving are the node's fleet stack.
	Agent   *fleet.Agent
	Store   *registry.Store
	Engine  *engine.Engine
	Serving *registry.Serving
	// Chaos shapes this node's agent→control link.
	Chaos *Chaos

	srv      *http.Server
	spool    *adapt.Spool
	spoolDir string
}

// Cluster is a control plane plus its nodes, all in-process.
type Cluster struct {
	tb   testing.TB
	opts Options

	// Control is the control plane under test; ControlURL its address.
	Control    *fleet.Control
	ControlURL string
	// ControlChaos shapes the control→agent push links (keyed by each
	// node's host).
	ControlChaos *Chaos

	controlSrv *http.Server

	mu    sync.Mutex
	nodes map[string]*Node
}

// NewCluster starts a control plane (memory-mode store) on a :0 listener
// and returns the cluster. Everything is shut down via tb.Cleanup.
func NewCluster(tb testing.TB, opts Options) *Cluster {
	tb.Helper()
	opts = opts.withDefaults()
	store, err := registry.Open("")
	if err != nil {
		tb.Fatal(err)
	}
	chaos := NewChaos(nil)
	control := fleet.NewControl(store, fleet.ControlConfig{
		Opts:             opts.Engine,
		Adapt:            opts.Adapt,
		TrainKernels:     opts.TrainKernels,
		Trainer:          opts.Trainer,
		Client:           &http.Client{Transport: chaos, Timeout: 5 * time.Second},
		BreakerThreshold: opts.BreakerThreshold,
		BreakerCooldown:  opts.BreakerCooldown,
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/register", control.HandleRegister)
	mux.HandleFunc("/fleet/observe", control.HandleObserve)
	mux.HandleFunc("/fleet/nodes", control.HandleNodes)
	mux.HandleFunc("/fleet/push", control.HandlePush)
	mux.HandleFunc("/fleet/budget", control.HandleBudget)

	c := &Cluster{
		tb: tb, opts: opts,
		Control: control, ControlChaos: chaos,
		nodes: map[string]*Node{},
	}
	c.controlSrv, c.ControlURL = serve(tb, mux)
	return c
}

// serve starts an HTTP server on a fresh 127.0.0.1:0 listener and
// registers its shutdown with tb.Cleanup. The server carries the same
// timeout classes production does, so harness servers shed stalled clients
// instead of leaking their connections across a whole test binary.
func serve(tb testing.TB, handler http.Handler) (*http.Server, string) {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 2 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       30 * time.Second,
	}
	go srv.Serve(ln)
	tb.Cleanup(func() { srv.Close() })
	return srv, "http://" + ln.Addr().String()
}

// engineFor builds an engine over the named device profile.
func engineFor(tb testing.TB, device string, opts engine.Options) *engine.Engine {
	tb.Helper()
	dev, err := gpu.ByName(device)
	if err != nil {
		tb.Fatal(err)
	}
	return engine.New(measure.NewHarness(nvml.NewDevice(dev)), opts)
}

// AddNode starts an agent for a device on its own listener and registers
// it with the cluster (not yet with the control plane — call Sync). The
// agent's spool is memory-mode; use AddNodeSpool for one that survives
// RestartNode.
func (c *Cluster) AddNode(name, device string) *Node {
	c.tb.Helper()
	return c.AddNodeSpool(name, device, "")
}

// AddNodeSpool is AddNode with a disk-backed observation spool in
// spoolDir ("" = memory-mode). RestartNode reopens the same directory, so
// spooled observations survive the restart like a real agent's would.
func (c *Cluster) AddNodeSpool(name, device, spoolDir string) *Node {
	c.tb.Helper()
	store, err := registry.Open("")
	if err != nil {
		c.tb.Fatal(err)
	}
	n := &Node{
		Name: name, Device: device,
		Store:    store,
		Engine:   engineFor(c.tb, device, c.opts.Engine),
		Serving:  registry.NewServing(),
		Chaos:    NewChaos(nil),
		spoolDir: spoolDir,
	}
	spool, err := adapt.OpenSpool(spoolDir)
	if err != nil {
		c.tb.Fatal(err)
	}
	n.spool = spool
	c.tb.Cleanup(func() { spool.Close() })

	mux := http.NewServeMux()
	agentReady := make(chan struct{})
	mux.HandleFunc("/fleet/snapshot", func(w http.ResponseWriter, r *http.Request) {
		<-agentReady
		n.Agent.HandleSnapshot(w, r)
	})
	mux.HandleFunc("/fleet/decisions", func(w http.ResponseWriter, r *http.Request) {
		<-agentReady
		n.Agent.HandleDecisions(w, r)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		<-agentReady
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(n.Agent.Status())
	})
	n.srv, n.URL = serve(c.tb, mux)

	n.Agent, err = fleet.NewAgent(fleet.AgentConfig{
		Node: name, Addr: n.URL, Device: device, Control: c.ControlURL,
		Client: &http.Client{Transport: n.Chaos, Timeout: 5 * time.Second},
		Store:  store, Engine: n.Engine, Serving: n.Serving,
		Spool: spool,
		// Fast retries: tests inject faults that fail instantly, so real
		// backoff delays would only slow the suite down.
		Retry: resilience.Retryer{MaxAttempts: 2, BaseDelay: 2 * time.Millisecond, MaxDelay: 10 * time.Millisecond},
	})
	if err != nil {
		c.tb.Fatal(err)
	}
	close(agentReady)

	c.mu.Lock()
	c.nodes[name] = n
	c.mu.Unlock()
	return n
}

// StopNode shuts a node's listener down (in-flight requests fail) and
// forgets it, leaving its registration on the control plane — the shape
// of a crashed agent.
func (c *Cluster) StopNode(name string) {
	c.mu.Lock()
	n := c.nodes[name]
	delete(c.nodes, name)
	c.mu.Unlock()
	if n != nil {
		n.srv.Close()
		// Release the spool's file handle so a restarted node (same spool
		// directory) replays it as the only writer.
		n.spool.Close()
	}
}

// RestartNode stops a node and brings up a fresh one with the same fleet
// identity: new listener (new address), empty store, empty serving holder
// — exactly what an agent process restart loses. The restarted agent must
// re-register and receive the current snapshot to serve again.
func (c *Cluster) RestartNode(name string) *Node {
	c.tb.Helper()
	c.mu.Lock()
	old := c.nodes[name]
	c.mu.Unlock()
	if old == nil {
		c.tb.Fatalf("RestartNode: unknown node %s", name)
	}
	device, spoolDir := old.Device, old.spoolDir
	c.StopNode(name)
	return c.AddNodeSpool(name, device, spoolDir)
}

// Partition severs both directions of a node's connectivity: its
// heartbeats to the control plane and the control plane's pushes to it.
func (c *Cluster) Partition(n *Node) {
	n.Chaos.Sever(hostOf(c.ControlURL))
	c.ControlChaos.Sever(hostOf(n.URL))
}

// Heal removes a partition.
func (c *Cluster) Heal(n *Node) {
	n.Chaos.Heal(hostOf(c.ControlURL))
	c.ControlChaos.Heal(hostOf(n.URL))
}

// hostOf extracts the host:port key Chaos faults are registered under.
func hostOf(url string) string {
	return strings.TrimPrefix(url, "http://")
}

// trainedCache memoizes trained model sets per (device, variant, spk)
// across a test binary: fitting real SVR models is the dominant cost of a
// cluster test (especially under -race), and the fit is deterministic, so
// every test reusing a variant shares one training run. The cached models
// and fronts are treated as read-only.
var trainedCache = struct {
	sync.Mutex
	m map[trainKey]*trainedModels
}{m: map[trainKey]*trainedModels{}}

type trainKey struct {
	device  string
	variant int
	spk     int
}

type trainedModels struct {
	models  *core.Models
	fronts  *registry.Fronts
	kernels int
}

// variantKernels is the per-variant training-kernel slice: disjoint
// slices produce genuinely different models, so successive published
// variants are distinguishable in bit-identical assertions.
func variantKernels(variant int) []core.TrainingKernel {
	all := engine.TrainingKernels()
	return all[(variant*8)%len(all) : (variant*8)%len(all)+8]
}

// PublishTrained fits (or reuses, see trainedCache) a real small model
// set for a device over the variant's kernel slice, publishes it with
// publish-time fronts on the control plane's store, and activates it.
func (c *Cluster) PublishTrained(device string, variant int) registry.Manifest {
	c.tb.Helper()
	kernels := variantKernels(variant)
	key := trainKey{device: device, variant: variant, spk: c.opts.Engine.Core.SettingsPerKernel}
	trainedCache.Lock()
	tr := trainedCache.m[key]
	if tr == nil {
		eng := engineFor(c.tb, device, c.opts.Engine)
		models, err := eng.Train(context.Background(), kernels)
		if err != nil {
			trainedCache.Unlock()
			c.tb.Fatal(err)
		}
		ladder := eng.Harness().Device().Sim().Ladder
		tr = &trainedModels{
			models:  models,
			fronts:  registry.ComputeFronts(engine.NewPredictor(models, ladder, eng.Options()), kernels),
			kernels: len(kernels),
		}
		trainedCache.m[key] = tr
	}
	trainedCache.Unlock()

	store := c.Control.Store()
	man, err := store.SaveWithFronts(device, "", tr.models, registry.Training{
		SettingsPerKernel: c.opts.Engine.Core.SettingsPerKernel,
		Kernels:           tr.kernels,
	}, tr.fronts)
	if err != nil {
		c.tb.Fatal(err)
	}
	if err := store.Activate(device, man.Version); err != nil {
		c.tb.Fatal(err)
	}
	return man
}

// servingSignature is the serialized form Signature compares.
type servingSignature struct {
	Version   string              `json:"version"`
	Sets      [][]core.Prediction `json:"sets"`
	Decisions []policy.Decision   `json:"decisions"`
}

// Signature fingerprints what a node's serving holder answers: the full
// Pareto set plus min-energy and edp governor decisions for the first
// `kernels` training kernels, JSON-marshaled together with the serving
// version. Two holders with equal signatures serve bit-identically (cache
// counters and other process-local state are deliberately excluded).
func Signature(tb testing.TB, s *registry.Serving, kernels int) string {
	tb.Helper()
	version, pred, gov, ok := s.Current()
	if !ok {
		tb.Fatal("Signature: serving holder is empty")
	}
	sig := servingSignature{Version: version}
	for _, k := range engine.TrainingKernels()[:kernels] {
		sig.Sets = append(sig.Sets, pred.ParetoSet(k.Features))
		for _, spec := range []policy.Spec{{Name: "min-energy"}, {Name: "edp"}} {
			d, err := gov.Decide(k.Features, spec)
			if err != nil {
				tb.Fatalf("Signature: %s decision: %v", spec.Name, err)
			}
			sig.Decisions = append(sig.Decisions, d)
		}
	}
	out, err := json.Marshal(sig)
	if err != nil {
		tb.Fatal(err)
	}
	return string(out)
}

// WaitSynced heartbeats the named nodes until each serves the given hash
// locally AND the control plane's directory records it (the directory
// reflects what a node last reported, so it converges one heartbeat after
// the install), or the deadline passes.
func (c *Cluster) WaitSynced(ctx context.Context, hash string, nodes ...*Node) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		dir := map[string]string{}
		for _, info := range c.Control.Nodes() {
			dir[info.Node] = info.Hash
		}
		allSynced := true
		for _, n := range nodes {
			if n.Agent.Status().Hash == hash && dir[n.Name] == hash {
				continue
			}
			allSynced = false
			if _, err := n.Agent.Sync(ctx); err != nil && time.Now().After(deadline) {
				return fmt.Errorf("node %s: %w", n.Name, err)
			}
		}
		if allSynced {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleettest: nodes did not converge on %.8s…", hash)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
