package fleettest

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/features"
	"repro/internal/policy"
)

// Concurrency stress tests for the fleet layer, meant to run under
// -race. Iteration counts are small and paced so the suite stays
// affordable on a 1-vCPU CI runner; -short skips them entirely.

// TestRaceServingUnderSnapshotPush hammers an agent's Serving holder with
// the read-plane hot path — Pareto sweeps (/predict), batch prediction
// (/predict/batch), and governor decisions (/select) — while snapshots
// are concurrently installed over it, alternating between two versions.
func TestRaceServingUnderSnapshotPush(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrency stress; skipped in -short")
	}
	ctx := context.Background()
	cl := NewCluster(t, Options{})
	kernels := engine.TrainingKernels()
	man1 := cl.PublishTrained("titanx", 0)
	man2 := cl.PublishTrained("titanx", 1)
	n := cl.AddNode("n1", "titanx")
	if _, err := n.Agent.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	doc1, err := cl.Control.Store().ExportDoc("titanx", man1.Version)
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := cl.Control.Store().ExportDoc("titanx", man2.Version)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Read plane: single predictions and decisions against whatever
	// snapshot is current.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, pred, gov, ok := n.Serving.Current()
			if !ok {
				continue
			}
			k := kernels[i%16].Features
			pred.ParetoSet(k)
			if _, err := gov.Decide(k, policy.Spec{Name: "min-energy"}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Batch plane.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sts := []features.Static{kernels[0].Features, kernels[5].Features}
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, pred, _, ok := n.Serving.Current()
			if !ok {
				continue
			}
			if _, err := pred.PredictBatch(ctx, sts); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Installer: alternate the two snapshots through the same verify +
	// hot-swap path /fleet/snapshot uses. Ten rounds paced at 2ms keep
	// plenty of reader/installer overlap while staying affordable under
	// the race detector on a 1-vCPU runner.
	for i := 0; i < 10; i++ {
		doc := doc1
		if i%2 == 1 {
			doc = doc2
		}
		if _, _, err := n.Agent.InstallDoc(doc); err != nil {
			t.Errorf("install %d: %v", i, err)
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
}

// TestRaceFanOutDuringAgentChurn runs control-plane fan-out rounds while
// agents heartbeat and one node is repeatedly restarted — registration,
// push accounting, and the node directory race against each other.
func TestRaceFanOutDuringAgentChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrency stress; skipped in -short")
	}
	ctx := context.Background()
	cl := NewCluster(t, Options{})
	man := cl.PublishTrained("titanx", 0)
	n1 := cl.AddNode("n1", "titanx")
	n2 := cl.AddNode("n2", "titanx")
	n3 := cl.AddNode("n3", "titanx")
	for _, n := range []*Node{n1, n2, n3} {
		if _, err := n.Agent.Sync(ctx); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Fan-out rounds against a churning fleet. Pushes to a node that is
	// mid-restart fail and are recorded; that is the behavior under test.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			cl.Control.PushDevice(ctx, "titanx")
			time.Sleep(3 * time.Millisecond)
		}
	}()

	// Steady heartbeats from a surviving node.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			n1.Agent.Sync(ctx)
			time.Sleep(3 * time.Millisecond)
		}
	}()

	// Churn: restart n2 a few times; each incarnation re-registers.
	for i := 0; i < 4; i++ {
		n2 = cl.RestartNode("n2")
		n2.Agent.Sync(ctx)
		time.Sleep(3 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// The fleet still converges once the churn stops.
	if err := cl.WaitSynced(ctx, man.Hash, n1, n2, n3); err != nil {
		t.Fatal(err)
	}
}
