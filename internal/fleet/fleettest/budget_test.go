package fleettest

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/budget"
	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/freq"
	"repro/internal/resilience"
)

// kernelObs builds an observation for the i-th training kernel — the
// features match the published fronts' entries, so the control plane's
// budget planner attributes it to a known front. The objectives sit close
// to nominal so the batch never trips the fleet drift detector.
func kernelObs(i int, speedup, energy float64) adapt.Observation {
	k := engine.TrainingKernels()[i]
	return adapt.Observation{
		Kernel:     k.Name,
		Features:   k.Features,
		Config:     freq.Config{Mem: 3505, Core: 1000},
		Speedup:    speedup,
		NormEnergy: energy,
	}
}

// postBudget POSTs a BudgetRequest to the control plane's HTTP route and
// decodes the status it answers with.
func postBudget(t *testing.T, url string, req fleet.BudgetRequest) fleet.BudgetStatusResponse {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/fleet/budget", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /fleet/budget: status %d", resp.StatusCode)
	}
	var status fleet.BudgetStatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	return status
}

// TestBudgetPlanConvergesAcrossFleet is the budget layer's fleet
// acceptance test: three agents with distinct observed kernel mixes (one
// with none at all, exercising the uniform fallback), a budget set over
// the real HTTP route, and every agent holding its decision table by the
// end of the round — the push-missed node via exactly one heartbeat.
func TestBudgetPlanConvergesAcrossFleet(t *testing.T) {
	ctx := context.Background()
	cl := NewCluster(t, Options{})
	cl.PublishTrained("titanx", 0)
	n1 := cl.AddNode("n1", "titanx")
	n2 := cl.AddNode("n2", "titanx")
	n3 := cl.AddNode("n3", "titanx")
	all := []*Node{n1, n2, n3}
	for _, n := range all {
		if _, err := n.Agent.Sync(ctx); err != nil {
			t.Fatalf("%s initial sync: %v", n.Name, err)
		}
	}

	// Distinct mixes: n1 runs kernel 0 three-to-one over kernel 1, n2 the
	// inverse; n3 reports nothing and must be planned on the uniform mix.
	for i := 0; i < 3; i++ {
		if _, _, err := n1.Agent.Forward(ctx, []adapt.Observation{kernelObs(0, 1, 0.95)}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := n2.Agent.Forward(ctx, []adapt.Observation{kernelObs(1, 1, 0.95)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := n1.Agent.Forward(ctx, []adapt.Observation{kernelObs(1, 1, 0.95)}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n2.Agent.Forward(ctx, []adapt.Observation{kernelObs(0, 1, 0.95)}); err != nil {
		t.Fatal(err)
	}

	// n3 misses the fan-out: its push link is severed when the budget
	// lands, so only the heartbeat can converge it.
	cl.ControlChaos.Sever(hostOf(n3.URL))
	status := postBudget(t, cl.ControlURL, fleet.BudgetRequest{
		Total: ptr(2.4), Unit: budget.UnitPower,
	})
	if !status.Set || status.Plan == nil {
		t.Fatalf("budget status after POST: %+v", status)
	}
	if !status.Plan.Feasible {
		t.Fatalf("budget 2.4 over 3 nodes should be feasible: %+v", status.Plan)
	}
	if status.LastPush == nil || status.LastPush.Pushed != 2 || len(status.LastPush.Errors) != 1 {
		t.Fatalf("push round: %+v, want 2 delivered and 1 error (severed n3)", status.LastPush)
	}

	tables := map[string]fleet.BudgetNodeStatus{}
	for _, ns := range status.Nodes {
		tables[ns.Node] = ns
	}
	if len(tables) != 3 {
		t.Fatalf("budget status covers %d nodes, want 3", len(tables))
	}
	if tables["n3"].Kernels != 0 || !tables["n3"].UniformMix {
		t.Fatalf("n3 should be planned on the uniform mix: %+v", tables["n3"])
	}
	if tables["n1"].Kernels != 2 || tables["n1"].UniformMix {
		t.Fatalf("n1 should be planned on its 2-kernel observed mix: %+v", tables["n1"])
	}

	// The pushed pair holds its table already — no heartbeat needed.
	for _, n := range []*Node{n1, n2} {
		st := n.Agent.Status()
		if st.Plan != tables[n.Name].Hash || st.PlanEntries != tables[n.Name].Entries {
			t.Fatalf("%s agent plan %.8s (%d entries), want %.8s (%d)",
				n.Name, st.Plan, st.PlanEntries, tables[n.Name].Hash, tables[n.Name].Entries)
		}
		if d, ok := n.Agent.DecisionFor(engine.TrainingKernels()[0].Features); !ok || d.Policy.Name != "budget" {
			t.Fatalf("%s DecisionFor(kernel 0) = %+v, %v", n.Name, d, ok)
		}
	}

	// The severed node converges in exactly one sync interval: heal, one
	// heartbeat, table installed.
	cl.ControlChaos.Heal(hostOf(n3.URL))
	if got := n3.Agent.Status().Plan; got != "" {
		t.Fatalf("n3 holds plan %.8s before its heartbeat — push should have missed it", got)
	}
	if _, err := n3.Agent.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if got := n3.Agent.Status().Plan; got != tables["n3"].Hash {
		t.Fatalf("n3 after one heartbeat holds %.8s, want %.8s", got, tables["n3"].Hash)
	}

	// One more heartbeat apiece and the directory agrees everyone is
	// synced (it records what each node last *reported*).
	for _, n := range all {
		if _, err := n.Agent.Sync(ctx); err != nil {
			t.Fatal(err)
		}
	}
	status = cl.Control.BudgetStatus()
	for _, ns := range status.Nodes {
		if !ns.Synced {
			t.Fatalf("node %s not synced after heartbeats: %+v", ns.Node, ns)
		}
	}

	// GET over the same HTTP route reports the installed budget.
	resp, err := http.Get(cl.ControlURL + "/fleet/budget")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got fleet.BudgetStatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.Set || got.Budget == nil || got.Budget.Total != 2.4 || got.Budget.Unit != budget.UnitPower {
		t.Fatalf("GET /fleet/budget: %+v", got)
	}
}

// TestBudgetPushBreakerSkipsSeveredNode pins the decision-table fan-out to
// the same breaker contract as snapshot pushes: consecutive failures to a
// severed node trip its breaker, after which replan rounds skip it
// instantly even over a black-hole link, and the node still converges
// through its own heartbeat once healed.
func TestBudgetPushBreakerSkipsSeveredNode(t *testing.T) {
	ctx := context.Background()
	cl := NewCluster(t, Options{BreakerThreshold: 2, BreakerCooldown: time.Hour})
	cl.PublishTrained("titanx", 0)
	n1 := cl.AddNode("n1", "titanx")
	n2 := cl.AddNode("n2", "titanx")
	for _, n := range []*Node{n1, n2} {
		if _, err := n.Agent.Sync(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// n2's push link dies before the budget lands. Round 1: n1 installs,
	// n2 fails (breaker failure 1/2).
	cl.ControlChaos.Sever(hostOf(n2.URL))
	status, err := cl.Control.SetBudget(ctx, budget.Budget{Total: 1.6, Unit: budget.UnitPower})
	if err != nil {
		t.Fatal(err)
	}
	if status.LastPush == nil || status.LastPush.Pushed != 1 || len(status.LastPush.Errors) != 1 {
		t.Fatalf("round 1: %+v, want 1 pushed, 1 error", status.LastPush)
	}

	// Round 2: only n2 is stale; its failure 2/2 trips the breaker.
	status, err = cl.Control.Replan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if status.LastPush.Targets != 1 || status.LastPush.Pushed != 0 || len(status.LastPush.Errors) != 1 {
		t.Fatalf("round 2: %+v, want 1 error on the severed node", status.LastPush)
	}

	// Round 3: the link becomes a black hole that would stall a contact
	// for the full client timeout. The open breaker keeps the replan
	// instant by skipping n2 outright.
	cl.ControlChaos.Heal(hostOf(n2.URL))
	cl.ControlChaos.SlowForever(hostOf(n2.URL))
	start := time.Now()
	status, err = cl.Control.Replan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("replan with a tripped breaker took %v — the severed node stalled the round", elapsed)
	}
	if status.LastPush.Targets != 1 || status.LastPush.Skipped != 1 || len(status.LastPush.Errors) != 0 {
		t.Fatalf("round 3: %+v, want the severed node counted as skipped", status.LastPush)
	}
	states := map[string]string{}
	for _, info := range cl.Control.Nodes() {
		states[info.Node] = info.Breaker
	}
	if states["n2"] != resilience.StateOpen || states["n1"] != resilience.StateClosed {
		t.Fatalf("breaker states %v, want n2 open and n1 closed", states)
	}

	// The pull path ignores push breakers: one heartbeat converges n2.
	cl.ControlChaos.Heal(hostOf(n2.URL))
	if _, err := n2.Agent.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	want := ""
	for _, ns := range cl.Control.BudgetStatus().Nodes {
		if ns.Node == "n2" {
			want = ns.Hash
		}
	}
	if want == "" {
		t.Fatal("budget status has no table hash for n2")
	}
	if got := n2.Agent.Status().Plan; got != want {
		t.Fatalf("healed node's heartbeat installed %.8s, want %.8s", got, want)
	}
}

// ptr returns a pointer to v, for optional request fields.
func ptr(v float64) *float64 { return &v }
