package fleettest

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// ErrSevered is the transport error a request over a severed link fails
// with — the in-process stand-in for a network partition.
var ErrSevered = errors.New("fleettest: link severed")

// ErrDropped is the transport error an individually dropped request fails
// with (DropNext).
var ErrDropped = errors.New("fleettest: request dropped")

// ErrFlaky is the transport error a Flaky link's failing share of requests
// fails with.
var ErrFlaky = errors.New("fleettest: flaky link")

// Chaos is a fault-injecting http.RoundTripper for fleet tests. Faults
// are keyed by destination host ("127.0.0.1:PORT" — req.URL.Host), so one
// Chaos can shape every link its client talks over independently.
//
// The pattern for per-node-pair fault injection, for future fleet tests:
// give each agent its own Chaos on the client it reaches the control
// plane with (the agent→control link), and give the control plane one
// Chaos on its push client (the control→agent links, distinguished by
// each agent's listen address). Severing both directions for one node —
// what Cluster.Partition does — partitions exactly that node while the
// rest of the fleet keeps flowing.
//
// Five fault shapes compose, checked in this order per request: a severed
// link fails every request with ErrSevered until healed; SlowForever
// blocks until the request's own context gives up (a black-holed peer —
// the worst case for anything without a timeout); DropNext eats the next n
// requests (transient loss, e.g. exactly one missed push) with ErrDropped;
// Flaky fails a deterministic percentage of requests with ErrFlaky (lossy
// link — what retries exist to survive); Delay sleeps before forwarding
// (slow link). All methods are safe for concurrent use with in-flight
// requests.
type Chaos struct {
	base http.RoundTripper

	mu       sync.Mutex
	severed  map[string]bool
	slow     map[string]bool
	drops    map[string]int
	flaky    map[string]int // fail percentage, 1..100
	flakyAcc map[string]int // error-diffusion accumulator
	delays   map[string]time.Duration
}

// NewChaos wraps a base transport (nil = http.DefaultTransport) with
// fault injection. With no faults configured it is transparent.
func NewChaos(base http.RoundTripper) *Chaos {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Chaos{
		base:     base,
		severed:  map[string]bool{},
		slow:     map[string]bool{},
		drops:    map[string]int{},
		flaky:    map[string]int{},
		flakyAcc: map[string]int{},
		delays:   map[string]time.Duration{},
	}
}

// Sever partitions the link to host: every request fails immediately
// with ErrSevered until Heal.
func (c *Chaos) Sever(host string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.severed[host] = true
}

// Heal removes all faults on the link to host.
func (c *Chaos) Heal(host string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.severed, host)
	delete(c.slow, host)
	delete(c.drops, host)
	delete(c.flaky, host)
	delete(c.flakyAcc, host)
	delete(c.delays, host)
}

// Flaky makes the given percentage (1..100) of requests to host fail with
// ErrFlaky, spread evenly over the request stream (error diffusion, so 50
// alternates fail/pass rather than failing a burst); 0 removes the fault.
func (c *Chaos) Flaky(host string, percent int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if percent <= 0 {
		delete(c.flaky, host)
		delete(c.flakyAcc, host)
		return
	}
	if percent > 100 {
		percent = 100
	}
	c.flaky[host] = percent
}

// SlowForever black-holes the link to host: every request blocks until its
// own context is cancelled, then fails with that context's error. It is
// the fault shape only timeouts can save a caller from.
func (c *Chaos) SlowForever(host string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.slow[host] = true
}

// DropNext makes the next n requests to host fail with ErrDropped.
func (c *Chaos) DropNext(host string, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drops[host] = n
}

// Delay makes every request to host sleep for d before being forwarded
// (0 removes the delay).
func (c *Chaos) Delay(host string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d <= 0 {
		delete(c.delays, host)
		return
	}
	c.delays[host] = d
}

// RoundTrip applies the configured faults for the destination host, then
// forwards to the base transport.
func (c *Chaos) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	c.mu.Lock()
	severed := c.severed[host]
	slow := !severed && c.slow[host]
	drop := false
	if !severed && !slow && c.drops[host] > 0 {
		c.drops[host]--
		drop = true
	}
	flake := false
	if !severed && !slow && !drop {
		if pct := c.flaky[host]; pct > 0 {
			c.flakyAcc[host] += pct
			if c.flakyAcc[host] >= 100 {
				c.flakyAcc[host] -= 100
				flake = true
			}
		}
	}
	delay := c.delays[host]
	c.mu.Unlock()

	if severed {
		return nil, fmt.Errorf("%w: %s", ErrSevered, host)
	}
	if slow {
		<-req.Context().Done()
		return nil, fmt.Errorf("fleettest: slow link %s: %w", host, req.Context().Err())
	}
	if drop {
		return nil, fmt.Errorf("%w: %s", ErrDropped, host)
	}
	if flake {
		return nil, fmt.Errorf("%w: %s", ErrFlaky, host)
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return c.base.RoundTrip(req)
}
