package fleettest

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// ErrSevered is the transport error a request over a severed link fails
// with — the in-process stand-in for a network partition.
var ErrSevered = errors.New("fleettest: link severed")

// ErrDropped is the transport error an individually dropped request fails
// with (DropNext).
var ErrDropped = errors.New("fleettest: request dropped")

// Chaos is a fault-injecting http.RoundTripper for fleet tests. Faults
// are keyed by destination host ("127.0.0.1:PORT" — req.URL.Host), so one
// Chaos can shape every link its client talks over independently.
//
// The pattern for per-node-pair fault injection, for future fleet tests:
// give each agent its own Chaos on the client it reaches the control
// plane with (the agent→control link), and give the control plane one
// Chaos on its push client (the control→agent links, distinguished by
// each agent's listen address). Severing both directions for one node —
// what Cluster.Partition does — partitions exactly that node while the
// rest of the fleet keeps flowing.
//
// Three fault shapes compose, checked in this order per request: a
// severed link fails every request with ErrSevered until healed; DropNext
// eats the next n requests (transient loss, e.g. exactly one missed push)
// with ErrDropped; Delay sleeps before forwarding (slow link). All
// methods are safe for concurrent use with in-flight requests.
type Chaos struct {
	base http.RoundTripper

	mu      sync.Mutex
	severed map[string]bool
	drops   map[string]int
	delays  map[string]time.Duration
}

// NewChaos wraps a base transport (nil = http.DefaultTransport) with
// fault injection. With no faults configured it is transparent.
func NewChaos(base http.RoundTripper) *Chaos {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Chaos{
		base:    base,
		severed: map[string]bool{},
		drops:   map[string]int{},
		delays:  map[string]time.Duration{},
	}
}

// Sever partitions the link to host: every request fails immediately
// with ErrSevered until Heal.
func (c *Chaos) Sever(host string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.severed[host] = true
}

// Heal removes all faults on the link to host.
func (c *Chaos) Heal(host string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.severed, host)
	delete(c.drops, host)
	delete(c.delays, host)
}

// DropNext makes the next n requests to host fail with ErrDropped.
func (c *Chaos) DropNext(host string, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drops[host] = n
}

// Delay makes every request to host sleep for d before being forwarded
// (0 removes the delay).
func (c *Chaos) Delay(host string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d <= 0 {
		delete(c.delays, host)
		return
	}
	c.delays[host] = d
}

// RoundTrip applies the configured faults for the destination host, then
// forwards to the base transport.
func (c *Chaos) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	c.mu.Lock()
	severed := c.severed[host]
	drop := false
	if !severed && c.drops[host] > 0 {
		c.drops[host]--
		drop = true
	}
	delay := c.delays[host]
	c.mu.Unlock()

	if severed {
		return nil, fmt.Errorf("%w: %s", ErrSevered, host)
	}
	if drop {
		return nil, fmt.Errorf("%w: %s", ErrDropped, host)
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return c.base.RoundTrip(req)
}
