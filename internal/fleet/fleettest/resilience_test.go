package fleettest

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/features"
	"repro/internal/fleet"
	"repro/internal/freq"
	"repro/internal/registry"
	"repro/internal/resilience"
)

// testObs builds a valid observation with a distinct kernel name (so order
// is checkable) and the given measured objectives.
func testObs(i int, speedup, energy float64) adapt.Observation {
	var st features.Static
	st[0] = 0.5
	return adapt.Observation{
		Kernel:     fmt.Sprintf("k%02d", i),
		Features:   st,
		Config:     freq.Config{Mem: 3505, Core: 1000},
		Speedup:    speedup,
		NormEnergy: energy,
	}
}

// TestPartitionSpoolRestartFlush is the durability acceptance test: a
// partitioned agent spools every observation it cannot forward, the spool
// survives an agent crash (disk-backed, same directory on restart), and on
// heal the queue flushes in order with nothing lost — after which the
// control plane's fleet drift detector fires on the backlog exactly as if
// the partition had never happened.
func TestPartitionSpoolRestartFlush(t *testing.T) {
	ctx := context.Background()
	cl := NewCluster(t, Options{Adapt: adapt.Config{
		MinSamples: 4, DriftFactor: 2,
		BaselineSpeedup: 0.05, BaselineEnergy: 0.05,
	}})
	man := cl.PublishTrained("titanx", 0)
	n := cl.AddNodeSpool("n1", "titanx", t.TempDir())
	if _, err := n.Agent.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	// Partition, then keep reporting: every batch must be accepted into the
	// spool (spooled count, nil response), never dropped, never an error.
	cl.Partition(n)
	for i := 0; i < 6; i += 2 {
		resp, spooled, err := n.Agent.Forward(ctx,
			[]adapt.Observation{testObs(i, 5, 5), testObs(i+1, 5, 5)})
		if err != nil {
			t.Fatalf("forward during partition: %v", err)
		}
		if spooled != 2 || resp != nil {
			t.Fatalf("partitioned forward: spooled=%d resp=%v, want the batch spooled", spooled, resp)
		}
	}
	if d := n.Agent.Status().Spool.Depth; d != 6 {
		t.Fatalf("spool depth %d during partition, want 6", d)
	}
	for i, o := range n.spool.Pending(0) {
		if want := fmt.Sprintf("k%02d", i); o.Kernel != want {
			t.Fatalf("spool position %d holds %s, want %s (order lost)", i, o.Kernel, want)
		}
	}

	// Crash the agent and restart it against the same spool directory: the
	// queue must come back from disk. (The restarted node gets a fresh
	// listener and fresh Chaos, i.e. the partition is healed.)
	n = cl.RestartNode("n1")
	if d := n.spool.Depth(); d != 6 {
		t.Fatalf("restarted agent recovered %d spooled observations, want 6", d)
	}

	// Heal path: re-register, then flush. Everything arrives, in order, and
	// the spool compacts back to empty.
	if _, err := n.Agent.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if flushed := n.Agent.FlushSpool(ctx); flushed != 6 {
		t.Fatalf("flushed %d observations on heal, want 6", flushed)
	}
	if d := n.Agent.Status().Spool.Depth; d != 0 {
		t.Fatalf("spool depth %d after flush, want 0", d)
	}
	st, ok := cl.Control.AdaptStatus("titanx")
	if !ok {
		t.Fatal("control plane has no fleet controller for titanx")
	}
	if st.Store.Count != 6 || st.Store.Total != 6 || st.Store.Nodes["n1"] != 6 {
		t.Fatalf("control-plane store after flush: %+v, want all 6 observations attributed to n1", st.Store)
	}
	// The backlog is wildly off the published model's predictions, so the
	// fleet drift detector must fire on it.
	if !st.Drift.Drift {
		t.Fatalf("drift did not fire on the flushed backlog: %+v", st.Drift)
	}
	// The agent still serves the snapshot it had throughout.
	if got := n.Agent.Status().Hash; got != man.Hash {
		t.Fatalf("agent hash after heal %.8s, want %.8s", got, man.Hash)
	}
}

// TestFlakyLinkForwardRetriesDeliver proves the retry layer absorbs a
// lossy (not severed) link: with 50% of requests failing, forwarding still
// delivers — directly when a retry lands, via the spool-then-flush path
// when all of a call's attempts lose the coin toss. Either way nothing is
// dropped.
func TestFlakyLinkForwardRetriesDeliver(t *testing.T) {
	ctx := context.Background()
	cl := NewCluster(t, Options{})
	cl.PublishTrained("titanx", 0)
	n := cl.AddNode("n1", "titanx")
	if _, err := n.Agent.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	n.Chaos.Flaky(hostOf(cl.ControlURL), 50)
	total := 0
	for i := 0; i < 8; i++ {
		if _, _, err := n.Agent.Forward(ctx, []adapt.Observation{testObs(i, 1, 1)}); err != nil {
			t.Fatalf("forward over flaky link: %v", err)
		}
		total++
	}
	n.Chaos.Heal(hostOf(cl.ControlURL))
	n.Agent.FlushSpool(ctx)

	st, ok := cl.Control.AdaptStatus("titanx")
	if !ok || st.Store.Total != total {
		t.Fatalf("control plane ingested %d observations over the flaky link, want %d", st.Store.Total, total)
	}
	if d := n.Agent.Status().Spool.Depth; d != 0 {
		t.Fatalf("spool depth %d after heal+flush, want 0", d)
	}
}

// TestBreakerSkipsDeadNodeWithoutDelayingFanout pins the push breaker's
// contract: consecutive push failures to one node trip its breaker, after
// which fan-out rounds skip it instantly — even when the dead node's link
// has become a black hole that would otherwise stall the round for the
// full client timeout — while healthy nodes keep converging, and the
// skipped node still converges through its own heartbeat.
func TestBreakerSkipsDeadNodeWithoutDelayingFanout(t *testing.T) {
	ctx := context.Background()
	cl := NewCluster(t, Options{BreakerThreshold: 2, BreakerCooldown: time.Hour})
	cl.PublishTrained("titanx", 0)
	n1 := cl.AddNode("n1", "titanx")
	n2 := cl.AddNode("n2", "titanx")
	n3 := cl.AddNode("n3", "titanx")
	for _, n := range []*Node{n1, n2, n3} {
		if _, err := n.Agent.Sync(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// n3 dies (control→agent only; its own heartbeats still work) and a new
	// version is published.
	cl.ControlChaos.Sever(hostOf(n3.URL))
	man2 := cl.PublishTrained("titanx", 1)

	// Round 1: the dead node fails, the healthy pair installs. Failure 1/2.
	r := cl.Control.PushDevice(ctx, "titanx")
	if r.Targets != 3 || r.Pushed != 2 || r.Skipped != 0 || len(r.Errors) != 1 {
		t.Fatalf("round 1: %+v, want 2 pushed, 1 error, none skipped", r)
	}

	// Round 2: only n3 is still stale. Failure 2/2 trips its breaker.
	r = cl.Control.PushDevice(ctx, "titanx")
	if r.Targets != 1 || r.Pushed != 0 || r.Skipped != 0 || len(r.Errors) != 1 {
		t.Fatalf("round 2: %+v, want 1 error on the dead node", r)
	}

	// Round 3: the link degrades from fail-fast to black hole — every
	// contact would now hang until the push client's 5 s timeout. The open
	// breaker must keep the round instant by not contacting n3 at all.
	cl.ControlChaos.Heal(hostOf(n3.URL))
	cl.ControlChaos.SlowForever(hostOf(n3.URL))
	start := time.Now()
	r = cl.Control.PushDevice(ctx, "titanx")
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("fan-out with a tripped breaker took %v — the dead node delayed the round", elapsed)
	}
	if r.Targets != 1 || r.Pushed != 0 || r.Skipped != 1 || len(r.Errors) != 0 {
		t.Fatalf("round 3: %+v, want the dead node counted as skipped", r)
	}

	// The directory names the breaker state per node.
	states := map[string]string{}
	for _, info := range cl.Control.Nodes() {
		states[info.Node] = info.Breaker
	}
	if states["n3"] != resilience.StateOpen || states["n1"] != resilience.StateClosed || states["n2"] != resilience.StateClosed {
		t.Fatalf("breaker states %v, want n3 open and the rest closed", states)
	}

	// The pull path ignores push breakers: n3's own heartbeat converges it.
	cl.ControlChaos.Heal(hostOf(n3.URL))
	if _, err := n3.Agent.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if got := n3.Agent.Status().Hash; got != man2.Hash {
		t.Fatalf("skipped node's heartbeat installed %.8s, want %.8s", got, man2.Hash)
	}
}

// countTripper counts round trips before delegating.
type countTripper struct {
	base  http.RoundTripper
	calls atomic.Int64
}

func (c *countTripper) RoundTrip(r *http.Request) (*http.Response, error) {
	c.calls.Add(1)
	return c.base.RoundTrip(r)
}

// TestAgentRunHonorsCancelDuringBlockedSync pins Run's cancellation
// contract with a blocked transport: cancelling while a Sync is in flight
// aborts the request and returns from Run without firing one more sync
// after the cancel.
func TestAgentRunHonorsCancelDuringBlockedSync(t *testing.T) {
	cl := NewCluster(t, Options{})
	cl.PublishTrained("titanx", 0)

	chaos := NewChaos(nil)
	chaos.SlowForever(hostOf(cl.ControlURL))
	ct := &countTripper{base: chaos}
	store, err := registry.Open("")
	if err != nil {
		t.Fatal(err)
	}
	agent, err := fleet.NewAgent(fleet.AgentConfig{
		Node: "blocked", Device: "titanx", Control: cl.ControlURL,
		// No client timeout: only context cancellation can unblock the sync.
		Client: &http.Client{Transport: ct},
		Store:  store, Engine: engineFor(t, "titanx", cl.opts.Engine),
		Serving: registry.NewServing(),
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		agent.Run(ctx, time.Millisecond)
		close(done)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for ct.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("the first sync never reached the transport")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after cancel during a blocked sync")
	}
	calls := ct.calls.Load()
	time.Sleep(50 * time.Millisecond)
	if got := ct.calls.Load(); got != calls {
		t.Fatalf("a sync fired after cancellation (%d -> %d round trips)", calls, got)
	}
}
