package fleet

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/adapt"
	"repro/internal/budget"
	"repro/internal/engine"
	"repro/internal/features"
	"repro/internal/freq"
	"repro/internal/policy"
	"repro/internal/registry"
)

// publishFronted publishes a constant model set for a device WITH a
// publish-time front table (the budget governor plans over fronts, not
// models) and activates it.
func publishFronted(t *testing.T, c *Control, device string) registry.Manifest {
	t.Helper()
	eng := newEngineFor(t, device)
	models := constModels(t, 1, 1)
	pred := engine.NewPredictor(models, eng.Harness().Device().Sim().Ladder, eng.Options())
	fronts := registry.ComputeFronts(pred, engine.TrainingKernels()[:2])
	man, err := c.Store().SaveWithFronts(device, "", models, registry.Training{}, fronts)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store().Activate(device, man.Version); err != nil {
		t.Fatal(err)
	}
	return man
}

// trainObs builds an accepted observation for the i-th training kernel, so
// the observed mix matches the published front table's feature keys.
func trainObs(i int, speedup, energy float64) adapt.Observation {
	k := engine.TrainingKernels()[i]
	return adapt.Observation{
		Kernel:     k.Name,
		Features:   k.Features,
		Config:     freq.Config{Mem: 3505, Core: 1000},
		Speedup:    speedup,
		NormEnergy: energy,
	}
}

// forward ingests observations as one agent's forwarded batch and fails
// the test if any are rejected (a rejected observation never steers the
// budget mix, which would silently weaken the test).
func forward(t *testing.T, c *Control, node, device string, obs ...adapt.Observation) {
	t.Helper()
	resp, err := c.Observe(ObserveRequest{Node: node, Device: device, Observations: obs})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resp.Results {
		if r.Ingest == nil {
			t.Fatalf("observation %d rejected: %s", i, r.Error)
		}
	}
}

func TestSetBudgetPlansOverObservedMix(t *testing.T) {
	c := newControl(t, constModels(t, 1, 1), adapt.Config{})
	publishFronted(t, c, "titanx")
	if _, err := c.Register(RegisterRequest{Node: "n1", Device: "titanx"}); err != nil {
		t.Fatal(err)
	}
	// 3:1 mix of the two training kernels.
	forward(t, c, "n1", "titanx",
		trainObs(0, 1, 1), trainObs(0, 1, 1), trainObs(0, 1, 1), trainObs(1, 1, 1))

	st, err := c.SetBudget(context.Background(), budget.Budget{Total: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Set || st.Plan == nil {
		t.Fatalf("no plan after SetBudget: %+v", st)
	}
	if st.Plan.Strategy == "" || len(st.Plan.Allocations) != 2 {
		t.Fatalf("plan shape: strategy %q, %d allocations (want 2)", st.Plan.Strategy, len(st.Plan.Allocations))
	}
	var weights []float64
	for _, a := range st.Plan.Allocations {
		if a.Node != "n1" {
			t.Fatalf("allocation for unknown node %q", a.Node)
		}
		weights = append(weights, a.Weight)
	}
	// Observed 3:1 mix → weights 0.75/0.25 in (node, kernel) order.
	if w := weights[0] + weights[1]; w < 0.999 || w > 1.001 {
		t.Fatalf("node weights sum to %g, want 1", w)
	}
	if weights[0] != 0.75 && weights[1] != 0.75 {
		t.Fatalf("expected a 0.75 weight from the 3:1 mix, got %v", weights)
	}
	if len(st.Nodes) != 1 || st.Nodes[0].UniformMix {
		t.Fatalf("node status: %+v (want observed mix, not uniform)", st.Nodes)
	}
	if st.Nodes[0].Hash == "" || st.Nodes[0].Entries != 2 {
		t.Fatalf("node table: %+v", st.Nodes[0])
	}
}

func TestBudgetUniformFallbackWithoutObservations(t *testing.T) {
	c := newControl(t, constModels(t, 1, 1), adapt.Config{})
	publishFronted(t, c, "titanx")
	if _, err := c.Register(RegisterRequest{Node: "n1", Device: "titanx"}); err != nil {
		t.Fatal(err)
	}
	st, err := c.SetBudget(context.Background(), budget.Budget{Total: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Plan == nil || len(st.Plan.Allocations) != 2 {
		t.Fatalf("uniform fallback plan: %+v", st.Plan)
	}
	for _, a := range st.Plan.Allocations {
		if a.Weight != 0.5 {
			t.Fatalf("uniform weight %g, want 0.5", a.Weight)
		}
	}
	if len(st.Nodes) != 1 || !st.Nodes[0].UniformMix {
		t.Fatalf("node status should report the uniform fallback: %+v", st.Nodes)
	}
}

func TestReplanWithoutBudgetIsTypedError(t *testing.T) {
	c := newControl(t, constModels(t, 1, 1), adapt.Config{})
	if _, err := c.Replan(context.Background()); !errors.Is(err, ErrNoBudget) {
		t.Fatalf("got %v, want ErrNoBudget", err)
	}
	// HTTP form: POST {"replan": true} with no budget set is 409.
	r := httptest.NewRequest(http.MethodPost, "/fleet/budget", strings.NewReader(`{"replan":true}`))
	w := httptest.NewRecorder()
	c.HandleBudget(w, r)
	if w.Code != http.StatusConflict {
		t.Fatalf("replan without budget: HTTP %d, want 409", w.Code)
	}
}

func TestHandleBudgetValidation(t *testing.T) {
	c := newControl(t, constModels(t, 1, 1), adapt.Config{})
	for body, want := range map[string]int{
		`{}`:                          http.StatusBadRequest, // neither total nor replan
		`{"total":-3}`:                http.StatusBadRequest,
		`{"total":1,"unit":"bogus"}`:  http.StatusBadRequest,
		`{"total":1,"unit":"energy"}`: http.StatusOK, // empty fleet: a valid (trivial) plan
	} {
		r := httptest.NewRequest(http.MethodPost, "/fleet/budget", strings.NewReader(body))
		w := httptest.NewRecorder()
		c.HandleBudget(w, r)
		if w.Code != want {
			t.Errorf("POST %s: HTTP %d, want %d (%s)", body, w.Code, want, w.Body.String())
		}
	}
	r := httptest.NewRequest(http.MethodDelete, "/fleet/budget", nil)
	w := httptest.NewRecorder()
	c.HandleBudget(w, r)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE: HTTP %d, want 405", w.Code)
	}
}

func TestHeartbeatDeliversDecisionTable(t *testing.T) {
	c := newControl(t, constModels(t, 1, 1), adapt.Config{})
	publishFronted(t, c, "titanx")
	man := publishFronted(t, c, "titanx") // reuse active snapshot hash below
	if _, err := c.Register(RegisterRequest{Node: "n1", Device: "titanx", Hash: man.Hash}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SetBudget(context.Background(), budget.Budget{Total: 1}); err != nil {
		t.Fatal(err)
	}
	// Heartbeat with no plan hash: the response carries the table.
	resp, err := c.Register(RegisterRequest{Node: "n1", Device: "titanx", Hash: man.Hash})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Decisions) == 0 {
		t.Fatal("stale heartbeat did not deliver the decision table")
	}
	tbl, err := budget.DecodeTable(resp.Decisions)
	if err != nil {
		t.Fatalf("delivered table invalid: %v", err)
	}
	if tbl.Node != "n1" || tbl.Device != "titanx" {
		t.Fatalf("delivered table identity: %s/%s", tbl.Node, tbl.Device)
	}
	// Heartbeat reporting the current hash: no table in the response.
	resp, err = c.Register(RegisterRequest{Node: "n1", Device: "titanx", Hash: man.Hash, Plan: tbl.Hash})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Decisions) != 0 {
		t.Fatal("up-to-date heartbeat still delivered the table")
	}
	st := c.BudgetStatus()
	if len(st.Nodes) != 1 || !st.Nodes[0].Synced {
		t.Fatalf("node not synced after acknowledging heartbeat: %+v", st.Nodes)
	}
}

func TestMixShiftTriggersReplan(t *testing.T) {
	c := newControl(t, constModels(t, 1, 1), adapt.Config{})
	c.cfg.MixShiftThreshold = 0.3
	publishFronted(t, c, "titanx")
	if _, err := c.Register(RegisterRequest{Node: "n1", Device: "titanx"}); err != nil {
		t.Fatal(err)
	}
	forward(t, c, "n1", "titanx", trainObs(0, 1, 1), trainObs(0, 1, 1))
	st, err := c.SetBudget(context.Background(), budget.Budget{Total: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := st.Replans
	// A small drift stays under the threshold: no replan.
	forward(t, c, "n1", "titanx", trainObs(0, 1, 1))
	if got := c.BudgetStatus().Replans; got != before {
		t.Fatalf("replanned on a sub-threshold drift: %d → %d", before, got)
	}
	// Flood the other kernel: the mix flips and the plan re-solves.
	forward(t, c, "n1", "titanx",
		trainObs(1, 1, 1), trainObs(1, 1, 1), trainObs(1, 1, 1), trainObs(1, 1, 1), trainObs(1, 1, 1))
	after := c.BudgetStatus()
	if after.Replans <= before {
		t.Fatalf("mix flip did not replan: %d → %d (max shift %g)", before, after.Replans, after.MaxMixShift)
	}
}

func TestBudgetPushDeliversToAgent(t *testing.T) {
	c := newControl(t, constModels(t, 1, 1), adapt.Config{})
	publishFronted(t, c, "titanx")

	// A real agent with an HTTP server mounting the decisions endpoint.
	store, err := registry.Open("")
	if err != nil {
		t.Fatal(err)
	}
	eng := newEngineFor(t, "titanx")
	agent, err := NewAgent(AgentConfig{
		Node: "n1", Device: "titanx", Control: "http://unused",
		Store: store, Engine: eng, Serving: registry.NewServing(),
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/decisions", agent.HandleDecisions)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	if _, err := c.Register(RegisterRequest{Node: "n1", Device: "titanx", Addr: srv.URL}); err != nil {
		t.Fatal(err)
	}
	st, err := c.SetBudget(context.Background(), budget.Budget{Total: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.LastPush == nil || st.LastPush.Pushed != 1 {
		t.Fatalf("push round: %+v", st.LastPush)
	}
	as := agent.Status()
	if as.Plan == "" || as.PlanEntries != 2 {
		t.Fatalf("agent table after push: %+v", as)
	}
	if len(st.Nodes) != 1 || !st.Nodes[0].Synced || st.Nodes[0].Hash != as.Plan {
		t.Fatalf("control/agent hash divergence: %+v vs %q", st.Nodes, as.Plan)
	}
	// The agent resolves decisions by kernel features.
	k := engine.TrainingKernels()[0]
	d, ok := agent.DecisionFor(k.Features)
	if !ok {
		t.Fatal("agent cannot resolve a planned kernel")
	}
	if d.Policy.Name != budget.PolicyName {
		t.Fatalf("decision policy %q, want %q", d.Policy.Name, budget.PolicyName)
	}
	var unknown features.Static
	unknown[0] = 12345
	if _, ok := agent.DecisionFor(unknown); ok {
		t.Fatal("agent resolved a kernel that is not in the table")
	}
}

func TestAgentRejectsForeignTables(t *testing.T) {
	store, err := registry.Open("")
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(AgentConfig{
		Node: "n1", Device: "titanx", Control: "http://unused",
		Store: store, Engine: newEngineFor(t, "titanx"), Serving: registry.NewServing(),
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(node, device string) []byte {
		t.Helper()
		k := engine.TrainingKernels()[0]
		doc, err := budget.EncodeTable(&budget.DecisionTable{
			Node: node, Device: device,
			Budget: budget.Budget{Total: 1, Unit: budget.UnitPower}, Feasible: true,
			Entries: []budget.Entry{{
				Kernel: k.Name, Features: k.Features, Weight: 1,
				Decision: trainDecision(),
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return doc
	}
	for name, doc := range map[string][]byte{
		"wrong node":   mk("other", "titanx"),
		"wrong device": mk("n1", "p100"),
	} {
		if _, _, err := agent.InstallTable(doc); !errors.Is(err, budget.ErrBadTable) {
			t.Errorf("%s: got %v, want ErrBadTable", name, err)
		}
		r := httptest.NewRequest(http.MethodPost, "/fleet/decisions", strings.NewReader(string(doc)))
		w := httptest.NewRecorder()
		agent.HandleDecisions(w, r)
		if w.Code != http.StatusConflict {
			t.Errorf("%s: HTTP %d, want 409", name, w.Code)
		}
	}
	// Nothing installed after the rejections.
	if st := agent.Status(); st.Plan != "" {
		t.Fatalf("rejected table was installed: %+v", st)
	}
	r := httptest.NewRequest(http.MethodGet, "/fleet/decisions", nil)
	w := httptest.NewRecorder()
	agent.HandleDecisions(w, r)
	if w.Code != http.StatusNotFound {
		t.Fatalf("GET with no table: HTTP %d, want 404", w.Code)
	}
}

// trainDecision is a minimal valid budget decision for table fixtures.
func trainDecision() (d policy.Decision) {
	d.Policy.Name = budget.PolicyName
	d.Chosen.Config = freq.Config{Mem: 3505, Core: 1000}
	d.Chosen.Speedup = 1
	d.Chosen.NormEnergy = 1
	d.Feasible = true
	d.Candidates = 1
	return d
}
