// Package fleet splits the serving daemon into the resident-daemon
// topology the ROADMAP calls for: thin, memory-resident node agents that
// only serve (predict/batch/select/observe-forward/apply) and a central
// control plane that owns the model registries, fans published snapshots
// out to registered nodes, aggregates the fleet's observation streams, and
// runs drift detection plus guarded retraining per device fleet-wide.
//
// The wire format between the two halves is the registry's own snapshot
// document (registry.ExportDoc / registry.ImportDoc): a push or a
// bootstrap transfers the exact bytes the control plane's store holds, the
// embedded content hash lets every agent verify integrity independently,
// and an agent that installs a document serves bit-identically to every
// other agent holding the same hash. Registration doubles as the
// heartbeat: an agent reports what it serves, and the response carries the
// active snapshot only when the agent is stale — so convergence after a
// partition needs no extra protocol, just the next heartbeat (pull) or the
// next fan-out round (push).
//
// Cross-device bootstrap is a first-class registry operation: a node
// registering with a GPU profile the fleet has never published for is
// warm-started from the nearest schema-compatible donor model
// (gpu.ProfileDistance over the device profiles), exercising the paper's
// titanx↔p100 portability result. "Add a GPU type" then costs a snapshot
// transfer plus a guarded retrain instead of a cold fit; when no
// compatible donor exists the registration says so explicitly.
//
// The in-process multi-node harness and fault-injection helpers live in
// the fleettest subpackage; cmd/gpufreqd mounts the control plane's
// handlers in its default mode and runs an Agent in -agent mode.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/features"
	"repro/internal/gpu"
	"repro/internal/measure"
	"repro/internal/nvml"
	"repro/internal/registry"
	"repro/internal/resilience"
)

// DefaultSyncInterval is the heartbeat interval the control plane
// advertises to agents when the configuration does not override it.
const DefaultSyncInterval = 15 * time.Second

// maxWireBody caps fleet request bodies (snapshot documents dominate;
// model sets at paper scale serialize well under this).
const maxWireBody = 64 << 20

// ControlConfig tunes a control plane. Zero values select the documented
// defaults; only the store (passed to NewControl) is required.
type ControlConfig struct {
	// Opts configures the per-device engines the control plane builds for
	// fleet-wide retraining and holdout evaluation.
	Opts engine.Options
	// Adapt configures the per-device adaptation controllers that aggregate
	// forwarded observations and run drift detection + guarded retrains.
	Adapt adapt.Config
	// TrainKernels overrides the training kernel list for fleet retrains
	// (nil = the full synthetic suite); tests use small subsets.
	TrainKernels []core.TrainingKernel
	// Trainer overrides how a device's candidate trainer is built (nil =
	// adapt.NewEngineTrainer over the device's engine); tests inject fakes.
	Trainer func(device string, eng *engine.Engine) adapt.Trainer
	// Client is the HTTP client snapshot pushes use (nil = a default with
	// a 10 s timeout). The fleettest harness injects a fault-injecting
	// transport here.
	Client *http.Client
	// SyncInterval is the heartbeat interval advertised to agents
	// (0 = DefaultSyncInterval).
	SyncInterval time.Duration
	// BreakerThreshold and BreakerCooldown tune the per-node push circuit
	// breakers (0 = resilience defaults): after BreakerThreshold consecutive
	// push failures a node is skipped by fan-out rounds until BreakerCooldown
	// elapses and a probe push succeeds.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MixShiftThreshold is the per-node kernel-mix L1 drift past which the
	// fleet budget replans automatically (0 = DefaultMixShiftThreshold;
	// negative disables automatic replanning — explicit POSTs still work).
	MixShiftThreshold float64
	// LocalDevice names the device the hosting process serves itself, if
	// any. Observations forwarded for it are routed to LocalObserve (the
	// host's own adaptation loop) instead of a fleet controller, and
	// Activate for it is delegated to LocalActivate, so one device never
	// has two competing retrain loops.
	LocalDevice string
	// LocalObserve ingests an observation for LocalDevice.
	LocalObserve func(adapt.Observation) (adapt.IngestResult, error)
	// LocalActivate activates a stored version for LocalDevice.
	LocalActivate func(version string) error
}

// withDefaults resolves the zero values.
func (c ControlConfig) withDefaults() ControlConfig {
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = DefaultSyncInterval
	}
	return c
}

// nodeState is one registered node's bookkeeping, guarded by Control.mu.
type nodeState struct {
	info NodeInfo
	// mix accumulates the node's observed kernel mix (accepted forwarded
	// observations, keyed by static features) — the fleet budget governor's
	// per-node workload weights.
	mix map[features.Static]*mixEntry
}

// deviceState is the control plane's per-device serving-side state: the
// engine that retrains for the device, the predictor the adaptation
// controller evaluates against, and the controller itself. The control
// plane's LocalDevice has no deviceState — the hosting daemon owns it.
type deviceState struct {
	device string
	eng    *engine.Engine
	ctrl   *adapt.Controller

	mu      sync.RWMutex
	version string
	pred    *engine.Predictor
}

// current is the adapt Current dependency: the device's reference
// predictor and version.
func (ds *deviceState) current() (*engine.Predictor, string, bool) {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.pred, ds.version, ds.pred != nil
}

// setModel swaps the device's reference predictor.
func (ds *deviceState) setModel(version string, pred *engine.Predictor) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.version, ds.pred = version, pred
}

// Control is the fleet control plane: the registry owner, node directory,
// snapshot fan-out, observation aggregator, and fleet-wide adaptation
// loop. All methods are safe for concurrent use.
type Control struct {
	store *registry.Store
	cfg   ControlConfig

	// breakers holds one push circuit breaker per node, so one dead agent
	// cannot slow every fan-out round down by its full connect timeout.
	breakers *resilience.BreakerSet

	mu    sync.Mutex
	nodes map[string]*nodeState
	devs  map[string]*deviceState
	// bud is the fleet budget governor's state (see budget.go).
	bud budgetState
}

// NewControl builds a control plane over a snapshot store (typically the
// hosting daemon's own registry, so locally trained versions and
// fleet-retrained versions live in one place).
func NewControl(store *registry.Store, cfg ControlConfig) *Control {
	cfg = cfg.withDefaults()
	return &Control{
		store: store,
		cfg:   cfg,
		breakers: &resilience.BreakerSet{
			FailureThreshold: cfg.BreakerThreshold,
			Cooldown:         cfg.BreakerCooldown,
		},
		nodes: map[string]*nodeState{},
		devs:  map[string]*deviceState{},
	}
}

// Store returns the registry the control plane owns.
func (c *Control) Store() *registry.Store { return c.store }

// deviceState returns (creating on first use) the per-device state for a
// non-local device; the device name must resolve to a known GPU profile.
func (c *Control) deviceState(device string) (*deviceState, error) {
	if device == c.cfg.LocalDevice && c.cfg.LocalDevice != "" {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ds, ok := c.devs[device]; ok {
		return ds, nil
	}
	dev, err := gpu.ByName(device)
	if err != nil {
		return nil, err
	}
	eng := engine.New(measure.NewHarness(nvml.NewDevice(dev)), c.cfg.Opts)
	ds := &deviceState{device: device, eng: eng}
	var trainer adapt.Trainer
	if c.cfg.Trainer != nil {
		trainer = c.cfg.Trainer(device, eng)
	} else {
		trainer = adapt.NewEngineTrainer(eng, c.cfg.TrainKernels)
	}
	ds.ctrl = adapt.New(c.cfg.Adapt, adapt.Deps{
		Device:  device,
		Store:   c.store,
		Current: ds.current,
		Install: func(version string, m *core.Models) error {
			return c.activateDevice(ds, version, m)
		},
		Trainer: trainer,
		Fronts: func(m *core.Models) *registry.Fronts {
			return registry.ComputeFronts(
				engine.NewPredictor(m, eng.Harness().Device().Sim().Ladder, eng.Options()),
				c.frontKernels())
		},
	})
	// Hydrate the reference predictor from the store so holdout comparison
	// and drift detection work across control-plane restarts.
	if models, _, man, err := c.store.LoadFull(device, ""); err == nil {
		ds.setModel(man.Version, engine.NewPredictor(models, eng.Harness().Device().Sim().Ladder, eng.Options()))
	}
	c.devs[device] = ds
	return ds, nil
}

// frontKernels is the kernel list publish-time fronts are swept over.
func (c *Control) frontKernels() []core.TrainingKernel {
	if c.cfg.TrainKernels != nil {
		return c.cfg.TrainKernels
	}
	return engine.TrainingKernels()
}

// activateDevice activates a version for a fleet-managed device — store
// pointer, reference predictor, then fan-out — as one step. It is the
// Install dependency of the device's adaptation controller.
func (c *Control) activateDevice(ds *deviceState, version string, m *core.Models) error {
	if err := c.store.Activate(ds.device, version); err != nil {
		return err
	}
	ds.setModel(version, engine.NewPredictor(m, ds.eng.Harness().Device().Sim().Ladder, ds.eng.Options()))
	c.PushDevice(context.Background(), ds.device)
	// A new active snapshot means new front tables: the fleet budget plan
	// (if one is set) is re-solved and re-pushed alongside the fan-out.
	c.maybeReplan(context.Background())
	return nil
}

// Activate loads, verifies, activates, and fans out a stored version for
// any device — the fleet analogue of the daemon's /models/{id}/activate
// for devices the control plane does not serve locally. For LocalDevice it
// delegates to the hosting daemon's activation path.
func (c *Control) Activate(ctx context.Context, device, version string) error {
	if device == c.cfg.LocalDevice && c.cfg.LocalActivate != nil {
		return c.cfg.LocalActivate(version)
	}
	ds, err := c.deviceState(device)
	if err != nil {
		return err
	}
	models, man, err := c.store.Load(device, version)
	if err != nil {
		return err
	}
	if ds == nil {
		// Local device without a LocalActivate hook: store-only activation.
		return c.store.Activate(device, man.Version)
	}
	return c.activateDevice(ds, man.Version, models)
}

// Register enrolls (or heartbeats) a node and decides what, if anything,
// it should install — see RegisterRequest/RegisterResponse for the
// protocol. Besides the snapshot, the response carries the node's fleet
// decision table when its reported plan hash is stale.
func (c *Control) Register(req RegisterRequest) (RegisterResponse, error) {
	resp, err := c.registerSnapshot(req)
	if err != nil {
		return resp, err
	}
	c.budgetHeartbeat(req.Node, req.Plan, &resp)
	return resp, nil
}

// registerSnapshot is the snapshot half of Register: enrollment, staleness
// check, cross-device bootstrap.
func (c *Control) registerSnapshot(req RegisterRequest) (RegisterResponse, error) {
	if req.Node == "" || req.Device == "" {
		return RegisterResponse{}, errors.New("fleet: register needs node and device")
	}
	if _, err := gpu.ByName(req.Device); err != nil {
		return RegisterResponse{}, fmt.Errorf("fleet: %v", err)
	}
	if _, err := c.deviceState(req.Device); err != nil {
		return RegisterResponse{}, err
	}

	now := time.Now().UTC()
	c.mu.Lock()
	ns, ok := c.nodes[req.Node]
	if !ok {
		ns = &nodeState{info: NodeInfo{Node: req.Node, RegisteredAt: now}}
		c.nodes[req.Node] = ns
	}
	ns.info.Device = req.Device
	if req.Addr != "" {
		ns.info.Addr = req.Addr
	}
	ns.info.Version, ns.info.Hash = req.Version, req.Hash
	ns.info.Plan = req.Plan
	ns.info.LastSeen = now
	c.mu.Unlock()

	resp := RegisterResponse{Node: req.Node, Device: req.Device, SyncSeconds: c.cfg.SyncInterval.Seconds()}
	st, active := c.store.ActiveState(req.Device)
	if active {
		resp.Active = st.Version
		man, err := c.store.GetManifest(req.Device, st.Version)
		if err != nil {
			return resp, fmt.Errorf("fleet: active snapshot %s/%s: %w", req.Device, st.Version, err)
		}
		if man.Hash != req.Hash {
			doc, err := c.store.ExportDoc(req.Device, st.Version)
			if err != nil {
				return resp, fmt.Errorf("fleet: exporting %s/%s: %w", req.Device, st.Version, err)
			}
			resp.Snapshot = doc
		}
		return resp, nil
	}

	// No published model for this device: offer a cross-device bootstrap
	// from the nearest schema-compatible donor — or say explicitly that
	// none exists.
	donor, version, dist, err := c.nearest(req.Device)
	if err != nil {
		resp.BootstrapError = err.Error()
		return resp, nil
	}
	man, err := c.store.GetManifest(donor, version)
	if err != nil {
		resp.BootstrapError = err.Error()
		return resp, nil
	}
	if man.Hash == req.Hash {
		return resp, nil // agent already serves the donor snapshot
	}
	doc, err := c.store.ExportDoc(donor, version)
	if err != nil {
		resp.BootstrapError = err.Error()
		return resp, nil
	}
	resp.Snapshot = doc
	resp.Bootstrap = &BootstrapInfo{Donor: donor, Version: version, Distance: dist}
	c.seedBaseline(req.Device, donor, version)
	return resp, nil
}

// nearest finds the closest donor device for target by profile distance.
func (c *Control) nearest(target string) (device, version string, dist float64, err error) {
	targetDev, err := gpu.ByName(target)
	if err != nil {
		return "", "", 0, err
	}
	return c.store.Nearest(target, func(candidate string) (float64, bool) {
		d, err := gpu.ByName(candidate)
		if err != nil {
			return 0, false
		}
		return gpu.ProfileDistance(targetDev, d), true
	})
}

// seedBaseline points a bootstrapped device's reference predictor at the
// donor's models (over the device's own ladder), so forwarded
// observations immediately feed drift detection and the first guarded
// retrain has an active model to beat on the holdout.
func (c *Control) seedBaseline(device, donor, version string) {
	ds, err := c.deviceState(device)
	if err != nil || ds == nil {
		return
	}
	if _, _, ok := ds.current(); ok {
		return
	}
	models, man, err := c.store.Load(donor, version)
	if err != nil {
		return
	}
	ds.setModel(man.Version, engine.NewPredictor(models, ds.eng.Harness().Device().Sim().Ladder, ds.eng.Options()))
}

// Observe ingests a batch of observations forwarded by one agent,
// stamping each with the reporting node and routing it to the device's
// fleet controller (or the hosting daemon's own loop for LocalDevice).
func (c *Control) Observe(req ObserveRequest) (ObserveResponse, error) {
	if req.Device == "" {
		return ObserveResponse{}, errors.New("fleet: observe needs a device")
	}
	ingest := c.cfg.LocalObserve
	var ds *deviceState
	if req.Device != c.cfg.LocalDevice || c.cfg.LocalObserve == nil {
		var err error
		if ds, err = c.deviceState(req.Device); err != nil {
			return ObserveResponse{}, err
		}
		if ds == nil {
			return ObserveResponse{}, fmt.Errorf("fleet: no observation sink for %s", req.Device)
		}
		ingest = ds.ctrl.Observe
	}
	resp := ObserveResponse{Device: req.Device, Results: make([]ObserveResult, len(req.Observations))}
	for i, o := range req.Observations {
		o.Node = req.Node
		res, err := ingest(o)
		if err != nil {
			resp.Results[i].Error = err.Error()
			continue
		}
		r := res
		resp.Results[i].Ingest = &r
	}
	if ds != nil {
		resp.Store = ds.ctrl.StoreStats()
	}
	// Fold the accepted observations into the node's kernel mix and replan
	// the fleet budget if the mix drifted past the threshold.
	c.recordMix(req.Node, req.Observations, resp.Results)
	c.checkMixShift(context.Background())
	return resp, nil
}

// AdaptStatus returns the fleet adaptation controller's status for a
// device managed by the control plane (ok=false for LocalDevice or a
// device no node has registered for).
func (c *Control) AdaptStatus(device string) (adapt.Status, bool) {
	c.mu.Lock()
	ds, ok := c.devs[device]
	c.mu.Unlock()
	if !ok {
		return adapt.Status{}, false
	}
	return ds.ctrl.Status(), true
}

// Nodes lists the registered nodes, sorted by node id, with their sync
// verdict against the current active snapshots.
func (c *Control) Nodes() []NodeInfo {
	c.mu.Lock()
	out := make([]NodeInfo, 0, len(c.nodes))
	for _, ns := range c.nodes {
		out = append(out, ns.info)
	}
	c.mu.Unlock()
	for i := range out {
		out[i].Synced = true
		if st, ok := c.store.ActiveState(out[i].Device); ok {
			man, err := c.store.GetManifest(out[i].Device, st.Version)
			out[i].Synced = err == nil && man.Hash == out[i].Hash
		}
		out[i].Breaker = c.breakers.State(out[i].Node)
	}
	sortNodes(out)
	return out
}

// sortNodes orders node listings by id for deterministic output.
func sortNodes(nodes []NodeInfo) {
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && nodes[j].Node < nodes[j-1].Node; j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
}

// PushDevice fans the device's active snapshot out to every registered
// node of that device whose reported hash differs, concurrently, and
// reports the round. Nodes that cannot be reached stay stale and are
// retried by the next heartbeat or push round; a fan-out never fails an
// activation.
func (c *Control) PushDevice(ctx context.Context, device string) PushReport {
	report := PushReport{Device: device}
	st, ok := c.store.ActiveState(device)
	if !ok {
		return report
	}
	man, err := c.store.GetManifest(device, st.Version)
	if err != nil {
		report.Errors = append(report.Errors, fmt.Sprintf("%s: %v", device, err))
		return report
	}
	doc, err := c.store.ExportDoc(device, st.Version)
	if err != nil {
		report.Errors = append(report.Errors, fmt.Sprintf("%s: %v", device, err))
		return report
	}

	c.mu.Lock()
	var stale []NodeInfo
	for _, ns := range c.nodes {
		if ns.info.Device == device && ns.info.Hash != man.Hash && ns.info.Addr != "" {
			stale = append(stale, ns.info)
		}
	}
	c.mu.Unlock()

	// Targets counts every stale node considered; nodes whose breaker is
	// open are skipped without contact so a dead agent never delays the
	// healthy rest of the round. A skipped node still converges via its own
	// heartbeat, or via the breaker's probe once the cool-down elapses.
	report.Targets = len(stale)
	var targets []NodeInfo
	for _, n := range stale {
		if c.breakers.Get(n.Node).Allow() {
			targets = append(targets, n)
		} else {
			report.Skipped++
		}
	}
	type outcome struct {
		node string
		resp SnapshotResponse
		err  error
	}
	results := make(chan outcome, len(targets))
	for _, n := range targets {
		go func(n NodeInfo) {
			resp, err := c.pushTo(ctx, n, doc)
			results <- outcome{node: n.Node, resp: resp, err: err}
		}(n)
	}
	for range targets {
		o := <-results
		c.breakers.Get(o.node).Record(o.err)
		c.mu.Lock()
		ns := c.nodes[o.node]
		if ns != nil {
			ns.info.Pushes++
			if o.err != nil {
				ns.info.PushErrors++
				ns.info.LastError = o.err.Error()
			} else {
				ns.info.LastError = ""
				ns.info.Version, ns.info.Hash = o.resp.Version, o.resp.Hash
			}
		}
		c.mu.Unlock()
		if o.err != nil {
			report.Errors = append(report.Errors, fmt.Sprintf("%s: %v", o.node, o.err))
		} else {
			report.Pushed++
		}
	}
	return report
}

// PushAll runs a fan-out round for every device that has an active
// snapshot — the operator-triggered "re-sync the fleet" action behind
// POST /fleet/push.
func (c *Control) PushAll(ctx context.Context) PushReport {
	devices, err := c.store.Devices()
	report := PushReport{}
	if err != nil {
		report.Errors = append(report.Errors, err.Error())
		return report
	}
	for _, d := range devices {
		r := c.PushDevice(ctx, d)
		report.Targets += r.Targets
		report.Pushed += r.Pushed
		report.Skipped += r.Skipped
		report.Errors = append(report.Errors, r.Errors...)
	}
	return report
}

// pushTo delivers one snapshot document to one node's /fleet/snapshot.
func (c *Control) pushTo(ctx context.Context, n NodeInfo, doc []byte) (SnapshotResponse, error) {
	url := strings.TrimSuffix(n.Addr, "/") + "/fleet/snapshot"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(string(doc)))
	if err != nil {
		return SnapshotResponse{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	httpResp, err := c.cfg.Client.Do(req)
	if err != nil {
		return SnapshotResponse{}, err
	}
	defer httpResp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(httpResp.Body, 1<<20))
	if err != nil {
		return SnapshotResponse{}, err
	}
	if httpResp.StatusCode != http.StatusOK {
		return SnapshotResponse{}, fmt.Errorf("push: %s: %s", httpResp.Status, strings.TrimSpace(string(body)))
	}
	var resp SnapshotResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return SnapshotResponse{}, fmt.Errorf("push: decoding response: %v", err)
	}
	return resp, nil
}

// HandleRegister is the HTTP form of Register (POST /fleet/register).
func (c *Control) HandleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !readWire(w, r, &req) {
		return
	}
	resp, err := c.Register(req)
	if err != nil {
		writeWireError(w, http.StatusBadRequest, err)
		return
	}
	writeWire(w, http.StatusOK, resp)
}

// HandleObserve is the HTTP form of Observe (POST /fleet/observe).
func (c *Control) HandleObserve(w http.ResponseWriter, r *http.Request) {
	var req ObserveRequest
	if !readWire(w, r, &req) {
		return
	}
	if len(req.Observations) == 0 {
		writeWireError(w, http.StatusBadRequest, errors.New("no observations in request"))
		return
	}
	resp, err := c.Observe(req)
	if err != nil {
		writeWireError(w, http.StatusBadRequest, err)
		return
	}
	writeWire(w, http.StatusOK, resp)
}

// HandleNodes is GET /fleet/nodes.
func (c *Control) HandleNodes(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeWireError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	writeWire(w, http.StatusOK, NodesResponse{Nodes: c.Nodes()})
}

// HandlePush is POST /fleet/push: re-fan-out every device's active
// snapshot to its stale nodes.
func (c *Control) HandlePush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeWireError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	writeWire(w, http.StatusOK, c.PushAll(r.Context()))
}

// readWire decodes a POSTed JSON body with the same strictness and error
// shape as the daemon's endpoints; it writes the error response itself and
// reports whether decoding succeeded.
func readWire(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeWireError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return false
	}
	dec := json.NewDecoder(io.LimitReader(r.Body, maxWireBody))
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			writeWireError(w, http.StatusBadRequest, errors.New("empty request body"))
		} else {
			writeWireError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		}
		return false
	}
	if dec.More() {
		writeWireError(w, http.StatusBadRequest, errors.New("bad request body: trailing data after the JSON document"))
		return false
	}
	return true
}

// writeWire writes a JSON response in the daemon's format.
func writeWire(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeWireError writes the daemon's structured {"error": ...} shape.
func writeWireError(w http.ResponseWriter, status int, err error) {
	writeWire(w, status, map[string]string{"error": err.Error()})
}
