package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/features"
	"repro/internal/freq"
	"repro/internal/gpu"
	"repro/internal/measure"
	"repro/internal/nvml"
	"repro/internal/registry"
	"repro/internal/svm"
)

// constModels builds a support-vector-free model set predicting exactly
// (speedup, energy) everywhere — cheap, deterministic, schema-valid.
func constModels(t *testing.T, speedup, energy float64) *core.Models {
	t.Helper()
	build := func(b float64) *svm.Model {
		doc := `{"kernel":{"type":"linear"},"support_vectors":[],"coefs":[],"b":` +
			strconv.FormatFloat(b, 'g', -1, 64) + `}`
		m, err := svm.Load(strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	return &core.Models{Speedup: build(speedup), Energy: build(energy)}
}

// newEngineFor builds a small engine over the named device profile.
func newEngineFor(t *testing.T, device string) *engine.Engine {
	t.Helper()
	dev, err := gpu.ByName(device)
	if err != nil {
		t.Fatal(err)
	}
	return engine.New(measure.NewHarness(nvml.NewDevice(dev)), engine.Options{
		Workers: 1,
		Core:    core.Options{SettingsPerKernel: 2},
	})
}

// publishConst saves a constant model set for a device and activates it.
func publishConst(t *testing.T, store *registry.Store, device string, speedup, energy float64) registry.Manifest {
	t.Helper()
	man, err := store.Save(device, "", constModels(t, speedup, energy), registry.Training{})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Activate(device, man.Version); err != nil {
		t.Fatal(err)
	}
	return man
}

// obsFor builds a valid observation with the given measured objectives.
func obsFor(speedup, energy float64) adapt.Observation {
	var st features.Static
	st[0] = 0.5
	return adapt.Observation{
		Kernel:     "k",
		Features:   st,
		Config:     freq.Config{Mem: 3505, Core: 1000},
		Speedup:    speedup,
		NormEnergy: energy,
	}
}

// fakeTrainer returns fixed candidate models without any real training.
type fakeTrainer struct{ models *core.Models }

func (f fakeTrainer) Fit(ctx context.Context, extra []core.Sample, prior *core.Models) (*core.Models, registry.Training, error) {
	return f.models, registry.Training{Observations: len(extra)}, nil
}

// newControl builds a control plane over a memory store with a fake
// trainer and a tiny front-sweep kernel set.
func newControl(t *testing.T, candidate *core.Models, cfg adapt.Config) *Control {
	t.Helper()
	store, err := registry.Open("")
	if err != nil {
		t.Fatal(err)
	}
	return NewControl(store, ControlConfig{
		Opts:         engine.Options{Workers: 1, Core: core.Options{SettingsPerKernel: 2}},
		Adapt:        cfg,
		TrainKernels: engine.TrainingKernels()[:2],
		Trainer: func(string, *engine.Engine) adapt.Trainer {
			return fakeTrainer{models: candidate}
		},
	})
}

func TestRegisterValidation(t *testing.T) {
	c := newControl(t, constModels(t, 1, 1), adapt.Config{})
	if _, err := c.Register(RegisterRequest{Device: "titanx"}); err == nil {
		t.Error("register without a node id accepted")
	}
	if _, err := c.Register(RegisterRequest{Node: "n1"}); err == nil {
		t.Error("register without a device accepted")
	}
	if _, err := c.Register(RegisterRequest{Node: "n1", Device: "gtx9000"}); err == nil {
		t.Error("register with an unknown device profile accepted")
	}
}

func TestRegisterHandsSnapshotOnlyWhenStale(t *testing.T) {
	c := newControl(t, constModels(t, 1, 1), adapt.Config{})
	man := publishConst(t, c.Store(), "titanx", 1, 1)

	// A fresh node gets the active snapshot.
	resp, err := c.Register(RegisterRequest{Node: "n1", Addr: "http://127.0.0.1:1", Device: "titanx"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Active != man.Version || len(resp.Snapshot) == 0 || resp.Bootstrap != nil {
		t.Fatalf("fresh-node response: active=%q snapshot=%dB bootstrap=%v",
			resp.Active, len(resp.Snapshot), resp.Bootstrap)
	}
	if resp.SyncSeconds <= 0 {
		t.Errorf("SyncSeconds = %v, want the advertised heartbeat interval", resp.SyncSeconds)
	}

	// A node already serving the active hash gets an acknowledgement only.
	resp, err = c.Register(RegisterRequest{Node: "n1", Device: "titanx", Version: man.Version, Hash: man.Hash})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Snapshot) != 0 {
		t.Fatalf("up-to-date heartbeat still got a %dB snapshot", len(resp.Snapshot))
	}

	nodes := c.Nodes()
	if len(nodes) != 1 || !nodes[0].Synced || nodes[0].Hash != man.Hash {
		t.Fatalf("nodes after heartbeat: %+v", nodes)
	}
}

func TestRegisterBootstrapsFromNearestDonor(t *testing.T) {
	c := newControl(t, constModels(t, 1, 1), adapt.Config{})
	man := publishConst(t, c.Store(), "titanx", 1, 1)

	resp, err := c.Register(RegisterRequest{Node: "p1", Device: "p100"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Snapshot) == 0 || resp.Bootstrap == nil {
		t.Fatalf("no bootstrap offered: %+v", resp)
	}
	if resp.Bootstrap.Donor != "titanx" || resp.Bootstrap.Version != man.Version {
		t.Fatalf("bootstrap = %+v, want titanx/%s", resp.Bootstrap, man.Version)
	}
	if resp.Bootstrap.Distance <= 0 {
		t.Errorf("distance = %g, want > 0 for distinct profiles", resp.Bootstrap.Distance)
	}
	if resp.Active != "" {
		t.Errorf("Active = %q, want empty: p100 has no published model", resp.Active)
	}

	// The bootstrap seeds the fleet controller's baseline, so forwarded
	// p100 observations immediately feed drift detection.
	oresp, err := c.Observe(ObserveRequest{Node: "p1", Device: "p100",
		Observations: []adapt.Observation{obsFor(1, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	if oresp.Results[0].Error != "" || oresp.Results[0].Ingest == nil || !oresp.Results[0].Ingest.Stored {
		t.Fatalf("post-bootstrap observation not ingested: %+v", oresp.Results[0])
	}
}

func TestRegisterNoDonorIsExplicit(t *testing.T) {
	c := newControl(t, constModels(t, 1, 1), adapt.Config{})
	resp, err := c.Register(RegisterRequest{Node: "p1", Device: "p100"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.BootstrapError == "" || !strings.Contains(resp.BootstrapError, "no compatible donor") {
		t.Fatalf("BootstrapError = %q, want an explicit no-donor explanation", resp.BootstrapError)
	}
	if len(resp.Snapshot) != 0 {
		t.Fatal("a snapshot was handed out despite no donor")
	}
	// The registration itself still stands: the node is enrolled and will
	// receive the device's first published snapshot.
	if nodes := c.Nodes(); len(nodes) != 1 || nodes[0].Node != "p1" {
		t.Fatalf("nodes = %+v, want the registration to stand", nodes)
	}
}

func TestObserveStampsNodesAndAggregates(t *testing.T) {
	c := newControl(t, constModels(t, 1, 1), adapt.Config{})
	publishConst(t, c.Store(), "titanx", 1, 1)
	for _, n := range []string{"n1", "n1", "n2"} {
		resp, err := c.Observe(ObserveRequest{Node: n, Device: "titanx",
			Observations: []adapt.Observation{obsFor(1, 1)}})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Results[0].Error != "" {
			t.Fatalf("node %s observation rejected: %s", n, resp.Results[0].Error)
		}
	}
	st, ok := c.AdaptStatus("titanx")
	if !ok {
		t.Fatal("no fleet adapt status for titanx")
	}
	if st.Store.Count != 3 || st.Store.Nodes["n1"] != 2 || st.Store.Nodes["n2"] != 1 {
		t.Fatalf("aggregated store stats: %+v", st.Store)
	}

	// Invalid observations are rejected per item, not per batch.
	bad := obsFor(1, 1)
	bad.Speedup = -1
	resp, err := c.Observe(ObserveRequest{Node: "n1", Device: "titanx",
		Observations: []adapt.Observation{bad, obsFor(1, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Error == "" || resp.Results[1].Error != "" {
		t.Fatalf("per-item verdicts: %+v", resp.Results)
	}
}

func TestFleetRetrainActivatesAndFansOut(t *testing.T) {
	// The fleet controller for titanx sees drifting observations, retrains
	// with the (fake) trainer, passes the holdout, activates v0002 — and the
	// fan-out delivers it to the registered agent.
	c := newControl(t, constModels(t, 0.5, 0.5), adapt.Config{
		Auto: true, Sync: true, MinSamples: 4,
		BaselineSpeedup: 0.02, BaselineEnergy: 0.02, Cooldown: time.Hour,
	})
	man := publishConst(t, c.Store(), "titanx", 1, 1)

	// A push-reachable agent serving v0001.
	ag := newAgentRig(t, "titanx", "http://unused")
	srv := httptest.NewServer(http.HandlerFunc(ag.agent.HandleSnapshot))
	defer srv.Close()
	if _, err := c.Register(RegisterRequest{Node: "n1", Addr: srv.URL, Device: "titanx",
		Version: man.Version, Hash: man.Hash}); err != nil {
		t.Fatal(err)
	}
	doc, err := c.Store().ExportDoc("titanx", man.Version)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ag.agent.InstallDoc(doc); err != nil {
		t.Fatal(err)
	}

	// Drifting observations (measured 0.5 vs predicted 1.0) trigger the
	// guarded retrain; Sync mode runs it inline.
	for i := 0; i < 8; i++ {
		resp, err := c.Observe(ObserveRequest{Node: "n1", Device: "titanx",
			Observations: []adapt.Observation{obsFor(0.5, 0.5)}})
		if err != nil {
			t.Fatal(err)
		}
		if e := resp.Results[0].Error; e != "" {
			t.Fatalf("observation %d rejected: %s", i, e)
		}
	}

	st, ok := c.AdaptStatus("titanx")
	if !ok || st.Retrain.Retrains != 1 || st.Retrain.LastOutcome != adapt.OutcomeActivated {
		t.Fatalf("fleet retrain state: %+v", st.Retrain)
	}
	active, ok := c.Store().Active("titanx")
	if !ok || active != "v0002" {
		t.Fatalf("active = %q (ok=%v), want v0002", active, ok)
	}
	// The activation fan-out reached the agent.
	if got := ag.serving.Version(); got != "v0002" {
		t.Fatalf("agent serves %q after fan-out, want v0002", got)
	}
	nodes := c.Nodes()
	if len(nodes) != 1 || !nodes[0].Synced || nodes[0].Pushes != 1 || nodes[0].PushErrors != 0 {
		t.Fatalf("node accounting after fan-out: %+v", nodes)
	}
}

func TestPushDeviceRecordsUnreachableNodes(t *testing.T) {
	c := newControl(t, constModels(t, 1, 1), adapt.Config{})
	man := publishConst(t, c.Store(), "titanx", 1, 1)
	// The node's address points at a closed port.
	if _, err := c.Register(RegisterRequest{Node: "dead", Addr: "http://127.0.0.1:1", Device: "titanx"}); err != nil {
		t.Fatal(err)
	}
	report := c.PushDevice(context.Background(), "titanx")
	if report.Targets != 1 || report.Pushed != 0 || len(report.Errors) != 1 {
		t.Fatalf("push report: %+v", report)
	}
	nodes := c.Nodes()
	if nodes[0].PushErrors != 1 || nodes[0].LastError == "" || nodes[0].Synced {
		t.Fatalf("node accounting after failed push: %+v", nodes)
	}
	_ = man

	// A device with no active snapshot is a no-op round.
	if r := c.PushDevice(context.Background(), "p100"); r.Targets != 0 || len(r.Errors) != 0 {
		t.Fatalf("no-snapshot push report: %+v", r)
	}
}

func TestActivateFansOutStoredVersion(t *testing.T) {
	c := newControl(t, constModels(t, 1, 1), adapt.Config{})
	publishConst(t, c.Store(), "titanx", 1, 1)
	man2, err := c.Store().Save("titanx", "", constModels(t, 2, 2), registry.Training{})
	if err != nil {
		t.Fatal(err)
	}

	ag := newAgentRig(t, "titanx", "http://unused")
	srv := httptest.NewServer(http.HandlerFunc(ag.agent.HandleSnapshot))
	defer srv.Close()
	if _, err := c.Register(RegisterRequest{Node: "n1", Addr: srv.URL, Device: "titanx"}); err != nil {
		t.Fatal(err)
	}

	if err := c.Activate(context.Background(), "titanx", man2.Version); err != nil {
		t.Fatal(err)
	}
	if active, _ := c.Store().Active("titanx"); active != man2.Version {
		t.Fatalf("active = %q, want %q", active, man2.Version)
	}
	if got := ag.serving.Version(); got != man2.Version {
		t.Fatalf("agent serves %q after Activate fan-out, want %q", got, man2.Version)
	}
}
