package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/adapt"
	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/policy"
)

// DefaultMixShiftThreshold is the L1 distance between a node's current
// kernel-mix weights and its plan-time weights past which the control
// plane replans automatically. Mix weights sum to 1 per node, so the
// distance ranges [0, 2]; 0.25 means "a quarter of the node's time moved
// to different kernels".
const DefaultMixShiftThreshold = 0.25

// mixEntry is one kernel's share of a node's observed workload: the
// feature vector is the identity (and the front-table lookup key), the
// name is diagnostic, the count accumulates accepted observations.
type mixEntry struct {
	kernel string
	count  float64
}

// budgetState is the control plane's fleet-budget bookkeeping, guarded by
// Control.mu. The encoded docs are what heartbeats and pushes deliver, so
// every delivery carries the exact bytes (and hash) the plan was cut into.
type budgetState struct {
	set     bool
	budget  budget.Budget
	plan    *budget.Plan
	tables  map[string]*budget.DecisionTable
	docs    map[string][]byte
	planMix map[string]map[features.Static]float64
	planned time.Time
	replans int
	notes   []string
	last    *PushReport
	// inflight serializes replans without holding mu across the solve and
	// the push round; a replan requested while one runs is skipped (the
	// running one solves over the freshest mix snapshot it took).
	inflight bool
}

// ErrNoBudget is returned by Replan when no fleet budget has been set.
var ErrNoBudget = errors.New("fleet: no budget set")

// recordMix accumulates accepted observations into the reporting node's
// kernel mix. Called by Observe with the ingest results so rejected
// observations (bad features, bad objectives) never steer the plan.
func (c *Control) recordMix(node string, obs []adapt.Observation, results []ObserveResult) {
	if node == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ns, ok := c.nodes[node]
	if !ok {
		return
	}
	for i, o := range obs {
		if i < len(results) && results[i].Ingest == nil {
			continue
		}
		if ns.mix == nil {
			ns.mix = map[features.Static]*mixEntry{}
		}
		e := ns.mix[o.Features]
		if e == nil {
			e = &mixEntry{kernel: o.Kernel}
			ns.mix[o.Features] = e
		}
		if e.kernel == "" {
			e.kernel = o.Kernel
		}
		e.count++
	}
}

// mixWeights normalizes a node's mix counts to weights summing to 1.
func mixWeights(mix map[features.Static]*mixEntry) map[features.Static]float64 {
	var total float64
	for _, e := range mix {
		total += e.count
	}
	if total <= 0 {
		return nil
	}
	out := make(map[features.Static]float64, len(mix))
	for f, e := range mix {
		out[f] = e.count / total
	}
	return out
}

// mixShift is the L1 distance between two weight maps over their union —
// 0 for identical mixes, 2 for disjoint ones.
func mixShift(now, then map[features.Static]float64) float64 {
	var d float64
	for f, w := range now {
		d += absf(w - then[f])
	}
	for f, w := range then {
		if _, ok := now[f]; !ok {
			d += w
		}
	}
	return d
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// mixShiftThreshold resolves the configured auto-replan threshold
// (0 = DefaultMixShiftThreshold; negative disables auto-replanning).
func (c *Control) mixShiftThreshold() float64 {
	if c.cfg.MixShiftThreshold == 0 {
		return DefaultMixShiftThreshold
	}
	return c.cfg.MixShiftThreshold
}

// SetBudget validates and installs the fleet budget, then replans and
// pushes the resulting decision tables.
func (c *Control) SetBudget(ctx context.Context, b budget.Budget) (BudgetStatusResponse, error) {
	if err := b.Validate(); err != nil {
		return BudgetStatusResponse{}, err
	}
	c.mu.Lock()
	c.bud.set = true
	c.bud.budget = b.WithDefaults()
	c.mu.Unlock()
	return c.Replan(ctx)
}

// maybeReplan replans if a budget is set — the hook snapshot activation
// (fronts changed) and mix drift (weights changed) share. Failures are
// recorded in the status notes, never propagated: a replan must not fail
// the operation that triggered it.
func (c *Control) maybeReplan(ctx context.Context) {
	c.mu.Lock()
	set := c.bud.set
	c.mu.Unlock()
	if !set {
		return
	}
	if _, err := c.Replan(ctx); err != nil && !errors.Is(err, ErrNoBudget) {
		c.mu.Lock()
		c.bud.notes = append(c.bud.notes, fmt.Sprintf("replan failed: %v", err))
		c.mu.Unlock()
	}
}

// checkMixShift triggers an automatic replan when any node's observed mix
// drifted past the threshold since the last plan. Called by Observe after
// ingest; the replan (solve + breaker-aware push round) runs on the
// calling goroutine, so a forwarding agent's request observes the plan it
// caused.
func (c *Control) checkMixShift(ctx context.Context) {
	threshold := c.mixShiftThreshold()
	if threshold < 0 {
		return
	}
	c.mu.Lock()
	trigger := false
	if c.bud.set && c.bud.plan != nil && !c.bud.inflight {
		for node, ns := range c.nodes {
			if shift := mixShift(mixWeights(ns.mix), c.bud.planMix[node]); shift >= threshold {
				trigger = true
				break
			}
		}
	}
	c.mu.Unlock()
	if trigger {
		c.maybeReplan(ctx)
	}
}

// budgetItems snapshots the fleet's allocation problem: one budget.Item
// per (node, observed kernel) over the node's device's active front table.
// A node with no observed mix yet is allocated over a uniform mix of its
// device's whole front table (every published kernel weighted equally), so
// a budget set before traffic arrives still yields a concrete plan.
// Returns the items, the (node, kernel label) → features resolver data,
// the node → device map, and human-readable notes for skipped work.
func (c *Control) budgetItems() ([]budget.Item, map[string]map[string]features.Static, map[string]string, []string) {
	type nodeSnap struct {
		device string
		mix    map[features.Static]*mixEntry
	}
	c.mu.Lock()
	nodes := make(map[string]nodeSnap, len(c.nodes))
	for name, ns := range c.nodes {
		snap := nodeSnap{device: ns.info.Device, mix: make(map[features.Static]*mixEntry, len(ns.mix))}
		for f, e := range ns.mix {
			cp := *e
			snap.mix[f] = &cp
		}
		nodes[name] = snap
	}
	c.mu.Unlock()

	type frontTable struct {
		byFeat map[features.Static]*frontEntryRef
		err    error
	}
	fronts := map[string]*frontTable{}
	loadFronts := func(device string) *frontTable {
		if t, ok := fronts[device]; ok {
			return t
		}
		t := &frontTable{byFeat: map[features.Static]*frontEntryRef{}}
		fr, err := c.store.LoadFronts(device, "")
		if err != nil {
			t.err = err
		} else if fr != nil { // nil, nil: snapshot published without fronts
			for i := range fr.Kernels {
				e := &fr.Kernels[i]
				if _, dup := t.byFeat[e.Features]; !dup {
					t.byFeat[e.Features] = &frontEntryRef{name: e.Name, pareto: e.Pareto}
				}
			}
		}
		fronts[device] = t
		return t
	}

	var items []budget.Item
	labels := map[string]map[string]features.Static{}
	devices := map[string]string{}
	var notes []string
	for node, snap := range nodes {
		devices[node] = snap.device
		tbl := loadFronts(snap.device)
		if tbl.err != nil {
			notes = append(notes, fmt.Sprintf("node %s: no front table for %s: %v", node, snap.device, tbl.err))
			continue
		}
		if len(tbl.byFeat) == 0 {
			notes = append(notes, fmt.Sprintf("node %s: device %s publishes an empty front table", node, snap.device))
			continue
		}
		weights := mixWeights(snap.mix)
		uniform := len(weights) == 0
		type slot struct {
			feat   features.Static
			name   string
			weight float64
		}
		var slots []slot
		if uniform {
			w := 1 / float64(len(tbl.byFeat))
			for f, e := range tbl.byFeat {
				slots = append(slots, slot{feat: f, name: e.name, weight: w})
			}
		} else {
			var matched float64
			for f, w := range weights {
				e, ok := tbl.byFeat[f]
				if !ok {
					notes = append(notes, fmt.Sprintf("node %s: observed kernel %q has no published front; excluded from the plan",
						node, snap.mix[f].kernel))
					continue
				}
				name := snap.mix[f].kernel
				if name == "" {
					name = e.name
				}
				slots = append(slots, slot{feat: f, name: name, weight: w})
				matched += w
			}
			if matched <= 0 {
				notes = append(notes, fmt.Sprintf("node %s: no observed kernel has a published front; using the uniform mix", node))
				w := 1 / float64(len(tbl.byFeat))
				for f, e := range tbl.byFeat {
					slots = append(slots, slot{feat: f, name: e.name, weight: w})
				}
			} else {
				// Renormalize over the matched kernels so the node still
				// weighs 1.0 at default clocks.
				for i := range slots {
					slots[i].weight /= matched
				}
			}
		}
		// Kernel labels must be unique within a node; identical names on
		// distinct feature vectors get a positional suffix.
		used := map[string]int{}
		nodeLabels := map[string]features.Static{}
		for _, s := range slots {
			label := s.name
			if label == "" {
				label = "kernel"
			}
			if n := used[label]; n > 0 {
				used[label] = n + 1
				label = fmt.Sprintf("%s#%d", label, n+1)
			}
			used[label]++
			front := tbl.byFeat[s.feat]
			items = append(items, budget.Item{
				Node: node, Kernel: label, Weight: s.weight, Front: front.pareto,
			})
			nodeLabels[label] = s.feat
		}
		labels[node] = nodeLabels
	}
	return items, labels, devices, notes
}

// frontEntryRef is budgetItems' per-kernel view of a front table.
type frontEntryRef struct {
	name   string
	pareto []core.Prediction
}

// Replan solves the fleet allocation over the current observed mixes and
// active front tables, cuts the plan into per-node decision tables, and
// runs a breaker-aware push round to deliver them. ErrNoBudget when no
// budget has been set. A replan already in flight is not duplicated — the
// current status is returned as-is.
func (c *Control) Replan(ctx context.Context) (BudgetStatusResponse, error) {
	c.mu.Lock()
	if !c.bud.set {
		c.mu.Unlock()
		return BudgetStatusResponse{}, ErrNoBudget
	}
	if c.bud.inflight {
		c.mu.Unlock()
		return c.BudgetStatus(), nil
	}
	c.bud.inflight = true
	b := c.bud.budget
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.bud.inflight = false
		c.mu.Unlock()
	}()

	items, labels, devices, notes := c.budgetItems()
	plan, err := budget.Solve(items, b)
	if err != nil {
		return BudgetStatusResponse{}, err
	}
	tables, err := budget.Tables(&plan,
		func(node string) string { return devices[node] },
		func(node, kernel string) (features.Static, bool) {
			f, ok := labels[node][kernel]
			return f, ok
		})
	if err != nil {
		return BudgetStatusResponse{}, err
	}
	docs := make(map[string][]byte, len(tables))
	for node, t := range tables {
		doc, err := budget.EncodeTable(t)
		if err != nil {
			return BudgetStatusResponse{}, err
		}
		docs[node] = doc
	}

	c.mu.Lock()
	c.bud.plan = &plan
	c.bud.tables = tables
	c.bud.docs = docs
	c.bud.planned = time.Now().UTC()
	c.bud.replans++
	c.bud.notes = notes
	c.bud.planMix = map[string]map[features.Static]float64{}
	for node, ns := range c.nodes {
		if w := mixWeights(ns.mix); w != nil {
			c.bud.planMix[node] = w
		}
	}
	c.mu.Unlock()

	report := c.pushDecisions(ctx)
	c.mu.Lock()
	c.bud.last = &report
	c.mu.Unlock()
	return c.BudgetStatus(), nil
}

// pushDecisions fans the current decision tables out to their nodes'
// /fleet/decisions endpoints, reusing the snapshot push path's circuit
// breakers: a node whose breaker is open is skipped without contact and
// converges by heartbeat (RegisterResponse.Decisions) or the breaker's
// probe. Delivery updates the node's reported plan hash.
func (c *Control) pushDecisions(ctx context.Context) PushReport {
	report := PushReport{}
	c.mu.Lock()
	type target struct {
		node, addr string
		doc        []byte
	}
	var stale []target
	for node, doc := range c.bud.docs {
		ns := c.nodes[node]
		t := c.bud.tables[node]
		if ns == nil || t == nil || ns.info.Addr == "" || ns.info.Plan == t.Hash {
			continue
		}
		stale = append(stale, target{node: node, addr: ns.info.Addr, doc: doc})
	}
	c.mu.Unlock()

	report.Targets = len(stale)
	var contact []target
	for _, t := range stale {
		if c.breakers.Get(t.node).Allow() {
			contact = append(contact, t)
		} else {
			report.Skipped++
		}
	}
	type outcome struct {
		node string
		resp DecisionsResponse
		err  error
	}
	results := make(chan outcome, len(contact))
	for _, t := range contact {
		go func(t target) {
			resp, err := c.pushTableTo(ctx, t.addr, t.doc)
			results <- outcome{node: t.node, resp: resp, err: err}
		}(t)
	}
	for range contact {
		o := <-results
		c.breakers.Get(o.node).Record(o.err)
		c.mu.Lock()
		ns := c.nodes[o.node]
		if ns != nil {
			ns.info.Pushes++
			if o.err != nil {
				ns.info.PushErrors++
				ns.info.LastError = o.err.Error()
			} else {
				ns.info.LastError = ""
				ns.info.Plan = o.resp.Hash
			}
		}
		c.mu.Unlock()
		if o.err != nil {
			report.Errors = append(report.Errors, fmt.Sprintf("%s: %v", o.node, o.err))
		} else {
			report.Pushed++
		}
	}
	return report
}

// pushTableTo delivers one decision-table document to one agent.
func (c *Control) pushTableTo(ctx context.Context, addr string, doc []byte) (DecisionsResponse, error) {
	url := strings.TrimSuffix(addr, "/") + "/fleet/decisions"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(string(doc)))
	if err != nil {
		return DecisionsResponse{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	httpResp, err := c.cfg.Client.Do(req)
	if err != nil {
		return DecisionsResponse{}, err
	}
	defer httpResp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(httpResp.Body, 1<<20))
	if err != nil {
		return DecisionsResponse{}, err
	}
	if httpResp.StatusCode != http.StatusOK {
		return DecisionsResponse{}, fmt.Errorf("decisions push: %s: %s", httpResp.Status, strings.TrimSpace(string(body)))
	}
	var resp DecisionsResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return DecisionsResponse{}, fmt.Errorf("decisions push: decoding response: %v", err)
	}
	return resp, nil
}

// budgetHeartbeat completes a registration response with the node's
// decision table when its reported plan hash is stale — the same
// pull-based convergence snapshot delivery uses, so a node that missed a
// push converges within one sync interval.
func (c *Control) budgetHeartbeat(node, reported string, resp *RegisterResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.bud.tables[node]
	if t == nil || t.Hash == reported {
		return
	}
	resp.Decisions = json.RawMessage(c.bud.docs[node])
}

// BudgetStatus reports the fleet budget state: the budget, the current
// plan, per-node delivery/staleness, and mix drift since the plan.
func (c *Control) BudgetStatus() BudgetStatusResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp := BudgetStatusResponse{
		Set:               c.bud.set,
		Replans:           c.bud.replans,
		PlannedAt:         c.bud.planned,
		Notes:             append([]string(nil), c.bud.notes...),
		MixShiftThreshold: c.mixShiftThreshold(),
		LastPush:          c.bud.last,
	}
	if c.bud.set {
		b := c.bud.budget
		resp.Budget = &b
	}
	resp.Plan = c.bud.plan
	for node, ns := range c.nodes {
		st := BudgetNodeStatus{
			Node:     node,
			Device:   ns.info.Device,
			Reported: ns.info.Plan,
			MixShift: mixShift(mixWeights(ns.mix), c.bud.planMix[node]),
			Kernels:  len(ns.mix),
		}
		if t := c.bud.tables[node]; t != nil {
			st.Hash = t.Hash
			st.Entries = len(t.Entries)
			st.Synced = t.Hash == ns.info.Plan
			st.UniformMix = len(c.bud.planMix[node]) == 0
		}
		if st.MixShift > resp.MaxMixShift {
			resp.MaxMixShift = st.MixShift
		}
		resp.Nodes = append(resp.Nodes, st)
	}
	sortBudgetNodes(resp.Nodes)
	resp.Stale = c.bud.plan != nil && resp.MixShiftThreshold >= 0 && resp.MaxMixShift >= resp.MixShiftThreshold
	return resp
}

// sortBudgetNodes orders node statuses by node id for deterministic output.
func sortBudgetNodes(nodes []BudgetNodeStatus) {
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && nodes[j].Node < nodes[j-1].Node; j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
}

// HandleBudget is /fleet/budget on the control plane: GET returns the
// current plan and per-node staleness; POST sets a budget ({"total": …,
// "unit": …}) or forces a replan ({"replan": true}).
func (c *Control) HandleBudget(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeWire(w, http.StatusOK, c.BudgetStatus())
	case http.MethodPost:
		var req BudgetRequest
		if !readWire(w, r, &req) {
			return
		}
		var (
			resp BudgetStatusResponse
			err  error
		)
		switch {
		case req.Total != nil:
			resp, err = c.SetBudget(r.Context(), budget.Budget{Total: *req.Total, Unit: req.Unit})
		case req.Replan:
			resp, err = c.Replan(r.Context())
		default:
			writeWireError(w, http.StatusBadRequest, errors.New(`budget request needs "total" (set) or "replan": true`))
			return
		}
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, ErrNoBudget) {
				status = http.StatusConflict
			}
			writeWireError(w, status, err)
			return
		}
		writeWire(w, http.StatusOK, resp)
	default:
		writeWireError(w, http.StatusMethodNotAllowed, errors.New("use GET or POST"))
	}
}

// InstallTable verifies and installs a decision-table document pushed (or
// heartbeat-delivered) by the control plane. A table for a different node
// or device is refused — it would steer the wrong hardware. Installing the
// already-installed hash is an idempotent no-op.
func (a *Agent) InstallTable(doc []byte) (*budget.DecisionTable, bool, error) {
	t, err := budget.DecodeTable(doc)
	if err != nil {
		return nil, false, err
	}
	if t.Node != a.cfg.Node {
		return nil, false, fmt.Errorf("%w: table is for node %q, this agent is %q", budget.ErrBadTable, t.Node, a.cfg.Node)
	}
	if t.Device != a.cfg.Device {
		return nil, false, fmt.Errorf("%w: table is for device %q, this agent serves %q", budget.ErrBadTable, t.Device, a.cfg.Device)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.planHash == t.Hash {
		return t, false, nil
	}
	a.table = t
	a.tableDoc = append([]byte(nil), doc...)
	a.planHash = t.Hash
	return t, true, nil
}

// DecisionFor resolves the fleet governor's decision for a kernel by its
// static features (ok=false when no table is installed or the kernel is
// not in it) — the serving-side lookup for budget-governed selection.
func (a *Agent) DecisionFor(f features.Static) (policy.Decision, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.table == nil {
		return policy.Decision{}, false
	}
	for _, e := range a.table.Entries {
		if e.Features == f {
			return e.Decision, true
		}
	}
	return policy.Decision{}, false
}

// HandleDecisions is /fleet/decisions on the agent: POST installs a pushed
// decision table (409 on a table that fails validation or targets another
// node/device, keeping the current table serving); GET returns the
// installed table.
func (a *Agent) HandleDecisions(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		a.mu.Lock()
		doc := a.tableDoc
		a.mu.Unlock()
		if len(doc) == 0 {
			writeWireError(w, http.StatusNotFound, errors.New("no decision table installed"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(doc)
	case http.MethodPost:
		doc, err := io.ReadAll(io.LimitReader(r.Body, maxWireBody))
		if err != nil {
			writeWireError(w, http.StatusBadRequest, fmt.Errorf("reading decision table: %v", err))
			return
		}
		t, installed, err := a.InstallTable(doc)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, budget.ErrBadTable) {
				status = http.StatusConflict
			}
			writeWireError(w, status, err)
			return
		}
		writeWire(w, http.StatusOK, DecisionsResponse{
			Node: t.Node, Device: t.Device, Hash: t.Hash,
			Entries: len(t.Entries), Installed: installed,
		})
	default:
		writeWireError(w, http.StatusMethodNotAllowed, errors.New("use GET or POST"))
	}
}
