package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/adapt"
	"repro/internal/engine"
	"repro/internal/registry"
)

// agentRig is an agent plus the serving stack it manages.
type agentRig struct {
	store   *registry.Store
	eng     *engine.Engine
	serving *registry.Serving
	agent   *Agent
}

// newAgentRig builds a memory-resident agent for a device, pointed at a
// control plane URL.
func newAgentRig(t *testing.T, device, control string) *agentRig {
	t.Helper()
	store, err := registry.Open("")
	if err != nil {
		t.Fatal(err)
	}
	r := &agentRig{store: store, eng: newEngineFor(t, device), serving: registry.NewServing()}
	r.agent, err = NewAgent(AgentConfig{
		Node: "node-" + device, Device: device, Control: control,
		Store: r.store, Engine: r.eng, Serving: r.serving,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// controlServer mounts a control plane's fleet handlers on a test server.
func controlServer(t *testing.T, c *Control) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/register", c.HandleRegister)
	mux.HandleFunc("/fleet/observe", c.HandleObserve)
	mux.HandleFunc("/fleet/nodes", c.HandleNodes)
	mux.HandleFunc("/fleet/push", c.HandlePush)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestNewAgentValidation(t *testing.T) {
	store, _ := registry.Open("")
	eng := newEngineFor(t, "titanx")
	serving := registry.NewServing()
	full := AgentConfig{Node: "n", Device: "titanx", Control: "http://c",
		Store: store, Engine: eng, Serving: serving}
	for _, breakIt := range []func(*AgentConfig){
		func(c *AgentConfig) { c.Node = "" },
		func(c *AgentConfig) { c.Device = "" },
		func(c *AgentConfig) { c.Control = "" },
		func(c *AgentConfig) { c.Store = nil },
		func(c *AgentConfig) { c.Engine = nil },
		func(c *AgentConfig) { c.Serving = nil },
	} {
		cfg := full
		breakIt(&cfg)
		if _, err := NewAgent(cfg); err == nil {
			t.Errorf("incomplete config accepted: %+v", cfg)
		}
	}
	if _, err := NewAgent(full); err != nil {
		t.Fatalf("complete config rejected: %v", err)
	}
}

func TestAgentSyncInstallsThenHeartbeats(t *testing.T) {
	c := newControl(t, constModels(t, 1, 1), adapt.Config{})
	man := publishConst(t, c.Store(), "titanx", 1, 1)
	srv := controlServer(t, c)
	rig := newAgentRig(t, "titanx", srv.URL)

	// First sync installs the active snapshot.
	resp, err := rig.agent.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Active != man.Version {
		t.Fatalf("Active = %q, want %q", resp.Active, man.Version)
	}
	if got := rig.serving.Version(); got != man.Version {
		t.Fatalf("serving %q after sync, want %q", got, man.Version)
	}
	st := rig.agent.Status()
	if st.Hash != man.Hash || st.Installs != 1 || st.Syncs != 1 || st.LastError != "" {
		t.Fatalf("status after first sync: %+v", st)
	}

	// A second sync is a pure heartbeat: no snapshot, no reinstall.
	if _, err := rig.agent.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	st = rig.agent.Status()
	if st.Installs != 1 || st.Syncs != 2 {
		t.Fatalf("status after heartbeat: %+v", st)
	}
	if rig.serving.Swaps() != 1 {
		t.Fatalf("serving swaps = %d, want 1 (no spurious reinstall)", rig.serving.Swaps())
	}

	// The control plane sees the node as synced.
	nodes := c.Nodes()
	if len(nodes) != 1 || !nodes[0].Synced || nodes[0].Hash != man.Hash {
		t.Fatalf("control-plane view: %+v", nodes)
	}
}

func TestAgentBootstrapsAcrossDevices(t *testing.T) {
	c := newControl(t, constModels(t, 1, 1), adapt.Config{})
	man := publishConst(t, c.Store(), "titanx", 1, 1)
	srv := controlServer(t, c)
	rig := newAgentRig(t, "p100", srv.URL)

	if _, err := rig.agent.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := rig.agent.Status()
	if st.Bootstrap == nil || st.Bootstrap.Donor != "titanx" || st.Bootstrap.Version != man.Version {
		t.Fatalf("bootstrap provenance: %+v", st.Bootstrap)
	}
	if st.Hash != man.Hash {
		t.Fatalf("installed hash %q, want the donor's %q", st.Hash, man.Hash)
	}
	// The donor's models serve on the p100 agent (over the p100 ladder).
	version, pred, gov, ok := rig.serving.Current()
	if !ok || version != man.Version || pred == nil || gov == nil {
		t.Fatalf("serving after bootstrap: version=%q ok=%v", version, ok)
	}
}

func TestAgentNoDonorIsExplicitError(t *testing.T) {
	c := newControl(t, constModels(t, 1, 1), adapt.Config{})
	srv := controlServer(t, c)
	rig := newAgentRig(t, "p100", srv.URL)

	_, err := rig.agent.Sync(context.Background())
	if err == nil || !strings.Contains(err.Error(), "no bootstrap donor") {
		t.Fatalf("sync error = %v, want an explicit no-donor failure", err)
	}
	if st := rig.agent.Status(); st.Hash != "" || st.LastError == "" {
		t.Fatalf("status: %+v (nothing must have been installed)", st)
	}
	// No silent cold fit: the agent's engine holds no trained models.
	if rig.eng.Trained() {
		t.Fatal("agent trained models locally despite having no donor")
	}
	// The registration still stands upstream.
	if nodes := c.Nodes(); len(nodes) != 1 {
		t.Fatalf("nodes = %+v", nodes)
	}
}

// mutateManifest re-serializes a snapshot document with its manifest
// edited — content hash untouched, so only manifest-level checks fire.
func mutateManifest(t *testing.T, doc []byte, edit func(man map[string]any)) []byte {
	t.Helper()
	var sf map[string]json.RawMessage
	if err := json.Unmarshal(doc, &sf); err != nil {
		t.Fatal(err)
	}
	var man map[string]any
	if err := json.Unmarshal(sf["manifest"], &man); err != nil {
		t.Fatal(err)
	}
	edit(man)
	raw, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	sf["manifest"] = raw
	out, err := json.Marshal(sf)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAgentRefusesTamperedAndIncompatiblePushes(t *testing.T) {
	c := newControl(t, constModels(t, 1, 1), adapt.Config{})
	man := publishConst(t, c.Store(), "titanx", 1, 1)
	srv := controlServer(t, c)
	rig := newAgentRig(t, "titanx", srv.URL)
	if _, err := rig.agent.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}

	doc, err := c.Store().ExportDoc("titanx", man.Version)
	if err != nil {
		t.Fatal(err)
	}
	push := func(body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/fleet/snapshot", strings.NewReader(body))
		w := httptest.NewRecorder()
		rig.agent.HandleSnapshot(w, req)
		return w
	}

	// Tampered models payload: the content hash no longer verifies.
	tampered := strings.Replace(string(doc), `"coefs": [`, `"coefs": [0,`, 1)
	if tampered == string(doc) {
		t.Fatal("tamper marker not found")
	}
	if w := push(tampered); w.Code != http.StatusConflict {
		t.Fatalf("tampered push: %d %s, want 409", w.Code, w.Body)
	}

	// Schema-mismatched manifest (hash intact): refused as incompatible.
	incompatible := mutateManifest(t, doc, func(man map[string]any) {
		schema := man["schema"].(map[string]any)
		schema["dim"] = schema["dim"].(float64) + 1
	})
	if w := push(string(incompatible)); w.Code != http.StatusConflict {
		t.Fatalf("schema-mismatched push: %d %s, want 409", w.Code, w.Body)
	}

	// The agent kept serving the version it had.
	st := rig.agent.Status()
	if st.Version != man.Version || st.Hash != man.Hash || st.Installs != 1 {
		t.Fatalf("status after refused pushes: %+v", st)
	}
	if rig.serving.Swaps() != 1 {
		t.Fatalf("serving swaps = %d, want 1", rig.serving.Swaps())
	}

	// A valid re-push of the serving snapshot is an idempotent no-op.
	if w := push(string(doc)); w.Code != http.StatusOK {
		t.Fatalf("valid re-push: %d %s", w.Code, w.Body)
	}
	var snap SnapshotResponse
	if err := json.NewDecoder(push(string(doc)).Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Installed || snap.Hash != man.Hash {
		t.Fatalf("re-push response: %+v, want installed=false", snap)
	}
}

func TestAgentForwardsObservations(t *testing.T) {
	c := newControl(t, constModels(t, 1, 1), adapt.Config{})
	publishConst(t, c.Store(), "titanx", 1, 1)
	srv := controlServer(t, c)
	rig := newAgentRig(t, "titanx", srv.URL)
	if _, err := rig.agent.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}

	resp, spooled, err := rig.agent.Forward(context.Background(),
		[]adapt.Observation{obsFor(1, 1), obsFor(0.9, 1.1)})
	if err != nil {
		t.Fatal(err)
	}
	if spooled != 0 {
		t.Fatalf("spooled %d observations on a healthy control plane, want direct delivery", spooled)
	}
	if len(resp.Results) != 2 || resp.Results[0].Error != "" || resp.Results[1].Error != "" {
		t.Fatalf("forward results: %+v", resp.Results)
	}
	if resp.Store.Count != 2 || resp.Store.Nodes["node-titanx"] != 2 {
		t.Fatalf("aggregated store after forward: %+v", resp.Store)
	}
}
