package doccheck

import (
	"os"
	"path/filepath"
	"testing"
)

// TestMarkdownLinks is CI's dead-link gate: every relative link in the
// README and the docs/ tree must resolve to an existing file.
func TestMarkdownLinks(t *testing.T) {
	files := []string{"../../README.md"}
	docs, err := filepath.Glob("../../docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) == 0 {
		t.Fatal("no markdown files under docs/")
	}
	files = append(files, docs...)
	broken, err := BrokenLinks(files)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range broken {
		t.Errorf("broken relative link: %s", b)
	}
}

// TestBrokenLinksDetects verifies the checker actually flags dead relative
// links and ignores URLs and anchors.
func TestBrokenLinksDetects(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "exists.md"), []byte("# target"), 0o644); err != nil {
		t.Fatal(err)
	}
	doc := `
[fine](exists.md) [fine with fragment](exists.md#target)
[url](https://example.com/missing.md) [anchor](#section)
[dead](missing.md) [dead dir](sub/missing.md)
`
	src := filepath.Join(dir, "doc.md")
	if err := os.WriteFile(src, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	broken, err := BrokenLinks([]string{src})
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 2 {
		t.Fatalf("flagged %d links, want 2 (missing.md, sub/missing.md): %v", len(broken), broken)
	}
}
