// Package doccheck enforces godoc coverage: every exported symbol of the
// packages it is pointed at must carry a doc comment. It is the
// missing-doc half of the CI docs-lint job (go vet has no such check and
// the container policy forbids installing external linters), implemented
// on go/parser + go/ast so it runs as a plain test.
package doccheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
)

// Missing parses the non-test Go files of the package in dir and returns
// one "file:line: symbol" entry per exported declaration lacking a doc
// comment. Exported fields and methods of exported structs/interfaces are
// not required to carry docs (matching golint's historical scope:
// package, top-level types, funcs, methods, consts and vars).
func Missing(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("doccheck: parsing %s: %w", dir, err)
	}
	var out []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, what))
	}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			out = append(out, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						report(d.Pos(), "func "+funcName(d)+" has no doc comment")
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return out, nil
}

// funcName renders a function or method name for a report line.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	recv := d.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		recv = star.X
	}
	if id, ok := recv.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// checkGenDecl reports exported consts, vars and types without docs. A
// doc comment on the grouped declaration covers all of its specs, as godoc
// renders it.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string)) {
	if d.Tok != token.CONST && d.Tok != token.VAR && d.Tok != token.TYPE {
		return
	}
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil {
				report(s.Pos(), "type "+s.Name.Name+" has no doc comment")
			}
		case *ast.ValueSpec:
			if groupDoc || s.Doc != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), d.Tok.String()+" "+name.Name+" has no doc comment")
				}
			}
		}
	}
}
