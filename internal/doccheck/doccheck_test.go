package doccheck

import (
	"os"
	"path/filepath"
	"testing"
)

// TestGodocCoverage is CI's missing-doc gate: the packages listed here —
// every internal package — must document every exported symbol.
func TestGodocCoverage(t *testing.T) {
	for _, pkg := range []string{
		"../adapt",
		"../bench",
		"../clkernel",
		"../colproto",
		"../core",
		"../doccheck",
		"../engine",
		"../experiments",
		"../features",
		"../freq",
		"../gpu",
		"../measure",
		"../nvml",
		"../pareto",
		"../policy",
		"../regress",
		"../registry",
		"../svm",
		"../svm/svmtest",
		"../synth",
	} {
		missing, err := Missing(pkg)
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}
		for _, m := range missing {
			t.Errorf("%s", m)
		}
	}
}

// TestMissingDetects verifies the checker actually flags undocumented
// exported symbols (so a silent parser regression cannot fake coverage).
func TestMissingDetects(t *testing.T) {
	dir := t.TempDir()
	src := `// Package fixture is a doccheck test fixture.
package fixture

// Documented is fine.
const Documented = 1

const Undocumented = 2

type Bad struct{}

func AlsoBad() {}

// ok has a doc comment but is unexported anyway.
func ok() {}
`
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	missing, err := Missing(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 3 {
		t.Fatalf("flagged %d symbols, want 3 (Undocumented, Bad, AlsoBad): %v", len(missing), missing)
	}
}
