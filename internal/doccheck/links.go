package doccheck

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target); images and
// reference-style links are out of scope for this repository's docs.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// BrokenLinks scans markdown files for relative links whose targets do not
// exist on disk and returns one "file: target" entry per broken link. It
// is the docs half of the CI docs-lint job: a renamed or deleted document
// fails the build instead of leaving dead links in README and docs/.
// Absolute URLs (with a scheme) and pure in-page anchors are skipped; a
// relative target's fragment ("file.md#section") is ignored — only the
// file's existence is checked.
func BrokenLinks(files []string) ([]string, error) {
	var out []string
	for _, file := range files {
		doc, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("doccheck: reading %s: %w", file, err)
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(doc), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				out = append(out, fmt.Sprintf("%s: %s", file, m[1]))
			}
		}
	}
	return out, nil
}
