package clkernel

import (
	"testing"
)

func TestTernaryCountsSelect(t *testing.T) {
	src := `__kernel void k(__global float* o, float x) {
	    o[0] = (x > 0.0f) ? x * 2.0f : x + 1.0f;
	}`
	c := countSrc(t, src, Static)
	if c.Ops[OpOther] < 2 { // compare + select
		t.Errorf("other = %v, want >= 2 (compare + select)", c.Ops[OpOther])
	}
	if c.Ops[OpFloatMul] != 1 || c.Ops[OpFloatAdd] != 1 {
		t.Errorf("both ternary arms must be counted: mul=%v add=%v",
			c.Ops[OpFloatMul], c.Ops[OpFloatAdd])
	}
}

func TestDoWhileWeighted(t *testing.T) {
	src := `__kernel void k(__global float* o) {
	    float acc = 0.0f;
	    int i = 0;
	    do { acc += 1.0f; i++; } while (i < 10);
	    o[0] = acc;
	}`
	wt := countSrc(t, src, Weighted)
	// Unknown-bound loops use DefaultTrip in weighted mode.
	if wt.Ops[OpFloatAdd] != DefaultTrip {
		t.Errorf("do-while weighted float_add = %v, want %v", wt.Ops[OpFloatAdd], DefaultTrip)
	}
	st := countSrc(t, src, Static)
	if st.Ops[OpFloatAdd] != 1 {
		t.Errorf("do-while static float_add = %v, want 1", st.Ops[OpFloatAdd])
	}
}

func TestCastCounting(t *testing.T) {
	src := `__kernel void k(__global float* o, int n) {
	    float a = (float)n;   // int->float: conversion op
	    int b = (int)a;       // float->int: conversion op
	    float c = (float)a;   // float->float: free
	    o[0] = a + c + (float)b;
	}`
	c := countSrc(t, src, Static)
	if c.Ops[OpOther] < 3 {
		t.Errorf("other = %v, want >= 3 conversions", c.Ops[OpOther])
	}
}

func TestVectorSwizzle(t *testing.T) {
	src := `__kernel void k(__global float4* o, float4 v) {
	    float2 xy = v.xy;
	    float s = xy.x + xy.y + v.w;
	    o[0].x = s;
	}`
	if _, err := Parse(src); err != nil {
		t.Fatalf("swizzle parse: %v", err)
	}
	c := countSrc(t, src, Static)
	if c.Ops[OpFloatAdd] != 2 {
		t.Errorf("float_add = %v, want 2", c.Ops[OpFloatAdd])
	}
}

func TestConstantSpaceCountsAsGlobal(t *testing.T) {
	src := `__kernel void k(__constant float* lut, __global float* o) {
	    o[0] = lut[0] + lut[1];
	}`
	c := countSrc(t, src, Static)
	if c.Ops[OpGlobalAccess] != 3 { // 2 constant loads + 1 global store
		t.Errorf("gl_access = %v, want 3", c.Ops[OpGlobalAccess])
	}
}

func TestPointerDeref(t *testing.T) {
	src := `__kernel void k(__global float* p) {
	    *p = *p + 1.0f;
	}`
	c := countSrc(t, src, Static)
	if c.Ops[OpGlobalAccess] != 2 { // load + store
		t.Errorf("gl_access = %v, want 2", c.Ops[OpGlobalAccess])
	}
}

func TestCompoundAssignOnDeref(t *testing.T) {
	src := `__kernel void k(__global float* p) {
	    *p += 2.0f;
	}`
	c := countSrc(t, src, Static)
	if c.Ops[OpGlobalAccess] != 2 { // read-modify-write
		t.Errorf("gl_access = %v, want 2", c.Ops[OpGlobalAccess])
	}
	if c.Ops[OpFloatAdd] != 1 {
		t.Errorf("float_add = %v, want 1", c.Ops[OpFloatAdd])
	}
}

func TestNegationClasses(t *testing.T) {
	src := `__kernel void k(__global float* o, float x, int n) {
	    float a = -x;  // float negate
	    int b = -n;    // int negate
	    int c = ~n;    // bitwise not
	    o[0] = a + (float)(b + c);
	}`
	c := countSrc(t, src, Static)
	if c.Ops[OpFloatAdd] < 2 {
		t.Errorf("float_add = %v, want >= 2 (negate + add)", c.Ops[OpFloatAdd])
	}
	if c.Ops[OpIntBitwise] != 1 {
		t.Errorf("int_bw = %v, want 1", c.Ops[OpIntBitwise])
	}
}

func TestBreakContinueReturnCounted(t *testing.T) {
	src := `__kernel void k(__global float* o, int n) {
	    for (int i = 0; i < 8; i++) {
	        if (i == n) { continue; }
	        if (i > n) { break; }
	    }
	    o[0] = 1.0f;
	    return;
	}`
	c := countSrc(t, src, Static)
	if c.Ops[OpOther] < 5 { // 2 compares + continue + break + return
		t.Errorf("other = %v, want >= 5", c.Ops[OpOther])
	}
}

func TestSelectBuiltinAndIsnan(t *testing.T) {
	src := `__kernel void k(__global float* o, float x) {
	    float a = select(x, 2.0f * x, isnan(x));
	    o[0] = a;
	}`
	c := countSrc(t, src, Static)
	if c.Ops[OpOther] < 2 {
		t.Errorf("other = %v, want >= 2 (select + isnan)", c.Ops[OpOther])
	}
	if c.Ops[OpFloatMul] != 1 {
		t.Errorf("float_mul = %v, want 1", c.Ops[OpFloatMul])
	}
}

func TestZeroTripLoopWeighted(t *testing.T) {
	src := `__kernel void k(__global float* o) {
	    float acc = 0.0f;
	    for (int i = 5; i < 5; i++) { acc += 1.0f; }
	    o[0] = acc;
	}`
	wt := countSrc(t, src, Weighted)
	if wt.Ops[OpFloatAdd] != 0 {
		t.Errorf("zero-trip loop weighted float_add = %v, want 0", wt.Ops[OpFloatAdd])
	}
}

func TestLongAndDoubleSizes(t *testing.T) {
	src := `__kernel void k(__global double* d, __global long* l) {
	    d[0] = 1.5;
	    l[0] = 1;
	}`
	c := countSrc(t, src, Static)
	if c.GlobalBytes != 16 { // 8 + 8
		t.Errorf("GlobalBytes = %v, want 16", c.GlobalBytes)
	}
}
