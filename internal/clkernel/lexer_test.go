package clkernel

import (
	"strings"
	"testing"
)

func lexKinds(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	return toks
}

func TestLexBasics(t *testing.T) {
	toks := lexKinds(t, "int x = 42;")
	want := []struct {
		kind TokenKind
		text string
	}{
		{TokKeyword, "int"}, {TokIdent, "x"}, {TokPunct, "="},
		{TokIntLit, "42"}, {TokPunct, ";"}, {TokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = {%v %q}, want {%v %q}", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind TokenKind
	}{
		{"42", TokIntLit},
		{"0x1F", TokIntLit},
		{"42u", TokIntLit},
		{"42UL", TokIntLit},
		{"3.14", TokFloatLit},
		{"3.14f", TokFloatLit},
		{"1e10", TokFloatLit},
		{"1.5e-3f", TokFloatLit},
		{".5", TokFloatLit},
		{"2.f", TokFloatLit},
		{"7F", TokFloatLit}, // integer digits with float suffix
	}
	for _, c := range cases {
		toks := lexKinds(t, c.src)
		if toks[0].Kind != c.kind {
			t.Errorf("Lex(%q)[0].Kind = %v, want %v", c.src, toks[0].Kind, c.kind)
		}
		if toks[0].Text != c.src {
			t.Errorf("Lex(%q)[0].Text = %q", c.src, toks[0].Text)
		}
	}
}

func TestLexComments(t *testing.T) {
	src := `
// line comment
int /* block
comment */ y;`
	toks := lexKinds(t, src)
	if len(toks) != 4 { // int y ; EOF
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[0].Text != "int" || toks[1].Text != "y" {
		t.Errorf("unexpected tokens %v", toks)
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	if _, err := Lex("/* never closed"); err == nil {
		t.Error("expected error for unterminated comment")
	}
}

func TestLexDefine(t *testing.T) {
	src := `
#define WIDTH 256
#define HALF (WIDTH / 2)
int a = WIDTH + HALF;`
	toks := lexKinds(t, src)
	var texts []string
	for _, tok := range toks {
		texts = append(texts, tok.Text)
	}
	joined := strings.Join(texts, " ")
	if !strings.Contains(joined, "256") {
		t.Errorf("macro WIDTH not expanded: %s", joined)
	}
	if strings.Contains(joined, "WIDTH") {
		t.Errorf("macro name leaked into stream: %s", joined)
	}
}

func TestLexPragmaIgnored(t *testing.T) {
	toks := lexKinds(t, "#pragma OPENCL EXTENSION cl_khr_fp64 : enable\nint x;")
	if toks[0].Text != "int" {
		t.Errorf("pragma not skipped, first token %v", toks[0])
	}
}

func TestLexFunctionMacroRejected(t *testing.T) {
	if _, err := Lex("#define SQ(x) ((x)*(x))\n"); err == nil {
		t.Error("expected error for function-like macro")
	}
}

func TestLexUnknownDirective(t *testing.T) {
	if _, err := Lex("#include <foo.h>\n"); err == nil {
		t.Error("expected error for #include")
	}
}

func TestLexOperators(t *testing.T) {
	src := "a <<= b >>= c == d != e <= f >= g && h || i << j >> k += l ++ --"
	toks := lexKinds(t, src)
	var ops []string
	for _, tok := range toks {
		if tok.Kind == TokPunct {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "++", "--"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %q, want %q", i, ops[i], want[i])
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks := lexKinds(t, "int\n  x;")
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("int at %d:%d, want 1:1", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("x at %d:%d, want 2:3", toks[1].Line, toks[1].Col)
	}
}

func TestLexErrorPosition(t *testing.T) {
	_, err := Lex("int x = @;")
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T, want *SyntaxError", err)
	}
	if se.Line != 1 || se.Col != 9 {
		t.Errorf("error at %d:%d, want 1:9", se.Line, se.Col)
	}
}

func TestSplitVector(t *testing.T) {
	cases := []struct {
		in    string
		base  string
		width int
	}{
		{"float", "float", 1},
		{"float4", "float", 4},
		{"int16", "int", 16},
		{"uchar2", "uchar", 2},
		{"float5", "float5", 0}, // invalid lane count
		{"x4", "x", 4},
	}
	for _, c := range cases {
		base, width := splitVector(c.in)
		if base != c.base || width != c.width {
			t.Errorf("splitVector(%q) = (%q, %d), want (%q, %d)", c.in, base, width, c.base, c.width)
		}
	}
}
