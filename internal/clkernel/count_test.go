package clkernel

import (
	"math"
	"testing"
	"testing/quick"
)

func countSrc(t *testing.T, src string, mode Mode) Counts {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return Count(prog.Kernels[0], prog, mode)
}

func TestCountIntAdds(t *testing.T) {
	src := `__kernel void k(__global int* o) {
	    int a = 1;
	    a = a + 2;
	    a = a + 3;
	    a = a + 4;
	    o[0] = a;
	}`
	c := countSrc(t, src, Static)
	if got := c.Ops[OpIntAdd]; got != 3 {
		t.Errorf("int_add = %v, want 3", got)
	}
	if got := c.Ops[OpGlobalAccess]; got != 1 {
		t.Errorf("gl_access = %v, want 1 (store)", got)
	}
}

func TestCountFloatClasses(t *testing.T) {
	src := `__kernel void k(__global float* o, float x) {
	    float a = x * x;     // 1 mul
	    float b = a / x;     // 1 div
	    float s = sin(x);    // 1 sf
	    float d = a - b;     // 1 add-class
	    o[0] = a + b + s + d; // 3 add + 1 store
	}`
	c := countSrc(t, src, Static)
	if got := c.Ops[OpFloatMul]; got != 1 {
		t.Errorf("float_mul = %v, want 1", got)
	}
	if got := c.Ops[OpFloatDiv]; got != 1 {
		t.Errorf("float_div = %v, want 1", got)
	}
	if got := c.Ops[OpSpecial]; got != 1 {
		t.Errorf("sf = %v, want 1", got)
	}
	if got := c.Ops[OpFloatAdd]; got != 4 {
		t.Errorf("float_add = %v, want 4", got)
	}
}

func TestCountBitwiseAndDiv(t *testing.T) {
	src := `__kernel void k(__global int* o, int x) {
	    int a = x << 2;  // bw
	    int b = a & 255; // bw
	    int c = b ^ a;   // bw
	    int d = c | 1;   // bw
	    int e = d % 7;   // int div class
	    int f = e / 3;   // int div class
	    int g = f * 5;   // int mul
	    o[0] = g;
	}`
	c := countSrc(t, src, Static)
	if got := c.Ops[OpIntBitwise]; got != 4 {
		t.Errorf("int_bw = %v, want 4", got)
	}
	if got := c.Ops[OpIntDiv]; got != 2 {
		t.Errorf("int_div = %v, want 2", got)
	}
	if got := c.Ops[OpIntMul]; got != 1 {
		t.Errorf("int_mul = %v, want 1", got)
	}
}

func TestCountMemoryAccesses(t *testing.T) {
	src := `__kernel void k(__global float* g, __local float* l) {
	    int i = get_global_id(0);
	    float a = g[i];      // 1 global load
	    l[i] = a;            // 1 local store
	    g[i] += 1.0f;        // 2 global (load+store)
	    float b = l[i] + a;  // 1 local load
	    g[i+1] = b;          // 1 global store
	}`
	c := countSrc(t, src, Static)
	if got := c.Ops[OpGlobalAccess]; got != 4 {
		t.Errorf("gl_access = %v, want 4", got)
	}
	if got := c.Ops[OpLocalAccess]; got != 2 {
		t.Errorf("loc_access = %v, want 2", got)
	}
	if c.GlobalBytes != 16 {
		t.Errorf("GlobalBytes = %v, want 16", c.GlobalBytes)
	}
	if c.LocalBytes != 8 {
		t.Errorf("LocalBytes = %v, want 8", c.LocalBytes)
	}
}

func TestCountLocalArrayInBody(t *testing.T) {
	src := `__kernel void k(__global float* o) {
	    __local float tile[64];
	    float priv[4];
	    tile[0] = 1.0f;   // local store
	    priv[0] = tile[0]; // local load + private (other)
	    o[0] = priv[0];    // global store + private load (other)
	}`
	c := countSrc(t, src, Static)
	if got := c.Ops[OpLocalAccess]; got != 2 {
		t.Errorf("loc_access = %v, want 2", got)
	}
	if got := c.Ops[OpGlobalAccess]; got != 1 {
		t.Errorf("gl_access = %v, want 1", got)
	}
}

func TestCountVectorWidths(t *testing.T) {
	src := `__kernel void k(__global float4* o, float4 v) {
	    float4 a = v * v;  // 4 muls
	    float4 b = a + v;  // 4 adds
	    o[0] = b;          // 1 global access, 16 bytes
	}`
	c := countSrc(t, src, Static)
	if got := c.Ops[OpFloatMul]; got != 4 {
		t.Errorf("float_mul = %v, want 4", got)
	}
	if got := c.Ops[OpFloatAdd]; got != 4 {
		t.Errorf("float_add = %v, want 4", got)
	}
	if got := c.Ops[OpGlobalAccess]; got != 1 {
		t.Errorf("gl_access = %v, want 1", got)
	}
	if c.GlobalBytes != 16 {
		t.Errorf("GlobalBytes = %v, want 16", c.GlobalBytes)
	}
}

func TestStaticVsWeightedLoop(t *testing.T) {
	src := `__kernel void k(__global float* o) {
	    float acc = 0.0f;
	    for (int i = 0; i < 100; i++) {
	        acc += 1.5f;
	    }
	    o[0] = acc;
	}`
	st := countSrc(t, src, Static)
	wt := countSrc(t, src, Weighted)
	if got := st.Ops[OpFloatAdd]; got != 1 {
		t.Errorf("static float_add = %v, want 1", got)
	}
	if got := wt.Ops[OpFloatAdd]; got != 100 {
		t.Errorf("weighted float_add = %v, want 100", got)
	}
}

func TestTripCountForms(t *testing.T) {
	cases := []struct {
		loop string
		want float64
	}{
		{"for (int i = 0; i < 10; i++)", 10},
		{"for (int i = 0; i <= 10; i++)", 11},
		{"for (int i = 10; i > 0; i--)", 10},
		{"for (int i = 0; i < 10; i += 2)", 5},
		{"for (int i = 0; i < 9; i += 2)", 5}, // ceil(9/2)
		{"for (int i = 0; 10 > i; i++)", 10},
		{"for (int i = 0; i < 10; i = i + 1)", 10},
		{"for (int i = 0; i < n; i++)", DefaultTrip},
		{"for (int i = 16; i >= 1; i--)", 16},
	}
	for _, tc := range cases {
		src := `__kernel void k(__global float* o, int n) {
		    float acc = 0.0f;
		    ` + tc.loop + ` { acc += 1.0f; }
		    o[0] = acc;
		}`
		c := countSrc(t, src, Weighted)
		if got := c.Ops[OpFloatAdd]; got != tc.want {
			t.Errorf("%s: weighted float_add = %v, want %v", tc.loop, got, tc.want)
		}
	}
}

func TestNestedLoopsMultiply(t *testing.T) {
	src := `__kernel void k(__global float* o) {
	    float acc = 0.0f;
	    for (int i = 0; i < 4; i++) {
	        for (int j = 0; j < 8; j++) {
	            acc += 2.0f;
	        }
	    }
	    o[0] = acc;
	}`
	c := countSrc(t, src, Weighted)
	if got := c.Ops[OpFloatAdd]; got != 32 {
		t.Errorf("weighted float_add = %v, want 32", got)
	}
}

func TestBranchWeighting(t *testing.T) {
	src := `__kernel void k(__global float* o, int n) {
	    float acc = 0.0f;
	    if (n > 0) { acc += 1.0f; } else { acc += 1.0f; }
	    o[0] = acc;
	}`
	st := countSrc(t, src, Static)
	wt := countSrc(t, src, Weighted)
	if got := st.Ops[OpFloatAdd]; got != 2 {
		t.Errorf("static float_add = %v, want 2 (both arms once)", got)
	}
	if got := wt.Ops[OpFloatAdd]; got != 1 {
		t.Errorf("weighted float_add = %v, want 1 (arms at 1/2)", got)
	}
}

func TestBuiltinClassification(t *testing.T) {
	src := `__kernel void k(__global float4* o, float4 v, float x) {
	    float d = dot(v, v);          // 4 mul + 3 add
	    float l = length(v);          // 4 mul + 3 add + 1 sf
	    float m = mad(x, x, x);       // 1 mul + 1 add
	    float f = fabs(x);            // 1 add-class
	    float p = pow(x, 2.0f);       // 1 sf
	    float q = native_rsqrt(x);    // 1 sf
	    o[0] = (float4)(d + l + m + f + p + q);
	}`
	c := countSrc(t, src, Static)
	if got := c.Ops[OpSpecial]; got != 3 {
		t.Errorf("sf = %v, want 3", got)
	}
	if got := c.Ops[OpFloatMul]; got < 9 {
		t.Errorf("float_mul = %v, want >= 9", got)
	}
}

func TestHelperInlining(t *testing.T) {
	src := `
float poly(float x) { return x * x + x; } // 1 mul + 1 add + return(other)
__kernel void k(__global float* o, float x) {
    o[0] = poly(x) + poly(x);  // inlined twice + 1 add + store
}`
	c := countSrc(t, src, Static)
	if got := c.Ops[OpFloatMul]; got != 2 {
		t.Errorf("float_mul = %v, want 2", got)
	}
	if got := c.Ops[OpFloatAdd]; got != 3 {
		t.Errorf("float_add = %v, want 3", got)
	}
}

func TestRecursionGuard(t *testing.T) {
	src := `
float rec(float x) { return rec(x) + 1.0f; }
__kernel void k(__global float* o) { o[0] = rec(1.0f); }`
	// Must terminate and produce finite counts.
	c := countSrc(t, src, Static)
	if c.Total() <= 0 || math.IsInf(c.Total(), 0) || math.IsNaN(c.Total()) {
		t.Errorf("recursion produced bad total %v", c.Total())
	}
}

func TestAtomicsAndVload(t *testing.T) {
	src := `__kernel void k(__global int* cnt, __global float* data) {
	    atomic_add(cnt, 1);            // 2 accesses + int add
	    float4 v = vload4(0, data);    // 1 global access, 16 bytes
	    vstore4(v, 1, data);           // 1 global access, 16 bytes
	}`
	c := countSrc(t, src, Static)
	if got := c.Ops[OpGlobalAccess]; got != 4 {
		t.Errorf("gl_access = %v, want 4", got)
	}
	if got := c.GlobalBytes; got != 40 { // 2*4 atomic + 16 + 16
		t.Errorf("GlobalBytes = %v, want 40", got)
	}
}

func TestCountsTotals(t *testing.T) {
	src := simpleKernel
	c := countSrc(t, src, Static)
	if c.Total() < c.FeatureTotal() {
		t.Errorf("Total %v < FeatureTotal %v", c.Total(), c.FeatureTotal())
	}
	if c.Total() <= 0 {
		t.Errorf("Total = %v, want > 0", c.Total())
	}
}

func TestCountKernelByName(t *testing.T) {
	prog := MustParse(simpleKernel)
	c := CountKernel(prog, "add", Static)
	if c.Ops[OpGlobalAccess] != 3 { // 2 loads + 1 store
		t.Errorf("gl_access = %v, want 3", c.Ops[OpGlobalAccess])
	}
	defer func() {
		if recover() == nil {
			t.Error("CountKernel with unknown name did not panic")
		}
	}()
	CountKernel(prog, "missing", Static)
}

func TestOpClassString(t *testing.T) {
	if OpIntAdd.String() != "int_add" || OpLocalAccess.String() != "loc_access" {
		t.Error("OpClass names wrong")
	}
	if OpClass(99).String() == "" {
		t.Error("out-of-range OpClass should still format")
	}
}

func TestCountsNonNegativeProperty(t *testing.T) {
	// Property: counting any of a family of generated kernels yields
	// non-negative finite counts, and weighted >= static for loop bodies.
	f := func(trip uint8, adds uint8) bool {
		n := int(trip%64) + 1
		a := int(adds%8) + 1
		body := ""
		for i := 0; i < a; i++ {
			body += "acc += 1.0f;\n"
		}
		src := `__kernel void k(__global float* o) {
		    float acc = 0.0f;
		    for (int i = 0; i < ` + itoa(n) + `; i++) {
		        ` + body + `
		    }
		    o[0] = acc;
		}`
		prog, err := Parse(src)
		if err != nil {
			return false
		}
		st := Count(prog.Kernels[0], prog, Static)
		wt := Count(prog.Kernels[0], prog, Weighted)
		if st.Ops[OpFloatAdd] != float64(a) {
			return false
		}
		if wt.Ops[OpFloatAdd] != float64(a*n) {
			return false
		}
		for _, v := range wt.Ops {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
