package clkernel

import (
	"fmt"
	"strconv"
)

// Parse lexes and parses an OpenCL C subset translation unit.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseProgram()
}

// MustParse is Parse that panics on error; for fixed embedded sources.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) peek() Token { return p.toks[minIdx(p.pos+1, len(p.toks)-1)] }

func minIdx(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return &SyntaxError{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(text string) error {
	if p.cur().Text != text {
		return p.errf("expected %q, found %s", text, p.cur())
	}
	p.advance()
	return nil
}

func (p *parser) accept(text string) bool {
	if p.cur().Text == text {
		p.advance()
		return true
	}
	return false
}

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for p.cur().Kind != TokEOF {
		fn, err := p.parseFunction()
		if err != nil {
			return nil, err
		}
		if fn.IsKernel {
			prog.Kernels = append(prog.Kernels, fn)
		} else {
			prog.Helpers = append(prog.Helpers, fn)
		}
	}
	if len(prog.Kernels) == 0 {
		return nil, &SyntaxError{Line: 1, Col: 1, Msg: "no __kernel function found"}
	}
	return prog, nil
}

func (p *parser) parseFunction() (*Function, error) {
	fn := &Function{}
	if p.cur().Text == "__kernel" || p.cur().Text == "kernel" {
		fn.IsKernel = true
		p.advance()
	}
	ret, err := p.parseType()
	if err != nil {
		return nil, err
	}
	fn.Return = ret
	if p.cur().Kind != TokIdent {
		return nil, p.errf("expected function name, found %s", p.cur())
	}
	fn.Name = p.advance().Text
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for !p.accept(")") {
		if len(fn.Params) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		if p.cur().Text == "void" && p.peek().Text == ")" {
			p.advance()
			continue
		}
		prm, err := p.parseParam()
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, prm)
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

// parseQualifiers consumes address-space/const qualifiers and returns the
// address space (Private if none given).
func (p *parser) parseQualifiers() AddrSpace {
	space := Private
	for {
		switch p.cur().Text {
		case "__global", "global":
			space = Global
		case "__local", "local":
			space = Local
		case "__constant", "constant":
			space = Constant
		case "__private", "private", "const", "restrict", "volatile":
			// no effect on counting
		default:
			return space
		}
		p.advance()
	}
}

// parseType parses qualifiers, a type name, and optional '*'.
func (p *parser) parseType() (Type, error) {
	space := p.parseQualifiers()
	t := p.cur()
	name := t.Text
	if name == "unsigned" {
		p.advance()
		switch p.cur().Text {
		case "int", "char", "short", "long":
			name = "u" + p.cur().Text
			p.advance()
		default:
			name = "uint"
		}
	} else {
		if t.Kind != TokKeyword && !isTypeName(t.Text) {
			return Type{}, p.errf("expected type name, found %s", t)
		}
		if !isTypeName(name) {
			return Type{}, p.errf("%q is not a type", name)
		}
		p.advance()
	}
	base, width := splitVector(name)
	typ := Type{Base: base, Width: width, Space: space}
	// Re-check trailing qualifiers (e.g. "__global float * restrict p").
	for p.cur().Text == "*" || p.cur().Text == "const" || p.cur().Text == "restrict" {
		if p.cur().Text == "*" {
			typ.Pointer = true
		}
		p.advance()
	}
	return typ, nil
}

func (p *parser) parseParam() (Param, error) {
	typ, err := p.parseType()
	if err != nil {
		return Param{}, err
	}
	if p.cur().Kind != TokIdent {
		return Param{}, p.errf("expected parameter name, found %s", p.cur())
	}
	name := p.advance().Text
	return Param{Name: name, Type: typ}, nil
}

func (p *parser) parseBlock() (*Block, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.accept("}") {
		if p.cur().Kind == TokEOF {
			return nil, p.errf("unexpected EOF in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

// startsType reports whether the current token begins a declaration.
func (p *parser) startsType() bool {
	t := p.cur()
	switch t.Text {
	case "__global", "global", "__local", "local", "__constant", "constant",
		"__private", "private", "const", "unsigned":
		return true
	}
	return (t.Kind == TokKeyword || t.Kind == TokIdent) && isTypeName(t.Text)
}

func (p *parser) parseStmt() (Stmt, error) {
	switch p.cur().Text {
	case "{":
		b, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &BlockStmt{Block: b}, nil
	case "if":
		return p.parseIf()
	case "for":
		return p.parseFor()
	case "while":
		return p.parseWhile()
	case "do":
		return p.parseDoWhile()
	case "return":
		p.advance()
		var x Expr
		if p.cur().Text != ";" {
			var err error
			x, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{X: x}, nil
	case "break":
		p.advance()
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &BreakStmt{}, nil
	case "continue":
		p.advance()
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{}, nil
	case ";":
		p.advance()
		return &BlockStmt{Block: &Block{}}, nil
	}
	if p.startsType() {
		d, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return d, nil
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return &ExprStmt{X: x}, nil
}

func (p *parser) parseDecl() (*DeclStmt, error) {
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Type: typ}
	for {
		if p.cur().Kind != TokIdent {
			return nil, p.errf("expected declarator name, found %s", p.cur())
		}
		dn := DeclName{Name: p.advance().Text}
		if p.accept("[") {
			if p.cur().Kind == TokIntLit {
				n, _ := strconv.ParseInt(trimIntSuffix(p.cur().Text), 0, 64)
				dn.ArrLen = int(n)
				p.advance()
			} else if p.cur().Kind == TokIdent {
				// symbolic length: record as unknown (-1)
				dn.ArrLen = -1
				p.advance()
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
		}
		if p.accept("=") {
			init, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			dn.Init = init
		}
		d.Names = append(d.Names, dn)
		if !p.accept(",") {
			return d, nil
		}
	}
}

func (p *parser) parseIf() (Stmt, error) {
	p.advance() // if
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.parseStmtAsBlock()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: then}
	if p.accept("else") {
		els, err := p.parseStmtAsBlock()
		if err != nil {
			return nil, err
		}
		s.Else = els
	}
	return s, nil
}

// parseStmtAsBlock parses a statement, wrapping single statements in a Block
// so that downstream passes only handle blocks.
func (p *parser) parseStmtAsBlock() (*Block, error) {
	if p.cur().Text == "{" {
		return p.parseBlock()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &Block{Stmts: []Stmt{s}}, nil
}

func (p *parser) parseFor() (Stmt, error) {
	p.advance() // for
	if err := p.expect("("); err != nil {
		return nil, err
	}
	f := &ForStmt{}
	if !p.accept(";") {
		if p.startsType() {
			d, err := p.parseDecl()
			if err != nil {
				return nil, err
			}
			f.Init = d
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.Init = &ExprStmt{X: x}
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if !p.accept(";") {
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Cond = c
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if p.cur().Text != ")" {
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Post = x
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmtAsBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	p.advance() // while
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmtAsBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body}, nil
}

func (p *parser) parseDoWhile() (Stmt, error) {
	p.advance() // do
	body, err := p.parseStmtAsBlock()
	if err != nil {
		return nil, err
	}
	if err := p.expect("while"); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Do: true}, nil
}

// Expression parsing: precedence climbing.

// parseExpr parses a full expression including comma-free assignment.
func (p *parser) parseExpr() (Expr, error) { return p.parseAssign() }

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *parser) parseAssign() (Expr, error) {
	lhs, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokPunct && assignOps[p.cur().Text] {
		op := p.advance().Text
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op, L: lhs, R: rhs}, nil
	}
	return lhs, nil
}

func (p *parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.accept("?") {
		return cond, nil
	}
	then, err := p.parseAssign()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	els, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &Ternary{Cond: cond, Then: then, Else: els}, nil
}

// binary operator precedence (higher binds tighter).
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, ok := binPrec[t.Text]
		if t.Kind != TokPunct || !ok || prec < minPrec {
			return lhs, nil
		}
		p.advance()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: t.Text, L: lhs, R: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "-", "+", "!", "~", "*", "&":
			p.advance()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			if t.Text == "+" {
				return x, nil
			}
			return &Unary{Op: t.Text, X: x}, nil
		case "++", "--":
			p.advance()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: t.Text, X: x}, nil
		case "(":
			// Either a cast "(type)expr" or a parenthesized expression.
			if p.isCastAhead() {
				p.advance() // (
				typ, err := p.parseType()
				if err != nil {
					return nil, err
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				x, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				return &Cast{To: typ, X: x}, nil
			}
		}
	}
	return p.parsePostfix()
}

// isCastAhead peeks whether the '(' at the cursor starts a cast.
func (p *parser) isCastAhead() bool {
	if p.cur().Text != "(" {
		return false
	}
	nxt := p.toks[minIdx(p.pos+1, len(p.toks)-1)]
	switch nxt.Text {
	case "__global", "global", "__local", "local", "__constant", "constant", "const", "unsigned":
		return true
	}
	return (nxt.Kind == TokKeyword || nxt.Kind == TokIdent) && isTypeName(nxt.Text)
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Text {
		case "[":
			p.advance()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &Index{X: x, I: idx}
		case ".":
			p.advance()
			if p.cur().Kind != TokIdent {
				return nil, p.errf("expected member name, found %s", p.cur())
			}
			x = &Member{X: x, Sel: p.advance().Text}
		case "++", "--":
			op := p.advance().Text
			x = &Postfix{Op: op, X: x}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokIntLit:
		p.advance()
		v, err := strconv.ParseInt(trimIntSuffix(t.Text), 0, 64)
		if err != nil {
			return nil, p.errf("bad integer literal %q", t.Text)
		}
		return &IntLit{Text: t.Text, Val: v}, nil
	case TokFloatLit:
		p.advance()
		v, err := strconv.ParseFloat(trimFloatSuffix(t.Text), 64)
		if err != nil {
			return nil, p.errf("bad float literal %q", t.Text)
		}
		return &FloatLit{Text: t.Text, Val: v}, nil
	case TokIdent:
		name := p.advance().Text
		if p.cur().Text == "(" {
			p.advance()
			call := &Call{Fun: name}
			for !p.accept(")") {
				if len(call.Args) > 0 {
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseAssign()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			return call, nil
		}
		return &Ident{Name: name}, nil
	case TokPunct:
		if t.Text == "(" {
			p.advance()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	}
	return nil, p.errf("unexpected token %s in expression", t)
}

func trimIntSuffix(s string) string {
	for len(s) > 0 {
		c := s[len(s)-1]
		if c == 'u' || c == 'U' || c == 'l' || c == 'L' {
			s = s[:len(s)-1]
			continue
		}
		break
	}
	return s
}

func trimFloatSuffix(s string) string {
	for len(s) > 0 {
		c := s[len(s)-1]
		if c == 'f' || c == 'F' || c == 'l' || c == 'L' {
			s = s[:len(s)-1]
			continue
		}
		break
	}
	return s
}
