package clkernel

import "fmt"

// OpClass is one of the instruction classes used as static code features,
// plus OpOther for everything else (control flow, comparisons, work-item
// queries) which contributes only to the normalization total.
type OpClass int

// Instruction classes. The first ten are exactly the paper's feature
// components, in the order of its feature vector definition (Section 3.2).
const (
	OpIntAdd OpClass = iota
	OpIntMul
	OpIntDiv
	OpIntBitwise
	OpFloatAdd
	OpFloatMul
	OpFloatDiv
	OpSpecial
	OpGlobalAccess
	OpLocalAccess
	OpOther
	NumOpClasses
)

// NumFeatureClasses is the count of classes that are model features (all but
// OpOther).
const NumFeatureClasses = int(OpOther)

var opClassNames = [NumOpClasses]string{
	"int_add", "int_mul", "int_div", "int_bw",
	"float_add", "float_mul", "float_div", "sf",
	"gl_access", "loc_access", "other",
}

// String returns the instruction class's feature name.
func (c OpClass) String() string {
	if c < 0 || c >= NumOpClasses {
		return fmt.Sprintf("OpClass(%d)", int(c))
	}
	return opClassNames[c]
}

// Counts holds instruction-class counts for one kernel, plus the memory
// traffic (in bytes) implied by the counted accesses. In static mode the
// counts are per-source-instruction; in weighted mode they estimate dynamic
// per-work-item executions.
type Counts struct {
	Ops         [NumOpClasses]float64
	GlobalBytes float64
	LocalBytes  float64
}

// Total returns the total instruction count (all classes including other).
func (c Counts) Total() float64 {
	t := 0.0
	for _, v := range c.Ops {
		t += v
	}
	return t
}

// FeatureTotal returns the sum over the ten feature classes only.
func (c Counts) FeatureTotal() float64 {
	t := 0.0
	for i := 0; i < NumFeatureClasses; i++ {
		t += c.Ops[i]
	}
	return t
}

func (c *Counts) add(cl OpClass, w float64) { c.Ops[cl] += w }

func (c *Counts) merge(o Counts, w float64) {
	for i := range c.Ops {
		c.Ops[i] += o.Ops[i] * w
	}
	c.GlobalBytes += o.GlobalBytes * w
	c.LocalBytes += o.LocalBytes * w
}

// Mode selects how loops and branches are weighted during counting.
type Mode int

const (
	// Static counts each source instruction once, like an LLVM-IR static
	// pass: loop bodies and both branch arms are counted with weight 1.
	Static Mode = iota
	// Weighted multiplies loop bodies by their literal trip counts (or
	// DefaultTrip when the bound is symbolic) and branch arms by 1/2,
	// estimating the dynamic per-work-item instruction mix.
	Weighted
)

// DefaultTrip is the assumed trip count for loops whose bounds are not
// integer literals, in Weighted mode.
const DefaultTrip = 16.0

// Count runs the counting pass over a kernel (or helper) function. prog
// provides helper-function definitions so calls to them can be inlined; it
// may be nil when the function calls only builtins.
func Count(fn *Function, prog *Program, mode Mode) Counts {
	c := &counter{
		mode:    mode,
		prog:    prog,
		helpers: map[string]Counts{},
		inFly:   map[string]bool{},
	}
	return c.function(fn)
}

// CountKernel parses nothing; it counts the single kernel named name in
// prog. It panics if the kernel does not exist (fixed embedded sources).
func CountKernel(prog *Program, name string, mode Mode) Counts {
	k := prog.Kernel(name)
	if k == nil {
		panic("clkernel: no kernel named " + name)
	}
	return Count(k, prog, mode)
}

type counter struct {
	mode    Mode
	prog    *Program
	scopes  []map[string]Type
	helpers map[string]Counts // memoized helper-function counts
	inFly   map[string]bool   // recursion guard
}

func (c *counter) push() { c.scopes = append(c.scopes, map[string]Type{}) }
func (c *counter) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *counter) define(name string, t Type) {
	c.scopes[len(c.scopes)-1][name] = t
}

func (c *counter) lookup(name string) (Type, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][name]; ok {
			return t, true
		}
	}
	return Type{}, false
}

func (c *counter) function(fn *Function) Counts {
	c.push()
	defer c.pop()
	for _, p := range fn.Params {
		c.define(p.Name, p.Type)
	}
	var out Counts
	c.block(fn.Body, 1, &out)
	return out
}

func (c *counter) block(b *Block, w float64, out *Counts) {
	c.push()
	defer c.pop()
	for _, s := range b.Stmts {
		c.stmt(s, w, out)
	}
}

func (c *counter) stmt(s Stmt, w float64, out *Counts) {
	switch s := s.(type) {
	case *Block:
		c.block(s, w, out)
	case *BlockStmt:
		c.block(s.Block, w, out)
	case *DeclStmt:
		for _, dn := range s.Names {
			t := s.Type
			if dn.ArrLen != 0 {
				t.Pointer = true // arrays decay to pointers for access counting
			}
			c.define(dn.Name, t)
			if dn.Init != nil {
				c.expr(dn.Init, w, out)
			}
		}
	case *ExprStmt:
		c.expr(s.X, w, out)
	case *IfStmt:
		c.expr(s.Cond, w, out)
		bw := w
		if c.mode == Weighted {
			bw = w * 0.5
		}
		c.block(s.Then, bw, out)
		if s.Else != nil {
			c.block(s.Else, bw, out)
		}
	case *ForStmt:
		c.push()
		if s.Init != nil {
			c.stmt(s.Init, w, out)
		}
		trips := 1.0
		if c.mode == Weighted {
			trips = c.tripCount(s)
		}
		if s.Cond != nil {
			c.expr(s.Cond, w*trips, out)
		}
		if s.Post != nil {
			c.expr(s.Post, w*trips, out)
		}
		c.block(s.Body, w*trips, out)
		c.pop()
	case *WhileStmt:
		trips := 1.0
		if c.mode == Weighted {
			trips = DefaultTrip
		}
		c.expr(s.Cond, w*trips, out)
		c.block(s.Body, w*trips, out)
	case *ReturnStmt:
		if s.X != nil {
			c.expr(s.X, w, out)
		}
		out.add(OpOther, w)
	case *BreakStmt, *ContinueStmt:
		out.add(OpOther, w)
	}
}

// tripCount extracts a literal trip count from the canonical loop form
// `for (i = a; i < N; i += s)`; symbolic bounds yield DefaultTrip.
func (c *counter) tripCount(f *ForStmt) float64 {
	start, okStart := 0.0, false
	var iv string
	switch init := f.Init.(type) {
	case *DeclStmt:
		if len(init.Names) == 1 && init.Names[0].Init != nil {
			if v, ok := literalValue(init.Names[0].Init); ok {
				start, okStart = v, true
				iv = init.Names[0].Name
			}
		}
	case *ExprStmt:
		if b, ok := init.X.(*Binary); ok && b.Op == "=" {
			if id, ok := b.L.(*Ident); ok {
				if v, ok := literalValue(b.R); ok {
					start, okStart = v, true
					iv = id.Name
				}
			}
		}
	}
	if !okStart || f.Cond == nil {
		return DefaultTrip
	}
	cond, ok := f.Cond.(*Binary)
	if !ok {
		return DefaultTrip
	}
	var bound float64
	var cmpOp string
	if id, isID := cond.L.(*Ident); isID && id.Name == iv {
		v, okV := literalValue(cond.R)
		if !okV {
			return DefaultTrip
		}
		bound, cmpOp = v, cond.Op
	} else if id, isID := cond.R.(*Ident); isID && id.Name == iv {
		v, okV := literalValue(cond.L)
		if !okV {
			return DefaultTrip
		}
		bound = v
		cmpOp = flipCmp(cond.Op)
	} else {
		return DefaultTrip
	}
	step := stepOf(f.Post, iv)
	if step == 0 {
		return DefaultTrip
	}
	var n float64
	switch cmpOp {
	case "<":
		n = (bound - start) / step
	case "<=":
		n = (bound-start)/step + 1
	case ">":
		n = (start - bound) / -step
	case ">=":
		n = (start-bound)/-step + 1
	default:
		return DefaultTrip
	}
	if n < 0 {
		return 0
	}
	// Round up: partially-executed final iterations still execute.
	if n != float64(int64(n)) {
		n = float64(int64(n)) + 1
	}
	return n
}

func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case ">":
		return "<"
	case "<=":
		return ">="
	case ">=":
		return "<="
	}
	return op
}

// stepOf extracts the per-iteration step of induction variable iv from the
// loop post expression; 0 means unknown.
func stepOf(post Expr, iv string) float64 {
	switch p := post.(type) {
	case *Unary:
		if id, ok := p.X.(*Ident); ok && id.Name == iv {
			if p.Op == "++" {
				return 1
			}
			if p.Op == "--" {
				return -1
			}
		}
	case *Postfix:
		if id, ok := p.X.(*Ident); ok && id.Name == iv {
			if p.Op == "++" {
				return 1
			}
			if p.Op == "--" {
				return -1
			}
		}
	case *Binary:
		id, ok := p.L.(*Ident)
		if !ok || id.Name != iv {
			return 0
		}
		switch p.Op {
		case "+=":
			if v, ok := literalValue(p.R); ok {
				return v
			}
		case "-=":
			if v, ok := literalValue(p.R); ok {
				return -v
			}
		case "=":
			// i = i + c  or  i = i - c
			if b, ok := p.R.(*Binary); ok {
				if lid, ok := b.L.(*Ident); ok && lid.Name == iv {
					if cv, ok := literalValue(b.R); ok {
						if b.Op == "+" {
							return cv
						}
						if b.Op == "-" {
							return -cv
						}
					}
				}
			}
		}
	}
	return 0
}

func literalValue(e Expr) (float64, bool) {
	switch e := e.(type) {
	case *IntLit:
		return float64(e.Val), true
	case *FloatLit:
		return e.Val, true
	case *Unary:
		if e.Op == "-" {
			if v, ok := literalValue(e.X); ok {
				return -v, true
			}
		}
	}
	return 0, false
}

// sizeofBase maps scalar base types to their size in bytes.
func sizeofBase(base string) float64 {
	switch base {
	case "char", "uchar", "bool":
		return 1
	case "short", "ushort", "half":
		return 2
	case "long", "ulong", "double":
		return 8
	default: // int, uint, float, size_t (32-bit device model)
		return 4
	}
}

// expr counts the operations in e with weight w and returns e's type.
func (c *counter) expr(e Expr, w float64, out *Counts) Type {
	switch e := e.(type) {
	case *IntLit:
		return Type{Base: "int", Width: 1}
	case *FloatLit:
		return Type{Base: "float", Width: 1}
	case *Ident:
		if t, ok := c.lookup(e.Name); ok {
			return t
		}
		return Type{Base: "int", Width: 1} // unknown names: enum-like constants
	case *Member:
		t := c.expr(e.X, w, out)
		// Vector component access is free; sub-vector swizzles keep base.
		lanes := len(e.Sel)
		if lanes == 0 || lanes > t.Lanes() {
			lanes = 1
		}
		return Type{Base: t.Base, Width: lanes}
	case *Cast:
		from := c.expr(e.X, w, out)
		if from.IsFloat() != e.To.IsFloat() && !e.To.Pointer {
			out.add(OpOther, w) // int<->float conversion instruction
		}
		return e.To
	case *Ternary:
		c.expr(e.Cond, w, out)
		a := c.expr(e.Then, w, out)
		b := c.expr(e.Else, w, out)
		out.add(OpOther, w) // select
		return promote(a, b)
	case *Unary:
		return c.unary(e, w, out)
	case *Postfix:
		t := c.expr(e.X, w, out)
		c.addArith(t, "+", w, out)
		return t
	case *Index:
		return c.index(e, w, out, 1)
	case *Binary:
		return c.binary(e, w, out)
	case *Call:
		return c.call(e, w, out)
	}
	return Type{Base: "int", Width: 1}
}

func (c *counter) unary(e *Unary, w float64, out *Counts) Type {
	switch e.Op {
	case "*":
		t := c.expr(e.X, w, out)
		// Dereference: a memory access in the pointee's address space.
		c.access(t, w, 1, out)
		t.Pointer = false
		return t
	case "&":
		t := c.expr(e.X, w, out)
		t.Pointer = true
		return t
	case "-":
		t := c.expr(e.X, w, out)
		c.addArith(t, "+", w, out) // negation costs one add-class op
		return t
	case "~":
		t := c.expr(e.X, w, out)
		out.add(OpIntBitwise, w*float64(t.Lanes()))
		return t
	case "!":
		c.expr(e.X, w, out)
		out.add(OpOther, w)
		return Type{Base: "int", Width: 1}
	case "++", "--":
		t := c.expr(e.X, w, out)
		c.addArith(t, "+", w, out)
		return t
	}
	return c.expr(e.X, w, out)
}

// index counts a subscript access. accesses is the number of memory
// operations the subscript represents (1 for a load or a store, 2 for a
// compound-assignment load+store).
func (c *counter) index(e *Index, w float64, out *Counts, accesses float64) Type {
	base := c.expr(e.X, w, out)
	c.expr(e.I, w, out)
	elem := Type{Base: base.Base, Width: base.Lanes(), Space: base.Space}
	c.access(base, w*accesses, 1, out)
	return elem
}

// access records a memory access against the address space of t (a pointer
// or array type). n is the access count multiplier.
func (c *counter) access(t Type, w, n float64, out *Counts) {
	bytes := sizeofBase(t.Base) * float64(t.Lanes()) * w * n
	switch t.Space {
	case Global, Constant:
		out.add(OpGlobalAccess, w*n)
		out.GlobalBytes += bytes
	case Local:
		out.add(OpLocalAccess, w*n)
		out.LocalBytes += bytes
	default:
		// Private arrays live in registers/local memory of the work-item:
		// count as other (moves), no device-memory traffic.
		out.add(OpOther, w*n)
	}
}

// addArith counts an arithmetic op of the given symbol against the class
// implied by t, scaled by vector width.
func (c *counter) addArith(t Type, op string, w float64, out *Counts) {
	lanes := float64(t.Lanes())
	if t.IsFloat() {
		switch op {
		case "+", "-":
			out.add(OpFloatAdd, w*lanes)
		case "*":
			out.add(OpFloatMul, w*lanes)
		case "/", "%":
			out.add(OpFloatDiv, w*lanes)
		}
		return
	}
	switch op {
	case "+", "-":
		out.add(OpIntAdd, w*lanes)
	case "*":
		out.add(OpIntMul, w*lanes)
	case "/", "%":
		out.add(OpIntDiv, w*lanes)
	case "<<", ">>", "&", "|", "^":
		out.add(OpIntBitwise, w*lanes)
	}
}

var cmpOps = map[string]bool{"==": true, "!=": true, "<": true, ">": true, "<=": true, ">=": true}

func (c *counter) binary(e *Binary, w float64, out *Counts) Type {
	if assignOps[e.Op] {
		return c.assign(e, w, out)
	}
	lt := c.expr(e.L, w, out)
	rt := c.expr(e.R, w, out)
	t := promote(lt, rt)
	switch {
	case cmpOps[e.Op]:
		out.add(OpOther, w*float64(t.Lanes()))
		return Type{Base: "int", Width: t.Lanes()}
	case e.Op == "&&" || e.Op == "||":
		out.add(OpOther, w)
		return Type{Base: "int", Width: 1}
	case e.Op == "<<" || e.Op == ">>" || e.Op == "&" || e.Op == "|" || e.Op == "^":
		out.add(OpIntBitwise, w*float64(t.Lanes()))
		return t
	default:
		c.addArith(t, e.Op, w, out)
		return t
	}
}

// assign handles "=" and compound assignments, counting stores to memory
// lvalues and the implied read-modify-write of compound forms.
func (c *counter) assign(e *Binary, w float64, out *Counts) Type {
	compound := e.Op != "="
	var lt Type
	switch l := e.L.(type) {
	case *Index:
		acc := 1.0
		if compound {
			acc = 2.0 // load + store
		}
		lt = c.index(l, w, out, acc)
	case *Unary:
		if l.Op == "*" {
			pt := c.expr(l.X, w, out)
			acc := 1.0
			if compound {
				acc = 2.0
			}
			c.access(pt, w, acc, out)
			pt.Pointer = false
			lt = pt
		} else {
			lt = c.expr(e.L, w, out)
		}
	case *Member:
		lt = c.expr(l, w, out)
	case *Ident:
		if t, ok := c.lookup(l.Name); ok {
			lt = t
		} else {
			lt = Type{Base: "int", Width: 1}
		}
	default:
		lt = c.expr(e.L, w, out)
	}
	c.expr(e.R, w, out)
	if compound {
		op := e.Op[:len(e.Op)-1] // "+=" -> "+"
		c.addArith(lt, op, w, out)
	}
	return lt
}

func promote(a, b Type) Type {
	t := a
	if b.IsFloat() && !a.IsFloat() {
		t = b
	}
	if b.Lanes() > t.Lanes() {
		t.Width = b.Lanes()
	}
	if b.Base == "double" {
		t.Base = "double"
	}
	return t
}
