// Package clkernel implements a front-end for a practical subset of
// OpenCL C: a lexer, a recursive-descent parser producing an AST, and an
// instruction-counting lowering pass.
//
// The pass classifies operations into the ten instruction classes the paper
// uses as static code features (integer add/mul/div/bitwise, float
// add/mul/div, special functions, global-memory accesses, local-memory
// accesses) plus an "other" bucket (control flow, comparisons, work-item
// queries) that contributes to the total used for normalization.
//
// Two counting modes are provided. Static mode counts every instruction in
// the kernel body once, mirroring the paper's LLVM-IR pass; Weighted mode
// multiplies loop bodies by their (literal) trip counts and is used by the
// GPU simulator to derive a per-work-item dynamic profile from the same
// source.
package clkernel

import "fmt"

// TokenKind enumerates lexical token categories.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokIntLit
	TokFloatLit
	TokKeyword
	TokPunct // operators and punctuation
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Line int
	Col  int
}

// String renders the token for parser error messages.
func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "EOF"
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// keywords of the supported OpenCL C subset. Address-space qualifiers appear
// both with and without the double-underscore prefix, as in real kernels.
var keywords = map[string]bool{
	"__kernel": true, "kernel": true,
	"__global": true, "global": true,
	"__local": true, "local": true,
	"__constant": true, "constant": true,
	"__private": true, "private": true,
	"const": true, "restrict": true, "volatile": true, "unsigned": true,
	"if": true, "else": true, "for": true, "while": true, "do": true,
	"return": true, "break": true, "continue": true,
	"void": true, "bool": true, "char": true, "uchar": true,
	"short": true, "ushort": true, "int": true, "uint": true,
	"long": true, "ulong": true, "float": true, "double": true,
	"half": true, "size_t": true,
}

// vectorBase lists scalar types that admit vector suffixes (float4, int2...).
var vectorBase = map[string]bool{
	"char": true, "uchar": true, "short": true, "ushort": true,
	"int": true, "uint": true, "long": true, "ulong": true,
	"float": true, "double": true, "half": true,
}

// isTypeName reports whether the identifier names a supported type,
// including vector forms such as "float4".
func isTypeName(s string) bool {
	switch s {
	case "void", "bool", "char", "uchar", "short", "ushort", "int", "uint",
		"long", "ulong", "float", "double", "half", "size_t", "unsigned":
		return true
	}
	base, n := splitVector(s)
	return n > 1 && vectorBase[base]
}

// splitVector splits a possible vector type name into its scalar base and
// lane count; scalar names return width 1, non-types return width 0.
func splitVector(s string) (base string, width int) {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] < '0' || s[i] > '9' {
			if i == len(s)-1 {
				return s, 1
			}
			base = s[:i+1]
			w := 0
			for _, c := range s[i+1:] {
				w = w*10 + int(c-'0')
			}
			switch w {
			case 2, 3, 4, 8, 16:
				return base, w
			}
			return s, 0
		}
	}
	return s, 0
}
