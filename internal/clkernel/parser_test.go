package clkernel

import (
	"strings"
	"testing"
)

const simpleKernel = `
__kernel void add(__global const float* a, __global const float* b,
                  __global float* out, int n) {
    int i = get_global_id(0);
    if (i < n) {
        out[i] = a[i] + b[i];
    }
}`

func TestParseSimpleKernel(t *testing.T) {
	prog, err := Parse(simpleKernel)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Kernels) != 1 {
		t.Fatalf("got %d kernels, want 1", len(prog.Kernels))
	}
	k := prog.Kernels[0]
	if k.Name != "add" {
		t.Errorf("kernel name = %q, want add", k.Name)
	}
	if len(k.Params) != 4 {
		t.Fatalf("got %d params, want 4", len(k.Params))
	}
	if k.Params[0].Type.Space != Global || !k.Params[0].Type.Pointer {
		t.Errorf("param a type = %+v, want global pointer", k.Params[0].Type)
	}
	if k.Params[3].Type.Base != "int" || k.Params[3].Type.Pointer {
		t.Errorf("param n type = %+v, want int scalar", k.Params[3].Type)
	}
	if len(k.Body.Stmts) != 2 {
		t.Errorf("body has %d stmts, want 2", len(k.Body.Stmts))
	}
}

func TestParseHelperFunction(t *testing.T) {
	src := `
float square(float x) { return x * x; }
__kernel void k(__global float* o) {
    o[get_global_id(0)] = square(2.0f);
}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Helpers) != 1 || prog.Helpers[0].Name != "square" {
		t.Fatalf("helpers = %v", prog.Helpers)
	}
	if prog.Helper("square") == nil {
		t.Error("Helper(square) = nil")
	}
	if prog.Kernel("k") == nil {
		t.Error("Kernel(k) = nil")
	}
	if prog.Kernel("nope") != nil {
		t.Error("Kernel(nope) != nil")
	}
}

func TestParseNoKernel(t *testing.T) {
	if _, err := Parse("float f(float x) { return x; }"); err == nil {
		t.Error("expected error for translation unit without kernels")
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
__kernel void k(__global float* o, int n) {
    float acc = 0.0f;
    for (int i = 0; i < 16; i++) {
        acc += 1.0f;
    }
    int j = 0;
    while (j < n) { j++; }
    do { j--; } while (j > 0);
    if (n > 3) acc = 1.0f; else acc = 2.0f;
    o[0] = acc;
}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	body := prog.Kernels[0].Body.Stmts
	if _, ok := body[1].(*ForStmt); !ok {
		t.Errorf("stmt 1 is %T, want *ForStmt", body[1])
	}
	if w, ok := body[3].(*WhileStmt); !ok || w.Do {
		t.Errorf("stmt 3 is %T (Do=%v), want while", body[3], ok)
	}
	if w, ok := body[4].(*WhileStmt); !ok || !w.Do {
		t.Errorf("stmt 4 is %T, want do-while", body[4])
	}
	iff, ok := body[5].(*IfStmt)
	if !ok {
		t.Fatalf("stmt 5 is %T, want *IfStmt", body[5])
	}
	if iff.Else == nil {
		t.Error("if statement lost its else branch")
	}
}

func TestParsePrecedence(t *testing.T) {
	src := `__kernel void k(__global int* o) { o[0] = 1 + 2 * 3; }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	es := prog.Kernels[0].Body.Stmts[0].(*ExprStmt)
	asn := es.X.(*Binary)
	if asn.Op != "=" {
		t.Fatalf("top op = %q, want =", asn.Op)
	}
	add := asn.R.(*Binary)
	if add.Op != "+" {
		t.Fatalf("rhs op = %q, want +", add.Op)
	}
	mul, ok := add.R.(*Binary)
	if !ok || mul.Op != "*" {
		t.Fatalf("mul side = %#v, want 2*3", add.R)
	}
}

func TestParseTernaryAndCast(t *testing.T) {
	src := `__kernel void k(__global float* o, int n) {
	    o[0] = (n > 0) ? (float)n : 0.0f;
	}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	es := prog.Kernels[0].Body.Stmts[0].(*ExprStmt)
	asn := es.X.(*Binary)
	tern, ok := asn.R.(*Ternary)
	if !ok {
		t.Fatalf("rhs is %T, want *Ternary", asn.R)
	}
	if _, ok := tern.Then.(*Cast); !ok {
		t.Errorf("then branch is %T, want *Cast", tern.Then)
	}
}

func TestParseVectorTypesAndMembers(t *testing.T) {
	src := `__kernel void k(__global float4* o) {
	    float4 v = o[0];
	    float x = v.x + v.w;
	    o[1].x = x;
	    float2 half_v = v.xy;
	    o[2] = v;
	    (void)half_v;
	}`
	// (void) cast of an ident is unusual but exercises cast parsing.
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	k := prog.Kernels[0]
	if k.Params[0].Type.Width != 4 {
		t.Errorf("param width = %d, want 4", k.Params[0].Type.Width)
	}
}

func TestParseLocalArray(t *testing.T) {
	src := `__kernel void k(__global float* o) {
	    __local float tile[256];
	    float priv[8];
	    tile[get_local_id(0)] = 1.0f;
	    priv[0] = tile[0];
	    barrier(CLK_LOCAL_MEM_FENCE);
	    o[0] = priv[0];
	}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	d := prog.Kernels[0].Body.Stmts[0].(*DeclStmt)
	if d.Type.Space != Local {
		t.Errorf("tile space = %v, want Local", d.Type.Space)
	}
	if d.Names[0].ArrLen != 256 {
		t.Errorf("tile length = %d, want 256", d.Names[0].ArrLen)
	}
}

func TestParseMultiDeclarators(t *testing.T) {
	src := `__kernel void k(__global float* o) {
	    int a = 1, b = 2, c;
	    c = a + b;
	    o[0] = (float)c;
	}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	d := prog.Kernels[0].Body.Stmts[0].(*DeclStmt)
	if len(d.Names) != 3 {
		t.Errorf("got %d declarators, want 3", len(d.Names))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"__kernel void k( { }",
		"__kernel void k() { int ; }",
		"__kernel void k() { x = ; }",
		"__kernel void k() { if (x { } }",
		"__kernel void k() { for (;;) }",
		"__kernel void k() {",
		"__kernel void 3bad() { }",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		} else if !strings.Contains(err.Error(), "clkernel:") {
			t.Errorf("error %q lacks package prefix", err)
		}
	}
}

func TestParseUnsigned(t *testing.T) {
	src := `__kernel void k(__global unsigned int* o, unsigned n) {
	    o[0] = n;
	}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if prog.Kernels[0].Params[0].Type.Base != "uint" {
		t.Errorf("param 0 base = %q, want uint", prog.Kernels[0].Params[0].Type.Base)
	}
	if prog.Kernels[0].Params[1].Type.Base != "uint" {
		t.Errorf("param 1 base = %q, want uint", prog.Kernels[0].Params[1].Type.Base)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad input")
		}
	}()
	MustParse("not a kernel")
}
