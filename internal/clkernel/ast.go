package clkernel

import "strconv"

// AddrSpace is an OpenCL address-space qualifier.
type AddrSpace int

// Address spaces. Private is the default for locals and parameters without a
// qualifier; Constant behaves like Global for access counting (the paper's
// feature set folds constant-memory reads into global accesses).
const (
	Private AddrSpace = iota
	Global
	Local
	Constant
)

// String renders the OpenCL address-space qualifier spelling.
func (a AddrSpace) String() string {
	switch a {
	case Global:
		return "__global"
	case Local:
		return "__local"
	case Constant:
		return "__constant"
	default:
		return "__private"
	}
}

// Type is a scalar, vector, or pointer type of the subset.
type Type struct {
	Base    string // scalar base name: "float", "int", "uint", ...
	Width   int    // vector lanes; 1 for scalars
	Pointer bool
	Space   AddrSpace // meaningful for pointers and __local arrays
}

// IsFloat reports whether the type's base is a floating-point type.
func (t Type) IsFloat() bool {
	switch t.Base {
	case "float", "double", "half":
		return true
	}
	return false
}

// Lanes returns the vector width, treating 0 (unknown) as 1.
func (t Type) Lanes() int {
	if t.Width <= 0 {
		return 1
	}
	return t.Width
}

// String renders the type the way OpenCL source spells it.
func (t Type) String() string {
	s := t.Base
	if t.Width > 1 {
		s += strconv.Itoa(t.Width)
	}
	if t.Pointer {
		s += "*"
	}
	return s
}

// Program is a parsed translation unit: zero or more kernel functions plus
// optional non-kernel helper functions.
type Program struct {
	Kernels []*Function
	Helpers []*Function
}

// Kernel returns the kernel with the given name, or nil.
func (p *Program) Kernel(name string) *Function {
	for _, k := range p.Kernels {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// Helper returns the helper function with the given name, or nil.
func (p *Program) Helper(name string) *Function {
	for _, f := range p.Helpers {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Function is a kernel or helper function definition.
type Function struct {
	Name     string
	IsKernel bool
	Return   Type
	Params   []Param
	Body     *Block
}

// Param is one function parameter.
type Param struct {
	Name string
	Type Type
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ isStmt() }

// Expr is implemented by all expression nodes.
type Expr interface{ isExpr() }

// Block is a `{ ... }` statement list.
type Block struct {
	Stmts []Stmt
}

// DeclStmt declares one or more variables of a common type, each with an
// optional initializer and optional array length (0 = not an array).
type DeclStmt struct {
	Type  Type
	Names []DeclName
}

// DeclName is one declarator within a DeclStmt.
type DeclName struct {
	Name   string
	ArrLen int
	Init   Expr
}

// ExprStmt wraps an expression evaluated for its side effects.
type ExprStmt struct{ X Expr }

// IfStmt is an if/else statement.
type IfStmt struct {
	Cond Expr
	Then *Block
	Else *Block // nil when absent
}

// ForStmt is a C-style for loop. Init may be a DeclStmt or ExprStmt.
type ForStmt struct {
	Init Stmt // nil when empty
	Cond Expr // nil when empty
	Post Expr // nil when empty
	Body *Block
}

// WhileStmt is a while (or lowered do-while) loop.
type WhileStmt struct {
	Cond Expr
	Body *Block
	Do   bool // true for do-while: body runs at least once
}

// ReturnStmt returns from the function (X may be nil).
type ReturnStmt struct{ X Expr }

// BreakStmt breaks the innermost loop.
type BreakStmt struct{}

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{}

// BlockStmt nests a block as a statement.
type BlockStmt struct{ Block *Block }

func (*Block) isStmt()        {}
func (*DeclStmt) isStmt()     {}
func (*ExprStmt) isStmt()     {}
func (*IfStmt) isStmt()       {}
func (*ForStmt) isStmt()      {}
func (*WhileStmt) isStmt()    {}
func (*ReturnStmt) isStmt()   {}
func (*BreakStmt) isStmt()    {}
func (*ContinueStmt) isStmt() {}
func (*BlockStmt) isStmt()    {}

// Ident references a variable or function name.
type Ident struct{ Name string }

// IntLit is an integer literal; Val carries its parsed value.
type IntLit struct {
	Text string
	Val  int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Text string
	Val  float64
}

// Binary is a binary operation, including assignments and compound
// assignments (Op "=", "+=", ...), comparisons and logical operators.
type Binary struct {
	Op   string
	L, R Expr
}

// Unary is a prefix unary operation ("-", "!", "~", "++", "--", "*", "&").
type Unary struct {
	Op string
	X  Expr
}

// Postfix is a postfix ++ or --.
type Postfix struct {
	Op string
	X  Expr
}

// Call is a function or builtin invocation.
type Call struct {
	Fun  string
	Args []Expr
}

// Index is an array/pointer subscript X[I].
type Index struct {
	X Expr
	I Expr
}

// Member accesses a vector component or struct field (X.Sel).
type Member struct {
	X   Expr
	Sel string
}

// Cast converts an expression to a type, e.g. (float)x or (float4)(...).
type Cast struct {
	To Type
	X  Expr
}

// Ternary is cond ? a : b.
type Ternary struct {
	Cond, Then, Else Expr
}

func (*Ident) isExpr()    {}
func (*IntLit) isExpr()   {}
func (*FloatLit) isExpr() {}
func (*Binary) isExpr()   {}
func (*Unary) isExpr()    {}
func (*Postfix) isExpr()  {}
func (*Call) isExpr()     {}
func (*Index) isExpr()    {}
func (*Member) isExpr()   {}
func (*Cast) isExpr()     {}
func (*Ternary) isExpr()  {}
