package clkernel

import "strings"

// Special (transcendental) functions executed on the GPU's SFU, counted in
// the ksf feature class.
var specialFns = map[string]bool{
	"sin": true, "cos": true, "tan": true,
	"sinh": true, "cosh": true, "tanh": true,
	"asin": true, "acos": true, "atan": true, "atan2": true,
	"exp": true, "exp2": true, "exp10": true, "expm1": true,
	"log": true, "log2": true, "log10": true, "log1p": true,
	"pow": true, "pown": true, "powr": true,
	"sqrt": true, "rsqrt": true, "cbrt": true, "hypot": true,
	"erf": true, "erfc": true, "tgamma": true, "lgamma": true,
	"native_sin": true, "native_cos": true, "native_tan": true,
	"native_exp": true, "native_exp2": true, "native_log": true,
	"native_log2": true, "native_sqrt": true, "native_rsqrt": true,
	"native_recip": true, "native_powr": true, "native_divide": true,
	"half_sin": true, "half_cos": true, "half_exp": true,
	"half_log": true, "half_sqrt": true, "half_rsqrt": true,
	"sincos": true,
}

// Cheap float ALU builtins: one float-add-class op per call lane.
var cheapFloatFns = map[string]bool{
	"fabs": true, "floor": true, "ceil": true, "round": true, "trunc": true,
	"rint": true, "fract": true, "sign": true, "copysign": true,
	"fmin": true, "fmax": true, "fmod": false, // fmod is a division
	"fdim": true, "maxmag": true, "minmag": true, "degrees": true,
	"radians": true, "step": true,
}

// Work-item and synchronization builtins: counted as other.
var otherFns = map[string]bool{
	"get_global_id": true, "get_local_id": true, "get_group_id": true,
	"get_global_size": true, "get_local_size": true, "get_num_groups": true,
	"get_work_dim": true, "get_global_offset": true,
	"barrier": true, "mem_fence": true, "read_mem_fence": true,
	"write_mem_fence": true, "work_group_barrier": true,
	"isnan": true, "isinf": true, "isfinite": true, "signbit": true,
	"select": true, "any": true, "all": true, "bitselect": true,
}

// call counts a function invocation and infers its return type.
func (c *counter) call(e *Call, w float64, out *Counts) Type {
	// Argument expressions are always evaluated.
	argTypes := make([]Type, len(e.Args))
	for i, a := range e.Args {
		argTypes[i] = c.expr(a, w, out)
	}
	arg0 := Type{Base: "float", Width: 1}
	if len(argTypes) > 0 {
		arg0 = argTypes[0]
	}
	lanes := float64(arg0.Lanes())
	name := e.Fun

	switch {
	case specialFns[name]:
		out.add(OpSpecial, w)
		return floatLike(arg0)

	case cheapFloatFns[name]:
		out.add(OpFloatAdd, w*lanes)
		return floatLike(arg0)

	case name == "fmod":
		out.add(OpFloatDiv, w*lanes)
		return floatLike(arg0)

	case name == "mad" || name == "fma":
		out.add(OpFloatMul, w*lanes)
		out.add(OpFloatAdd, w*lanes)
		return floatLike(arg0)

	case name == "mad24" || name == "mul24":
		out.add(OpIntMul, w*lanes)
		if name == "mad24" {
			out.add(OpIntAdd, w*lanes)
		}
		return arg0

	case name == "min" || name == "max" || name == "abs" || name == "abs_diff" ||
		name == "clamp" || name == "mix" || name == "smoothstep":
		if arg0.IsFloat() || name == "mix" || name == "smoothstep" {
			out.add(OpFloatAdd, w*lanes)
			if name == "mix" || name == "smoothstep" {
				out.add(OpFloatMul, w*lanes)
			}
			return floatLike(arg0)
		}
		out.add(OpIntAdd, w*lanes)
		return arg0

	case name == "dot":
		n := lanes
		out.add(OpFloatMul, w*n)
		out.add(OpFloatAdd, w*(n-1))
		return Type{Base: "float", Width: 1}

	case name == "cross":
		out.add(OpFloatMul, w*6)
		out.add(OpFloatAdd, w*3)
		return Type{Base: "float", Width: arg0.Lanes()}

	case name == "length" || name == "fast_length":
		out.add(OpFloatMul, w*lanes)
		out.add(OpFloatAdd, w*(lanes-1))
		out.add(OpSpecial, w) // sqrt
		return Type{Base: "float", Width: 1}

	case name == "distance" || name == "fast_distance":
		out.add(OpFloatAdd, w*lanes) // subtraction
		out.add(OpFloatMul, w*lanes)
		out.add(OpFloatAdd, w*(lanes-1))
		out.add(OpSpecial, w)
		return Type{Base: "float", Width: 1}

	case name == "normalize" || name == "fast_normalize":
		out.add(OpFloatMul, w*lanes)
		out.add(OpFloatAdd, w*(lanes-1))
		out.add(OpSpecial, w) // rsqrt
		out.add(OpFloatMul, w*lanes)
		return arg0

	case strings.HasPrefix(name, "vload"):
		width := vectorSuffix(name, "vload")
		if len(argTypes) == 2 {
			pt := argTypes[1]
			pt.Width = width
			c.access(pt, w, 1, out)
			pt.Pointer = false
			return pt
		}
		return Type{Base: "float", Width: width}

	case strings.HasPrefix(name, "vstore"):
		width := vectorSuffix(name, "vstore")
		if len(argTypes) == 3 {
			pt := argTypes[2]
			pt.Width = width
			c.access(pt, w, 1, out)
		}
		return Type{Base: "void", Width: 1}

	case strings.HasPrefix(name, "atomic_") || strings.HasPrefix(name, "atom_"):
		// Atomic read-modify-write on the pointee's space.
		if len(argTypes) > 0 && argTypes[0].Pointer {
			c.access(argTypes[0], w, 2, out)
		} else {
			out.add(OpGlobalAccess, w*2)
			out.GlobalBytes += 8 * w
		}
		out.add(OpIntAdd, w)
		return Type{Base: "int", Width: 1}

	case strings.HasPrefix(name, "convert_") || strings.HasPrefix(name, "as_"):
		out.add(OpOther, w)
		return convertTarget(name)

	case otherFns[name]:
		out.add(OpOther, w)
		if strings.HasPrefix(name, "get_") {
			return Type{Base: "size_t", Width: 1}
		}
		return Type{Base: "int", Width: 1}

	case isTypeName(name):
		// Vector constructor call form, e.g. float4(a,b,c,d).
		base, width := splitVector(name)
		return Type{Base: base, Width: width}
	}

	// User helper function: inline its counts.
	if c.prog != nil {
		if h := c.prog.Helper(name); h != nil {
			out.merge(c.helperCounts(h), w)
			return h.Return
		}
	}
	// Unknown call: count as other, assume float result.
	out.add(OpOther, w)
	return Type{Base: "float", Width: 1}
}

// helperCounts memoizes counting of helper functions; recursion degrades to
// a single Other op (the subset has no recursive kernels).
func (c *counter) helperCounts(h *Function) Counts {
	if cnt, ok := c.helpers[h.Name]; ok {
		return cnt
	}
	if c.inFly[h.Name] {
		var cnt Counts
		cnt.add(OpOther, 1)
		return cnt
	}
	c.inFly[h.Name] = true
	sub := &counter{mode: c.mode, prog: c.prog, helpers: c.helpers, inFly: c.inFly}
	cnt := sub.function(h)
	delete(c.inFly, h.Name)
	c.helpers[h.Name] = cnt
	return cnt
}

func floatLike(t Type) Type {
	if !t.IsFloat() {
		t.Base = "float"
	}
	t.Pointer = false
	return t
}

func vectorSuffix(name, prefix string) int {
	s := strings.TrimPrefix(name, prefix)
	switch s {
	case "2":
		return 2
	case "3":
		return 3
	case "4":
		return 4
	case "8":
		return 8
	case "16":
		return 16
	}
	return 1
}

func convertTarget(name string) Type {
	s := name
	s = strings.TrimPrefix(s, "convert_")
	s = strings.TrimPrefix(s, "as_")
	s = strings.TrimSuffix(s, "_sat")
	s = strings.TrimSuffix(s, "_rte")
	s = strings.TrimSuffix(s, "_rtz")
	base, width := splitVector(s)
	if width == 0 {
		return Type{Base: "int", Width: 1}
	}
	return Type{Base: base, Width: width}
}
