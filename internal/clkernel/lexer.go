package clkernel

import (
	"fmt"
	"strings"
)

// SyntaxError describes a lexing or parsing failure with its position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

// Error renders the position-annotated message.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("clkernel: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// lexer scans OpenCL C source into tokens. It resolves simple object-like
// #define macros (the only preprocessor feature the subset supports) and
// strips // and /* */ comments.
type lexer struct {
	src     string
	pos     int
	line    int
	col     int
	defines map[string][]Token
}

// Lex tokenizes src, expanding object-like #define macros. It returns the
// token stream terminated by a TokEOF token.
func Lex(src string) ([]Token, error) {
	lx := &lexer{src: src, line: 1, col: 1, defines: map[string][]Token{}}
	var out []Token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		if tok.Kind == TokIdent {
			if repl, ok := lx.defines[tok.Text]; ok {
				out = append(out, repl...)
				continue
			}
		}
		out = append(out, tok)
		if tok.Kind == TokEOF {
			return out, nil
		}
	}
}

func (lx *lexer) errf(format string, args ...any) error {
	return &SyntaxError{Line: lx.line, Col: lx.col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peekByteAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peekByteAt(1) == '/':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekByteAt(1) == '*':
			lx.advance()
			lx.advance()
			for {
				if lx.pos >= len(lx.src) {
					return lx.errf("unterminated block comment")
				}
				if lx.peekByte() == '*' && lx.peekByteAt(1) == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		case c == '#':
			if err := lx.directive(); err != nil {
				return err
			}
		default:
			return nil
		}
	}
	return nil
}

// directive handles a preprocessor line. Only "#define NAME tokens..." and
// "#pragma ..." (ignored) are supported; anything else is an error so that
// unsupported input fails loudly rather than silently mis-counting.
func (lx *lexer) directive() error {
	startLine := lx.line
	lx.advance() // '#'
	var word strings.Builder
	for lx.pos < len(lx.src) && isIdentChar(lx.peekByte()) {
		word.WriteByte(lx.advance())
	}
	rest := lx.restOfLine()
	switch word.String() {
	case "pragma":
		return nil
	case "define":
		rest = strings.TrimSpace(rest)
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return &SyntaxError{Line: startLine, Col: 1, Msg: "#define without a name"}
		}
		name := fields[0]
		if strings.Contains(name, "(") {
			return &SyntaxError{Line: startLine, Col: 1,
				Msg: "function-like macros are not supported: " + name}
		}
		body := strings.TrimSpace(strings.TrimPrefix(rest, name))
		toks, err := Lex(body)
		if err != nil {
			return err
		}
		toks = toks[:len(toks)-1] // drop EOF
		// Expand previously defined macros inside the body (define-before-use).
		var expanded []Token
		for _, t := range toks {
			if t.Kind == TokIdent {
				if repl, ok := lx.defines[t.Text]; ok {
					expanded = append(expanded, repl...)
					continue
				}
			}
			expanded = append(expanded, t)
		}
		lx.defines[name] = expanded
		return nil
	default:
		return &SyntaxError{Line: startLine, Col: 1,
			Msg: "unsupported preprocessor directive #" + word.String()}
	}
}

func (lx *lexer) restOfLine() string {
	start := lx.pos
	for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
		lx.advance()
	}
	return lx.src[start:lx.pos]
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next scans and returns the next token.
func (lx *lexer) next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Line: lx.line, Col: lx.col}, nil
	}
	line, col := lx.line, lx.col
	c := lx.peekByte()
	switch {
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentChar(lx.peekByte()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil
	case isDigit(c) || (c == '.' && isDigit(lx.peekByteAt(1))):
		return lx.number(line, col)
	default:
		return lx.punct(line, col)
	}
}

func (lx *lexer) number(line, col int) (Token, error) {
	start := lx.pos
	isFloat := false
	if lx.peekByte() == '0' && (lx.peekByteAt(1) == 'x' || lx.peekByteAt(1) == 'X') {
		lx.advance()
		lx.advance()
		for lx.pos < len(lx.src) && isHexDigit(lx.peekByte()) {
			lx.advance()
		}
	} else {
		for lx.pos < len(lx.src) && isDigit(lx.peekByte()) {
			lx.advance()
		}
		if lx.peekByte() == '.' {
			isFloat = true
			lx.advance()
			for lx.pos < len(lx.src) && isDigit(lx.peekByte()) {
				lx.advance()
			}
		}
		if b := lx.peekByte(); b == 'e' || b == 'E' {
			isFloat = true
			lx.advance()
			if b := lx.peekByte(); b == '+' || b == '-' {
				lx.advance()
			}
			if !isDigit(lx.peekByte()) {
				return Token{}, lx.errf("malformed exponent")
			}
			for lx.pos < len(lx.src) && isDigit(lx.peekByte()) {
				lx.advance()
			}
		}
	}
	// Suffixes: f/F marks float; u/U and l/L are integer qualifiers.
	for {
		b := lx.peekByte()
		if b == 'f' || b == 'F' {
			isFloat = true
			lx.advance()
			continue
		}
		if b == 'u' || b == 'U' || b == 'l' || b == 'L' {
			lx.advance()
			continue
		}
		break
	}
	text := lx.src[start:lx.pos]
	kind := TokIntLit
	if isFloat {
		kind = TokFloatLit
	}
	return Token{Kind: kind, Text: text, Line: line, Col: col}, nil
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// multi-character operators, longest first within each leading byte.
var multiOps = []string{
	"<<=", ">>=",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
}

func (lx *lexer) punct(line, col int) (Token, error) {
	for _, op := range multiOps {
		if strings.HasPrefix(lx.src[lx.pos:], op) {
			for range op {
				lx.advance()
			}
			return Token{Kind: TokPunct, Text: op, Line: line, Col: col}, nil
		}
	}
	c := lx.advance()
	switch c {
	case '+', '-', '*', '/', '%', '<', '>', '=', '!', '&', '|', '^', '~',
		'(', ')', '{', '}', '[', ']', ';', ',', '.', '?', ':':
		return Token{Kind: TokPunct, Text: string(c), Line: line, Col: col}, nil
	}
	return Token{}, &SyntaxError{Line: line, Col: col,
		Msg: fmt.Sprintf("unexpected character %q", c)}
}
