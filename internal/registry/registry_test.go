package registry

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

var trainOnce struct {
	sync.Once
	eng    *engine.Engine
	models *core.Models
	err    error
}

// trainSmall fits (once per test binary) a small but real model set for
// snapshot tests. The models are treated as read-only by every test.
func trainSmall(t testing.TB) (*engine.Engine, *core.Models) {
	t.Helper()
	trainOnce.Do(func() {
		trainOnce.eng = engine.NewDefault(engine.Options{
			Workers: 2,
			Core:    core.Options{SettingsPerKernel: 3},
		})
		trainOnce.models, trainOnce.err = trainOnce.eng.TrainDefault(context.Background())
	})
	if trainOnce.err != nil {
		t.Fatalf("training: %v", trainOnce.err)
	}
	return trainOnce.eng, trainOnce.models
}

func TestSaveLoadRoundTripBitIdentical(t *testing.T) {
	eng, models := trainSmall(t)
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	man, err := store.Save("titanx", "", models, Training{SettingsPerKernel: 3, Kernels: 106, Samples: 954})
	if err != nil {
		t.Fatal(err)
	}
	if man.Version != "v0001" {
		t.Fatalf("first version = %q, want v0001", man.Version)
	}
	if man.Hash == "" || man.Device != "titanx" || man.SpeedupModel.SupportVectors != models.Speedup.NumSV() {
		t.Fatalf("incomplete manifest: %+v", man)
	}
	if !man.Schema.Equal(CurrentSchema()) {
		t.Fatalf("manifest schema %+v != current %+v", man.Schema, CurrentSchema())
	}

	loaded, man2, err := store.Load("titanx", "v0001")
	if err != nil {
		t.Fatal(err)
	}
	if man2.Hash != man.Hash {
		t.Fatalf("hash changed across load: %s vs %s", man2.Hash, man.Hash)
	}

	// The loaded models must predict bit-identically to the saved set
	// at every supported configuration of every memory clock.
	ladder := eng.Harness().Device().Sim().Ladder
	orig := core.NewPredictor(models, ladder)
	got := core.NewPredictor(loaded, ladder)
	st := engine.TrainingKernels()[7].Features
	a := orig.PredictAll(st, ladder.MemClocks())
	b := got.PredictAll(st, ladder.MemClocks())
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("prediction counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Speedup != b[i].Speedup || a[i].NormEnergy != b[i].NormEnergy {
			t.Fatalf("prediction %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSequenceAndList(t *testing.T) {
	_, models := trainSmall(t)
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := store.Save("titanx", "", models, Training{}); err != nil {
			t.Fatal(err)
		}
	}
	// A fresh Store over the same directory must continue the sequence.
	store2, err := Open(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	v, err := store2.Reserve("titanx")
	if err != nil {
		t.Fatal(err)
	}
	if v != "v0004" {
		t.Fatalf("sequence did not resume from disk: got %s, want v0004", v)
	}

	entries, err := store2.List("titanx")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("listed %d entries, want 3", len(entries))
	}
	for i, e := range entries {
		if e.Err != "" || e.Active {
			t.Fatalf("entry %d unexpected: %+v", i, e)
		}
	}

	if err := store2.Activate("titanx", "v0002"); err != nil {
		t.Fatal(err)
	}
	entries, _ = store2.List("titanx")
	if !entries[1].Active || entries[0].Active || entries[2].Active {
		t.Fatalf("active flag wrong after Activate: %+v", entries)
	}

	// Reusing an existing version id must be rejected.
	if _, err := store2.Save("titanx", "v0002", models, Training{}); err == nil {
		t.Fatal("overwriting an existing version did not fail")
	}
}

func TestActivateRollback(t *testing.T) {
	_, models := trainSmall(t)
	dir := t.TempDir()
	store, _ := Open(dir)
	for i := 0; i < 2; i++ {
		if _, err := store.Save("titanx", "", models, Training{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := store.Active("titanx"); ok {
		t.Fatal("device active before any Activate")
	}
	if err := store.Activate("titanx", "v0001"); err != nil {
		t.Fatal(err)
	}
	if err := store.Activate("titanx", "v0002"); err != nil {
		t.Fatal(err)
	}
	if v, _ := store.Active("titanx"); v != "v0002" {
		t.Fatalf("active = %s, want v0002", v)
	}

	// Rollback state must survive a process restart (fresh Store), and
	// rollback is Activate(Previous): the outgoing version becomes the new
	// previous, so a second rollback toggles back.
	store2, _ := Open(dir)
	prev, ok := store2.Previous("titanx")
	if !ok || prev != "v0001" {
		t.Fatalf("previous = %q, %v; want v0001", prev, ok)
	}
	if err := store2.Activate("titanx", prev); err != nil {
		t.Fatal(err)
	}
	if v, _ := store2.Active("titanx"); v != "v0001" {
		t.Fatalf("rollback activated %q, want v0001", v)
	}
	if prev, ok = store2.Previous("titanx"); !ok || prev != "v0002" {
		t.Fatalf("previous after rollback = %q, %v; want v0002", prev, ok)
	}
	if err := store2.Activate("titanx", prev); err != nil {
		t.Fatal(err)
	}
	if v, _ := store2.Active("titanx"); v != "v0002" {
		t.Fatalf("second rollback activated %q, want v0002", v)
	}

	// No history: nothing to roll back to.
	empty, _ := Open(t.TempDir())
	if _, ok := empty.Previous("titanx"); ok {
		t.Fatal("empty store reports a rollback target")
	}

	if err := store.Activate("titanx", "v9999"); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("activating a missing version: %v, want ErrNoSnapshot", err)
	}
}

func TestMemoryStoreSameBehavior(t *testing.T) {
	_, models := trainSmall(t)
	store, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if store.Persistent() {
		t.Fatal("empty dir must select the in-memory mode")
	}
	man, err := store.Save("p100", "", models, Training{Samples: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Activate("p100", man.Version); err != nil {
		t.Fatal(err)
	}
	loaded, man2, err := store.Load("p100", "") // "" = active
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil || man2.Version != man.Version || man2.Training.Samples != 1 {
		t.Fatalf("memory-mode load: %+v", man2)
	}
	if _, _, err := store.Load("p100", "v0042"); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("missing version: %v, want ErrNoSnapshot", err)
	}
}

func TestLoadActiveWithoutActivation(t *testing.T) {
	store, _ := Open(t.TempDir())
	if _, _, err := store.Load("titanx", ""); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("load active on empty store: %v, want ErrNoSnapshot", err)
	}
}

func TestCorruptAndTruncatedSnapshotsRejected(t *testing.T) {
	_, models := trainSmall(t)
	dir := t.TempDir()
	store, _ := Open(dir)
	man, err := store.Save("titanx", "", models, Training{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "titanx", man.Version+".json")
	doc, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func() []byte
	}{
		{"truncated", func() []byte { return doc[:len(doc)/3] }},
		{"garbage", func() []byte { return []byte("not json at all") }},
		{"bit flip in models", func() []byte {
			// Flip a digit inside the models payload so JSON stays valid
			// but the content hash no longer matches.
			s := string(doc)
			i := strings.Index(s, `"coefs"`)
			if i < 0 {
				t.Fatal("no coefs field found")
			}
			j := strings.IndexAny(s[i:], "0123456789")
			b := []byte(s)
			at := i + j
			if b[at] == '9' {
				b[at] = '1'
			} else {
				b[at]++
			}
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path, tc.mutate(), 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, err := store.Load("titanx", man.Version)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("corrupt snapshot load: %v, want ErrCorrupt", err)
			}
			// The listing surfaces the damage instead of hiding the version.
			entries, lerr := store.List("titanx")
			if lerr != nil || len(entries) != 1 || entries[0].Err == "" {
				t.Fatalf("List over corrupt snapshot: %+v, %v", entries, lerr)
			}
		})
	}
	// Restore and confirm the snapshot loads again (the mutations were
	// the only problem).
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Load("titanx", man.Version); err != nil {
		t.Fatalf("restored snapshot failed to load: %v", err)
	}
}

// TestKillDuringSnapshotLeavesPreviousLoadable simulates a crash mid-write:
// a half-written temporary file in the device directory must neither be
// picked up as a version nor prevent the previous version from loading.
func TestKillDuringSnapshotLeavesPreviousLoadable(t *testing.T) {
	_, models := trainSmall(t)
	dir := t.TempDir()
	store, _ := Open(dir)
	man, err := store.Save("titanx", "", models, Training{})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Activate("titanx", man.Version); err != nil {
		t.Fatal(err)
	}

	// The crash artifact: a partial snapshot written the way writeAtomic
	// stages it, abandoned before the rename.
	devDir := filepath.Join(dir, "titanx")
	full, _ := os.ReadFile(filepath.Join(devDir, man.Version+".json"))
	if err := os.WriteFile(filepath.Join(devDir, ".tmp-123456"), full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh store (the restarted process) sees exactly one version, the
	// previous active version loads, and the listing is clean.
	store2, _ := Open(dir)
	entries, err := store2.List("titanx")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Version != man.Version || entries[0].Err != "" {
		t.Fatalf("crash artifact leaked into the listing: %+v", entries)
	}
	if v, ok := store2.Active("titanx"); !ok || v != man.Version {
		t.Fatalf("active pointer lost: %q, %v", v, ok)
	}
	if _, _, err := store2.Load("titanx", ""); err != nil {
		t.Fatalf("previous version not loadable after simulated crash: %v", err)
	}
	// The sequence must also skip nothing: next reserve is v0002.
	if v, _ := store2.Reserve("titanx"); v != "v0002" {
		t.Fatalf("reserve after crash = %s, want v0002", v)
	}
}

func TestFindByHash(t *testing.T) {
	_, models := trainSmall(t)
	store, _ := Open(t.TempDir())
	man, err := store.Save("titanx", "", models, Training{})
	if err != nil {
		t.Fatal(err)
	}
	hash, err := HashModels(models)
	if err != nil {
		t.Fatal(err)
	}
	if hash != man.Hash {
		t.Fatalf("HashModels %s != manifest hash %s", hash, man.Hash)
	}
	if v, ok := store.FindByHash("titanx", hash); !ok || v != man.Version {
		t.Fatalf("FindByHash = %q, %v", v, ok)
	}
	if _, ok := store.FindByHash("titanx", "deadbeef"); ok {
		t.Fatal("FindByHash matched a bogus hash")
	}
}

func TestSchemaMismatchRejected(t *testing.T) {
	_, models := trainSmall(t)
	dir := t.TempDir()
	store, _ := Open(dir)
	man, err := store.Save("titanx", "", models, Training{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "titanx", man.Version+".json")
	doc, _ := os.ReadFile(path)
	// Rewrite the recorded dimension; the hash covers only the models, so
	// the document stays integrity-valid but schema-incompatible.
	mutated := strings.Replace(string(doc), `"dim": 12`, `"dim": 13`, 1)
	if mutated == string(doc) {
		t.Fatal("schema dim not found in snapshot")
	}
	if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = store.Load("titanx", man.Version)
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("schema mismatch load: %v, want schema error", err)
	}
}

func TestManifestNaNFreeAndFinite(t *testing.T) {
	// Guard against junk metadata sneaking into manifests.
	_, models := trainSmall(t)
	store, _ := Open("")
	man, err := store.Save("titanx", "", models, Training{DurationMS: 12.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(man.Training.DurationMS) || man.CreatedAt.IsZero() {
		t.Fatalf("bad manifest metadata: %+v", man)
	}
}
